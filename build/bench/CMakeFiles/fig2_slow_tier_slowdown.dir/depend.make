# Empty dependencies file for fig2_slow_tier_slowdown.
# This may be replaced when dependencies are built.
