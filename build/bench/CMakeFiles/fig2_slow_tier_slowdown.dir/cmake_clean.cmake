file(REMOVE_RECURSE
  "CMakeFiles/fig2_slow_tier_slowdown.dir/fig2_slow_tier_slowdown.cpp.o"
  "CMakeFiles/fig2_slow_tier_slowdown.dir/fig2_slow_tier_slowdown.cpp.o.d"
  "fig2_slow_tier_slowdown"
  "fig2_slow_tier_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_slow_tier_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
