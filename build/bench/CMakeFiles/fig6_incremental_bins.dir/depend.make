# Empty dependencies file for fig6_incremental_bins.
# This may be replaced when dependencies are built.
