file(REMOVE_RECURSE
  "CMakeFiles/fig6_incremental_bins.dir/fig6_incremental_bins.cpp.o"
  "CMakeFiles/fig6_incremental_bins.dir/fig6_incremental_bins.cpp.o.d"
  "fig6_incremental_bins"
  "fig6_incremental_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_incremental_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
