# Empty dependencies file for fig5_min_cost.
# This may be replaced when dependencies are built.
