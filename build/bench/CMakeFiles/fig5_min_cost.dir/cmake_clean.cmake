file(REMOVE_RECURSE
  "CMakeFiles/fig5_min_cost.dir/fig5_min_cost.cpp.o"
  "CMakeFiles/fig5_min_cost.dir/fig5_min_cost.cpp.o.d"
  "fig5_min_cost"
  "fig5_min_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_min_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
