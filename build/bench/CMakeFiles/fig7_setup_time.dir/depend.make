# Empty dependencies file for fig7_setup_time.
# This may be replaced when dependencies are built.
