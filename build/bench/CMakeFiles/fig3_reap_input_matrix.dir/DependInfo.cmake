
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_reap_input_matrix.cpp" "bench/CMakeFiles/fig3_reap_input_matrix.dir/fig3_reap_input_matrix.cpp.o" "gcc" "bench/CMakeFiles/fig3_reap_input_matrix.dir/fig3_reap_input_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/toss_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_damon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
