file(REMOVE_RECURSE
  "CMakeFiles/fig3_reap_input_matrix.dir/fig3_reap_input_matrix.cpp.o"
  "CMakeFiles/fig3_reap_input_matrix.dir/fig3_reap_input_matrix.cpp.o.d"
  "fig3_reap_input_matrix"
  "fig3_reap_input_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_reap_input_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
