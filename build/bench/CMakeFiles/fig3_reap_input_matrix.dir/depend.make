# Empty dependencies file for fig3_reap_input_matrix.
# This may be replaced when dependencies are built.
