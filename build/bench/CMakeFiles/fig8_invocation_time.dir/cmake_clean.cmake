file(REMOVE_RECURSE
  "CMakeFiles/fig8_invocation_time.dir/fig8_invocation_time.cpp.o"
  "CMakeFiles/fig8_invocation_time.dir/fig8_invocation_time.cpp.o.d"
  "fig8_invocation_time"
  "fig8_invocation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_invocation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
