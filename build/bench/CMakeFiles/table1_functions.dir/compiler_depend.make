# Empty compiler generated dependencies file for table1_functions.
# This may be replaced when dependencies are built.
