file(REMOVE_RECURSE
  "CMakeFiles/sec6c3_snapshot_variance.dir/sec6c3_snapshot_variance.cpp.o"
  "CMakeFiles/sec6c3_snapshot_variance.dir/sec6c3_snapshot_variance.cpp.o.d"
  "sec6c3_snapshot_variance"
  "sec6c3_snapshot_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6c3_snapshot_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
