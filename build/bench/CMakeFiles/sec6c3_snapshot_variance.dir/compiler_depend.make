# Empty compiler generated dependencies file for sec6c3_snapshot_variance.
# This may be replaced when dependencies are built.
