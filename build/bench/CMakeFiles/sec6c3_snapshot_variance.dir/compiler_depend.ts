# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec6c3_snapshot_variance.
