# Empty dependencies file for ablation_reprofile.
# This may be replaced when dependencies are built.
