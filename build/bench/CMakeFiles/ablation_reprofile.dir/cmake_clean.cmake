file(REMOVE_RECURSE
  "CMakeFiles/ablation_reprofile.dir/ablation_reprofile.cpp.o"
  "CMakeFiles/ablation_reprofile.dir/ablation_reprofile.cpp.o.d"
  "ablation_reprofile"
  "ablation_reprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
