file(REMOVE_RECURSE
  "CMakeFiles/ablation_binpack.dir/ablation_binpack.cpp.o"
  "CMakeFiles/ablation_binpack.dir/ablation_binpack.cpp.o.d"
  "ablation_binpack"
  "ablation_binpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
