# Empty dependencies file for ablation_binpack.
# This may be replaced when dependencies are built.
