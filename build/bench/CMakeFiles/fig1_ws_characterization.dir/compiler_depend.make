# Empty compiler generated dependencies file for fig1_ws_characterization.
# This may be replaced when dependencies are built.
