file(REMOVE_RECURSE
  "CMakeFiles/fig1_ws_characterization.dir/fig1_ws_characterization.cpp.o"
  "CMakeFiles/fig1_ws_characterization.dir/fig1_ws_characterization.cpp.o.d"
  "fig1_ws_characterization"
  "fig1_ws_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ws_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
