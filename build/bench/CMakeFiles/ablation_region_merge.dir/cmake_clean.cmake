file(REMOVE_RECURSE
  "CMakeFiles/ablation_region_merge.dir/ablation_region_merge.cpp.o"
  "CMakeFiles/ablation_region_merge.dir/ablation_region_merge.cpp.o.d"
  "ablation_region_merge"
  "ablation_region_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
