# Empty compiler generated dependencies file for ablation_region_merge.
# This may be replaced when dependencies are built.
