# Empty dependencies file for toss_bench_common.
# This may be replaced when dependencies are built.
