file(REMOVE_RECURSE
  "libtoss_bench_common.a"
)
