file(REMOVE_RECURSE
  "CMakeFiles/toss_bench_common.dir/common.cpp.o"
  "CMakeFiles/toss_bench_common.dir/common.cpp.o.d"
  "libtoss_bench_common.a"
  "libtoss_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
