# Empty compiler generated dependencies file for table2_offload_ratio.
# This may be replaced when dependencies are built.
