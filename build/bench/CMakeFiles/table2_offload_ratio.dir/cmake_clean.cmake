file(REMOVE_RECURSE
  "CMakeFiles/table2_offload_ratio.dir/table2_offload_ratio.cpp.o"
  "CMakeFiles/table2_offload_ratio.dir/table2_offload_ratio.cpp.o.d"
  "table2_offload_ratio"
  "table2_offload_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_offload_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
