# Empty dependencies file for core_binpack_test.
# This may be replaced when dependencies are built.
