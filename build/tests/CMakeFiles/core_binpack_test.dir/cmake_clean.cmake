file(REMOVE_RECURSE
  "CMakeFiles/core_binpack_test.dir/core_binpack_test.cpp.o"
  "CMakeFiles/core_binpack_test.dir/core_binpack_test.cpp.o.d"
  "core_binpack_test"
  "core_binpack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_binpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
