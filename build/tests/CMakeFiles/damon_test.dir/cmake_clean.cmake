file(REMOVE_RECURSE
  "CMakeFiles/damon_test.dir/damon_test.cpp.o"
  "CMakeFiles/damon_test.dir/damon_test.cpp.o.d"
  "damon_test"
  "damon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
