# Empty dependencies file for damon_test.
# This may be replaced when dependencies are built.
