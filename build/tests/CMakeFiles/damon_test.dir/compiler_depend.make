# Empty compiler generated dependencies file for damon_test.
# This may be replaced when dependencies are built.
