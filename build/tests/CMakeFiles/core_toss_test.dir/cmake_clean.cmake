file(REMOVE_RECURSE
  "CMakeFiles/core_toss_test.dir/core_toss_test.cpp.o"
  "CMakeFiles/core_toss_test.dir/core_toss_test.cpp.o.d"
  "core_toss_test"
  "core_toss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_toss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
