# Empty compiler generated dependencies file for core_toss_test.
# This may be replaced when dependencies are built.
