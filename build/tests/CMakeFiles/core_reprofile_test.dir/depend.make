# Empty dependencies file for core_reprofile_test.
# This may be replaced when dependencies are built.
