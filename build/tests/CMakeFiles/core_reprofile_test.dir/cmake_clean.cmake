file(REMOVE_RECURSE
  "CMakeFiles/core_reprofile_test.dir/core_reprofile_test.cpp.o"
  "CMakeFiles/core_reprofile_test.dir/core_reprofile_test.cpp.o.d"
  "core_reprofile_test"
  "core_reprofile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reprofile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
