
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bin_profiler.cpp" "src/CMakeFiles/toss_core.dir/core/bin_profiler.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/bin_profiler.cpp.o.d"
  "/root/repo/src/core/binpack.cpp" "src/CMakeFiles/toss_core.dir/core/binpack.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/binpack.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/toss_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/CMakeFiles/toss_core.dir/core/merge.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/merge.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/CMakeFiles/toss_core.dir/core/optimizer.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/optimizer.cpp.o.d"
  "/root/repo/src/core/reprofile.cpp" "src/CMakeFiles/toss_core.dir/core/reprofile.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/reprofile.cpp.o.d"
  "/root/repo/src/core/tierer.cpp" "src/CMakeFiles/toss_core.dir/core/tierer.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/tierer.cpp.o.d"
  "/root/repo/src/core/toss.cpp" "src/CMakeFiles/toss_core.dir/core/toss.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/toss.cpp.o.d"
  "/root/repo/src/core/unified_pattern.cpp" "src/CMakeFiles/toss_core.dir/core/unified_pattern.cpp.o" "gcc" "src/CMakeFiles/toss_core.dir/core/unified_pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_damon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
