file(REMOVE_RECURSE
  "CMakeFiles/toss_core.dir/core/bin_profiler.cpp.o"
  "CMakeFiles/toss_core.dir/core/bin_profiler.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/binpack.cpp.o"
  "CMakeFiles/toss_core.dir/core/binpack.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/cost.cpp.o"
  "CMakeFiles/toss_core.dir/core/cost.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/merge.cpp.o"
  "CMakeFiles/toss_core.dir/core/merge.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/optimizer.cpp.o"
  "CMakeFiles/toss_core.dir/core/optimizer.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/reprofile.cpp.o"
  "CMakeFiles/toss_core.dir/core/reprofile.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/tierer.cpp.o"
  "CMakeFiles/toss_core.dir/core/tierer.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/toss.cpp.o"
  "CMakeFiles/toss_core.dir/core/toss.cpp.o.d"
  "CMakeFiles/toss_core.dir/core/unified_pattern.cpp.o"
  "CMakeFiles/toss_core.dir/core/unified_pattern.cpp.o.d"
  "libtoss_core.a"
  "libtoss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
