file(REMOVE_RECURSE
  "libtoss_baseline.a"
)
