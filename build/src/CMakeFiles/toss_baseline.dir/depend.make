# Empty dependencies file for toss_baseline.
# This may be replaced when dependencies are built.
