
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/faasnap.cpp" "src/CMakeFiles/toss_baseline.dir/baseline/faasnap.cpp.o" "gcc" "src/CMakeFiles/toss_baseline.dir/baseline/faasnap.cpp.o.d"
  "/root/repo/src/baseline/reap.cpp" "src/CMakeFiles/toss_baseline.dir/baseline/reap.cpp.o" "gcc" "src/CMakeFiles/toss_baseline.dir/baseline/reap.cpp.o.d"
  "/root/repo/src/baseline/vanilla.cpp" "src/CMakeFiles/toss_baseline.dir/baseline/vanilla.cpp.o" "gcc" "src/CMakeFiles/toss_baseline.dir/baseline/vanilla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
