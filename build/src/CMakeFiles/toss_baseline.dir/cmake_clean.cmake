file(REMOVE_RECURSE
  "CMakeFiles/toss_baseline.dir/baseline/faasnap.cpp.o"
  "CMakeFiles/toss_baseline.dir/baseline/faasnap.cpp.o.d"
  "CMakeFiles/toss_baseline.dir/baseline/reap.cpp.o"
  "CMakeFiles/toss_baseline.dir/baseline/reap.cpp.o.d"
  "CMakeFiles/toss_baseline.dir/baseline/vanilla.cpp.o"
  "CMakeFiles/toss_baseline.dir/baseline/vanilla.cpp.o.d"
  "libtoss_baseline.a"
  "libtoss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
