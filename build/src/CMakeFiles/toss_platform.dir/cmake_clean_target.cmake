file(REMOVE_RECURSE
  "libtoss_platform.a"
)
