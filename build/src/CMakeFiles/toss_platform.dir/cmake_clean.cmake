file(REMOVE_RECURSE
  "CMakeFiles/toss_platform.dir/platform/concurrency.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/concurrency.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/invoker.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/invoker.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/keepalive.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/keepalive.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/platform.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/prewarm.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/prewarm.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/pricing.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/pricing.cpp.o.d"
  "CMakeFiles/toss_platform.dir/platform/request_gen.cpp.o"
  "CMakeFiles/toss_platform.dir/platform/request_gen.cpp.o.d"
  "libtoss_platform.a"
  "libtoss_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
