# Empty dependencies file for toss_platform.
# This may be replaced when dependencies are built.
