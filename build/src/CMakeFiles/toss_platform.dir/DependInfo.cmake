
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/concurrency.cpp" "src/CMakeFiles/toss_platform.dir/platform/concurrency.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/concurrency.cpp.o.d"
  "/root/repo/src/platform/invoker.cpp" "src/CMakeFiles/toss_platform.dir/platform/invoker.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/invoker.cpp.o.d"
  "/root/repo/src/platform/keepalive.cpp" "src/CMakeFiles/toss_platform.dir/platform/keepalive.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/keepalive.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/CMakeFiles/toss_platform.dir/platform/platform.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/platform.cpp.o.d"
  "/root/repo/src/platform/prewarm.cpp" "src/CMakeFiles/toss_platform.dir/platform/prewarm.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/prewarm.cpp.o.d"
  "/root/repo/src/platform/pricing.cpp" "src/CMakeFiles/toss_platform.dir/platform/pricing.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/pricing.cpp.o.d"
  "/root/repo/src/platform/request_gen.cpp" "src/CMakeFiles/toss_platform.dir/platform/request_gen.cpp.o" "gcc" "src/CMakeFiles/toss_platform.dir/platform/request_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_damon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
