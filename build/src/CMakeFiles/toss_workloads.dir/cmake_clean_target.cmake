file(REMOVE_RECURSE
  "libtoss_workloads.a"
)
