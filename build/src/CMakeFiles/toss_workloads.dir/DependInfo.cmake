
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/function_model.cpp" "src/CMakeFiles/toss_workloads.dir/workloads/function_model.cpp.o" "gcc" "src/CMakeFiles/toss_workloads.dir/workloads/function_model.cpp.o.d"
  "/root/repo/src/workloads/functions.cpp" "src/CMakeFiles/toss_workloads.dir/workloads/functions.cpp.o" "gcc" "src/CMakeFiles/toss_workloads.dir/workloads/functions.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/toss_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/toss_workloads.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/trace_gen.cpp" "src/CMakeFiles/toss_workloads.dir/workloads/trace_gen.cpp.o" "gcc" "src/CMakeFiles/toss_workloads.dir/workloads/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
