file(REMOVE_RECURSE
  "CMakeFiles/toss_workloads.dir/workloads/function_model.cpp.o"
  "CMakeFiles/toss_workloads.dir/workloads/function_model.cpp.o.d"
  "CMakeFiles/toss_workloads.dir/workloads/functions.cpp.o"
  "CMakeFiles/toss_workloads.dir/workloads/functions.cpp.o.d"
  "CMakeFiles/toss_workloads.dir/workloads/registry.cpp.o"
  "CMakeFiles/toss_workloads.dir/workloads/registry.cpp.o.d"
  "CMakeFiles/toss_workloads.dir/workloads/trace_gen.cpp.o"
  "CMakeFiles/toss_workloads.dir/workloads/trace_gen.cpp.o.d"
  "libtoss_workloads.a"
  "libtoss_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
