# Empty dependencies file for toss_workloads.
# This may be replaced when dependencies are built.
