file(REMOVE_RECURSE
  "CMakeFiles/toss_vmm.dir/vmm/guest_memory.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/guest_memory.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/layout.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/layout.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/microvm.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/microvm.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/snapshot.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/snapshot.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/snapshot_store.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/snapshot_store.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/tiered_snapshot.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/tiered_snapshot.cpp.o.d"
  "CMakeFiles/toss_vmm.dir/vmm/vm_state.cpp.o"
  "CMakeFiles/toss_vmm.dir/vmm/vm_state.cpp.o.d"
  "libtoss_vmm.a"
  "libtoss_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
