file(REMOVE_RECURSE
  "libtoss_vmm.a"
)
