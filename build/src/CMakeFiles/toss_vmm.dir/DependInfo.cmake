
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/guest_memory.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/guest_memory.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/guest_memory.cpp.o.d"
  "/root/repo/src/vmm/layout.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/layout.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/layout.cpp.o.d"
  "/root/repo/src/vmm/microvm.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/microvm.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/microvm.cpp.o.d"
  "/root/repo/src/vmm/snapshot.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/snapshot.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/snapshot.cpp.o.d"
  "/root/repo/src/vmm/snapshot_store.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/snapshot_store.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/snapshot_store.cpp.o.d"
  "/root/repo/src/vmm/tiered_snapshot.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/tiered_snapshot.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/tiered_snapshot.cpp.o.d"
  "/root/repo/src/vmm/vm_state.cpp" "src/CMakeFiles/toss_vmm.dir/vmm/vm_state.cpp.o" "gcc" "src/CMakeFiles/toss_vmm.dir/vmm/vm_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
