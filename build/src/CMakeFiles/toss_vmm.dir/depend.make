# Empty dependencies file for toss_vmm.
# This may be replaced when dependencies are built.
