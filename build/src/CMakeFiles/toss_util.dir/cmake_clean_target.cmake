file(REMOVE_RECURSE
  "libtoss_util.a"
)
