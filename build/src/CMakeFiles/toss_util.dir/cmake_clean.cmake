file(REMOVE_RECURSE
  "CMakeFiles/toss_util.dir/util/rng.cpp.o"
  "CMakeFiles/toss_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/toss_util.dir/util/stats.cpp.o"
  "CMakeFiles/toss_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/toss_util.dir/util/table.cpp.o"
  "CMakeFiles/toss_util.dir/util/table.cpp.o.d"
  "CMakeFiles/toss_util.dir/util/units.cpp.o"
  "CMakeFiles/toss_util.dir/util/units.cpp.o.d"
  "libtoss_util.a"
  "libtoss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
