# Empty compiler generated dependencies file for toss_util.
# This may be replaced when dependencies are built.
