file(REMOVE_RECURSE
  "CMakeFiles/toss_mem.dir/mem/access_cost.cpp.o"
  "CMakeFiles/toss_mem.dir/mem/access_cost.cpp.o.d"
  "CMakeFiles/toss_mem.dir/mem/page_cache.cpp.o"
  "CMakeFiles/toss_mem.dir/mem/page_cache.cpp.o.d"
  "CMakeFiles/toss_mem.dir/mem/placement.cpp.o"
  "CMakeFiles/toss_mem.dir/mem/placement.cpp.o.d"
  "CMakeFiles/toss_mem.dir/mem/tier.cpp.o"
  "CMakeFiles/toss_mem.dir/mem/tier.cpp.o.d"
  "libtoss_mem.a"
  "libtoss_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
