# Empty compiler generated dependencies file for toss_mem.
# This may be replaced when dependencies are built.
