
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access_cost.cpp" "src/CMakeFiles/toss_mem.dir/mem/access_cost.cpp.o" "gcc" "src/CMakeFiles/toss_mem.dir/mem/access_cost.cpp.o.d"
  "/root/repo/src/mem/page_cache.cpp" "src/CMakeFiles/toss_mem.dir/mem/page_cache.cpp.o" "gcc" "src/CMakeFiles/toss_mem.dir/mem/page_cache.cpp.o.d"
  "/root/repo/src/mem/placement.cpp" "src/CMakeFiles/toss_mem.dir/mem/placement.cpp.o" "gcc" "src/CMakeFiles/toss_mem.dir/mem/placement.cpp.o.d"
  "/root/repo/src/mem/tier.cpp" "src/CMakeFiles/toss_mem.dir/mem/tier.cpp.o" "gcc" "src/CMakeFiles/toss_mem.dir/mem/tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
