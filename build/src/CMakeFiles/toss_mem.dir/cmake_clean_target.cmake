file(REMOVE_RECURSE
  "libtoss_mem.a"
)
