file(REMOVE_RECURSE
  "libtoss_damon.a"
)
