# Empty compiler generated dependencies file for toss_damon.
# This may be replaced when dependencies are built.
