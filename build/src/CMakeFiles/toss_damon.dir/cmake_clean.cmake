file(REMOVE_RECURSE
  "CMakeFiles/toss_damon.dir/damon/monitor.cpp.o"
  "CMakeFiles/toss_damon.dir/damon/monitor.cpp.o.d"
  "CMakeFiles/toss_damon.dir/damon/record.cpp.o"
  "CMakeFiles/toss_damon.dir/damon/record.cpp.o.d"
  "libtoss_damon.a"
  "libtoss_damon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_damon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
