
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/burst.cpp" "src/CMakeFiles/toss_trace.dir/trace/burst.cpp.o" "gcc" "src/CMakeFiles/toss_trace.dir/trace/burst.cpp.o.d"
  "/root/repo/src/trace/pattern.cpp" "src/CMakeFiles/toss_trace.dir/trace/pattern.cpp.o" "gcc" "src/CMakeFiles/toss_trace.dir/trace/pattern.cpp.o.d"
  "/root/repo/src/trace/region.cpp" "src/CMakeFiles/toss_trace.dir/trace/region.cpp.o" "gcc" "src/CMakeFiles/toss_trace.dir/trace/region.cpp.o.d"
  "/root/repo/src/trace/working_set.cpp" "src/CMakeFiles/toss_trace.dir/trace/working_set.cpp.o" "gcc" "src/CMakeFiles/toss_trace.dir/trace/working_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/toss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/toss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
