file(REMOVE_RECURSE
  "libtoss_trace.a"
)
