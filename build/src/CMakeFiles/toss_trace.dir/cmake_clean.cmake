file(REMOVE_RECURSE
  "CMakeFiles/toss_trace.dir/trace/burst.cpp.o"
  "CMakeFiles/toss_trace.dir/trace/burst.cpp.o.d"
  "CMakeFiles/toss_trace.dir/trace/pattern.cpp.o"
  "CMakeFiles/toss_trace.dir/trace/pattern.cpp.o.d"
  "CMakeFiles/toss_trace.dir/trace/region.cpp.o"
  "CMakeFiles/toss_trace.dir/trace/region.cpp.o.d"
  "CMakeFiles/toss_trace.dir/trace/working_set.cpp.o"
  "CMakeFiles/toss_trace.dir/trace/working_set.cpp.o.d"
  "libtoss_trace.a"
  "libtoss_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
