# Empty dependencies file for toss_trace.
# This may be replaced when dependencies are built.
