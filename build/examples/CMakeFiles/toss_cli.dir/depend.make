# Empty dependencies file for toss_cli.
# This may be replaced when dependencies are built.
