file(REMOVE_RECURSE
  "CMakeFiles/toss_cli.dir/toss_cli.cpp.o"
  "CMakeFiles/toss_cli.dir/toss_cli.cpp.o.d"
  "toss_cli"
  "toss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
