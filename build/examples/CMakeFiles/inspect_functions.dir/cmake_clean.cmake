file(REMOVE_RECURSE
  "CMakeFiles/inspect_functions.dir/inspect_functions.cpp.o"
  "CMakeFiles/inspect_functions.dir/inspect_functions.cpp.o.d"
  "inspect_functions"
  "inspect_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
