# Empty compiler generated dependencies file for tiering_explorer.
# This may be replaced when dependencies are built.
