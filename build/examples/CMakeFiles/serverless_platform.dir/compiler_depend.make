# Empty compiler generated dependencies file for serverless_platform.
# This may be replaced when dependencies are built.
