file(REMOVE_RECURSE
  "CMakeFiles/serverless_platform.dir/serverless_platform.cpp.o"
  "CMakeFiles/serverless_platform.dir/serverless_platform.cpp.o.d"
  "serverless_platform"
  "serverless_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
