// DAMON simulator: adaptive region-based memory access monitoring.
//
// Real DAMON samples one page per region per sampling interval and
// periodically splits/merges regions so that similar-frequency neighbors
// share a region. We reproduce that behaviour analytically: the true
// per-page counts of the invocation are quantized to the minimum region
// size, perturbed with sampling noise whose magnitude shrinks with the
// number of samples the invocation affords, then adjacent regions with
// similar estimated frequency are merged (bounded by max_regions).
//
// The paper's configuration: 10 us sampling interval, 16 KiB minimum region
// size, ~3% monitoring overhead.
#pragma once

#include "damon/record.hpp"
#include "mem/tier.hpp"
#include "trace/burst.hpp"
#include "util/rng.hpp"

namespace toss {

struct DamonConfig {
  Nanos sampling_interval_ns = us(10);
  u64 min_region_pages = 4;  ///< 16 KiB at 4 KiB pages
  u64 max_regions = 4096;
  /// Adjacent regions whose estimated per-page counts differ by less than
  /// this relative fraction are merged during aggregation.
  double merge_similarity = 0.15;
  /// Monitoring overhead as a fraction of execution time (paper: ~3%).
  double overhead_fraction = 0.03;
  /// Scale from simulated per-page access counts to DAMON's nr_accesses
  /// units (sampling-interval hits). The paper's downstream thresholds
  /// (e.g. the <100 access-count merge) are calibrated on DAMON's scale,
  /// where warm pages score in the hundreds-to-thousands; the trace
  /// generator's raw counts are ~16x smaller.
  double count_scale = 16.0;
};

struct DamonOutput {
  DamonRecord record;
  Nanos overhead_ns = 0;  ///< added to the invocation's execution time
  u64 samples = 0;        ///< how many sampling intervals fit the run
};

class DamonMonitor {
 public:
  explicit DamonMonitor(DamonConfig cfg = {});

  const DamonConfig& config() const { return cfg_; }

  /// Monitor one invocation. `true_counts` is the invocation's exact
  /// per-page access pattern, `exec_ns` its execution time (which bounds
  /// how many samples DAMON can take), `rng` drives sampling noise.
  DamonOutput monitor(const PageAccessCounts& true_counts, Nanos exec_ns,
                      Rng& rng) const;

 private:
  DamonConfig cfg_;
};

}  // namespace toss
