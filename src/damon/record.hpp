// DAMON record files: the serialized region-granularity access pattern a
// monitoring run produces. TOSS stores one record per profiled invocation
// and merges them into the unified access pattern.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "trace/region.hpp"

namespace toss {

struct DamonRegion {
  u64 page_begin = 0;
  u64 page_count = 0;
  /// Estimated accesses per page over the monitored invocation.
  u64 nr_accesses = 0;

  u64 page_end() const { return page_begin + page_count; }
  bool operator==(const DamonRegion&) const = default;
};

class DamonRecord {
 public:
  DamonRecord() = default;
  DamonRecord(u64 num_pages, std::vector<DamonRegion> regions);

  u64 num_pages() const { return num_pages_; }
  const std::vector<DamonRegion>& regions() const { return regions_; }
  size_t region_count() const { return regions_.size(); }

  /// Regions must tile [0, num_pages) exactly.
  bool valid() const;

  /// Expand to a per-page view (each page gets its region's nr_accesses).
  PageAccessCounts to_counts() const;

  /// Binary serialization (the "access pattern file" on disk).
  std::vector<u8> serialize() const;
  static std::optional<DamonRecord> deserialize(const std::vector<u8>& bytes);

  bool operator==(const DamonRecord&) const = default;

 private:
  u64 num_pages_ = 0;
  std::vector<DamonRegion> regions_;
};

}  // namespace toss
