#include "damon/record.hpp"

#include <cstring>

namespace toss {

DamonRecord::DamonRecord(u64 num_pages, std::vector<DamonRegion> regions)
    : num_pages_(num_pages), regions_(std::move(regions)) {}

bool DamonRecord::valid() const {
  u64 next = 0;
  for (const auto& r : regions_) {
    if (r.page_begin != next || r.page_count == 0) return false;
    next = r.page_end();
  }
  return next == num_pages_;
}

PageAccessCounts DamonRecord::to_counts() const {
  PageAccessCounts counts(num_pages_);
  for (const auto& r : regions_)
    for (u64 p = r.page_begin; p < r.page_end(); ++p)
      counts.set(p, r.nr_accesses);
  return counts;
}

namespace {
constexpr u64 kMagic = 0x44414d4f4e524543ULL;  // "DAMONREC"

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_u64(const std::vector<u8>& in, size_t& pos, u64& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}
}  // namespace

std::vector<u8> DamonRecord::serialize() const {
  std::vector<u8> out;
  out.reserve(24 + regions_.size() * 24);
  put_u64(out, kMagic);
  put_u64(out, num_pages_);
  put_u64(out, regions_.size());
  for (const auto& r : regions_) {
    put_u64(out, r.page_begin);
    put_u64(out, r.page_count);
    put_u64(out, r.nr_accesses);
  }
  return out;
}

std::optional<DamonRecord> DamonRecord::deserialize(
    const std::vector<u8>& bytes) {
  size_t pos = 0;
  u64 magic = 0, num_pages = 0, count = 0;
  if (!get_u64(bytes, pos, magic) || magic != kMagic) return std::nullopt;
  if (!get_u64(bytes, pos, num_pages)) return std::nullopt;
  if (!get_u64(bytes, pos, count)) return std::nullopt;
  std::vector<DamonRegion> regions;
  regions.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    DamonRegion r;
    if (!get_u64(bytes, pos, r.page_begin) ||
        !get_u64(bytes, pos, r.page_count) ||
        !get_u64(bytes, pos, r.nr_accesses))
      return std::nullopt;
    regions.push_back(r);
  }
  DamonRecord rec(num_pages, std::move(regions));
  if (!rec.valid()) return std::nullopt;
  return rec;
}

}  // namespace toss
