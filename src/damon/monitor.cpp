#include "damon/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace toss {

DamonMonitor::DamonMonitor(DamonConfig cfg) : cfg_(cfg) {}

namespace {

/// Relative estimation error for a region observed with `samples` samples.
/// More samples => tighter estimate, mimicking DAMON's sampling statistics.
double noise_scale(u64 samples) {
  if (samples == 0) return 1.0;
  return 1.0 / std::sqrt(static_cast<double>(samples));
}

}  // namespace

DamonOutput DamonMonitor::monitor(const PageAccessCounts& true_counts,
                                  Nanos exec_ns, Rng& rng) const {
  const u64 num_pages = true_counts.num_pages();
  const u64 quantum = std::max<u64>(cfg_.min_region_pages, 1);

  const u64 samples = static_cast<u64>(
      std::max(1.0, exec_ns / std::max<Nanos>(cfg_.sampling_interval_ns, 1)));

  // Pass 1: quantize to the minimum region size. Each chunk's frequency is
  // the mean of its pages' true counts, perturbed with sampling noise.
  std::vector<DamonRegion> regions;
  regions.reserve(num_pages / quantum + 1);
  for (u64 begin = 0; begin < num_pages; begin += quantum) {
    const u64 count = std::min(quantum, num_pages - begin);
    u64 mass = 0;
    for (u64 p = begin; p < begin + count; ++p) mass += true_counts.at(p);
    double est = static_cast<double>(mass) / static_cast<double>(count) *
                 cfg_.count_scale;
    if (est > 0.0) {
      const double rel = noise_scale(samples) * 4.0;  // per-region samples
      est *= rng.jitter(std::min(rel, 0.5));
    }
    regions.push_back(
        DamonRegion{begin, count, static_cast<u64>(std::llround(est))});
  }

  // Pass 2: merge adjacent regions with similar estimated frequency, the
  // way DAMON's aggregation step does. Never merge zero with nonzero: the
  // untouched/touched boundary is the signal TOSS needs most.
  std::vector<DamonRegion> merged;
  for (const DamonRegion& r : regions) {
    if (!merged.empty()) {
      DamonRegion& last = merged.back();
      const double a = static_cast<double>(last.nr_accesses);
      const double b = static_cast<double>(r.nr_accesses);
      const double denom = std::max(a, b);
      const bool both_zero = last.nr_accesses == 0 && r.nr_accesses == 0;
      const bool similar =
          both_zero ||
          (last.nr_accesses > 0 && r.nr_accesses > 0 &&
           std::abs(a - b) / denom <= cfg_.merge_similarity);
      if (similar) {
        const u64 pages = last.page_count + r.page_count;
        const u64 mass =
            last.nr_accesses * last.page_count + r.nr_accesses * r.page_count;
        last.nr_accesses = mass / pages;
        last.page_count = pages;
        continue;
      }
    }
    merged.push_back(r);
  }

  // Pass 3: if still above max_regions, force-merge the most similar
  // neighbors until under the cap (DAMON's region budget).
  while (merged.size() > cfg_.max_regions) {
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i + 1 < merged.size(); ++i) {
      const double diff = std::abs(static_cast<double>(merged[i].nr_accesses) -
                                   static_cast<double>(merged[i + 1].nr_accesses));
      if (best_diff < 0.0 || diff < best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    DamonRegion& a = merged[best];
    const DamonRegion& b = merged[best + 1];
    const u64 pages = a.page_count + b.page_count;
    a.nr_accesses =
        (a.nr_accesses * a.page_count + b.nr_accesses * b.page_count) / pages;
    a.page_count = pages;
    merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  DamonOutput out;
  out.record = DamonRecord(num_pages, std::move(merged));
  out.samples = samples;
  // Overhead grows slightly with how fragmented the pattern is (rapid
  // access-pattern changes force more split/merge work), per Section V-B.
  const double fragmentation =
      static_cast<double>(out.record.region_count()) /
      std::max<double>(1.0, static_cast<double>(num_pages / quantum));
  out.overhead_ns =
      exec_ns * cfg_.overhead_fraction * (0.5 + std::min(1.0, fragmentation));
  return out;
}

}  // namespace toss
