#include "platform/host.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace toss {

const char* drop_policy_name(DropPolicy policy) {
  switch (policy) {
    case DropPolicy::kTailDrop: return "tail_drop";
    case DropPolicy::kOldestDrop: return "oldest_drop";
  }
  return "?";
}

Error shed_error(const std::string& function, const ShedEvent& event) {
  // Host loss is not retryable-later the way overload is: the caller must
  // re-resolve the function's placement first, so it gets its own code.
  const ErrorCode code = event.cause == ShedCause::kHostLost
                             ? ErrorCode::kHostLost
                             : ErrorCode::kOverloaded;
  return Error(code,
               function + ": request " + std::to_string(event.request_index) +
                   " shed (" + shed_cause_name(event.cause) + ")");
}

u64 EngineReport::total_invocations() const {
  u64 n = 0;
  for (const FunctionReport& f : functions) n += f.stats.invocations;
  return n;
}

u64 EngineReport::total_shed() const {
  u64 n = 0;
  for (const FunctionReport& f : functions) n += f.overload.total_shed();
  return n;
}

const FunctionReport* EngineReport::find(const std::string& name) const {
  for (const FunctionReport& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

Host::Host(std::string name, SystemConfig cfg, PricingPlan pricing,
           EngineOptions options)
    : name_(std::move(name)),
      cfg_(std::move(cfg)),
      pricing_(pricing),
      options_(options) {
  options_.chunk = std::max(1, options_.chunk);
}

Host::~Host() = default;

HostLane* Host::find_lane(const std::string& name) {
  for (const auto& lane : lanes_)
    if (lane != nullptr && lane->name == name) return lane.get();
  return nullptr;
}

const HostLane* Host::find_lane(const std::string& name) const {
  for (const auto& lane : lanes_)
    if (lane != nullptr && lane->name == name) return lane.get();
  return nullptr;
}

Result<void> Host::validate_requests(
    const std::string& name, const std::vector<Request>& requests) const {
  // Reject malformed streams up front so the drain cannot fail per-request.
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.input < 0 || r.input >= kNumInputs)
      return {ErrorCode::kInvalidRequest,
              name + ": request input " + std::to_string(r.input) +
                  " outside [0, " + std::to_string(kNumInputs) + ")"};
    if (r.arrival_ns < 0 || r.deadline_ns < 0)
      return {ErrorCode::kInvalidRequest,
              name + ": request " + std::to_string(i) +
                  " has a negative arrival or deadline"};
    if (i > 0 && r.arrival_ns < requests[i - 1].arrival_ns)
      return {ErrorCode::kInvalidRequest,
              name + ": request " + std::to_string(i) +
                  " arrives before its predecessor (streams must be sorted "
                  "by arrival_ns)"};
  }
  return {};
}

Result<void> Host::add(const FunctionRegistration& registration,
                       std::vector<Request> requests) {
  const std::string& name = registration.spec().name;
  if (find_lane(name) != nullptr)
    return {ErrorCode::kDuplicateFunction, name + " is already registered"};
  if (Result<void> valid = validate_requests(name, requests); !valid.ok())
    return valid;

  auto lane = std::make_unique<HostLane>();
  lane->name = name;
  lane->policy = registration.policy();
  // Each lane gets its own injector stream keyed by name, so lanes fault
  // independently and deterministically regardless of scheduling.
  FaultPlan lane_plan = options_.fault_plan;
  lane_plan.seed = mix_seed(options_.fault_plan.seed, name);
  lane->host =
      std::make_unique<ServerlessPlatform>(cfg_, pricing_, std::move(lane_plan));
  if (Result<void> reg = lane->host->register_function(registration);
      !reg.ok())
    return reg;
  lane->requests = std::move(requests);
  if (options_.keep_outcomes) lane->outcomes.reserve(lane->requests.size());
  lane->series = metrics_.series(name);
  lane->qos = registration.qos_spec();
  if (lane->qos.cls != QosClass::kNone) qos_engaged_ = true;
  lanes_.push_back(std::move(lane));
  return {};
}

Result<void> Host::enqueue(const std::string& function,
                           std::vector<Request> requests) {
  HostLane* lane = find_lane(function);
  if (lane == nullptr)
    return {ErrorCode::kUnknownFunction,
            function + " is not registered on host " + name_};
  if (Result<void> valid = validate_requests(function, requests); !valid.ok())
    return valid;
  if (requests.empty()) return {};
  if (!lane->requests.empty() &&
      requests.front().arrival_ns < lane->requests.back().arrival_ns)
    return {ErrorCode::kInvalidRequest,
            function + ": batch arrives before the lane's existing tail "
                       "(the simulated clock only moves forward)"};
  // The lane is live again: the next time it drains counts as a fresh
  // finish for the keep-alive accounting.
  lane->finish_reported = false;
  if (options_.keep_outcomes)
    lane->outcomes.reserve(lane->outcomes.size() + requests.size());
  lane->requests.insert(lane->requests.end(),
                        std::make_move_iterator(requests.begin()),
                        std::make_move_iterator(requests.end()));
  return {};
}

size_t Host::function_count() const {
  size_t n = 0;
  for (const auto& lane : lanes_)
    if (lane != nullptr) ++n;
  return n;
}

bool Host::idle() const {
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    if (options_.overload_protection() ? !lane->drained()
                                       : lane->next < lane->requests.size())
      return false;
  }
  return true;
}

void Host::record_error(ErrorCode code, std::string message) {
  std::lock_guard<RankedMutex> lock(mu_);
  if (!failed_) {
    failed_ = true;
    error_code_ = code;
    error_message_ = std::move(message);
  }
  abort_ = true;
  ready_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Legacy chunked round-robin scheduler (no overload knobs set).

void Host::process_chunk(HostLane& lane) {
  // Serialization guard: the scheduler hands a lane to one worker at a
  // time; a violation here means the queue invariant broke. Release builds
  // count it (EngineReport::serialization_violations, asserted 0 by
  // tests); checked builds abort on the spot, before the re-entered
  // TossFunction state machine can corrupt anything.
  const int prior = lane.in_flight.fetch_add(1, std::memory_order_acq_rel);
  TOSS_ASSERT(prior == 0, "lane re-entered concurrently");
  if (prior != 0)
    serialization_violations_.fetch_add(1, std::memory_order_relaxed);

  const size_t end = std::min(lane.requests.size(),
                              lane.next + static_cast<size_t>(options_.chunk));
  for (; lane.next < end; ++lane.next) {
    const Request& r = lane.requests[lane.next];
    Result<InvocationOutcome> out = lane.host->invoke(lane.name, r.input, r.seed);
    if (!out.ok()) {  // inputs are pre-validated; this is a belt-and-braces path
      record_error(out.code(), out.message());
      lane.next = lane.requests.size();
      break;
    }
    const InvocationOutcome& o = *out;
    lane.series->record(o.toss_phase, o.cold_boot, o.result.total_ns(),
                        o.result.setup.setup_ns, o.result.exec.exec_ns,
                        o.charge, o.recovery);
    if (options_.keep_outcomes) lane.outcomes.push_back(o);
  }

  lane.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void Host::scheduler_loop() {
  for (;;) {
    size_t idx;
    {
      std::unique_lock<RankedMutex> lock(mu_);
      ++waiting_workers_;
      ready_cv_.wait(lock, [this] {
        return abort_ || !ready_.empty() || unfinished_ == 0;
      });
      --waiting_workers_;
      if (abort_ || (ready_.empty() && unfinished_ == 0)) return;
      if (ready_.empty()) continue;  // spurious wake while others finish
      idx = ready_.front();
      ready_.pop_front();
    }

    HostLane& lane = *lanes_[idx];
    process_chunk(lane);

    {
      std::lock_guard<RankedMutex> lock(mu_);
      // Notify only when a worker is actually parked: a busy worker
      // re-checks ready_ under mu_ before it can sleep, so the skipped
      // notify is never lost — it just skips the futex syscall. This is
      // the per-epoch wakeup-convoy fix for the legacy path.
      if (lane.next < lane.requests.size()) {
        ready_.push_back(idx);
        if (waiting_workers_ > 0) ready_cv_.notify_one();
      } else if (--unfinished_ == 0) {
        if (waiting_workers_ > 0) ready_cv_.notify_all();
      }
    }
  }
}

void Host::drain_legacy(int threads) {
  size_t pending = 0;
  {
    std::lock_guard<RankedMutex> lock(mu_);
    ready_.clear();
    unfinished_ = 0;
    abort_ = failed_;  // a prior drain's sticky failure still aborts
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i] == nullptr) continue;
      if (lanes_[i]->next >= lanes_[i]->requests.size()) continue;
      ready_.push_back(i);
      ++unfinished_;
    }
    pending = unfinished_;
  }

  if (threads == 1 || pending <= 1) {
    // Serial reference path: same scheduler, caller's thread.
    scheduler_loop();
  } else {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t)
      pool.submit([this] { scheduler_loop(); });
    pool.wait_idle();
  }
}

// ---------------------------------------------------------------------------
// Epoch-barrier overload scheduler (DESIGN.md §9).
//
// Each epoch runs one chunk per active lane over the worker pool — lanes
// touch only lane-local state, so the parallel phase is trivially
// deterministic — then a serial barrier applies every cross-lane decision
// (global queue bound, arbiter ladder) in lane slot order. The resulting
// shed/arbiter ledgers are bit-identical for any thread count.

void Host::shed(HostLane& lane, size_t request_index, ShedCause cause) {
  const size_t c = static_cast<size_t>(cause);
  ++lane.overload.shed[c];
  lane.series->shed[c].fetch_add(1, std::memory_order_relaxed);
  if (options_.keep_shed_events)
    lane.shed_events.push_back(ShedEvent{request_index, cause, lane.sim_now});
}

void Host::admit_arrivals(HostLane& lane, bool admission_closed) {
  while (lane.arrived < lane.requests.size() &&
         lane.requests[lane.arrived].arrival_ns <= lane.sim_now) {
    const size_t idx = lane.arrived++;
    ++lane.overload.offered;
    // Every offered arrival feeds the inter-arrival predictor (prewarm
    // handshake): sheds are demand too.
    lane.predictor.observe(lane.requests[idx].arrival_ns);
    if (admission_closed) {
      shed(lane, idx, ShedCause::kAdmissionClosed);
      continue;
    }
    if (options_.max_lane_queue > 0 &&
        lane.queue.size() >= options_.max_lane_queue) {
      if (options_.drop_policy == DropPolicy::kTailDrop) {
        shed(lane, idx, ShedCause::kQueueFull);
        continue;
      }
      // Oldest-drop: the newcomer displaces the stalest queued request.
      shed(lane, lane.queue.front(), ShedCause::kQueueFull);
      lane.queue.pop_front();
    }
    lane.queue.push_back(idx);
    ++lane.overload.admitted;
    lane.series->admitted.fetch_add(1, std::memory_order_relaxed);
    lane.overload.queue_peak =
        std::max(lane.overload.queue_peak, lane.queue.size());
  }
}

void Host::process_chunk_overload(HostLane& lane, bool admission_closed) {
  const int prior = lane.in_flight.fetch_add(1, std::memory_order_acq_rel);
  TOSS_ASSERT(prior == 0, "lane re-entered concurrently");
  if (prior != 0)
    serialization_violations_.fetch_add(1, std::memory_order_relaxed);

  Nanos chunk_service_ns = 0;
  int budget = options_.chunk;
  while (budget > 0) {
    admit_arrivals(lane, admission_closed);
    if (lane.queue.empty()) {
      if (lane.arrived >= lane.requests.size()) break;  // stream drained
      // Idle: fast-forward the simulated clock to the next arrival.
      lane.sim_now =
          std::max(lane.sim_now, lane.requests[lane.arrived].arrival_ns);
      continue;
    }
    // Pop order: FIFO on the legacy path; earliest-deadline-first once QoS
    // classes are engaged (zero deadlines sort last, ties keep the lowest
    // queue position), so SLO-bearing work is served before best-effort.
    size_t pos = 0;
    if (qos_engaged_ && lane.queue.size() > 1) {
      Nanos best_deadline = std::numeric_limits<Nanos>::max();
      for (size_t q = 0; q < lane.queue.size(); ++q) {
        const Nanos dl = lane.requests[lane.queue[q]].deadline_ns;
        const Nanos key = dl > 0 ? dl : std::numeric_limits<Nanos>::max();
        if (key < best_deadline) {
          best_deadline = key;
          pos = q;
        }
      }
    }
    const size_t idx = lane.queue[pos];
    lane.queue.erase(lane.queue.begin() + static_cast<std::ptrdiff_t>(pos));
    const Request& r = lane.requests[idx];
    if (options_.enforce_deadlines && r.deadline_ns > 0 &&
        lane.sim_now > r.deadline_ns) {
      // SLO-dead before service even starts: shed instead of wasting a
      // restore. Costs no simulated time and no chunk budget.
      shed(lane, idx, ShedCause::kDeadlineExpired);
      continue;
    }
    Result<InvocationOutcome> out =
        lane.host->invoke(lane.name, r.input, r.seed);
    if (!out.ok()) {  // inputs are pre-validated; belt-and-braces path
      record_error(out.code(), out.message());
      lane.arrived = lane.requests.size();
      lane.queue.clear();
      break;
    }
    const InvocationOutcome& o = *out;
    lane.sim_now += o.result.total_ns();
    chunk_service_ns += o.result.total_ns();
    lane.last_setup_ns = o.result.setup.setup_ns;
    ++lane.overload.completed;
    if (r.deadline_ns > 0 && lane.sim_now > r.deadline_ns) {
      ++lane.overload.deadline_misses;
      lane.series->deadline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    lane.series->record(o.toss_phase, o.cold_boot, o.result.total_ns(),
                        o.result.setup.setup_ns, o.result.exec.exec_ns,
                        o.charge, o.recovery);
    if (options_.keep_outcomes) lane.outcomes.push_back(o);
    --budget;
  }

  // Watchdog: a chunk whose simulated service time blows the bound marks a
  // pathologically slow lane; trip its breaker so it degrades to the
  // single-tier rung instead of dragging the whole epoch.
  if (options_.watchdog_chunk_budget_ns > 0 &&
      chunk_service_ns > options_.watchdog_chunk_budget_ns) {
    lane.host->trip_breaker(lane.name);
    ++lane.overload.watchdog_trips;
    lane.series->watchdog_trips.fetch_add(1, std::memory_order_relaxed);
  }

  lane.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void Host::enforce_global_queue_bound() {
  if (options_.max_global_queue == 0) return;
  size_t total = 0;
  for (const auto& lane : lanes_)
    if (lane != nullptr) total += lane->queue.size();
  while (total > options_.max_global_queue) {
    // Trim the longest queue; ties break toward the lowest lane index.
    // With QoS classes engaged, class outranks length: bronze queues are
    // trimmed to exhaustion before unclassed ones, and gold last.
    size_t victim = lanes_.size();
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i] == nullptr || lanes_[i]->queue.empty()) continue;
      if (victim == lanes_.size()) {
        victim = i;
        continue;
      }
      if (qos_engaged_) {
        const int ri = qos_shed_rank(lanes_[i]->qos.cls);
        const int rv = qos_shed_rank(lanes_[victim]->qos.cls);
        if (ri != rv) {
          if (ri < rv) victim = i;
          continue;
        }
      }
      if (lanes_[i]->queue.size() > lanes_[victim]->queue.size()) victim = i;
    }
    if (victim == lanes_.size()) return;  // unreachable; defensive
    HostLane& lane = *lanes_[victim];
    const size_t idx = options_.drop_policy == DropPolicy::kTailDrop
                           ? lane.queue.back()
                           : lane.queue.front();
    if (options_.drop_policy == DropPolicy::kTailDrop)
      lane.queue.pop_back();
    else
      lane.queue.pop_front();
    shed(lane, idx, ShedCause::kGlobalOverload);
    --total;
  }
}

FastTierArbiter* Host::ensure_arbiter() {
  if (arbiter_ == nullptr) {
    ArbiterOptions aopt = options_.arbiter;
    if (aopt.fast_budget_bytes == 0)
      aopt.fast_budget_bytes = cfg_.fastest().capacity_bytes;
    arbiter_ = std::make_unique<FastTierArbiter>(aopt, aopt.fast_budget_bytes,
                                                 cfg_.tier_count());
  }
  return arbiter_.get();
}

u64 Host::fast_budget_bytes() const {
  return options_.arbiter.fast_budget_bytes != 0
             ? options_.arbiter.fast_budget_bytes
             : cfg_.fastest().capacity_bytes;
}

u64 Host::arbiter_resident_fast_bytes() const {
  return arbiter_ != nullptr ? arbiter_->resident_fast_bytes() : 0;
}

void Host::arbiter_tick(FastTierArbiter& arbiter, u64 epoch) {
  std::vector<FastTierArbiter::LaneDemand> demands;
  demands.reserve(lanes_.size());
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i] == nullptr) continue;  // migrated away
    HostLane& lane = *lanes_[i];
    FastTierArbiter::LaneDemand d;
    d.lane = i;
    d.name = &lane.name;
    const bool drained = lane.drained();
    d.active = !drained && !lane.requests.empty();
    if (drained && !lane.finish_reported && !lane.requests.empty()) {
      d.just_finished = true;
      lane.finish_reported = true;
    }
    const ServerlessPlatform::ResidentBytes rb =
        lane.host->resident_bytes(lane.name);
    d.fast_bytes = rb.fast;
    d.slow_bytes = rb.slow;
    const TossFunction* toss = lane.host->toss_state(lane.name);
    d.demotable = toss != nullptr && toss->phase() == TossPhase::kTiered;
    d.cold_cost_ns = lane.last_setup_ns;
    d.qos = lane.qos.cls;
    // QoS mode: hand the arbiter the lane's remaining Eq-1 demotion curve
    // (cheapest prefix per strictly-smaller rank-0 footprint, nearest
    // first) so it can demote continuously instead of by fixed rung.
    if (qos_engaged_ && d.demotable) {
      if (const TieringDecision* dec = toss->decision()) {
        d.curve.reserve(dec->demotion_curve.size());
        for (const CostCurvePoint& p : dec->demotion_curve)
          d.curve.push_back(CurveStep{p.prefix, p.fast_bytes});
      }
    }
    // Prewarm handshake: a warm VM whose next arrival is predicted soon is
    // worth more than its GDSF priority alone says. -1 = no prediction.
    if (options_.arbiter.prewarm_hints) {
      if (const std::optional<Nanos> next = lane.predictor.predicted_next();
          next.has_value())
        d.predicted_reuse_gap_ns = std::max<Nanos>(0, *next - lane.sim_now);
    }
    demands.push_back(d);
  }

  const auto apply = [this](size_t li, int rung,
                            const RetierBound& bound) -> std::optional<u64> {
    HostLane& lane = *lanes_[li];
    TossFunction* toss = lane.host->toss_state_mutable(lane.name);
    if (toss == nullptr || !toss->retier(bound)) return std::nullopt;
    if (rung > lane.rung) {
      ++lane.overload.demotions;
      lane.series->demotions.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++lane.overload.promotions;
      lane.series->promotions.fetch_add(1, std::memory_order_relaxed);
    }
    lane.rung = rung;
    return lane.host->resident_bytes(lane.name).fast;
  };
  arbiter.tick(epoch, demands, apply);
}

Result<EpochPlan> Host::plan_epoch() {
  if (failed_) return {error_code_, error_message_};
  EpochPlan plan;
  plan.active.reserve(lanes_.size());
  for (size_t i = 0; i < lanes_.size(); ++i)
    if (lanes_[i] != nullptr && !lanes_[i]->drained()) plan.active.push_back(i);
  if (plan.active.empty()) return plan;

  FastTierArbiter* arbiter =
      options_.arbiter.enabled ? ensure_arbiter() : nullptr;
  // Snapshot the admission gates once per epoch so every lane sees the same
  // decision regardless of scheduling. Per-class gates (QoS mode) resolve
  // here, serially; outside QoS mode every class reads the same gate.
  plan.closed.assign(plan.active.size(), 0);
  if (arbiter != nullptr)
    for (size_t k = 0; k < plan.active.size(); ++k)
      plan.closed[k] =
          arbiter->admission_closed(lanes_[plan.active[k]]->qos.cls) ? 1 : 0;
  return plan;
}

void Host::run_planned_lane(const EpochPlan& plan, size_t k) {
  process_chunk_overload(*lanes_[plan.active[k]], plan.closed[k] != 0);
}

Result<void> Host::finish_epoch() {
  // The executor joined before this runs, so reading the failure flag and
  // applying the cross-lane barrier decisions cannot race with workers.
  if (failed_) return {error_code_, error_message_};
  enforce_global_queue_bound();
  if (options_.arbiter.enabled) {
    FastTierArbiter& arbiter = *ensure_arbiter();
    arbiter_tick(arbiter, epoch_);
    closed_streak_ = arbiter.admission_closed() ? closed_streak_ + 1 : 0;
  }
  ++epoch_;
  return {};
}

Result<void> Host::step_epoch(LaneExecutor* executor) {
  Result<EpochPlan> plan = plan_epoch();
  if (!plan.ok()) return {plan.code(), plan.message()};
  if (plan->empty()) return {};
  if (executor != nullptr) {
    executor->run_epoch(plan->active.size(),
                        [&](size_t k) { run_planned_lane(*plan, k); });
  } else {
    for (size_t k = 0; k < plan->active.size(); ++k) run_planned_lane(*plan, k);
  }
  return finish_epoch();
}

Result<EngineReport> Host::drain(int threads) {
  if (failed_) return {error_code_, error_message_};
  if (threads <= 0) threads = ThreadPool::hardware_threads();

  // Real elapsed time is a measurement channel (EngineReport::wall_ns),
  // not simulated state; the ledger-equality harness strips it.
  const auto t0 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  if (options_.overload_protection()) {
    std::unique_ptr<LaneExecutor> executor;
    if (threads > 1 && function_count() > 1)
      executor = std::make_unique<LaneExecutor>(threads);
    while (!idle()) {
      if (!step_epoch(executor.get()).ok()) break;
    }
  } else {
    drain_legacy(threads);
  }
  const auto t1 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  wall_ns_ += static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  if (failed_) return {error_code_, error_message_};
  return report(threads);
}

EngineReport Host::report(int threads) const {
  EngineReport report;
  report.threads = threads;
  report.wall_ns = wall_ns_;
  report.serialization_violations =
      serialization_violations_.load(std::memory_order_relaxed);
  report.functions.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;  // migrated away; its new host reports it
    FunctionReport f;
    f.name = lane->name;
    f.policy = lane->policy;
    f.stats = lane->host->stats(lane->name);
    if (const TossFunction* toss = lane->host->toss_state(lane->name))
      f.final_phase = toss->phase();
    // Copied, not moved: the lanes stay serviceable and the next drain's
    // report must still be cumulative.
    f.outcomes = lane->outcomes;
    f.overload = lane->overload;
    f.shed_events = lane->shed_events;
    report.functions.push_back(std::move(f));
  }
  report.metrics = metrics();
  if (arbiter_ != nullptr) report.arbiter = arbiter_->report();
  return report;
}

MetricsSnapshot Host::metrics() const {
  MetricsSnapshot snap = metrics_.snapshot();
  snap.host = name_;
  // Schema-4 ladder rollup: what every still-resident lane pins in each
  // rank right now, against the rank's installed capacity.
  snap.tiers.resize(cfg_.tier_count());
  for (size_t r = 0; r < snap.tiers.size(); ++r) {
    snap.tiers[r].tier = tier_name(tier_index(r));
    snap.tiers[r].capacity_bytes = cfg_.tiers[r].capacity_bytes;
  }
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    const auto resident = lane->host->resident_bytes(lane->name);
    for (size_t r = 0; r < snap.tiers.size() && r < resident.per_tier.size();
         ++r)
      snap.tiers[r].resident_bytes += resident.per_tier[r];
  }
  for (TierRollup& t : snap.tiers)
    if (t.capacity_bytes > 0)
      t.occupancy = static_cast<double>(t.resident_bytes) /
                    static_cast<double>(t.capacity_bytes);
  if (qos_engaged_) {
    // Schema-6 SLO ledgers: per-function attainment from the lane's
    // overload ledger (a shed or SLO-late request counts against the
    // class), plus the per-class rollup in QosClass enum order. Both are
    // derived from barrier-serial counters, so they inherit the engine's
    // thread-count independence.
    for (FunctionMetrics& m : snap.functions) {
      const HostLane* lane = find_lane(m.function);
      if (lane == nullptr || lane->qos.cls == QosClass::kNone) continue;
      m.qos = lane->qos.cls;
      m.slo_slowdown = lane->qos.slo_slowdown;
      m.slo.offered = lane->overload.offered;
      m.slo.completed = lane->overload.completed;
      m.slo.slo_met = lane->overload.completed - lane->overload.deadline_misses;
    }
    for (QosClass cls : {QosClass::kGold, QosClass::kBronze}) {
      QosClassRollup rollup;
      rollup.cls = cls;
      bool any = false;
      for (const auto& lane : lanes_) {
        if (lane == nullptr || lane->qos.cls != cls) continue;
        any = true;
        rollup.ledger.offered += lane->overload.offered;
        rollup.ledger.completed += lane->overload.completed;
        rollup.ledger.slo_met +=
            lane->overload.completed - lane->overload.deadline_misses;
      }
      if (any) snap.qos.push_back(rollup);
    }
  }
  return snap;
}

const TossFunction* Host::toss_state(const std::string& name) const {
  const HostLane* lane = find_lane(name);
  return lane != nullptr ? lane->host->toss_state(name) : nullptr;
}

const ServerlessPlatform* Host::lane_host(const std::string& name) const {
  const HostLane* lane = find_lane(name);
  return lane != nullptr ? lane->host.get() : nullptr;
}

// ---------------------------------------------------------------------------
// Migration hooks (platform/cluster.hpp drives these at its serial barrier).

const HostLane* Host::lane_at(size_t index) const {
  return index < lanes_.size() ? lanes_[index].get() : nullptr;
}

size_t Host::largest_tiered_lane() const {
  size_t best = npos;
  u64 best_bytes = 0;
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const HostLane* lane = lanes_[i].get();
    if (lane == nullptr || lane->drained()) continue;
    const TossFunction* toss = lane->host->toss_state(lane->name);
    if (toss == nullptr || toss->phase() != TossPhase::kTiered) continue;
    const u64 fast = lane->host->resident_bytes(lane->name).fast;
    if (best == npos || fast > best_bytes) {
      best = i;
      best_bytes = fast;
    }
  }
  return best;
}

std::unique_ptr<HostLane> Host::extract_lane(size_t index) {
  if (index >= lanes_.size()) return nullptr;
  // The null tombstone keeps later slot indices stable; the arbiter's
  // stale-entry handling pops the vanished lane from its demote stack on
  // the next tick (the same path a finished lane takes).
  return std::move(lanes_[index]);
}

Result<void> Host::adopt_lane(std::unique_ptr<HostLane> lane) {
  if (lane == nullptr)
    return {ErrorCode::kInvalidRequest, name_ + ": cannot adopt a null lane"};
  if (find_lane(lane->name) != nullptr)
    return {ErrorCode::kDuplicateFunction,
            lane->name + " is already registered on host " + name_};
  // Invocations recorded before the move stay in the source host's
  // registry; from here on this host's series accumulates them — the
  // cluster rollup sums both.
  lane->series = metrics_.series(lane->name);
  if (lane->qos.cls != QosClass::kNone) qos_engaged_ = true;
  if (lane->rung != 0) {
    // Arrive un-demoted: the migration target was chosen for its headroom,
    // so restore the unconstrained Step-IV placement and let this host's
    // arbiter re-demote if its budget disagrees.
    if (TossFunction* toss = lane->host->toss_state_mutable(lane->name))
      toss->retier(std::nullopt);
    lane->rung = 0;
  }
  lanes_.push_back(std::move(lane));
  return {};
}

// ---------------------------------------------------------------------------
// Failure-domain hooks (cluster failover / health governance).

Result<void> Host::adopt_failover_lane(std::unique_ptr<HostLane> lane,
                                       u64* requeued, u64* shed_count) {
  if (lane == nullptr)
    return {ErrorCode::kInvalidRequest, name_ + ": cannot adopt a null lane"};
  const std::string fn = lane->name;
  if (Result<void> adopted = adopt_lane(std::move(lane)); !adopted.ok())
    return adopted;
  HostLane* l = find_lane(fn);
  u64 dropped = 0;
  if (options_.max_lane_queue > 0) {
    while (l->queue.size() > options_.max_lane_queue) {
      // Same drop policy as admission: tail-drop sheds the newest queued
      // request, oldest-drop the stalest.
      const size_t idx = options_.drop_policy == DropPolicy::kTailDrop
                             ? l->queue.back()
                             : l->queue.front();
      if (options_.drop_policy == DropPolicy::kTailDrop)
        l->queue.pop_back();
      else
        l->queue.pop_front();
      shed(*l, idx, ShedCause::kHostLost);
      ++dropped;
    }
  }
  if (requeued != nullptr) *requeued = l->queue.size();
  if (shed_count != nullptr) *shed_count = dropped;
  return {};
}

u64 Host::abandon_pending(ShedCause cause) {
  u64 dropped = 0;
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    // Queued requests were admitted but never served.
    while (!lane->queue.empty()) {
      shed(*lane, lane->queue.front(), cause);
      lane->queue.pop_front();
      ++dropped;
    }
    // Future arrivals never reach admission anywhere: they are offered to
    // (and shed by) the dead host so each one still has a typed outcome.
    while (lane->arrived < lane->requests.size()) {
      const size_t idx = lane->arrived++;
      ++lane->overload.offered;
      shed(*lane, idx, cause);
      ++dropped;
    }
  }
  return dropped;
}

void Host::apply_brownout(Nanos stall_ns) {
  if (stall_ns <= 0) return;
  for (const auto& lane : lanes_) {
    if (lane == nullptr || lane->drained()) continue;
    lane->sim_now += stall_ns;
  }
}

void Host::set_budget_withdrawn(bool withdrawn) {
  if (!options_.arbiter.enabled) return;
  ensure_arbiter()->set_budget_withdrawn(withdrawn);
}

}  // namespace toss
