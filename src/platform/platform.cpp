#include "platform/platform.hpp"

#include <algorithm>

namespace toss {

namespace {

/// Bounded-retry wrapper for the baseline recovery path: runs `fn` up to
/// retry.max_attempts times, charging jittered backoff (simulated time) into
/// the recovery ledger between attempts. Returns false when every attempt
/// failed; non-transient errors stop retrying immediately.
template <typename F>
bool with_retry(const RetryPolicy& retry, Rng& rng, RecoveryInfo* recovery,
                F&& fn) {
  const int attempts = std::max(1, retry.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++recovery->retries;
      recovery->overhead_ns += retry.backoff_ns(attempt - 1, rng);
    }
    try {
      fn();
      return true;
    } catch (const Error& e) {
      ++recovery->faults_seen;
      if (!is_transient(e.code())) return false;
    }
  }
  return false;
}

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kVanilla: return "vanilla";
    case PolicyKind::kReap: return "reap";
    case PolicyKind::kFaasnap: return "faasnap";
    case PolicyKind::kToss: return "toss";
  }
  return "?";
}

Result<void> FunctionRegistration::validate() const {
  if (spec_.name.empty())
    return {ErrorCode::kInvalidOptions, "function name must not be empty"};
  if (spec_.memory_mb == 0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": memory_mb must be >= 1"};
  if (concurrency_ < 1)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": concurrency must be >= 1"};
  const RetryPolicy& r = toss_options_.retry;
  if (r.max_attempts < 1)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": retry.max_attempts must be >= 1"};
  if (r.base_backoff_ns < 0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": retry.base_backoff_ns must be >= 0"};
  if (r.multiplier < 1.0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": retry.multiplier must be >= 1"};
  if (r.jitter < 0.0 || r.jitter > 1.0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": retry.jitter must be in [0, 1]"};
  if (toss_options_.slo_slowdown && *toss_options_.slo_slowdown < 0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": slo slowdown target must be >= 0"};
  if (breaker_.failure_threshold == 0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": breaker.failure_threshold must be >= 1"};
  if (breaker_.cooldown_invocations == 0)
    return {ErrorCode::kInvalidOptions,
            spec_.name + ": breaker.cooldown_invocations must be >= 1"};
  if (kind_ == PolicyKind::kToss) {
    const TossOptions& o = toss_options_;
    if (o.bin_count < 1)
      return {ErrorCode::kInvalidOptions, spec_.name + ": bin_count must be >= 1"};
    if (o.stable_invocations == 0)
      return {ErrorCode::kInvalidOptions,
              spec_.name + ": stable_invocations must be >= 1"};
    if (o.stable_invocations > o.max_profiling_invocations)
      return {ErrorCode::kInvalidOptions,
              spec_.name +
                  ": stable_invocations must be <= max_profiling_invocations"};
    if (o.unified_change_epsilon < 0 || o.unified_change_epsilon >= 1)
      return {ErrorCode::kInvalidOptions,
              spec_.name + ": unified_change_epsilon must be in [0, 1)"};
    if (o.slowdown_threshold && *o.slowdown_threshold < 0)
      return {ErrorCode::kInvalidOptions,
              spec_.name + ": slowdown_threshold must be >= 0"};
    if (o.reprofile_budget < 0)
      return {ErrorCode::kInvalidOptions,
              spec_.name + ": reprofile_budget must be >= 0"};
    if (o.analysis_threads < 1)
      return {ErrorCode::kInvalidOptions,
              spec_.name + ": analysis_threads must be >= 1"};
  }
  return {};
}

ServerlessPlatform::ServerlessPlatform(SystemConfig cfg, PricingPlan pricing,
                                       FaultPlan faults)
    : cfg_(std::move(cfg)), pricing_(pricing), store_(cfg_),
      invoker_(cfg_, store_) {
  // Attach the injector only when a plan is armed in a faults-enabled
  // build, so the production path keeps a null probe pointer everywhere.
  if (fault_injection_enabled() && faults.armed()) {
    injector_ = std::make_unique<FaultInjector>(std::move(faults), /*salt=*/0);
    store_.attach_faults(injector_.get());
  }
}

Result<void> ServerlessPlatform::register_function(
    const FunctionRegistration& registration) {
  if (Result<void> valid = registration.validate(); !valid.ok()) return valid;
  const std::string& name = registration.spec().name;
  if (functions_.count(name) > 0)
    return {ErrorCode::kDuplicateFunction, name + " is already registered"};

  FunctionRuntime rt{FunctionModel(registration.spec()),
                     registration.policy(),
                     registration.toss_options(),
                     nullptr,
                     0,
                     std::nullopt,
                     FunctionStats{},
                     CircuitBreaker(registration.breaker_options()),
                     Rng(mix_seed(mix_seed(registration.seed(), name),
                                  "baseline-recovery"))};
  auto [it, _] = functions_.insert_or_assign(name, std::move(rt));
  if (registration.policy() == PolicyKind::kToss) {
    // Bind the TossFunction to the model at its final (node-stable) address
    // inside the map, only after the move above.
    it->second.toss = std::make_unique<TossFunction>(
        cfg_, store_, it->second.model, registration.toss_options(),
        registration.seed());
  }
  return {};
}

Result<InvocationOutcome> ServerlessPlatform::invoke(const std::string& name,
                                                     int input, u64 seed) {
  auto it = functions_.find(name);
  if (it == functions_.end())
    return {ErrorCode::kUnknownFunction, name + " is not registered"};
  if (input < 0 || input >= kNumInputs)
    return {ErrorCode::kInvalidRequest,
            name + ": input " + std::to_string(input) + " outside [0, " +
                std::to_string(kNumInputs) + ")"};
  FunctionRuntime& rt = it->second;

  InvocationOutcome out;
  if (rt.kind == PolicyKind::kToss) {
    // The TossFunction pins its FunctionModel by reference; rt.model never
    // moves after registration (node-based map), so the pointer into the
    // runtime stays valid.
    rt.toss->set_recovery_suspended(rt.breaker.should_suspend());
    const TossInvocationRecord rec = rt.toss->handle(input, seed);
    out.result = rec.result;
    out.toss_phase = rec.phase;
    out.cold_boot = rec.phase == TossPhase::kInitial ||
                    rec.recovery.fallback == FallbackLevel::kColdBoot;
    out.recovery = rec.recovery;
    rt.breaker.observe(rec.recovery.engaged());
  } else {
    out = invoke_baseline(rt, input, seed);
  }
  out.charge = charge_for(rt, out.result);

  rt.stats.invocations++;
  rt.stats.total_ns.add(out.result.total_ns());
  rt.stats.setup_ns.add(out.result.setup.setup_ns);
  rt.stats.exec_ns.add(out.result.exec.exec_ns);
  rt.stats.total_charge += out.charge;
  rt.stats.recovered_faults += out.recovery.faults_seen;
  rt.stats.recovery_retries += out.recovery.retries;
  if (out.recovery.fallback != FallbackLevel::kNone) ++rt.stats.fallbacks;
  if (out.recovery.quarantined) ++rt.stats.quarantines;
  if (out.recovery.regenerated) ++rt.stats.regenerations;
  if (!out.recovery.completed) ++rt.stats.incomplete;
  return out;
}

InvocationOutcome ServerlessPlatform::invoke_baseline(FunctionRuntime& rt,
                                                      int input, u64 seed) {
  InvocationOutcome out;
  RecoveryInfo& rc = out.recovery;
  const RetryPolicy& retry = rt.toss_options.retry;
  const Invocation inv = rt.model.invoke(input, seed);
  if (rt.snapshot_id == 0) {
    // First-ever request: cold boot, then snapshot. REAP/FaaSnap record
    // their working set during this invocation. A crash or torn snapshot
    // write retries the whole initial execution; on exhaustion the next
    // request starts cold again.
    out.cold_boot = true;
    if (!with_retry(retry, rt.recovery_rng, &rc, [&] {
          rt.snapshot_id =
              invoker_.initial_execution(rt.model, inv, &out.result);
        })) {
      // initial_execution reports timings before the snapshot write, so a
      // torn put still counts as a completed (if snapshot-less) run; only
      // an all-attempts crash leaves the result empty.
      rc.completed = out.result.exec.exec_ns > 0;
      out.result.setup.setup_ns += rc.overhead_ns;
      return out;
    }
    if (rt.kind == PolicyKind::kReap) {
      rt.ws = ReapPolicy::record_working_set(inv.trace, rt.model.guest_pages());
    } else if (rt.kind == PolicyKind::kFaasnap) {
      rt.ws = FaasnapPolicy::record_working_set(inv.trace,
                                                rt.model.guest_pages());
    }
    out.result.setup.setup_ns += rc.overhead_ns;
    return out;
  }
  bool restored = false;
  switch (rt.kind) {
    case PolicyKind::kVanilla: {
      VanillaPolicy policy(store_, rt.snapshot_id);
      restored = with_retry(retry, rt.recovery_rng, &rc,
                            [&] { out.result = invoker_.invoke(policy, inv); });
      break;
    }
    case PolicyKind::kReap: {
      ReapPolicy policy(store_, rt.snapshot_id, *rt.ws);
      restored = with_retry(retry, rt.recovery_rng, &rc,
                            [&] { out.result = invoker_.invoke(policy, inv); });
      break;
    }
    case PolicyKind::kFaasnap: {
      FaasnapPolicy policy(store_, rt.snapshot_id, *rt.ws);
      restored = with_retry(retry, rt.recovery_rng, &rc,
                            [&] { out.result = invoker_.invoke(policy, inv); });
      break;
    }
    case PolicyKind::kToss:
      restored = true;  // handled by the caller
      break;
  }
  if (!restored) {
    // Terminal rung for baselines: re-run cold (which also regenerates the
    // snapshot, replacing whatever kept failing).
    rc.fallback = FallbackLevel::kColdBoot;
    out.cold_boot = true;
    if (!with_retry(retry, rt.recovery_rng, &rc, [&] {
          rt.snapshot_id =
              invoker_.initial_execution(rt.model, inv, &out.result);
        }))
      rc.completed = false;
  }
  out.result.setup.setup_ns += rc.overhead_ns;
  return out;
}

double ServerlessPlatform::charge_for(const FunctionRuntime& rt,
                                      const InvocationResult& result) const {
  const double duration_ms = to_ms(result.total_ns());
  const u64 mem_mb = rt.model.spec().memory_mb;
  if (rt.kind == PolicyKind::kToss && rt.toss &&
      rt.toss->phase() == TossPhase::kTiered && rt.toss->decision()) {
    const double slow_frac = rt.toss->decision()->slow_fraction;
    const u64 slow_mb =
        static_cast<u64>(slow_frac * static_cast<double>(mem_mb));
    return pricing_.tiered_invocation_cost(mem_mb - slow_mb, slow_mb,
                                           duration_ms);
  }
  return pricing_.dram_invocation_cost(mem_mb, duration_ms);
}

Result<std::vector<InvocationOutcome>> ServerlessPlatform::run(
    const std::string& name, const std::vector<Request>& requests) {
  std::vector<InvocationOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (const Request& r : requests) {
    Result<InvocationOutcome> out = invoke(name, r.input, r.seed);
    if (!out.ok()) return {out.code(), out.message()};
    outcomes.push_back(std::move(out).value());
  }
  return outcomes;
}

const FunctionStats& ServerlessPlatform::stats(const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end())
    throw Error(ErrorCode::kUnknownFunction, name + " is not registered");
  return it->second.stats;
}

const TossFunction* ServerlessPlatform::toss_state(
    const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.toss.get();
}

const CircuitBreaker* ServerlessPlatform::breaker(
    const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second.breaker;
}

TossFunction* ServerlessPlatform::toss_state_mutable(const std::string& name) {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.toss.get();
}

ServerlessPlatform::ResidentBytes ServerlessPlatform::resident_bytes(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) return {};
  const FunctionRuntime& rt = it->second;
  ResidentBytes out;
  out.per_tier.assign(cfg_.tier_count(), 0);
  if (rt.kind == PolicyKind::kToss && rt.toss) {
    out.fast = rt.toss->fast_resident_bytes();
    out.slow = rt.toss->slow_resident_bytes();
    for (size_t r = 0; r < out.per_tier.size(); ++r)
      out.per_tier[r] = rt.toss->tier_resident_bytes(r);
    return out;
  }
  // Baselines restore (or boot) the whole image into DRAM; REAP/FaaSnap
  // prefetch less up front but fault the rest in on demand, so the steady
  // state resident set is still the full image.
  out.fast = rt.model.guest_bytes();
  out.per_tier[0] = out.fast;
  return out;
}

bool ServerlessPlatform::trip_breaker(const std::string& name) {
  auto it = functions_.find(name);
  if (it == functions_.end()) return false;
  it->second.breaker.trip();
  return true;
}

}  // namespace toss
