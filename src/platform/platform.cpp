#include "platform/platform.hpp"

#include <stdexcept>

namespace toss {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kVanilla: return "vanilla";
    case PolicyKind::kReap: return "reap";
    case PolicyKind::kFaasnap: return "faasnap";
    case PolicyKind::kToss: return "toss";
  }
  return "?";
}

ServerlessPlatform::ServerlessPlatform(SystemConfig cfg, PricingPlan pricing)
    : cfg_(std::move(cfg)), pricing_(pricing), store_(cfg_),
      invoker_(cfg_, store_) {}

void ServerlessPlatform::register_function(FunctionSpec spec, PolicyKind kind,
                                           TossOptions toss_options) {
  const std::string name = spec.name;
  FunctionRuntime rt{FunctionModel(std::move(spec)), kind, toss_options,
                     nullptr, 0, std::nullopt, FunctionStats{}};
  auto [it, _] = functions_.insert_or_assign(name, std::move(rt));
  if (kind == PolicyKind::kToss) {
    // Bind the TossFunction to the model at its final (node-stable) address
    // inside the map, only after the move above.
    it->second.toss = std::make_unique<TossFunction>(
        cfg_, store_, it->second.model, toss_options);
  }
}

InvocationOutcome ServerlessPlatform::invoke(const std::string& name,
                                             int input, u64 seed) {
  auto it = functions_.find(name);
  if (it == functions_.end())
    throw std::out_of_range("unknown function: " + name);
  FunctionRuntime& rt = it->second;

  InvocationOutcome out;
  if (rt.kind == PolicyKind::kToss) {
    // The TossFunction pins its FunctionModel by reference; rt.model never
    // moves after registration (node-based map), so the pointer into the
    // runtime stays valid.
    const TossInvocationRecord rec = rt.toss->handle(input, seed);
    out.result = rec.result;
    out.toss_phase = rec.phase;
    out.cold_boot = rec.phase == TossPhase::kInitial;
  } else {
    out = invoke_baseline(rt, input, seed);
  }
  out.charge = charge_for(rt, out.result);

  rt.stats.invocations++;
  rt.stats.total_ns.add(out.result.total_ns());
  rt.stats.setup_ns.add(out.result.setup.setup_ns);
  rt.stats.exec_ns.add(out.result.exec.exec_ns);
  rt.stats.total_charge += out.charge;
  return out;
}

InvocationOutcome ServerlessPlatform::invoke_baseline(FunctionRuntime& rt,
                                                      int input, u64 seed) {
  InvocationOutcome out;
  const Invocation inv = rt.model.invoke(input, seed);
  if (rt.snapshot_id == 0) {
    // First-ever request: cold boot, then snapshot. REAP/FaaSnap record
    // their working set during this invocation.
    rt.snapshot_id = invoker_.initial_execution(rt.model, inv, &out.result);
    out.cold_boot = true;
    if (rt.kind == PolicyKind::kReap) {
      rt.ws = ReapPolicy::record_working_set(inv.trace, rt.model.guest_pages());
    } else if (rt.kind == PolicyKind::kFaasnap) {
      rt.ws = FaasnapPolicy::record_working_set(inv.trace,
                                                rt.model.guest_pages());
    }
    return out;
  }
  switch (rt.kind) {
    case PolicyKind::kVanilla: {
      VanillaPolicy policy(store_, rt.snapshot_id);
      out.result = invoker_.invoke(policy, inv);
      break;
    }
    case PolicyKind::kReap: {
      ReapPolicy policy(store_, rt.snapshot_id, *rt.ws);
      out.result = invoker_.invoke(policy, inv);
      break;
    }
    case PolicyKind::kFaasnap: {
      FaasnapPolicy policy(store_, rt.snapshot_id, *rt.ws);
      out.result = invoker_.invoke(policy, inv);
      break;
    }
    case PolicyKind::kToss:
      break;  // handled by the caller
  }
  return out;
}

double ServerlessPlatform::charge_for(const FunctionRuntime& rt,
                                      const InvocationResult& result) const {
  const double duration_ms = to_ms(result.total_ns());
  const u64 mem_mb = rt.model.spec().memory_mb;
  if (rt.kind == PolicyKind::kToss && rt.toss &&
      rt.toss->phase() == TossPhase::kTiered && rt.toss->decision()) {
    const double slow_frac = rt.toss->decision()->slow_fraction;
    const u64 slow_mb =
        static_cast<u64>(slow_frac * static_cast<double>(mem_mb));
    return pricing_.tiered_invocation_cost(mem_mb - slow_mb, slow_mb,
                                           duration_ms);
  }
  return pricing_.dram_invocation_cost(mem_mb, duration_ms);
}

std::vector<InvocationOutcome> ServerlessPlatform::run(
    const std::string& name, const std::vector<Request>& requests) {
  std::vector<InvocationOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (const Request& r : requests)
    outcomes.push_back(invoke(name, r.input, r.seed));
  return outcomes;
}

const FunctionStats& ServerlessPlatform::stats(const std::string& name) const {
  return functions_.at(name).stats;
}

const TossFunction* ServerlessPlatform::toss_state(
    const std::string& name) const {
  const auto& rt = functions_.at(name);
  return rt.toss.get();
}

}  // namespace toss
