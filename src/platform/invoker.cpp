#include "platform/invoker.hpp"

namespace toss {

Invoker::Invoker(const SystemConfig& cfg, SnapshotStore& store)
    : cfg_(&cfg), store_(&store) {}

InvocationResult Invoker::invoke(const RestorePolicy& policy,
                                 const Invocation& inv, bool drop_caches) {
  if (drop_caches) store_->drop_caches();
  MicroVm vm(*cfg_, *store_);
  InvocationResult r;
  r.setup = vm.restore(policy.plan_restore());
  r.exec = vm.execute(inv.trace, inv.cpu_ns);
  return r;
}

u64 Invoker::initial_execution(const FunctionModel& model,
                               const Invocation& inv,
                               InvocationResult* out_result) {
  store_->drop_caches();
  MicroVm vm(*cfg_, *store_);
  InvocationResult r;
  r.setup = vm.boot(model.guest_bytes(), VmState{});
  r.exec = vm.execute(inv.trace, inv.cpu_ns);
  vm.apply_writes(inv.trace);
  if (out_result) *out_result = r;
  return vm.take_snapshot();
}

Nanos Invoker::warm_dram_exec_ns(const Invocation& inv) const {
  AccessCostModel model(*cfg_);
  return inv.cpu_ns + inv.trace.time_uniform(model, tier_index(0));
}

}  // namespace toss
