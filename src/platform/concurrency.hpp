// Concurrency contention model (Fig 9).
//
// The paper runs up to 20 concurrent invocations on a 20-core host, so CPU
// time does not contend — shared memory tiers and the snapshot disk do.
// Each invocation is first simulated solo (its ExecutionResult carries
// per-tier time and device-bandwidth demand); this model then scales the
// contended components by each resource's aggregate utilization:
//
//   utilization(tier) = sum_i read_demand_i/read_bw + write_demand_i/write_bw
//   factor = max(1, utilization)
//
// evaluated over the makespan, iterated to a fixed point (slower
// invocations spread their demand over a longer window, lowering pressure).
#pragma once

#include <mutex>
#include <vector>

#include "util/contracts.hpp"
#include "vmm/microvm.hpp"

namespace toss {

// ---------------------------------------------------------------------------
// Lock-rank deadlock detection (checked builds).
//
// Every real mutex in the platform layer carries a rank; a thread may only
// acquire locks in strictly increasing rank order. Under TOSS_CHECKED an
// out-of-order (or same-rank, i.e. potentially ABBA) acquisition aborts
// immediately with both lock names — turning a once-in-a-thousand-runs
// deadlock hang into a deterministic crash at the first wrong nesting. In
// unchecked builds RankedMutex is a plain std::mutex wrapper with zero
// bookkeeping.
// ---------------------------------------------------------------------------

/// Global lock ordering, lowest acquired first. A thread holding
/// kEngineScheduler may take kMetricsRegistry, never the reverse.
enum class LockRank : int {
  kEngineScheduler = 10,  ///< PlatformEngine ready-queue mutex
  kMetricsRegistry = 20,  ///< MetricsRegistry series-map mutex
};

/// std::mutex with a rank, compatible with std::lock_guard /
/// std::unique_lock / std::condition_variable_any. Checked builds maintain
/// a thread-local stack of held ranks and abort on out-of-order
/// acquisition; a condition-variable wait unlocks (popping the rank) and
/// re-locks (re-validating), so waiting never wedges the detector.
class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_;
  const char* name_;
};

namespace detail {
/// Checked-build validation hooks (no-ops when TOSS_CHECKED is off).
/// Exposed so tests can drive the detector without a real deadlock.
void lock_rank_push(const RankedMutex& m);
void lock_rank_pop(const RankedMutex& m);
/// nullopt when acquiring `m` respects the rank order for this thread,
/// else a diagnostic naming the conflicting held lock.
std::optional<std::string> lock_rank_violation(const RankedMutex& m);
}  // namespace detail

namespace detail {
constexpr std::array<double, kMaxTiers> unit_factors() {
  std::array<double, kMaxTiers> a{};
  for (auto& v : a) v = 1.0;
  return a;
}
}  // namespace detail

/// One contention pool per ladder rank (0 = fastest) plus the snapshot
/// disk. Ranks beyond the active ladder stay at 1.0.
struct ContentionFactors {
  std::array<double, kMaxTiers> tier = detail::unit_factors();
  double disk = 1.0;

  double fast() const { return tier[0]; }
  double slow() const { return tier[1]; }
};

struct ConcurrencyOutcome {
  /// Per-invocation contended execution time (same order as input).
  std::vector<Nanos> exec_ns;
  ContentionFactors factors;
  int iterations = 0;  ///< kept for API stability; the model is closed-form
};

/// Scale the solo runs' execution times under K-way concurrency (K = size
/// of `solo`). All invocations are assumed to start together, as in the
/// paper's scalability experiment.
ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo);

}  // namespace toss
