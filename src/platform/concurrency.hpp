// Concurrency contention model (Fig 9).
//
// The paper runs up to 20 concurrent invocations on a 20-core host, so CPU
// time does not contend — shared memory tiers and the snapshot disk do.
// Each invocation is first simulated solo (its ExecutionResult carries
// per-tier time and device-bandwidth demand); this model then scales the
// contended components by each resource's aggregate utilization:
//
//   utilization(tier) = sum_i read_demand_i/read_bw + write_demand_i/write_bw
//   factor = max(1, utilization)
//
// evaluated over the makespan, iterated to a fixed point (slower
// invocations spread their demand over a longer window, lowering pressure).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/contracts.hpp"
#include "vmm/microvm.hpp"

namespace toss {

// ---------------------------------------------------------------------------
// Lock-rank deadlock detection (checked builds).
//
// Every real mutex in the platform layer carries a rank; a thread may only
// acquire locks in strictly increasing rank order. Under TOSS_CHECKED an
// out-of-order (or same-rank, i.e. potentially ABBA) acquisition aborts
// immediately with both lock names — turning a once-in-a-thousand-runs
// deadlock hang into a deterministic crash at the first wrong nesting. In
// unchecked builds RankedMutex is a plain std::mutex wrapper with zero
// bookkeeping.
// ---------------------------------------------------------------------------

/// Global lock ordering, lowest acquired first. A thread holding
/// kEngineScheduler may take kMetricsRegistry, never the reverse. The
/// LaneExecutor's locks rank below everything: a deque or park lock is
/// held only around its own queue operation — never across a lane task —
/// so a worker inside a task may take any platform lock, while code
/// holding a platform lock can never re-enter the executor.
enum class LockRank : int {
  kLaneExecutorQueue = 4,  ///< LaneExecutor per-worker deque mutexes
  kLaneExecutorPark = 6,   ///< LaneExecutor idle-park mutex
  kEngineScheduler = 10,   ///< PlatformEngine ready-queue mutex
  /// Historical top rank. The registry's series map moved to the
  /// optimistic version-stamped latch (util/optimistic.hpp), which the
  /// detector does not track; the rank remains as the ceiling any future
  /// leaf-level mutex should sit below.
  kMetricsRegistry = 20,
};

/// std::mutex with a rank, compatible with std::lock_guard /
/// std::unique_lock / std::condition_variable_any. Checked builds maintain
/// a thread-local stack of held ranks and abort on out-of-order
/// acquisition; a condition-variable wait unlocks (popping the rank) and
/// re-locks (re-validating), so waiting never wedges the detector.
class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_;
  const char* name_;
};

namespace detail {
/// Checked-build validation hooks (no-ops when TOSS_CHECKED is off).
/// Exposed so tests can drive the detector without a real deadlock.
void lock_rank_push(const RankedMutex& m);
void lock_rank_pop(const RankedMutex& m);
/// nullopt when acquiring `m` respects the rank order for this thread,
/// else a diagnostic naming the conflicting held lock.
std::optional<std::string> lock_rank_violation(const RankedMutex& m);
}  // namespace detail

// ---------------------------------------------------------------------------
// Work-stealing lane executor (DESIGN.md §15).
//
// The epoch scheduler's unit of work is one lane chunk, and lane costs are
// wildly uneven (a cold restore is ~1000x a warm hit), so static
// round-robin leaves workers idle behind the slowest lane. This executor
// balances dynamically:
//
//   - Per-participant deques of contiguous index chunks. run_epoch(n, fn)
//     splits [0, n) evenly across the workers plus the calling thread;
//     each participant pops single indices from the *back* of its own
//     deque and, when empty, steals the *front* chunk of a victim's deque
//     — taking half and leaving half (steal-half), so a large remainder
//     stays stealable by others.
//   - One epoch-generation atomic replaces the per-epoch condition-
//     variable round: workers spin briefly on the generation counter
//     between epochs and park on a condition variable only after the spin
//     budget, so back-to-back epochs (the common case mid-drain) cost two
//     atomic ops per worker instead of a syscall-backed CV wakeup.
//   - Completion is an atomic countdown of finished indices; the caller
//     participates in the work and then spins out the stragglers, so an
//     epoch never sleeps on the hot path.
//
// Determinism: the executor schedules, it never reorders data — fn(k)
// must touch only state owned by index k (lane-local state in the
// engine), and every cross-index decision stays at the serial barrier.
// The first exception thrown by any index is rethrown to the caller after
// the epoch joins.
// ---------------------------------------------------------------------------

class LaneExecutor {
 public:
  /// Total parallelism including the calling thread: `threads - 1` workers
  /// are spawned (clamped to >= 0), and run_epoch() uses the caller as the
  /// final participant.
  explicit LaneExecutor(int threads);
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  /// Participants (workers + the caller).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(0..n-1) across the participants; returns when every index has
  /// completed. Inline when there are no workers or n <= 1. The first
  /// exception thrown by any index is rethrown here.
  void run_epoch(size_t n, const std::function<void(size_t)>& fn);

  /// Chunks obtained by stealing since construction (observability; the
  /// scheduling tests assert the steal path is actually exercised).
  u64 steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;  ///< exclusive
  };
  /// One participant's deque. unique_ptr keeps RankedMutex addresses
  /// stable; the shell padding would be cache-line alignment in a larger
  /// system, but the deque lock is cold enough not to matter here.
  struct Slot {
    RankedMutex mu{LockRank::kLaneExecutorQueue, "LaneExecutor::slot"};
    std::vector<Chunk> deque;  ///< back = owner's end, front = steal end
  };

  void worker_loop(size_t self);
  /// Drain work for the current epoch: pop own deque, then steal-half.
  void work(size_t self);
  bool pop_local(size_t self, size_t* index);
  bool steal_half(size_t self, Chunk* chunk);
  void record_error();

  std::vector<std::unique_ptr<Slot>> slots_;  ///< workers first, caller last
  std::vector<std::thread> workers_;
  std::atomic<u64> epoch_gen_{0};
  std::atomic<size_t> remaining_{0};  ///< indices not yet completed
  std::atomic<bool> stop_{false};
  std::atomic<u64> steals_{0};
  /// Epoch work function. Published (release) *before* the chunks are
  /// dealt and loaded (acquire) per popped index, so a straggler from the
  /// previous epoch that pops a fresh chunk runs the fresh function — the
  /// deque mutex it popped under orders the two stores.
  std::atomic<const std::function<void(size_t)>*> fn_{nullptr};

  // Idle parking (rare path: only after the between-epoch spin budget).
  std::atomic<int> parked_{0};
  RankedMutex park_mu_{LockRank::kLaneExecutorPark, "LaneExecutor::park_mu_"};
  std::condition_variable_any park_cv_;
  std::exception_ptr first_error_;  ///< guarded by park_mu_
};

namespace detail {
constexpr std::array<double, kMaxTiers> unit_factors() {
  std::array<double, kMaxTiers> a{};
  for (auto& v : a) v = 1.0;
  return a;
}
}  // namespace detail

/// One contention pool per ladder rank (0 = fastest) plus the snapshot
/// disk. Ranks beyond the active ladder stay at 1.0.
struct ContentionFactors {
  std::array<double, kMaxTiers> tier = detail::unit_factors();
  double disk = 1.0;

  double fast() const { return tier[0]; }
  double slow() const { return tier[1]; }
};

struct ConcurrencyOutcome {
  /// Per-invocation contended execution time (same order as input).
  std::vector<Nanos> exec_ns;
  ContentionFactors factors;
  int iterations = 0;  ///< kept for API stability; the model is closed-form
};

/// Scale the solo runs' execution times under K-way concurrency (K = size
/// of `solo`). All invocations are assumed to start together, as in the
/// paper's scalability experiment.
ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo);

}  // namespace toss
