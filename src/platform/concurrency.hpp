// Concurrency contention model (Fig 9).
//
// The paper runs up to 20 concurrent invocations on a 20-core host, so CPU
// time does not contend — shared memory tiers and the snapshot disk do.
// Each invocation is first simulated solo (its ExecutionResult carries
// per-tier time and device-bandwidth demand); this model then scales the
// contended components by each resource's aggregate utilization:
//
//   utilization(tier) = sum_i read_demand_i/read_bw + write_demand_i/write_bw
//   factor = max(1, utilization)
//
// evaluated over the makespan, iterated to a fixed point (slower
// invocations spread their demand over a longer window, lowering pressure).
#pragma once

#include <vector>

#include "vmm/microvm.hpp"

namespace toss {

struct ContentionFactors {
  double fast = 1.0;
  double slow = 1.0;
  double disk = 1.0;
};

struct ConcurrencyOutcome {
  /// Per-invocation contended execution time (same order as input).
  std::vector<Nanos> exec_ns;
  ContentionFactors factors;
  int iterations = 0;  ///< kept for API stability; the model is closed-form
};

/// Scale the solo runs' execution times under K-way concurrency (K = size
/// of `solo`). All invocations are assumed to start together, as in the
/// paper's scalability experiment.
ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo);

}  // namespace toss
