// Fleet-wide fast-tier budget arbiter (DESIGN.md §9).
//
// The engine's lanes are mutually isolated for determinism, but they share
// one physical fast tier: the host's DRAM. The arbiter defends that budget
// at the engine's epoch barrier, walking a graceful-degradation ladder when
// the fleet's aggregate resident fast-tier bytes exceed it:
//
//   rung A  evict warm keep-alive VMs, lowest GDSF priority first
//           (shedding warmth costs a future cold start, nothing else)
//   rung B  demote the largest-footprint tiered function one rung:
//           re-enter Step IV placement under a tightened bound
//           (rung 1 = demote_step x its unconstrained fast bytes;
//            rung r >= 2 = tier floor r-1, pushing the whole image below
//            the ladder's top r-1 rungs — one ladder rank per rung, so a
//            deep ladder degrades in many small steps and the two-tier
//            ladder keeps its historical cap/fully-slow pair)
//   rung C  close admission: new arrivals are shed with kOverloaded until
//           pressure subsides
//
// Recovery climbs the same ladder in reverse: admission reopens as soon as
// the fleet fits again, and demoted functions are promoted LIFO — one per
// epoch, and only when their recorded footprint at the target rung still
// fits (hysteresis, so the fleet cannot demote/promote-flap).
//
// Every decision is made at the serial barrier in deterministic (lane
// registration / GDSF map) order from simulated state only, so the ledger
// of ArbiterEvents is bit-identical for any worker thread count.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/retier_bound.hpp"
#include "platform/keepalive.hpp"
#include "platform/qos.hpp"

namespace toss {

/// One remaining demotion candidate on a lane's Eq-1 cost curve: re-tiering
/// with min_descent_prefix = `prefix` lands the lane at `fast_bytes` of
/// rank-0 footprint (the cheapest prefix at that footprint level — a local
/// minimum of ladder_normalized_cost). Mirrors core's CostCurvePoint
/// without dragging optimizer.hpp into the platform layer.
struct CurveStep {
  size_t prefix = 0;
  u64 fast_bytes = 0;

  bool operator==(const CurveStep&) const = default;
};

struct ArbiterOptions {
  /// Master switch; everything below is inert when false.
  bool enabled = false;
  /// Fleet fast-tier budget. 0 = use the SystemConfig's installed fast-tier
  /// capacity (TierSpec::capacity_bytes), resolved by the engine.
  u64 fast_budget_bytes = 0;
  /// Slow-tier pool for warm VMs; effectively abundant (paper: 768 GB).
  u64 slow_budget_bytes = 64 * kGiB;
  /// Rung-1 demotion cap as a fraction of the function's unconstrained
  /// fast-tier bytes; every deeper rung is a tier floor one rank further
  /// down the ladder (the last rung leaves only the deepest tier).
  double demote_step = 0.5;
  /// Keep finished lanes' VMs warm (GDSF keep-alive) until evicted.
  bool keepalive = true;
  /// Prewarm handshake: weigh each warm VM's eviction priority by the
  /// inter-arrival predictor's next-arrival estimate (LaneDemand::
  /// predicted_reuse_gap_ns), so a VM about to be reused outranks pure
  /// GDSF priority. Inert for lanes with no prediction.
  bool prewarm_hints = true;
};

enum class ArbiterAction : u8 {
  kEvictWarm = 0,    ///< rung A: a warm VM was evicted
  kDemote,           ///< rung B: a function was re-tiered one rung down
  kPromote,          ///< recovery: a function was re-tiered one rung up
  kCloseAdmission,   ///< rung C: new arrivals will be shed
  kOpenAdmission,    ///< recovery: admission re-opened
};

const char* arbiter_action_name(ArbiterAction action);

/// One ledger entry. The sequence of events is part of the engine's
/// determinism contract: identical for any thread count at a fixed seed.
struct ArbiterEvent {
  u64 epoch = 0;
  std::string function;  ///< empty for admission open/close events
  ArbiterAction action = ArbiterAction::kEvictWarm;
  int rung = 0;             ///< rung after the action (demote/promote only)
  u64 resident_bytes = 0;   ///< fleet resident fast bytes after the action

  bool operator==(const ArbiterEvent&) const = default;
};

struct ArbiterReport {
  std::vector<ArbiterEvent> events;  ///< decision ledger, in decision order
  u64 demotions = 0;
  u64 promotions = 0;
  u64 keepalive_evictions = 0;
  u64 admission_closures = 0;
  u64 peak_resident_fast_bytes = 0;
  u64 final_resident_fast_bytes = 0;
  bool admission_closed = false;  ///< state at the end of the run
  KeepAliveStats keepalive;
  u64 warm_count = 0;  ///< VMs still warm at the end of the run
};

class FastTierArbiter {
 public:

  /// Per-lane demand snapshot the engine hands the arbiter each epoch.
  struct LaneDemand {
    size_t lane = 0;                   ///< engine lane index
    const std::string* name = nullptr;
    bool active = false;         ///< has queued or future work this epoch
    bool just_finished = false;  ///< drained its stream during this epoch
    bool demotable = false;      ///< TOSS lane currently in kTiered
    u64 fast_bytes = 0;          ///< fast-tier bytes one invocation pins
    u64 slow_bytes = 0;
    Nanos cold_cost_ns = 0;      ///< keep-alive benefit (last setup cost)
    /// Predicted time until the function's next arrival (prewarm
    /// handshake); negative = the predictor has no confident estimate.
    Nanos predicted_reuse_gap_ns = -1;
    /// Service class (DESIGN.md §14). Any classed lane latches the arbiter
    /// into QoS mode: curve-based continuous demotion in qos_shed_rank
    /// order and per-class admission gates.
    QosClass qos = QosClass::kNone;
    /// Remaining demotion candidates on the lane's Eq-1 cost curve,
    /// nearest (smallest footprint drop) first; filled by the host from
    /// TieringDecision::demotion_curve when QoS classes are engaged. A
    /// demotable lane with an empty curve is at the curve's floor.
    std::vector<CurveStep> curve;
  };

  /// Re-tier hook: ask the engine to rebuild `lane`'s snapshot under
  /// `bound` (trivial = unconstrained). Returns the lane's new resident
  /// fast bytes, or nullopt when the re-tier failed (the lane keeps
  /// serving its current artifact).
  using ApplyRung = std::function<std::optional<u64>(
      size_t lane, int rung, const RetierBound& bound)>;

  /// `fast_budget_bytes` must already be resolved (non-zero).
  /// `tier_count` is the host ladder's depth; the demotion ladder gets one
  /// rung per tier (rung 0 = unconstrained, rung 1 = demote_step cap,
  /// rung r >= 2 = tier floor r-1), so max_rung() == tier_count and a
  /// two-tier ladder keeps its historical depth of 2.
  FastTierArbiter(ArbiterOptions options, u64 fast_budget_bytes,
                  size_t tier_count = 2);

  /// Deepest demotion rung for this host's ladder.
  int max_rung() const { return max_rung_; }

  /// The Step-IV bound demotion rung `rung` imposes on a lane whose
  /// unconstrained fast footprint is `unconstrained_fast_bytes`.
  RetierBound bound_for_rung(int rung, u64 unconstrained_fast_bytes) const;

  /// One barrier pass: account the fleet, then walk the ladder (down under
  /// pressure, up — at most one promotion — when the fleet fits again).
  void tick(u64 epoch, const std::vector<LaneDemand>& lanes,
            const ApplyRung& apply);

  /// Host health governance (cluster): while withdrawn the fleet budget is
  /// treated as zero — warmth is flushed, every demotable lane walks to the
  /// ladder floor and admission closes at the next tick, staying closed
  /// until the budget is restored. Quarantining a host must not strand its
  /// fast-tier bytes in limbo; this is how the fleet arbiter reclaims them.
  void set_budget_withdrawn(bool withdrawn) { budget_withdrawn_ = withdrawn; }
  bool budget_withdrawn() const { return budget_withdrawn_; }

  bool admission_closed() const { return admission_closed_; }
  /// Per-class admission gate (QoS mode): bronze lanes close first and
  /// reopen last; gold (and unclassed) lanes hold out until the ladder is
  /// exhausted and readmit first. Outside QoS mode every class reads the
  /// single legacy gate, so the answer is identical for all callers.
  bool admission_closed(QosClass cls) const {
    if (!qos_mode_) return admission_closed_;
    return cls == QosClass::kBronze ? closed_bronze_ : closed_gold_;
  }
  int rung(size_t lane) const {
    return lane < rung_.size() ? rung_[lane] : 0;
  }
  u64 resident_fast_bytes() const { return resident_; }
  u64 budget_bytes() const { return budget_; }
  const std::vector<ArbiterEvent>& events() const { return events_; }
  ArbiterReport report() const;

 private:
  void ensure_lane(size_t lane);
  void push_event(u64 epoch, std::string function, ArbiterAction action,
                  int rung);

  ArbiterOptions options_;
  u64 budget_ = 0;
  int max_rung_ = 2;
  KeepAliveCache warm_;

  std::vector<int> rung_;  ///< per engine lane index
  /// Resident fast bytes observed at each rung, recorded as the lane moves
  /// down the ladder; the promotion fit-check reads these back. Inner
  /// vectors are sized max_rung_ + 1.
  std::vector<std::vector<u64>> bytes_at_rung_;
  /// Demotion order; promotions pop LIFO (one stack entry per demotion).
  std::vector<size_t> demote_stack_;
  /// QoS mode: applied curve steps per engine lane index, in descent order
  /// — entry d-1 is the (prefix, resident fast bytes) the lane landed on
  /// at depth d. Promotions pop this stack; rung_ doubles as the depth.
  std::vector<std::vector<CurveStep>> descent_;

  bool admission_closed_ = false;
  /// QoS mode latch (any classed LaneDemand ever seen) + per-class gates.
  /// Invariant while latched: admission_closed_ == closed_bronze_ ||
  /// closed_gold_, so admission_closed_streak bookkeeping is unchanged.
  bool qos_mode_ = false;
  bool closed_bronze_ = false;
  bool closed_gold_ = false;
  bool budget_withdrawn_ = false;
  u64 resident_ = 0;
  u64 peak_resident_ = 0;
  u64 demotions_ = 0;
  u64 promotions_ = 0;
  u64 keepalive_evictions_ = 0;
  u64 admission_closures_ = 0;
  std::vector<ArbiterEvent> events_;
};

}  // namespace toss
