// Serverless memory pricing (Sections II-D and III-D).
//
// Vendors charge $/MB/ms against fixed 128 MB bundle steps. TOSS's Eq 1
// extends this with heterogeneous tiers: the platform can dynamically quote
// a reduced price reflecting the current fast/slow split, never exceeding
// the single-tier price.
#pragma once

#include "mem/tier.hpp"

namespace toss {

struct PricingPlan {
  /// Single-tier (DRAM) price. AWS-like magnitude; only ratios matter.
  double dollars_per_mb_ms = 1.6279e-8;
  u64 bundle_step_mb = 128;
  double cost_ratio = 2.5;  ///< fast:slow $/MB ratio

  /// Round a memory requirement up to the bundle grid.
  u64 bundle_mb(u64 required_mb) const;

  /// Classic single-tier invocation charge.
  double dram_invocation_cost(u64 mem_mb, double duration_ms) const;

  /// Tier-aware charge: Eq 1 with the dynamic fast/slow split. The
  /// duration already includes any tiering slowdown, so the formula's
  /// SDown term is carried by `duration_ms`.
  double tiered_invocation_cost(u64 fast_mb, u64 slow_mb,
                                double duration_ms) const;

  /// Relative saving of a tiered configuration vs DRAM-only for the same
  /// invocation (>= 0; 0 when everything stays in DRAM).
  double saving_fraction(u64 fast_mb, u64 slow_mb, double duration_ms,
                         double dram_duration_ms) const;
};

}  // namespace toss
