#include "platform/concurrency.hpp"

#include <algorithm>
#include <cmath>

namespace toss {

namespace {

/// A job's demand rate on a resource while it is actively using it (its
/// solo busy time at full device speed). Jobs with no demand contribute
/// nothing. Returns bytes/ns (or pages/ns for the disk).
double active_rate(double demand, Nanos busy_ns) {
  return busy_ns > 0 ? demand / busy_ns : 0.0;
}

}  // namespace

ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo) {
  ConcurrencyOutcome out;
  out.exec_ns.resize(solo.size());
  for (size_t i = 0; i < solo.size(); ++i) out.exec_ns[i] = solo[i].exec_ns;
  if (solo.empty()) return out;

  // Offered-load saturation: each job consumes a fraction of a device equal
  // to (device time its demand needs at full speed) / (its solo execution
  // time) — i.e. its duty cycle on that device. When the jobs' summed duty
  // cycles exceed 1, the device is oversubscribed and every job's time on
  // it stretches by the total offered load. This is what makes 20
  // fault-heavy REAP invocations collapse on the snapshot disk while a
  // TOSS pagerank — whose hot half stayed in DRAM and whose slow-tier duty
  // cycle is low — keeps scaling like DRAM (Fig 9).
  double fast_load = 0, slow_load = 0, disk_load = 0;
  for (const auto& r : solo) {
    if (r.exec_ns <= 0) continue;
    const Nanos fast_util =
        r.fast_read_bytes / cfg.fast.read_bw_bytes_per_ns +
        r.fast_write_bytes / cfg.fast.write_bw_bytes_per_ns;
    const Nanos slow_util =
        r.slow_read_bytes / cfg.slow.read_bw_bytes_per_ns +
        r.slow_write_bytes / cfg.slow.write_bw_bytes_per_ns;
    const Nanos disk_util =
        static_cast<double>(r.disk_pages) / cfg.disk.random_read_iops * 1e9;
    fast_load += fast_util / r.exec_ns;
    slow_load += slow_util / r.exec_ns;
    disk_load += disk_util / r.exec_ns;
  }

  ContentionFactors f;
  f.fast = std::max(1.0, fast_load);
  f.slow = std::max(1.0, slow_load);
  f.disk = std::max(1.0, disk_load);

  for (size_t i = 0; i < solo.size(); ++i) {
    const auto& r = solo[i];
    const Nanos other_fault = r.fault_ns - r.disk_ns;
    out.exec_ns[i] = r.cpu_ns + r.profiling_overhead_ns + other_fault +
                     r.mem_fast_ns * f.fast + r.mem_slow_ns * f.slow +
                     r.disk_ns * f.disk;
  }
  out.factors = f;
  out.iterations = 1;
  return out;
}

}  // namespace toss
