#include "platform/concurrency.hpp"

#include <algorithm>
#include <cmath>

namespace toss {

namespace detail {

namespace {
// Ranks (not pointers) of the locks this thread currently holds, in
// acquisition order. thread_local so the detector needs no global lock of
// its own.
thread_local std::vector<const RankedMutex*> t_held_locks;
}  // namespace

std::optional<std::string> lock_rank_violation(const RankedMutex& m) {
  if (t_held_locks.empty()) return std::nullopt;
  const RankedMutex* top = t_held_locks.back();
  if (static_cast<int>(m.rank()) > static_cast<int>(top->rank()))
    return std::nullopt;
  return std::string("lock-rank violation: acquiring '") + m.name() +
         "' (rank " + std::to_string(static_cast<int>(m.rank())) +
         ") while holding '" + top->name() + "' (rank " +
         std::to_string(static_cast<int>(top->rank())) +
         "); locks must be taken in increasing rank order";
}

void lock_rank_push(const RankedMutex& m) { t_held_locks.push_back(&m); }

void lock_rank_pop(const RankedMutex& m) {
  // Unlocks are LIFO in practice (lock_guard / unique_lock / cv wait), but
  // tolerate out-of-order release: erase the most recent matching entry.
  for (auto it = t_held_locks.rbegin(); it != t_held_locks.rend(); ++it) {
    if (*it == &m) {
      t_held_locks.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace detail

void RankedMutex::lock() {
#ifdef TOSS_CHECKED
  TOSS_VALIDATE(detail::lock_rank_violation(*this));
#endif
  mu_.lock();
#ifdef TOSS_CHECKED
  detail::lock_rank_push(*this);
#endif
}

void RankedMutex::unlock() {
#ifdef TOSS_CHECKED
  detail::lock_rank_pop(*this);
#endif
  mu_.unlock();
}

bool RankedMutex::try_lock() {
#ifdef TOSS_CHECKED
  TOSS_VALIDATE(detail::lock_rank_violation(*this));
#endif
  const bool acquired = mu_.try_lock();
#ifdef TOSS_CHECKED
  if (acquired) detail::lock_rank_push(*this);
#endif
  return acquired;
}

// ---------------------------------------------------------------------------
// LaneExecutor (work-stealing epochs, DESIGN.md §15).

namespace {
/// Spins on the epoch-generation / completion atomics before parking or
/// yielding. Epochs are microseconds apart mid-drain, so this is nearly
/// always enough.
constexpr int kIdleSpins = 4096;
}  // namespace

LaneExecutor::LaneExecutor(int threads) {
  const size_t workers =
      threads > 1 ? static_cast<size_t>(threads - 1) : size_t{0};
  slots_.reserve(workers + 1);
  for (size_t i = 0; i < workers + 1; ++i)
    slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

LaneExecutor::~LaneExecutor() {
  stop_.store(true, std::memory_order_release);
  // The generation bump doubles as the shutdown signal: spinners see it
  // (with stop_ set and no work) and exit; parked workers need the wakeup.
  epoch_gen_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<RankedMutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool LaneExecutor::pop_local(size_t self, size_t* index) {
  Slot& slot = *slots_[self];
  std::lock_guard<RankedMutex> lock(slot.mu);
  if (slot.deque.empty()) return false;
  Chunk& back = slot.deque.back();
  *index = back.begin++;
  if (back.begin >= back.end) slot.deque.pop_back();
  return true;
}

bool LaneExecutor::steal_half(size_t self, Chunk* chunk) {
  const size_t p = slots_.size();
  for (size_t offset = 1; offset < p; ++offset) {
    Slot& victim = *slots_[(self + offset) % p];
    // One deque lock at a time (they share a rank): the stolen chunk is
    // extracted here and pushed onto our own deque by the caller, after
    // this lock is gone.
    std::lock_guard<RankedMutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    Chunk& front = victim.deque.front();
    const size_t len = front.end - front.begin;
    if (len <= 1) {
      *chunk = front;
      victim.deque.erase(victim.deque.begin());
    } else {
      // Steal-half: take the upper half, leave the lower half in place so
      // a third worker can still split the remainder.
      const size_t mid = front.begin + (len + 1) / 2;
      *chunk = Chunk{mid, front.end};
      front.end = mid;
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void LaneExecutor::record_error() {
  std::lock_guard<RankedMutex> lock(park_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void LaneExecutor::work(size_t self) {
  for (;;) {
    size_t index;
    while (pop_local(self, &index)) {
      // Re-load per index: a straggler that pops a chunk dealt by the
      // *next* epoch must run that epoch's function, not a dangling
      // reference to the one it was woken for.
      const std::function<void(size_t)>* fn =
          fn_.load(std::memory_order_acquire);
      try {
        (*fn)(index);
        // Not swallowed: captured whole and rethrown from run_epoch's
        // join, mirroring parallel_for's contract.
      } catch (...) {  // toss-lint: allow(swallowed-error)
        record_error();
      }
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
    Chunk stolen;
    if (!steal_half(self, &stolen)) return;  // every deque is dry
    std::lock_guard<RankedMutex> lock(slots_[self]->mu);
    slots_[self]->deque.push_back(stolen);
  }
}

void LaneExecutor::worker_loop(size_t self) {
  u64 seen = epoch_gen_.load(std::memory_order_acquire);
  for (;;) {
    // Wait for the next generation: spin first (back-to-back epochs), park
    // only when the drain has genuinely gone idle.
    u64 gen = epoch_gen_.load(std::memory_order_acquire);
    if (gen == seen) {
      for (int spin = 0; spin < kIdleSpins && gen == seen; ++spin)
        gen = epoch_gen_.load(std::memory_order_acquire);
      if (gen == seen) {
        std::unique_lock<RankedMutex> lock(park_mu_);
        parked_.fetch_add(1, std::memory_order_release);
        // The predicate must re-check stop_, not just the generation: a
        // worker first scheduled after the destructor's final bump loads
        // the post-shutdown generation as its baseline, so no further
        // bump (or notify) is ever coming for it.
        park_cv_.wait(lock, [this, seen] {
          return stop_.load(std::memory_order_acquire) ||
                 epoch_gen_.load(std::memory_order_acquire) != seen;
        });
        parked_.fetch_sub(1, std::memory_order_release);
        gen = epoch_gen_.load(std::memory_order_acquire);
      }
    }
    seen = gen;
    if (stop_.load(std::memory_order_acquire)) return;
    work(self);
  }
}

void LaneExecutor::run_epoch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t p = slots_.size();
  const size_t caller = p - 1;
  // Publish the function and the countdown BEFORE any chunk is dealt: a
  // straggler that pops a fresh chunk synchronizes through the deque
  // mutex, so everything stored before the push is visible to it.
  fn_.store(&fn, std::memory_order_release);
  remaining_.store(n, std::memory_order_release);
  // Deal [0, n) into contiguous per-participant chunks; the caller's slot
  // is dealt too, so with perfectly even costs no steal ever happens.
  for (size_t s = 0; s < p; ++s) {
    const size_t begin = n * s / p;
    const size_t end = n * (s + 1) / p;
    if (begin >= end) continue;
    std::lock_guard<RankedMutex> lock(slots_[s]->mu);
    slots_[s]->deque.push_back(Chunk{begin, end});
  }
  epoch_gen_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) > 0) {
    // Empty critical section: pairs the notify with the waiter's re-check
    // so a worker deciding to park right now cannot miss the generation.
    {
      std::lock_guard<RankedMutex> lock(park_mu_);
    }
    park_cv_.notify_all();
  }

  work(caller);
  // The caller's deque is dry and nothing was stealable, so only indices
  // already claimed by workers remain: spin them out (they are mid-fn, not
  // queued — this wait is bounded by one chunk's work).
  for (int spin = 0; remaining_.load(std::memory_order_acquire) > 0; ++spin)
    if (spin >= kIdleSpins) std::this_thread::yield();

  std::exception_ptr error;
  {
    std::lock_guard<RankedMutex> lock(park_mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo) {
  ConcurrencyOutcome out;
  out.exec_ns.resize(solo.size());
  for (size_t i = 0; i < solo.size(); ++i) out.exec_ns[i] = solo[i].exec_ns;
  if (solo.empty()) return out;

  // Offered-load saturation: each job consumes a fraction of a device equal
  // to (device time its demand needs at full speed) / (its solo execution
  // time) — i.e. its duty cycle on that device. When the jobs' summed duty
  // cycles exceed 1, the device is oversubscribed and every job's time on
  // it stretches by the total offered load. Every ladder rank is its own
  // pool — CXL traffic does not contend with DRAM or PMem traffic. This is
  // what makes 20 fault-heavy REAP invocations collapse on the snapshot
  // disk while a TOSS pagerank — whose hot half stayed in DRAM and whose
  // deep-tier duty cycles are low — keeps scaling like DRAM (Fig 9).
  const size_t ranks = cfg.tier_count();
  std::array<double, kMaxTiers> tier_load{};
  double disk_load = 0;
  for (const auto& r : solo) {
    if (r.exec_ns <= 0) continue;
    for (size_t rank = 0; rank < ranks; ++rank) {
      const TierSpec& spec = cfg.tiers[rank];
      const Nanos util = r.tier_read_bytes[rank] / spec.read_bw_bytes_per_ns +
                         r.tier_write_bytes[rank] / spec.write_bw_bytes_per_ns;
      tier_load[rank] += util / r.exec_ns;
    }
    const Nanos disk_util =
        static_cast<double>(r.disk_pages) / cfg.disk.random_read_iops * 1e9;
    disk_load += disk_util / r.exec_ns;
  }

  ContentionFactors f;
  for (size_t rank = 0; rank < ranks; ++rank)
    f.tier[rank] = std::max(1.0, tier_load[rank]);
  f.disk = std::max(1.0, disk_load);

  for (size_t i = 0; i < solo.size(); ++i) {
    const auto& r = solo[i];
    const Nanos other_fault = r.fault_ns - r.disk_ns;
    Nanos t = r.cpu_ns + r.profiling_overhead_ns + other_fault;
    for (size_t rank = 0; rank < ranks; ++rank)
      t += r.mem_tier_ns[rank] * f.tier[rank];
    out.exec_ns[i] = t + r.disk_ns * f.disk;
  }
  out.factors = f;
  out.iterations = 1;
  return out;
}

}  // namespace toss
