#include "platform/concurrency.hpp"

#include <algorithm>
#include <cmath>

namespace toss {

namespace detail {

namespace {
// Ranks (not pointers) of the locks this thread currently holds, in
// acquisition order. thread_local so the detector needs no global lock of
// its own.
thread_local std::vector<const RankedMutex*> t_held_locks;
}  // namespace

std::optional<std::string> lock_rank_violation(const RankedMutex& m) {
  if (t_held_locks.empty()) return std::nullopt;
  const RankedMutex* top = t_held_locks.back();
  if (static_cast<int>(m.rank()) > static_cast<int>(top->rank()))
    return std::nullopt;
  return std::string("lock-rank violation: acquiring '") + m.name() +
         "' (rank " + std::to_string(static_cast<int>(m.rank())) +
         ") while holding '" + top->name() + "' (rank " +
         std::to_string(static_cast<int>(top->rank())) +
         "); locks must be taken in increasing rank order";
}

void lock_rank_push(const RankedMutex& m) { t_held_locks.push_back(&m); }

void lock_rank_pop(const RankedMutex& m) {
  // Unlocks are LIFO in practice (lock_guard / unique_lock / cv wait), but
  // tolerate out-of-order release: erase the most recent matching entry.
  for (auto it = t_held_locks.rbegin(); it != t_held_locks.rend(); ++it) {
    if (*it == &m) {
      t_held_locks.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace detail

void RankedMutex::lock() {
#ifdef TOSS_CHECKED
  TOSS_VALIDATE(detail::lock_rank_violation(*this));
#endif
  mu_.lock();
#ifdef TOSS_CHECKED
  detail::lock_rank_push(*this);
#endif
}

void RankedMutex::unlock() {
#ifdef TOSS_CHECKED
  detail::lock_rank_pop(*this);
#endif
  mu_.unlock();
}

bool RankedMutex::try_lock() {
#ifdef TOSS_CHECKED
  TOSS_VALIDATE(detail::lock_rank_violation(*this));
#endif
  const bool acquired = mu_.try_lock();
#ifdef TOSS_CHECKED
  if (acquired) detail::lock_rank_push(*this);
#endif
  return acquired;
}

ConcurrencyOutcome run_concurrent(const SystemConfig& cfg,
                                  const std::vector<ExecutionResult>& solo) {
  ConcurrencyOutcome out;
  out.exec_ns.resize(solo.size());
  for (size_t i = 0; i < solo.size(); ++i) out.exec_ns[i] = solo[i].exec_ns;
  if (solo.empty()) return out;

  // Offered-load saturation: each job consumes a fraction of a device equal
  // to (device time its demand needs at full speed) / (its solo execution
  // time) — i.e. its duty cycle on that device. When the jobs' summed duty
  // cycles exceed 1, the device is oversubscribed and every job's time on
  // it stretches by the total offered load. Every ladder rank is its own
  // pool — CXL traffic does not contend with DRAM or PMem traffic. This is
  // what makes 20 fault-heavy REAP invocations collapse on the snapshot
  // disk while a TOSS pagerank — whose hot half stayed in DRAM and whose
  // deep-tier duty cycles are low — keeps scaling like DRAM (Fig 9).
  const size_t ranks = cfg.tier_count();
  std::array<double, kMaxTiers> tier_load{};
  double disk_load = 0;
  for (const auto& r : solo) {
    if (r.exec_ns <= 0) continue;
    for (size_t rank = 0; rank < ranks; ++rank) {
      const TierSpec& spec = cfg.tiers[rank];
      const Nanos util = r.tier_read_bytes[rank] / spec.read_bw_bytes_per_ns +
                         r.tier_write_bytes[rank] / spec.write_bw_bytes_per_ns;
      tier_load[rank] += util / r.exec_ns;
    }
    const Nanos disk_util =
        static_cast<double>(r.disk_pages) / cfg.disk.random_read_iops * 1e9;
    disk_load += disk_util / r.exec_ns;
  }

  ContentionFactors f;
  for (size_t rank = 0; rank < ranks; ++rank)
    f.tier[rank] = std::max(1.0, tier_load[rank]);
  f.disk = std::max(1.0, disk_load);

  for (size_t i = 0; i < solo.size(); ++i) {
    const auto& r = solo[i];
    const Nanos other_fault = r.fault_ns - r.disk_ns;
    Nanos t = r.cpu_ns + r.profiling_overhead_ns + other_fault;
    for (size_t rank = 0; rank < ranks; ++rank)
      t += r.mem_tier_ns[rank] * f.tier[rank];
    out.exec_ns[i] = t + r.disk_ns * f.disk;
  }
  out.factors = f;
  out.iterations = 1;
  return out;
}

}  // namespace toss
