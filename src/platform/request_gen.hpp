// Request stream generation: sequences of (input, seed) pairs that drive a
// function through its lifecycle. Serverless invocation patterns range from
// fixed to completely random (Section II-B); these generators cover the
// distributions the experiments need.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "platform/errors.hpp"
#include "platform/qos.hpp"
#include "util/rng.hpp"
#include "workloads/function_model.hpp"

namespace toss {

struct Request {
  int input = 0;
  u64 seed = 0;
  /// Open-loop arrival time on the owning lane's simulated clock. 0 (the
  /// default) means "available immediately", which preserves the closed-loop
  /// behaviour of every pre-existing generator. Streams handed to
  /// PlatformEngine::add must be sorted by arrival_ns.
  Nanos arrival_ns = 0;
  /// Absolute SLO deadline on the same clock; 0 = no deadline. Work still
  /// queued past its deadline is shed (never restored) when
  /// EngineOptions::enforce_deadlines is set.
  Nanos deadline_ns = 0;
};

/// One function's arrival schedule parsed out of a trace file.
struct TraceStream {
  std::string function;
  std::vector<Request> requests;  ///< sorted by arrival_ns
  /// Service class from the optional 6th CSV column; kNone when the trace
  /// never names one. Callers forward it to FunctionRegistration::qos().
  QosClass qos = QosClass::kNone;
};

class RequestGenerator {
 public:
  /// Every request uses the same input (seeds still vary).
  static std::vector<Request> fixed(size_t n, int input, u64 seed);

  /// Inputs drawn uniformly from [0, kNumInputs).
  static std::vector<Request> uniform(size_t n, u64 seed);

  /// Inputs drawn with explicit weights.
  static std::vector<Request> weighted(
      size_t n, const std::array<double, kNumInputs>& weights, u64 seed);

  /// Round-robin over all inputs (deterministic coverage).
  static std::vector<Request> round_robin(size_t n, u64 seed);

  /// Turn a closed-loop stream into an open-loop arrival schedule: each
  /// request gets a deterministic pseudo-Poisson arrival gap with mean
  /// `mean_gap_ns` (drawn from a seeded Rng, so the schedule is
  /// bit-reproducible) and, when `relative_deadline_ns` > 0, an absolute
  /// deadline of arrival + relative_deadline_ns. Shrinking the mean gap
  /// raises the offered load without touching the work itself — the knob
  /// the overload bench sweeps.
  static std::vector<Request> open_loop(std::vector<Request> requests,
                                        Nanos mean_gap_ns,
                                        Nanos relative_deadline_ns, u64 seed);

  /// Load an Azure-Functions-style CSV arrival schedule:
  ///
  ///   function_id,arrival_ns,deadline_ns[,input[,seed[,qos]]]
  ///
  /// One row per invocation; an optional header row (first field literally
  /// "function_id") is skipped, as are blank lines. Rows are grouped by
  /// function_id into TraceStreams in first-appearance order; each
  /// function's rows must already be sorted by arrival_ns (the per-lane
  /// contract PlatformEngine::add enforces). deadline_ns is absolute, 0 =
  /// none; a nonzero deadline before the row's own arrival is rejected.
  /// Omitted `input` defaults to a per-function round-robin over
  /// [0, kNumInputs); omitted `seed` to a per-function deterministic Rng
  /// stream — so a bare 3-column trace still drives varied, reproducible
  /// work. The optional `qos` column (none/gold/bronze, empty = none)
  /// names the function's service class; rows of one function that spell
  /// out different classes are rejected. Malformed rows fail with
  /// ErrorCode::kInvalidRequest naming the line; an unreadable path fails
  /// with kTransientIo.
  static Result<std::vector<TraceStream>> from_trace(const std::string& path);
};

}  // namespace toss
