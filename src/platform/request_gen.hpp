// Request stream generation: sequences of (input, seed) pairs that drive a
// function through its lifecycle. Serverless invocation patterns range from
// fixed to completely random (Section II-B); these generators cover the
// distributions the experiments need.
#pragma once

#include <array>
#include <vector>

#include "util/rng.hpp"
#include "workloads/function_model.hpp"

namespace toss {

struct Request {
  int input = 0;
  u64 seed = 0;
};

class RequestGenerator {
 public:
  /// Every request uses the same input (seeds still vary).
  static std::vector<Request> fixed(size_t n, int input, u64 seed);

  /// Inputs drawn uniformly from [0, kNumInputs).
  static std::vector<Request> uniform(size_t n, u64 seed);

  /// Inputs drawn with explicit weights.
  static std::vector<Request> weighted(
      size_t n, const std::array<double, kNumInputs>& weights, u64 seed);

  /// Round-robin over all inputs (deterministic coverage).
  static std::vector<Request> round_robin(size_t n, u64 seed);
};

}  // namespace toss
