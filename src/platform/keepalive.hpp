// Keep-alive (warm VM) caching, the integration Section VI-A sketches:
// "TOSS can keep the VM alive on both tiers until evicted".
//
// The cache implements the Greedy-Dual-Size-Frequency keep-alive policy of
// FaasCache (Fuerst & Sharma, ASPLOS'21): each warm VM carries a priority
//   priority = clock + frequency * cold_cost / size
// where `size` is what the VM occupies of the *constrained* resource. For
// a DRAM-only platform that is the whole VM; for TOSS it is only the fast
// (DRAM) share of the tiered snapshot — which is exactly why a fixed DRAM
// budget keeps many more TOSS VMs warm.
// Thread safety (DESIGN.md §15): the cache is shared across lanes once the
// work-stealing executor lets any worker run any lane, so every public
// method takes the optimistic version-stamped latch — shared (CAS-counted)
// for reads that walk the entry map, exclusive for mutation. The byte
// gauges are atomics read under the optimistic protocol: zero stores, so
// hot-path polling never bounces a cache line between readers.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>

#include "util/optimistic.hpp"
#include "util/units.hpp"

namespace toss {

struct KeepAliveConfig {
  u64 dram_capacity_bytes = 4 * kGiB;
  /// Slow-tier pool; effectively abundant in the paper's setup (768 GB).
  u64 slow_capacity_bytes = 64 * kGiB;
  /// Half-life of the prewarm urgency boost: a VM whose predicted reuse is
  /// this far away gets a 1.5x priority factor (2x at gap 0, asymptote 1x).
  Nanos urgency_halflife_ns = sec(1);
};

struct KeepAliveStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 rejected = 0;  ///< VM larger than the whole pool

  double hit_rate() const {
    const u64 total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class KeepAliveCache {
 public:
  explicit KeepAliveCache(KeepAliveConfig cfg = {});

  /// Look up a warm VM. A hit refreshes its priority (frequency + clock).
  bool lookup(const std::string& function);

  /// Insert (or replace) a warm VM after a cold start. `dram_bytes` /
  /// `slow_bytes`: what the VM pins in each pool. `cold_cost_ns`: what a
  /// future cold start would cost (the benefit of keeping it).
  /// `predicted_reuse_gap_ns`: the inter-arrival predictor's estimate of
  /// how soon the function fires again — an imminent reuse boosts the
  /// priority (prewarm handshake); negative = no prediction, no boost.
  /// Evicts lowest-priority VMs until it fits; returns false if it cannot
  /// fit at all.
  bool insert(const std::string& function, u64 dram_bytes, u64 slow_bytes,
              Nanos cold_cost_ns, Nanos predicted_reuse_gap_ns = -1);

  /// Explicitly evict one function (e.g. re-profiling invalidated it).
  void evict(const std::string& function);

  /// Evict the single lowest-priority warm VM (the arbiter's first ladder
  /// rung — shedding warmth is cheaper than re-tiering). Advances the aging
  /// clock and counts the eviction like capacity pressure would. Returns
  /// the evicted function's name, or nullopt when the cache is empty.
  std::optional<std::string> evict_lowest();

  bool contains(const std::string& function) const;
  /// Warm-VM count / byte gauges: optimistic version-validated reads of
  /// the atomic mirrors — no latch transition, no stores.
  size_t warm_count() const;
  u64 dram_in_use() const;
  u64 slow_in_use() const;
  /// Snapshot of the hit/miss/eviction counters (copied under the shared
  /// latch, so the four counters are mutually consistent).
  KeepAliveStats stats() const;

 private:
  struct Entry {
    u64 dram_bytes = 0;
    u64 slow_bytes = 0;
    Nanos cold_cost_ns = 0;
    Nanos predicted_reuse_gap_ns = -1;  ///< negative = no prediction
    u64 frequency = 0;
    double priority = 0;
  };

  double priority_of(const Entry& e) const;
  // _locked helpers assume latch_ is held exclusive by the caller; the
  // public wrappers take the guard. Keeps insert -> make_room ->
  // evict_lowest from re-entering the latch.
  void remove_entry_locked(const std::string& function);
  std::optional<std::string> evict_lowest_locked();
  /// Evict lowest-priority entries until both pools can fit the sizes.
  bool make_room_locked(u64 dram_bytes, u64 slow_bytes);

  KeepAliveConfig cfg_;
  /// vmcache-style optimistic word guarding entries_/clock_/stats_;
  /// mutation bumps the version so gauge readers revalidate.
  mutable OptimisticLatch latch_;
  std::map<std::string, Entry> entries_;
  /// Atomic mirrors of the pool occupancy and entry count, readable under
  /// the optimistic protocol (plain-memory fields must not be).
  std::atomic<u64> dram_used_{0};
  std::atomic<u64> slow_used_{0};
  std::atomic<u64> warm_count_{0};
  double clock_ = 0;  ///< Greedy-Dual aging clock (last evicted priority)
  KeepAliveStats stats_;
};

}  // namespace toss
