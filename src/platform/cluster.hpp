// ClusterEngine: N simulated hosts behind one placement layer (DESIGN.md
// §10). Each Host (platform/host.hpp) is a full single-host engine — lane
// fleet, epoch-barrier scheduler, bounded queues, fast-tier arbiter — and
// the cluster adds the two decisions a fleet of hosts needs:
//
//   Placement. add() estimates the function's steady-state fast-tier
//   demand by running the same Step-III analysis TOSS itself will run
//   (profile the access pattern offline, take the Step-IV placement's
//   fast-tier bytes) and bin-packs it greedily: worst-fit by predicted
//   headroom against each host's fast-tier budget, ties toward the lowest
//   host index. The estimate is exactly what the function converges to, so
//   a fleet that fits on paper fits at steady state.
//
//   Migration. The estimate can still be wrong in aggregate (skewed load,
//   keep-alive pressure). When a host's arbiter pins at the close-admission
//   rung for K consecutive epochs, the cluster moves its largest tiered
//   function to the host with the most predicted headroom. Lanes are fully
//   isolated, so the move is the whole HostLane object; the simulated cost
//   of copying the snapshot bytes out of the source SnapshotStore is
//   charged to the lane's simulated clock before it re-joins on the
//   destination. Every move lands in a MigrationEvent ledger with the same
//   determinism contract as ShedEvents.
//
//   Failure domains (DESIGN.md §13). The host itself can die (kHostCrash),
//   straggle (kHostBrownout) or abort a cross-host transfer mid-copy
//   (kMigrationAbort); each host derives an independent FaultInjector from
//   (cluster_fault_plan.seed, host name). Migration is transactional — the
//   source lane stays authoritative until the transfer commits, aborted
//   attempts retry under RetryPolicy and then abandon with a typed
//   kAborted ledger entry. A crash re-places the dead host's lanes by the
//   same worst-fit predictor onto healthy survivors (queued requests
//   re-admitted under the destination's bounds or shed as kHostLost), and
//   a per-host CircuitBreaker quarantines browned-out hosts from placement
//   and migration while their fast-tier budget is withdrawn.
//
// Determinism: run() steps hosts one epoch at a time in host index order,
// and migration, failover and health governance are decided between epochs
// at the serial barrier from simulated state only, so the full cluster
// ledger (shed + arbiter + migration + failover + health) is bit-identical
// for any worker thread count at a fixed seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platform/host.hpp"
#include "platform/recovery.hpp"

namespace toss {

struct ClusterOptions {
  /// Simulated host count (>= 1).
  size_t hosts = 2;
  /// Per-host engine options. The cluster forces arbiter.enabled — the
  /// placement and migration layers are meaningless without per-host
  /// budget accounting.
  EngineOptions host_options;
  /// K: consecutive epochs a host's arbiter must hold admission closed
  /// before the cluster migrates a function away (hysteresis).
  int migrate_after_pinned_epochs = 4;
  bool enable_migration = true;
  /// Cluster-level fault plan (kHostCrash / kHostBrownout /
  /// kMigrationAbort). Each host derives an independent injector seeded by
  /// (seed, host name) — distinct from host_options.fault_plan, which
  /// drives the per-lane snapshot sites. Inert without -DTOSS_FAULTS=ON.
  FaultPlan cluster_fault_plan;
  /// Bounded retry for aborted migration transfers (simulated backoff,
  /// charged to the lane only when the move eventually commits).
  RetryPolicy migration_retry;
  /// Survive host crashes by re-placing the dead host's lanes onto
  /// survivors; when off, a crash sheds everything pending as kHostLost.
  bool enable_failover = true;
  /// Per-host health breaker: consecutive browned-out epochs open it
  /// (quarantine), a clean cooldown closes it (readmission).
  CircuitBreakerOptions health_breaker;
  /// Step all hosts of an epoch concurrently on the shared executor: hosts
  /// share no mutable state mid-epoch, so every alive host's lanes are
  /// flattened into one work-stealing round and joined at the cluster
  /// barrier; planning, barriers, faults, migration, failover and health
  /// stay serial in host-index order, so ledgers are bit-identical with
  /// this on or off (DESIGN.md §15). Off = step hosts one at a time
  /// (lanes of one host still run in parallel).
  bool parallel_hosts = true;
};

/// How a migration transaction ended.
enum class MigrationOutcome : u8 {
  kCommitted = 0,  ///< destination restore verified; source lane moved
  kAborted,        ///< every transfer attempt aborted; source kept the lane
};

const char* migration_outcome_name(MigrationOutcome outcome);

/// One cross-host move attempt; part of the cluster's determinism contract.
struct MigrationEvent {
  u64 epoch = 0;  ///< cluster epoch the decision was made at
  std::string function;
  std::string from_host;
  std::string to_host;
  u64 moved_bytes = 0;    ///< snapshot bytes copied (fast + slow tier)
  Nanos transfer_ns = 0;  ///< simulated copy cost charged to the lane
  MigrationOutcome outcome = MigrationOutcome::kCommitted;
  u32 attempts = 1;            ///< transfer attempts (1 = clean first try)
  Nanos retry_backoff_ns = 0;  ///< simulated backoff across aborted tries

  bool operator==(const MigrationEvent&) const = default;
};

/// One lane re-placed (or abandoned) at a host-crash barrier.
struct FailoverEvent {
  u64 epoch = 0;
  std::string function;
  std::string from_host;
  /// Destination host; empty when no survivor could adopt the lane (its
  /// pending requests were shed as kHostLost on the dead host).
  std::string to_host;
  u64 moved_bytes = 0;   ///< surviving snapshot bytes restored on the dest
  Nanos restore_ns = 0;  ///< simulated tiered-restore cost charged to lane
  u64 requeued = 0;      ///< queued requests re-admitted on the destination
  u64 shed = 0;          ///< pending requests shed as kHostLost

  bool operator==(const FailoverEvent&) const = default;
};

/// Host health governance transitions (per-host CircuitBreaker).
enum class HostHealthAction : u8 {
  kBrownout = 0,  ///< a brownout epoch inflated the host's lane clocks
  kQuarantine,    ///< breaker opened: withdrawn from placement + budget
  kProbe,         ///< breaker half-open: next clean epoch readmits
  kReadmit,       ///< breaker closed again: budget + eligibility restored
  kCrash,         ///< the host died at this epoch's barrier
};

const char* host_health_action_name(HostHealthAction action);

struct HostHealthEvent {
  u64 epoch = 0;
  std::string host;
  HostHealthAction action = HostHealthAction::kBrownout;

  bool operator==(const HostHealthEvent&) const = default;
};

struct ClusterHostReport {
  std::string host;
  EngineReport report;
};

struct ClusterReport {
  std::vector<ClusterHostReport> hosts;  ///< host index order
  std::vector<MigrationEvent> migrations;
  std::vector<FailoverEvent> failovers;
  std::vector<HostHealthEvent> health_events;
  u64 hosts_lost = 0;
  u64 epochs = 0;
  int threads = 1;
  Nanos wall_ns = 0;

  u64 total_invocations() const;
  u64 total_shed() const;
  /// The function's report on whichever host currently owns it.
  const FunctionReport* find(const std::string& name) const;
  /// Schema-5 JSON: {"schema":5,"cluster":{...},"hosts":[<per-host
  /// metrics>...]} — each hosts[] entry is a MetricsSnapshot::to_json()
  /// tagged with its host name, its per-tier resident/occupancy rollup
  /// (schema 4) and its health rollup (schema 5). The cluster block adds
  /// the failover/health ledgers and the hosts_lost count.
  std::string to_json() const;
};

/// Greedy worst-fit bin packing step: pick the host for a function with
/// `demand_bytes` of predicted fast-tier demand given each host's already
/// placed demand and the (uniform) per-host budget. Prefers the fitting
/// host with the most headroom; when nothing fits, the least overloaded
/// host. Ties break toward the lowest index. Exposed for unit tests.
size_t place_on_host(u64 demand_bytes, const std::vector<u64>& predicted_load,
                     u64 fast_budget_bytes);

/// Predicted steady-state bytes per ladder rank for one registration
/// (index 0 = fastest, sized cfg.tier_count()): baselines pin their whole
/// guest image in DRAM (rank 0); TOSS functions get the Step-III analysis
/// run offline (unified max-merged pattern over all inputs, then the
/// Step-IV placement's per-rank share).
std::vector<u64> predicted_tier_demand(const SystemConfig& cfg,
                                       const FunctionRegistration& registration);

/// Rank-0 rollup of predicted_tier_demand — the binding constraint for
/// placement (only the fast tier's capacity is arbiter-defended; deeper
/// rungs are modelled as abundant).
u64 predicted_fast_demand(const SystemConfig& cfg,
                          const FunctionRegistration& registration);

class ClusterEngine {
 public:
  static constexpr size_t npos = Host::npos;

  explicit ClusterEngine(ClusterOptions options = {},
                         SystemConfig cfg = SystemConfig::paper_default(),
                         PricingPlan pricing = {});
  ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Register a function cluster-wide: estimate its fast-tier demand,
  /// bin-pack it onto a host, and bind its request stream there.
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  /// Append a batch to the function's lane on whichever host owns it.
  Result<void> enqueue(const std::string& function,
                       std::vector<Request> requests);

  /// Serve everything pending on every host, migrating under pressure.
  /// Reusable: enqueue more work and run again; reports are cumulative.
  /// threads <= 0 = hardware concurrency (the pool is shared across
  /// hosts; determinism does not depend on it).
  Result<ClusterReport> run(int threads = 0);

  size_t host_count() const { return hosts_.size(); }
  const Host& host_at(size_t index) const { return *hosts_[index]; }
  /// Host index currently owning `function`; npos when unknown.
  size_t host_of(const std::string& function) const;
  size_t function_count() const;
  /// Predicted fast-tier demand currently placed on each host.
  const std::vector<u64>& predicted_load() const { return predicted_load_; }
  /// Full per-rung predicted demand per host: predicted_tier_load()[h][r]
  /// is host h's placed demand at ladder rank r. Row 0 of each host equals
  /// predicted_load()[h]; deeper rungs inform capacity planning but do not
  /// constrain placement (they are modelled as abundant).
  const std::vector<std::vector<u64>>& predicted_tier_load() const {
    return predicted_tier_load_;
  }
  u64 host_fast_budget_bytes(size_t index) const {
    return hosts_[index]->fast_budget_bytes();
  }
  const std::vector<MigrationEvent>& migrations() const { return migrations_; }
  const std::vector<FailoverEvent>& failovers() const { return failovers_; }
  const std::vector<HostHealthEvent>& health_events() const {
    return health_events_;
  }
  /// True once kHostCrash fired for the host (its lanes were failed over
  /// or abandoned; it no longer steps, places or adopts).
  bool host_dead(size_t index) const { return health_[index].dead; }
  /// True while the host's health breaker is not closed (withdrawn from
  /// placement and migration targets, fast-tier budget treated as zero).
  bool host_quarantined(size_t index) const;
  u64 hosts_lost() const { return hosts_lost_; }
  u64 epochs() const { return epochs_; }
  const ClusterOptions& options() const { return options_; }

 private:
  /// Per-host failure-domain state. The injector derives from
  /// (cluster_fault_plan.seed, host name), so each host's crash/brownout/
  /// abort stream is independent of every other host and of the per-lane
  /// snapshot sites.
  struct HostHealth {
    std::unique_ptr<FaultInjector> injector;
    CircuitBreaker breaker;
    bool dead = false;
    u64 brownouts = 0;
    u64 quarantines = 0;
    u64 readmissions = 0;
    u64 lanes_failed_over = 0;
  };

  void maybe_migrate();
  /// Serial failure-domain barrier, run before the hosts step each epoch:
  /// arm kHostCrash / kHostBrownout per alive host in index order, fail
  /// over crashes, stall brownouts, and advance each health breaker.
  void inject_failure_domains();
  void fail_over(size_t dead_host);
  /// Worst-fit over eligible hosts (alive and not quarantined; falls back
  /// to alive-but-quarantined when nothing healthy remains). `exclude` is
  /// skipped (npos = no exclusion). npos when no host is eligible.
  size_t pick_host(u64 demand_bytes, size_t exclude) const;
  void push_health_event(const std::string& host, HostHealthAction action);
  ClusterReport report(int threads) const;

  ClusterOptions options_;
  SystemConfig cfg_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<HostHealth> health_;  ///< parallel to hosts_
  /// Backoff jitter for transactional-migration retries. Drawn only at the
  /// serial barrier, in host index order — deterministic.
  Rng migration_rng_{0};
  std::vector<u64> predicted_load_;  ///< placed rank-0 demand per host index
  /// Placed demand per host per ladder rank (see predicted_tier_load()).
  std::vector<std::vector<u64>> predicted_tier_load_;
  /// (function name, owning host index, predicted per-rank demand) in
  /// registration order; migration rewrites the host index.
  struct Placement {
    std::string function;
    size_t host = 0;
    u64 demand = 0;                 ///< rank-0 rollup (= tier_demand[0])
    std::vector<u64> tier_demand;   ///< per ladder rank
  };
  std::vector<Placement> placements_;
  std::vector<MigrationEvent> migrations_;
  std::vector<FailoverEvent> failovers_;
  std::vector<HostHealthEvent> health_events_;
  u64 hosts_lost_ = 0;
  u64 epochs_ = 0;
  Nanos wall_ns_ = 0;
};

}  // namespace toss
