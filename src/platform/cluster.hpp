// ClusterEngine: N simulated hosts behind one placement layer (DESIGN.md
// §10). Each Host (platform/host.hpp) is a full single-host engine — lane
// fleet, epoch-barrier scheduler, bounded queues, fast-tier arbiter — and
// the cluster adds the two decisions a fleet of hosts needs:
//
//   Placement. add() estimates the function's steady-state fast-tier
//   demand by running the same Step-III analysis TOSS itself will run
//   (profile the access pattern offline, take the Step-IV placement's
//   fast-tier bytes) and bin-packs it greedily: worst-fit by predicted
//   headroom against each host's fast-tier budget, ties toward the lowest
//   host index. The estimate is exactly what the function converges to, so
//   a fleet that fits on paper fits at steady state.
//
//   Migration. The estimate can still be wrong in aggregate (skewed load,
//   keep-alive pressure). When a host's arbiter pins at the close-admission
//   rung for K consecutive epochs, the cluster moves its largest tiered
//   function to the host with the most predicted headroom. Lanes are fully
//   isolated, so the move is the whole HostLane object; the simulated cost
//   of copying the snapshot bytes out of the source SnapshotStore is
//   charged to the lane's simulated clock before it re-joins on the
//   destination. Every move lands in a MigrationEvent ledger with the same
//   determinism contract as ShedEvents.
//
// Determinism: run() steps hosts one epoch at a time in host index order,
// and migration is decided between epochs from simulated state only, so
// the full cluster ledger (shed + arbiter + migration) is bit-identical
// for any worker thread count at a fixed seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platform/host.hpp"

namespace toss {

struct ClusterOptions {
  /// Simulated host count (>= 1).
  size_t hosts = 2;
  /// Per-host engine options. The cluster forces arbiter.enabled — the
  /// placement and migration layers are meaningless without per-host
  /// budget accounting.
  EngineOptions host_options;
  /// K: consecutive epochs a host's arbiter must hold admission closed
  /// before the cluster migrates a function away (hysteresis).
  int migrate_after_pinned_epochs = 4;
  bool enable_migration = true;
};

/// One cross-host move; part of the cluster's determinism contract.
struct MigrationEvent {
  u64 epoch = 0;  ///< cluster epoch the decision was made at
  std::string function;
  std::string from_host;
  std::string to_host;
  u64 moved_bytes = 0;    ///< snapshot bytes copied (fast + slow tier)
  Nanos transfer_ns = 0;  ///< simulated copy cost charged to the lane

  bool operator==(const MigrationEvent&) const = default;
};

struct ClusterHostReport {
  std::string host;
  EngineReport report;
};

struct ClusterReport {
  std::vector<ClusterHostReport> hosts;  ///< host index order
  std::vector<MigrationEvent> migrations;
  u64 epochs = 0;
  int threads = 1;
  Nanos wall_ns = 0;

  u64 total_invocations() const;
  u64 total_shed() const;
  /// The function's report on whichever host currently owns it.
  const FunctionReport* find(const std::string& name) const;
  /// Schema-4 JSON: {"schema":4,"cluster":{...},"hosts":[<per-host
  /// metrics>...]} — each hosts[] entry is a MetricsSnapshot::to_json()
  /// tagged with its host name (and, since schema 4, its per-tier
  /// resident/occupancy rollup).
  std::string to_json() const;
};

/// Greedy worst-fit bin packing step: pick the host for a function with
/// `demand_bytes` of predicted fast-tier demand given each host's already
/// placed demand and the (uniform) per-host budget. Prefers the fitting
/// host with the most headroom; when nothing fits, the least overloaded
/// host. Ties break toward the lowest index. Exposed for unit tests.
size_t place_on_host(u64 demand_bytes, const std::vector<u64>& predicted_load,
                     u64 fast_budget_bytes);

/// Predicted steady-state bytes per ladder rank for one registration
/// (index 0 = fastest, sized cfg.tier_count()): baselines pin their whole
/// guest image in DRAM (rank 0); TOSS functions get the Step-III analysis
/// run offline (unified max-merged pattern over all inputs, then the
/// Step-IV placement's per-rank share).
std::vector<u64> predicted_tier_demand(const SystemConfig& cfg,
                                       const FunctionRegistration& registration);

/// Rank-0 rollup of predicted_tier_demand — the binding constraint for
/// placement (only the fast tier's capacity is arbiter-defended; deeper
/// rungs are modelled as abundant).
u64 predicted_fast_demand(const SystemConfig& cfg,
                          const FunctionRegistration& registration);

class ClusterEngine {
 public:
  static constexpr size_t npos = Host::npos;

  explicit ClusterEngine(ClusterOptions options = {},
                         SystemConfig cfg = SystemConfig::paper_default(),
                         PricingPlan pricing = {});
  ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Register a function cluster-wide: estimate its fast-tier demand,
  /// bin-pack it onto a host, and bind its request stream there.
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  /// Append a batch to the function's lane on whichever host owns it.
  Result<void> enqueue(const std::string& function,
                       std::vector<Request> requests);

  /// Serve everything pending on every host, migrating under pressure.
  /// Reusable: enqueue more work and run again; reports are cumulative.
  /// threads <= 0 = hardware concurrency (the pool is shared across
  /// hosts; determinism does not depend on it).
  Result<ClusterReport> run(int threads = 0);

  size_t host_count() const { return hosts_.size(); }
  const Host& host_at(size_t index) const { return *hosts_[index]; }
  /// Host index currently owning `function`; npos when unknown.
  size_t host_of(const std::string& function) const;
  size_t function_count() const;
  /// Predicted fast-tier demand currently placed on each host.
  const std::vector<u64>& predicted_load() const { return predicted_load_; }
  /// Full per-rung predicted demand per host: predicted_tier_load()[h][r]
  /// is host h's placed demand at ladder rank r. Row 0 of each host equals
  /// predicted_load()[h]; deeper rungs inform capacity planning but do not
  /// constrain placement (they are modelled as abundant).
  const std::vector<std::vector<u64>>& predicted_tier_load() const {
    return predicted_tier_load_;
  }
  u64 host_fast_budget_bytes(size_t index) const {
    return hosts_[index]->fast_budget_bytes();
  }
  const std::vector<MigrationEvent>& migrations() const { return migrations_; }
  u64 epochs() const { return epochs_; }
  const ClusterOptions& options() const { return options_; }

 private:
  void maybe_migrate();
  ClusterReport report(int threads) const;

  ClusterOptions options_;
  SystemConfig cfg_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<u64> predicted_load_;  ///< placed rank-0 demand per host index
  /// Placed demand per host per ladder rank (see predicted_tier_load()).
  std::vector<std::vector<u64>> predicted_tier_load_;
  /// (function name, owning host index, predicted per-rank demand) in
  /// registration order; migration rewrites the host index.
  struct Placement {
    std::string function;
    size_t host = 0;
    u64 demand = 0;                 ///< rank-0 rollup (= tier_demand[0])
    std::vector<u64> tier_demand;   ///< per ladder rank
  };
  std::vector<Placement> placements_;
  std::vector<MigrationEvent> migrations_;
  u64 epochs_ = 0;
  Nanos wall_ns_ = 0;
};

}  // namespace toss
