// Invoker: run single invocations under any restore policy, plus the
// baseline helpers every experiment normalizes against.
#pragma once

#include "baseline/policy.hpp"
#include "vmm/microvm.hpp"
#include "workloads/function_model.hpp"

namespace toss {

class Invoker {
 public:
  Invoker(const SystemConfig& cfg, SnapshotStore& store);

  /// Cold invocation under `policy`. Drops the host page cache first when
  /// `drop_caches` (the paper's methodology).
  InvocationResult invoke(const RestorePolicy& policy, const Invocation& inv,
                          bool drop_caches = true);

  /// Initial execution: boot a DRAM-only VM, run, snapshot. Returns the
  /// single-tier snapshot file id (and the timing via `out_result`).
  u64 initial_execution(const FunctionModel& model, const Invocation& inv,
                        InvocationResult* out_result = nullptr);

  /// Warm DRAM execution time (no setup, no faults): the denominator of
  /// warm-slowdown metrics (Fig 5).
  Nanos warm_dram_exec_ns(const Invocation& inv) const;

  const SystemConfig& config() const { return *cfg_; }
  SnapshotStore& store() { return *store_; }

 private:
  const SystemConfig* cfg_;
  SnapshotStore* store_;
};

}  // namespace toss
