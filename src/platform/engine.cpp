#include "platform/engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace toss {

const char* drop_policy_name(DropPolicy policy) {
  switch (policy) {
    case DropPolicy::kTailDrop: return "tail_drop";
    case DropPolicy::kOldestDrop: return "oldest_drop";
  }
  return "?";
}

const char* shed_cause_name(ShedCause cause) {
  switch (cause) {
    case ShedCause::kQueueFull: return "queue_full";
    case ShedCause::kGlobalOverload: return "global_overload";
    case ShedCause::kAdmissionClosed: return "admission_closed";
    case ShedCause::kDeadlineExpired: return "deadline_expired";
  }
  return "?";
}

Error shed_error(const std::string& function, const ShedEvent& event) {
  return Error(ErrorCode::kOverloaded,
               function + ": request " + std::to_string(event.request_index) +
                   " shed (" + shed_cause_name(event.cause) + ")");
}

u64 EngineReport::total_invocations() const {
  u64 n = 0;
  for (const FunctionReport& f : functions) n += f.stats.invocations;
  return n;
}

u64 EngineReport::total_shed() const {
  u64 n = 0;
  for (const FunctionReport& f : functions) n += f.overload.total_shed();
  return n;
}

const FunctionReport* EngineReport::find(const std::string& name) const {
  for (const FunctionReport& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

PlatformEngine::PlatformEngine(SystemConfig cfg, PricingPlan pricing,
                               EngineOptions options)
    : cfg_(std::move(cfg)), pricing_(pricing), options_(options) {
  options_.chunk = std::max(1, options_.chunk);
}

PlatformEngine::~PlatformEngine() = default;

Result<void> PlatformEngine::add(const FunctionRegistration& registration,
                                 std::vector<Request> requests) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  const std::string& name = registration.spec().name;
  for (const auto& lane : lanes_)
    if (lane->name == name)
      return {ErrorCode::kDuplicateFunction, name + " is already registered"};
  // Reject malformed streams up front so the drain cannot fail per-request.
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.input < 0 || r.input >= kNumInputs)
      return {ErrorCode::kInvalidRequest,
              name + ": request input " + std::to_string(r.input) +
                  " outside [0, " + std::to_string(kNumInputs) + ")"};
    if (r.arrival_ns < 0 || r.deadline_ns < 0)
      return {ErrorCode::kInvalidRequest,
              name + ": request " + std::to_string(i) +
                  " has a negative arrival or deadline"};
    if (i > 0 && r.arrival_ns < requests[i - 1].arrival_ns)
      return {ErrorCode::kInvalidRequest,
              name + ": request " + std::to_string(i) +
                  " arrives before its predecessor (streams must be sorted "
                  "by arrival_ns)"};
  }

  auto lane = std::make_unique<Lane>();
  lane->name = name;
  lane->policy = registration.policy();
  // Each lane gets its own injector stream keyed by name, so lanes fault
  // independently and deterministically regardless of scheduling.
  FaultPlan lane_plan = options_.fault_plan;
  lane_plan.seed = mix_seed(options_.fault_plan.seed, name);
  lane->host =
      std::make_unique<ServerlessPlatform>(cfg_, pricing_, std::move(lane_plan));
  if (Result<void> reg = lane->host->register_function(registration);
      !reg.ok())
    return reg;
  lane->requests = std::move(requests);
  if (options_.keep_outcomes) lane->outcomes.reserve(lane->requests.size());
  lane->series = metrics_.series(name);
  lanes_.push_back(std::move(lane));
  return {};
}

void PlatformEngine::record_error(ErrorCode code, std::string message) {
  std::lock_guard<RankedMutex> lock(mu_);
  if (!failed_) {
    failed_ = true;
    error_code_ = code;
    error_message_ = std::move(message);
  }
  abort_ = true;
  ready_cv_.notify_all();
}

void PlatformEngine::process_chunk(Lane& lane) {
  // Serialization guard: the scheduler hands a lane to one worker at a
  // time; a violation here means the queue invariant broke. Release builds
  // count it (EngineReport::serialization_violations, asserted 0 by
  // tests); checked builds abort on the spot, before the re-entered
  // TossFunction state machine can corrupt anything.
  const int prior = lane.in_flight.fetch_add(1, std::memory_order_acq_rel);
  TOSS_ASSERT(prior == 0, "lane re-entered concurrently");
  if (prior != 0)
    serialization_violations_.fetch_add(1, std::memory_order_relaxed);

  const size_t end = std::min(lane.requests.size(),
                              lane.next + static_cast<size_t>(options_.chunk));
  for (; lane.next < end; ++lane.next) {
    const Request& r = lane.requests[lane.next];
    Result<InvocationOutcome> out = lane.host->invoke(lane.name, r.input, r.seed);
    if (!out.ok()) {  // inputs are pre-validated; this is a belt-and-braces path
      record_error(out.code(), out.message());
      lane.next = lane.requests.size();
      break;
    }
    const InvocationOutcome& o = *out;
    lane.series->record(o.toss_phase, o.cold_boot, o.result.total_ns(),
                        o.result.setup.setup_ns, o.result.exec.exec_ns,
                        o.charge, o.recovery);
    if (options_.keep_outcomes) lane.outcomes.push_back(o);
  }

  lane.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void PlatformEngine::scheduler_loop() {
  for (;;) {
    size_t idx;
    {
      std::unique_lock<RankedMutex> lock(mu_);
      ready_cv_.wait(lock, [this] {
        return abort_ || !ready_.empty() || unfinished_ == 0;
      });
      if (abort_ || (ready_.empty() && unfinished_ == 0)) return;
      if (ready_.empty()) continue;  // spurious wake while others finish
      idx = ready_.front();
      ready_.pop_front();
    }

    Lane& lane = *lanes_[idx];
    process_chunk(lane);

    {
      std::lock_guard<RankedMutex> lock(mu_);
      if (lane.next < lane.requests.size()) {
        ready_.push_back(idx);
        ready_cv_.notify_one();
      } else if (--unfinished_ == 0) {
        ready_cv_.notify_all();
      }
    }
  }
}

Result<EngineReport> PlatformEngine::run() { return run(options_.threads); }

Result<EngineReport> PlatformEngine::run(int threads) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  ran_ = true;
  if (threads <= 0) threads = ThreadPool::hardware_threads();
  if (options_.overload_protection()) return run_epochs(threads);

  {
    std::lock_guard<RankedMutex> lock(mu_);
    ready_.clear();
    unfinished_ = 0;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i]->requests.empty()) continue;
      ready_.push_back(i);
      ++unfinished_;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (threads == 1 || lanes_.size() <= 1) {
    // Serial reference path: same scheduler, caller's thread.
    scheduler_loop();
  } else {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t)
      pool.submit([this] { scheduler_loop(); });
    pool.wait_idle();
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (failed_) return {error_code_, error_message_};

  return assemble_report(
      threads,
      static_cast<Nanos>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
}

EngineReport PlatformEngine::assemble_report(int threads, Nanos wall_ns) {
  EngineReport report;
  report.threads = threads;
  report.wall_ns = wall_ns;
  report.serialization_violations =
      serialization_violations_.load(std::memory_order_relaxed);
  report.functions.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    FunctionReport f;
    f.name = lane->name;
    f.policy = lane->policy;
    f.stats = lane->host->stats(lane->name);
    if (const TossFunction* toss = lane->host->toss_state(lane->name))
      f.final_phase = toss->phase();
    f.outcomes = std::move(lane->outcomes);
    f.overload = lane->overload;
    f.shed_events = std::move(lane->shed_events);
    report.functions.push_back(std::move(f));
  }
  report.metrics = metrics_.snapshot();
  return report;
}

// ---------------------------------------------------------------------------
// Epoch-barrier overload scheduler (DESIGN.md §9).
//
// Each epoch runs one chunk per active lane over the worker pool — lanes
// touch only lane-local state, so the parallel phase is trivially
// deterministic — then a serial barrier applies every cross-lane decision
// (global queue bound, arbiter ladder) in lane registration order. The
// resulting shed/arbiter ledgers are bit-identical for any thread count.

void PlatformEngine::shed(Lane& lane, size_t request_index, ShedCause cause) {
  switch (cause) {
    case ShedCause::kQueueFull:
      ++lane.overload.shed_queue_full;
      lane.series->shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedCause::kGlobalOverload:
      ++lane.overload.shed_global;
      lane.series->shed_queue_global.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedCause::kAdmissionClosed:
      ++lane.overload.shed_admission;
      lane.series->shed_admission.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedCause::kDeadlineExpired:
      ++lane.overload.shed_deadline;
      lane.series->shed_deadline.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (options_.keep_shed_events)
    lane.shed_events.push_back(ShedEvent{request_index, cause, lane.sim_now});
}

void PlatformEngine::admit_arrivals(Lane& lane, bool admission_closed) {
  while (lane.arrived < lane.requests.size() &&
         lane.requests[lane.arrived].arrival_ns <= lane.sim_now) {
    const size_t idx = lane.arrived++;
    ++lane.overload.offered;
    if (admission_closed) {
      shed(lane, idx, ShedCause::kAdmissionClosed);
      continue;
    }
    if (options_.max_lane_queue > 0 &&
        lane.queue.size() >= options_.max_lane_queue) {
      if (options_.drop_policy == DropPolicy::kTailDrop) {
        shed(lane, idx, ShedCause::kQueueFull);
        continue;
      }
      // Oldest-drop: the newcomer displaces the stalest queued request.
      shed(lane, lane.queue.front(), ShedCause::kQueueFull);
      lane.queue.pop_front();
    }
    lane.queue.push_back(idx);
    ++lane.overload.admitted;
    lane.series->admitted.fetch_add(1, std::memory_order_relaxed);
    lane.overload.queue_peak =
        std::max(lane.overload.queue_peak, lane.queue.size());
  }
}

void PlatformEngine::process_chunk_overload(Lane& lane, bool admission_closed) {
  const int prior = lane.in_flight.fetch_add(1, std::memory_order_acq_rel);
  TOSS_ASSERT(prior == 0, "lane re-entered concurrently");
  if (prior != 0)
    serialization_violations_.fetch_add(1, std::memory_order_relaxed);

  Nanos chunk_service_ns = 0;
  int budget = options_.chunk;
  while (budget > 0) {
    admit_arrivals(lane, admission_closed);
    if (lane.queue.empty()) {
      if (lane.arrived >= lane.requests.size()) break;  // stream drained
      // Idle: fast-forward the simulated clock to the next arrival.
      lane.sim_now =
          std::max(lane.sim_now, lane.requests[lane.arrived].arrival_ns);
      continue;
    }
    const size_t idx = lane.queue.front();
    lane.queue.pop_front();
    const Request& r = lane.requests[idx];
    if (options_.enforce_deadlines && r.deadline_ns > 0 &&
        lane.sim_now > r.deadline_ns) {
      // SLO-dead before service even starts: shed instead of wasting a
      // restore. Costs no simulated time and no chunk budget.
      shed(lane, idx, ShedCause::kDeadlineExpired);
      continue;
    }
    Result<InvocationOutcome> out =
        lane.host->invoke(lane.name, r.input, r.seed);
    if (!out.ok()) {  // inputs are pre-validated; belt-and-braces path
      record_error(out.code(), out.message());
      lane.arrived = lane.requests.size();
      lane.queue.clear();
      break;
    }
    const InvocationOutcome& o = *out;
    lane.sim_now += o.result.total_ns();
    chunk_service_ns += o.result.total_ns();
    lane.last_setup_ns = o.result.setup.setup_ns;
    ++lane.overload.completed;
    if (r.deadline_ns > 0 && lane.sim_now > r.deadline_ns) {
      ++lane.overload.deadline_misses;
      lane.series->deadline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    lane.series->record(o.toss_phase, o.cold_boot, o.result.total_ns(),
                        o.result.setup.setup_ns, o.result.exec.exec_ns,
                        o.charge, o.recovery);
    if (options_.keep_outcomes) lane.outcomes.push_back(o);
    --budget;
  }

  // Watchdog: a chunk whose simulated service time blows the bound marks a
  // pathologically slow lane; trip its breaker so it degrades to the
  // single-tier rung instead of dragging the whole epoch.
  if (options_.watchdog_chunk_budget_ns > 0 &&
      chunk_service_ns > options_.watchdog_chunk_budget_ns) {
    lane.host->trip_breaker(lane.name);
    ++lane.overload.watchdog_trips;
    lane.series->watchdog_trips.fetch_add(1, std::memory_order_relaxed);
  }

  lane.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void PlatformEngine::enforce_global_queue_bound() {
  if (options_.max_global_queue == 0) return;
  size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queue.size();
  while (total > options_.max_global_queue) {
    // Trim the longest queue; ties break toward the lowest lane index.
    size_t victim = lanes_.size();
    for (size_t i = 0; i < lanes_.size(); ++i)
      if (!lanes_[i]->queue.empty() &&
          (victim == lanes_.size() ||
           lanes_[i]->queue.size() > lanes_[victim]->queue.size()))
        victim = i;
    if (victim == lanes_.size()) return;  // unreachable; defensive
    Lane& lane = *lanes_[victim];
    const size_t idx = options_.drop_policy == DropPolicy::kTailDrop
                           ? lane.queue.back()
                           : lane.queue.front();
    if (options_.drop_policy == DropPolicy::kTailDrop)
      lane.queue.pop_back();
    else
      lane.queue.pop_front();
    shed(lane, idx, ShedCause::kGlobalOverload);
    --total;
  }
}

void PlatformEngine::arbiter_tick(FastTierArbiter& arbiter, u64 epoch) {
  std::vector<FastTierArbiter::LaneDemand> demands;
  demands.reserve(lanes_.size());
  for (size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = *lanes_[i];
    FastTierArbiter::LaneDemand d;
    d.lane = i;
    d.name = &lane.name;
    const bool drained = lane.drained();
    d.active = !drained && !lane.requests.empty();
    if (drained && !lane.finish_reported && !lane.requests.empty()) {
      d.just_finished = true;
      lane.finish_reported = true;
    }
    const ServerlessPlatform::ResidentBytes rb =
        lane.host->resident_bytes(lane.name);
    d.fast_bytes = rb.fast;
    d.slow_bytes = rb.slow;
    const TossFunction* toss = lane.host->toss_state(lane.name);
    d.demotable = toss != nullptr && toss->phase() == TossPhase::kTiered;
    d.cold_cost_ns = lane.last_setup_ns;
    demands.push_back(d);
  }

  const auto apply = [this](size_t li, int rung,
                            std::optional<u64> cap) -> std::optional<u64> {
    Lane& lane = *lanes_[li];
    TossFunction* toss = lane.host->toss_state_mutable(lane.name);
    if (toss == nullptr || !toss->retier(cap)) return std::nullopt;
    if (rung > lane.rung) {
      ++lane.overload.demotions;
      lane.series->demotions.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++lane.overload.promotions;
      lane.series->promotions.fetch_add(1, std::memory_order_relaxed);
    }
    lane.rung = rung;
    return lane.host->resident_bytes(lane.name).fast;
  };
  arbiter.tick(epoch, demands, apply);
}

Result<EngineReport> PlatformEngine::run_epochs(int threads) {
  ArbiterOptions aopt = options_.arbiter;
  if (aopt.fast_budget_bytes == 0)
    aopt.fast_budget_bytes = cfg_.fast.capacity_bytes;
  FastTierArbiter arbiter(aopt, aopt.fast_budget_bytes);

  // Persistent pool; null = the serial reference path (parallel_for runs
  // inline on the caller's thread for n <= 1 or a null pool).
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && lanes_.size() > 1)
    pool = std::make_unique<ThreadPool>(threads);

  const auto t0 = std::chrono::steady_clock::now();
  for (u64 epoch = 0;; ++epoch) {
    std::vector<size_t> active;
    active.reserve(lanes_.size());
    for (size_t i = 0; i < lanes_.size(); ++i)
      if (!lanes_[i]->drained()) active.push_back(i);
    if (active.empty()) break;

    // Snapshot the admission gate once per epoch so every lane sees the
    // same decision regardless of scheduling.
    const bool closed = aopt.enabled && arbiter.admission_closed();
    parallel_for(pool.get(), active.size(), [&](size_t k) {
      process_chunk_overload(*lanes_[active[k]], closed);
    });
    // parallel_for joins before returning, so reading the failure flag and
    // running the serial barrier below cannot race with workers.
    if (failed_) break;

    enforce_global_queue_bound();
    if (aopt.enabled) arbiter_tick(arbiter, epoch);
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (failed_) return {error_code_, error_message_};

  EngineReport report = assemble_report(
      threads,
      static_cast<Nanos>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
  report.arbiter = arbiter.report();
  return report;
}

const TossFunction* PlatformEngine::toss_state(const std::string& name) const {
  for (const auto& lane : lanes_)
    if (lane->name == name) return lane->host->toss_state(name);
  return nullptr;
}

const ServerlessPlatform* PlatformEngine::lane_host(
    const std::string& name) const {
  for (const auto& lane : lanes_)
    if (lane->name == name) return lane->host.get();
  return nullptr;
}

}  // namespace toss
