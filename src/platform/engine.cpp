#include "platform/engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace toss {

u64 EngineReport::total_invocations() const {
  u64 n = 0;
  for (const FunctionReport& f : functions) n += f.stats.invocations;
  return n;
}

const FunctionReport* EngineReport::find(const std::string& name) const {
  for (const FunctionReport& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

PlatformEngine::PlatformEngine(SystemConfig cfg, PricingPlan pricing,
                               EngineOptions options)
    : cfg_(std::move(cfg)), pricing_(pricing), options_(options) {
  options_.chunk = std::max(1, options_.chunk);
}

PlatformEngine::~PlatformEngine() = default;

Result<void> PlatformEngine::add(const FunctionRegistration& registration,
                                 std::vector<Request> requests) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  const std::string& name = registration.spec().name;
  for (const auto& lane : lanes_)
    if (lane->name == name)
      return {ErrorCode::kDuplicateFunction, name + " is already registered"};
  // Reject malformed streams up front so the drain cannot fail per-request.
  for (const Request& r : requests)
    if (r.input < 0 || r.input >= kNumInputs)
      return {ErrorCode::kInvalidRequest,
              name + ": request input " + std::to_string(r.input) +
                  " outside [0, " + std::to_string(kNumInputs) + ")"};

  auto lane = std::make_unique<Lane>();
  lane->name = name;
  lane->policy = registration.policy();
  // Each lane gets its own injector stream keyed by name, so lanes fault
  // independently and deterministically regardless of scheduling.
  FaultPlan lane_plan = options_.fault_plan;
  lane_plan.seed = mix_seed(options_.fault_plan.seed, name);
  lane->host =
      std::make_unique<ServerlessPlatform>(cfg_, pricing_, std::move(lane_plan));
  if (Result<void> reg = lane->host->register_function(registration);
      !reg.ok())
    return reg;
  lane->requests = std::move(requests);
  if (options_.keep_outcomes) lane->outcomes.reserve(lane->requests.size());
  lane->series = metrics_.series(name);
  lanes_.push_back(std::move(lane));
  return {};
}

void PlatformEngine::record_error(ErrorCode code, std::string message) {
  std::lock_guard<RankedMutex> lock(mu_);
  if (!failed_) {
    failed_ = true;
    error_code_ = code;
    error_message_ = std::move(message);
  }
  abort_ = true;
  ready_cv_.notify_all();
}

void PlatformEngine::process_chunk(Lane& lane) {
  // Serialization guard: the scheduler hands a lane to one worker at a
  // time; a violation here means the queue invariant broke. Release builds
  // count it (EngineReport::serialization_violations, asserted 0 by
  // tests); checked builds abort on the spot, before the re-entered
  // TossFunction state machine can corrupt anything.
  const int prior = lane.in_flight.fetch_add(1, std::memory_order_acq_rel);
  TOSS_ASSERT(prior == 0, "lane re-entered concurrently");
  if (prior != 0)
    serialization_violations_.fetch_add(1, std::memory_order_relaxed);

  const size_t end = std::min(lane.requests.size(),
                              lane.next + static_cast<size_t>(options_.chunk));
  for (; lane.next < end; ++lane.next) {
    const Request& r = lane.requests[lane.next];
    Result<InvocationOutcome> out = lane.host->invoke(lane.name, r.input, r.seed);
    if (!out.ok()) {  // inputs are pre-validated; this is a belt-and-braces path
      record_error(out.code(), out.message());
      lane.next = lane.requests.size();
      break;
    }
    const InvocationOutcome& o = *out;
    lane.series->record(o.toss_phase, o.cold_boot, o.result.total_ns(),
                        o.result.setup.setup_ns, o.result.exec.exec_ns,
                        o.charge, o.recovery);
    if (options_.keep_outcomes) lane.outcomes.push_back(o);
  }

  lane.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void PlatformEngine::scheduler_loop() {
  for (;;) {
    size_t idx;
    {
      std::unique_lock<RankedMutex> lock(mu_);
      ready_cv_.wait(lock, [this] {
        return abort_ || !ready_.empty() || unfinished_ == 0;
      });
      if (abort_ || (ready_.empty() && unfinished_ == 0)) return;
      if (ready_.empty()) continue;  // spurious wake while others finish
      idx = ready_.front();
      ready_.pop_front();
    }

    Lane& lane = *lanes_[idx];
    process_chunk(lane);

    {
      std::lock_guard<RankedMutex> lock(mu_);
      if (lane.next < lane.requests.size()) {
        ready_.push_back(idx);
        ready_cv_.notify_one();
      } else if (--unfinished_ == 0) {
        ready_cv_.notify_all();
      }
    }
  }
}

Result<EngineReport> PlatformEngine::run() { return run(options_.threads); }

Result<EngineReport> PlatformEngine::run(int threads) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  ran_ = true;
  if (threads <= 0) threads = ThreadPool::hardware_threads();

  {
    std::lock_guard<RankedMutex> lock(mu_);
    ready_.clear();
    unfinished_ = 0;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i]->requests.empty()) continue;
      ready_.push_back(i);
      ++unfinished_;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (threads == 1 || lanes_.size() <= 1) {
    // Serial reference path: same scheduler, caller's thread.
    scheduler_loop();
  } else {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t)
      pool.submit([this] { scheduler_loop(); });
    pool.wait_idle();
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (failed_) return {error_code_, error_message_};

  EngineReport report;
  report.threads = threads;
  report.wall_ns = static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  report.serialization_violations =
      serialization_violations_.load(std::memory_order_relaxed);
  report.functions.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    FunctionReport f;
    f.name = lane->name;
    f.policy = lane->policy;
    f.stats = lane->host->stats(lane->name);
    if (const TossFunction* toss = lane->host->toss_state(lane->name))
      f.final_phase = toss->phase();
    f.outcomes = std::move(lane->outcomes);
    report.functions.push_back(std::move(f));
  }
  report.metrics = metrics_.snapshot();
  return report;
}

const TossFunction* PlatformEngine::toss_state(const std::string& name) const {
  for (const auto& lane : lanes_)
    if (lane->name == name) return lane->host->toss_state(name);
  return nullptr;
}

const ServerlessPlatform* PlatformEngine::lane_host(
    const std::string& name) const {
  for (const auto& lane : lanes_)
    if (lane->name == name) return lane->host.get();
  return nullptr;
}

}  // namespace toss
