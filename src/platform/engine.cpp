#include "platform/engine.hpp"

namespace toss {

PlatformEngine::PlatformEngine(SystemConfig cfg, PricingPlan pricing,
                               EngineOptions options)
    : host_("host0", std::move(cfg), pricing, options) {}

PlatformEngine::~PlatformEngine() = default;

Result<void> PlatformEngine::add(const FunctionRegistration& registration,
                                 std::vector<Request> requests) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  return host_.add(registration, std::move(requests));
}

Result<EngineReport> PlatformEngine::run() { return run(options().threads); }

Result<EngineReport> PlatformEngine::run(int threads) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  if (drained_)
    return {ErrorCode::kEngineBusy,
            "engine is in reusable drain() mode; keep calling drain()"};
  ran_ = true;
  return host_.drain(threads);
}

Result<EngineReport> PlatformEngine::drain(const RequestBatch& batch) {
  return drain(batch, options().threads);
}

Result<EngineReport> PlatformEngine::drain(const RequestBatch& batch,
                                           int threads) {
  if (ran_)
    return {ErrorCode::kEngineBusy,
            "engine already ran; build a new engine for another fleet"};
  drained_ = true;
  for (const LaneBatch& b : batch)
    if (Result<void> q = host_.enqueue(b.function, b.requests); !q.ok())
      return {q.code(), q.message()};
  return host_.drain(threads);
}

}  // namespace toss
