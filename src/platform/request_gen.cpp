#include "platform/request_gen.hpp"

#include <cmath>

namespace toss {

std::vector<Request> RequestGenerator::fixed(size_t n, int input, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Request{input, rng.next()});
  return out;
}

std::vector<Request> RequestGenerator::uniform(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int input = static_cast<int>(rng.next_below(kNumInputs));
    out.push_back(Request{input, rng.next()});
  }
  return out;
}

std::vector<Request> RequestGenerator::weighted(
    size_t n, const std::array<double, kNumInputs>& weights, u64 seed) {
  Rng rng(seed);
  double total = 0;
  for (double w : weights) total += w;
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.next_double() * total;
    int input = 0;
    for (int k = 0; k < kNumInputs; ++k) {
      x -= weights[static_cast<size_t>(k)];
      if (x <= 0) {
        input = k;
        break;
      }
      input = k;
    }
    out.push_back(Request{input, rng.next()});
  }
  return out;
}

std::vector<Request> RequestGenerator::round_robin(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(Request{static_cast<int>(i % kNumInputs), rng.next()});
  return out;
}

std::vector<Request> RequestGenerator::open_loop(std::vector<Request> requests,
                                                 Nanos mean_gap_ns,
                                                 Nanos relative_deadline_ns,
                                                 u64 seed) {
  Rng rng(seed);
  Nanos now = 0;
  for (Request& r : requests) {
    // Inverse-CDF exponential gap; next_double() < 1 keeps the log finite.
    const double u = rng.next_double();
    now += mean_gap_ns <= 0 ? 0 : -mean_gap_ns * std::log(1.0 - u);
    r.arrival_ns = now;
    r.deadline_ns =
        relative_deadline_ns > 0 ? now + relative_deadline_ns : 0.0;
  }
  return requests;
}

}  // namespace toss
