#include "platform/request_gen.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace toss {

namespace {

/// Split one CSV row; trims nothing (the trace format has no quoting or
/// embedded separators).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

Result<std::vector<TraceStream>> trace_error(const std::string& path,
                                             size_t line_no,
                                             const std::string& what) {
  return {ErrorCode::kInvalidRequest,
          path + ":" + std::to_string(line_no) + ": " + what};
}

bool parse_number(const std::string& field, double* out) {
  if (field.empty()) return false;
  size_t used = 0;
  try {
    *out = std::stod(field, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == field.size();
}

}  // namespace

std::vector<Request> RequestGenerator::fixed(size_t n, int input, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Request{input, rng.next()});
  return out;
}

std::vector<Request> RequestGenerator::uniform(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int input = static_cast<int>(rng.next_below(kNumInputs));
    out.push_back(Request{input, rng.next()});
  }
  return out;
}

std::vector<Request> RequestGenerator::weighted(
    size_t n, const std::array<double, kNumInputs>& weights, u64 seed) {
  Rng rng(seed);
  double total = 0;
  for (double w : weights) total += w;
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.next_double() * total;
    int input = 0;
    for (int k = 0; k < kNumInputs; ++k) {
      x -= weights[static_cast<size_t>(k)];
      if (x <= 0) {
        input = k;
        break;
      }
      input = k;
    }
    out.push_back(Request{input, rng.next()});
  }
  return out;
}

std::vector<Request> RequestGenerator::round_robin(size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(Request{static_cast<int>(i % kNumInputs), rng.next()});
  return out;
}

std::vector<Request> RequestGenerator::open_loop(std::vector<Request> requests,
                                                 Nanos mean_gap_ns,
                                                 Nanos relative_deadline_ns,
                                                 u64 seed) {
  Rng rng(seed);
  Nanos now = 0;
  for (Request& r : requests) {
    // Inverse-CDF exponential gap; next_double() < 1 keeps the log finite.
    const double u = rng.next_double();
    now += mean_gap_ns <= 0 ? 0 : -mean_gap_ns * std::log(1.0 - u);
    r.arrival_ns = now;
    r.deadline_ns =
        relative_deadline_ns > 0 ? now + relative_deadline_ns : 0.0;
  }
  return requests;
}

Result<std::vector<TraceStream>> RequestGenerator::from_trace(
    const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return {ErrorCode::kTransientIo, "cannot open trace file " + path};

  std::vector<TraceStream> streams;
  // Per-stream default-input/default-seed state, parallel to `streams`.
  std::vector<int> next_input;
  std::vector<Rng> seed_rng;
  std::vector<char> qos_set;  ///< stream saw an explicit qos column value

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv(line);
    if (line_no == 1 && fields[0] == "function_id") continue;  // header
    if (fields.size() < 3 || fields.size() > 6)
      return trace_error(path, line_no,
                         "expected function_id,arrival_ns,deadline_ns"
                         "[,input[,seed[,qos]]], got " +
                             std::to_string(fields.size()) + " fields");
    const std::string& function = fields[0];
    if (function.empty())
      return trace_error(path, line_no, "empty function_id");

    double arrival = 0, deadline = 0;
    if (!parse_number(fields[1], &arrival) || arrival < 0)
      return trace_error(path, line_no,
                         "arrival_ns '" + fields[1] +
                             "' is not a non-negative number");
    if (!parse_number(fields[2], &deadline) || deadline < 0)
      return trace_error(path, line_no,
                         "deadline_ns '" + fields[2] +
                             "' is not a non-negative number");
    // A nonzero deadline before the arrival is dead on admission — reject
    // the row instead of silently shedding the request at serve time.
    if (deadline > 0 && deadline < arrival)
      return trace_error(path, line_no,
                         "deadline_ns " + fields[2] +
                             " precedes arrival_ns " + fields[1]);

    size_t s = streams.size();
    for (size_t i = 0; i < streams.size(); ++i)
      if (streams[i].function == function) {
        s = i;
        break;
      }
    if (s == streams.size()) {
      streams.push_back(TraceStream{function, {}});
      next_input.push_back(0);
      seed_rng.emplace_back(mix_seed(42, function));
      qos_set.push_back(0);
    }

    Request r;
    r.arrival_ns = arrival;
    r.deadline_ns = deadline;
    if (fields.size() >= 4) {
      double input = 0;
      if (!parse_number(fields[3], &input) || input != std::floor(input) ||
          input < 0 || input >= kNumInputs)
        return trace_error(path, line_no,
                           "input '" + fields[3] + "' outside [0, " +
                               std::to_string(kNumInputs) + ")");
      r.input = static_cast<int>(input);
    } else {
      r.input = next_input[s];
      next_input[s] = (next_input[s] + 1) % kNumInputs;
    }
    if (fields.size() >= 5) {
      double seed = 0;
      if (!parse_number(fields[4], &seed) || seed < 0)
        return trace_error(path, line_no,
                           "seed '" + fields[4] +
                               "' is not a non-negative number");
      r.seed = static_cast<u64>(seed);
    } else {
      r.seed = seed_rng[s].next();
    }
    if (fields.size() == 6) {
      const std::optional<QosClass> qos = parse_qos_class(fields[5]);
      if (!qos)
        return trace_error(path, line_no,
                           "qos '" + fields[5] +
                               "' is not one of none/gold/bronze");
      if (qos_set[s] && streams[s].qos != *qos)
        return trace_error(path, line_no,
                           function + ": conflicting qos class '" + fields[5] +
                               "' (a function carries one class per trace)");
      streams[s].qos = *qos;
      qos_set[s] = 1;
    }

    if (!streams[s].requests.empty() &&
        r.arrival_ns < streams[s].requests.back().arrival_ns)
      return trace_error(path, line_no,
                         function +
                             ": arrivals out of order (traces must be "
                             "sorted by arrival_ns per function)");
    streams[s].requests.push_back(r);
  }
  return streams;
}

}  // namespace toss
