#include "platform/qos.hpp"

namespace toss {

const char* shed_cause_name(ShedCause cause) {
  switch (cause) {
    case ShedCause::kQueueFull: return "queue_full";
    case ShedCause::kGlobalOverload: return "global_overload";
    case ShedCause::kAdmissionClosed: return "admission_closed";
    case ShedCause::kDeadlineExpired: return "deadline_expired";
    case ShedCause::kHostLost: return "host_lost";
  }
  return "?";
}

const char* shed_cause_json_key(ShedCause cause) {
  switch (cause) {
    case ShedCause::kQueueFull: return "shed_queue_full";
    case ShedCause::kGlobalOverload: return "shed_queue_global";
    case ShedCause::kAdmissionClosed: return "shed_admission";
    case ShedCause::kDeadlineExpired: return "shed_deadline";
    case ShedCause::kHostLost: return "shed_host_lost";
  }
  return "?";
}

const char* qos_class_name(QosClass cls) {
  switch (cls) {
    case QosClass::kNone: return "none";
    case QosClass::kGold: return "gold";
    case QosClass::kBronze: return "bronze";
  }
  return "?";
}

std::optional<QosClass> parse_qos_class(const std::string& text) {
  if (text.empty() || text == "none") return QosClass::kNone;
  if (text == "gold") return QosClass::kGold;
  if (text == "bronze") return QosClass::kBronze;
  return std::nullopt;
}

double qos_default_slo_slowdown(QosClass cls) {
  switch (cls) {
    case QosClass::kNone: return 0;
    case QosClass::kGold: return 0.10;
    case QosClass::kBronze: return 0.60;
  }
  return 0;
}

int qos_shed_rank(QosClass cls) {
  switch (cls) {
    case QosClass::kBronze: return 0;
    case QosClass::kNone: return 1;
    case QosClass::kGold: return 2;
  }
  return 1;
}

}  // namespace toss
