#include "platform/cluster.hpp"

#include <algorithm>
#include <chrono>

#include "core/optimizer.hpp"
#include "trace/pattern.hpp"
#include "util/thread_pool.hpp"
#include "workloads/function_model.hpp"

namespace toss {

u64 ClusterReport::total_invocations() const {
  u64 n = 0;
  for (const ClusterHostReport& h : hosts) n += h.report.total_invocations();
  return n;
}

u64 ClusterReport::total_shed() const {
  u64 n = 0;
  for (const ClusterHostReport& h : hosts) n += h.report.total_shed();
  return n;
}

const FunctionReport* ClusterReport::find(const std::string& name) const {
  for (const ClusterHostReport& h : hosts)
    if (const FunctionReport* f = h.report.find(name)) return f;
  return nullptr;
}

std::string ClusterReport::to_json() const {
  std::string out =
      "{\"schema\":" + std::to_string(MetricsSnapshot::kJsonSchemaVersion) +
      ",\"cluster\":{\"hosts\":" + std::to_string(hosts.size()) +
      ",\"epochs\":" + std::to_string(epochs) +
      ",\"migrations\":" + std::to_string(migrations.size()) +
      ",\"total_invocations\":" + std::to_string(total_invocations()) +
      ",\"total_shed\":" + std::to_string(total_shed()) +
      ",\"migration_events\":[";
  for (size_t i = 0; i < migrations.size(); ++i) {
    const MigrationEvent& m = migrations[i];
    if (i) out += ",";
    out += "{\"epoch\":" + std::to_string(m.epoch) + ",\"function\":\"" +
           m.function + "\",\"from\":\"" + m.from_host + "\",\"to\":\"" +
           m.to_host + "\",\"moved_bytes\":" + std::to_string(m.moved_bytes) +
           ",\"transfer_ns\":" +
           std::to_string(static_cast<unsigned long long>(m.transfer_ns)) +
           "}";
  }
  out += "]},\"hosts\":[";
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (i) out += ",";
    out += hosts[i].report.metrics.to_json();
  }
  out += "]}";
  return out;
}

size_t place_on_host(u64 demand_bytes, const std::vector<u64>& predicted_load,
                     u64 fast_budget_bytes) {
  // Worst-fit: among hosts where the demand fits, the one with the most
  // headroom (spreads load, leaves the biggest holes for future large
  // functions). When nothing fits, the least overloaded host takes the
  // spill and its arbiter degrades gracefully. Ties toward index 0.
  size_t best_fit = Host::npos;
  u64 best_headroom = 0;
  size_t least_bad = Host::npos;
  u64 least_load = 0;
  for (size_t i = 0; i < predicted_load.size(); ++i) {
    const u64 load = predicted_load[i];
    if (load + demand_bytes <= fast_budget_bytes) {
      const u64 headroom = fast_budget_bytes - load;
      if (best_fit == Host::npos || headroom > best_headroom) {
        best_fit = i;
        best_headroom = headroom;
      }
    }
    if (least_bad == Host::npos || load < least_load) {
      least_bad = i;
      least_load = load;
    }
  }
  return best_fit != Host::npos ? best_fit : least_bad;
}

std::vector<u64> predicted_tier_demand(
    const SystemConfig& cfg, const FunctionRegistration& registration) {
  std::vector<u64> demand(cfg.tier_count(), 0);
  // Baselines restore the whole image into DRAM on every invocation.
  if (registration.policy() != PolicyKind::kToss) {
    demand[0] = registration.spec().guest_bytes();
    return demand;
  }

  // TOSS: run the Step-III analysis offline, exactly as the function's
  // own profiling phase will — unified (max-merged) pattern over every
  // input at the registration seed, then the Step-IV placement's
  // per-rank share. The estimate therefore matches the kTiered
  // steady-state footprint the arbiter will see.
  const FunctionModel model(registration.spec());
  PageAccessCounts unified(model.guest_pages());
  Invocation representative;
  for (int input = 0; input < kNumInputs; ++input) {
    Invocation inv = model.invoke(input, registration.seed());
    unified.merge_max(
        PageAccessCounts::from_trace(inv.trace, model.guest_pages()));
    if (input == 0) representative = std::move(inv);
  }
  TieringOptions topt;
  topt.bin_count = registration.toss_options().bin_count;
  topt.slowdown_threshold = registration.toss_options().slowdown_threshold;
  const TieringDecision decision =
      analyze_pattern(cfg, unified, representative, topt);
  const std::vector<u64> pages =
      decision.placement.pages_per_rank(cfg.tier_count());
  for (size_t r = 0; r < demand.size(); ++r)
    demand[r] = bytes_for_pages(pages[r]);
  return demand;
}

u64 predicted_fast_demand(const SystemConfig& cfg,
                          const FunctionRegistration& registration) {
  return predicted_tier_demand(cfg, registration).front();
}

ClusterEngine::ClusterEngine(ClusterOptions options, SystemConfig cfg,
                             PricingPlan pricing)
    : options_(options), cfg_(std::move(cfg)) {
  options_.hosts = std::max<size_t>(1, options_.hosts);
  options_.migrate_after_pinned_epochs =
      std::max(1, options_.migrate_after_pinned_epochs);
  // Placement and migration reason about per-host fast-tier budgets, so
  // every host runs with its arbiter on.
  options_.host_options.arbiter.enabled = true;
  hosts_.reserve(options_.hosts);
  for (size_t i = 0; i < options_.hosts; ++i)
    hosts_.push_back(std::make_unique<Host>("host" + std::to_string(i), cfg_,
                                            pricing, options_.host_options));
  predicted_load_.assign(options_.hosts, 0);
  predicted_tier_load_.assign(options_.hosts,
                              std::vector<u64>(cfg_.tier_count(), 0));
}

ClusterEngine::~ClusterEngine() = default;

size_t ClusterEngine::host_of(const std::string& function) const {
  for (const Placement& p : placements_)
    if (p.function == function) return p.host;
  return npos;
}

size_t ClusterEngine::function_count() const {
  size_t n = 0;
  for (const auto& host : hosts_) n += host->function_count();
  return n;
}

Result<void> ClusterEngine::add(const FunctionRegistration& registration,
                                std::vector<Request> requests) {
  const std::string& name = registration.spec().name;
  if (host_of(name) != npos)
    return {ErrorCode::kDuplicateFunction, name + " is already registered"};
  std::vector<u64> tier_demand = predicted_tier_demand(cfg_, registration);
  const u64 demand = tier_demand.front();
  // Placement binds on rank 0 only: the fast tier is the arbiter-defended
  // scarce resource; deeper rungs are modelled as abundant, and their
  // predicted demand is tracked for capacity reporting.
  const size_t target =
      place_on_host(demand, predicted_load_, hosts_[0]->fast_budget_bytes());
  if (Result<void> added = hosts_[target]->add(registration, std::move(requests));
      !added.ok())
    return added;
  predicted_load_[target] += demand;
  for (size_t r = 0; r < tier_demand.size(); ++r)
    predicted_tier_load_[target][r] += tier_demand[r];
  placements_.push_back(Placement{name, target, demand, std::move(tier_demand)});
  return {};
}

Result<void> ClusterEngine::enqueue(const std::string& function,
                                    std::vector<Request> requests) {
  const size_t target = host_of(function);
  if (target == npos)
    return {ErrorCode::kUnknownFunction,
            function + " is not registered on any host"};
  return hosts_[target]->enqueue(function, std::move(requests));
}

void ClusterEngine::maybe_migrate() {
  if (!options_.enable_migration || hosts_.size() < 2) return;
  for (size_t s = 0; s < hosts_.size(); ++s) {
    Host& src = *hosts_[s];
    if (src.admission_closed_streak() < options_.migrate_after_pinned_epochs)
      continue;
    const size_t li = src.largest_tiered_lane();
    if (li == Host::npos) {
      // Pinned but nothing migratable (all profiling / baselines); reset
      // so the streak re-arms instead of re-checking every epoch.
      src.reset_admission_streak();
      continue;
    }
    // Destination: the most predicted headroom against the (uniform)
    // budget, excluding the source; ties toward the lowest index.
    size_t dest = npos;
    u64 best_headroom = 0;
    for (size_t d = 0; d < hosts_.size(); ++d) {
      if (d == s) continue;
      const u64 budget = hosts_[d]->fast_budget_bytes();
      const u64 load = std::min(predicted_load_[d], budget);
      const u64 headroom = budget - load;
      if (dest == npos || headroom > best_headroom) {
        dest = d;
        best_headroom = headroom;
      }
    }
    if (dest == npos || best_headroom == 0) {
      // Whole cluster saturated: migrating would only thrash.
      src.reset_admission_streak();
      continue;
    }

    std::unique_ptr<HostLane> lane = src.extract_lane(li);
    const ServerlessPlatform::ResidentBytes rb =
        lane->host->resident_bytes(lane->name);
    const u64 moved = rb.fast + rb.slow;
    // The snapshot files travel with the lane's own SnapshotStore; the
    // simulated cost of reading them out for the copy is charged to the
    // lane's clock, so a migrated function visibly stalls.
    const Nanos transfer = lane->host->store().seq_read_ns(moved);
    lane->sim_now += transfer;
    migrations_.push_back(MigrationEvent{epochs_, lane->name, src.name(),
                                         hosts_[dest]->name(), moved,
                                         transfer});
    for (Placement& p : placements_) {
      if (p.function != lane->name) continue;
      predicted_load_[s] -= std::min(predicted_load_[s], p.demand);
      predicted_load_[dest] += p.demand;
      for (size_t r = 0; r < p.tier_demand.size(); ++r) {
        predicted_tier_load_[s][r] -=
            std::min(predicted_tier_load_[s][r], p.tier_demand[r]);
        predicted_tier_load_[dest][r] += p.tier_demand[r];
      }
      p.host = dest;
      break;
    }
    // adopt_lane only fails for duplicate names, which host_of() already
    // excludes cluster-wide.
    hosts_[dest]->adopt_lane(std::move(lane)).ok();
    src.reset_admission_streak();
  }
}

Result<ClusterReport> ClusterEngine::run(int threads) {
  if (threads <= 0) threads = ThreadPool::hardware_threads();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && function_count() > 1)
    pool = std::make_unique<ThreadPool>(threads);

  // Real elapsed time is a measurement channel (ClusterReport::wall_ns),
  // not simulated state; the ledger-equality harness strips it.
  const auto t0 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  for (;;) {
    bool any_active = false;
    for (const auto& host : hosts_)
      if (!host->idle()) {
        any_active = true;
        break;
      }
    if (!any_active) break;
    for (const auto& host : hosts_) {
      if (host->idle()) continue;
      if (Result<void> stepped = host->step_epoch(pool.get()); !stepped.ok())
        return {stepped.code(), stepped.message()};
    }
    maybe_migrate();
    ++epochs_;
  }
  const auto t1 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  wall_ns_ += static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  return report(threads);
}

ClusterReport ClusterEngine::report(int threads) const {
  ClusterReport out;
  out.hosts.reserve(hosts_.size());
  for (const auto& host : hosts_)
    out.hosts.push_back(ClusterHostReport{host->name(), host->report(threads)});
  out.migrations = migrations_;
  out.epochs = epochs_;
  out.threads = threads;
  out.wall_ns = wall_ns_;
  return out;
}

}  // namespace toss
