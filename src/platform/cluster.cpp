#include "platform/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/optimizer.hpp"
#include "trace/pattern.hpp"
#include "util/thread_pool.hpp"
#include "workloads/function_model.hpp"

namespace toss {

const char* migration_outcome_name(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kCommitted: return "committed";
    case MigrationOutcome::kAborted: return "aborted";
  }
  return "?";
}

const char* host_health_action_name(HostHealthAction action) {
  switch (action) {
    case HostHealthAction::kBrownout: return "brownout";
    case HostHealthAction::kQuarantine: return "quarantine";
    case HostHealthAction::kProbe: return "probe";
    case HostHealthAction::kReadmit: return "readmit";
    case HostHealthAction::kCrash: return "crash";
  }
  return "?";
}

u64 ClusterReport::total_invocations() const {
  u64 n = 0;
  for (const ClusterHostReport& h : hosts) n += h.report.total_invocations();
  return n;
}

u64 ClusterReport::total_shed() const {
  u64 n = 0;
  for (const ClusterHostReport& h : hosts) n += h.report.total_shed();
  return n;
}

const FunctionReport* ClusterReport::find(const std::string& name) const {
  for (const ClusterHostReport& h : hosts)
    if (const FunctionReport* f = h.report.find(name)) return f;
  return nullptr;
}

std::string ClusterReport::to_json() const {
  std::string out =
      "{\"schema\":" + std::to_string(MetricsSnapshot::kJsonSchemaVersion) +
      ",\"cluster\":{\"hosts\":" + std::to_string(hosts.size()) +
      ",\"epochs\":" + std::to_string(epochs) +
      ",\"migrations\":" + std::to_string(migrations.size()) +
      ",\"total_invocations\":" + std::to_string(total_invocations()) +
      ",\"total_shed\":" + std::to_string(total_shed()) +
      ",\"hosts_lost\":" + std::to_string(hosts_lost) +
      ",\"migration_events\":[";
  for (size_t i = 0; i < migrations.size(); ++i) {
    const MigrationEvent& m = migrations[i];
    if (i) out += ",";
    out += "{\"epoch\":" + std::to_string(m.epoch) + ",\"function\":\"" +
           m.function + "\",\"from\":\"" + m.from_host + "\",\"to\":\"" +
           m.to_host + "\",\"moved_bytes\":" + std::to_string(m.moved_bytes) +
           ",\"transfer_ns\":" +
           std::to_string(static_cast<unsigned long long>(m.transfer_ns)) +
           ",\"outcome\":\"" + migration_outcome_name(m.outcome) +
           "\",\"attempts\":" + std::to_string(m.attempts) +
           ",\"retry_backoff_ns\":" +
           std::to_string(static_cast<unsigned long long>(m.retry_backoff_ns)) +
           "}";
  }
  out += "],\"failover_events\":[";
  for (size_t i = 0; i < failovers.size(); ++i) {
    const FailoverEvent& f = failovers[i];
    if (i) out += ",";
    out += "{\"epoch\":" + std::to_string(f.epoch) + ",\"function\":\"" +
           f.function + "\",\"from\":\"" + f.from_host + "\",\"to\":\"" +
           f.to_host + "\",\"moved_bytes\":" + std::to_string(f.moved_bytes) +
           ",\"restore_ns\":" +
           std::to_string(static_cast<unsigned long long>(f.restore_ns)) +
           ",\"requeued\":" + std::to_string(f.requeued) +
           ",\"shed\":" + std::to_string(f.shed) + "}";
  }
  out += "],\"health_events\":[";
  for (size_t i = 0; i < health_events.size(); ++i) {
    const HostHealthEvent& h = health_events[i];
    if (i) out += ",";
    out += "{\"epoch\":" + std::to_string(h.epoch) + ",\"host\":\"" + h.host +
           "\",\"action\":\"" + host_health_action_name(h.action) + "\"}";
  }
  out += "]";
  // Schema-6 cluster-wide per-class SLO rollup: the hosts' per-class
  // ledgers summed in QosClass enum order. Absent for unclassed fleets,
  // so pre-QoS reports only change by the schema number.
  std::string qos_json;
  for (QosClass cls : {QosClass::kGold, QosClass::kBronze}) {
    QosAttainment sum;
    bool any = false;
    for (const ClusterHostReport& h : hosts)
      for (const QosClassRollup& r : h.report.metrics.qos)
        if (r.cls == cls) {
          any = true;
          sum.offered += r.ledger.offered;
          sum.completed += r.ledger.completed;
          sum.slo_met += r.ledger.slo_met;
        }
    if (!any) continue;
    if (!qos_json.empty()) qos_json += ",";
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"class\":\"%s\",\"offered\":%llu,\"completed\":%llu,"
                  "\"slo_met\":%llu,\"attainment\":%.6f}",
                  qos_class_name(cls),
                  static_cast<unsigned long long>(sum.offered),
                  static_cast<unsigned long long>(sum.completed),
                  static_cast<unsigned long long>(sum.slo_met),
                  sum.attainment());
    qos_json += buf;
  }
  if (!qos_json.empty()) out += ",\"qos\":[" + qos_json + "]";
  out += "},\"hosts\":[";
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (i) out += ",";
    out += hosts[i].report.metrics.to_json();
  }
  out += "]}";
  return out;
}

size_t place_on_host(u64 demand_bytes, const std::vector<u64>& predicted_load,
                     u64 fast_budget_bytes) {
  // Worst-fit: among hosts where the demand fits, the one with the most
  // headroom (spreads load, leaves the biggest holes for future large
  // functions). When nothing fits, the least overloaded host takes the
  // spill and its arbiter degrades gracefully. Ties toward index 0.
  size_t best_fit = Host::npos;
  u64 best_headroom = 0;
  size_t least_bad = Host::npos;
  u64 least_load = 0;
  for (size_t i = 0; i < predicted_load.size(); ++i) {
    const u64 load = predicted_load[i];
    if (load + demand_bytes <= fast_budget_bytes) {
      const u64 headroom = fast_budget_bytes - load;
      if (best_fit == Host::npos || headroom > best_headroom) {
        best_fit = i;
        best_headroom = headroom;
      }
    }
    if (least_bad == Host::npos || load < least_load) {
      least_bad = i;
      least_load = load;
    }
  }
  return best_fit != Host::npos ? best_fit : least_bad;
}

std::vector<u64> predicted_tier_demand(
    const SystemConfig& cfg, const FunctionRegistration& registration) {
  std::vector<u64> demand(cfg.tier_count(), 0);
  // Baselines restore the whole image into DRAM on every invocation.
  if (registration.policy() != PolicyKind::kToss) {
    demand[0] = registration.spec().guest_bytes();
    return demand;
  }

  // TOSS: run the Step-III analysis offline, exactly as the function's
  // own profiling phase will — unified (max-merged) pattern over every
  // input at the registration seed, then the Step-IV placement's
  // per-rank share. The estimate therefore matches the kTiered
  // steady-state footprint the arbiter will see.
  const FunctionModel model(registration.spec());
  PageAccessCounts unified(model.guest_pages());
  Invocation representative;
  for (int input = 0; input < kNumInputs; ++input) {
    Invocation inv = model.invoke(input, registration.seed());
    unified.merge_max(
        PageAccessCounts::from_trace(inv.trace, model.guest_pages()));
    if (input == 0) representative = std::move(inv);
  }
  TieringOptions topt;
  topt.bin_count = registration.toss_options().bin_count;
  topt.slowdown_threshold = registration.toss_options().slowdown_threshold;
  topt.slo_slowdown = registration.toss_options().slo_slowdown;
  const TieringDecision decision =
      analyze_pattern(cfg, unified, representative, topt);
  const std::vector<u64> pages =
      decision.placement.pages_per_rank(cfg.tier_count());
  for (size_t r = 0; r < demand.size(); ++r)
    demand[r] = bytes_for_pages(pages[r]);
  return demand;
}

u64 predicted_fast_demand(const SystemConfig& cfg,
                          const FunctionRegistration& registration) {
  return predicted_tier_demand(cfg, registration).front();
}

ClusterEngine::ClusterEngine(ClusterOptions options, SystemConfig cfg,
                             PricingPlan pricing)
    : options_(options), cfg_(std::move(cfg)) {
  options_.hosts = std::max<size_t>(1, options_.hosts);
  options_.migrate_after_pinned_epochs =
      std::max(1, options_.migrate_after_pinned_epochs);
  // Placement and migration reason about per-host fast-tier budgets, so
  // every host runs with its arbiter on.
  options_.host_options.arbiter.enabled = true;
  hosts_.reserve(options_.hosts);
  health_.reserve(options_.hosts);
  for (size_t i = 0; i < options_.hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>("host" + std::to_string(i), cfg_,
                                            pricing, options_.host_options));
    // Per-host injector keyed by host name: crashes, brownouts and
    // transfer aborts replay identically for a fixed plan seed, and one
    // host's draws never shift another's schedule.
    FaultPlan host_plan = options_.cluster_fault_plan;
    host_plan.seed =
        mix_seed(options_.cluster_fault_plan.seed, hosts_.back()->name());
    HostHealth h;
    h.injector = std::make_unique<FaultInjector>(std::move(host_plan), 0);
    h.breaker = CircuitBreaker(options_.health_breaker);
    health_.push_back(std::move(h));
  }
  migration_rng_ =
      Rng(mix_seed(options_.cluster_fault_plan.seed, "migration-backoff"));
  predicted_load_.assign(options_.hosts, 0);
  predicted_tier_load_.assign(options_.hosts,
                              std::vector<u64>(cfg_.tier_count(), 0));
}

ClusterEngine::~ClusterEngine() = default;

size_t ClusterEngine::host_of(const std::string& function) const {
  for (const Placement& p : placements_)
    if (p.function == function) return p.host;
  return npos;
}

size_t ClusterEngine::function_count() const {
  size_t n = 0;
  for (const auto& host : hosts_) n += host->function_count();
  return n;
}

Result<void> ClusterEngine::add(const FunctionRegistration& registration,
                                std::vector<Request> requests) {
  const std::string& name = registration.spec().name;
  if (host_of(name) != npos)
    return {ErrorCode::kDuplicateFunction, name + " is already registered"};
  std::vector<u64> tier_demand = predicted_tier_demand(cfg_, registration);
  const u64 demand = tier_demand.front();
  // Placement binds on rank 0 only: the fast tier is the arbiter-defended
  // scarce resource; deeper rungs are modelled as abundant, and their
  // predicted demand is tracked for capacity reporting. Dead and
  // quarantined hosts are not eligible targets.
  const size_t target = pick_host(demand, npos);
  if (target == npos)
    return {ErrorCode::kHostLost,
            name + ": no live host is eligible for placement"};
  if (Result<void> added = hosts_[target]->add(registration, std::move(requests));
      !added.ok())
    return added;
  predicted_load_[target] += demand;
  for (size_t r = 0; r < tier_demand.size(); ++r)
    predicted_tier_load_[target][r] += tier_demand[r];
  placements_.push_back(Placement{name, target, demand, std::move(tier_demand)});
  return {};
}

Result<void> ClusterEngine::enqueue(const std::string& function,
                                    std::vector<Request> requests) {
  const size_t target = host_of(function);
  if (target == npos)
    return {ErrorCode::kUnknownFunction,
            function + " is not registered on any host"};
  // A placement still pointing at a dead host means the lane could not be
  // failed over (no survivors / failover disabled): the loss is typed, not
  // silently queued into the void.
  if (health_[target].dead)
    return {ErrorCode::kHostLost,
            function + " was lost with host " + hosts_[target]->name()};
  return hosts_[target]->enqueue(function, std::move(requests));
}

bool ClusterEngine::host_quarantined(size_t index) const {
  return health_[index].breaker.state() != CircuitBreaker::State::kClosed;
}

size_t ClusterEngine::pick_host(u64 demand_bytes, size_t exclude) const {
  // Two passes: healthy hosts first, alive-but-quarantined as a last
  // resort (landing on a browned-out host beats shedding a whole lane).
  // The candidate list is compacted so a dead host can never win the
  // worst-fit by sentinel accident.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<size_t> idx;
    std::vector<u64> loads;
    for (size_t i = 0; i < hosts_.size(); ++i) {
      if (i == exclude || health_[i].dead) continue;
      if ((pass == 0) == host_quarantined(i)) continue;
      idx.push_back(i);
      loads.push_back(predicted_load_[i]);
    }
    if (idx.empty()) continue;
    // Compaction preserves index order, so place_on_host's lowest-index
    // tie-break survives the mapping back.
    return idx[place_on_host(demand_bytes, loads,
                             hosts_[idx[0]]->fast_budget_bytes())];
  }
  return npos;
}

void ClusterEngine::push_health_event(const std::string& host,
                                      HostHealthAction action) {
  health_events_.push_back(HostHealthEvent{epochs_, host, action});
}

void ClusterEngine::maybe_migrate() {
  if (!options_.enable_migration || hosts_.size() < 2) return;
  for (size_t s = 0; s < hosts_.size(); ++s) {
    if (health_[s].dead) continue;
    Host& src = *hosts_[s];
    if (src.admission_closed_streak() < options_.migrate_after_pinned_epochs)
      continue;
    const size_t li = src.largest_tiered_lane();
    if (li == Host::npos) {
      // Pinned but nothing migratable (all profiling / baselines); reset
      // so the streak re-arms instead of re-checking every epoch.
      src.reset_admission_streak();
      continue;
    }
    // Destination: the most predicted headroom against the (uniform)
    // budget, excluding the source and any dead or quarantined host; ties
    // toward the lowest index.
    size_t dest = npos;
    u64 best_headroom = 0;
    for (size_t d = 0; d < hosts_.size(); ++d) {
      if (d == s || health_[d].dead || host_quarantined(d)) continue;
      const u64 budget = hosts_[d]->fast_budget_bytes();
      const u64 load = std::min(predicted_load_[d], budget);
      const u64 headroom = budget - load;
      if (dest == npos || headroom > best_headroom) {
        dest = d;
        best_headroom = headroom;
      }
    }
    if (dest == npos || best_headroom == 0) {
      // Whole cluster saturated (or nothing healthy to move to):
      // migrating would only thrash.
      src.reset_admission_streak();
      continue;
    }

    // Transactional transfer: the source lane stays authoritative — still
    // admitting and serving — until a copy attempt survives to the commit
    // point, so an aborted attempt rolls back by simply not moving
    // anything. kMigrationAbort fires per attempt from the source host's
    // injector; attempts are bounded by the RetryPolicy, with the backoff
    // accumulated in simulated time.
    const HostLane* view = src.lane_at(li);
    const ServerlessPlatform::ResidentBytes rb =
        view->host->resident_bytes(view->name);
    const u64 moved = rb.fast + rb.slow;
    FaultInjector& inj = *health_[s].injector;
    const u32 max_attempts =
        static_cast<u32>(std::max(1, options_.migration_retry.max_attempts));
    u32 attempts = 0;
    Nanos backoff = 0;
    bool committed = false;
    while (attempts < max_attempts) {
      ++attempts;
      if (!inj.should_fire(FaultSite::kMigrationAbort)) {
        committed = true;
        break;
      }
      if (attempts < max_attempts)
        backoff += options_.migration_retry.backoff_ns(
            static_cast<int>(attempts) - 1, migration_rng_);
    }
    if (!committed) {
      // Abandoned: the source keeps the lane (no split ownership, no lane
      // stall — the copy runs off the serving path, so rollback is free).
      // The typed ledger entry is the cluster-level analogue of the
      // recovery ladder exhausting its retries.
      migrations_.push_back(MigrationEvent{
          epochs_, view->name, src.name(), hosts_[dest]->name(), moved, 0,
          MigrationOutcome::kAborted, attempts, backoff});
      src.reset_admission_streak();
      continue;
    }

    std::unique_ptr<HostLane> lane = src.extract_lane(li);
    // The snapshot files travel with the lane's own SnapshotStore; the
    // simulated cost of reading them out for the copy — plus any backoff
    // burned on aborted attempts — is charged to the lane's clock, so a
    // migrated function visibly stalls.
    const Nanos transfer = lane->host->store().seq_read_ns(moved);
    lane->sim_now += transfer + backoff;
    migrations_.push_back(MigrationEvent{
        epochs_, lane->name, src.name(), hosts_[dest]->name(), moved,
        transfer, MigrationOutcome::kCommitted, attempts, backoff});
    for (Placement& p : placements_) {
      if (p.function != lane->name) continue;
      predicted_load_[s] -= std::min(predicted_load_[s], p.demand);
      predicted_load_[dest] += p.demand;
      for (size_t r = 0; r < p.tier_demand.size(); ++r) {
        predicted_tier_load_[s][r] -=
            std::min(predicted_tier_load_[s][r], p.tier_demand[r]);
        predicted_tier_load_[dest][r] += p.tier_demand[r];
      }
      p.host = dest;
      break;
    }
    // adopt_lane only fails for duplicate names, which host_of() already
    // excludes cluster-wide.
    hosts_[dest]->adopt_lane(std::move(lane)).ok();
    src.reset_admission_streak();
  }
}

void ClusterEngine::inject_failure_domains() {
  // Without -DTOSS_FAULTS=ON no site can ever fire and no breaker can ever
  // observe a degraded epoch: skipping the whole barrier keeps production
  // cluster ledgers bit-identical to the pre-failure-domain behaviour.
  if constexpr (!kFaultInjectionEnabled) return;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    HostHealth& h = health_[i];
    if (h.dead) continue;
    if (h.injector->should_fire(FaultSite::kHostCrash)) {
      fail_over(i);
      continue;
    }
    bool browned = false;
    if (h.injector->should_fire(FaultSite::kHostBrownout)) {
      browned = true;
      ++h.brownouts;
      hosts_[i]->apply_brownout(
          h.injector->stall_ns(FaultSite::kHostBrownout));
      push_health_event(hosts_[i]->name(), HostHealthAction::kBrownout);
    }
    // One breaker observation per epoch (never wall-clock): consecutive
    // browned-out epochs open it, a clean cooldown closes it again.
    const CircuitBreaker::State before = h.breaker.state();
    h.breaker.observe(browned);
    const CircuitBreaker::State after = h.breaker.state();
    if (after == before) continue;
    switch (after) {
      case CircuitBreaker::State::kOpen:
        ++h.quarantines;
        // The fleet arbiter treats a quarantined host's fast-tier budget
        // as withdrawn: warmth flushes, lanes demote, admission closes.
        hosts_[i]->set_budget_withdrawn(true);
        push_health_event(hosts_[i]->name(), HostHealthAction::kQuarantine);
        break;
      case CircuitBreaker::State::kHalfOpen:
        push_health_event(hosts_[i]->name(), HostHealthAction::kProbe);
        break;
      case CircuitBreaker::State::kClosed:
        ++h.readmissions;
        hosts_[i]->set_budget_withdrawn(false);
        push_health_event(hosts_[i]->name(), HostHealthAction::kReadmit);
        break;
    }
  }
}

void ClusterEngine::fail_over(size_t dead_host) {
  Host& dead = *hosts_[dead_host];
  HostHealth& h = health_[dead_host];
  h.dead = true;
  ++hosts_lost_;
  push_health_event(dead.name(), HostHealthAction::kCrash);
  // Re-place the lanes gold-first: gold lanes claim survivor headroom (and
  // the destination's admission-bounded queue slots) before bronze, so any
  // failover shedding lands on bronze. Unclassed fleets sort equal, so the
  // stable sort preserves the historical slot order bit-identically.
  std::vector<size_t> order;
  order.reserve(dead.lane_count());
  for (size_t li = 0; li < dead.lane_count(); ++li)
    if (dead.lane_at(li) != nullptr) order.push_back(li);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return qos_shed_rank(dead.lane_at(a)->qos.cls) >
           qos_shed_rank(dead.lane_at(b)->qos.cls);
  });
  for (size_t li : order) {
    const HostLane* view = dead.lane_at(li);
    if (view == nullptr) continue;  // unreachable; defensive
    Placement* placement = nullptr;
    for (Placement& p : placements_)
      if (p.function == view->name) {
        placement = &p;
        break;
      }
    const std::string fn = view->name;
    const u64 demand = placement != nullptr ? placement->demand : 0;
    const size_t dst =
        options_.enable_failover ? pick_host(demand, dead_host) : npos;
    if (dst == npos) {
      // No survivor (or failover disabled): every pending request on this
      // lane resolves as kHostLost via abandon_pending() below, and the
      // placement stays on the dead host so enqueue() reports the loss
      // with a typed error instead of queueing into the void.
      const u64 pending = view->queue.size() +
                          (view->requests.size() - view->arrived);
      failovers_.push_back(FailoverEvent{epochs_, view->name, dead.name(),
                                         "", 0, 0, 0, pending});
      continue;
    }
    std::unique_ptr<HostLane> lane = dead.extract_lane(li);
    // Tiered restore from surviving snapshot state: the artifact store is
    // durable and travels with the lane, so re-materializing on the
    // destination costs one sequential read of the resident bytes — the
    // recovery ladder's happy rung. A corrupted survivor is caught by the
    // same per-invocation ladder on first use (verify -> retry -> degrade
    // -> regenerate), so failover never needs a separate repair path.
    const ServerlessPlatform::ResidentBytes rb =
        lane->host->resident_bytes(lane->name);
    const u64 moved = rb.fast + rb.slow;
    const Nanos restore = lane->host->store().seq_read_ns(moved);
    lane->sim_now += restore;
    u64 requeued = 0;
    u64 shed = 0;
    // Only fails for duplicate names, excluded cluster-wide by host_of().
    hosts_[dst]->adopt_failover_lane(std::move(lane), &requeued, &shed).ok();
    if (placement != nullptr) {
      predicted_load_[dead_host] -=
          std::min(predicted_load_[dead_host], placement->demand);
      predicted_load_[dst] += placement->demand;
      for (size_t r = 0; r < placement->tier_demand.size(); ++r) {
        predicted_tier_load_[dead_host][r] -=
            std::min(predicted_tier_load_[dead_host][r],
                     placement->tier_demand[r]);
        predicted_tier_load_[dst][r] += placement->tier_demand[r];
      }
      placement->host = dst;
    }
    ++h.lanes_failed_over;
    failovers_.push_back(FailoverEvent{epochs_, fn, dead.name(),
                                       hosts_[dst]->name(), moved, restore,
                                       requeued, shed});
  }
  // Lanes that found no survivor shed everything still pending, so each
  // request resolves to exactly one typed outcome and idle() holds.
  dead.abandon_pending();
}

Result<ClusterReport> ClusterEngine::run(int threads) {
  if (threads <= 0) threads = ThreadPool::hardware_threads();
  std::unique_ptr<LaneExecutor> executor;
  if (threads > 1 && function_count() > 1)
    executor = std::make_unique<LaneExecutor>(threads);

  // Real elapsed time is a measurement channel (ClusterReport::wall_ns),
  // not simulated state; the ledger-equality harness strips it.
  const auto t0 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  for (;;) {
    bool any_active = false;
    for (size_t i = 0; i < hosts_.size(); ++i)
      if (!health_[i].dead && !hosts_[i]->idle()) {
        any_active = true;
        break;
      }
    if (!any_active) break;
    // Failure-domain barrier first: crashes and brownouts land at the
    // epoch boundary, before any host steps, in host index order.
    inject_failure_domains();
    if (executor != nullptr && options_.parallel_hosts) {
      // Host-parallel epoch: plan every host serially (host-index order),
      // flatten all hosts' planned lanes into ONE executor round — hosts
      // share no mutable state mid-epoch, and each lane chunk touches only
      // lane-local state — then run each host's serial barrier in
      // host-index order. No nested parallelism: the hosts' own executors
      // are bypassed, the cluster drives their phases directly.
      struct PlannedHost {
        size_t host = 0;
        EpochPlan plan;
        size_t first_task = 0;  ///< offset into the flattened index space
      };
      std::vector<PlannedHost> planned;
      planned.reserve(hosts_.size());
      size_t total_tasks = 0;
      for (size_t i = 0; i < hosts_.size(); ++i) {
        if (health_[i].dead || hosts_[i]->idle()) continue;
        Result<EpochPlan> plan = hosts_[i]->plan_epoch();
        if (!plan.ok()) return {plan.code(), plan.message()};
        if (plan->empty()) continue;
        const size_t first = total_tasks;
        total_tasks += plan->active.size();
        planned.push_back(PlannedHost{i, std::move(*plan), first});
      }
      executor->run_epoch(total_tasks, [&](size_t task) {
        // Map the flat index back to (host, lane): plans are offset-sorted,
        // so the owner is the last plan starting at or before `task`.
        size_t lo = 0;
        size_t hi = planned.size();
        while (hi - lo > 1) {
          const size_t mid = lo + (hi - lo) / 2;
          if (planned[mid].first_task <= task) lo = mid;
          else hi = mid;
        }
        const PlannedHost& ph = planned[lo];
        hosts_[ph.host]->run_planned_lane(ph.plan, task - ph.first_task);
      });
      for (const PlannedHost& ph : planned) {
        if (Result<void> finished = hosts_[ph.host]->finish_epoch();
            !finished.ok())
          return {finished.code(), finished.message()};
      }
    } else {
      for (size_t i = 0; i < hosts_.size(); ++i) {
        if (health_[i].dead || hosts_[i]->idle()) continue;
        if (Result<void> stepped = hosts_[i]->step_epoch(executor.get());
            !stepped.ok())
          return {stepped.code(), stepped.message()};
      }
    }
    maybe_migrate();
    ++epochs_;
  }
  const auto t1 = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  wall_ns_ += static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  return report(threads);
}

ClusterReport ClusterEngine::report(int threads) const {
  ClusterReport out;
  out.hosts.reserve(hosts_.size());
  for (size_t i = 0; i < hosts_.size(); ++i) {
    ClusterHostReport hr{hosts_[i]->name(), hosts_[i]->report(threads)};
    // Schema-5 health rollup: the cluster is the only layer that knows a
    // host's failure-domain history, so it stamps the snapshot here.
    HostHealthRollup& health = hr.report.metrics.health;
    health.present = true;
    health.lost = health_[i].dead;
    health.quarantined = !health_[i].dead && host_quarantined(i);
    health.brownouts = health_[i].brownouts;
    health.quarantines = health_[i].quarantines;
    health.readmissions = health_[i].readmissions;
    health.lanes_failed_over = health_[i].lanes_failed_over;
    out.hosts.push_back(std::move(hr));
  }
  out.migrations = migrations_;
  out.failovers = failovers_;
  out.health_events = health_events_;
  out.hosts_lost = hosts_lost_;
  out.epochs = epochs_;
  out.threads = threads;
  out.wall_ns = wall_ns_;
  return out;
}

}  // namespace toss
