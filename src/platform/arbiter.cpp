#include "platform/arbiter.hpp"

#include <algorithm>

namespace toss {

const char* arbiter_action_name(ArbiterAction action) {
  switch (action) {
    case ArbiterAction::kEvictWarm: return "evict_warm";
    case ArbiterAction::kDemote: return "demote";
    case ArbiterAction::kPromote: return "promote";
    case ArbiterAction::kCloseAdmission: return "close_admission";
    case ArbiterAction::kOpenAdmission: return "open_admission";
  }
  return "?";
}

FastTierArbiter::FastTierArbiter(ArbiterOptions options, u64 fast_budget_bytes,
                                 size_t tier_count)
    : options_(options),
      budget_(fast_budget_bytes),
      max_rung_(static_cast<int>(std::max<size_t>(tier_count, 1))),
      warm_(KeepAliveConfig{fast_budget_bytes, options.slow_budget_bytes}) {
  options_.demote_step = std::clamp(options_.demote_step, 0.0, 1.0);
}

RetierBound FastTierArbiter::bound_for_rung(
    int rung, u64 unconstrained_fast_bytes) const {
  RetierBound b;
  if (rung >= 2) {
    // Tier floor, one ladder rank per rung beyond the cap rung. On a
    // two-tier ladder rung 2 floors at rank 1 — the historical fully-slow
    // placement.
    b.min_tier_rank = static_cast<size_t>(rung - 1);
  } else if (rung == 1) {
    b.max_fast_bytes = static_cast<u64>(
        options_.demote_step * static_cast<double>(unconstrained_fast_bytes));
  }
  return b;
}

void FastTierArbiter::ensure_lane(size_t lane) {
  if (lane >= rung_.size()) {
    rung_.resize(lane + 1, 0);
    bytes_at_rung_.resize(lane + 1,
                          std::vector<u64>(static_cast<size_t>(max_rung_) + 1, 0));
    descent_.resize(lane + 1);
  }
}

void FastTierArbiter::push_event(u64 epoch, std::string function,
                                 ArbiterAction action, int rung) {
  events_.push_back(
      ArbiterEvent{epoch, std::move(function), action, rung, resident_});
}

void FastTierArbiter::tick(u64 epoch, const std::vector<LaneDemand>& lanes,
                           const ApplyRung& apply) {
  // Working copy of each lane's fast footprint so ladder moves update the
  // accounting mid-tick.
  std::vector<u64> fast(lanes.size(), 0);
  for (size_t k = 0; k < lanes.size(); ++k) {
    const LaneDemand& d = lanes[k];
    ensure_lane(d.lane);
    // Any classed lane latches QoS mode for the arbiter's lifetime:
    // curve-based continuous demotion, class-ordered victims, per-class
    // admission gates.
    if (d.qos != QosClass::kNone) qos_mode_ = true;
    fast[k] = d.fast_bytes;
    // A lane that went back to work while its VM sat warm re-absorbs it:
    // count the reuse as a keep-alive hit and release the pool bytes (the
    // active-lane accounting below carries the footprint from here on).
    if (d.active && warm_.contains(*d.name)) {
      warm_.lookup(*d.name);
      warm_.evict(*d.name);
    }
    // A lane that drained its stream keeps its VM warm (both tiers) until
    // the budget needs the DRAM back — Section VI-A's keep-alive story.
    if (d.just_finished && options_.keepalive)
      warm_.insert(*d.name, d.fast_bytes, d.slow_bytes, d.cold_cost_ns,
                   options_.prewarm_hints ? d.predicted_reuse_gap_ns : -1);
  }

  const auto recompute = [&] {
    u64 r = warm_.dram_in_use();
    for (size_t k = 0; k < lanes.size(); ++k)
      if (lanes[k].active) r += fast[k];
    resident_ = r;
    peak_resident_ = std::max(peak_resident_, resident_);
  };
  recompute();

  // A quarantined host's budget is withdrawn: the ladder walks against
  // zero, so everything demotes/flushes and admission stays closed below.
  const u64 budget = budget_withdrawn_ ? 0 : budget_;

  // Ladder down. `stuck` marks lanes whose re-tier failed this tick (e.g.
  // persistence faults) so the loop moves on instead of spinning. `used`
  // counts curve steps consumed this tick (QoS mode): the demand's curve
  // was snapshotted before any re-tier, so mid-tick demotions keep walking
  // the same absolute-prefix candidates.
  std::vector<bool> stuck(lanes.size(), false);
  std::vector<size_t> used(lanes.size(), 0);
  while (resident_ > budget) {
    // Rung A: shed warmth first — it only costs a future cold start.
    if (std::optional<std::string> victim = warm_.evict_lowest()) {
      ++keepalive_evictions_;
      recompute();
      push_event(epoch, *victim, ArbiterAction::kEvictWarm, 0);
      continue;
    }
    // Rung B: pick the demotion victim. Classic mode: largest-footprint
    // tiered lane, one fixed rung down. QoS mode: class outranks footprint
    // (bronze lanes walk their curve to exhaustion before an unclassed
    // lane moves, gold last), and the step is the lane's next Eq-1 curve
    // point. Ties break toward the lowest lane index — deterministic.
    size_t best = lanes.size();
    for (size_t k = 0; k < lanes.size(); ++k) {
      const LaneDemand& d = lanes[k];
      if (!d.active || !d.demotable || stuck[k]) continue;
      if (qos_mode_ ? used[k] >= d.curve.size() : rung_[d.lane] >= max_rung_)
        continue;
      if (best == lanes.size()) {
        best = k;
        continue;
      }
      if (qos_mode_) {
        const int rk = qos_shed_rank(d.qos);
        const int rb = qos_shed_rank(lanes[best].qos);
        if (rk != rb) {
          if (rk < rb) best = k;
          continue;
        }
      }
      if (fast[k] > fast[best]) best = k;
    }
    if (best == lanes.size()) break;  // ladder exhausted
    const LaneDemand& d = lanes[best];
    const int target = rung_[d.lane] + 1;
    if (rung_[d.lane] == 0) bytes_at_rung_[d.lane][0] = fast[best];
    RetierBound bound;
    if (qos_mode_) {
      bound.min_descent_prefix = d.curve[used[best]].prefix;
    } else {
      bound = bound_for_rung(target, bytes_at_rung_[d.lane][0]);
    }
    const std::optional<u64> applied = apply(d.lane, target, bound);
    if (!applied) {
      stuck[best] = true;
      continue;
    }
    fast[best] = *applied;
    rung_[d.lane] = target;
    if (qos_mode_) {
      descent_[d.lane].push_back(CurveStep{d.curve[used[best]].prefix, *applied});
      ++used[best];
    } else {
      bytes_at_rung_[d.lane][static_cast<size_t>(target)] = *applied;
    }
    demote_stack_.push_back(d.lane);
    ++demotions_;
    recompute();
    push_event(epoch, *d.name, ArbiterAction::kDemote, target);
  }

  // Rung C: when even a fully demoted fleet cannot fit, stop admitting.
  // A withdrawn budget closes admission unconditionally, even on an empty
  // fleet — the host is quarantined, not merely full. QoS mode closes one
  // class per tick, bronze first, so gold admission survives transient
  // pressure spikes; a withdrawn budget still slams both gates at once.
  if (resident_ > budget || budget_withdrawn_) {
    if (!qos_mode_) {
      if (!admission_closed_) {
        admission_closed_ = true;
        ++admission_closures_;
        push_event(epoch, "", ArbiterAction::kCloseAdmission, 0);
      }
      return;
    }
    bool closed_this_tick = false;
    if (!closed_bronze_) {
      closed_bronze_ = true;
      admission_closed_ = true;
      ++admission_closures_;
      push_event(epoch, "bronze", ArbiterAction::kCloseAdmission, 0);
      closed_this_tick = true;
    }
    if (!closed_gold_ && (budget_withdrawn_ || !closed_this_tick)) {
      closed_gold_ = true;
      admission_closed_ = true;
      ++admission_closures_;
      push_event(epoch, "gold", ArbiterAction::kCloseAdmission, 0);
    }
    return;
  }

  // Recovery, in reverse ladder order: re-open admission first. QoS mode
  // reopens one class per tick, gold first (gold-protecting hysteresis:
  // gold traffic readmits before bronze may add pressure back).
  if (!qos_mode_) {
    if (admission_closed_) {
      admission_closed_ = false;
      push_event(epoch, "", ArbiterAction::kOpenAdmission, 0);
    }
  } else if (closed_gold_) {
    closed_gold_ = false;
    admission_closed_ = closed_bronze_;
    push_event(epoch, "gold", ArbiterAction::kOpenAdmission, 0);
  } else if (closed_bronze_) {
    closed_bronze_ = false;
    admission_closed_ = false;
    push_event(epoch, "bronze", ArbiterAction::kOpenAdmission, 0);
  }

  // ...then promote the most recently demoted lane one rung — at most one
  // per tick, and only when its recorded footprint at the target rung still
  // fits (hysteresis against demote/promote flapping).
  while (!demote_stack_.empty()) {
    const size_t lane = demote_stack_.back();
    size_t k = lanes.size();
    for (size_t j = 0; j < lanes.size(); ++j)
      if (lanes[j].lane == lane) {
        k = j;
        break;
      }
    if (k == lanes.size() || !lanes[k].active || !lanes[k].demotable ||
        rung_[lane] == 0) {
      demote_stack_.pop_back();  // stale: lane finished or left kTiered
      descent_[lane].clear();
      continue;
    }
    const int target = rung_[lane] - 1;
    // QoS mode replays the recorded descent LIFO: the fit-check reads the
    // resident bytes observed when the lane landed at the target depth,
    // and the bound restores that depth's curve prefix (depth 0 =
    // unconstrained). Classic mode keeps the fixed-rung bookkeeping. A
    // depth/stack mismatch means the rungs predate QoS mode; fall back to
    // the classic path, which is exactly how they were built.
    const bool curve_walk =
        qos_mode_ && descent_[lane].size() == static_cast<size_t>(rung_[lane]);
    const u64 target_bytes =
        curve_walk ? (target == 0
                          ? bytes_at_rung_[lane][0]
                          : descent_[lane][static_cast<size_t>(target) - 1]
                                .fast_bytes)
                   : bytes_at_rung_[lane][static_cast<size_t>(target)];
    const u64 predicted = resident_ - fast[k] + target_bytes;
    if (predicted > budget) break;  // would re-demote next tick; hold
    RetierBound bound;
    if (curve_walk) {
      if (target > 0)
        bound.min_descent_prefix =
            descent_[lane][static_cast<size_t>(target) - 1].prefix;
    } else {
      bound = bound_for_rung(target, bytes_at_rung_[lane][0]);
    }
    const std::optional<u64> applied = apply(lane, target, bound);
    if (!applied) break;  // re-tier failed; retry next tick
    fast[k] = *applied;
    rung_[lane] = target;
    if (curve_walk) descent_[lane].pop_back();
    demote_stack_.pop_back();
    ++promotions_;
    recompute();
    push_event(epoch, *lanes[k].name, ArbiterAction::kPromote, target);
    break;
  }
}

ArbiterReport FastTierArbiter::report() const {
  ArbiterReport r;
  r.events = events_;
  r.demotions = demotions_;
  r.promotions = promotions_;
  r.keepalive_evictions = keepalive_evictions_;
  r.admission_closures = admission_closures_;
  r.peak_resident_fast_bytes = peak_resident_;
  r.final_resident_fast_bytes = resident_;
  r.admission_closed = admission_closed_;
  r.keepalive = warm_.stats();
  r.warm_count = warm_.warm_count();
  return r;
}

}  // namespace toss
