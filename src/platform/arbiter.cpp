#include "platform/arbiter.hpp"

#include <algorithm>

namespace toss {

const char* arbiter_action_name(ArbiterAction action) {
  switch (action) {
    case ArbiterAction::kEvictWarm: return "evict_warm";
    case ArbiterAction::kDemote: return "demote";
    case ArbiterAction::kPromote: return "promote";
    case ArbiterAction::kCloseAdmission: return "close_admission";
    case ArbiterAction::kOpenAdmission: return "open_admission";
  }
  return "?";
}

FastTierArbiter::FastTierArbiter(ArbiterOptions options, u64 fast_budget_bytes,
                                 size_t tier_count)
    : options_(options),
      budget_(fast_budget_bytes),
      max_rung_(static_cast<int>(std::max<size_t>(tier_count, 1))),
      warm_(KeepAliveConfig{fast_budget_bytes, options.slow_budget_bytes}) {
  options_.demote_step = std::clamp(options_.demote_step, 0.0, 1.0);
}

RetierBound FastTierArbiter::bound_for_rung(
    int rung, u64 unconstrained_fast_bytes) const {
  RetierBound b;
  if (rung >= 2) {
    // Tier floor, one ladder rank per rung beyond the cap rung. On a
    // two-tier ladder rung 2 floors at rank 1 — the historical fully-slow
    // placement.
    b.min_tier_rank = static_cast<size_t>(rung - 1);
  } else if (rung == 1) {
    b.max_fast_bytes = static_cast<u64>(
        options_.demote_step * static_cast<double>(unconstrained_fast_bytes));
  }
  return b;
}

void FastTierArbiter::ensure_lane(size_t lane) {
  if (lane >= rung_.size()) {
    rung_.resize(lane + 1, 0);
    bytes_at_rung_.resize(lane + 1,
                          std::vector<u64>(static_cast<size_t>(max_rung_) + 1, 0));
  }
}

void FastTierArbiter::push_event(u64 epoch, std::string function,
                                 ArbiterAction action, int rung) {
  events_.push_back(
      ArbiterEvent{epoch, std::move(function), action, rung, resident_});
}

void FastTierArbiter::tick(u64 epoch, const std::vector<LaneDemand>& lanes,
                           const ApplyRung& apply) {
  // Working copy of each lane's fast footprint so ladder moves update the
  // accounting mid-tick.
  std::vector<u64> fast(lanes.size(), 0);
  for (size_t k = 0; k < lanes.size(); ++k) {
    const LaneDemand& d = lanes[k];
    ensure_lane(d.lane);
    fast[k] = d.fast_bytes;
    // A lane that went back to work while its VM sat warm re-absorbs it:
    // count the reuse as a keep-alive hit and release the pool bytes (the
    // active-lane accounting below carries the footprint from here on).
    if (d.active && warm_.contains(*d.name)) {
      warm_.lookup(*d.name);
      warm_.evict(*d.name);
    }
    // A lane that drained its stream keeps its VM warm (both tiers) until
    // the budget needs the DRAM back — Section VI-A's keep-alive story.
    if (d.just_finished && options_.keepalive)
      warm_.insert(*d.name, d.fast_bytes, d.slow_bytes, d.cold_cost_ns,
                   options_.prewarm_hints ? d.predicted_reuse_gap_ns : -1);
  }

  const auto recompute = [&] {
    u64 r = warm_.dram_in_use();
    for (size_t k = 0; k < lanes.size(); ++k)
      if (lanes[k].active) r += fast[k];
    resident_ = r;
    peak_resident_ = std::max(peak_resident_, resident_);
  };
  recompute();

  // A quarantined host's budget is withdrawn: the ladder walks against
  // zero, so everything demotes/flushes and admission stays closed below.
  const u64 budget = budget_withdrawn_ ? 0 : budget_;

  // Ladder down. `stuck` marks lanes whose re-tier failed this tick (e.g.
  // persistence faults) so the loop moves on instead of spinning.
  std::vector<bool> stuck(lanes.size(), false);
  while (resident_ > budget) {
    // Rung A: shed warmth first — it only costs a future cold start.
    if (std::optional<std::string> victim = warm_.evict_lowest()) {
      ++keepalive_evictions_;
      recompute();
      push_event(epoch, *victim, ArbiterAction::kEvictWarm, 0);
      continue;
    }
    // Rung B: demote the largest-footprint tiered lane one rung
    // (ties break toward the lowest lane index — deterministic).
    size_t best = lanes.size();
    for (size_t k = 0; k < lanes.size(); ++k) {
      const LaneDemand& d = lanes[k];
      if (!d.active || !d.demotable || stuck[k]) continue;
      if (rung_[d.lane] >= max_rung_) continue;
      if (best == lanes.size() || fast[k] > fast[best]) best = k;
    }
    if (best == lanes.size()) break;  // ladder exhausted
    const LaneDemand& d = lanes[best];
    const int target = rung_[d.lane] + 1;
    if (rung_[d.lane] == 0) bytes_at_rung_[d.lane][0] = fast[best];
    const RetierBound bound =
        bound_for_rung(target, bytes_at_rung_[d.lane][0]);
    const std::optional<u64> applied = apply(d.lane, target, bound);
    if (!applied) {
      stuck[best] = true;
      continue;
    }
    fast[best] = *applied;
    rung_[d.lane] = target;
    bytes_at_rung_[d.lane][static_cast<size_t>(target)] = *applied;
    demote_stack_.push_back(d.lane);
    ++demotions_;
    recompute();
    push_event(epoch, *d.name, ArbiterAction::kDemote, target);
  }

  // Rung C: when even a fully demoted fleet cannot fit, stop admitting.
  // A withdrawn budget closes admission unconditionally, even on an empty
  // fleet — the host is quarantined, not merely full.
  if (resident_ > budget || budget_withdrawn_) {
    if (!admission_closed_) {
      admission_closed_ = true;
      ++admission_closures_;
      push_event(epoch, "", ArbiterAction::kCloseAdmission, 0);
    }
    return;
  }

  // Recovery, in reverse ladder order: re-open admission first...
  if (admission_closed_) {
    admission_closed_ = false;
    push_event(epoch, "", ArbiterAction::kOpenAdmission, 0);
  }

  // ...then promote the most recently demoted lane one rung — at most one
  // per tick, and only when its recorded footprint at the target rung still
  // fits (hysteresis against demote/promote flapping).
  while (!demote_stack_.empty()) {
    const size_t lane = demote_stack_.back();
    size_t k = lanes.size();
    for (size_t j = 0; j < lanes.size(); ++j)
      if (lanes[j].lane == lane) {
        k = j;
        break;
      }
    if (k == lanes.size() || !lanes[k].active || !lanes[k].demotable ||
        rung_[lane] == 0) {
      demote_stack_.pop_back();  // stale: lane finished or left kTiered
      continue;
    }
    const int target = rung_[lane] - 1;
    const u64 predicted =
        resident_ - fast[k] + bytes_at_rung_[lane][static_cast<size_t>(target)];
    if (predicted > budget) break;  // would re-demote next tick; hold
    const RetierBound bound = bound_for_rung(target, bytes_at_rung_[lane][0]);
    const std::optional<u64> applied = apply(lane, target, bound);
    if (!applied) break;  // re-tier failed; retry next tick
    fast[k] = *applied;
    rung_[lane] = target;
    demote_stack_.pop_back();
    ++promotions_;
    recompute();
    push_event(epoch, *lanes[k].name, ArbiterAction::kPromote, target);
    break;
  }
}

ArbiterReport FastTierArbiter::report() const {
  ArbiterReport r;
  r.events = events_;
  r.demotions = demotions_;
  r.promotions = promotions_;
  r.keepalive_evictions = keepalive_evictions_;
  r.admission_closures = admission_closures_;
  r.peak_resident_fast_bytes = peak_resident_;
  r.final_resident_fast_bytes = resident_;
  r.admission_closed = admission_closed_;
  r.keepalive = warm_.stats();
  r.warm_count = warm_.warm_count();
  return r;
}

}  // namespace toss
