// PlatformEngine: the concurrent multi-function engine.
//
// The single-host ServerlessPlatform drives one function at a time on the
// calling thread. The engine scales that out: every registered function
// becomes a *lane* — an isolated single-function host (own SnapshotStore,
// own page cache, own policy state machine) plus its request stream — and
// a sharded scheduler drains all lanes over a worker pool.
//
// Guarantees:
//   - Per-function serialization. A lane is owned by at most one worker at
//     a time (it sits in the ready queue exactly once), so a TossFunction
//     state machine is never re-entered concurrently. The engine counts
//     violations of this invariant and reports them (always 0).
//   - Determinism. Lanes share no mutable state — snapshot file ids, the
//     host page cache and RNG streams are all lane-local — so per-function
//     results are bit-for-bit identical for any thread count, including
//     the serial reference path (threads = 1). Only wall-clock time and
//     the interleaving of metric updates vary.
//   - Observability. Every invocation lands in a MetricsRegistry
//     (lock-free counters + latency histograms per function/phase) that is
//     snapshotted into the final report for the benches to serialize.
//
// Scheduling is chunked round-robin work sharing: workers pop a lane,
// process up to `chunk` requests, and requeue it while requests remain.
// Small chunks interleave lanes aggressively (fairness / tail latency);
// `chunk` >= stream length degenerates to one task per function.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/concurrency.hpp"
#include "platform/metrics.hpp"
#include "platform/platform.hpp"

namespace toss {

struct EngineOptions {
  /// Worker threads for run(); 0 = ThreadPool::hardware_threads().
  int threads = 0;
  /// Requests a worker processes per lane ownership (>= 1).
  int chunk = 8;
  /// Keep every InvocationOutcome in the report (in request order).
  bool keep_outcomes = true;
  /// Fault plan for the chaos harness. Each lane derives an independent
  /// injector seeded by (fault_plan.seed, lane name), so the fault sequence
  /// a lane sees is identical for any thread count. Inert unless the build
  /// sets -DTOSS_FAULTS=ON.
  FaultPlan fault_plan;
};

struct FunctionReport {
  std::string name;
  PolicyKind policy = PolicyKind::kToss;
  FunctionStats stats;
  TossPhase final_phase = TossPhase::kInitial;  ///< kToss lanes only
  /// Request-order outcomes; empty unless EngineOptions::keep_outcomes.
  std::vector<InvocationOutcome> outcomes;
};

struct EngineReport {
  std::vector<FunctionReport> functions;  ///< registration order
  Nanos wall_ns = 0;   ///< real elapsed time of the drain (not simulated)
  int threads = 1;
  /// Times a lane was observed concurrently re-entered. Always 0; exposed
  /// so tests assert the serialization guarantee instead of trusting it.
  u64 serialization_violations = 0;
  MetricsSnapshot metrics;

  u64 total_invocations() const;
  const FunctionReport* find(const std::string& name) const;
};

class PlatformEngine {
 public:
  explicit PlatformEngine(SystemConfig cfg = SystemConfig::paper_default(),
                          PricingPlan pricing = {},
                          EngineOptions options = {});
  ~PlatformEngine();

  PlatformEngine(const PlatformEngine&) = delete;
  PlatformEngine& operator=(const PlatformEngine&) = delete;

  /// Register a function and bind its request stream. Validation mirrors
  /// ServerlessPlatform::register_function, plus every request input must
  /// be in [0, kNumInputs). Rejected after run() has started (kEngineBusy).
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  size_t function_count() const { return lanes_.size(); }

  /// Drain every lane's request stream with options().threads workers.
  /// Single-shot: a second call fails with kEngineBusy.
  Result<EngineReport> run();
  /// Same, overriding the thread count (1 = serial reference path).
  Result<EngineReport> run(int threads);

  /// Live metrics (also embedded in the final report).
  MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// Lane state inspection (nullptr for unknown / non-TOSS lanes).
  const TossFunction* toss_state(const std::string& name) const;
  /// The lane's isolated single-function host (nullptr for unknown names);
  /// exposes its snapshot store, fault injector and circuit breaker for
  /// chaos-suite introspection.
  const ServerlessPlatform* lane_host(const std::string& name) const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Lane {
    std::string name;
    PolicyKind policy = PolicyKind::kToss;
    /// Isolated host: lane-local snapshot store, page cache and stats, so
    /// no cross-lane state can make results depend on scheduling.
    std::unique_ptr<ServerlessPlatform> host;
    std::vector<Request> requests;
    size_t next = 0;
    std::vector<InvocationOutcome> outcomes;
    FunctionSeries* series = nullptr;
    std::atomic<int> in_flight{0};
  };

  void process_chunk(Lane& lane);
  void scheduler_loop();
  void record_error(ErrorCode code, std::string message);

  SystemConfig cfg_;
  PricingPlan pricing_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  MetricsRegistry metrics_;
  bool ran_ = false;

  // Scheduler state (valid during run()). The mutex is rank-checked: a
  // worker holding it may still create metric series (kMetricsRegistry
  // ranks higher), but the registry must never call back into the engine.
  RankedMutex mu_{LockRank::kEngineScheduler, "PlatformEngine::mu_"};
  std::condition_variable_any ready_cv_;
  std::deque<size_t> ready_;
  size_t unfinished_ = 0;
  bool abort_ = false;
  std::atomic<u64> serialization_violations_{0};
  ErrorCode error_code_ = ErrorCode::kInvalidRequest;
  std::string error_message_;
  bool failed_ = false;
};

}  // namespace toss
