// PlatformEngine: the concurrent multi-function engine.
//
// The single-host ServerlessPlatform drives one function at a time on the
// calling thread. The engine scales that out: every registered function
// becomes a *lane* — an isolated single-function host (own SnapshotStore,
// own page cache, own policy state machine) plus its request stream — and
// a sharded scheduler drains all lanes over a worker pool.
//
// Since the Host extraction (platform/host.hpp, platform-internal) the
// engine is a thin façade over one Host. All the guarantees live there:
//   - Per-function serialization. A lane is owned by at most one worker at
//     a time, so a TossFunction state machine is never re-entered
//     concurrently; violations are counted and reported (always 0).
//   - Determinism. Lanes share no mutable state — snapshot file ids, the
//     host page cache and RNG streams are all lane-local — so per-function
//     results are bit-for-bit identical for any thread count, including
//     the serial reference path (threads = 1). Only wall-clock time and
//     the interleaving of metric updates vary.
//   - Observability. Every invocation lands in a MetricsRegistry
//     (lock-free counters + latency histograms per function/phase) that is
//     snapshotted into the final report for the benches to serialize.
//
// Scheduling is chunked round-robin work sharing: workers pop a lane,
// process up to `chunk` requests, and requeue it while requests remain.
// Small chunks interleave lanes aggressively (fairness / tail latency);
// `chunk` >= stream length degenerates to one task per function.
//
// Overload protection (DESIGN.md §9). When any overload knob is set
// (bounded queues, deadlines, watchdog, or the fast-tier arbiter), the
// drain switches to an epoch-barrier scheduler: each epoch processes one
// chunk per active lane in parallel (lanes stay isolated), then a serial
// barrier enforces the global queue bound and ticks the arbiter in lane
// registration order. Requests flow through a per-lane simulated-time
// queue — arrivals are admitted when the lane's simulated clock reaches
// Request::arrival_ns, bounded queues shed deterministically under the
// configured DropPolicy, and work whose deadline already passed is shed
// before wasting a restore. Every shed is typed (ErrorCode::kOverloaded)
// and ledgered; the ledgers are bit-identical for any thread count.
//
// Two drain models:
//   - run(): the original single-shot drain. A second run() (or an add()
//     after it) fails with kEngineBusy. Source-compatible with every
//     pre-Host client.
//   - drain(batch): reusable. Appends the batch to retained lanes (each
//     entry validated against its lane's existing arrival tail), serves
//     everything pending, and returns a *cumulative* report. Lane state —
//     simulated clocks, arbiter rungs, keep-alive pool, all ledgers —
//     persists between drains, and because lane-local decisions depend
//     only on the simulated clock, N successive drains are bit-identical
//     to one run() over the concatenated streams (for lane-local overload
//     knobs; the cross-lane global bound and arbiter ladder see epoch
//     boundaries, which batching shifts).
#pragma once

#include <string>
#include <vector>

#include "platform/host.hpp"

namespace toss {

class PlatformEngine {
 public:
  explicit PlatformEngine(SystemConfig cfg = SystemConfig::paper_default(),
                          PricingPlan pricing = {},
                          EngineOptions options = {});
  ~PlatformEngine();

  PlatformEngine(const PlatformEngine&) = delete;
  PlatformEngine& operator=(const PlatformEngine&) = delete;

  /// Register a function and bind its request stream. Validation mirrors
  /// ServerlessPlatform::register_function, plus every request input must
  /// be in [0, kNumInputs). Rejected after run() has started (kEngineBusy).
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  size_t function_count() const { return host_.function_count(); }

  /// Drain every lane's request stream with options().threads workers.
  /// Single-shot: a second call fails with kEngineBusy.
  Result<EngineReport> run();
  /// Same, overriding the thread count (1 = serial reference path).
  Result<EngineReport> run(int threads);

  /// Reusable drain: append `batch` to the retained lanes, serve
  /// everything pending, return the cumulative report. Callable any number
  /// of times; incompatible with run() (either model, not both).
  Result<EngineReport> drain(const RequestBatch& batch = {});
  Result<EngineReport> drain(const RequestBatch& batch, int threads);

  /// Live metrics (also embedded in the final report).
  MetricsSnapshot metrics() const { return host_.metrics(); }

  /// Lane state inspection (nullptr for unknown / non-TOSS lanes).
  const TossFunction* toss_state(const std::string& name) const {
    return host_.toss_state(name);
  }
  /// The lane's isolated single-function host (nullptr for unknown names);
  /// exposes its snapshot store, fault injector and circuit breaker for
  /// chaos-suite introspection.
  const ServerlessPlatform* lane_host(const std::string& name) const {
    return host_.lane_host(name);
  }

  const EngineOptions& options() const { return host_.options(); }

 private:
  Host host_;
  bool ran_ = false;      ///< run() happened (single-shot model engaged)
  bool drained_ = false;  ///< drain() happened (reusable model engaged)
};

}  // namespace toss
