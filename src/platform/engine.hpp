// PlatformEngine: the concurrent multi-function engine.
//
// The single-host ServerlessPlatform drives one function at a time on the
// calling thread. The engine scales that out: every registered function
// becomes a *lane* — an isolated single-function host (own SnapshotStore,
// own page cache, own policy state machine) plus its request stream — and
// a sharded scheduler drains all lanes over a worker pool.
//
// Guarantees:
//   - Per-function serialization. A lane is owned by at most one worker at
//     a time (it sits in the ready queue exactly once), so a TossFunction
//     state machine is never re-entered concurrently. The engine counts
//     violations of this invariant and reports them (always 0).
//   - Determinism. Lanes share no mutable state — snapshot file ids, the
//     host page cache and RNG streams are all lane-local — so per-function
//     results are bit-for-bit identical for any thread count, including
//     the serial reference path (threads = 1). Only wall-clock time and
//     the interleaving of metric updates vary.
//   - Observability. Every invocation lands in a MetricsRegistry
//     (lock-free counters + latency histograms per function/phase) that is
//     snapshotted into the final report for the benches to serialize.
//
// Scheduling is chunked round-robin work sharing: workers pop a lane,
// process up to `chunk` requests, and requeue it while requests remain.
// Small chunks interleave lanes aggressively (fairness / tail latency);
// `chunk` >= stream length degenerates to one task per function.
//
// Overload protection (DESIGN.md §9). When any overload knob is set
// (bounded queues, deadlines, watchdog, or the fast-tier arbiter), run()
// switches to an epoch-barrier scheduler: each epoch processes one chunk
// per active lane in parallel (lanes stay isolated), then a serial barrier
// enforces the global queue bound and ticks the arbiter in lane
// registration order. Requests flow through a per-lane simulated-time
// queue — arrivals are admitted when the lane's simulated clock reaches
// Request::arrival_ns, bounded queues shed deterministically under the
// configured DropPolicy, and work whose deadline already passed is shed
// before wasting a restore. Every shed is typed (ErrorCode::kOverloaded)
// and ledgered; the ledgers are bit-identical for any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/arbiter.hpp"
#include "platform/concurrency.hpp"
#include "platform/metrics.hpp"
#include "platform/platform.hpp"

namespace toss {

/// What a bounded lane queue sheds when full.
enum class DropPolicy : u8 {
  kTailDrop = 0,  ///< shed the newly arrived request
  kOldestDrop,    ///< shed the head of the queue, admit the newcomer
};

const char* drop_policy_name(DropPolicy policy);

/// Why a request was shed instead of served.
enum class ShedCause : u8 {
  kQueueFull = 0,     ///< per-lane queue at max_lane_queue
  kGlobalOverload,    ///< global queue bound trimmed the longest lane queue
  kAdmissionClosed,   ///< the arbiter closed admission (ladder rung C)
  kDeadlineExpired,   ///< deadline already past when the request was popped
};

const char* shed_cause_name(ShedCause cause);

/// One shed decision; part of the determinism contract (the sequence is
/// bit-identical for any thread count at a fixed seed).
struct ShedEvent {
  size_t request_index = 0;  ///< index into the lane's request stream
  ShedCause cause = ShedCause::kQueueFull;
  Nanos sim_ns = 0;  ///< lane-local simulated time of the decision

  bool operator==(const ShedEvent&) const = default;
};

/// The typed rejection a shed request would have surfaced to its caller.
Error shed_error(const std::string& function, const ShedEvent& event);

/// Per-lane admission/shedding ledger totals.
struct OverloadStats {
  u64 offered = 0;    ///< arrivals that reached admission control
  u64 admitted = 0;   ///< arrivals that entered the queue
  u64 completed = 0;  ///< requests actually served
  u64 shed_queue_full = 0;
  u64 shed_global = 0;
  u64 shed_admission = 0;
  u64 shed_deadline = 0;
  /// Served past their deadline (admitted, not shed, but SLO-late).
  u64 deadline_misses = 0;
  u64 demotions = 0;   ///< arbiter re-tiered this lane down a rung
  u64 promotions = 0;  ///< arbiter re-tiered this lane back up
  u64 watchdog_trips = 0;
  size_t queue_peak = 0;  ///< high-water mark of the lane queue

  u64 total_shed() const {
    return shed_queue_full + shed_global + shed_admission + shed_deadline;
  }

  bool operator==(const OverloadStats&) const = default;
};

struct EngineOptions {
  /// Worker threads for run(); 0 = ThreadPool::hardware_threads().
  int threads = 0;
  /// Requests a worker processes per lane ownership (>= 1).
  int chunk = 8;
  /// Keep every InvocationOutcome in the report (in request order).
  bool keep_outcomes = true;
  /// Fault plan for the chaos harness. Each lane derives an independent
  /// injector seeded by (fault_plan.seed, lane name), so the fault sequence
  /// a lane sees is identical for any thread count. Inert unless the build
  /// sets -DTOSS_FAULTS=ON.
  FaultPlan fault_plan;

  // ---- Overload protection (any non-default knob engages the
  // epoch-barrier scheduler; all defaults = legacy unbounded behavior) ----

  /// Bound on each lane's admitted-but-unserved queue; 0 = unbounded.
  size_t max_lane_queue = 0;
  /// Bound on the fleet-wide sum of lane queue depths; 0 = unbounded.
  size_t max_global_queue = 0;
  DropPolicy drop_policy = DropPolicy::kTailDrop;
  /// Shed queued requests whose Request::deadline_ns already passed
  /// instead of wasting a restore on SLO-dead work.
  bool enforce_deadlines = false;
  /// Watchdog: when one lane chunk's simulated service time exceeds this
  /// bound, the lane's circuit breaker is tripped open. 0 = off.
  Nanos watchdog_chunk_budget_ns = 0;
  /// Fleet fast-tier budget arbiter (platform/arbiter.hpp).
  ArbiterOptions arbiter;
  /// Keep per-lane ShedEvent ledgers in the report.
  bool keep_shed_events = true;

  bool overload_protection() const {
    return max_lane_queue > 0 || max_global_queue > 0 || enforce_deadlines ||
           watchdog_chunk_budget_ns > 0 || arbiter.enabled;
  }
};

struct FunctionReport {
  std::string name;
  PolicyKind policy = PolicyKind::kToss;
  FunctionStats stats;
  TossPhase final_phase = TossPhase::kInitial;  ///< kToss lanes only
  /// Request-order outcomes; empty unless EngineOptions::keep_outcomes.
  std::vector<InvocationOutcome> outcomes;
  /// Admission/shedding ledger; all-zero under the legacy scheduler.
  OverloadStats overload;
  /// Shed decisions in decision order; empty unless keep_shed_events and
  /// the overload scheduler ran.
  std::vector<ShedEvent> shed_events;
};

struct EngineReport {
  std::vector<FunctionReport> functions;  ///< registration order
  Nanos wall_ns = 0;   ///< real elapsed time of the drain (not simulated)
  int threads = 1;
  /// Times a lane was observed concurrently re-entered. Always 0; exposed
  /// so tests assert the serialization guarantee instead of trusting it.
  u64 serialization_violations = 0;
  MetricsSnapshot metrics;
  /// Fleet arbiter ledger; all-default unless EngineOptions::arbiter.enabled.
  ArbiterReport arbiter;

  u64 total_invocations() const;
  u64 total_shed() const;
  const FunctionReport* find(const std::string& name) const;
};

class PlatformEngine {
 public:
  explicit PlatformEngine(SystemConfig cfg = SystemConfig::paper_default(),
                          PricingPlan pricing = {},
                          EngineOptions options = {});
  ~PlatformEngine();

  PlatformEngine(const PlatformEngine&) = delete;
  PlatformEngine& operator=(const PlatformEngine&) = delete;

  /// Register a function and bind its request stream. Validation mirrors
  /// ServerlessPlatform::register_function, plus every request input must
  /// be in [0, kNumInputs). Rejected after run() has started (kEngineBusy).
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  size_t function_count() const { return lanes_.size(); }

  /// Drain every lane's request stream with options().threads workers.
  /// Single-shot: a second call fails with kEngineBusy.
  Result<EngineReport> run();
  /// Same, overriding the thread count (1 = serial reference path).
  Result<EngineReport> run(int threads);

  /// Live metrics (also embedded in the final report).
  MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// Lane state inspection (nullptr for unknown / non-TOSS lanes).
  const TossFunction* toss_state(const std::string& name) const;
  /// The lane's isolated single-function host (nullptr for unknown names);
  /// exposes its snapshot store, fault injector and circuit breaker for
  /// chaos-suite introspection.
  const ServerlessPlatform* lane_host(const std::string& name) const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Lane {
    std::string name;
    PolicyKind policy = PolicyKind::kToss;
    /// Isolated host: lane-local snapshot store, page cache and stats, so
    /// no cross-lane state can make results depend on scheduling.
    std::unique_ptr<ServerlessPlatform> host;
    std::vector<Request> requests;
    size_t next = 0;
    std::vector<InvocationOutcome> outcomes;
    FunctionSeries* series = nullptr;
    std::atomic<int> in_flight{0};

    // Overload-scheduler state (untouched on the legacy path).
    std::deque<size_t> queue;  ///< admitted, unserved request indices
    size_t arrived = 0;        ///< requests[0..arrived) reached admission
    Nanos sim_now = 0;         ///< lane-local simulated clock
    Nanos last_setup_ns = 0;   ///< keep-alive cold-cost estimate
    OverloadStats overload;
    std::vector<ShedEvent> shed_events;
    bool finish_reported = false;  ///< keep-alive insert happened
    int rung = 0;                  ///< arbiter demotion rung

    bool drained() const { return arrived >= requests.size() && queue.empty(); }
  };

  void process_chunk(Lane& lane);
  void scheduler_loop();
  void record_error(ErrorCode code, std::string message);

  // Epoch-barrier overload scheduler (engaged by overload_protection()).
  Result<EngineReport> run_epochs(int threads);
  void process_chunk_overload(Lane& lane, bool admission_closed);
  void admit_arrivals(Lane& lane, bool admission_closed);
  void shed(Lane& lane, size_t request_index, ShedCause cause);
  void enforce_global_queue_bound();
  void arbiter_tick(FastTierArbiter& arbiter, u64 epoch);
  EngineReport assemble_report(int threads, Nanos wall_ns);

  SystemConfig cfg_;
  PricingPlan pricing_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  MetricsRegistry metrics_;
  bool ran_ = false;

  // Scheduler state (valid during run()). The mutex is rank-checked: a
  // worker holding it may still create metric series (kMetricsRegistry
  // ranks higher), but the registry must never call back into the engine.
  RankedMutex mu_{LockRank::kEngineScheduler, "PlatformEngine::mu_"};
  std::condition_variable_any ready_cv_;
  std::deque<size_t> ready_;
  size_t unfinished_ = 0;
  bool abort_ = false;
  std::atomic<u64> serialization_violations_{0};
  ErrorCode error_code_ = ErrorCode::kInvalidRequest;
  std::string error_message_;
  bool failed_ = false;
};

}  // namespace toss
