// Lock-free-ish observability for the platform engine.
//
// Hot path (every invocation): relaxed atomic increments into per-function
// counters and fixed-bucket log2 latency histograms — no locks, no
// allocation, safe to call from any worker thread. Cold path (registration,
// snapshot): mutex-protected. A MetricsSnapshot is a plain value the benches
// serialize to JSON so speedups and tail latencies are observable rather
// than asserted.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/toss.hpp"
#include "platform/qos.hpp"
#include "util/optimistic.hpp"

namespace toss {

/// Latency histogram over log2(ns) buckets: bucket i counts samples in
/// [2^i, 2^(i+1)) ns; 48 buckets span 1 ns .. ~3.2 days.
class LatencyHistogram {
 public:
  static constexpr int kBucketCount = 48;

  void record(Nanos t);

  struct Snapshot {
    u64 count = 0;
    double sum = 0;
    double min = 0;  ///< 0 when empty
    double max = 0;
    std::array<u64, kBucketCount> buckets{};

    double mean() const { return count ? sum / static_cast<double>(count) : 0; }
    /// Bucket-resolution percentile (upper bound of the containing bucket,
    /// clamped to the observed max). p in [0, 100].
    double percentile(double p) const;
  };

  Snapshot snapshot() const;

 private:
  std::array<std::atomic<u64>, kBucketCount> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Per-function hot-path counters. One instance per registered function;
/// pointers stay stable for the registry's lifetime.
struct FunctionSeries {
  explicit FunctionSeries(std::string name) : function(std::move(name)) {}

  std::string function;
  std::atomic<u64> invocations{0};
  std::atomic<u64> cold_boots{0};
  /// Indexed by TossPhase (kInitial/kProfiling/kTiered). Baseline policies
  /// count everything as kInitial (cold) or kTiered (steady state).
  std::array<std::atomic<u64>, 3> phase_invocations{};
  std::atomic<double> total_charge{0.0};
  // Recovery ladder counters (all zero unless faults were injected).
  std::atomic<u64> recovered_faults{0};
  std::atomic<u64> recovery_retries{0};
  std::atomic<u64> fallbacks_single_tier{0};
  std::atomic<u64> fallbacks_cold_boot{0};
  std::atomic<u64> quarantines{0};
  std::atomic<u64> regenerations{0};
  std::atomic<u64> breaker_suspended{0};
  std::atomic<u64> incomplete{0};
  // Overload-control counters (all zero under the legacy scheduler). The
  // engine increments these directly; like everything else here they are
  // commutative relaxed adds, so totals are thread-count independent.
  std::atomic<u64> admitted{0};
  /// Per-cause shed counters, indexed by ShedCause (platform/qos.hpp).
  /// One array instead of one ad-hoc field per cause; the JSON keys stay
  /// the historical ones via shed_cause_json_key().
  std::array<std::atomic<u64>, kShedCauseCount> shed{};
  std::atomic<u64> deadline_misses{0};
  std::atomic<u64> demotions{0};
  std::atomic<u64> promotions{0};
  std::atomic<u64> watchdog_trips{0};
  LatencyHistogram total_ns;
  LatencyHistogram setup_ns;
  LatencyHistogram exec_ns;

  void record(TossPhase phase, bool cold_boot, Nanos total, Nanos setup,
              Nanos exec, double charge, const RecoveryInfo& recovery = {});
};

struct FunctionMetrics {
  std::string function;
  u64 invocations = 0;
  u64 cold_boots = 0;
  std::array<u64, 3> phase_invocations{};
  double total_charge = 0;
  u64 recovered_faults = 0;
  u64 recovery_retries = 0;
  u64 fallbacks_single_tier = 0;
  u64 fallbacks_cold_boot = 0;
  u64 quarantines = 0;
  u64 regenerations = 0;
  u64 breaker_suspended = 0;
  u64 incomplete = 0;
  u64 admitted = 0;
  /// Per-cause shed counters, indexed by ShedCause.
  std::array<u64, kShedCauseCount> shed{};
  u64 deadline_misses = 0;
  u64 demotions = 0;
  u64 promotions = 0;
  u64 watchdog_trips = 0;
  /// QoS class / SLO annotation (schema 6); stamped by the host from its
  /// lane state when QoS classes are engaged, kNone otherwise.
  QosClass qos = QosClass::kNone;
  double slo_slowdown = 0;
  /// Per-function SLO attainment, derived from the lane's OverloadStats;
  /// all-zero when the function carries no QoS class.
  QosAttainment slo;
  LatencyHistogram::Snapshot total_ns;
  LatencyHistogram::Snapshot setup_ns;
  LatencyHistogram::Snapshot exec_ns;

  u64 shed_by(ShedCause cause) const {
    return shed[static_cast<size_t>(cause)];
  }
};

/// Fleet-wide rollup of one ladder rank at snapshot time (schema 4).
struct TierRollup {
  std::string tier;        ///< tier_name(rank)
  u64 resident_bytes = 0;  ///< bytes live lanes currently pin in this rank
  u64 capacity_bytes = 0;  ///< TierSpec::capacity_bytes of the rank
  /// resident / capacity; 0 when the capacity is unknown or unbounded.
  double occupancy = 0;
};

/// Per-host health rollup (schema 5), filled by the cluster's health
/// governance. `present` gates the "health" key in to_json(), so a bare
/// engine's snapshot is unchanged from schema 4 modulo the version bump.
struct HostHealthRollup {
  bool present = false;
  bool lost = false;         ///< host crashed (lanes failed over / abandoned)
  bool quarantined = false;  ///< health breaker open at snapshot time
  u64 brownouts = 0;         ///< brownout epochs this host absorbed
  u64 quarantines = 0;       ///< breaker open transitions
  u64 readmissions = 0;      ///< breaker half-open -> closed transitions
  u64 lanes_failed_over = 0;  ///< lanes re-placed off this host at crash
};

/// One QoS class's SLO-attainment rollup across a host's lanes (schema 6).
/// Only classes with at least one lane appear; order is the QosClass enum
/// order, so the rollup is deterministic by construction.
struct QosClassRollup {
  QosClass cls = QosClass::kNone;
  QosAttainment ledger;
};

struct MetricsSnapshot {
  /// Layout version of to_json() (the top-level "schema" key). Version 2
  /// added the per-function "overload" block (DESIGN.md §9); version 3
  /// added the top-level "host" key (present when `host` is non-empty)
  /// and the cluster rollup in ClusterReport::to_json (DESIGN.md §10);
  /// version 4 added the top-level "tiers" array (present when `tiers` is
  /// non-empty) — one resident/occupancy rollup per ladder rank, fastest
  /// first (DESIGN.md §11); version 5 added the per-function
  /// "shed_host_lost" overload counter, the top-level "health" rollup
  /// (present when the cluster's health governance filled it) and the
  /// failover/health ledgers in ClusterReport::to_json (DESIGN.md §13);
  /// version 6 added the per-function "qos" block (present when the
  /// function carries a QoS class), the top-level "qos" per-class
  /// SLO-attainment array (present when any lane is classed) and the same
  /// rollup in ClusterReport::to_json's cluster block (DESIGN.md §14).
  /// Consumers should ignore unknown keys.
  static constexpr int kJsonSchemaVersion = 6;

  /// Which simulated host produced this snapshot; empty outside the
  /// engine/cluster (e.g. a bare MetricsRegistry).
  std::string host;
  /// Per-ladder-rank rollup, index 0 = fastest; filled by the engine
  /// (a bare MetricsRegistry has no ladder to sample).
  std::vector<TierRollup> tiers;
  /// Host health rollup; filled by ClusterEngine::report() (schema 5).
  HostHealthRollup health;
  /// Per-class SLO-attainment rollup in QosClass enum order; empty unless
  /// the host has QoS-classed lanes (schema 6).
  std::vector<QosClassRollup> qos;
  std::vector<FunctionMetrics> functions;  ///< registration order

  u64 total_invocations() const;
  const FunctionMetrics* find(const std::string& name) const;
  /// Serialize for the bench harness (stable key order, valid JSON).
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Create (or fetch) the series for `name`. Lookups of an existing name
  /// take the latch shared (lock-free CAS, no mutex); only the first call
  /// for a new name upgrades to exclusive and allocates.
  FunctionSeries* series(const std::string& name);

  /// Consistent-enough copy of all counters (each value is read atomically;
  /// the set of functions is read under the shared latch).
  MetricsSnapshot snapshot() const;

 private:
  /// Optimistic version-stamped latch (DESIGN.md §15) guarding the series
  /// vector — the FunctionSeries counters themselves are atomics and are
  /// recorded without any latch at all.
  mutable OptimisticLatch latch_;
  std::vector<std::unique_ptr<FunctionSeries>> series_;
};

}  // namespace toss
