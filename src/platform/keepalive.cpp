#include "platform/keepalive.hpp"

#include <algorithm>
#include <limits>

namespace toss {

KeepAliveCache::KeepAliveCache(KeepAliveConfig cfg) : cfg_(cfg) {}

double KeepAliveCache::priority_of(const Entry& e) const {
  // Greedy-Dual-Size-Frequency. `size` is the DRAM share (the constrained
  // pool); a pure slow-tier VM is nearly free to keep and ages very slowly.
  const double size =
      std::max<double>(static_cast<double>(e.dram_bytes), 1.0);
  return clock_ + static_cast<double>(e.frequency) * e.cold_cost_ns / size;
}

bool KeepAliveCache::lookup(const std::string& function) {
  auto it = entries_.find(function);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  ++it->second.frequency;
  it->second.priority = priority_of(it->second);
  return true;
}

void KeepAliveCache::remove_entry(const std::string& function) {
  auto it = entries_.find(function);
  if (it == entries_.end()) return;
  dram_used_ -= it->second.dram_bytes;
  slow_used_ -= it->second.slow_bytes;
  entries_.erase(it);
}

void KeepAliveCache::evict(const std::string& function) {
  remove_entry(function);
}

std::optional<std::string> KeepAliveCache::evict_lowest() {
  // Evict the lowest-priority warm VM and advance the aging clock to its
  // priority (classic Greedy-Dual). Ties break on the map's lexicographic
  // name order, which keeps the choice deterministic.
  auto victim = entries_.end();
  double lowest = std::numeric_limits<double>::infinity();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.priority < lowest) {
      lowest = it->second.priority;
      victim = it;
    }
  }
  if (victim == entries_.end()) return std::nullopt;
  std::string name = victim->first;
  clock_ = victim->second.priority;
  dram_used_ -= victim->second.dram_bytes;
  slow_used_ -= victim->second.slow_bytes;
  entries_.erase(victim);
  ++stats_.evictions;
  return name;
}

bool KeepAliveCache::make_room(u64 dram_bytes, u64 slow_bytes) {
  if (dram_bytes > cfg_.dram_capacity_bytes ||
      slow_bytes > cfg_.slow_capacity_bytes)
    return false;
  while (dram_used_ + dram_bytes > cfg_.dram_capacity_bytes ||
         slow_used_ + slow_bytes > cfg_.slow_capacity_bytes) {
    if (!evict_lowest()) return false;  // nothing left to evict
  }
  return true;
}

bool KeepAliveCache::insert(const std::string& function, u64 dram_bytes,
                            u64 slow_bytes, Nanos cold_cost_ns) {
  remove_entry(function);
  if (!make_room(dram_bytes, slow_bytes)) {
    ++stats_.rejected;
    return false;
  }
  Entry e;
  e.dram_bytes = dram_bytes;
  e.slow_bytes = slow_bytes;
  e.cold_cost_ns = cold_cost_ns;
  e.frequency = 1;
  e.priority = priority_of(e);
  dram_used_ += dram_bytes;
  slow_used_ += slow_bytes;
  entries_.emplace(function, e);
  return true;
}

bool KeepAliveCache::contains(const std::string& function) const {
  return entries_.contains(function);
}

}  // namespace toss
