#include "platform/keepalive.hpp"

#include <algorithm>

namespace toss {

KeepAliveCache::KeepAliveCache(KeepAliveConfig cfg) : cfg_(cfg) {}

double KeepAliveCache::priority_of(const Entry& e) const {
  // Greedy-Dual-Size-Frequency. `size` is the DRAM share (the constrained
  // pool); a pure slow-tier VM is nearly free to keep and ages very slowly.
  const double size =
      std::max<double>(static_cast<double>(e.dram_bytes), 1.0);
  // Prewarm urgency: the predictor says the function fires again in
  // `gap` — the sooner, the costlier an eviction, so scale the benefit
  // term by up to 2x (gap 0) decaying to 1x. No prediction = plain GDSF.
  const double urgency =
      e.predicted_reuse_gap_ns < 0 || cfg_.urgency_halflife_ns <= 0
          ? 1.0
          : 1.0 + cfg_.urgency_halflife_ns /
                      (cfg_.urgency_halflife_ns + e.predicted_reuse_gap_ns);
  return clock_ +
         static_cast<double>(e.frequency) * e.cold_cost_ns * urgency / size;
}

bool KeepAliveCache::lookup(const std::string& function) {
  // A hit mutates the entry (frequency + priority refresh), so even the
  // lookup is a writer under GDSF — exclusive, not shared.
  ExclusiveLatchGuard guard(latch_);
  auto it = entries_.find(function);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  ++it->second.frequency;
  it->second.priority = priority_of(it->second);
  return true;
}

void KeepAliveCache::remove_entry_locked(const std::string& function) {
  auto it = entries_.find(function);
  if (it == entries_.end()) return;
  dram_used_.fetch_sub(it->second.dram_bytes, std::memory_order_relaxed);
  slow_used_.fetch_sub(it->second.slow_bytes, std::memory_order_relaxed);
  warm_count_.fetch_sub(1, std::memory_order_relaxed);
  entries_.erase(it);
}

void KeepAliveCache::evict(const std::string& function) {
  ExclusiveLatchGuard guard(latch_);
  remove_entry_locked(function);
}

std::optional<std::string> KeepAliveCache::evict_lowest() {
  ExclusiveLatchGuard guard(latch_);
  return evict_lowest_locked();
}

std::optional<std::string> KeepAliveCache::evict_lowest_locked() {
  // Evict the lowest-priority warm VM and advance the aging clock to its
  // priority (classic Greedy-Dual). The victim is the minimum of the
  // explicit (priority, function_id) tuple — the name is part of the key,
  // not a side effect of map iteration order, so the choice is
  // deterministic by construction even if the container changes.
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (victim == entries_.end() ||
        it->second.priority < victim->second.priority ||
        (it->second.priority == victim->second.priority &&
         it->first < victim->first))
      victim = it;
  }
  if (victim == entries_.end()) return std::nullopt;
  std::string name = victim->first;
  clock_ = victim->second.priority;
  dram_used_.fetch_sub(victim->second.dram_bytes, std::memory_order_relaxed);
  slow_used_.fetch_sub(victim->second.slow_bytes, std::memory_order_relaxed);
  warm_count_.fetch_sub(1, std::memory_order_relaxed);
  entries_.erase(victim);
  ++stats_.evictions;
  return name;
}

bool KeepAliveCache::make_room_locked(u64 dram_bytes, u64 slow_bytes) {
  if (dram_bytes > cfg_.dram_capacity_bytes ||
      slow_bytes > cfg_.slow_capacity_bytes)
    return false;
  while (dram_used_.load(std::memory_order_relaxed) + dram_bytes >
             cfg_.dram_capacity_bytes ||
         slow_used_.load(std::memory_order_relaxed) + slow_bytes >
             cfg_.slow_capacity_bytes) {
    if (!evict_lowest_locked()) return false;  // nothing left to evict
  }
  return true;
}

bool KeepAliveCache::insert(const std::string& function, u64 dram_bytes,
                            u64 slow_bytes, Nanos cold_cost_ns,
                            Nanos predicted_reuse_gap_ns) {
  ExclusiveLatchGuard guard(latch_);
  remove_entry_locked(function);
  if (!make_room_locked(dram_bytes, slow_bytes)) {
    ++stats_.rejected;
    return false;
  }
  Entry e;
  e.dram_bytes = dram_bytes;
  e.slow_bytes = slow_bytes;
  e.cold_cost_ns = cold_cost_ns;
  e.predicted_reuse_gap_ns = predicted_reuse_gap_ns;
  e.frequency = 1;
  e.priority = priority_of(e);
  dram_used_.fetch_add(dram_bytes, std::memory_order_relaxed);
  slow_used_.fetch_add(slow_bytes, std::memory_order_relaxed);
  warm_count_.fetch_add(1, std::memory_order_relaxed);
  entries_.emplace(function, e);
  return true;
}

bool KeepAliveCache::contains(const std::string& function) const {
  // Walks plain memory (the map), so shared mode — not optimistic.
  SharedLatchGuard guard(latch_);
  return entries_.contains(function);
}

size_t KeepAliveCache::warm_count() const {
  for (;;) {
    const u64 snapshot = latch_.optimistic_begin();
    const u64 n = warm_count_.load(std::memory_order_acquire);
    if (latch_.validate(snapshot)) return static_cast<size_t>(n);
  }
}

u64 KeepAliveCache::dram_in_use() const {
  for (;;) {
    const u64 snapshot = latch_.optimistic_begin();
    const u64 bytes = dram_used_.load(std::memory_order_acquire);
    if (latch_.validate(snapshot)) return bytes;
  }
}

u64 KeepAliveCache::slow_in_use() const {
  for (;;) {
    const u64 snapshot = latch_.optimistic_begin();
    const u64 bytes = slow_used_.load(std::memory_order_acquire);
    if (latch_.validate(snapshot)) return bytes;
  }
}

KeepAliveStats KeepAliveCache::stats() const {
  // stats_ is plain memory: copy it under the shared latch so the four
  // counters are a consistent cut (no torn hit/miss pairs).
  SharedLatchGuard guard(latch_);
  return stats_;
}

}  // namespace toss
