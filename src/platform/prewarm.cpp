#include "platform/prewarm.hpp"

#include <algorithm>

namespace toss {

ArrivalPredictor::ArrivalPredictor(PrewarmConfig cfg)
    : cfg_(cfg), histogram_(cfg.bucket_count, 0) {}

void ArrivalPredictor::observe(Nanos now_ns) {
  if (last_arrival_) {
    const Nanos gap = now_ns - *last_arrival_;
    if (gap >= 0) {
      const u64 bucket = std::min<u64>(
          cfg_.bucket_count - 1,
          static_cast<u64>(gap / std::max<Nanos>(cfg_.bucket_ns, 1)));
      ++histogram_[bucket];
      ++samples_;
    }
  }
  last_arrival_ = now_ns;
}

std::optional<Nanos> ArrivalPredictor::predicted_next() const {
  if (!last_arrival_ || samples_ < cfg_.min_samples) return std::nullopt;
  // Modal bucket, predicted at its center.
  u64 best = 0;
  u64 best_count = 0;
  for (u64 b = 0; b < histogram_.size(); ++b) {
    if (histogram_[b] > best_count) {
      best_count = histogram_[b];
      best = b;
    }
  }
  if (best_count == 0) return std::nullopt;
  const Nanos gap = (static_cast<double>(best) + 0.5) * cfg_.bucket_ns;
  return *last_arrival_ + gap;
}

std::optional<Nanos> ArrivalPredictor::prewarm_at() const {
  const auto next = predicted_next();
  if (!next || !last_arrival_) return std::nullopt;
  const Nanos gap = *next - *last_arrival_;
  return *next - gap * cfg_.safety_margin;
}

Nanos visible_setup_ns(Nanos arrival_ns, std::optional<Nanos> restore_start,
                       Nanos setup_ns) {
  if (!restore_start || *restore_start > arrival_ns) return setup_ns;
  const Nanos already_done = arrival_ns - *restore_start;
  return std::max<Nanos>(0, setup_ns - already_done);
}

}  // namespace toss
