#include "platform/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace toss {

namespace {

int bucket_index(Nanos t) {
  const double clamped = std::max(t, 0.0);
  const u64 ns = static_cast<u64>(std::min(clamped, 1e18));
  if (ns <= 1) return 0;
  const int idx = std::bit_width(ns) - 1;  // floor(log2(ns))
  return std::min(idx, LatencyHistogram::kBucketCount - 1);
}

void atomic_add(std::atomic<double>& a, double v) {
  a.fetch_add(v, std::memory_order_relaxed);
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::record(Nanos t) {
  buckets_[static_cast<size_t>(bucket_index(t))].fetch_add(
      1, std::memory_order_relaxed);
  // First sample initializes min: count_ transitions 0 -> 1 exactly once,
  // and racing recorders both run the CAS loops afterwards, so the final
  // min/max are correct either way.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    double expected = 0.0;
    min_.compare_exchange_strong(expected, t, std::memory_order_relaxed);
  }
  atomic_add(sum_, t);
  atomic_min(min_, t);
  atomic_max(max_, t);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBucketCount; ++i)
    s.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  return s;
}

double LatencyHistogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const u64 rank = static_cast<u64>(
      std::ceil(clamped / 100.0 * static_cast<double>(count)));
  u64 seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (seen >= std::max<u64>(rank, 1)) {
      const double upper = std::ldexp(1.0, i + 1);  // 2^(i+1) ns
      return std::min(upper, max);
    }
  }
  return max;
}

void FunctionSeries::record(TossPhase phase, bool cold_boot, Nanos total,
                            Nanos setup, Nanos exec, double charge,
                            const RecoveryInfo& recovery) {
  invocations.fetch_add(1, std::memory_order_relaxed);
  if (cold_boot) cold_boots.fetch_add(1, std::memory_order_relaxed);
  phase_invocations[static_cast<size_t>(phase)].fetch_add(
      1, std::memory_order_relaxed);
  atomic_add(total_charge, charge);
  if (recovery.faults_seen)
    recovered_faults.fetch_add(recovery.faults_seen,
                               std::memory_order_relaxed);
  if (recovery.retries)
    recovery_retries.fetch_add(recovery.retries, std::memory_order_relaxed);
  if (recovery.fallback == FallbackLevel::kSingleTier)
    fallbacks_single_tier.fetch_add(1, std::memory_order_relaxed);
  else if (recovery.fallback == FallbackLevel::kColdBoot)
    fallbacks_cold_boot.fetch_add(1, std::memory_order_relaxed);
  if (recovery.quarantined)
    quarantines.fetch_add(1, std::memory_order_relaxed);
  if (recovery.regenerated)
    regenerations.fetch_add(1, std::memory_order_relaxed);
  if (recovery.breaker_suspended)
    breaker_suspended.fetch_add(1, std::memory_order_relaxed);
  if (!recovery.completed) incomplete.fetch_add(1, std::memory_order_relaxed);
  total_ns.record(total);
  setup_ns.record(setup);
  exec_ns.record(exec);
}

FunctionSeries* MetricsRegistry::series(const std::string& name) {
  {
    // Fast path: the name almost always exists already (every invocation
    // resolves its series). Shared mode — the vector and the names are
    // plain memory, so optimistic reads would race with a concurrent
    // registration's push_back.
    SharedLatchGuard guard(latch_);
    for (const auto& s : series_)
      if (s->function == name) return s.get();
  }
  ExclusiveLatchGuard guard(latch_);
  // Re-scan: another thread may have registered the name between the
  // shared release and the exclusive acquire.
  for (const auto& s : series_)
    if (s->function == name) return s.get();
  series_.push_back(std::make_unique<FunctionSeries>(name));
  return series_.back().get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  SharedLatchGuard guard(latch_);
  out.functions.reserve(series_.size());
  for (const auto& s : series_) {
    FunctionMetrics m;
    m.function = s->function;
    m.invocations = s->invocations.load(std::memory_order_relaxed);
    m.cold_boots = s->cold_boots.load(std::memory_order_relaxed);
    for (size_t p = 0; p < m.phase_invocations.size(); ++p)
      m.phase_invocations[p] =
          s->phase_invocations[p].load(std::memory_order_relaxed);
    m.total_charge = s->total_charge.load(std::memory_order_relaxed);
    m.recovered_faults = s->recovered_faults.load(std::memory_order_relaxed);
    m.recovery_retries = s->recovery_retries.load(std::memory_order_relaxed);
    m.fallbacks_single_tier =
        s->fallbacks_single_tier.load(std::memory_order_relaxed);
    m.fallbacks_cold_boot =
        s->fallbacks_cold_boot.load(std::memory_order_relaxed);
    m.quarantines = s->quarantines.load(std::memory_order_relaxed);
    m.regenerations = s->regenerations.load(std::memory_order_relaxed);
    m.breaker_suspended =
        s->breaker_suspended.load(std::memory_order_relaxed);
    m.incomplete = s->incomplete.load(std::memory_order_relaxed);
    m.admitted = s->admitted.load(std::memory_order_relaxed);
    for (size_t c = 0; c < kShedCauseCount; ++c)
      m.shed[c] = s->shed[c].load(std::memory_order_relaxed);
    m.deadline_misses = s->deadline_misses.load(std::memory_order_relaxed);
    m.demotions = s->demotions.load(std::memory_order_relaxed);
    m.promotions = s->promotions.load(std::memory_order_relaxed);
    m.watchdog_trips = s->watchdog_trips.load(std::memory_order_relaxed);
    m.total_ns = s->total_ns.snapshot();
    m.setup_ns = s->setup_ns.snapshot();
    m.exec_ns = s->exec_ns.snapshot();
    out.functions.push_back(std::move(m));
  }
  return out;
}

u64 MetricsSnapshot::total_invocations() const {
  u64 n = 0;
  for (const FunctionMetrics& m : functions) n += m.invocations;
  return n;
}

const FunctionMetrics* MetricsSnapshot::find(const std::string& name) const {
  for (const FunctionMetrics& m : functions)
    if (m.function == name) return &m;
  return nullptr;
}

namespace {

void append_histogram(std::string& out, const char* key,
                      const LatencyHistogram::Snapshot& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean_ns\":%.1f,\"min_ns\":%.1f,"
                "\"max_ns\":%.1f,\"p50_ns\":%.1f,\"p95_ns\":%.1f,"
                "\"p99_ns\":%.1f}",
                key, static_cast<unsigned long long>(h.count), h.mean(),
                h.min, h.max, h.percentile(50), h.percentile(95),
                h.percentile(99));
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"schema\":" + std::to_string(kJsonSchemaVersion) + ",";
  if (!host.empty()) out += "\"host\":\"" + host + "\",";
  if (!tiers.empty()) {
    out += "\"tiers\":[";
    for (size_t i = 0; i < tiers.size(); ++i) {
      const TierRollup& t = tiers[i];
      if (i) out += ",";
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "{\"tier\":\"%s\",\"resident_bytes\":%llu,"
                    "\"capacity_bytes\":%llu,\"occupancy\":%.6f}",
                    t.tier.c_str(),
                    static_cast<unsigned long long>(t.resident_bytes),
                    static_cast<unsigned long long>(t.capacity_bytes),
                    t.occupancy);
      out += buf;
    }
    out += "],";
  }
  if (health.present) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "\"health\":{\"lost\":%s,\"quarantined\":%s,"
                  "\"brownouts\":%llu,\"quarantines\":%llu,"
                  "\"readmissions\":%llu,\"lanes_failed_over\":%llu},",
                  health.lost ? "true" : "false",
                  health.quarantined ? "true" : "false",
                  static_cast<unsigned long long>(health.brownouts),
                  static_cast<unsigned long long>(health.quarantines),
                  static_cast<unsigned long long>(health.readmissions),
                  static_cast<unsigned long long>(health.lanes_failed_over));
    out += buf;
  }
  if (!qos.empty()) {
    out += "\"qos\":[";
    for (size_t i = 0; i < qos.size(); ++i) {
      const QosClassRollup& q = qos[i];
      if (i) out += ",";
      char buf[224];
      std::snprintf(buf, sizeof(buf),
                    "{\"class\":\"%s\",\"offered\":%llu,\"completed\":%llu,"
                    "\"slo_met\":%llu,\"attainment\":%.6f}",
                    qos_class_name(q.cls),
                    static_cast<unsigned long long>(q.ledger.offered),
                    static_cast<unsigned long long>(q.ledger.completed),
                    static_cast<unsigned long long>(q.ledger.slo_met),
                    q.ledger.attainment());
      out += buf;
    }
    out += "],";
  }
  out += "\"functions\":[";
  for (size_t i = 0; i < functions.size(); ++i) {
    const FunctionMetrics& m = functions[i];
    if (i) out += ",";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"function\":\"%s\",\"invocations\":%llu,"
                  "\"cold_boots\":%llu,\"phase_invocations\":[%llu,%llu,"
                  "%llu],\"total_charge\":%.6e,",
                  m.function.c_str(),
                  static_cast<unsigned long long>(m.invocations),
                  static_cast<unsigned long long>(m.cold_boots),
                  static_cast<unsigned long long>(m.phase_invocations[0]),
                  static_cast<unsigned long long>(m.phase_invocations[1]),
                  static_cast<unsigned long long>(m.phase_invocations[2]),
                  m.total_charge);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"recovery\":{\"faults\":%llu,\"retries\":%llu,"
                  "\"fallback_single_tier\":%llu,\"fallback_cold_boot\":%llu,"
                  "\"quarantines\":%llu,\"regenerations\":%llu,"
                  "\"breaker_suspended\":%llu,\"incomplete\":%llu},",
                  static_cast<unsigned long long>(m.recovered_faults),
                  static_cast<unsigned long long>(m.recovery_retries),
                  static_cast<unsigned long long>(m.fallbacks_single_tier),
                  static_cast<unsigned long long>(m.fallbacks_cold_boot),
                  static_cast<unsigned long long>(m.quarantines),
                  static_cast<unsigned long long>(m.regenerations),
                  static_cast<unsigned long long>(m.breaker_suspended),
                  static_cast<unsigned long long>(m.incomplete));
    out += buf;
    // The per-cause keys are the historical schema-2/5 names, one per
    // ShedCause, emitted in enum order (shed_cause_json_key).
    out += "\"overload\":{\"admitted\":" + std::to_string(m.admitted) + ",";
    for (size_t c = 0; c < kShedCauseCount; ++c) {
      out += "\"";
      out += shed_cause_json_key(static_cast<ShedCause>(c));
      out += "\":" + std::to_string(m.shed[c]) + ",";
    }
    char obuf[256];
    std::snprintf(obuf, sizeof(obuf),
                  "\"deadline_misses\":%llu,"
                  "\"demotions\":%llu,\"promotions\":%llu,"
                  "\"watchdog_trips\":%llu},",
                  static_cast<unsigned long long>(m.deadline_misses),
                  static_cast<unsigned long long>(m.demotions),
                  static_cast<unsigned long long>(m.promotions),
                  static_cast<unsigned long long>(m.watchdog_trips));
    out += obuf;
    if (m.qos != QosClass::kNone) {
      std::snprintf(obuf, sizeof(obuf),
                    "\"qos\":{\"class\":\"%s\",\"slo_slowdown\":%g,"
                    "\"offered\":%llu,\"completed\":%llu,\"slo_met\":%llu,"
                    "\"attainment\":%.6f},",
                    qos_class_name(m.qos), m.slo_slowdown,
                    static_cast<unsigned long long>(m.slo.offered),
                    static_cast<unsigned long long>(m.slo.completed),
                    static_cast<unsigned long long>(m.slo.slo_met),
                    m.slo.attainment());
      out += obuf;
    }
    append_histogram(out, "total_ns", m.total_ns);
    out += ",";
    append_histogram(out, "setup_ns", m.setup_ns);
    out += ",";
    append_histogram(out, "exec_ns", m.exec_ns);
    out += "}";
  }
  out += "],\"total_invocations\":";
  out += std::to_string(total_invocations());
  out += "}";
  return out;
}

}  // namespace toss
