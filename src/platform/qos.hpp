// QoS classes and the shed/SLO ledger vocabulary (DESIGN.md §14).
//
// Two things live here, deliberately together, because they are the two
// halves of SLO-driven graceful degradation:
//
//   - ShedCause: the typed reason a request was dropped instead of served.
//     Every shed counter in the system (OverloadStats, FunctionSeries,
//     FunctionMetrics) is an array indexed by this enum, so adding a cause
//     is one enum entry + one JSON name — not a new ad-hoc field at every
//     layer. ShedEvent (platform/host.hpp) carries the same enum.
//   - QosClass / QosSpec / QosAttainment: the per-function service class
//     (gold is protected through saturation, bronze absorbs degradation
//     first), its SLO slowdown target, and the per-class attainment ledger
//     metrics JSON schema 6 rolls up.
//
// Everything here is plain data decided at the engine's serial epoch
// barrier; toss_lint's determinism auditor roots at this header so no
// unordered iteration can leak into per-class rollups.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "util/units.hpp"

namespace toss {

/// Why a request was shed instead of served.
enum class ShedCause : u8 {
  kQueueFull = 0,     ///< per-lane queue at max_lane_queue
  kGlobalOverload,    ///< global queue bound trimmed the longest lane queue
  kAdmissionClosed,   ///< the arbiter closed admission (ladder rung C)
  kDeadlineExpired,   ///< deadline already past when the request was popped
  kHostLost,          ///< owning host crashed; shed at the failover barrier
};

/// Number of ShedCause values; sizes every per-cause counter array.
inline constexpr size_t kShedCauseCount = 5;

const char* shed_cause_name(ShedCause cause);

/// The historical per-cause counter key in metrics JSON ("shed_queue_full",
/// "shed_queue_global", ...). Distinct from shed_cause_name() — the JSON
/// names predate the enum and are frozen for artifact consumers.
const char* shed_cause_json_key(ShedCause cause);

/// Per-function service class. kNone (the default) keeps every scheduler
/// decision exactly as it was before QoS classes existed; gold/bronze
/// engage the QoS-aware degradation order end to end (EDF pop, bronze-
/// before-gold shedding and demotion, gold-first failover and readmission).
enum class QosClass : u8 {
  kNone = 0,  ///< unclassified: legacy behavior, no SLO derivation
  kGold,      ///< protected: degraded last, readmitted first
  kBronze,    ///< best-effort: absorbs demotion and shedding first
};

inline constexpr size_t kQosClassCount = 3;

const char* qos_class_name(QosClass cls);

/// Parse a trace-column / CLI spelling ("gold", "bronze", "none", "");
/// nullopt for anything else.
std::optional<QosClass> parse_qos_class(const std::string& text);

/// Default SLO slowdown target a class implies when the registration does
/// not set one explicitly: gold tolerates 10% over the DRAM-only baseline,
/// bronze 60%. kNone has no SLO (returns 0).
double qos_default_slo_slowdown(QosClass cls);

/// Shedding / demotion priority: lower ranks degrade first. Bronze (0)
/// before unclassified (1) before gold (2); used by the global queue
/// bound, the arbiter's demotion victim order and failover placement.
int qos_shed_rank(QosClass cls);

/// A function's resolved service class: the class plus its effective SLO
/// slowdown target (explicit, or the class default). Travels with the lane
/// across migration and failover.
struct QosSpec {
  QosClass cls = QosClass::kNone;
  double slo_slowdown = 0;  ///< 0 = no SLO target

  bool set() const { return cls != QosClass::kNone; }
  bool operator==(const QosSpec&) const = default;
};

/// Per-class SLO-attainment ledger (metrics JSON schema 6). Derived from
/// the per-lane OverloadStats at the serial barrier — no new hot-path
/// counter, so the overload scheduler's ledgers stay byte-identical.
struct QosAttainment {
  u64 offered = 0;    ///< arrivals that reached admission control
  u64 completed = 0;  ///< requests actually served
  u64 slo_met = 0;    ///< served within their deadline

  /// Fraction of offered work that met its SLO; 1 when nothing was offered.
  double attainment() const {
    return offered == 0
               ? 1.0
               : static_cast<double>(slo_met) / static_cast<double>(offered);
  }

  bool operator==(const QosAttainment&) const = default;
};

}  // namespace toss
