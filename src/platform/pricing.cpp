#include "platform/pricing.hpp"

#include <algorithm>

namespace toss {

u64 PricingPlan::bundle_mb(u64 required_mb) const {
  if (required_mb == 0) return bundle_step_mb;
  return (required_mb + bundle_step_mb - 1) / bundle_step_mb * bundle_step_mb;
}

double PricingPlan::dram_invocation_cost(u64 mem_mb, double duration_ms) const {
  return static_cast<double>(bundle_mb(mem_mb)) * dollars_per_mb_ms *
         duration_ms;
}

double PricingPlan::tiered_invocation_cost(u64 fast_mb, u64 slow_mb,
                                           double duration_ms) const {
  const double slow_price = dollars_per_mb_ms / cost_ratio;
  return (static_cast<double>(fast_mb) * dollars_per_mb_ms +
          static_cast<double>(slow_mb) * slow_price) *
         duration_ms;
}

double PricingPlan::saving_fraction(u64 fast_mb, u64 slow_mb,
                                    double duration_ms,
                                    double dram_duration_ms) const {
  const double dram = dram_invocation_cost(fast_mb + slow_mb,
                                           dram_duration_ms);
  if (dram <= 0.0) return 0.0;
  const double tiered = tiered_invocation_cost(fast_mb, slow_mb, duration_ms);
  return std::max(0.0, 1.0 - tiered / dram);
}

}  // namespace toss
