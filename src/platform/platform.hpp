// ServerlessPlatform: the end-to-end facade. Register functions with a
// snapshot policy (vanilla / REAP / FaaSnap / TOSS) and fire requests at
// them; the platform manages snapshots, working sets, TOSS lifecycles and
// per-function statistics. This is what the examples and integration tests
// drive.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "baseline/faasnap.hpp"
#include "baseline/reap.hpp"
#include "baseline/vanilla.hpp"
#include "core/toss.hpp"
#include "platform/invoker.hpp"
#include "platform/pricing.hpp"
#include "platform/request_gen.hpp"
#include "util/stats.hpp"

namespace toss {

enum class PolicyKind : u8 { kVanilla, kReap, kFaasnap, kToss };

const char* policy_name(PolicyKind kind);

struct InvocationOutcome {
  InvocationResult result;
  TossPhase toss_phase = TossPhase::kInitial;  ///< meaningful for kToss
  bool cold_boot = false;   ///< first-ever invocation (no snapshot yet)
  double charge = 0;        ///< $ for this invocation
};

struct FunctionStats {
  u64 invocations = 0;
  OnlineStats total_ns;
  OnlineStats setup_ns;
  OnlineStats exec_ns;
  double total_charge = 0;
};

class ServerlessPlatform {
 public:
  explicit ServerlessPlatform(SystemConfig cfg = SystemConfig::paper_default(),
                              PricingPlan pricing = {});

  /// Register a function under `kind`. TOSS options apply when kind==kToss.
  void register_function(FunctionSpec spec, PolicyKind kind,
                         TossOptions toss_options = {});

  /// Invoke by name. Unknown names throw std::out_of_range.
  InvocationOutcome invoke(const std::string& name, int input, u64 seed);

  /// Drive a whole request stream; returns the outcomes.
  std::vector<InvocationOutcome> run(const std::string& name,
                                     const std::vector<Request>& requests);

  const FunctionStats& stats(const std::string& name) const;
  const TossFunction* toss_state(const std::string& name) const;

  const SystemConfig& config() const { return cfg_; }
  SnapshotStore& store() { return store_; }
  const PricingPlan& pricing() const { return pricing_; }

 private:
  struct FunctionRuntime {
    FunctionModel model;
    PolicyKind kind;
    TossOptions toss_options;
    std::unique_ptr<TossFunction> toss;   // kToss only
    u64 snapshot_id = 0;                  // baselines
    std::optional<WorkingSet> ws;         // kReap / kFaasnap
    FunctionStats stats;
  };

  InvocationOutcome invoke_baseline(FunctionRuntime& rt, int input, u64 seed);
  double charge_for(const FunctionRuntime& rt,
                    const InvocationResult& result) const;

  SystemConfig cfg_;
  PricingPlan pricing_;
  SnapshotStore store_;
  Invoker invoker_;
  std::map<std::string, FunctionRuntime> functions_;
};

}  // namespace toss
