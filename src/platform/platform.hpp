// ServerlessPlatform: the end-to-end single-host facade. Register functions
// with a snapshot policy (vanilla / REAP / FaaSnap / TOSS) and fire requests
// at them; the platform manages snapshots, working sets, TOSS lifecycles and
// per-function statistics. PlatformEngine (platform/engine.hpp) composes
// many of these to drive a fleet concurrently.
//
// Public-surface rules (see DESIGN.md "Public API"):
//   - registration goes through the FunctionRegistration builder, which
//     validates options up front and returns Result<void>;
//   - fallible calls return Result<T>; reference accessors throw
//     toss::Error (never raw std::out_of_range);
//   - the pre-builder register_function(spec, kind, options) shim is gone,
//     and so are the Tier::kFast/kSlow index aliases (mem/tier.hpp): the
//     platform carries no deprecation surface at all.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/faasnap.hpp"
#include "baseline/reap.hpp"
#include "baseline/vanilla.hpp"
#include "core/toss.hpp"
#include "platform/errors.hpp"
#include "platform/invoker.hpp"
#include "platform/pricing.hpp"
#include "platform/qos.hpp"
#include "platform/recovery.hpp"
#include "platform/request_gen.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace toss {

enum class PolicyKind : u8 { kVanilla, kReap, kFaasnap, kToss };

const char* policy_name(PolicyKind kind);

struct InvocationOutcome {
  InvocationResult result;
  TossPhase toss_phase = TossPhase::kInitial;  ///< meaningful for kToss
  /// First-ever invocation (no snapshot yet) — or one that fell all the
  /// way down the recovery ladder to a cold start.
  bool cold_boot = false;
  double charge = 0;        ///< $ for this invocation
  /// Recovery ledger for this invocation; all-default when nothing failed.
  RecoveryInfo recovery;
};

struct FunctionStats {
  u64 invocations = 0;
  OnlineStats total_ns;
  OnlineStats setup_ns;
  OnlineStats exec_ns;
  double total_charge = 0;
  // Recovery aggregates (all zero unless faults were injected).
  u64 recovered_faults = 0;   ///< injected faults invocations tripped over
  u64 recovery_retries = 0;   ///< extra attempts spent across invocations
  u64 fallbacks = 0;          ///< invocations served below the intended rung
  u64 quarantines = 0;        ///< tiered artifacts quarantined
  u64 regenerations = 0;      ///< quarantined artifacts rebuilt (Step V)
  u64 incomplete = 0;         ///< invocations that exhausted every rung
};

/// Builder for one function registration. Chain setters, then hand it to
/// ServerlessPlatform::register_function / PlatformEngine::add, which run
/// validate() and reject nonsense (bin_count < 1, stability window larger
/// than the profiling budget, ...) instead of silently accepting it.
class FunctionRegistration {
 public:
  explicit FunctionRegistration(FunctionSpec spec) : spec_(std::move(spec)) {}

  FunctionRegistration& policy(PolicyKind kind) {
    kind_ = kind;
    return *this;
  }
  /// TOSS knobs; only meaningful under PolicyKind::kToss.
  FunctionRegistration& toss(TossOptions options) {
    toss_options_ = std::move(options);
    return *this;
  }
  /// Declared per-function concurrency limit. The engine serializes each
  /// function's state machine, so values > 1 are accepted for forward
  /// compatibility but currently behave as 1.
  FunctionRegistration& concurrency(int n) {
    concurrency_ = n;
    return *this;
  }
  /// Seed for the function's deterministic RNG streams (DAMON noise, ...).
  FunctionRegistration& seed(u64 s) {
    seed_ = s;
    return *this;
  }
  /// Recovery ladder retry policy (applies to every policy kind; for kToss
  /// this sets TossOptions::retry).
  FunctionRegistration& retry(RetryPolicy r) {
    toss_options_.retry = r;
    return *this;
  }
  /// Per-function circuit breaker for the tiered path (kToss only).
  FunctionRegistration& breaker(CircuitBreakerOptions options) {
    breaker_ = options;
    return *this;
  }
  /// QoS class (DESIGN.md §14). Gold lanes are degraded last and readmitted
  /// first; bronze absorb demotion and shedding. Setting a class also fills
  /// the SLO slowdown target with the class default unless slo() set one.
  /// For kToss lanes without an explicit slowdown_threshold, Step III
  /// derives the threshold from the SLO (TossOptions::slo_slowdown).
  FunctionRegistration& qos(QosClass cls) {
    qos_class_ = cls;
    if (!toss_options_.slo_slowdown && cls != QosClass::kNone)
      toss_options_.slo_slowdown = qos_default_slo_slowdown(cls);
    return *this;
  }
  /// Explicit SLO slowdown target (e.g. 0.10 for "within 10% of DRAM").
  /// Overrides the class default in either call order.
  FunctionRegistration& slo(double slowdown) {
    toss_options_.slo_slowdown = slowdown;
    return *this;
  }

  /// All registration-time invariants in one place.
  Result<void> validate() const;

  const FunctionSpec& spec() const { return spec_; }
  PolicyKind policy() const { return kind_; }
  const TossOptions& toss_options() const { return toss_options_; }
  int concurrency() const { return concurrency_; }
  u64 seed() const { return seed_; }
  const CircuitBreakerOptions& breaker_options() const { return breaker_; }
  /// Resolved service class + effective SLO slowdown target.
  QosSpec qos_spec() const {
    return QosSpec{qos_class_, toss_options_.slo_slowdown.value_or(0)};
  }

 private:
  FunctionSpec spec_;
  PolicyKind kind_ = PolicyKind::kToss;
  TossOptions toss_options_;
  int concurrency_ = 1;
  u64 seed_ = 42;
  CircuitBreakerOptions breaker_;
  QosClass qos_class_ = QosClass::kNone;
};

class ServerlessPlatform {
 public:
  /// `faults` arms deterministic fault injection against this host's
  /// snapshot store. An empty plan (the default) attaches nothing; in
  /// builds without -DTOSS_FAULTS=ON any plan is inert.
  explicit ServerlessPlatform(SystemConfig cfg = SystemConfig::paper_default(),
                              PricingPlan pricing = {}, FaultPlan faults = {});

  /// Validate and register. Fails with kInvalidOptions or
  /// kDuplicateFunction; on failure the platform is unchanged.
  Result<void> register_function(const FunctionRegistration& registration);

  /// Invoke by name. Unknown names yield ErrorCode::kUnknownFunction;
  /// inputs outside [0, kNumInputs) yield kInvalidRequest.
  Result<InvocationOutcome> invoke(const std::string& name, int input,
                                   u64 seed);

  /// Drive a whole request stream; returns the outcomes, or the first
  /// error (partial work is kept in stats()).
  Result<std::vector<InvocationOutcome>> run(const std::string& name,
                                             const std::vector<Request>& requests);

  /// Throws toss::Error(kUnknownFunction) for unregistered names.
  const FunctionStats& stats(const std::string& name) const;
  /// nullptr for unknown names or non-TOSS functions.
  const TossFunction* toss_state(const std::string& name) const;
  /// Mutable variant, for the overload arbiter's retier() hook.
  TossFunction* toss_state_mutable(const std::string& name);

  /// Per-tier bytes one invocation of `name` pins while running (DESIGN.md
  /// §9). TOSS functions delegate to TossFunction's phase-aware accounting;
  /// baselines always restore the whole image into DRAM. Unknown names
  /// report zeros. `per_tier[r]` is the bytes pinned in ladder rank r
  /// (sized to the host's tier_count); `fast`/`slow` are the rank-0 /
  /// everything-below-rank-0 rollups.
  struct ResidentBytes {
    u64 fast = 0;
    u64 slow = 0;
    std::vector<u64> per_tier;
  };
  ResidentBytes resident_bytes(const std::string& name) const;

  /// Watchdog hook: force the function's circuit breaker open. Returns
  /// false for unknown names.
  bool trip_breaker(const std::string& name);
  /// nullptr for unknown names.
  const CircuitBreaker* breaker(const std::string& name) const;
  /// nullptr unless a non-empty FaultPlan was attached at construction.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  const SystemConfig& config() const { return cfg_; }
  SnapshotStore& store() { return store_; }
  const PricingPlan& pricing() const { return pricing_; }

 private:
  struct FunctionRuntime {
    FunctionModel model;
    PolicyKind kind;
    TossOptions toss_options;
    std::unique_ptr<TossFunction> toss;   // kToss only
    u64 snapshot_id = 0;                  // baselines
    std::optional<WorkingSet> ws;         // kReap / kFaasnap
    FunctionStats stats;
    CircuitBreaker breaker;
    /// Backoff jitter for the baseline recovery path; separate stream so
    /// the fault-free path stays bit-identical.
    Rng recovery_rng{0};
  };

  InvocationOutcome invoke_baseline(FunctionRuntime& rt, int input, u64 seed);
  double charge_for(const FunctionRuntime& rt,
                    const InvocationResult& result) const;

  SystemConfig cfg_;
  PricingPlan pricing_;
  SnapshotStore store_;
  Invoker invoker_;
  /// Owns the injector the store points at; null when no plan is armed.
  std::unique_ptr<FaultInjector> injector_;
  std::map<std::string, FunctionRuntime> functions_;
};

}  // namespace toss
