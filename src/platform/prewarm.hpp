// Prediction-based prewarming, the second composition Section VI-A
// sketches: "[for policies that] predict the request patterns to set up
// the function before the next invocation, TOSS can load the VM before the
// predicted function execution".
//
// The predictor is the windowed inter-arrival histogram of Shahrad et al.
// (ATC'20, "Serverless in the Wild"): per function, bucket recent
// inter-arrival times and schedule the prewarm a safety margin before the
// modal bucket. When the prediction lands, the restore cost is hidden; the
// invocation pays only max(0, setup_remaining).
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"

namespace toss {

struct PrewarmConfig {
  /// Histogram bucket width for inter-arrival times.
  Nanos bucket_ns = sec(1);
  u64 bucket_count = 240;  ///< up to 4 minutes of inter-arrival range
  /// Start the restore this fraction of the predicted gap early.
  double safety_margin = 0.10;
  /// Minimum observations before predictions are attempted.
  u64 min_samples = 4;
};

/// Inter-arrival predictor for one function.
class ArrivalPredictor {
 public:
  explicit ArrivalPredictor(PrewarmConfig cfg = {});

  /// Record an invocation at absolute time `now_ns`.
  void observe(Nanos now_ns);

  /// Predicted next arrival (absolute time), if confident.
  std::optional<Nanos> predicted_next() const;

  /// When the platform should begin restoring (prediction minus margin).
  std::optional<Nanos> prewarm_at() const;

  u64 samples() const { return samples_; }

 private:
  PrewarmConfig cfg_;
  std::vector<u64> histogram_;
  std::optional<Nanos> last_arrival_;
  u64 samples_ = 0;
};

/// Latency accounting for a prewarmed invocation: given the actual arrival,
/// the time the restore started (if any) and the full setup cost, how much
/// setup the client still waits for.
Nanos visible_setup_ns(Nanos arrival_ns, std::optional<Nanos> restore_start,
                       Nanos setup_ns);

}  // namespace toss
