// Typed errors for the public platform API.
//
// The definitions moved to util/error.hpp so the vmm-layer failure domains
// (snapshot store, VM restore) can throw toss::Error without a layering
// inversion; this header remains the platform-facing spelling.
#pragma once

#include "util/error.hpp"
