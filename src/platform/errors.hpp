// Typed errors for the public platform API.
//
// The redesigned surface never leaks raw std::out_of_range from internal
// containers: fallible operations return Result<T> (an std::expected-style
// value-or-error), and reference-returning accessors throw toss::Error with
// a machine-readable code. Result<T>::value() throws the same Error, so
// callers can choose between explicit checking and exception style without
// losing the code.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/units.hpp"

namespace toss {

enum class ErrorCode : u8 {
  kUnknownFunction,    ///< name not registered
  kDuplicateFunction,  ///< name already registered
  kInvalidOptions,     ///< registration failed validation
  kInvalidRequest,     ///< malformed invocation parameters
  kEngineBusy,         ///< engine already ran / stream already consumed
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknownFunction: return "unknown_function";
    case ErrorCode::kDuplicateFunction: return "duplicate_function";
    case ErrorCode::kInvalidOptions: return "invalid_options";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kEngineBusy: return "engine_busy";
  }
  return "?";
}

/// The one exception type the public API throws.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Value-or-Error. Engagement is mandatory: value() on an error throws the
/// carried Error; ok()/operator bool gate the explicit-checking style.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw Error(code_, message_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw Error(code_, message_);
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// Only meaningful when !ok().
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  std::optional<T> value_;
  ErrorCode code_ = ErrorCode::kInvalidRequest;
  std::string message_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ErrorCode code, std::string message)
      : failed_(true), code_(code), message_(std::move(message)) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  /// Throw the carried Error when failed; no-op on success.
  void value() const {
    if (failed_) throw Error(code_, message_);
  }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  bool failed_ = false;
  ErrorCode code_ = ErrorCode::kInvalidRequest;
  std::string message_;
};

}  // namespace toss
