// Per-lane circuit breaker for the self-healing snapshot path.
//
// The recovery ladder in core/toss.cpp handles individual failures; the
// breaker handles *persistent* ones. When consecutive invocations keep
// engaging recovery (retries, fallbacks, a quarantine), the breaker opens
// and the lane stops hammering the failing tiered path: TossFunction is
// told to serve from the retained single-tier snapshot and to hold off
// Step III re-analysis. After a cooldown the breaker half-opens, lets one
// probe invocation through, and closes again only if the probe is clean.
//
// All state advances per *invocation*, never per wall-clock second — the
// engine's determinism guarantee (same results for any thread count) rules
// out real time, and the toss_lint nondeterminism rule enforces that.
#pragma once

#include "util/fault.hpp"
#include "util/units.hpp"

namespace toss {

struct CircuitBreakerOptions {
  /// Consecutive recovery-engaged invocations before the breaker opens.
  u32 failure_threshold = 3;
  /// Suspended invocations served before the half-open probe.
  u32 cooldown_invocations = 8;
};

class CircuitBreaker {
 public:
  enum class State : u8 { kClosed = 0, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Consulted before an invocation: true while the breaker is open (the
  /// half-open probe runs unsuspended).
  bool should_suspend() const { return state_ == State::kOpen; }

  /// Fed after every invocation. `degraded` = the invocation engaged the
  /// recovery ladder (retries, fallback, or a quarantine).
  void observe(bool degraded);

  /// Force the breaker open regardless of the failure streak — the engine
  /// watchdog trips a lane whose chunk blew its simulated-time budget.
  /// No-op while already open (the trip is counted only on a transition).
  void trip();

  State state() const { return state_; }
  /// Times the breaker transitioned closed/half-open -> open.
  u64 opened_count() const { return opened_count_; }

 private:
  void open();

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  u32 consecutive_failures_ = 0;
  u32 cooldown_left_ = 0;
  u64 opened_count_ = 0;
};

const char* breaker_state_name(CircuitBreaker::State state);

}  // namespace toss
