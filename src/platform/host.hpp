// Host: one simulated serverless host — the lane fleet, both schedulers
// (legacy chunked round-robin and the epoch-barrier overload path), the
// bounded admission queues and the per-host fast-tier arbiter, extracted
// from PlatformEngine so a ClusterEngine (platform/cluster.hpp) can compose
// many hosts. PlatformEngine (platform/engine.hpp) remains the thin
// single-host façade clients use.
//
// This header is platform-internal: nothing outside src/platform/ may
// include it directly (toss_lint's host-internal rule). Clients reach the
// shared types below through "platform/engine.hpp" or
// "platform/cluster.hpp".
//
// What changed relative to the single-shot engine:
//   - Drains are reusable. drain(threads) serves everything pending and
//     returns a *cumulative* report; enqueue() appends another request
//     batch to a retained lane (validated against the lane's existing
//     arrival tail) and the next drain continues from the retained lane
//     state — simulated clocks, arbiter rungs and every ledger persist
//     across drains.
//   - The arbiter and the epoch counter are host state, not run() locals,
//     so the graceful-degradation ladder keeps its rungs, its demotion
//     stack and its warm pool between drains.
//   - step_epoch() exposes one epoch of the overload scheduler so the
//     cluster can interleave epochs across hosts deterministically (hosts
//     stepped in index order, migrations decided at the serial
//     cluster barrier).
//   - Lanes can be extracted and adopted whole (cross-host migration).
//     Extraction leaves a null tombstone so lane indices — which key the
//     arbiter's rung bookkeeping — stay stable; adoption re-binds the
//     lane's metrics series to the destination registry.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/arbiter.hpp"
#include "platform/concurrency.hpp"
#include "platform/metrics.hpp"
#include "platform/platform.hpp"
#include "platform/prewarm.hpp"

namespace toss {

/// What a bounded lane queue sheds when full.
enum class DropPolicy : u8 {
  kTailDrop = 0,  ///< shed the newly arrived request
  kOldestDrop,    ///< shed the head of the queue, admit the newcomer
};

const char* drop_policy_name(DropPolicy policy);

/// One shed decision, carrying the typed ShedCause (platform/qos.hpp); part
/// of the determinism contract (the sequence is bit-identical for any
/// thread count at a fixed seed).
struct ShedEvent {
  size_t request_index = 0;  ///< index into the lane's request stream
  ShedCause cause = ShedCause::kQueueFull;
  Nanos sim_ns = 0;  ///< lane-local simulated time of the decision

  bool operator==(const ShedEvent&) const = default;
};

/// The typed rejection a shed request would have surfaced to its caller.
Error shed_error(const std::string& function, const ShedEvent& event);

/// Per-lane admission/shedding ledger totals.
struct OverloadStats {
  u64 offered = 0;    ///< arrivals that reached admission control
  u64 admitted = 0;   ///< arrivals that entered the queue
  u64 completed = 0;  ///< requests actually served
  /// Per-cause shed counters, indexed by ShedCause (platform/qos.hpp).
  std::array<u64, kShedCauseCount> shed{};
  /// Served past their deadline (admitted, not shed, but SLO-late).
  u64 deadline_misses = 0;
  u64 demotions = 0;   ///< arbiter re-tiered this lane down a rung
  u64 promotions = 0;  ///< arbiter re-tiered this lane back up
  u64 watchdog_trips = 0;
  size_t queue_peak = 0;  ///< high-water mark of the lane queue

  u64 shed_by(ShedCause cause) const {
    return shed[static_cast<size_t>(cause)];
  }
  u64 total_shed() const {
    u64 total = 0;
    for (u64 v : shed) total += v;
    return total;
  }

  bool operator==(const OverloadStats&) const = default;
};

struct EngineOptions {
  /// Worker threads for run()/drain(); 0 = ThreadPool::hardware_threads().
  int threads = 0;
  /// Requests a worker processes per lane ownership (>= 1).
  int chunk = 8;
  /// Keep every InvocationOutcome in the report (in request order).
  bool keep_outcomes = true;
  /// Fault plan for the chaos harness. Each lane derives an independent
  /// injector seeded by (fault_plan.seed, lane name), so the fault sequence
  /// a lane sees is identical for any thread count. Inert unless the build
  /// sets -DTOSS_FAULTS=ON.
  FaultPlan fault_plan;

  // ---- Overload protection (any non-default knob engages the
  // epoch-barrier scheduler; all defaults = legacy unbounded behavior) ----

  /// Bound on each lane's admitted-but-unserved queue; 0 = unbounded.
  size_t max_lane_queue = 0;
  /// Bound on the host-wide sum of lane queue depths; 0 = unbounded.
  size_t max_global_queue = 0;
  DropPolicy drop_policy = DropPolicy::kTailDrop;
  /// Shed queued requests whose Request::deadline_ns already passed
  /// instead of wasting a restore on SLO-dead work.
  bool enforce_deadlines = false;
  /// Watchdog: when one lane chunk's simulated service time exceeds this
  /// bound, the lane's circuit breaker is tripped open. 0 = off.
  Nanos watchdog_chunk_budget_ns = 0;
  /// Host fast-tier budget arbiter (platform/arbiter.hpp).
  ArbiterOptions arbiter;
  /// Keep per-lane ShedEvent ledgers in the report.
  bool keep_shed_events = true;

  bool overload_protection() const {
    return max_lane_queue > 0 || max_global_queue > 0 || enforce_deadlines ||
           watchdog_chunk_budget_ns > 0 || arbiter.enabled;
  }
};

struct FunctionReport {
  std::string name;
  PolicyKind policy = PolicyKind::kToss;
  FunctionStats stats;
  TossPhase final_phase = TossPhase::kInitial;  ///< kToss lanes only
  /// Request-order outcomes; empty unless EngineOptions::keep_outcomes.
  std::vector<InvocationOutcome> outcomes;
  /// Admission/shedding ledger; all-zero under the legacy scheduler.
  OverloadStats overload;
  /// Shed decisions in decision order; empty unless keep_shed_events and
  /// the overload scheduler ran.
  std::vector<ShedEvent> shed_events;
};

struct EngineReport {
  std::vector<FunctionReport> functions;  ///< registration order
  Nanos wall_ns = 0;   ///< real elapsed drain time, summed over drains
  int threads = 1;
  /// Times a lane was observed concurrently re-entered. Always 0; exposed
  /// so tests assert the serialization guarantee instead of trusting it.
  u64 serialization_violations = 0;
  MetricsSnapshot metrics;
  /// Host arbiter ledger; all-default unless EngineOptions::arbiter.enabled.
  ArbiterReport arbiter;

  u64 total_invocations() const;
  u64 total_shed() const;
  const FunctionReport* find(const std::string& name) const;
};

/// One epoch's parallel phase, computed at the serial plan step: which lane
/// slots run a chunk and the admission-gate snapshot each one sees. The
/// split exists so a ClusterEngine can plan every host serially, flatten
/// all hosts' (plan, k) pairs into ONE LaneExecutor round — no nested
/// parallelism — and then run each host's serial barrier in host-index
/// order (DESIGN.md §15).
struct EpochPlan {
  std::vector<size_t> active;  ///< lane slot indices with work this epoch
  std::vector<char> closed;    ///< per-active-lane admission-gate snapshot
  bool empty() const { return active.empty(); }
};

/// One request batch for a retained lane, for PlatformEngine::drain /
/// Host::enqueue.
struct LaneBatch {
  std::string function;
  std::vector<Request> requests;
};
using RequestBatch = std::vector<LaneBatch>;

/// One lane: an isolated single-function host plus its request stream and
/// every per-lane ledger. Owned by a Host; moved whole between hosts on
/// migration (lanes share no state, so the unique_ptr move is the entire
/// data-plane transfer — the simulated snapshot copy cost is charged to
/// sim_now by the cluster).
struct HostLane {
  std::string name;
  PolicyKind policy = PolicyKind::kToss;
  /// Isolated host: lane-local snapshot store, page cache and stats, so
  /// no cross-lane state can make results depend on scheduling.
  std::unique_ptr<ServerlessPlatform> host;
  std::vector<Request> requests;
  size_t next = 0;
  std::vector<InvocationOutcome> outcomes;
  FunctionSeries* series = nullptr;
  std::atomic<int> in_flight{0};

  // Overload-scheduler state (untouched on the legacy path).
  std::deque<size_t> queue;  ///< admitted, unserved request indices
  size_t arrived = 0;        ///< requests[0..arrived) reached admission
  Nanos sim_now = 0;         ///< lane-local simulated clock
  Nanos last_setup_ns = 0;   ///< keep-alive cold-cost estimate
  OverloadStats overload;
  std::vector<ShedEvent> shed_events;
  bool finish_reported = false;  ///< keep-alive insert happened
  int rung = 0;                  ///< arbiter demotion rung
  /// Service class + effective SLO slowdown target (DESIGN.md §14); the
  /// default (kNone) leaves every scheduler decision on the legacy path.
  QosSpec qos;
  /// Inter-arrival predictor fed by admitted arrivals; the arbiter tick
  /// turns its prediction into a warm-demand hint (prewarm handshake).
  ArrivalPredictor predictor;

  bool drained() const { return arrived >= requests.size() && queue.empty(); }
};

class Host {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  explicit Host(std::string name,
                SystemConfig cfg = SystemConfig::paper_default(),
                PricingPlan pricing = {}, EngineOptions options = {});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  const EngineOptions& options() const { return options_; }

  /// Register a function and bind its (possibly empty) request stream.
  /// Validation mirrors ServerlessPlatform::register_function, plus every
  /// request input must be in [0, kNumInputs) and arrivals sorted.
  Result<void> add(const FunctionRegistration& registration,
                   std::vector<Request> requests);

  /// Append another batch to a retained lane. The batch must be internally
  /// sorted and must not arrive before the lane's existing tail (the
  /// simulated clock only moves forward). kUnknownFunction for absent or
  /// migrated-away lanes.
  Result<void> enqueue(const std::string& function,
                       std::vector<Request> requests);

  /// Live (non-migrated) lanes.
  size_t function_count() const;
  /// Every live lane has served everything that has been enqueued so far.
  bool idle() const;

  /// Serve everything pending and return the cumulative report (stats,
  /// outcomes and ledgers since construction, across all drains).
  /// Reusable: enqueue more work and drain again. threads <= 0 = hardware
  /// concurrency. A lane failure is sticky: the error is returned now and
  /// on every later drain.
  Result<EngineReport> drain(int threads);

  /// One epoch of the overload scheduler: a parallel chunk per active lane
  /// (inline when executor is null), then the serial barrier (global queue
  /// bound, arbiter tick). No-op when idle. Composes the three phases
  /// below; the cluster calls the phases directly so it can run many
  /// hosts' lanes in one executor round.
  Result<void> step_epoch(LaneExecutor* executor);

  /// Serial plan phase: the active-lane set and the admission-gate
  /// snapshot every lane of this epoch will see. Empty plan when idle.
  /// Sticky lane failures surface here (and on every later call).
  Result<EpochPlan> plan_epoch();
  /// Parallel phase, safe to run concurrently across k (and across hosts):
  /// one chunk of the k-th planned lane, touching lane-local state only.
  void run_planned_lane(const EpochPlan& plan, size_t k);
  /// Serial barrier phase: cross-lane decisions (global queue bound,
  /// arbiter ladder) in lane slot order, then the epoch counter. Must be
  /// called exactly once after the parallel phase of a non-empty plan.
  Result<void> finish_epoch();

  /// Epochs the overload scheduler has completed since construction.
  u64 epochs() const { return epoch_; }

  // ---- Cluster hooks (placement / migration) ----

  /// Consecutive completed epochs with admission closed at the barrier —
  /// the cluster's migration trigger ("pinned at rung C for K epochs").
  int admission_closed_streak() const { return closed_streak_; }
  /// Hysteresis: the cluster resets the streak after acting on it.
  void reset_admission_streak() { closed_streak_ = 0; }

  /// Resolved fast-tier budget (options.arbiter.fast_budget_bytes, or the
  /// SystemConfig's installed fast-tier capacity when 0).
  u64 fast_budget_bytes() const;
  /// The arbiter's current fleet accounting (warm pool + active lanes);
  /// 0 before the first arbiter tick.
  u64 arbiter_resident_fast_bytes() const;

  /// True once any lane carries a QoS class. Latches on add/adopt; every
  /// QoS-aware scheduler branch is gated on it so an unclassed host stays
  /// bit-identical to the pre-QoS ledgers (DESIGN.md §14).
  bool qos_engaged() const { return qos_engaged_; }

  /// Lane-slot count including migration tombstones; lane_at() returns
  /// nullptr for tombstones.
  size_t lane_count() const { return lanes_.size(); }
  const HostLane* lane_at(size_t index) const;

  /// Slot index of the un-drained tiered (migratable) lane with the most
  /// resident fast-tier bytes; npos when none. Ties break toward the
  /// lowest index — deterministic.
  size_t largest_tiered_lane() const;

  /// Remove a lane whole, leaving a null tombstone so the remaining slot
  /// indices (which key the arbiter's bookkeeping) stay stable.
  std::unique_ptr<HostLane> extract_lane(size_t index);

  /// Take ownership of a migrated lane: re-bind its metrics series to this
  /// host's registry and restore its unconstrained placement (the
  /// destination arbiter re-demotes it if the budget here disagrees).
  Result<void> adopt_lane(std::unique_ptr<HostLane> lane);

  // ---- Cluster hooks (failure domains) ----

  /// Failover adoption: adopt_lane() plus re-admission — the queue the lane
  /// carried off its dead host must fit this host's admission bounds, so
  /// overflow is shed as kHostLost under the configured drop policy.
  /// Returns the number of re-admitted requests via `requeued` and the
  /// number shed via `shed_count` (both optional).
  Result<void> adopt_failover_lane(std::unique_ptr<HostLane> lane,
                                   u64* requeued = nullptr,
                                   u64* shed_count = nullptr);

  /// Terminal shed for a crashed host with no survivors: every queued and
  /// not-yet-arrived request on every live lane is shed as kHostLost, so
  /// each request still resolves to exactly one typed outcome. The lanes
  /// become drained (idle() holds) but keep their ledgers for the report.
  /// Returns the number of requests shed.
  u64 abandon_pending(ShedCause cause = ShedCause::kHostLost);

  /// Brownout/straggle: inflate every live lane's simulated clock by
  /// `stall_ns`, modelling a host-wide slowdown for one epoch. Driven from
  /// the cluster's serial barrier, so it is deterministic by construction.
  void apply_brownout(Nanos stall_ns);

  /// Host health governance: while withdrawn, this host's arbiter treats
  /// its fast-tier budget as zero (see FastTierArbiter::set_budget_
  /// withdrawn). No-op when the arbiter is disabled.
  void set_budget_withdrawn(bool withdrawn);

  // ---- Introspection ----

  /// Live metrics for this host (snapshot tagged with the host name).
  MetricsSnapshot metrics() const;
  /// Lane state inspection (nullptr for unknown / non-TOSS lanes).
  const TossFunction* toss_state(const std::string& name) const;
  /// The lane's isolated single-function platform (nullptr for unknown
  /// names); exposes its snapshot store, fault injector and circuit
  /// breaker for chaos-suite introspection.
  const ServerlessPlatform* lane_host(const std::string& name) const;

  /// Cumulative report without draining (what drain() returns, minus the
  /// wall-clock update).
  EngineReport report(int threads) const;

 private:
  HostLane* find_lane(const std::string& name);
  const HostLane* find_lane(const std::string& name) const;
  Result<void> validate_requests(const std::string& name,
                                 const std::vector<Request>& requests) const;
  void record_error(ErrorCode code, std::string message);

  // Legacy chunked round-robin scheduler.
  void process_chunk(HostLane& lane);
  void scheduler_loop();
  void drain_legacy(int threads);

  // Epoch-barrier overload scheduler (DESIGN.md §9).
  void process_chunk_overload(HostLane& lane, bool admission_closed);
  void admit_arrivals(HostLane& lane, bool admission_closed);
  void shed(HostLane& lane, size_t request_index, ShedCause cause);
  void enforce_global_queue_bound();
  void arbiter_tick(FastTierArbiter& arbiter, u64 epoch);
  FastTierArbiter* ensure_arbiter();

  std::string name_;
  SystemConfig cfg_;
  PricingPlan pricing_;
  EngineOptions options_;
  std::vector<std::unique_ptr<HostLane>> lanes_;  ///< null = migrated away
  MetricsRegistry metrics_;
  /// Persistent across drains, so rungs / demote stack / warm pool /
  /// admission state survive between batches. Created lazily on the first
  /// epoch with the arbiter enabled.
  std::unique_ptr<FastTierArbiter> arbiter_;
  u64 epoch_ = 0;
  int closed_streak_ = 0;
  bool qos_engaged_ = false;  ///< any lane carries a QoS class
  Nanos wall_ns_ = 0;  ///< real time spent draining, summed

  // Scheduler state (valid during a drain). The mutex is rank-checked: a
  // worker holding it may still create metric series (the registry's
  // optimistic latch sits above kEngineScheduler in the ordering), but
  // the registry must never call back into the host.
  RankedMutex mu_{LockRank::kEngineScheduler, "Host::mu_"};
  std::condition_variable_any ready_cv_;
  std::deque<size_t> ready_;
  /// Workers blocked in ready_cv_.wait (guarded by mu_): notifies are
  /// skipped when nobody is parked, since a busy worker re-checks the
  /// queue under mu_ before it can sleep — this removes the O(workers)
  /// notify convoy the legacy scheduler paid per requeue.
  int waiting_workers_ = 0;
  size_t unfinished_ = 0;
  bool abort_ = false;
  std::atomic<u64> serialization_violations_{0};
  ErrorCode error_code_ = ErrorCode::kInvalidRequest;
  std::string error_message_;
  bool failed_ = false;
};

}  // namespace toss
