#include "platform/recovery.hpp"

#include <algorithm>

namespace toss {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  options_.failure_threshold = std::max<u32>(1, options_.failure_threshold);
  options_.cooldown_invocations =
      std::max<u32>(1, options_.cooldown_invocations);
}

void CircuitBreaker::open() {
  state_ = State::kOpen;
  cooldown_left_ = options_.cooldown_invocations;
  consecutive_failures_ = 0;
  ++opened_count_;
}

void CircuitBreaker::trip() {
  if (state_ == State::kOpen) return;
  open();
}

void CircuitBreaker::observe(bool degraded) {
  switch (state_) {
    case State::kClosed:
      if (degraded) {
        if (++consecutive_failures_ >= options_.failure_threshold) open();
      } else {
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // The lane served this invocation suspended; count down to the probe.
      if (--cooldown_left_ == 0) state_ = State::kHalfOpen;
      break;
    case State::kHalfOpen:
      // This invocation ran unsuspended as the probe.
      if (degraded) {
        open();
      } else {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
  }
}

const char* breaker_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "?";
}

}  // namespace toss
