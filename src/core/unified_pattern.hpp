// Unified access pattern file (Section V-B).
//
// TOSS merges every profiled invocation's DAMON record into one unified
// per-page pattern (per-page max, so intensity stays representative and the
// merge is idempotent). Profiling terminates once the unified pattern has
// been stable for N consecutive invocations.
#pragma once

#include "damon/record.hpp"
#include "trace/pattern.hpp"

namespace toss {

class UnifiedPattern {
 public:
  /// `change_epsilon`: merges that move the pattern by less than this
  /// normalized L1 distance count as "no change" for convergence purposes
  /// (DAMON sampling noise would otherwise never let the pattern settle).
  explicit UnifiedPattern(u64 num_pages, double change_epsilon = 0.02);

  /// Merge one invocation's record. Returns true if the unified pattern
  /// changed (beyond epsilon); the stable streak resets on change.
  bool add_record(const DamonRecord& record);

  /// Consecutive invocations that did not change the pattern.
  u64 stable_streak() const { return stable_streak_; }

  /// Number of records merged so far.
  u64 records_merged() const { return records_; }

  const PageAccessCounts& counts() const { return counts_; }
  u64 num_pages() const { return counts_.num_pages(); }

 private:
  PageAccessCounts counts_;
  double change_epsilon_;
  u64 stable_streak_ = 0;
  u64 records_ = 0;
};

}  // namespace toss
