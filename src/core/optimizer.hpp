// Placement optimizer (Section V-C, final stage of Step III).
//
// Every bin whose per-bin normalized cost is below 1 lowers the total
// memory cost and is placed deeper in the ladder. When the client supplies
// a slowdown threshold, candidate descents are taken in sweep order and
// applied until the threshold would be exceeded. The chosen configuration
// is a prefix of the bin profile's descent sequence, so each bin ends on
// its own rung (colder bins deeper) — with a two-tier ladder this
// degenerates to the paper's fast/slow split.
#pragma once

#include <optional>

#include "core/bin_profiler.hpp"

namespace toss {

class ThreadPool;

struct TieringOptions {
  int bin_count = 10;                         ///< paper: N = 10
  std::optional<double> slowdown_threshold;   ///< e.g. 0.10 for <= 10%
  /// QoS SLO target: derive the slowdown threshold from this instead of
  /// taking it as a given. When set and slowdown_threshold is not, Step III
  /// walks the Eq-1 cost curve to the cheapest configuration whose
  /// cumulative slowdown stays within the SLO and uses that configuration's
  /// slowdown as the effective threshold (recorded in
  /// TieringDecision::derived_threshold). An explicit slowdown_threshold
  /// always wins.
  std::optional<double> slo_slowdown;
  /// Optional pool for the bin-profiling sweep; nullptr = serial. The
  /// measured configurations are independent, so the decision is
  /// bit-identical with or without a pool.
  ThreadPool* profile_pool = nullptr;
  /// Hard cap on the fastest-tier bytes the placement may keep resident.
  /// The fleet arbiter re-enters Step IV with this bound to demote a
  /// function under DRAM pressure: the coldest-first sweep keeps pushing
  /// bins off rank 0 past the minimum-cost prefix — ignoring the slowdown
  /// threshold, since fitting the budget outranks the SLO preference under
  /// duress — until the fast residue fits. 0 forces rank 0 empty.
  std::optional<u64> max_fast_bytes;
  /// Tier floor (arbiter demotion rungs beyond the fast cap): no page may
  /// be placed above this ladder rank. 0 = no floor; ladder_size-1 pushes
  /// the whole image to the deepest rung. Clamped to the ladder.
  size_t min_tier_rank = 0;
  /// Continuous-demotion floor (RetierBound::min_descent_prefix): force the
  /// chosen configuration at least this many descents down the sweep, past
  /// whatever the threshold alone would pick. The QoS arbiter demotes a
  /// lane by re-tiering at the next TieringDecision::demotion_curve point.
  std::optional<size_t> min_descent_prefix;
};

/// One stop further down the Step-III descent sweep: the cheapest prefix at
/// a strictly smaller rank-0 (fastest tier) footprint than the point above
/// it. TieringDecision::demotion_curve lists these nearest-first; the QoS
/// arbiter's continuous demotion walks them instead of a fixed rung ladder.
struct CostCurvePoint {
  size_t prefix = 0;       ///< descents applied (sweep-order prefix length)
  u64 fast_bytes = 0;      ///< rank-0 bytes the placement would keep
  double slowdown = 0;     ///< cumulative slowdown at this prefix
  double cost = 0;         ///< cumulative Eq-1 normalized cost

  bool operator==(const CostCurvePoint&) const = default;
};

struct TieringDecision {
  PagePlacement placement;
  double expected_slowdown = 0;   ///< measured at the chosen configuration
  double normalized_cost = 1.0;   ///< Eq 1, normalized (DRAM-only = 1)
  double slow_fraction = 0;       ///< Table II's "slow tier percentage"
  std::vector<bool> offloaded;    ///< per bin index: below rank 0?
  std::vector<size_t> bin_rank;   ///< per bin index: chosen ladder rung
  /// Descents actually applied (after the threshold sweep, the fast-budget
  /// extension and the min_descent_prefix floor).
  size_t chosen_prefix = 0;
  /// Slowdown threshold derived from TieringOptions::slo_slowdown; unset
  /// when no SLO drove the selection.
  std::optional<double> derived_threshold;
  /// Demotion candidates below the chosen configuration, nearest first:
  /// for each strictly smaller rank-0 footprint reachable further down the
  /// sweep, the cheapest prefix at that footprint. Empty = fully descended.
  std::vector<CostCurvePoint> demotion_curve;
  BinProfile profile;             ///< kept for diagnostics and benches
};

/// SLO -> Eq-1 threshold derivation: the cumulative slowdown of the
/// cheapest sweep prefix whose slowdown stays within `slo_slowdown`
/// (`base_cost` is the prefix-0 / everything-fast cost; the walk mirrors
/// choose_placement and stops at the first step exceeding the SLO).
/// Returns 0 when no descent fits the SLO — the placement stays all-fast.
double derive_slowdown_threshold(const BinProfile& profile, double base_cost,
                                 double slo_slowdown);

/// Run the full analysis for a set of packed bins: bin profiling followed
/// by the minimum-cost (optionally slowdown-bounded) descent selection.
TieringDecision choose_placement(const SystemConfig& cfg,
                                 const std::vector<Bin>& bins,
                                 const RegionList& zero_regions,
                                 u64 guest_pages,
                                 const Invocation& representative,
                                 const TieringOptions& options);

/// Convenience: counts -> merged regions -> bins -> decision. This is the
/// complete "Profiling Analysis" step on a unified access pattern.
TieringDecision analyze_pattern(const SystemConfig& cfg,
                                const PageAccessCounts& unified,
                                const Invocation& representative,
                                const TieringOptions& options);

}  // namespace toss
