// Placement optimizer (Section V-C, final stage of Step III).
//
// Every bin whose per-bin normalized cost is below 1 lowers the total
// memory cost and is placed in the slow tier. When the client supplies a
// slowdown threshold, candidate bins are sorted by their slowdown and
// offloaded until the threshold would be exceeded.
#pragma once

#include <optional>

#include "core/bin_profiler.hpp"

namespace toss {

class ThreadPool;

struct TieringOptions {
  int bin_count = 10;                         ///< paper: N = 10
  std::optional<double> slowdown_threshold;   ///< e.g. 0.10 for <= 10%
  /// Optional pool for the bin-profiling sweep; nullptr = serial. The
  /// measured configurations are independent, so the decision is
  /// bit-identical with or without a pool.
  ThreadPool* profile_pool = nullptr;
  /// Hard cap on the fast-tier bytes the placement may keep resident. The
  /// fleet arbiter re-enters Step IV with this bound to demote a function
  /// under DRAM pressure: the coldest-first sweep keeps offloading bins
  /// past the minimum-cost prefix — ignoring the slowdown threshold, since
  /// fitting the budget outranks the SLO preference under duress — until
  /// the fast residue fits. 0 forces a fully slow placement.
  std::optional<u64> max_fast_bytes;
};

struct TieringDecision {
  PagePlacement placement;
  double expected_slowdown = 0;   ///< measured at the chosen configuration
  double normalized_cost = 1.0;   ///< Eq 1, normalized (DRAM-only = 1)
  double slow_fraction = 0;       ///< Table II's "slow tier percentage"
  std::vector<bool> offloaded;    ///< per bin index
  BinProfile profile;             ///< kept for diagnostics and benches
};

/// Run the full analysis for a set of packed bins: bin profiling followed
/// by the minimum-cost (optionally slowdown-bounded) bin selection.
TieringDecision choose_placement(const SystemConfig& cfg,
                                 const std::vector<Bin>& bins,
                                 const RegionList& zero_regions,
                                 u64 guest_pages,
                                 const Invocation& representative,
                                 const TieringOptions& options);

/// Convenience: counts -> merged regions -> bins -> decision. This is the
/// complete "Profiling Analysis" step on a unified access pattern.
TieringDecision analyze_pattern(const SystemConfig& cfg,
                                const PageAccessCounts& unified,
                                const Invocation& representative,
                                const TieringOptions& options);

}  // namespace toss
