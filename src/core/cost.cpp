#include "core/cost.hpp"

#include "util/contracts.hpp"

namespace toss {

double eq1_memory_cost(double slowdown_factor, double mb_fast, double mb_slow,
                       double cost_fast_per_mb, double cost_slow_per_mb) {
  TOSS_REQUIRE(slowdown_factor >= 1.0);
  return slowdown_factor *
         (mb_fast * cost_fast_per_mb + mb_slow * cost_slow_per_mb);
}

double normalized_memory_cost(double slowdown_factor, double slow_fraction,
                              double cost_ratio) {
  TOSS_REQUIRE(cost_ratio > 0.0);
  return slowdown_factor *
         ((1.0 - slow_fraction) + slow_fraction / cost_ratio);
}

double ladder_normalized_cost(double slowdown_factor,
                              const std::vector<double>& deep_fractions,
                              const std::vector<double>& cost_ratios) {
  TOSS_REQUIRE(deep_fractions.size() == cost_ratios.size());
  double deep = 0.0, discounted = 0.0;
  for (size_t i = 0; i < deep_fractions.size(); ++i) {
    TOSS_REQUIRE(cost_ratios[i] > 0.0);
    deep += deep_fractions[i];
    discounted += deep_fractions[i] / cost_ratios[i];
  }
  return slowdown_factor * ((1.0 - deep) + discounted);
}

double optimal_normalized_cost(double cost_ratio) { return 1.0 / cost_ratio; }

double bin_normalized_cost(double marginal_slowdown, double byte_fraction,
                           double cost_ratio) {
  return normalized_memory_cost(1.0 + marginal_slowdown, byte_fraction,
                                cost_ratio);
}

}  // namespace toss
