// Snapshot tiering (Step IV / Section V-D): partition the single-tier
// snapshot into one file per ladder rank + the memory layout file, and the
// restore policy that memory-maps them back.
#pragma once

#include "baseline/policy.hpp"
#include "core/optimizer.hpp"
#include "vmm/snapshot_store.hpp"

namespace toss {

/// Build a tiered snapshot from `snap` using `placement` and register it in
/// the store, with one tier file per rank of the store's configured ladder.
/// Returns the rank-0 (fast) file id — the tiered snapshot's handle.
u64 tier_snapshot(SnapshotStore& store, const SingleTierSnapshot& snap,
                  const PagePlacement& placement);

/// Estimated wall time of the analysis + tiering stage (Section V-C: a few
/// hundred ms for a 128 MB snapshot, a couple of seconds at 1 GB): the
/// serial copy of both tier files plus layout bookkeeping.
Nanos tiering_stage_ns(const SystemConfig& cfg, u64 guest_bytes);

/// TOSS restore: one mapping per layout entry. The rank-0 file stays pinned
/// in DRAM (it is precisely the fast-tier share the memory cost model
/// charges for) and every deeper rank's file is a DAX mapping of its
/// device, so no data moves at restore — setup is constant in snapshot
/// size and execution never waits on the snapshot disk.
class TossPolicy final : public RestorePolicy {
 public:
  TossPolicy(const SnapshotStore& store, u64 tiered_id);

  std::string name() const override { return "toss"; }
  RestorePlan plan_restore() const override;

 private:
  const SnapshotStore* store_;
  u64 tiered_id_;
};

}  // namespace toss
