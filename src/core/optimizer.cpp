#include "core/optimizer.hpp"

#include <algorithm>

#include "core/merge.hpp"

namespace toss {

TieringDecision choose_placement(const SystemConfig& cfg,
                                 const std::vector<Bin>& bins,
                                 const RegionList& zero_regions,
                                 u64 guest_pages,
                                 const Invocation& representative,
                                 const TieringOptions& options) {
  BinProfiler profiler(cfg);
  TieringDecision d;
  d.profile = profiler.profile(bins, zero_regions, guest_pages,
                               representative, options.profile_pool);
  d.offloaded.assign(bins.size(), false);

  // The progressive sweep offloads bins coldest-first; each step's
  // cumulative Eq 1 cost is the memory cost of stopping there. The
  // minimum-cost configuration is the prefix with the lowest cumulative
  // cost (Section V-C: every bin whose offload still lowered the cost ends
  // up in the slow tier). A slowdown threshold restricts the eligible
  // prefixes to those whose cumulative slowdown stays within bounds.
  size_t best_prefix = 0;  // number of offloaded bins; 0 = bins all fast
  double best_cost = 1.0;  // no bins offloaded: zero regions are free, so
                           // cost = slow_frac of zeros only — computed below
  {
    const double zero_cost = normalized_memory_cost(
        1.0, d.profile.base_placement.slow_fraction(), cfg.cost_ratio());
    best_cost = zero_cost;
  }
  for (size_t k = 0; k < d.profile.steps.size(); ++k) {
    const BinStep& s = d.profile.steps[k];
    if (options.slowdown_threshold &&
        s.cumulative_slowdown > *options.slowdown_threshold)
      break;
    if (s.cumulative_cost < best_cost) {
      best_cost = s.cumulative_cost;
      best_prefix = k + 1;
    }
  }

  // Fast-budget bound (the arbiter's demotion hook): extend the offload
  // prefix coldest-first until the fast-tier residue fits the cap.
  if (options.max_fast_bytes) {
    std::vector<u64> bin_pages(bins.size(), 0);
    for (size_t b = 0; b < bins.size(); ++b)
      for (const Region& r : bins[b].regions) bin_pages[b] += r.page_count;
    u64 fast_pages = d.profile.base_placement.pages_in(Tier::kFast);
    for (size_t k = 0; k < best_prefix; ++k)
      fast_pages -= bin_pages[d.profile.steps[k].bin_index];
    while (bytes_for_pages(fast_pages) > *options.max_fast_bytes &&
           best_prefix < d.profile.steps.size()) {
      fast_pages -= bin_pages[d.profile.steps[best_prefix].bin_index];
      ++best_prefix;
    }
  }

  // Apply: zero regions slow, the chosen prefix of bins slow, rest fast.
  d.placement = d.profile.base_placement;
  for (size_t k = 0; k < best_prefix; ++k) {
    const BinStep& s = d.profile.steps[k];
    d.offloaded[s.bin_index] = true;
    for (const Region& r : bins[s.bin_index].regions)
      d.placement.set_range(r.page_begin, r.page_count, Tier::kSlow);
  }

  const Nanos exec = profiler.warm_exec_ns(representative, d.placement);
  d.expected_slowdown =
      d.profile.base_exec_ns > 0
          ? std::max(0.0, exec / d.profile.base_exec_ns - 1.0)
          : 0.0;
  d.slow_fraction = d.placement.slow_fraction();
  d.normalized_cost = normalized_memory_cost(
      1.0 + d.expected_slowdown, d.slow_fraction, cfg.cost_ratio());
  return d;
}

TieringDecision analyze_pattern(const SystemConfig& cfg,
                                const PageAccessCounts& unified,
                                const Invocation& representative,
                                const TieringOptions& options) {
  const RegionList merged = regionize_and_merge(unified);
  const RegionList zeros = zero_access_regions(merged);
  const RegionList accessed = nonzero_access_regions(merged);
  const std::vector<Bin> bins =
      pack_equal_access(accessed, options.bin_count);
  return choose_placement(cfg, bins, zeros, unified.num_pages(),
                          representative, options);
}

}  // namespace toss
