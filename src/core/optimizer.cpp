#include "core/optimizer.hpp"

#include <algorithm>

#include "core/merge.hpp"

namespace toss {

double derive_slowdown_threshold(const BinProfile& profile, double base_cost,
                                 double slo_slowdown) {
  size_t best_prefix = 0;
  double best_cost = base_cost;
  for (size_t k = 0; k < profile.steps.size(); ++k) {
    const BinStep& s = profile.steps[k];
    if (s.cumulative_slowdown > slo_slowdown) break;
    if (s.cumulative_cost < best_cost) {
      best_cost = s.cumulative_cost;
      best_prefix = k + 1;
    }
  }
  return best_prefix == 0
             ? 0.0
             : profile.steps[best_prefix - 1].cumulative_slowdown;
}

TieringDecision choose_placement(const SystemConfig& cfg,
                                 const std::vector<Bin>& bins,
                                 const RegionList& zero_regions,
                                 u64 guest_pages,
                                 const Invocation& representative,
                                 const TieringOptions& options) {
  const size_t ranks = cfg.tier_count();
  const std::vector<double> ratios = cfg.rank_cost_ratios();
  BinProfiler profiler(cfg);
  TieringDecision d;
  d.profile = profiler.profile(bins, zero_regions, guest_pages,
                               representative, options.profile_pool);
  d.offloaded.assign(bins.size(), false);
  d.bin_rank.assign(bins.size(), 0);

  const double base_cost = ladder_normalized_cost(
      1.0, d.profile.base_placement.deep_fractions(ranks), ratios);

  // SLO -> threshold (DESIGN.md §14): a QoS class's SLO target picks the
  // cheapest configuration it admits, and that configuration's slowdown
  // becomes the effective Step-III threshold. An explicit threshold wins.
  std::optional<double> threshold = options.slowdown_threshold;
  if (!threshold && options.slo_slowdown) {
    d.derived_threshold =
        derive_slowdown_threshold(d.profile, base_cost, *options.slo_slowdown);
    threshold = d.derived_threshold;
  }

  // The progressive sweep pushes bins down the ladder coldest-first; each
  // step's cumulative Eq 1 cost is the memory cost of stopping there. The
  // minimum-cost configuration is the prefix with the lowest cumulative
  // cost (Section V-C: every descent that still lowered the cost is kept).
  // A slowdown threshold restricts the eligible prefixes to those whose
  // cumulative slowdown stays within bounds.
  size_t best_prefix = 0;  // number of applied descents; 0 = bins all fast
  double best_cost = base_cost;
  for (size_t k = 0; k < d.profile.steps.size(); ++k) {
    const BinStep& s = d.profile.steps[k];
    if (threshold && s.cumulative_slowdown > *threshold) break;
    if (s.cumulative_cost < best_cost) {
      best_cost = s.cumulative_cost;
      best_prefix = k + 1;
    }
  }

  // Rank-0 residue after each sweep prefix, in pages: only steps leaving
  // rank 0 shrink it. Feeds the fast-budget extension and the demotion
  // curve below.
  std::vector<u64> bin_pages(bins.size(), 0);
  for (size_t b = 0; b < bins.size(); ++b)
    for (const Region& r : bins[b].regions) bin_pages[b] += r.page_count;
  std::vector<u64> fast_after(d.profile.steps.size() + 1, 0);
  fast_after[0] = d.profile.base_placement.pages_in(tier_index(0));
  for (size_t k = 0; k < d.profile.steps.size(); ++k)
    fast_after[k + 1] =
        fast_after[k] - (d.profile.steps[k].from_rank == 0
                             ? bin_pages[d.profile.steps[k].bin_index]
                             : 0);

  // Fast-budget bound (the arbiter's demotion hook): extend the descent
  // prefix until the rank-0 residue fits the cap. Only pass-1 steps (rank
  // 0 -> 1) shrink the fast tier, and they all come first in sweep order,
  // so the extension resolves within pass 1.
  if (options.max_fast_bytes) {
    while (bytes_for_pages(fast_after[best_prefix]) > *options.max_fast_bytes &&
           best_prefix < d.profile.steps.size())
      ++best_prefix;
  }

  // Continuous-demotion floor: the QoS arbiter re-enters placement at the
  // next demotion_curve point, which outranks the threshold preference the
  // same way the fast-budget cap does.
  if (options.min_descent_prefix)
    best_prefix = std::max(
        best_prefix,
        std::min(*options.min_descent_prefix, d.profile.steps.size()));
  d.chosen_prefix = best_prefix;

  // Demotion curve: for each strictly smaller rank-0 footprint reachable
  // beyond the chosen prefix, the cheapest prefix at that footprint — the
  // "next local minimum" stops the QoS arbiter demotes through, nearest
  // first. Prefixes that do not shrink rank 0 cannot relieve fast-tier
  // pressure and are folded into their footprint level.
  u64 level_pages = fast_after[best_prefix];
  for (size_t k = best_prefix + 1; k <= d.profile.steps.size(); ++k) {
    if (fast_after[k] >= level_pages) continue;
    level_pages = fast_after[k];
    // Cheapest prefix at this footprint level (ties toward the shallowest).
    size_t cheapest = k;
    for (size_t j = k + 1;
         j <= d.profile.steps.size() && fast_after[j] == fast_after[k]; ++j)
      if (d.profile.steps[j - 1].cumulative_cost <
          d.profile.steps[cheapest - 1].cumulative_cost)
        cheapest = j;
    d.demotion_curve.push_back(
        CostCurvePoint{cheapest, bytes_for_pages(fast_after[k]),
                       d.profile.steps[cheapest - 1].cumulative_slowdown,
                       d.profile.steps[cheapest - 1].cumulative_cost});
  }

  // Apply: zero regions at the deepest rung, each bin on the rung its last
  // applied descent reached, the rest at rank 0.
  d.placement = d.profile.base_placement;
  for (size_t k = 0; k < best_prefix; ++k) {
    const BinStep& s = d.profile.steps[k];
    d.offloaded[s.bin_index] = true;
    d.bin_rank[s.bin_index] = s.to_rank;
    for (const Region& r : bins[s.bin_index].regions)
      d.placement.set_range(r.page_begin, r.page_count,
                            tier_index(s.to_rank));
  }

  // Tier floor: the arbiter's deeper demotion rungs forbid the upper part
  // of the ladder outright.
  const size_t floor_rank =
      std::min(options.min_tier_rank, ranks > 0 ? ranks - 1 : 0);
  if (floor_rank > 0) {
    d.placement.apply_floor(floor_rank);
    for (size_t b = 0; b < bins.size(); ++b) {
      d.bin_rank[b] = std::max(d.bin_rank[b], floor_rank);
      d.offloaded[b] = true;
    }
  }

  const Nanos exec = profiler.warm_exec_ns(representative, d.placement);
  d.expected_slowdown =
      d.profile.base_exec_ns > 0
          ? std::max(0.0, exec / d.profile.base_exec_ns - 1.0)
          : 0.0;
  d.slow_fraction = d.placement.slow_fraction();
  d.normalized_cost = ladder_normalized_cost(
      1.0 + d.expected_slowdown, d.placement.deep_fractions(ranks), ratios);
  return d;
}

TieringDecision analyze_pattern(const SystemConfig& cfg,
                                const PageAccessCounts& unified,
                                const Invocation& representative,
                                const TieringOptions& options) {
  const RegionList merged = regionize_and_merge(unified);
  const RegionList zeros = zero_access_regions(merged);
  const RegionList accessed = nonzero_access_regions(merged);
  const std::vector<Bin> bins =
      pack_equal_access(accessed, options.bin_count);
  return choose_placement(cfg, bins, zeros, unified.num_pages(),
                          representative, options);
}

}  // namespace toss
