#include "core/toss.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace toss {

TossFunction::TossFunction(const SystemConfig& cfg, SnapshotStore& store,
                           const FunctionModel& model, TossOptions options,
                           u64 seed)
    : cfg_(&cfg),
      store_(&store),
      model_(&model),
      options_(options),
      rng_(mix_seed(seed, model.name())),
      recovery_rng_(mix_seed(mix_seed(seed, model.name()), "recovery")),
      damon_(options.damon),
      reprofiler_(options.reprofile_budget) {}

const TieredSnapshot* TossFunction::tiered_snapshot() const {
  return tiered_id_ ? store_->get_tiered(tiered_id_) : nullptr;
}

u64 TossFunction::fast_resident_bytes() const {
  if (phase_ == TossPhase::kTiered)
    if (const TieredSnapshot* t = tiered_snapshot())
      return bytes_for_pages(t->fast_pages());
  // Single-tier restores and cold boots pin the whole image in DRAM.
  return model_->guest_bytes();
}

u64 TossFunction::slow_resident_bytes() const {
  if (phase_ == TossPhase::kTiered)
    if (const TieredSnapshot* t = tiered_snapshot())
      return bytes_for_pages(t->slow_pages());
  return 0;
}

u64 TossFunction::tier_resident_bytes(size_t rank) const {
  if (phase_ == TossPhase::kTiered)
    if (const TieredSnapshot* t = tiered_snapshot())
      return rank < t->tier_count() ? bytes_for_pages(t->tier_pages(rank))
                                    : 0;
  return rank == 0 ? model_->guest_bytes() : 0;
}

TossInvocationRecord TossFunction::handle(int input, u64 invocation_seed) {
  if (options_.drop_caches_between_invocations) store_->drop_caches();
  const Invocation inv = model_->invoke(input, invocation_seed);
  TossInvocationRecord rec;
  switch (phase_) {
    case TossPhase::kInitial:
      rec = handle_initial(inv);
      break;
    case TossPhase::kProfiling:
      rec = handle_profiling(inv);
      break;
    case TossPhase::kTiered:
      rec = handle_tiered(inv);
      break;
  }
  // Backoff is simulated time: charge it to setup so degradation under
  // injected faults is visible in end-to-end latency, not hidden.
  rec.result.setup.setup_ns += rec.recovery.overhead_ns;
  return rec;
}

TossFunction::AttemptStatus TossFunction::restore_execute_with_retry(
    MicroVm& vm, const RestorePlan& plan, const Invocation& inv,
    InvocationResult* out, RecoveryInfo* recovery) {
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++recovery->retries;
      recovery->overhead_ns +=
          options_.retry.backoff_ns(attempt - 1, recovery_rng_);
    }
    try {
      InvocationResult r;
      r.setup = vm.restore(plan);
      r.exec = vm.execute(inv.trace, inv.cpu_ns);
      *out = r;
      return AttemptStatus::kOk;
    } catch (const Error& e) {
      if (!is_transient(e.code())) return AttemptStatus::kBroken;
      ++recovery->faults_seen;
    }
  }
  return AttemptStatus::kExhausted;
}

bool TossFunction::boot_execute_with_retry(MicroVm& vm, const Invocation& inv,
                                           InvocationResult* out,
                                           RecoveryInfo* recovery) {
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++recovery->retries;
      recovery->overhead_ns +=
          options_.retry.backoff_ns(attempt - 1, recovery_rng_);
    }
    try {
      InvocationResult r;
      r.setup = vm.boot(model_->guest_bytes(), VmState{});
      r.exec = vm.execute(inv.trace, inv.cpu_ns);
      *out = r;
      return true;
    } catch (const Error& e) {
      ++recovery->faults_seen;
      if (!is_transient(e.code())) return false;
    }
  }
  return false;
}

void TossFunction::cold_boot_rung(MicroVm& vm, const Invocation& inv,
                                  TossInvocationRecord& rec) {
  rec.recovery.fallback = FallbackLevel::kColdBoot;
  if (!boot_execute_with_retry(vm, inv, &rec.result, &rec.recovery))
    rec.recovery.completed = false;
  // A cold start's authoritative contents are the fresh guest image.
  rec.recovery.expected_hash =
      hash_memory(GuestMemory(model_->guest_bytes()));
  rec.recovery.memory_hash = hash_memory(vm.memory());
}

void TossFunction::quarantine_and_rearm(RecoveryInfo* recovery) {
  if (tiered_id_ != 0) {
    store_->quarantine_tiered(tiered_id_);
    recovery->quarantined = store_->is_quarantined(tiered_id_);
  }
  // Step V, fault-driven: drop the damaged artifact and regress to
  // profiling so fresh DAMON records rebuild the tiered snapshot. The
  // unified pattern is retained, so the rebuild typically lands after one
  // additional profiled invocation.
  tiered_id_ = 0;
  regeneration_pending_ = true;
  phase_ = TossPhase::kProfiling;
}

TossInvocationRecord TossFunction::handle_initial(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kInitial;
  RecoveryInfo& rc = rec.recovery;

  // Step I: run in a DRAM-only guest, snapshot after execution completes.
  MicroVm vm(*cfg_, *store_);
  if (!boot_execute_with_retry(vm, inv, &rec.result, &rc)) {
    // Every attempt crashed mid-run. Report the failed invocation and stay
    // in Step I; the next invocation restarts it from scratch.
    rc.completed = false;
    rc.memory_hash = hash_memory(vm.memory());
    rc.expected_hash = rc.memory_hash;
    return rec;
  }
  vm.apply_writes(inv.trace);

  // Persist the Step-I snapshot. A torn write is retried; if every attempt
  // tears, the invocation still completes (the caller got its result) and
  // Step I re-runs wholesale next time.
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++rc.retries;
      rc.overhead_ns += options_.retry.backoff_ns(attempt - 1, recovery_rng_);
    }
    try {
      single_tier_id_ = vm.take_snapshot();
      rec.snapshot_created = true;
      break;
    } catch (const Error& e) {
      ++rc.faults_seen;
      if (!is_transient(e.code())) break;
    }
  }

  rc.memory_hash = hash_memory(vm.memory());
  if (rec.snapshot_created) {
    // Oracle: the persisted snapshot must round-trip the guest exactly.
    rc.expected_hash =
        hash_memory(store_->fetch_single_tier(single_tier_id_).materialize());
    unified_.emplace(model_->guest_pages(), options_.unified_change_epsilon);
    largest_ = Largest{inv.input, inv.seed, rec.result.exec.exec_ns};
    phase_ = TossPhase::kProfiling;
  } else {
    rc.expected_hash = rc.memory_hash;
  }
  return rec;
}

TossInvocationRecord TossFunction::handle_profiling(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kProfiling;
  RecoveryInfo& rc = rec.recovery;
  rc.breaker_suspended = suspended_;

  MicroVm vm(*cfg_, *store_);
  const SingleTierSnapshot* snap = store_->get_single_tier(single_tier_id_);
  AttemptStatus status = AttemptStatus::kBroken;
  if (snap != nullptr) {
    VanillaPolicy vanilla(*store_, single_tier_id_);
    status = restore_execute_with_retry(vm, vanilla.plan_restore(), inv,
                                        &rec.result, &rc);
  }
  if (status != AttemptStatus::kOk) {
    // No usable Step-I snapshot for this invocation: serve cold. DAMON is
    // skipped — it rides the restored snapshot — so profiling resumes on
    // the next successful restore.
    cold_boot_rung(vm, inv, rec);
    return rec;
  }

  // Step II: account DAMON's overhead on top of the measured execution.
  ExecutionResult exec = rec.result.exec;
  const PageAccessCounts true_counts =
      PageAccessCounts::from_trace(inv.trace, model_->guest_pages());
  const DamonOutput damon_out =
      damon_.monitor(true_counts, exec.exec_ns, rng_);
  exec.profiling_overhead_ns = damon_out.overhead_ns;
  exec.exec_ns += damon_out.overhead_ns;
  rec.result.exec = exec;
  ++damon_invocations_;

  rc.memory_hash = hash_memory(vm.memory());
  rc.expected_hash = hash_memory(snap->materialize());

  if (!largest_ || exec.exec_ns > largest_->exec_ns)
    largest_ = Largest{inv.input, inv.seed, exec.exec_ns};

  unified_->add_record(damon_out.record);
  const bool converged =
      unified_->stable_streak() >= options_.stable_invocations ||
      unified_->records_merged() >= options_.max_profiling_invocations;
  // While the circuit breaker holds the lane suspended, convergence does
  // not trigger re-analysis — no point rebuilding an artifact the lane
  // would refuse to restore from.
  if (converged && !suspended_ && run_analysis(&rc)) {
    rec.tiered_created = true;
    if (regeneration_pending_) {
      rc.regenerated = true;
      regeneration_pending_ = false;
    }
  }
  return rec;
}

TieringDecision TossFunction::analyze_now(const RetierBound& bound) const {
  TOSS_ASSERT(unified_ && largest_);
  // Step III on the unified pattern, profiled against the largest
  // (longest-running) invocation encountered while profiling.
  const Invocation representative =
      model_->invoke(largest_->input, largest_->seed);
  TieringOptions topt;
  topt.bin_count = options_.bin_count;
  topt.slowdown_threshold = options_.slowdown_threshold;
  topt.slo_slowdown = options_.slo_slowdown;
  topt.max_fast_bytes = bound.max_fast_bytes;
  topt.min_tier_rank = bound.min_tier_rank;
  topt.min_descent_prefix = bound.min_descent_prefix;
  // Analysis happens once per (re)profiling cycle, so a transient pool for
  // the bin sweep is cheap relative to the sweep itself.
  std::unique_ptr<ThreadPool> pool;
  if (options_.analysis_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.analysis_threads);
    topt.profile_pool = pool.get();
  }
  return analyze_pattern(*cfg_, unified_->counts(), representative, topt);
}

void TossFunction::arm_reprofiler() {
  // Arm the re-generation trigger (Eqs 2-4).
  std::vector<double> bin_slowdowns;
  bin_slowdowns.reserve(decision_->profile.steps.size());
  for (const BinStep& s : decision_->profile.steps)
    bin_slowdowns.push_back(s.marginal_slowdown);
  reprofiler_ = ReprofilePolicy(options_.reprofile_budget);
  reprofiler_.arm(damon_invocations_, bin_slowdowns, largest_->exec_ns,
                  std::max(0.0, decision_->profile.full_slow_slowdown() - 1.0));
}

bool TossFunction::run_analysis(RecoveryInfo* recovery) {
  decision_ = analyze_now(bound_);

  const SingleTierSnapshot* snap = store_->get_single_tier(single_tier_id_);
  TOSS_ASSERT(snap != nullptr);

  // Step IV with torn-write retry. On exhaustion the analysis is kept but
  // the function stays in profiling; the next convergence check re-attempts
  // persistence.
  u64 id = 0;
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts && id == 0; ++attempt) {
    if (attempt > 0) {
      ++recovery->retries;
      recovery->overhead_ns +=
          options_.retry.backoff_ns(attempt - 1, recovery_rng_);
    }
    try {
      id = tier_snapshot(*store_, *snap, decision_->placement);
    } catch (const Error& e) {
      ++recovery->faults_seen;
      if (!is_transient(e.code())) break;
    }
  }
  if (id == 0) return false;
  tiered_id_ = id;
  arm_reprofiler();
  phase_ = TossPhase::kTiered;
  return true;
}

bool TossFunction::retier(RetierBound bound) {
  if (phase_ != TossPhase::kTiered || !unified_ || !largest_) return false;
  const SingleTierSnapshot* snap = store_->get_single_tier(single_tier_id_);
  if (snap == nullptr) return false;

  TieringDecision d = analyze_now(bound);
  // Persist the re-placed artifact; bounded torn-write retry. No backoff is
  // charged anywhere — demotions run between requests at the engine's
  // epoch barrier, not inside an invocation — and recovery_rng_ is left
  // untouched so the lane's fault/backoff streams stay bit-identical to a
  // run without arbiter activity.
  u64 id = 0;
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts && id == 0; ++attempt) {
    try {
      id = tier_snapshot(*store_, *snap, d.placement);
    } catch (const Error& e) {
      if (!is_transient(e.code())) break;
    }
  }
  if (id == 0) return false;  // keep serving the current artifact
  tiered_id_ = id;
  decision_ = std::move(d);
  bound_ = bound;
  arm_reprofiler();
  return true;
}

TossInvocationRecord TossFunction::handle_tiered(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kTiered;
  RecoveryInfo& rc = rec.recovery;
  rc.breaker_suspended = suspended_;

  MicroVm vm(*cfg_, *store_);
  bool use_tiered = !suspended_;
  if (use_tiered) {
    // Fetch (which is where at-rest damage surfaces) and verify the layout
    // checksums before trusting the artifact for a restore.
    try {
      store_->fetch_tiered(tiered_id_);
      if (const Result<void> v = store_->verify_tiered(tiered_id_); !v.ok()) {
        ++rc.faults_seen;
        quarantine_and_rearm(&rc);
        use_tiered = false;
      }
    } catch (const Error&) {
      // Missing (or already quarantined): nothing to verify or restore.
      quarantine_and_rearm(&rc);
      use_tiered = false;
    }
  }

  if (use_tiered) {
    TossPolicy policy(*store_, tiered_id_);
    const AttemptStatus status = restore_execute_with_retry(
        vm, policy.plan_restore(), inv, &rec.result, &rc);
    if (status == AttemptStatus::kOk) {
      rc.memory_hash = hash_memory(vm.memory());
      // The retained Step-I snapshot is the authority the tiered restore
      // must reproduce bit-exactly.
      if (const SingleTierSnapshot* authority =
              store_->get_single_tier(single_tier_id_))
        rc.expected_hash = hash_memory(authority->materialize());
      else
        rc.expected_hash = rc.memory_hash;
      // While the arbiter holds a non-trivial bound, the extra slowdown is
      // intentional degradation, not access-pattern drift — re-profiling
      // would bounce the lane back to kProfiling (whose demand is the whole
      // guest image in DRAM), defeating the demotion. The trigger re-arms
      // when the bound is lifted by promotion.
      if (reprofiler_.observe(rec.result.exec.exec_ns) && bound_.trivial()) {
        // Drift detected: re-enter profiling. The unified pattern is kept
        // (the goal is to *enhance* the snapshot with the new behaviour)
        // but the stability requirement restarts via new record merges.
        rec.reprofile_triggered = true;
        phase_ = TossPhase::kProfiling;
      }
      return rec;
    }
    if (status == AttemptStatus::kBroken) {
      // Verified clean but the restore still found it unusable (e.g. a
      // truncation raced the verify pass): quarantine rather than retry.
      quarantine_and_rearm(&rc);
    }
  }

  // Single-tier rung: the retained Step-I snapshot.
  if (rc.fallback == FallbackLevel::kNone)
    rc.fallback = FallbackLevel::kSingleTier;
  if (store_->get_single_tier(single_tier_id_) != nullptr) {
    VanillaPolicy vanilla(*store_, single_tier_id_);
    if (restore_execute_with_retry(vm, vanilla.plan_restore(), inv,
                                   &rec.result, &rc) == AttemptStatus::kOk) {
      rc.memory_hash = hash_memory(vm.memory());
      rc.expected_hash = hash_memory(
          store_->fetch_single_tier(single_tier_id_).materialize());
      return rec;
    }
  }

  // Terminal rung: cold boot.
  cold_boot_rung(vm, inv, rec);
  return rec;
}

}  // namespace toss
