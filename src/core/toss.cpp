#include "core/toss.hpp"

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace toss {

TossFunction::TossFunction(const SystemConfig& cfg, SnapshotStore& store,
                           const FunctionModel& model, TossOptions options,
                           u64 seed)
    : cfg_(&cfg),
      store_(&store),
      model_(&model),
      options_(options),
      rng_(mix_seed(seed, model.name())),
      damon_(options.damon),
      reprofiler_(options.reprofile_budget) {}

const TieredSnapshot* TossFunction::tiered_snapshot() const {
  return tiered_id_ ? store_->get_tiered(tiered_id_) : nullptr;
}

TossInvocationRecord TossFunction::handle(int input, u64 invocation_seed) {
  if (options_.drop_caches_between_invocations) store_->drop_caches();
  const Invocation inv = model_->invoke(input, invocation_seed);
  switch (phase_) {
    case TossPhase::kInitial:
      return handle_initial(inv);
    case TossPhase::kProfiling:
      return handle_profiling(inv);
    case TossPhase::kTiered:
      return handle_tiered(inv);
  }
  return {};
}

TossInvocationRecord TossFunction::handle_initial(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kInitial;

  // Step I: run in a DRAM-only guest, snapshot after execution completes.
  MicroVm vm(*cfg_, *store_);
  rec.result.setup = vm.boot(model_->guest_bytes(), VmState{});
  rec.result.exec = vm.execute(inv.trace, inv.cpu_ns);
  vm.apply_writes(inv.trace);
  single_tier_id_ = vm.take_snapshot();
  rec.snapshot_created = true;

  unified_.emplace(model_->guest_pages(), options_.unified_change_epsilon);
  largest_ = Largest{inv.input, inv.seed, rec.result.exec.exec_ns};
  phase_ = TossPhase::kProfiling;
  return rec;
}

TossInvocationRecord TossFunction::handle_profiling(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kProfiling;

  // Step II: restore the single-tier snapshot, run with DAMON riding along.
  VanillaPolicy vanilla(*store_, single_tier_id_);
  MicroVm vm(*cfg_, *store_);
  rec.result.setup = vm.restore(vanilla.plan_restore());

  // Execute first (to know the execution time DAMON had available), then
  // account DAMON's overhead on top of it.
  ExecutionResult exec = vm.execute(inv.trace, inv.cpu_ns);
  const PageAccessCounts true_counts =
      PageAccessCounts::from_trace(inv.trace, model_->guest_pages());
  const DamonOutput damon_out =
      damon_.monitor(true_counts, exec.exec_ns, rng_);
  exec.profiling_overhead_ns = damon_out.overhead_ns;
  exec.exec_ns += damon_out.overhead_ns;
  rec.result.exec = exec;
  ++damon_invocations_;

  if (!largest_ || exec.exec_ns > largest_->exec_ns)
    largest_ = Largest{inv.input, inv.seed, exec.exec_ns};

  unified_->add_record(damon_out.record);
  const bool converged =
      unified_->stable_streak() >= options_.stable_invocations ||
      unified_->records_merged() >= options_.max_profiling_invocations;
  if (converged) {
    run_analysis();
    rec.tiered_created = true;
  }
  return rec;
}

void TossFunction::run_analysis() {
  TOSS_ASSERT(unified_ && largest_);
  // Steps III + IV on the unified pattern, profiled against the largest
  // (longest-running) invocation encountered while profiling.
  const Invocation representative =
      model_->invoke(largest_->input, largest_->seed);
  TieringOptions topt;
  topt.bin_count = options_.bin_count;
  topt.slowdown_threshold = options_.slowdown_threshold;
  // Analysis happens once per (re)profiling cycle, so a transient pool for
  // the bin sweep is cheap relative to the sweep itself.
  std::unique_ptr<ThreadPool> pool;
  if (options_.analysis_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.analysis_threads);
    topt.profile_pool = pool.get();
  }
  decision_ = analyze_pattern(*cfg_, unified_->counts(), representative, topt);

  const SingleTierSnapshot* snap = store_->get_single_tier(single_tier_id_);
  TOSS_ASSERT(snap != nullptr);
  tiered_id_ = tier_snapshot(*store_, *snap, decision_->placement);

  // Arm the re-generation trigger (Eqs 2-4).
  std::vector<double> bin_slowdowns;
  bin_slowdowns.reserve(decision_->profile.steps.size());
  for (const BinStep& s : decision_->profile.steps)
    bin_slowdowns.push_back(s.marginal_slowdown);
  reprofiler_ = ReprofilePolicy(options_.reprofile_budget);
  reprofiler_.arm(damon_invocations_, bin_slowdowns, largest_->exec_ns,
                  std::max(0.0, decision_->profile.full_slow_slowdown() - 1.0));
  phase_ = TossPhase::kTiered;
}

TossInvocationRecord TossFunction::handle_tiered(const Invocation& inv) {
  TossInvocationRecord rec;
  rec.phase = TossPhase::kTiered;

  TossPolicy policy(*store_, tiered_id_);
  MicroVm vm(*cfg_, *store_);
  rec.result.setup = vm.restore(policy.plan_restore());
  rec.result.exec = vm.execute(inv.trace, inv.cpu_ns);

  if (reprofiler_.observe(rec.result.exec.exec_ns)) {
    // Drift detected: re-enter profiling. The unified pattern is kept (the
    // goal is to *enhance* the snapshot with the new behaviour) but the
    // stability requirement restarts via the merge of new records.
    rec.reprofile_triggered = true;
    phase_ = TossPhase::kProfiling;
  }
  return rec;
}

}  // namespace toss
