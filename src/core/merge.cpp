#include "core/merge.hpp"

namespace toss {

RegionList regionize_and_merge(const PageAccessCounts& counts, u64 threshold) {
  return merge_similar_regions(regions_from_counts(counts), threshold);
}

u64 mapping_count(const PagePlacement& placement) {
  const u64 n = placement.num_pages();
  if (n == 0) return 0;
  u64 count = 1;
  for (u64 p = 1; p < n; ++p)
    if (placement.tier_of(p) != placement.tier_of(p - 1)) ++count;
  return count;
}

}  // namespace toss
