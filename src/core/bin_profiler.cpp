#include "core/bin_profiler.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace toss {

Nanos BinProfiler::warm_exec_ns(const Invocation& inv,
                                const PagePlacement& placement) const {
  return inv.cpu_ns + inv.trace.time_under(model_, placement);
}

BinProfile BinProfiler::profile(const std::vector<Bin>& bins,
                                const RegionList& zero_regions,
                                u64 guest_pages,
                                const Invocation& representative) const {
  BinProfile out;
  out.base_placement = PagePlacement(guest_pages, Tier::kFast);
  for (const Region& r : zero_regions)
    out.base_placement.set_range(r.page_begin, r.page_count, Tier::kSlow);

  out.base_exec_ns = warm_exec_ns(representative, out.base_placement);

  // Offload order: coldest access density first (progressively hotter).
  std::vector<size_t> order(bins.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return bins[a].density() < bins[b].density();
  });

  const double ratio = cfg_->cost_ratio();
  const double guest_bytes = static_cast<double>(bytes_for_pages(guest_pages));

  PagePlacement placement = out.base_placement;
  Nanos prev_exec = out.base_exec_ns;
  for (size_t idx : order) {
    const Bin& bin = bins[idx];
    for (const Region& r : bin.regions)
      placement.set_range(r.page_begin, r.page_count, Tier::kSlow);
    const Nanos exec = warm_exec_ns(representative, placement);

    BinStep step;
    step.bin_index = idx;
    step.byte_fraction = static_cast<double>(bin.bytes()) / guest_bytes;
    step.marginal_slowdown =
        out.base_exec_ns > 0 ? (exec - prev_exec) / out.base_exec_ns : 0.0;
    // Timing noise can make a configuration marginally "faster"; clamp.
    step.marginal_slowdown = std::max(0.0, step.marginal_slowdown);
    step.cumulative_slowdown =
        out.base_exec_ns > 0
            ? std::max(0.0, exec / out.base_exec_ns - 1.0)
            : 0.0;
    step.slow_fraction = placement.slow_fraction();
    step.cumulative_cost = normalized_memory_cost(
        1.0 + step.cumulative_slowdown, step.slow_fraction, ratio);
    step.bin_cost =
        bin_normalized_cost(step.marginal_slowdown, step.byte_fraction, ratio);
    out.steps.push_back(step);
    prev_exec = exec;
  }
  out.full_slow_exec_ns = prev_exec;
  return out;
}

}  // namespace toss
