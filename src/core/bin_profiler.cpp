#include "core/bin_profiler.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/thread_pool.hpp"

namespace toss {

Nanos BinProfiler::warm_exec_ns(const Invocation& inv,
                                const PagePlacement& placement) const {
  return inv.cpu_ns + inv.trace.time_under(model_, placement);
}

BinProfile BinProfiler::profile(const std::vector<Bin>& bins,
                                const RegionList& zero_regions,
                                u64 guest_pages,
                                const Invocation& representative,
                                ThreadPool* pool) const {
  const size_t ranks = cfg_->tier_count();
  BinProfile out;
  out.base_placement = PagePlacement(guest_pages, tier_index(0));
  // Zero-access regions cost nothing to bury: straight to the deepest rung.
  for (const Region& r : zero_regions)
    out.base_placement.set_range(r.page_begin, r.page_count,
                                 cfg_->deepest_tier());

  out.base_exec_ns = warm_exec_ns(representative, out.base_placement);

  // Descent order within each pass: coldest access density first
  // (progressively hotter).
  std::vector<size_t> order(bins.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return bins[a].density() < bins[b].density();
  });

  const std::vector<double> ratios = cfg_->rank_cost_ratios();
  const double guest_bytes = static_cast<double>(bytes_for_pages(guest_pages));

  // Materialize the placement of every descent prefix. Pass p (p = 1 ..
  // ranks-1) pushes each bin from rank p-1 to rank p, coldest first; the
  // placements build on each other and are cheap; the expensive part —
  // replaying the representative trace under each configuration — is
  // independent per prefix, so it can fan out over the pool. Each result
  // lands at its own index, keeping the profile bit-identical to the
  // serial sweep.
  std::vector<PagePlacement> prefix_placements;
  const size_t passes = ranks > 0 ? ranks - 1 : 0;
  prefix_placements.reserve(order.size() * passes);
  {
    PagePlacement placement = out.base_placement;
    for (size_t pass = 1; pass <= passes; ++pass) {
      for (size_t idx : order) {
        for (const Region& r : bins[idx].regions)
          placement.set_range(r.page_begin, r.page_count, tier_index(pass));
        prefix_placements.push_back(placement);
      }
    }
  }
  std::vector<Nanos> prefix_exec(prefix_placements.size(), 0);
  parallel_for(pool, prefix_placements.size(), [&](size_t k) {
    prefix_exec[k] = warm_exec_ns(representative, prefix_placements[k]);
  });

  for (size_t k = 0; k < prefix_placements.size(); ++k) {
    const size_t pass = order.empty() ? 1 : k / order.size() + 1;
    const Bin& bin = bins[order[k % order.size()]];
    const Nanos prev_exec = k == 0 ? out.base_exec_ns : prefix_exec[k - 1];
    const Nanos exec = prefix_exec[k];

    BinStep step;
    step.bin_index = order[k % order.size()];
    step.from_rank = pass - 1;
    step.to_rank = pass;
    step.byte_fraction = static_cast<double>(bin.bytes()) / guest_bytes;
    step.marginal_slowdown =
        out.base_exec_ns > 0 ? (exec - prev_exec) / out.base_exec_ns : 0.0;
    // Timing noise can make a configuration marginally "faster"; clamp.
    step.marginal_slowdown = std::max(0.0, step.marginal_slowdown);
    step.cumulative_slowdown =
        out.base_exec_ns > 0
            ? std::max(0.0, exec / out.base_exec_ns - 1.0)
            : 0.0;
    step.slow_fraction = prefix_placements[k].slow_fraction();
    step.cumulative_cost = ladder_normalized_cost(
        1.0 + step.cumulative_slowdown,
        prefix_placements[k].deep_fractions(ranks), ratios);
    // Per-bin V-C test, charged at the rung the bin lands on.
    step.bin_cost = bin_normalized_cost(step.marginal_slowdown,
                                        step.byte_fraction, ratios[pass - 1]);
    out.steps.push_back(step);
  }
  out.full_slow_exec_ns =
      prefix_exec.empty() ? out.base_exec_ns : prefix_exec.back();
  return out;
}

}  // namespace toss
