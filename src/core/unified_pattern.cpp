#include "core/unified_pattern.hpp"

#include "util/contracts.hpp"

namespace toss {

UnifiedPattern::UnifiedPattern(u64 num_pages, double change_epsilon)
    : counts_(num_pages), change_epsilon_(change_epsilon) {}

bool UnifiedPattern::add_record(const DamonRecord& record) {
  TOSS_REQUIRE(record.num_pages() == counts_.num_pages());
  const PageAccessCounts before = counts_;
  counts_.merge_max(record.to_counts());
  ++records_;
  const double distance = counts_.normalized_distance(before);
  if (distance > change_epsilon_) {
    stable_streak_ = 0;
    return true;
  }
  ++stable_streak_;
  return false;
}

}  // namespace toss
