// TOSS orchestrator: the per-function state machine of Figure 4.
//
//   Step I    Initial execution in a DRAM-only VM -> single-tier snapshot
//   Step II   Memory profiling with DAMON over subsequent invocations,
//             merged into the unified access pattern, until stable for N
//   Step III  Profiling analysis: zero pages -> slow; equal-access bin
//             packing; bin profiling on the largest profiled input;
//             minimum-cost (optionally slowdown-bounded) placement
//   Step IV   Snapshot tiering: one file per ladder rank + memory layout file
//   (Step V)  Re-generation: Eq 2-4 trigger re-entry into profiling
//
// TossFunction drives all of it for one serverless function; every
// invocation goes through handle() regardless of the current phase.
#pragma once

#include <memory>
#include <optional>

#include "baseline/vanilla.hpp"
#include "core/optimizer.hpp"
#include "core/reprofile.hpp"
#include "core/retier_bound.hpp"
#include "core/tierer.hpp"
#include "core/unified_pattern.hpp"
#include "damon/monitor.hpp"
#include "util/fault.hpp"
#include "workloads/function_model.hpp"

namespace toss {

struct TossOptions {
  /// N: invocations the unified pattern must stay stable to end profiling.
  /// The paper's prototype uses 100; experiments shrink this to keep
  /// simulated request counts manageable.
  u64 stable_invocations = 100;
  /// Safety valve: force analysis after this many profiled invocations.
  u64 max_profiling_invocations = 1000;
  int bin_count = 10;
  double unified_change_epsilon = 0.02;
  std::optional<double> slowdown_threshold;
  /// QoS SLO slowdown target (DESIGN.md §14): when set and
  /// slowdown_threshold is not, Step III derives the threshold by walking
  /// the Eq-1 cost curve to the cheapest configuration meeting the SLO
  /// (TieringOptions::slo_slowdown). Set by FunctionRegistration::qos()/
  /// slo(); an explicit slowdown_threshold always wins.
  std::optional<double> slo_slowdown;
  double reprofile_budget = 1e-4;
  DamonConfig damon;
  /// The evaluation methodology drops the host page cache between
  /// invocations; disable for keep-warm studies.
  bool drop_caches_between_invocations = true;
  /// Worker threads for the Step III bin-profiling sweep (each offload
  /// configuration is measured independently). 1 = fully serial; results
  /// are identical either way.
  int analysis_threads = 1;
  /// Recovery ladder: bounded retry (with simulated, jittered backoff) for
  /// transient faults on restore, execution and snapshot persistence. With
  /// no faults injected the policy is never consulted.
  RetryPolicy retry;
};

enum class TossPhase : u8 {
  kInitial = 0,    ///< no snapshot yet
  kProfiling = 1,  ///< single-tier snapshot + DAMON riding along
  kTiered = 2,     ///< tiered snapshot in production
};

inline const char* phase_name(TossPhase p) {
  switch (p) {
    case TossPhase::kInitial: return "initial";
    case TossPhase::kProfiling: return "profiling";
    default: return "tiered";
  }
}

/// What one handled invocation did and cost.
struct TossInvocationRecord {
  TossPhase phase = TossPhase::kInitial;  ///< phase the invocation ran in
  InvocationResult result;
  bool snapshot_created = false;  ///< Step I completed on this invocation
  bool tiered_created = false;    ///< Step III+IV completed after it
  bool reprofile_triggered = false;
  /// Recovery ledger: faults hit, retries spent, fallback taken, and the
  /// page-version oracle hashes. All-default when nothing went wrong.
  RecoveryInfo recovery;
};

class TossFunction {
 public:
  TossFunction(const SystemConfig& cfg, SnapshotStore& store,
               const FunctionModel& model, TossOptions options = {},
               u64 seed = 42);

  /// Handle one invocation of `input` (0-based); `invocation_seed`
  /// distinguishes repeats. Drives the state machine.
  TossInvocationRecord handle(int input, u64 invocation_seed);

  TossPhase phase() const { return phase_; }
  const FunctionModel& model() const { return *model_; }
  const TossOptions& options() const { return options_; }

  /// Valid once phase() == kTiered.
  const TieringDecision* decision() const {
    return decision_ ? &*decision_ : nullptr;
  }
  const TieredSnapshot* tiered_snapshot() const;
  u64 profiled_invocations() const { return damon_invocations_; }
  const UnifiedPattern* unified() const {
    return unified_ ? &*unified_ : nullptr;
  }
  const ReprofilePolicy& reprofiler() const { return reprofiler_; }

  /// Circuit breaker hook: while suspended, tiered restores and Step III
  /// re-analysis are skipped in favour of the retained single-tier snapshot
  /// (FallbackLevel::kSingleTier), letting a flapping lane stop hammering a
  /// failing artifact without losing availability.
  void set_recovery_suspended(bool suspended) { suspended_ = suspended; }
  bool recovery_suspended() const { return suspended_; }

  /// True between a quarantine and the Step V rebuild that replaces the
  /// quarantined tiered snapshot.
  bool regeneration_pending() const { return regeneration_pending_; }

  /// Arbiter hook (DESIGN.md §9): rebuild the tiered artifact by re-entering
  /// Step IV placement under a bound. A trivial bound restores the
  /// optimizer's unconstrained minimum-cost placement (promotion); a byte
  /// cap forces a deep-heavier placement, and a tier floor pushes the whole
  /// image below the forbidden rungs (demotion). Only meaningful in kTiered
  /// with a live unified pattern — returns false, with all state unchanged,
  /// otherwise or when persisting the re-tiered artifact exhausts its
  /// torn-write retry budget. While a non-trivial bound is active, the
  /// Eq 2-4 re-profiling trigger is muted: the extra slowdown is
  /// intentional, not access-pattern drift.
  bool retier(RetierBound bound);
  bool retier(std::optional<u64> max_fast_bytes) {
    return retier(RetierBound{max_fast_bytes, 0});
  }
  /// The bound the last successful retier() applied.
  const RetierBound& retier_bound() const { return bound_; }
  /// The fast cap of that bound; nullopt = uncapped.
  std::optional<u64> fast_budget() const { return bound_.max_fast_bytes; }

  /// Fast/slow-tier bytes an invocation of this function pins while
  /// running. Tiered phase: the tiered artifact's per-tier file sizes
  /// ("slow" sums every rank below 0); otherwise the whole guest image sits
  /// in DRAM (single-tier restores and cold boots are fast-tier only).
  u64 fast_resident_bytes() const;
  u64 slow_resident_bytes() const;
  /// Bytes pinned in one specific ladder rank (metrics rollups).
  u64 tier_resident_bytes(size_t rank) const;

  /// Largest-input invocation observed while profiling (Section V-C's
  /// representative); valid during/after profiling.
  std::optional<std::pair<int, u64>> representative() const {
    return largest_ ? std::optional(std::pair(largest_->input, largest_->seed))
                    : std::nullopt;
  }

 private:
  /// Outcome of one bounded-retry restore+execute ladder rung.
  enum class AttemptStatus : u8 {
    kOk = 0,      ///< an attempt succeeded; result is filled in
    kExhausted,   ///< every attempt failed on transient faults
    kBroken,      ///< the backing artifact itself is missing/corrupted
  };

  TossInvocationRecord handle_initial(const Invocation& inv);
  TossInvocationRecord handle_profiling(const Invocation& inv);
  TossInvocationRecord handle_tiered(const Invocation& inv);
  bool run_analysis(RecoveryInfo* recovery);
  /// Steps III(+IV placement) on the current unified pattern, optionally
  /// constrained by an arbiter bound. Requires unified_ && largest_.
  TieringDecision analyze_now(const RetierBound& bound) const;
  /// Re-arm the Eq 2-4 regeneration trigger against decision_.
  void arm_reprofiler();

  AttemptStatus restore_execute_with_retry(MicroVm& vm,
                                           const RestorePlan& plan,
                                           const Invocation& inv,
                                           InvocationResult* out,
                                           RecoveryInfo* recovery);
  bool boot_execute_with_retry(MicroVm& vm, const Invocation& inv,
                               InvocationResult* out, RecoveryInfo* recovery);
  void cold_boot_rung(MicroVm& vm, const Invocation& inv,
                      TossInvocationRecord& rec);
  void quarantine_and_rearm(RecoveryInfo* recovery);

  const SystemConfig* cfg_;
  SnapshotStore* store_;
  const FunctionModel* model_;
  TossOptions options_;
  Rng rng_;
  /// Jitter stream for retry backoff. Deliberately separate from rng_: the
  /// fault-free path must never advance rng_ differently than the pre-fault
  /// code did, or DAMON sampling (and thus every downstream decision) would
  /// change even with injection compiled out.
  Rng recovery_rng_;

  TossPhase phase_ = TossPhase::kInitial;
  u64 single_tier_id_ = 0;
  u64 tiered_id_ = 0;
  RetierBound bound_;  ///< active retier() bound (trivial = unconstrained)
  bool suspended_ = false;
  bool regeneration_pending_ = false;
  std::optional<UnifiedPattern> unified_;
  std::optional<TieringDecision> decision_;
  DamonMonitor damon_;
  ReprofilePolicy reprofiler_;
  u64 damon_invocations_ = 0;

  struct Largest {
    int input = 0;
    u64 seed = 0;
    Nanos exec_ns = 0;
  };
  std::optional<Largest> largest_;
};

}  // namespace toss
