// Region merging (Section V-F): fewer regions mean fewer memory mappings at
// restore and therefore lower setup time.
//
//  - Access-count merging: after unifying access patterns, adjacent regions
//    whose per-page counts differ by < 100 merge (same slowdown result).
//  - Bins merging: after bin packing decides tiers, adjacent regions that
//    ended up in the same tier merge; TieredSnapshot::build performs this
//    implicitly by coalescing same-tier page runs, and mapping_count()
//    measures the effect.
#pragma once

#include "mem/placement.hpp"
#include "trace/region.hpp"

namespace toss {

/// The paper's empirically chosen access-count merge threshold.
inline constexpr u64 kAccessMergeThreshold = 100;

/// counts -> regions -> access-count merging, in one step.
RegionList regionize_and_merge(const PageAccessCounts& counts,
                               u64 threshold = kAccessMergeThreshold);

/// Number of memory mappings a placement induces (maximal same-tier runs).
u64 mapping_count(const PagePlacement& placement);

}  // namespace toss
