#include "core/binpack.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace toss {

RegionList split_large_regions(const RegionList& regions, u64 max_mass) {
  RegionList out;
  for (const Region& r : regions) {
    if (r.total_accesses() <= max_mass || r.page_count <= 1 ||
        r.accesses == 0) {
      out.push_back(r);
      continue;
    }
    // Chunk size in pages so that chunk mass <= max_mass.
    const u64 chunk_pages =
        std::max<u64>(1, max_mass / std::max<u64>(1, r.accesses));
    u64 begin = r.page_begin;
    u64 remaining = r.page_count;
    while (remaining > 0) {
      const u64 take = std::min(chunk_pages, remaining);
      out.push_back(Region{begin, take, r.accesses});
      begin += take;
      remaining -= take;
    }
  }
  return out;
}

std::vector<Bin> pack_equal_access(const RegionList& regions, int bin_count) {
  TOSS_REQUIRE(bin_count > 0);
  std::vector<Bin> bins(static_cast<size_t>(bin_count));
  if (regions.empty()) return bins;

  const u64 total_mass = std::accumulate(
      regions.begin(), regions.end(), u64{0},
      [](u64 acc, const Region& r) { return acc + r.total_accesses(); });
  const u64 target =
      std::max<u64>(1, total_mass / static_cast<u64>(bin_count));
  const RegionList items =
      split_large_regions(regions, std::max<u64>(1, target / 4));

  // Coldest density first, cut into consecutive ~equal-mass groups at the
  // k-quantile boundaries of cumulative access mass (so trailing bins never
  // end up empty).
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return items[a].accesses < items[b].accesses;
  });
  size_t cur = 0;
  u64 cumulative = 0;
  for (size_t idx : order) {
    bins[cur].regions.push_back(items[idx]);
    bins[cur].pages += items[idx].page_count;
    bins[cur].access_mass += items[idx].total_accesses();
    cumulative += items[idx].total_accesses();
    while (cur + 1 < bins.size() &&
           cumulative * static_cast<u64>(bin_count) >=
               (cur + 1) * total_mass)
      ++cur;
  }
  TOSS_VALIDATE(validate_bins(bins, regions));
  return bins;
}

std::vector<Bin> pack_equal_access_greedy(const RegionList& regions,
                                          int bin_count) {
  TOSS_REQUIRE(bin_count > 0);
  std::vector<Bin> bins(static_cast<size_t>(bin_count));
  if (regions.empty()) return bins;

  const u64 total_mass = std::accumulate(
      regions.begin(), regions.end(), u64{0},
      [](u64 acc, const Region& r) { return acc + r.total_accesses(); });
  const u64 target =
      std::max<u64>(1, total_mass / static_cast<u64>(bin_count));
  const RegionList items =
      split_large_regions(regions, std::max<u64>(1, target / 2));

  // Greedy: heaviest item first, into the lightest bin.
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return items[a].total_accesses() > items[b].total_accesses();
  });
  for (size_t idx : order) {
    Bin* lightest = &bins[0];
    for (Bin& b : bins)
      if (b.access_mass < lightest->access_mass) lightest = &b;
    lightest->regions.push_back(items[idx]);
    lightest->pages += items[idx].page_count;
    lightest->access_mass += items[idx].total_accesses();
  }
  TOSS_VALIDATE(validate_bins(bins, regions));
  return bins;
}

std::vector<Bin> pack_equal_size(const RegionList& regions, int bin_count) {
  TOSS_REQUIRE(bin_count > 0);
  std::vector<Bin> bins(static_cast<size_t>(bin_count));
  if (regions.empty()) return bins;

  const u64 total_pages = regions_total_pages(regions);
  const u64 target = std::max<u64>(1, total_pages / static_cast<u64>(bin_count));

  size_t cur = 0;
  for (const Region& r : regions) {
    u64 begin = r.page_begin;
    u64 remaining = r.page_count;
    while (remaining > 0) {
      if (bins[cur].pages >= target && cur + 1 < bins.size()) ++cur;
      const u64 room = bins[cur].pages >= target
                           ? remaining
                           : std::min(remaining, target - bins[cur].pages);
      bins[cur].regions.push_back(Region{begin, room, r.accesses});
      bins[cur].pages += room;
      bins[cur].access_mass += room * r.accesses;
      begin += room;
      remaining -= room;
    }
  }
  TOSS_VALIDATE(validate_bins(bins, regions));
  return bins;
}

bool bins_cover_regions(const std::vector<Bin>& bins,
                        const RegionList& regions) {
  return !validate_bins(bins, regions).has_value();
}

std::optional<std::string> validate_bins(const std::vector<Bin>& bins,
                                         const RegionList& regions) {
  u64 bin_pages = 0, bin_mass = 0;
  for (size_t i = 0; i < bins.size(); ++i) {
    const Bin& b = bins[i];
    u64 pages = 0, mass = 0;
    for (const Region& r : b.regions) {
      pages += r.page_count;
      mass += r.total_accesses();
    }
    if (pages != b.pages)
      return "bin " + std::to_string(i) + ": cached page count " +
             std::to_string(b.pages) + " != sum over regions " +
             std::to_string(pages);
    if (mass != b.access_mass)
      return "bin " + std::to_string(i) + ": cached access mass " +
             std::to_string(b.access_mass) + " != sum over regions " +
             std::to_string(mass);
    bin_pages += pages;
    bin_mass += mass;
  }
  u64 want_pages = 0, want_mass = 0;
  for (const Region& r : regions) {
    want_pages += r.page_count;
    want_mass += r.total_accesses();
  }
  if (bin_pages != want_pages)
    return "bins hold " + std::to_string(bin_pages) + " pages, input has " +
           std::to_string(want_pages) + " (pages not conserved)";
  if (bin_mass != want_mass)
    return "bins hold access mass " + std::to_string(bin_mass) +
           ", input has " + std::to_string(want_mass) +
           " (access mass not conserved)";
  return std::nullopt;
}

}  // namespace toss
