// Equal-access bin packing (Section V-C).
//
// TOSS splits the accessed memory regions into N (10) bins of roughly equal
// *access mass* — not equal byte size — using a greedy constant-bin-count
// heuristic (largest item first into the currently lightest bin), matching
// the open-source `binpacking` package the paper uses. Bins therefore have
// variable byte sizes: a hot bin can be a few MiB, a cold one hundreds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/region.hpp"

namespace toss {

struct Bin {
  std::vector<Region> regions;
  u64 pages = 0;
  u64 access_mass = 0;  ///< sum of region total accesses

  u64 bytes() const { return bytes_for_pages(pages); }
  /// Access density: mass per page; the offload ordering key.
  double density() const {
    return pages == 0 ? 0.0
                      : static_cast<double>(access_mass) /
                            static_cast<double>(pages);
  }
};

/// Split any region whose access mass exceeds `max_mass` into contiguous
/// chunks of at most that mass (the greedy heuristic needs items smaller
/// than a bin). Chunk counts inherit the region's per-page average.
RegionList split_large_regions(const RegionList& regions, u64 max_mass);

/// Pack `regions` (accessed regions only) into exactly `bin_count` bins of
/// roughly equal access mass, grouping regions of similar access *density*
/// together: bin 0 holds the coldest pages, the last bin the hottest. This
/// is what makes the progressive offload sweep (Fig 6) monotone — each
/// successive bin contributes a strictly hotter slice of memory. Regions
/// with more than half a bin of mass are split first. Empty input produces
/// `bin_count` empty bins.
std::vector<Bin> pack_equal_access(const RegionList& regions, int bin_count);

/// The plain greedy constant-bin-count heuristic (heaviest item into the
/// lightest bin), as in the open-source `binpacking` package. Balances mass
/// but mixes hot and cold regions within a bin; kept for the ablation
/// bench.
std::vector<Bin> pack_equal_access_greedy(const RegionList& regions,
                                          int bin_count);

/// For comparison (ablation): equal-*size* bins, the strawman the paper
/// rejects because access mass per bin becomes wildly disproportional.
std::vector<Bin> pack_equal_size(const RegionList& regions, int bin_count);

/// Sanity: every input region's pages appear in exactly one bin.
bool bins_cover_regions(const std::vector<Bin>& bins,
                        const RegionList& regions);

/// Mass-conservation validator with a diagnostic: each bin's cached
/// pages/access_mass must equal the sum over its regions, and the totals
/// across all bins must equal the input regions' totals (splitting regions
/// redistributes mass, never creates or destroys it). Returns std::nullopt
/// when conserved, else a description of the first discrepancy. Checked
/// builds run this after every pack_* call via TOSS_VALIDATE; it is the
/// Step III seam's defense against a packing heuristic silently dropping
/// or double-counting a region.
std::optional<std::string> validate_bins(const std::vector<Bin>& bins,
                                         const RegionList& regions);

}  // namespace toss
