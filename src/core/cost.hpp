// The paper's memory cost formula (Equation 1):
//
//   cost = SDown * (MB_fast * Cost_fast + MB_slow * Cost_slow)
//
// and its normalized form used throughout the evaluation, where the
// DRAM-only configuration has cost 1 and the optimum (everything in the
// slow tier, no slowdown) has cost 1/cost_ratio = 0.4 for the paper's
// 2.5:1 ratio.
// The ladder generalization (DESIGN.md §11) keeps the same normalization:
// bytes at rank r are worth 1/rank_cost_ratio(r) of fast bytes, so
//
//   cost = SDown * ((1 - sum_r frac_r) + sum_r frac_r / ratio_r)
//
// summed in ascending rank order. For a two-rung ladder this evaluates the
// exact same floating-point expression as normalized_memory_cost, which is
// what keeps the degenerate case bit-identical.
#pragma once

#include <vector>

#include "mem/tier.hpp"

namespace toss {

/// Raw Equation 1. `slowdown_factor` is relative to running fully in the
/// fast tier (1.0 = no slowdown).
double eq1_memory_cost(double slowdown_factor, double mb_fast, double mb_slow,
                       double cost_fast_per_mb, double cost_slow_per_mb);

/// Equation 1 normalized to the all-fast configuration of the same size:
///   slowdown_factor * (fast_frac + slow_frac / cost_ratio)
double normalized_memory_cost(double slowdown_factor, double slow_fraction,
                              double cost_ratio);

/// Eq 1 normalized over an N-rung ladder. `deep_fractions[i]` is the byte
/// fraction resting at rank i+1 and `cost_ratios[i]` the fast:rank-(i+1)
/// $/MiB ratio (PagePlacement::deep_fractions / SystemConfig::
/// rank_cost_ratios shapes). Two-rung ladders reduce bit-identically to
/// normalized_memory_cost.
double ladder_normalized_cost(double slowdown_factor,
                              const std::vector<double>& deep_fractions,
                              const std::vector<double>& cost_ratios);

/// The floor of the normalized cost: all memory slow, no slowdown.
double optimal_normalized_cost(double cost_ratio);

/// Per-bin offload test (Section V-C): the normalized cost of offloading
/// just this bin, given its byte fraction of guest memory and the marginal
/// slowdown it causes. Bins with cost < 1 lower the total memory cost.
double bin_normalized_cost(double marginal_slowdown, double byte_fraction,
                           double cost_ratio);

}  // namespace toss
