// Bin profiling (Section V-C): starting from all bins in DRAM (zero-access
// regions already in the slow tier), progressively offload bins — coldest
// access density first — and measure the slowdown of each configuration on
// the *representative invocation* (the largest input seen during memory
// profiling). Each step yields the bin's marginal slowdown and its
// normalized memory cost.
#pragma once

#include <vector>

#include "core/binpack.hpp"
#include "core/cost.hpp"
#include "mem/access_cost.hpp"
#include "workloads/function_model.hpp"

namespace toss {

struct BinStep {
  size_t bin_index = 0;          ///< index into the packed bins vector
  double byte_fraction = 0;      ///< bin bytes / guest bytes
  double marginal_slowdown = 0;  ///< slowdown added by offloading this bin
  double cumulative_slowdown = 0;
  double slow_fraction = 0;      ///< guest slow fraction after this step
  double cumulative_cost = 0;    ///< normalized Eq 1 at this configuration
  double bin_cost = 0;           ///< per-bin offload test (V-C rule)
};

struct BinProfile {
  Nanos base_exec_ns = 0;  ///< representative warm time, all bins in DRAM
  Nanos full_slow_exec_ns = 0;  ///< everything (incl. bins) in the slow tier
  /// Steps in offload order (coldest density first).
  std::vector<BinStep> steps;
  /// Zero-access regions in slow, all bins in fast.
  PagePlacement base_placement;

  double full_slow_slowdown() const {
    return base_exec_ns > 0 ? full_slow_exec_ns / base_exec_ns : 1.0;
  }
};

class ThreadPool;

class BinProfiler {
 public:
  explicit BinProfiler(const SystemConfig& cfg) : cfg_(&cfg), model_(cfg) {}

  /// Profile the bins against `representative` (warm execution: the VM is
  /// already restored; only access-time differences matter, which is what
  /// the configuration comparison isolates).
  ///
  /// Each step of the sweep measures one offload *prefix* (coldest k bins
  /// in the slow tier); the prefixes are independent measurements, so a
  /// non-null `pool` fans them out across workers. Serial and parallel
  /// sweeps produce bit-identical profiles.
  BinProfile profile(const std::vector<Bin>& bins,
                     const RegionList& zero_regions, u64 guest_pages,
                     const Invocation& representative,
                     ThreadPool* pool = nullptr) const;

  /// Warm execution time of an invocation under a placement.
  Nanos warm_exec_ns(const Invocation& inv,
                     const PagePlacement& placement) const;

 private:
  const SystemConfig* cfg_;
  AccessCostModel model_;
};

}  // namespace toss
