// Bin profiling (Section V-C): starting from all bins in the fastest tier
// (zero-access regions already at the deepest rung), progressively push
// bins down the ladder — coldest access density first — and measure the
// slowdown of each configuration on the *representative invocation* (the
// largest input seen during memory profiling). Each step yields the bin's
// marginal slowdown and its normalized memory cost.
//
// With a two-tier ladder this is the paper's single offload sweep. With a
// deeper ladder the sweep runs one pass per rung descent: pass p moves
// bins from rank p-1 to rank p, coldest first, so a prefix of the
// concatenated step sequence is a full per-bin rung assignment (colder
// bins sit deeper).
#pragma once

#include <vector>

#include "core/binpack.hpp"
#include "core/cost.hpp"
#include "mem/access_cost.hpp"
#include "workloads/function_model.hpp"

namespace toss {

struct BinStep {
  size_t bin_index = 0;          ///< index into the packed bins vector
  size_t from_rank = 0;          ///< ladder rank the bin leaves...
  size_t to_rank = 1;            ///< ...and the rank this step moves it to
  double byte_fraction = 0;      ///< bin bytes / guest bytes
  double marginal_slowdown = 0;  ///< slowdown added by this descent
  double cumulative_slowdown = 0;
  double slow_fraction = 0;      ///< guest fraction below rank 0 after this step
  double cumulative_cost = 0;    ///< normalized Eq 1 at this configuration
  double bin_cost = 0;           ///< per-bin offload test (V-C rule)
};

struct BinProfile {
  Nanos base_exec_ns = 0;  ///< representative warm time, all bins in DRAM
  Nanos full_slow_exec_ns = 0;  ///< everything (incl. bins) at the deepest rung
  /// Steps in sweep order: pass 1 (rank 0 -> 1) coldest first, then pass 2
  /// (rank 1 -> 2), ... A prefix of this sequence is one configuration.
  std::vector<BinStep> steps;
  /// Zero-access regions at the deepest rung, all bins in the fastest tier.
  PagePlacement base_placement;

  double full_slow_slowdown() const {
    return base_exec_ns > 0 ? full_slow_exec_ns / base_exec_ns : 1.0;
  }
};

class ThreadPool;

class BinProfiler {
 public:
  explicit BinProfiler(const SystemConfig& cfg) : cfg_(&cfg), model_(cfg) {}

  /// Profile the bins against `representative` (warm execution: the VM is
  /// already restored; only access-time differences matter, which is what
  /// the configuration comparison isolates).
  ///
  /// Each step of the sweep measures one descent *prefix*; the prefixes are
  /// independent measurements, so a non-null `pool` fans them out across
  /// workers. Serial and parallel sweeps produce bit-identical profiles.
  BinProfile profile(const std::vector<Bin>& bins,
                     const RegionList& zero_regions, u64 guest_pages,
                     const Invocation& representative,
                     ThreadPool* pool = nullptr) const;

  /// Warm execution time of an invocation under a placement.
  Nanos warm_exec_ns(const Invocation& inv,
                     const PagePlacement& placement) const;

 private:
  const SystemConfig* cfg_;
  AccessCostModel model_;
};

}  // namespace toss
