#include "core/tierer.hpp"

#include "util/contracts.hpp"

namespace toss {

u64 tier_snapshot(SnapshotStore& store, const SingleTierSnapshot& snap,
                  const PagePlacement& placement) {
  const u64 fast_id = store.allocate_file_id();
  const u64 slow_id = store.allocate_file_id();
  store.put_tiered(TieredSnapshot::build(snap, placement, fast_id, slow_id));
  return fast_id;
}

Nanos tiering_stage_ns(const SystemConfig& cfg, u64 guest_bytes) {
  // Read the single-tier file and write both tier files serially, plus a
  // fixed analysis term. Dominated by the copy, matching the paper's
  // 128 MB -> hundreds of ms, 1 GB -> couple of seconds scaling.
  const double read_ns = static_cast<double>(guest_bytes) /
                         cfg.disk.seq_read_bw_bytes_per_ns;
  const double write_ns = static_cast<double>(guest_bytes) /
                          cfg.disk.seq_write_bw_bytes_per_ns;
  return ms(50) + read_ns + write_ns;
}

TossPolicy::TossPolicy(const SnapshotStore& store, u64 tiered_id)
    : store_(&store), tiered_id_(tiered_id) {
  TOSS_REQUIRE(store_->get_tiered(tiered_id_) != nullptr);
}

RestorePlan TossPolicy::plan_restore() const {
  const TieredSnapshot* snap = store_->get_tiered(tiered_id_);
  RestorePlan plan;
  plan.vm_state = snap->vm_state();
  plan.guest_pages = snap->guest_pages();
  for (const LayoutEntry& e : snap->layout().entries()) {
    RestoreMapping m;
    m.guest_page = e.guest_page;
    m.page_count = e.page_count;
    m.tier = e.tier;
    m.file_page = e.file_page;
    if (e.tier == Tier::kFast) {
      m.file_id = snap->fast_file_id();
      // The fast file is pinned in DRAM: its pages are exactly the memory
      // the cost model bills as the DRAM share of the function, so they
      // stay resident between invocations (first touch is a minor fault,
      // never a disk read).
      m.dax = true;
    } else {
      m.file_id = snap->slow_file_id();
      m.dax = true;  // mapped straight out of the slow tier
    }
    plan.mappings.push_back(m);
  }
  return plan;
}

}  // namespace toss
