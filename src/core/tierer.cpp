#include "core/tierer.hpp"

#include "util/contracts.hpp"

namespace toss {

u64 tier_snapshot(SnapshotStore& store, const SingleTierSnapshot& snap,
                  const PagePlacement& placement) {
  // One file per ladder rank, ids allocated in rank order (so a two-tier
  // ladder allocates fast-then-slow exactly as before the ladder redesign).
  const size_t ranks = store.config().tier_count();
  std::vector<u64> file_ids;
  file_ids.reserve(ranks);
  for (size_t r = 0; r < ranks; ++r)
    file_ids.push_back(store.allocate_file_id());
  const u64 primary = file_ids.front();
  store.put_tiered(TieredSnapshot::build(snap, placement,
                                         std::move(file_ids)));
  return primary;
}

Nanos tiering_stage_ns(const SystemConfig& cfg, u64 guest_bytes) {
  // Read the single-tier file and write both tier files serially, plus a
  // fixed analysis term. Dominated by the copy, matching the paper's
  // 128 MB -> hundreds of ms, 1 GB -> couple of seconds scaling.
  const double read_ns = static_cast<double>(guest_bytes) /
                         cfg.disk.seq_read_bw_bytes_per_ns;
  const double write_ns = static_cast<double>(guest_bytes) /
                          cfg.disk.seq_write_bw_bytes_per_ns;
  return ms(50) + read_ns + write_ns;
}

TossPolicy::TossPolicy(const SnapshotStore& store, u64 tiered_id)
    : store_(&store), tiered_id_(tiered_id) {
  TOSS_REQUIRE(store_->get_tiered(tiered_id_) != nullptr);
}

RestorePlan TossPolicy::plan_restore() const {
  const TieredSnapshot* snap = store_->get_tiered(tiered_id_);
  RestorePlan plan;
  plan.vm_state = snap->vm_state();
  plan.guest_pages = snap->guest_pages();
  for (const LayoutEntry& e : snap->layout().entries()) {
    RestoreMapping m;
    m.guest_page = e.guest_page;
    m.page_count = e.page_count;
    m.tier = e.tier;
    m.file_page = e.file_page;
    m.file_id = snap->file_id(tier_rank(e.tier));
    // Rank 0 is pinned in DRAM: its pages are exactly the memory the cost
    // model bills as the fast-tier share of the function, so they stay
    // resident between invocations (first touch is a minor fault, never a
    // disk read). Every deeper rank is mapped straight out of its device.
    m.dax = true;
    plan.mappings.push_back(m);
  }
  return plan;
}

}  // namespace toss
