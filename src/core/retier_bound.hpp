// The constraint the fleet arbiter re-enters Step IV placement under
// (DESIGN.md §9). Shared between the TOSS orchestrator (which applies it)
// and the platform arbiter (which chooses it), so it lives in its own
// header.
#pragma once

#include <cstddef>
#include <optional>

#include "util/units.hpp"

namespace toss {

/// `max_fast_bytes` caps the rank-0 (fastest tier) residue of the rebuilt
/// placement; `min_tier_rank` additionally forbids the ladder's upper rungs
/// outright — the demotion rungs beyond the fast cap on ladders deeper
/// than two tiers. `min_descent_prefix` instead forces the placement at
/// least `prefix` descents down the Step-III sweep — the QoS arbiter's
/// continuous-demotion hook, which walks TieringDecision::demotion_curve
/// one local cost minimum at a time instead of the fixed rung ladder.
/// Default-constructed = unconstrained.
struct RetierBound {
  std::optional<u64> max_fast_bytes;
  size_t min_tier_rank = 0;
  std::optional<size_t> min_descent_prefix;

  bool trivial() const {
    return !max_fast_bytes && min_tier_rank == 0 && !min_descent_prefix;
  }
  bool operator==(const RetierBound&) const = default;
};

}  // namespace toss
