#include "core/reprofile.hpp"

namespace toss {

ReprofilePolicy::ReprofilePolicy(double budget) : budget_(budget) {}

void ReprofilePolicy::arm(u64 damon_invocations,
                          std::span<const double> bin_slowdowns,
                          Nanos longest_profiled_ns,
                          double full_slow_slowdown) {
  profiling_overhead_ = static_cast<double>(damon_invocations);
  for (double sd : bin_slowdowns) profiling_overhead_ += 1.0 + sd;  // Eq 2
  longest_profiled_ns_ = longest_profiled_ns;
  full_slow_slowdown_ = full_slow_slowdown;
  accel_factor_ = 0;
  iterations_ = 0;
  armed_ = true;
}

bool ReprofilePolicy::observe(Nanos latency_ns) {
  if (!armed_) return false;
  ++iterations_;
  if (longest_profiled_ns_ > 0 && latency_ns > longest_profiled_ns_) {
    accel_factor_ += latency_ns / longest_profiled_ns_ *
                     (1.0 + full_slow_slowdown_);  // Eq 3
  }
  return should_reprofile();
}

bool ReprofilePolicy::should_reprofile() const {
  if (!armed_) return false;
  return static_cast<double>(iterations_) * budget_ >=
         profiling_overhead_ - accel_factor_;  // Eq 4
}

}  // namespace toss
