// Snapshot re-generation policy (Section V-E, Equations 2-4).
//
// Re-profiling costs something (DAMON-enabled invocations plus the binned
// profiling sweep), so TOSS only re-profiles when the accumulated evidence
// of drift outweighs a per-function overhead budget:
//
//   Eq 2  profiling_overhead = #invocations_DAMON + sum_b (1 + slowdown_b)
//   Eq 3  accel_factor      += (latency / latency_LRI) * (1 + slowdown_slow)
//                              for every invocation slower than the longest
//                              invocation seen during profiling (LRI)
//   Eq 4  re-profile when  iterations * budget >= overhead - accel_factor
#pragma once

#include <span>

#include "util/units.hpp"

namespace toss {

class ReprofilePolicy {
 public:
  /// `budget`: the bound on profiling overhead as a fraction of total
  /// invocations (paper example: 0.0001 bounds it to 0.01%).
  explicit ReprofilePolicy(double budget = 1e-4);

  /// Configure from the just-finished profiling phase: how many invocations
  /// ran with DAMON, the per-bin slowdowns of the binned profiling sweep
  /// (Eq 2), the longest profiled invocation latency, and the slowdown of
  /// running fully in the slow tier (both feed Eq 3).
  void arm(u64 damon_invocations, std::span<const double> bin_slowdowns,
           Nanos longest_profiled_ns, double full_slow_slowdown);

  /// Record a production (tiered) invocation. Returns true when Eq 4 says
  /// it is time to re-profile.
  bool observe(Nanos latency_ns);

  bool should_reprofile() const;

  double profiling_overhead() const { return profiling_overhead_; }
  double accelerating_factor() const { return accel_factor_; }
  u64 iterations() const { return iterations_; }
  double budget() const { return budget_; }

 private:
  double budget_;
  double profiling_overhead_ = 0;
  double accel_factor_ = 0;
  Nanos longest_profiled_ns_ = 0;
  double full_slow_slowdown_ = 0;
  u64 iterations_ = 0;
  bool armed_ = false;
};

}  // namespace toss
