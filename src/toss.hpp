// TOSS public umbrella header — the one include for clients.
//
// Examples, benches and downstream users include only this header; deep
// internal headers (core/, vmm/, mem/, ...) are implementation detail and
// may be reorganized between releases (tests/public_api_test.cpp enforces
// the rule for the in-tree clients). The stable surface is:
//
//   ServerlessPlatform / FunctionRegistration / PolicyKind   single host
//   PlatformEngine / EngineOptions / EngineReport            fleet engine
//   ClusterEngine / ClusterOptions / ClusterReport           multi-host fleet
//   ArbiterOptions / ArbiterReport / ShedEvent               overload control
//   TossOptions / TossFunction / TossPhase                   the TOSS core
//   InvocationOutcome / FunctionStats / Result / Error       call results
//   MetricsRegistry / MetricsSnapshot                        observability
//   RequestGenerator / FunctionRegistry / workloads::*       workloads
//   ThreadPool / OnlineStats / AsciiTable / Rng              utilities
//
// plus the analysis entry points the explorer tools drive directly
// (analyze_pattern, choose_placement, regionize_and_merge, DamonMonitor,
// tier_snapshot, run_concurrent).
#pragma once

#include "platform/arbiter.hpp"
#include "platform/cluster.hpp"
#include "platform/concurrency.hpp"
#include "platform/engine.hpp"
#include "platform/errors.hpp"
#include "platform/invoker.hpp"
#include "platform/keepalive.hpp"
#include "platform/metrics.hpp"
#include "platform/platform.hpp"
#include "platform/prewarm.hpp"
#include "platform/pricing.hpp"
#include "platform/recovery.hpp"
#include "platform/request_gen.hpp"

#include "core/merge.hpp"
#include "core/optimizer.hpp"
#include "core/tierer.hpp"
#include "core/toss.hpp"

#include "baseline/faasnap.hpp"
#include "baseline/reap.hpp"
#include "baseline/vanilla.hpp"

#include "damon/monitor.hpp"

#include "workloads/functions.hpp"
#include "workloads/registry.hpp"

#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
