#include "vmm/guest_memory.hpp"

namespace toss {

GuestMemory::GuestMemory(u64 bytes) : versions_(pages_for_bytes(bytes), 0) {}

}  // namespace toss
