#include "vmm/guest_memory.hpp"

namespace toss {

GuestMemory::GuestMemory(u64 bytes) : versions_(pages_for_bytes(bytes), 0) {}

u64 hash_memory(const GuestMemory& memory) {
  u64 h = 0xcbf29ce484222325ULL;
  for (u32 v : memory.versions()) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace toss
