#include "vmm/snapshot_store.hpp"

namespace toss {

SnapshotStore::SnapshotStore(const SystemConfig& cfg) : cfg_(&cfg) {}

u64 SnapshotStore::allocate_file_id() {
  return next_file_id_.fetch_add(1, std::memory_order_relaxed);
}

u64 SnapshotStore::put_single_tier(const GuestMemory& memory,
                                   const VmState& state) {
  // Stage first (the "temp file"): a torn write aborts before any store
  // state — including the id counter — changes, so the previous snapshot
  // generation stays the one readers see. The exclusive guard's unlock
  // bumps the version either way, so optimistic readers revalidate.
  ExclusiveLatchGuard guard(latch_);
  if (faults_ && faults_->should_fire(FaultSite::kPutSingleTier))
    throw Error(ErrorCode::kTransientIo,
                "torn write persisting single-tier snapshot");
  const u64 id = allocate_file_id();
  single_tier_.emplace(id, SingleTierSnapshot(id, memory, state));
  return id;
}

const SingleTierSnapshot* SnapshotStore::get_single_tier_unlocked(
    u64 file_id) const {
  auto it = single_tier_.find(file_id);
  return it == single_tier_.end() ? nullptr : &it->second;
}

const SingleTierSnapshot* SnapshotStore::get_single_tier(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  return get_single_tier_unlocked(file_id);
}

void SnapshotStore::put_tiered(TieredSnapshot snapshot) {
  // The tiered artifact is one file per ladder rank plus the layout; the
  // rename step publishes all of them at once. A torn write fires before
  // the alias or blob maps are touched.
  ExclusiveLatchGuard guard(latch_);
  if (faults_ && faults_->should_fire(FaultSite::kPutTiered))
    throw Error(ErrorCode::kTransientIo,
                "torn write persisting tiered snapshot");
  const u64 primary = snapshot.fast_file_id();
  for (size_t r = 1; r < snapshot.tier_count(); ++r)
    tiered_alias_.emplace(snapshot.file_id(r), primary);
  tiered_.emplace(primary, std::move(snapshot));
}

u64 SnapshotStore::resolve_tiered(u64 file_id) const {
  if (auto alias = tiered_alias_.find(file_id); alias != tiered_alias_.end())
    return alias->second;
  return file_id;
}

TieredSnapshot* SnapshotStore::find_tiered(u64 file_id) {
  auto it = tiered_.find(resolve_tiered(file_id));
  return it == tiered_.end() ? nullptr : &it->second;
}

const TieredSnapshot* SnapshotStore::get_tiered_unlocked(u64 file_id) const {
  const u64 fast_id = resolve_tiered(file_id);
  if (quarantined_.count(fast_id) > 0) return nullptr;
  auto it = tiered_.find(fast_id);
  return it == tiered_.end() ? nullptr : &it->second;
}

const TieredSnapshot* SnapshotStore::get_tiered(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  return get_tiered_unlocked(file_id);
}

const SingleTierSnapshot& SnapshotStore::fetch_single_tier(
    u64 file_id) const {
  const SingleTierSnapshot* snap = get_single_tier(file_id);
  if (snap == nullptr)
    throw Error(ErrorCode::kSnapshotMissing,
                "single-tier snapshot file " + std::to_string(file_id) +
                    " not found");
  return *snap;
}

const TieredSnapshot& SnapshotStore::fetch_tiered(u64 file_id) {
  // At-rest damage is discovered at read time: arm the corruption sites
  // before the lookup so the caller's verify pass sees what a real store
  // would hand back. Arming mutates the stored blob, so the whole
  // arm-then-resolve sequence holds the latch exclusive (the RAII guard
  // unlocks — and bumps the version — even on the throw paths below).
  ExclusiveLatchGuard guard(latch_);
  if (faults_ != nullptr) {
    if (faults_->should_fire(FaultSite::kTierBitrot)) {
      if (TieredSnapshot* snap = find_tiered(file_id);
          snap != nullptr && snap->fast_pages() > 0)
        snap->corrupt_fast_page(
            faults_->draw(FaultSite::kTierBitrot, snap->fast_pages()));
    }
    if (faults_->should_fire(FaultSite::kTierTruncate)) {
      if (TieredSnapshot* snap = find_tiered(file_id)) snap->truncate_fast_file();
    }
  }
  const TieredSnapshot* snap = get_tiered_unlocked(file_id);
  if (snap == nullptr) {
    const bool quarantined = is_quarantined_unlocked(file_id);
    throw Error(ErrorCode::kSnapshotMissing,
                "tiered snapshot file " + std::to_string(file_id) +
                    (quarantined ? " is quarantined" : " not found"));
  }
  return *snap;
}

Result<void> SnapshotStore::verify_tiered_unlocked(u64 file_id) const {
  const TieredSnapshot* snap = get_tiered_unlocked(file_id);
  if (snap == nullptr)
    return {ErrorCode::kSnapshotMissing,
            "tiered snapshot file " + std::to_string(file_id) +
                (is_quarantined_unlocked(file_id) ? " is quarantined"
                                                  : " not found")};
  if (const auto violation = snap->verify())
    return {ErrorCode::kSnapshotCorrupted,
            "tiered snapshot file " + std::to_string(file_id) + ": " +
                *violation};
  return {};
}

Result<void> SnapshotStore::verify_tiered(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  return verify_tiered_unlocked(file_id);
}

u64 SnapshotStore::resident_fast_bytes(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  if (const TieredSnapshot* t = get_tiered_unlocked(file_id))
    return bytes_for_pages(t->fast_pages());
  if (const SingleTierSnapshot* s = get_single_tier_unlocked(file_id))
    return s->memory_bytes();
  return 0;
}

u64 SnapshotStore::resident_slow_bytes(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  if (const TieredSnapshot* t = get_tiered_unlocked(file_id))
    return bytes_for_pages(t->slow_pages());
  return 0;
}

u64 SnapshotStore::resident_tier_bytes(u64 file_id, size_t rank) const {
  SharedLatchGuard guard(latch_);
  if (const TieredSnapshot* t = get_tiered_unlocked(file_id))
    return rank < t->tier_count() ? bytes_for_pages(t->tier_pages(rank)) : 0;
  if (const SingleTierSnapshot* s = get_single_tier_unlocked(file_id))
    return rank == 0 ? s->memory_bytes() : 0;
  return 0;
}

void SnapshotStore::quarantine_tiered(u64 file_id) {
  ExclusiveLatchGuard guard(latch_);
  const u64 fast_id = resolve_tiered(file_id);
  if (tiered_.count(fast_id) == 0) return;
  if (quarantined_.insert(fast_id).second)
    quarantine_count_.fetch_add(1, std::memory_order_release);
}

bool SnapshotStore::is_quarantined_unlocked(u64 file_id) const {
  return quarantined_.count(resolve_tiered(file_id)) > 0;
}

bool SnapshotStore::is_quarantined(u64 file_id) const {
  SharedLatchGuard guard(latch_);
  return is_quarantined_unlocked(file_id);
}

bool SnapshotStore::corrupt_tiered_page(u64 file_id, u64 fast_file_page) {
  ExclusiveLatchGuard guard(latch_);
  TieredSnapshot* snap = find_tiered(file_id);
  if (snap == nullptr || fast_file_page >= snap->fast_pages()) return false;
  snap->corrupt_fast_page(fast_file_page);
  return true;
}

bool SnapshotStore::truncate_tiered(u64 file_id) {
  ExclusiveLatchGuard guard(latch_);
  TieredSnapshot* snap = find_tiered(file_id);
  if (snap == nullptr || snap->fast_pages() == 0) return false;
  snap->truncate_fast_file();
  return true;
}

Nanos SnapshotStore::seq_read_ns(u64 bytes) const {
  return static_cast<double>(bytes) / cfg_->disk.seq_read_bw_bytes_per_ns;
}

}  // namespace toss
