#include "vmm/snapshot_store.hpp"

namespace toss {

SnapshotStore::SnapshotStore(const SystemConfig& cfg) : cfg_(&cfg) {}

u64 SnapshotStore::allocate_file_id() { return next_file_id_++; }

u64 SnapshotStore::put_single_tier(const GuestMemory& memory,
                                   const VmState& state) {
  const u64 id = allocate_file_id();
  single_tier_.emplace(id, SingleTierSnapshot(id, memory, state));
  return id;
}

const SingleTierSnapshot* SnapshotStore::get_single_tier(u64 file_id) const {
  auto it = single_tier_.find(file_id);
  return it == single_tier_.end() ? nullptr : &it->second;
}

void SnapshotStore::put_tiered(TieredSnapshot snapshot) {
  const u64 fast_id = snapshot.fast_file_id();
  tiered_alias_.emplace(snapshot.slow_file_id(), fast_id);
  tiered_.emplace(fast_id, std::move(snapshot));
}

const TieredSnapshot* SnapshotStore::get_tiered(u64 file_id) const {
  if (auto alias = tiered_alias_.find(file_id); alias != tiered_alias_.end())
    file_id = alias->second;
  auto it = tiered_.find(file_id);
  return it == tiered_.end() ? nullptr : &it->second;
}

Nanos SnapshotStore::seq_read_ns(u64 bytes) const {
  return static_cast<double>(bytes) / cfg_->disk.seq_read_bw_bytes_per_ns;
}

}  // namespace toss
