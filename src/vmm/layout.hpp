// Memory layout file of a tiered snapshot (Section V-D).
//
// Each entry records, for one memory region: which tier it lives in, its
// offset within that tier's snapshot file, its offset within guest memory,
// and its size. At restore time the VMM creates one memory mapping per
// entry, so the entry count directly drives setup time (Section V-F).
//
// Since the tier-ladder redesign the layout is tier-indexed: entries carry
// a ladder rank and the file records how deep the ladder was at tiering
// time (format v3, "TOSSLAY3"). The two-tier v2 format is still readable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mem/tier.hpp"

namespace toss {

struct LayoutEntry {
  Tier tier = tier_index(0);
  u64 file_page = 0;   ///< offset within the tier's snapshot file, in pages
  u64 guest_page = 0;  ///< offset within guest memory, in pages
  u64 page_count = 0;
  /// Content checksum of the region's pages in the tier file, written at
  /// tiering time (Step IV). Restores recompute it before mapping; a
  /// mismatch means bitrot or a torn write and the artifact is quarantined
  /// instead of mapped (TieredSnapshot::verify).
  u64 checksum = 0;

  u64 guest_page_end() const { return guest_page + page_count; }
  u64 bytes() const { return bytes_for_pages(page_count); }
  bool operator==(const LayoutEntry&) const = default;
};

/// FNV-1a over a region of page versions; the per-region checksum stored in
/// LayoutEntry::checksum. `file` is a tier file's version array.
u64 region_checksum(const std::vector<u32>& file, u64 file_page,
                    u64 page_count);

class MemoryLayoutFile {
 public:
  MemoryLayoutFile() = default;
  MemoryLayoutFile(u64 guest_pages, std::vector<LayoutEntry> entries,
                   size_t tier_count = 2);

  u64 guest_pages() const { return guest_pages_; }
  const std::vector<LayoutEntry>& entries() const { return entries_; }
  size_t entry_count() const { return entries_.size(); }
  /// Ladder depth this layout was tiered against; entry tier tags are all
  /// below it.
  size_t tier_count() const { return tier_count_; }

  /// Entries must be sorted by guest offset, tile guest memory exactly, and
  /// each tier's file offsets must be contiguous from zero in entry order.
  bool valid() const;

  /// Number of entries (mappings) per tier.
  u64 entries_in(Tier t) const;

  /// Pages per tier.
  u64 pages_in(Tier t) const;

  /// Fraction of guest bytes below the fastest tier.
  double slow_fraction() const;

  std::vector<u8> serialize() const;
  static std::optional<MemoryLayoutFile> deserialize(
      const std::vector<u8>& bytes);

  bool operator==(const MemoryLayoutFile&) const = default;

 private:
  u64 guest_pages_ = 0;
  size_t tier_count_ = 2;
  std::vector<LayoutEntry> entries_;
};

/// Structural validation with a diagnostic: entries must be sorted by guest
/// offset, non-empty, non-overlapping and gap-free (they tile guest memory
/// exactly, so sizes sum to the snapshot size), carry a tier tag inside the
/// recorded ladder, and each tier's file offsets must be contiguous from
/// zero in entry order. Returns std::nullopt when the layout is
/// well-formed, else a description of the first violation ("entry 3:
/// overlaps entry 2 ..."). `valid()` is this predicate without the
/// diagnostic; checked builds call this at the Step IV seam via
/// TOSS_VALIDATE.
std::optional<std::string> validate_layout(const MemoryLayoutFile& layout);

}  // namespace toss
