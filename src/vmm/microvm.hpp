// MicroVm: the Firecracker-like virtual machine model.
//
// A restore policy (vanilla lazy, REAP prefetch, TOSS tiered) compiles to a
// RestorePlan: memory mappings plus optional eager loads. The VM then
// executes an invocation's BurstTrace, charging page faults on first touch
// (minor when the backing page is cached/DAX, major when it must come from
// disk), copy-on-write faults on first write, and tier-dependent memory
// time for the accesses themselves.
#pragma once

#include <vector>

#include "mem/access_cost.hpp"
#include "trace/burst.hpp"
#include "vmm/snapshot_store.hpp"

namespace toss {

/// One memory mapping established at restore (one mmap() call).
struct RestoreMapping {
  u64 guest_page = 0;
  u64 page_count = 0;
  Tier tier = tier_index(0);
  u64 file_id = 0;
  u64 file_page = 0;
  /// DAX mappings (deep-tier files) access the backing device directly:
  /// first touch is a minor fault, never a disk read.
  bool dax = false;
};

/// Pages loaded eagerly at restore (REAP's working-set prefetch): read from
/// disk sequentially and their PTEs pre-populated, so execution takes no
/// fault at all for them.
struct EagerLoad {
  u64 guest_page = 0;
  u64 page_count = 0;
  u64 file_id = 0;
  u64 file_page = 0;
};

struct RestorePlan {
  VmState vm_state;
  u64 guest_pages = 0;
  std::vector<RestoreMapping> mappings;
  std::vector<EagerLoad> eager;

  u64 mapping_count() const { return static_cast<u64>(mappings.size()); }
  u64 eager_pages() const;
};

struct SetupResult {
  Nanos setup_ns = 0;
  Nanos vm_state_ns = 0;
  Nanos mmap_ns = 0;
  Nanos eager_load_ns = 0;
  u64 mappings = 0;
  u64 eager_pages = 0;
};

struct ExecutionResult {
  Nanos exec_ns = 0;  ///< cpu + memory + faults + profiling overhead
  Nanos cpu_ns = 0;
  Nanos mem_ns = 0;        ///< sum of mem_tier_ns over the ladder
  /// Memory time per ladder rank (0 = fastest); ranks beyond the ladder
  /// stay zero. Each rank is its own contention pool.
  std::array<Nanos, kMaxTiers> mem_tier_ns{};
  Nanos fault_ns = 0;      ///< all fault handling, incl. disk_ns
  Nanos disk_ns = 0;       ///< device portion of major faults
  Nanos profiling_overhead_ns = 0;
  u64 minor_faults = 0;
  u64 major_faults = 0;
  u64 cow_faults = 0;
  u64 disk_pages = 0;       ///< pages demand-read from disk
  u64 touched_pages = 0;
  u64 slow_accesses = 0;    ///< LLC misses served below the fastest tier
  u64 total_accesses = 0;
  /// Device bandwidth demand per rank, for the concurrency contention model.
  std::array<double, kMaxTiers> tier_read_bytes{};
  std::array<double, kMaxTiers> tier_write_bytes{};
};

struct InvocationResult {
  SetupResult setup;
  ExecutionResult exec;
  Nanos total_ns() const { return setup.setup_ns + exec.exec_ns; }
};

class MicroVm {
 public:
  MicroVm(const SystemConfig& cfg, SnapshotStore& store);

  /// Cold boot with anonymous DRAM memory (initial execution, Step I).
  SetupResult boot(u64 guest_bytes, const VmState& state);

  /// Restore from a plan. Establishes mappings, performs eager loads.
  SetupResult restore(const RestorePlan& plan);

  /// Execute one invocation: `trace` is its memory activity, `cpu_ns` the
  /// pure compute time. `profiling_overhead_ns` is added when DAMON rides
  /// along. Mutates residency/page-cache state.
  ExecutionResult execute(const BurstTrace& trace, Nanos cpu_ns,
                          Nanos profiling_overhead_ns = 0);

  /// Write-back of the workload's dirty pages into guest memory versions,
  /// so a snapshot taken after execution reflects the run.
  void apply_writes(const BurstTrace& trace);

  /// Snapshot current guest memory (single tier); returns file id.
  u64 take_snapshot();

  const GuestMemory& memory() const { return memory_; }
  GuestMemory& memory() { return memory_; }
  const PagePlacement& placement() const { return placement_; }
  const VmState& vm_state() const { return vm_state_; }
  u64 guest_pages() const { return memory_.num_pages(); }

 private:
  struct PageBacking {
    u64 file_id = 0;
    u64 file_page = 0;
    bool dax = false;
    bool file_backed = false;
  };

  Nanos fault_cost(u64 page, Pattern pattern);

  /// Fault counters for the execute() call in progress.
  ExecutionResult pending_;

  const SystemConfig* cfg_;
  SnapshotStore* store_;
  AccessCostModel cost_model_;

  GuestMemory memory_{0};
  VmState vm_state_;
  PagePlacement placement_;
  std::vector<PageBacking> backing_;
  std::vector<bool> resident_;
  std::vector<bool> written_;
};

}  // namespace toss
