#include "vmm/snapshot.hpp"

namespace toss {

SingleTierSnapshot::SingleTierSnapshot(u64 file_id, const GuestMemory& memory,
                                       VmState state)
    : file_id_(file_id),
      page_versions_(memory.versions()),
      vm_state_(state) {}

GuestMemory SingleTierSnapshot::materialize() const {
  GuestMemory mem(memory_bytes());
  for (u64 p = 0; p < num_pages(); ++p) mem.set_version(p, page_versions_[p]);
  return mem;
}

}  // namespace toss
