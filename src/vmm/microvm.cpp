#include "vmm/microvm.hpp"

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace toss {

u64 RestorePlan::eager_pages() const {
  u64 n = 0;
  for (const auto& e : eager) n += e.page_count;
  return n;
}

MicroVm::MicroVm(const SystemConfig& cfg, SnapshotStore& store)
    : cfg_(&cfg), store_(&store), cost_model_(cfg) {}

SetupResult MicroVm::boot(u64 guest_bytes, const VmState& state) {
  memory_ = GuestMemory(guest_bytes);
  vm_state_ = state;
  const u64 n = memory_.num_pages();
  placement_ = PagePlacement(n, tier_index(0));
  backing_.assign(n, PageBacking{});   // anonymous, zero-fill on demand
  resident_.assign(n, false);
  written_.assign(n, false);

  SetupResult r;
  r.vm_state_ns = cfg_->vmm.boot_ns;
  r.mmap_ns = cfg_->vmm.mmap_region_ns;  // one anonymous mapping
  r.mappings = 1;
  r.setup_ns = r.vm_state_ns + r.mmap_ns;
  return r;
}

SetupResult MicroVm::restore(const RestorePlan& plan) {
  // Injection sites for the restore failure domain: a transient mapping
  // failure (retried by the recovery ladder) and a slow-tier device stall
  // (latency spike charged to setup, not an error). Armed before any VM
  // state changes so a thrown fault leaves this MicroVm untouched.
  FaultInjector* faults = store_->faults();
  if (faults != nullptr && faults->should_fire(FaultSite::kRestoreMapping))
    throw Error(ErrorCode::kTransientIo,
                "mmap failed establishing restore mappings");

  vm_state_ = plan.vm_state;
  const u64 n = plan.guest_pages;
  memory_ = GuestMemory(bytes_for_pages(n));
  placement_ = PagePlacement(n, tier_index(0));
  backing_.assign(n, PageBacking{});
  resident_.assign(n, false);
  written_.assign(n, false);

  SetupResult r;
  r.vm_state_ns = cfg_->vmm.vm_state_load_ns;

  bool maps_slow_tier = false;
  for (const auto& m : plan.mappings) {
    TOSS_REQUIRE(m.guest_page + m.page_count <= n);
    r.mmap_ns += cfg_->vmm.mmap_region_ns;
    ++r.mappings;
    maps_slow_tier |= tier_rank(m.tier) >= 1;
    for (u64 i = 0; i < m.page_count; ++i) {
      const u64 g = m.guest_page + i;
      placement_.set(g, m.tier);
      backing_[g] = PageBacking{m.file_id, m.file_page + i, m.dax, true};
    }
  }
  if (faults != nullptr && maps_slow_tier &&
      faults->should_fire(FaultSite::kSlowTierStall))
    r.mmap_ns += faults->stall_ns(FaultSite::kSlowTierStall);

  // Eager loads: sequential disk reads (through the page cache) plus PTE
  // population, REAP-style. Contiguous file ranges stream at full disk
  // bandwidth; the cache may already hold some pages.
  HostPageCache& cache = store_->page_cache();
  for (const auto& e : plan.eager) {
    u64 uncached = 0;
    for (u64 i = 0; i < e.page_count; ++i) {
      if (!cache.contains(e.file_id, e.file_page + i)) ++uncached;
      resident_[e.guest_page + i] = true;
    }
    cache.fill_range(e.file_id, e.file_page, e.page_count);
    r.eager_load_ns += store_->seq_read_ns(bytes_for_pages(uncached));
    r.eager_load_ns +=
        static_cast<double>(e.page_count) * cfg_->vmm.pte_populate_ns;
    r.eager_pages += e.page_count;
  }

  // Materialize contents for integrity checking: guest memory versions come
  // from the backing snapshot files. A mapping over a file the store cannot
  // resolve (deleted, quarantined, or never written) is a hard restore
  // failure, not a silent zero-fill.
  for (const auto& m : plan.mappings) {
    if (!m.file_id) continue;
    if (const SingleTierSnapshot* snap = store_->get_single_tier(m.file_id)) {
      if (m.file_page + m.page_count > snap->num_pages())
        throw Error(ErrorCode::kSnapshotCorrupted,
                    "restore mapping overruns snapshot file " +
                        std::to_string(m.file_id) + " (" +
                        std::to_string(m.file_page + m.page_count) + " > " +
                        std::to_string(snap->num_pages()) + " pages)");
      for (u64 i = 0; i < m.page_count; ++i)
        memory_.set_version(m.guest_page + i,
                            snap->page_version(m.file_page + i));
      continue;
    }
    // Tiered snapshot files resolve by either the fast or the slow file id.
    const TieredSnapshot* tiered = store_->get_tiered(m.file_id);
    if (tiered == nullptr)
      throw Error(ErrorCode::kSnapshotMissing,
                  "restore mapping references missing snapshot file " +
                      std::to_string(m.file_id));
    const u64 file_pages = tiered->tier_pages(tier_rank(m.tier));
    if (m.file_page + m.page_count > file_pages)
      throw Error(ErrorCode::kSnapshotCorrupted,
                  "restore mapping overruns tier file " +
                      std::to_string(m.file_id) + " (" +
                      std::to_string(m.file_page + m.page_count) + " > " +
                      std::to_string(file_pages) + " pages)");
    for (u64 i = 0; i < m.page_count; ++i) {
      const u64 fp = m.file_page + i;
      memory_.set_version(
          m.guest_page + i,
          tiered->tier_page_version(tier_rank(m.tier), fp));
    }
  }

  r.setup_ns = r.vm_state_ns + r.mmap_ns + r.eager_load_ns;
  return r;
}

Nanos MicroVm::fault_cost(u64 page, Pattern pattern) {
  const PageBacking& b = backing_[page];
  if (!b.file_backed || b.dax) {
    // Anonymous zero-fill or DAX device mapping: minor fault only.
    ++pending_.minor_faults;
    return cfg_->vmm.minor_fault_ns;
  }
  HostPageCache& cache = store_->page_cache();
  if (cache.contains(b.file_id, b.file_page)) {
    ++pending_.minor_faults;
    return cfg_->vmm.minor_fault_ns;
  }
  // Major fault: 4 KiB random read from disk. Sequential streams benefit
  // from readahead (neighbors land in the cache); random access does not.
  if (pattern == Pattern::kSequential) {
    cache.fill(b.file_id, b.file_page);
  } else {
    cache.fill_one(b.file_id, b.file_page);
  }
  ++pending_.major_faults;
  ++pending_.disk_pages;
  pending_.disk_ns += cfg_->disk.random_read_latency_ns;
  return cfg_->disk.random_read_latency_ns + cfg_->vmm.major_fault_sw_ns;
}

ExecutionResult MicroVm::execute(const BurstTrace& trace, Nanos cpu_ns,
                                 Nanos profiling_overhead_ns) {
  // Guest crash mid-invocation (before any snapshot is taken): the whole
  // attempt is lost and the recovery ladder re-restores and re-executes.
  if (FaultInjector* faults = store_->faults();
      faults != nullptr && faults->should_fire(FaultSite::kExecCrash))
    throw Error(ErrorCode::kExecutionCrashed,
                "guest crashed mid-invocation");
  pending_ = ExecutionResult{};
  ExecutionResult& r = pending_;
  r.cpu_ns = cpu_ns;
  r.profiling_overhead_ns = profiling_overhead_ns;

  const u64 n = memory_.num_pages();
  for (size_t bi = 0; bi < trace.bursts().size(); ++bi) {
    const AccessBurst& b = trace.bursts()[bi];
    TOSS_REQUIRE(b.page_end() <= n);
    (void)n;
    const auto& counts = trace.counts_of(bi);

    // First-touch faults, in access order within the burst.
    for (u64 i = 0; i < b.page_count; ++i) {
      if (counts[i] == 0) continue;
      const u64 g = b.page_begin + i;
      if (!resident_[g]) {
        r.fault_ns += fault_cost(g, b.pattern);
        resident_[g] = true;
        ++r.touched_pages;
      }
      if (b.write_fraction > 0.0 && !written_[g]) {
        // Copy-on-write: duplicate the page within its tier.
        const TierSpec& spec = cfg_->tier(placement_.tier_of(g));
        r.fault_ns += cfg_->vmm.minor_fault_ns +
                      static_cast<double>(kPageSize) /
                          spec.write_bw_bytes_per_ns;
        written_[g] = true;
        ++r.cow_faults;
      }
      if (placement_.rank_of(b.page_begin + i) != 0)
        r.slow_accesses += counts[i];
      r.total_accesses += counts[i];
    }
    const BurstCost bc = cost_model_.burst_cost(b, counts, placement_);
    for (size_t rank = 0; rank < cfg_->tier_count(); ++rank) {
      r.mem_tier_ns[rank] += bc.tier_ns[rank];
      r.tier_read_bytes[rank] += bc.tier_read_bytes[rank];
      r.tier_write_bytes[rank] += bc.tier_write_bytes[rank];
    }
    r.mem_ns += bc.total_ns();
  }

  r.exec_ns = r.cpu_ns + r.mem_ns + r.fault_ns + r.profiling_overhead_ns;
  return r;
}

void MicroVm::apply_writes(const BurstTrace& trace) {
  for (const auto& b : trace.bursts()) {
    if (b.write_fraction <= 0.0) continue;
    for (u64 p = b.page_begin; p < b.page_end(); ++p)
      memory_.bump_version(p);
  }
}

u64 MicroVm::take_snapshot() {
  return store_->put_single_tier(memory_, vm_state_);
}

}  // namespace toss
