// Tiered snapshot: two per-tier memory files plus the memory layout file
// (Section V-D). Built by serially copying each region of the single-tier
// snapshot into the file of its assigned tier.
//
// At restore time the fast file behaves like a normal disk file (pages are
// demand-loaded into DRAM through the host page cache), while the slow file
// is DAX-mapped straight out of the slow tier — no copy, which is why TOSS
// setup time is constant in snapshot size.
#pragma once

#include "mem/placement.hpp"
#include "vmm/layout.hpp"
#include "vmm/snapshot.hpp"

namespace toss {

class TieredSnapshot {
 public:
  TieredSnapshot() = default;

  /// Partition `snap` by per-page `placement`. Consecutive pages in the same
  /// tier become one layout entry (the paper's "Bins Merging" guarantees the
  /// optimizer already merged same-tier neighbors; this copy is agnostic).
  /// `fast_file_id`/`slow_file_id` identify the two files for page-cache
  /// accounting.
  static TieredSnapshot build(const SingleTierSnapshot& snap,
                              const PagePlacement& placement,
                              u64 fast_file_id, u64 slow_file_id);

  const MemoryLayoutFile& layout() const { return layout_; }
  const VmState& vm_state() const { return vm_state_; }

  u64 fast_file_id() const { return fast_file_id_; }
  u64 slow_file_id() const { return slow_file_id_; }

  u64 guest_pages() const { return layout_.guest_pages(); }
  u64 fast_pages() const { return static_cast<u64>(fast_versions_.size()); }
  u64 slow_pages() const { return static_cast<u64>(slow_versions_.size()); }

  u32 fast_page_version(u64 file_page) const { return fast_versions_[file_page]; }
  u32 slow_page_version(u64 file_page) const { return slow_versions_[file_page]; }

  /// Look up where a guest page lives: (tier, file page index).
  struct Location {
    Tier tier;
    u64 file_page;
  };
  Location locate(u64 guest_page) const;

  /// Reassemble the guest memory image from the two files + layout; must be
  /// identical to the original snapshot's memory (tested invariant).
  GuestMemory materialize() const;

  /// Content verification: every layout entry's stored checksum must match
  /// the bytes actually in its tier file, and the tier files must be exactly
  /// as long as the layout says. Returns std::nullopt when intact, else a
  /// description of the first violation ("entry 2: checksum mismatch ...").
  /// The recovery ladder runs this before every tiered restore; a failure
  /// quarantines the artifact instead of mapping it.
  std::optional<std::string> verify() const;

  /// Fault/test hooks modelling at-rest damage. Checksums are left stale on
  /// purpose, which is exactly what verify() exists to catch.
  void corrupt_fast_page(u64 file_page);  ///< flip one page's content
  void truncate_fast_file();              ///< drop the fast file's last page

  /// Full binary serialization of the tiered artifact (vm state + layout
  /// file + both tier files), as it would be stored on disk/PMem.
  std::vector<u8> serialize() const;
  static std::optional<TieredSnapshot> deserialize(
      const std::vector<u8>& bytes);

  bool operator==(const TieredSnapshot&) const = default;

 private:
  MemoryLayoutFile layout_;
  VmState vm_state_;
  u64 fast_file_id_ = 0;
  u64 slow_file_id_ = 0;
  std::vector<u32> fast_versions_;
  std::vector<u32> slow_versions_;
};

}  // namespace toss
