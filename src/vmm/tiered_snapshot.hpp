// Tiered snapshot: one memory file per ladder rank plus the memory layout
// file (Section V-D). Built by serially copying each region of the
// single-tier snapshot into the file of its assigned tier.
//
// At restore time the rank-0 (fastest-tier) file behaves like a normal disk
// file (pages are demand-loaded into DRAM through the host page cache),
// while every deeper rank's file is DAX-mapped straight out of its device —
// no copy, which is why TOSS setup time is constant in snapshot size.
#pragma once

#include "mem/placement.hpp"
#include "vmm/layout.hpp"
#include "vmm/snapshot.hpp"

namespace toss {

class TieredSnapshot {
 public:
  TieredSnapshot() = default;

  /// Partition `snap` by per-page `placement`. Consecutive pages in the same
  /// tier become one layout entry (the paper's "Bins Merging" guarantees the
  /// optimizer already merged same-tier neighbors; this copy is agnostic).
  /// `file_ids` identifies one file per ladder rank (index 0 = fastest) for
  /// page-cache accounting; its length fixes the artifact's ladder depth.
  static TieredSnapshot build(const SingleTierSnapshot& snap,
                              const PagePlacement& placement,
                              std::vector<u64> file_ids);

  const MemoryLayoutFile& layout() const { return layout_; }
  const VmState& vm_state() const { return vm_state_; }

  /// Ladder depth of the artifact (number of tier files).
  size_t tier_count() const { return file_ids_.size(); }

  u64 file_id(size_t rank) const { return file_ids_[rank]; }
  const std::vector<u64>& file_ids() const { return file_ids_; }

  u64 guest_pages() const { return layout_.guest_pages(); }
  u64 tier_pages(size_t rank) const {
    return static_cast<u64>(tier_versions_[rank].size());
  }
  u32 tier_page_version(size_t rank, u64 file_page) const {
    return tier_versions_[rank][file_page];
  }

  /// Convenience rollups: the fastest rank, and everything below it.
  u64 fast_file_id() const { return file_ids_.front(); }
  u64 fast_pages() const { return tier_pages(0); }
  u64 slow_pages() const {
    u64 n = 0;
    for (size_t r = 1; r < tier_versions_.size(); ++r) n += tier_pages(r);
    return n;
  }

  /// Look up where a guest page lives: (tier, file page index).
  struct Location {
    Tier tier;
    u64 file_page;
  };
  Location locate(u64 guest_page) const;

  /// Reassemble the guest memory image from the tier files + layout; must be
  /// identical to the original snapshot's memory (tested invariant).
  GuestMemory materialize() const;

  /// Content verification: every layout entry's stored checksum must match
  /// the bytes actually in its tier file, and the tier files must be exactly
  /// as long as the layout says. Returns std::nullopt when intact, else a
  /// description of the first violation ("entry 2: checksum mismatch ...").
  /// The recovery ladder runs this before every tiered restore; a failure
  /// quarantines the artifact instead of mapping it.
  std::optional<std::string> verify() const;

  /// Fault/test hooks modelling at-rest damage to the rank-0 file. Checksums
  /// are left stale on purpose, which is exactly what verify() exists to
  /// catch.
  void corrupt_fast_page(u64 file_page);  ///< flip one page's content
  void truncate_fast_file();              ///< drop the fast file's last page

  /// Full binary serialization of the tiered artifact (vm state + layout
  /// file + all tier files), as it would be stored on disk/PMem. Writes the
  /// ladder-aware "TOSSTIR2" format; the two-tier "TOSSTIR1" format is
  /// still accepted on read.
  std::vector<u8> serialize() const;
  static std::optional<TieredSnapshot> deserialize(
      const std::vector<u8>& bytes);

  bool operator==(const TieredSnapshot&) const = default;

 private:
  MemoryLayoutFile layout_;
  VmState vm_state_;
  std::vector<u64> file_ids_;                  ///< one per rank, 0 = fastest
  std::vector<std::vector<u32>> tier_versions_;  ///< page contents per rank
};

}  // namespace toss
