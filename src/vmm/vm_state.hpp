// Virtual machine monitor state captured alongside guest memory in a
// snapshot: vCPU registers and emulated device state. Modeled as opaque
// blobs with sizes that contribute to snapshot load time.
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"

namespace toss {

struct VmState {
  u32 vcpu_count = 1;
  u64 vcpu_state_bytes = 16 * kKiB;    ///< per-vCPU register/MSR state
  u64 device_state_bytes = 128 * kKiB; ///< virtio-net/block/serial, KVM irqchip
  u64 config_hash = 0;                 ///< identity of the machine config

  u64 total_bytes() const {
    return static_cast<u64>(vcpu_count) * vcpu_state_bytes +
           device_state_bytes;
  }

  std::vector<u8> serialize() const;
  static std::optional<VmState> deserialize(const std::vector<u8>& bytes);

  bool operator==(const VmState&) const = default;
};

}  // namespace toss
