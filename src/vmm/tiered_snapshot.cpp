#include "vmm/tiered_snapshot.hpp"

#include "util/contracts.hpp"

namespace toss {

TieredSnapshot TieredSnapshot::build(const SingleTierSnapshot& snap,
                                     const PagePlacement& placement,
                                     std::vector<u64> file_ids) {
  TOSS_REQUIRE(placement.num_pages() == snap.num_pages(),
               "placement must cover the snapshot exactly");
  TOSS_REQUIRE(!file_ids.empty() && file_ids.size() <= kMaxTiers);
  TieredSnapshot out;
  out.vm_state_ = snap.vm_state();
  out.file_ids_ = std::move(file_ids);
  const size_t ranks = out.file_ids_.size();
  out.tier_versions_.resize(ranks);

  std::vector<LayoutEntry> entries;
  const u64 n = snap.num_pages();
  u64 begin = 0;
  std::vector<u64> file_cursor(ranks, 0);
  while (begin < n) {
    const Tier t = placement.tier_of(begin);
    const size_t rank = tier_rank(t);
    TOSS_REQUIRE(rank < ranks, "placement rank outside the artifact ladder");
    u64 end = begin + 1;
    while (end < n && placement.tier_of(end) == t) ++end;
    LayoutEntry e;
    e.tier = t;
    e.guest_page = begin;
    e.page_count = end - begin;
    e.file_page = file_cursor[rank];
    file_cursor[rank] += e.page_count;
    entries.push_back(e);

    // Serial copy of the region's contents into the tier file, then seal
    // the region with its content checksum (verified again at restore).
    auto& file = out.tier_versions_[rank];
    for (u64 p = begin; p < end; ++p) file.push_back(snap.page_version(p));
    entries.back().checksum =
        region_checksum(file, entries.back().file_page, e.page_count);
    begin = end;
  }
  out.layout_ = MemoryLayoutFile(n, std::move(entries), ranks);
  // Step IV seam: the layout a restore will mmap from must tile guest
  // memory exactly; a violation here means corrupted restores later.
  TOSS_VALIDATE(validate_layout(out.layout_));
  return out;
}

TieredSnapshot::Location TieredSnapshot::locate(u64 guest_page) const {
  for (const auto& e : layout_.entries()) {
    if (guest_page >= e.guest_page && guest_page < e.guest_page_end())
      return Location{e.tier, e.file_page + (guest_page - e.guest_page)};
  }
  TOSS_ASSERT(false, "guest page outside layout");
  return Location{tier_index(0), 0};
}

namespace {
// Version 2 stores a ladder of tier files; version 1 is the fixed
// fast/slow pair and is still accepted on read.
constexpr u64 kMagicV2 = 0x544f535354495232ULL;  // "TOSSTIR2"
constexpr u64 kMagicV1 = 0x544f535354495231ULL;  // "TOSSTIR1"

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_u64(const std::vector<u8>& in, size_t& pos, u64& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

void put_blob(std::vector<u8>& out, const std::vector<u8>& blob) {
  put_u64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

bool get_blob(const std::vector<u8>& in, size_t& pos, std::vector<u8>& blob) {
  u64 size = 0;
  if (!get_u64(in, pos, size) || pos + size > in.size()) return false;
  blob.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + size));
  pos += size;
  return true;
}

void put_versions(std::vector<u8>& out, const std::vector<u32>& vs) {
  put_u64(out, vs.size());
  for (u32 v : vs)
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_versions(const std::vector<u8>& in, size_t& pos,
                  std::vector<u32>& vs) {
  u64 count = 0;
  if (!get_u64(in, pos, count) || pos + count * 4 > in.size()) return false;
  vs.resize(count);
  for (u64 i = 0; i < count; ++i) {
    u32 v = 0;
    for (int b = 0; b < 4; ++b)
      v |= static_cast<u32>(in[pos + i * 4 + static_cast<u64>(b)]) << (8 * b);
    vs[i] = v;
  }
  pos += count * 4;
  return true;
}
}  // namespace

std::vector<u8> TieredSnapshot::serialize() const {
  std::vector<u8> out;
  put_u64(out, kMagicV2);
  put_u64(out, file_ids_.size());
  for (u64 id : file_ids_) put_u64(out, id);
  put_blob(out, vm_state_.serialize());
  put_blob(out, layout_.serialize());
  for (const auto& vs : tier_versions_) put_versions(out, vs);
  return out;
}

std::optional<TieredSnapshot> TieredSnapshot::deserialize(
    const std::vector<u8>& bytes) {
  size_t pos = 0;
  u64 magic = 0;
  TieredSnapshot snap;
  if (!get_u64(bytes, pos, magic)) return std::nullopt;
  u64 ranks = 2;
  if (magic == kMagicV2) {
    if (!get_u64(bytes, pos, ranks) || ranks < 1 || ranks > kMaxTiers)
      return std::nullopt;
  } else if (magic != kMagicV1) {
    return std::nullopt;
  }
  snap.file_ids_.resize(ranks);
  for (u64 r = 0; r < ranks; ++r)
    if (!get_u64(bytes, pos, snap.file_ids_[r])) return std::nullopt;
  std::vector<u8> blob;
  if (!get_blob(bytes, pos, blob)) return std::nullopt;
  const auto state = VmState::deserialize(blob);
  if (!state) return std::nullopt;
  snap.vm_state_ = *state;
  if (!get_blob(bytes, pos, blob)) return std::nullopt;
  const auto layout = MemoryLayoutFile::deserialize(blob);
  if (!layout) return std::nullopt;
  snap.layout_ = *layout;
  if (snap.layout_.tier_count() != ranks) return std::nullopt;
  snap.tier_versions_.resize(ranks);
  for (u64 r = 0; r < ranks; ++r)
    if (!get_versions(bytes, pos, snap.tier_versions_[r])) return std::nullopt;
  // Cross-checks: each tier file must match the layout's page counts.
  for (u64 r = 0; r < ranks; ++r)
    if (snap.tier_versions_[r].size() != snap.layout_.pages_in(tier_index(r)))
      return std::nullopt;
  return snap;
}

std::optional<std::string> TieredSnapshot::verify() const {
  if (const auto structural = validate_layout(layout_)) return structural;
  if (layout_.tier_count() != tier_versions_.size())
    return "ladder depth mismatch: layout records " +
           std::to_string(layout_.tier_count()) + " tiers, artifact has " +
           std::to_string(tier_versions_.size()) + " files";
  for (size_t r = 0; r < tier_versions_.size(); ++r) {
    if (tier_versions_[r].size() != layout_.pages_in(tier_index(r)))
      return std::string(tier_name(tier_index(r))) +
             " tier file truncated: " +
             std::to_string(tier_versions_[r].size()) +
             " pages, layout expects " +
             std::to_string(layout_.pages_in(tier_index(r)));
  }
  const auto& entries = layout_.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LayoutEntry& e = entries[i];
    const auto& file = tier_versions_[tier_rank(e.tier)];
    if (region_checksum(file, e.file_page, e.page_count) != e.checksum)
      return "entry " + std::to_string(i) + ": checksum mismatch over " +
             std::to_string(e.page_count) + " pages at file page " +
             std::to_string(e.file_page);
  }
  return std::nullopt;
}

void TieredSnapshot::corrupt_fast_page(u64 file_page) {
  if (file_page < tier_versions_.front().size())
    ++tier_versions_.front()[file_page];
}

void TieredSnapshot::truncate_fast_file() {
  if (!tier_versions_.front().empty()) tier_versions_.front().pop_back();
}

GuestMemory TieredSnapshot::materialize() const {
  GuestMemory mem(bytes_for_pages(guest_pages()));
  for (const auto& e : layout_.entries()) {
    const auto& file = tier_versions_[tier_rank(e.tier)];
    for (u64 i = 0; i < e.page_count; ++i)
      mem.set_version(e.guest_page + i, file[e.file_page + i]);
  }
  return mem;
}

}  // namespace toss
