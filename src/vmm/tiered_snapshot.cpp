#include "vmm/tiered_snapshot.hpp"

#include "util/contracts.hpp"

namespace toss {

TieredSnapshot TieredSnapshot::build(const SingleTierSnapshot& snap,
                                     const PagePlacement& placement,
                                     u64 fast_file_id, u64 slow_file_id) {
  TOSS_REQUIRE(placement.num_pages() == snap.num_pages(),
               "placement must cover the snapshot exactly");
  TieredSnapshot out;
  out.vm_state_ = snap.vm_state();
  out.fast_file_id_ = fast_file_id;
  out.slow_file_id_ = slow_file_id;

  std::vector<LayoutEntry> entries;
  const u64 n = snap.num_pages();
  u64 begin = 0;
  u64 file_cursor[2] = {0, 0};
  while (begin < n) {
    const Tier t = placement.tier_of(begin);
    u64 end = begin + 1;
    while (end < n && placement.tier_of(end) == t) ++end;
    LayoutEntry e;
    e.tier = t;
    e.guest_page = begin;
    e.page_count = end - begin;
    e.file_page = file_cursor[static_cast<size_t>(t)];
    file_cursor[static_cast<size_t>(t)] += e.page_count;
    entries.push_back(e);

    // Serial copy of the region's contents into the tier file, then seal
    // the region with its content checksum (verified again at restore).
    auto& file = t == Tier::kFast ? out.fast_versions_ : out.slow_versions_;
    for (u64 p = begin; p < end; ++p) file.push_back(snap.page_version(p));
    entries.back().checksum =
        region_checksum(file, entries.back().file_page, e.page_count);
    begin = end;
  }
  out.layout_ = MemoryLayoutFile(n, std::move(entries));
  // Step IV seam: the layout a restore will mmap from must tile guest
  // memory exactly; a violation here means corrupted restores later.
  TOSS_VALIDATE(validate_layout(out.layout_));
  return out;
}

TieredSnapshot::Location TieredSnapshot::locate(u64 guest_page) const {
  for (const auto& e : layout_.entries()) {
    if (guest_page >= e.guest_page && guest_page < e.guest_page_end())
      return Location{e.tier, e.file_page + (guest_page - e.guest_page)};
  }
  TOSS_ASSERT(false, "guest page outside layout");
  return Location{Tier::kFast, 0};
}

namespace {
constexpr u64 kMagic = 0x544f535354495231ULL;  // "TOSSTIR1"

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_u64(const std::vector<u8>& in, size_t& pos, u64& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

void put_blob(std::vector<u8>& out, const std::vector<u8>& blob) {
  put_u64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

bool get_blob(const std::vector<u8>& in, size_t& pos, std::vector<u8>& blob) {
  u64 size = 0;
  if (!get_u64(in, pos, size) || pos + size > in.size()) return false;
  blob.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + size));
  pos += size;
  return true;
}

void put_versions(std::vector<u8>& out, const std::vector<u32>& vs) {
  put_u64(out, vs.size());
  for (u32 v : vs)
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_versions(const std::vector<u8>& in, size_t& pos,
                  std::vector<u32>& vs) {
  u64 count = 0;
  if (!get_u64(in, pos, count) || pos + count * 4 > in.size()) return false;
  vs.resize(count);
  for (u64 i = 0; i < count; ++i) {
    u32 v = 0;
    for (int b = 0; b < 4; ++b)
      v |= static_cast<u32>(in[pos + i * 4 + static_cast<u64>(b)]) << (8 * b);
    vs[i] = v;
  }
  pos += count * 4;
  return true;
}
}  // namespace

std::vector<u8> TieredSnapshot::serialize() const {
  std::vector<u8> out;
  put_u64(out, kMagic);
  put_u64(out, fast_file_id_);
  put_u64(out, slow_file_id_);
  put_blob(out, vm_state_.serialize());
  put_blob(out, layout_.serialize());
  put_versions(out, fast_versions_);
  put_versions(out, slow_versions_);
  return out;
}

std::optional<TieredSnapshot> TieredSnapshot::deserialize(
    const std::vector<u8>& bytes) {
  size_t pos = 0;
  u64 magic = 0;
  TieredSnapshot snap;
  if (!get_u64(bytes, pos, magic) || magic != kMagic) return std::nullopt;
  if (!get_u64(bytes, pos, snap.fast_file_id_)) return std::nullopt;
  if (!get_u64(bytes, pos, snap.slow_file_id_)) return std::nullopt;
  std::vector<u8> blob;
  if (!get_blob(bytes, pos, blob)) return std::nullopt;
  const auto state = VmState::deserialize(blob);
  if (!state) return std::nullopt;
  snap.vm_state_ = *state;
  if (!get_blob(bytes, pos, blob)) return std::nullopt;
  const auto layout = MemoryLayoutFile::deserialize(blob);
  if (!layout) return std::nullopt;
  snap.layout_ = *layout;
  if (!get_versions(bytes, pos, snap.fast_versions_)) return std::nullopt;
  if (!get_versions(bytes, pos, snap.slow_versions_)) return std::nullopt;
  // Cross-checks: the tier files must match the layout's page counts.
  if (snap.fast_versions_.size() != snap.layout_.pages_in(Tier::kFast) ||
      snap.slow_versions_.size() != snap.layout_.pages_in(Tier::kSlow))
    return std::nullopt;
  return snap;
}

std::optional<std::string> TieredSnapshot::verify() const {
  if (const auto structural = validate_layout(layout_)) return structural;
  if (fast_versions_.size() != layout_.pages_in(Tier::kFast))
    return "fast tier file truncated: " +
           std::to_string(fast_versions_.size()) + " pages, layout expects " +
           std::to_string(layout_.pages_in(Tier::kFast));
  if (slow_versions_.size() != layout_.pages_in(Tier::kSlow))
    return "slow tier file truncated: " +
           std::to_string(slow_versions_.size()) + " pages, layout expects " +
           std::to_string(layout_.pages_in(Tier::kSlow));
  const auto& entries = layout_.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LayoutEntry& e = entries[i];
    const auto& file =
        e.tier == Tier::kFast ? fast_versions_ : slow_versions_;
    if (region_checksum(file, e.file_page, e.page_count) != e.checksum)
      return "entry " + std::to_string(i) + ": checksum mismatch over " +
             std::to_string(e.page_count) + " pages at file page " +
             std::to_string(e.file_page);
  }
  return std::nullopt;
}

void TieredSnapshot::corrupt_fast_page(u64 file_page) {
  if (file_page < fast_versions_.size()) ++fast_versions_[file_page];
}

void TieredSnapshot::truncate_fast_file() {
  if (!fast_versions_.empty()) fast_versions_.pop_back();
}

GuestMemory TieredSnapshot::materialize() const {
  GuestMemory mem(bytes_for_pages(guest_pages()));
  for (const auto& e : layout_.entries()) {
    const auto& file =
        e.tier == Tier::kFast ? fast_versions_ : slow_versions_;
    for (u64 i = 0; i < e.page_count; ++i)
      mem.set_version(e.guest_page + i, file[e.file_page + i]);
  }
  return mem;
}

}  // namespace toss
