// Snapshot storage on the simulated disk.
//
// Owns file-id allocation and the snapshot blobs, and prices disk transfers
// using the DiskSpec. The host page cache is shared host state and lives
// here too, so experiments can drop it between invocations like the paper's
// methodology does.
#pragma once

#include <memory>
#include <unordered_map>

#include "mem/page_cache.hpp"
#include "mem/tier.hpp"
#include "vmm/snapshot.hpp"
#include "vmm/tiered_snapshot.hpp"

namespace toss {

class SnapshotStore {
 public:
  explicit SnapshotStore(const SystemConfig& cfg);

  /// Allocate a fresh file id (snapshot files, WS files, layout files...).
  u64 allocate_file_id();

  /// Persist a single-tier snapshot of `memory`; returns its file id.
  u64 put_single_tier(const GuestMemory& memory, const VmState& state);

  const SingleTierSnapshot* get_single_tier(u64 file_id) const;

  /// Persist a tiered snapshot (already built); retrievable by either of
  /// its two file ids.
  void put_tiered(TieredSnapshot snapshot);

  const TieredSnapshot* get_tiered(u64 file_id) const;

  HostPageCache& page_cache() { return page_cache_; }
  const HostPageCache& page_cache() const { return page_cache_; }

  /// Methodology step: drop all cached snapshot pages.
  void drop_caches() { page_cache_.drop(); }

  /// Sequential read of `bytes` from disk (or zero if fully cached — callers
  /// check the cache themselves for partial hits).
  Nanos seq_read_ns(u64 bytes) const;

  const SystemConfig& config() const { return *cfg_; }

 private:
  const SystemConfig* cfg_;
  u64 next_file_id_ = 1;
  std::unordered_map<u64, SingleTierSnapshot> single_tier_;
  std::unordered_map<u64, TieredSnapshot> tiered_;
  std::unordered_map<u64, u64> tiered_alias_;  ///< slow id -> fast id
  HostPageCache page_cache_;
};

}  // namespace toss
