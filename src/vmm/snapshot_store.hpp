// Snapshot storage on the simulated disk.
//
// Owns file-id allocation and the snapshot blobs, and prices disk transfers
// using the DiskSpec. The host page cache is shared host state and lives
// here too, so experiments can drop it between invocations like the paper's
// methodology does.
//
// Failure domain semantics (the fault-injection PR):
//   - Puts are atomic: blobs are fully staged before any store state is
//     touched (write-temp-then-rename), so a torn write — injected at the
//     kPutSingleTier / kPutTiered sites — throws toss::Error(kTransientIo)
//     and leaves every previous snapshot generation readable.
//   - Reads come in two flavours: the const get_* accessors (nullptr on
//     miss, used by restore policies on already-verified artifacts) and the
//     fetch_* ladder entry points, which arm the at-rest corruption sites
//     (kTierBitrot / kTierTruncate) and throw typed errors for missing or
//     quarantined ids.
//   - Quarantine: a checksum-failed tiered artifact is marked unreadable
//     so the recovery ladder degrades to the retained single-tier snapshot
//     and Step V regenerates a fresh artifact instead of re-mapping rot.
//
// Thread safety (DESIGN.md §15): once the work-stealing executor lets any
// worker run any lane, a store's resident-byte accounting is read from the
// arbiter barrier while another worker may be serving its lane — so the
// container maps are guarded by the vmcache optimistic version-stamped
// latch: shared (CAS-counted, lock-free) for every read that walks the
// maps, exclusive for puts, fault arming, quarantine and damage hooks.
// Returned blob pointers stay valid after the guard drops because std::map
// nodes are stable and the engine's ownership discipline confines blob
// *mutation* to the lane that owns the id (or the serial barrier).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "mem/page_cache.hpp"
#include "mem/tier.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/optimistic.hpp"
#include "vmm/snapshot.hpp"
#include "vmm/tiered_snapshot.hpp"

namespace toss {

class SnapshotStore {
 public:
  explicit SnapshotStore(const SystemConfig& cfg);

  /// Attach the lane's fault injector (nullptr detaches). The store does
  /// not own it; lifetime is managed by the platform that owns both.
  void attach_faults(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* faults() { return faults_; }

  /// Allocate a fresh file id (snapshot files, WS files, layout files...).
  u64 allocate_file_id();

  /// Persist a single-tier snapshot of `memory`; returns its file id.
  /// Throws toss::Error(kTransientIo) when a torn-write fault fires; the
  /// store is unchanged in that case.
  u64 put_single_tier(const GuestMemory& memory, const VmState& state);

  const SingleTierSnapshot* get_single_tier(u64 file_id) const;

  /// Persist a tiered snapshot (already built); retrievable by any of its
  /// per-rank file ids. Same atomicity contract as put_single_tier.
  void put_tiered(TieredSnapshot snapshot);

  /// nullptr for unknown or quarantined ids.
  const TieredSnapshot* get_tiered(u64 file_id) const;

  /// Ladder read path for the single-tier snapshot: throws
  /// toss::Error(kSnapshotMissing) for unknown ids.
  const SingleTierSnapshot& fetch_single_tier(u64 file_id) const;

  /// Ladder read path for a tiered artifact: first arms the at-rest
  /// corruption sites (which may damage the stored blob, deterministically),
  /// then resolves the id. Throws toss::Error(kSnapshotMissing) for unknown
  /// or quarantined ids. The caller verifies content via verify_tiered().
  const TieredSnapshot& fetch_tiered(u64 file_id);

  /// Content + structure verification of a stored tiered artifact:
  /// kSnapshotMissing for unknown/quarantined ids, kSnapshotCorrupted with
  /// the first violation otherwise.
  Result<void> verify_tiered(u64 file_id) const;

  /// Bytes a restore of this snapshot id pins resident, split by tier.
  /// Tiered ids (any alias) report the per-tier file sizes — "fast" is the
  /// rank-0 file, "slow" everything below it; single-tier ids pin the
  /// whole image in DRAM; unknown ids report 0. Used by the overload
  /// arbiter's fleet accounting.
  u64 resident_fast_bytes(u64 file_id) const;
  u64 resident_slow_bytes(u64 file_id) const;
  /// Bytes resident in one specific ladder rank (metrics rollups).
  u64 resident_tier_bytes(u64 file_id, size_t rank) const;

  /// Mark a tiered artifact unreadable (checksum failure). Idempotent.
  void quarantine_tiered(u64 file_id);
  bool is_quarantined(u64 file_id) const;
  u64 quarantine_count() const {
    return quarantine_count_.load(std::memory_order_acquire);
  }

  /// Fault/test hooks: damage a stored tiered artifact in place (checksums
  /// go stale, which verify_tiered detects). Return false for unknown ids.
  bool corrupt_tiered_page(u64 file_id, u64 fast_file_page);
  bool truncate_tiered(u64 file_id);

  HostPageCache& page_cache() { return page_cache_; }
  const HostPageCache& page_cache() const { return page_cache_; }

  /// Methodology step: drop all cached snapshot pages.
  void drop_caches() { page_cache_.drop(); }

  /// Sequential read of `bytes` from disk (or zero if fully cached — callers
  /// check the cache themselves for partial hits).
  Nanos seq_read_ns(u64 bytes) const;

  const SystemConfig& config() const { return *cfg_; }

 private:
  // _unlocked helpers assume latch_ is already held (shared or exclusive)
  // by the public wrapper; fetch_tiered holds it exclusive across fault
  // arming + lookup, so the lookups must not re-enter the latch.
  /// Resolve a tiered id through the deep-rank -> rank-0 alias map.
  u64 resolve_tiered(u64 file_id) const;
  TieredSnapshot* find_tiered(u64 file_id);
  const SingleTierSnapshot* get_single_tier_unlocked(u64 file_id) const;
  const TieredSnapshot* get_tiered_unlocked(u64 file_id) const;
  bool is_quarantined_unlocked(u64 file_id) const;
  Result<void> verify_tiered_unlocked(u64 file_id) const;

  const SystemConfig* cfg_;
  FaultInjector* faults_ = nullptr;
  /// Atomic: id allocation must not serialize behind the blob latch.
  std::atomic<u64> next_file_id_{1};
  std::atomic<u64> quarantine_count_{0};
  /// vmcache-style optimistic word guarding the four containers below;
  /// every exclusive unlock bumps the version.
  mutable OptimisticLatch latch_;
  // Ordered containers on purpose: the store sits in the include closure
  // of the metrics ledger, and any future walk over snapshots (resident-
  // byte rollups, eviction sweeps) must visit ids in a run-stable order.
  // Hash-map iteration order is not, and the det-unordered-iter lint rule
  // would reject it; id-ordered maps are deterministic by construction.
  std::map<u64, SingleTierSnapshot> single_tier_;
  std::map<u64, TieredSnapshot> tiered_;
  std::map<u64, u64> tiered_alias_;  ///< deep-rank id -> rank-0 id
  std::set<u64> quarantined_;        ///< rank-0 ids
  HostPageCache page_cache_;
};

}  // namespace toss
