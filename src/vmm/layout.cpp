#include "vmm/layout.hpp"

namespace toss {

MemoryLayoutFile::MemoryLayoutFile(u64 guest_pages,
                                   std::vector<LayoutEntry> entries,
                                   size_t tier_count)
    : guest_pages_(guest_pages),
      tier_count_(tier_count),
      entries_(std::move(entries)) {}

bool MemoryLayoutFile::valid() const {
  return !validate_layout(*this).has_value();
}

std::optional<std::string> validate_layout(const MemoryLayoutFile& layout) {
  const auto entry_err = [](size_t i, const std::string& what) {
    return "entry " + std::to_string(i) + ": " + what;
  };
  u64 next_guest = 0;
  std::vector<u64> next_file(layout.tier_count(), 0);
  const auto& entries = layout.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LayoutEntry& e = entries[i];
    const auto tier_idx = static_cast<size_t>(e.tier);
    if (tier_idx >= layout.tier_count())
      return entry_err(i, "invalid tier tag " + std::to_string(tier_idx));
    if (e.page_count == 0) return entry_err(i, "empty region");
    if (e.guest_page < next_guest)
      return entry_err(
          i, "guest page " + std::to_string(e.guest_page) +
                 (i == 0 ? " not sorted"
                         : " overlaps entry " + std::to_string(i - 1) +
                               " ending at " + std::to_string(next_guest)));
    if (e.guest_page > next_guest)
      return entry_err(i, "gap: guest pages [" + std::to_string(next_guest) +
                              ", " + std::to_string(e.guest_page) +
                              ") are unmapped");
    u64& file_cursor = next_file[tier_idx];
    if (e.file_page != file_cursor)
      return entry_err(i, "tier file offset " + std::to_string(e.file_page) +
                              " not contiguous (expected " +
                              std::to_string(file_cursor) + ")");
    file_cursor += e.page_count;
    next_guest = e.guest_page_end();
  }
  if (next_guest != layout.guest_pages())
    return "region sizes sum to " + std::to_string(next_guest) +
           " pages, snapshot has " + std::to_string(layout.guest_pages());
  return std::nullopt;
}

u64 MemoryLayoutFile::entries_in(Tier t) const {
  u64 n = 0;
  for (const auto& e : entries_)
    if (e.tier == t) ++n;
  return n;
}

u64 MemoryLayoutFile::pages_in(Tier t) const {
  u64 n = 0;
  for (const auto& e : entries_)
    if (e.tier == t) n += e.page_count;
  return n;
}

double MemoryLayoutFile::slow_fraction() const {
  if (guest_pages_ == 0) return 0.0;
  u64 deep = 0;
  for (const auto& e : entries_)
    if (tier_rank(e.tier) != 0) deep += e.page_count;
  return static_cast<double>(deep) / static_cast<double>(guest_pages_);
}

u64 region_checksum(const std::vector<u32>& file, u64 file_page,
                    u64 page_count) {
  u64 h = 0xcbf29ce484222325ULL;
  for (u64 i = 0; i < page_count; ++i) {
    u64 v = file[file_page + i];
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

namespace {
// Version 3 is tier-indexed: a ladder-depth word follows guest_pages and
// entry tier tags may name any rank below it. Version 2 (the two-tier
// format with per-region checksums) is still accepted on read.
constexpr u64 kMagicV3 = 0x544f53534c415933ULL;  // "TOSSLAY3"
constexpr u64 kMagicV2 = 0x544f53534c415932ULL;  // "TOSSLAY2"

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_u64(const std::vector<u8>& in, size_t& pos, u64& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}
}  // namespace

std::vector<u8> MemoryLayoutFile::serialize() const {
  std::vector<u8> out;
  out.reserve(32 + entries_.size() * 40);
  put_u64(out, kMagicV3);
  put_u64(out, guest_pages_);
  put_u64(out, static_cast<u64>(tier_count_));
  put_u64(out, entries_.size());
  for (const auto& e : entries_) {
    put_u64(out, static_cast<u64>(e.tier));
    put_u64(out, e.file_page);
    put_u64(out, e.guest_page);
    put_u64(out, e.page_count);
    put_u64(out, e.checksum);
  }
  return out;
}

std::optional<MemoryLayoutFile> MemoryLayoutFile::deserialize(
    const std::vector<u8>& bytes) {
  size_t pos = 0;
  u64 magic = 0, guest_pages = 0, tier_count = 2, count = 0;
  if (!get_u64(bytes, pos, magic)) return std::nullopt;
  if (magic != kMagicV3 && magic != kMagicV2) return std::nullopt;
  if (!get_u64(bytes, pos, guest_pages)) return std::nullopt;
  if (magic == kMagicV3) {
    if (!get_u64(bytes, pos, tier_count) || tier_count < 1 ||
        tier_count > kMaxTiers)
      return std::nullopt;
  }
  if (!get_u64(bytes, pos, count)) return std::nullopt;
  std::vector<LayoutEntry> entries;
  entries.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    u64 tier = 0;
    LayoutEntry e;
    if (!get_u64(bytes, pos, tier) || tier >= tier_count) return std::nullopt;
    e.tier = static_cast<Tier>(tier);
    if (!get_u64(bytes, pos, e.file_page) ||
        !get_u64(bytes, pos, e.guest_page) ||
        !get_u64(bytes, pos, e.page_count) ||
        !get_u64(bytes, pos, e.checksum))
      return std::nullopt;
    entries.push_back(e);
  }
  MemoryLayoutFile layout(guest_pages, std::move(entries),
                          static_cast<size_t>(tier_count));
  if (!layout.valid()) return std::nullopt;
  return layout;
}

}  // namespace toss
