// Single-tier snapshot: one guest memory file plus the VMM state, as
// produced by Firecracker's snapshotting feature. This is the artifact
// TOSS's Step I captures and Step IV later partitions into tiers.
#pragma once

#include "vmm/guest_memory.hpp"
#include "vmm/vm_state.hpp"

namespace toss {

class SingleTierSnapshot {
 public:
  SingleTierSnapshot() = default;
  SingleTierSnapshot(u64 file_id, const GuestMemory& memory, VmState state);

  u64 file_id() const { return file_id_; }
  u64 num_pages() const { return static_cast<u64>(page_versions_.size()); }
  u64 memory_bytes() const { return bytes_for_pages(num_pages()); }

  u32 page_version(u64 page) const { return page_versions_[page]; }
  const std::vector<u32>& page_versions() const { return page_versions_; }
  const VmState& vm_state() const { return vm_state_; }

  /// Reconstruct guest memory contents from the snapshot file.
  GuestMemory materialize() const;

 private:
  u64 file_id_ = 0;
  std::vector<u32> page_versions_;
  VmState vm_state_;
};

}  // namespace toss
