#include "vmm/vm_state.hpp"

namespace toss {

namespace {
constexpr u64 kMagic = 0x544f535356535431ULL;  // "TOSSVST1"

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool get_u64(const std::vector<u8>& in, size_t& pos, u64& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}
}  // namespace

std::vector<u8> VmState::serialize() const {
  std::vector<u8> out;
  put_u64(out, kMagic);
  put_u64(out, vcpu_count);
  put_u64(out, vcpu_state_bytes);
  put_u64(out, device_state_bytes);
  put_u64(out, config_hash);
  return out;
}

std::optional<VmState> VmState::deserialize(const std::vector<u8>& bytes) {
  size_t pos = 0;
  u64 magic = 0, vcpus = 0;
  VmState s;
  if (!get_u64(bytes, pos, magic) || magic != kMagic) return std::nullopt;
  if (!get_u64(bytes, pos, vcpus)) return std::nullopt;
  s.vcpu_count = static_cast<u32>(vcpus);
  if (!get_u64(bytes, pos, s.vcpu_state_bytes)) return std::nullopt;
  if (!get_u64(bytes, pos, s.device_state_bytes)) return std::nullopt;
  if (!get_u64(bytes, pos, s.config_hash)) return std::nullopt;
  return s;
}

}  // namespace toss
