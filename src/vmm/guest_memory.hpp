// Guest physical memory model.
//
// The simulator does not store real guest bytes; it stores a 32-bit content
// version per page. Workload writes bump versions, snapshots copy them, and
// restores must reproduce them exactly — giving the test suite a cheap but
// strict data-integrity oracle for the snapshot/tiering path.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace toss {

class GuestMemory {
 public:
  explicit GuestMemory(u64 bytes);

  u64 num_pages() const { return static_cast<u64>(versions_.size()); }
  u64 num_bytes() const { return bytes_for_pages(num_pages()); }

  u32 version(u64 page) const { return versions_[page]; }
  void set_version(u64 page, u32 v) { versions_[page] = v; }
  void bump_version(u64 page) { ++versions_[page]; }

  const std::vector<u32>& versions() const { return versions_; }

  bool operator==(const GuestMemory&) const = default;

 private:
  std::vector<u32> versions_;
};

/// FNV-1a over all page versions — the page-version oracle the chaos suite
/// compares against the authoritative snapshot contents to prove that no
/// recovered invocation ever observed wrong memory.
u64 hash_memory(const GuestMemory& memory);

}  // namespace toss
