// FaaSnap (Ao et al. EuroSys'22) style restore: working set recorded with
// mincore() after the first invocation (which inflates the set with host
// page-cache readahead), loaded at restore as one mapping per contiguous WS
// range so loading can overlap with execution. We model the overlap as a
// configurable discount on the eager load time.
#pragma once

#include "baseline/policy.hpp"
#include "trace/working_set.hpp"
#include "vmm/snapshot_store.hpp"

namespace toss {

class FaasnapPolicy final : public RestorePolicy {
 public:
  FaasnapPolicy(const SnapshotStore& store, u64 snapshot_file_id,
                WorkingSet ws);

  std::string name() const override { return "faasnap"; }
  RestorePlan plan_restore() const override;

  const WorkingSet& working_set() const { return ws_; }

  /// Record the WS the way FaaSnap does: mincore() on the guest memory
  /// file after the first invocation.
  static WorkingSet record_working_set(const BurstTrace& first_invocation,
                                       u64 guest_pages,
                                       u64 readahead_pages = 32);

 private:
  const SnapshotStore* store_;
  u64 snapshot_file_id_;
  WorkingSet ws_;
};

}  // namespace toss
