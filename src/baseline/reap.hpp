// REAP (Record-and-Prefetch, Ustiugov et al. ASPLOS'21): the snapshot-based
// state of the art the paper compares against.
//
// During the *first* invocation REAP records the working set with
// userfaultfd(). Subsequent restores map the guest memory file and eagerly
// prefetch the recorded WS pages into DRAM, populating their page-table
// entries, so accesses within the recorded WS take no faults. Pages outside
// the recorded WS still demand-load from disk — which is exactly what goes
// wrong when the execution input diverges from the snapshot input (Fig 3).
#pragma once

#include "baseline/policy.hpp"
#include "trace/working_set.hpp"
#include "vmm/snapshot_store.hpp"

namespace toss {

class ReapPolicy final : public RestorePolicy {
 public:
  /// `ws` is the working set recorded with userfaultfd() during the first
  /// (snapshot-input) invocation.
  ReapPolicy(const SnapshotStore& store, u64 snapshot_file_id, WorkingSet ws);

  std::string name() const override { return "reap"; }
  RestorePlan plan_restore() const override;

  const WorkingSet& working_set() const { return ws_; }

  /// Record the WS of an invocation trace the way REAP does (userfaultfd).
  static WorkingSet record_working_set(const BurstTrace& first_invocation,
                                       u64 guest_pages);

 private:
  const SnapshotStore* store_;
  u64 snapshot_file_id_;
  WorkingSet ws_;
};

}  // namespace toss
