#include "baseline/vanilla.hpp"

#include "util/contracts.hpp"

namespace toss {

VanillaPolicy::VanillaPolicy(const SnapshotStore& store, u64 snapshot_file_id,
                             bool eager)
    : store_(&store), snapshot_file_id_(snapshot_file_id), eager_(eager) {
  TOSS_REQUIRE(store_->get_single_tier(snapshot_file_id_) != nullptr);
}

RestorePlan VanillaPolicy::plan_restore() const {
  const SingleTierSnapshot* snap = store_->get_single_tier(snapshot_file_id_);
  RestorePlan plan;
  plan.vm_state = snap->vm_state();
  plan.guest_pages = snap->num_pages();
  plan.mappings.push_back(RestoreMapping{
      /*guest_page=*/0, snap->num_pages(), tier_index(0), snap->file_id(),
      /*file_page=*/0, /*dax=*/false});
  if (eager_) {
    plan.eager.push_back(
        EagerLoad{/*guest_page=*/0, snap->num_pages(), snap->file_id(),
                  /*file_page=*/0});
  }
  return plan;
}

}  // namespace toss
