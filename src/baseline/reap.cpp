#include "baseline/reap.hpp"

#include "util/contracts.hpp"

namespace toss {

ReapPolicy::ReapPolicy(const SnapshotStore& store, u64 snapshot_file_id,
                       WorkingSet ws)
    : store_(&store), snapshot_file_id_(snapshot_file_id), ws_(std::move(ws)) {
  const SingleTierSnapshot* snap = store_->get_single_tier(snapshot_file_id_);
  TOSS_REQUIRE(snap != nullptr);
  TOSS_REQUIRE(ws_.num_pages() == snap->num_pages());
  (void)snap;
}

RestorePlan ReapPolicy::plan_restore() const {
  const SingleTierSnapshot* snap = store_->get_single_tier(snapshot_file_id_);
  RestorePlan plan;
  plan.vm_state = snap->vm_state();
  plan.guest_pages = snap->num_pages();
  plan.mappings.push_back(RestoreMapping{
      /*guest_page=*/0, snap->num_pages(), tier_index(0), snap->file_id(),
      /*file_page=*/0, /*dax=*/false});
  // Eager prefetch of the recorded working set, one contiguous range at a
  // time (guest offsets == file offsets for a single-tier snapshot).
  for (const auto& [begin, count] : ws_.touched_ranges()) {
    plan.eager.push_back(
        EagerLoad{begin, count, snap->file_id(), /*file_page=*/begin});
  }
  return plan;
}

WorkingSet ReapPolicy::record_working_set(const BurstTrace& first_invocation,
                                          u64 guest_pages) {
  return uffd_working_set(first_invocation, guest_pages);
}

}  // namespace toss
