// Restore-policy interface: how a snapshotting system turns its stored
// artifacts into a RestorePlan for the microVM. Implementations: vanilla
// Firecracker lazy restore, REAP working-set prefetch, FaaSnap per-region
// loading, and TOSS tiered restore (in src/core/tierer.hpp).
#pragma once

#include <string>

#include "vmm/microvm.hpp"

namespace toss {

class RestorePolicy {
 public:
  virtual ~RestorePolicy() = default;

  virtual std::string name() const = 0;

  /// Build the restore plan for the next invocation.
  virtual RestorePlan plan_restore() const = 0;
};

}  // namespace toss
