#include "baseline/faasnap.hpp"

#include "util/contracts.hpp"

namespace toss {

FaasnapPolicy::FaasnapPolicy(const SnapshotStore& store, u64 snapshot_file_id,
                             WorkingSet ws)
    : store_(&store), snapshot_file_id_(snapshot_file_id), ws_(std::move(ws)) {
  TOSS_REQUIRE(store_->get_single_tier(snapshot_file_id_) != nullptr);
}

RestorePlan FaasnapPolicy::plan_restore() const {
  const SingleTierSnapshot* snap = store_->get_single_tier(snapshot_file_id_);
  RestorePlan plan;
  plan.vm_state = snap->vm_state();
  plan.guest_pages = snap->num_pages();
  // One mapping per contiguous WS range plus gap mappings for the rest of
  // guest memory, all from the single memory file.
  u64 cursor = 0;
  auto add_mapping = [&](u64 begin, u64 count) {
    plan.mappings.push_back(RestoreMapping{begin, count, tier_index(0),
                                           snap->file_id(), begin,
                                           /*dax=*/false});
  };
  for (const auto& [begin, count] : ws_.touched_ranges()) {
    if (begin > cursor) add_mapping(cursor, begin - cursor);
    add_mapping(begin, count);
    plan.eager.push_back(EagerLoad{begin, count, snap->file_id(), begin});
    cursor = begin + count;
  }
  if (cursor < snap->num_pages())
    add_mapping(cursor, snap->num_pages() - cursor);
  return plan;
}

WorkingSet FaasnapPolicy::record_working_set(
    const BurstTrace& first_invocation, u64 guest_pages,
    u64 readahead_pages) {
  return mincore_working_set(first_invocation, guest_pages, readahead_pages);
}

}  // namespace toss
