// Vanilla single-tier snapshot restore, in two flavors:
//
//  - lazy (Firecracker default): memory-map the guest memory file in one
//    mapping and demand-load every page from disk;
//  - eager: additionally read the whole memory file into DRAM up front.
//
// The eager flavor is the paper's "DRAM snapshot" baseline that the
// setup/invocation/scalability figures normalize to — it is why REAP with
// a fully-matched working set behaves "similar to DRAM" in Fig 9.
#pragma once

#include "baseline/policy.hpp"
#include "vmm/snapshot_store.hpp"

namespace toss {

class VanillaPolicy final : public RestorePolicy {
 public:
  VanillaPolicy(const SnapshotStore& store, u64 snapshot_file_id,
                bool eager = false);

  std::string name() const override { return eager_ ? "dram" : "vanilla"; }
  RestorePlan plan_restore() const override;

 private:
  const SnapshotStore* store_;
  u64 snapshot_file_id_;
  bool eager_;
};

}  // namespace toss
