#include "mem/page_cache.hpp"

namespace toss {

HostPageCache::HostPageCache(u64 readahead_pages)
    : readahead_(readahead_pages == 0 ? 1 : readahead_pages) {}

bool HostPageCache::contains(u64 file_id, u64 page_index) const {
  return cached_.contains(FilePage{file_id, page_index});
}

u64 HostPageCache::fill(u64 file_id, u64 page_index) {
  u64 added = 0;
  for (u64 p = page_index; p < page_index + readahead_; ++p)
    if (cached_.insert(FilePage{file_id, p}).second) ++added;
  return added;
}

void HostPageCache::fill_one(u64 file_id, u64 page_index) {
  cached_.insert(FilePage{file_id, page_index});
}

void HostPageCache::fill_range(u64 file_id, u64 page_begin, u64 page_count) {
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    cached_.insert(FilePage{file_id, p});
}

void HostPageCache::drop() { cached_.clear(); }

}  // namespace toss
