// Per-page tier placement map for a guest address space.
//
// The optimizer produces a PagePlacement; the tiered snapshot serializes it
// as layout regions; the access-cost model consults it per burst.
#pragma once

#include <vector>

#include "mem/tier.hpp"
#include "util/units.hpp"

namespace toss {

class PagePlacement {
 public:
  PagePlacement() = default;

  /// All pages start in `initial` (DRAM-only guest by default).
  explicit PagePlacement(u64 num_pages, Tier initial = Tier::kFast);

  u64 num_pages() const { return static_cast<u64>(tiers_.size()); }
  u64 num_bytes() const { return bytes_for_pages(num_pages()); }

  Tier tier_of(u64 page) const { return static_cast<Tier>(tiers_[page]); }
  void set(u64 page, Tier t) { tiers_[page] = static_cast<u8>(t); }
  void set_range(u64 page_begin, u64 page_count, Tier t);
  void set_all(Tier t);

  /// Number of pages currently in tier `t`.
  u64 pages_in(Tier t) const;

  /// Fraction of bytes in the slow tier (the paper's "slow tier percentage").
  double slow_fraction() const;

  /// Pages of [page_begin, page_begin+page_count) that are in tier `t`.
  u64 count_in_range(u64 page_begin, u64 page_count, Tier t) const;

  /// Fraction of the range in the slow tier.
  double slow_fraction_in_range(u64 page_begin, u64 page_count) const;

  bool operator==(const PagePlacement&) const = default;

 private:
  std::vector<u8> tiers_;
};

}  // namespace toss
