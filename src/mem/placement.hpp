// Per-page tier placement map for a guest address space.
//
// The optimizer produces a PagePlacement; the tiered snapshot serializes it
// as layout regions; the access-cost model consults it per burst. Pages
// hold a tier *rank* (index into the SystemConfig ladder), so the map works
// unchanged for any ladder depth.
#pragma once

#include <vector>

#include "mem/tier.hpp"
#include "util/units.hpp"

namespace toss {

class PagePlacement {
 public:
  PagePlacement() = default;

  /// All pages start in `initial` (DRAM-only guest by default).
  explicit PagePlacement(u64 num_pages, Tier initial = tier_index(0));

  u64 num_pages() const { return static_cast<u64>(tiers_.size()); }
  u64 num_bytes() const { return bytes_for_pages(num_pages()); }

  Tier tier_of(u64 page) const { return static_cast<Tier>(tiers_[page]); }
  size_t rank_of(u64 page) const { return tiers_[page]; }
  void set(u64 page, Tier t) { tiers_[page] = static_cast<u8>(t); }
  void set_range(u64 page_begin, u64 page_count, Tier t);
  void set_all(Tier t);

  /// Push every page shallower than `rank` down to `rank` (the arbiter's
  /// tier-floor demotion); pages already at or below `rank` are untouched.
  void apply_floor(size_t rank);

  /// Number of pages currently in tier `t`.
  u64 pages_in(Tier t) const;

  /// Per-rank page counts, ascending rank order; sized `tier_count`.
  std::vector<u64> pages_per_rank(size_t tier_count) const;

  /// Fraction of bytes *not* in the fastest tier — the paper's "slow tier
  /// percentage", generalized to "offloaded anywhere down the ladder".
  double slow_fraction() const;

  /// Per-rank byte fractions for ranks 1..tier_count-1, ascending (index 0
  /// holds rank 1's fraction) — the shape ladder_normalized_cost consumes.
  std::vector<double> deep_fractions(size_t tier_count) const;

  /// Pages of [page_begin, page_begin+page_count) that are in tier `t`.
  u64 count_in_range(u64 page_begin, u64 page_count, Tier t) const;

  /// Fraction of the range not in the fastest tier.
  double slow_fraction_in_range(u64 page_begin, u64 page_count) const;

  bool operator==(const PagePlacement&) const = default;

 private:
  std::vector<u8> tiers_;
};

}  // namespace toss
