// Memory tier definitions and the global SystemConfig that parameterizes the
// whole simulation (tier latencies/bandwidths, fault costs, disk model,
// pricing ratio). All experiment binaries build their platform from one
// SystemConfig so results are reproducible and the hardware substitution
// documented in DESIGN.md is explicit and tunable.
//
// Since the N-tier ladder redesign (DESIGN.md §11) a SystemConfig holds an
// ordered *vector* of TierSpecs — index 0 is the fastest, each following
// rank slower and cheaper — and `Tier` is a plain tier index into that
// ladder. The paper's fast/slow pair is the two-rung degenerate case
// (`paper_default()`). The old `Tier::kFast`/`Tier::kSlow` aliases are
// gone: every tier is named by its computed rank via tier_index().
#pragma once

#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace toss {

/// Upper bound on ladder depth. Per-rank accounting on the hot paths
/// (burst costs, execution results, contention factors) uses fixed-size
/// arrays of this length so an N-tier ladder costs no allocation over the
/// two-tier case.
inline constexpr size_t kMaxTiers = 6;

/// Index of a memory tier in the SystemConfig ladder (0 = fastest). Kept as
/// a scoped enum so a tier index never mixes silently with page counts;
/// convert explicitly with tier_index()/tier_rank().
enum class Tier : u8 {};

/// Rank -> Tier. The ladder's depth bounds valid ranks; SystemConfig::tier()
/// enforces that at lookup time.
constexpr Tier tier_index(size_t rank) { return static_cast<Tier>(rank); }

/// Tier -> rank (the inverse of tier_index).
constexpr size_t tier_rank(Tier t) { return static_cast<size_t>(t); }

/// Human-readable rank name. Ranks 0 and 1 keep the paper's fast/slow
/// vocabulary; deeper rungs are named by index.
inline const char* tier_name(Tier t) {
  switch (tier_rank(t)) {
    case 0: return "fast";
    case 1: return "slow";
    case 2: return "tier2";
    case 3: return "tier3";
    case 4: return "tier4";
    case 5: return "tier5";
    default: return "tier?";
  }
}

/// Performance/cost parameters of one memory tier.
///
/// Latencies are per cache-line access that misses the LLC; `mlp` is the
/// memory-level parallelism the tier sustains (outstanding misses), which
/// divides the effective latency for random access streams. Bandwidths cap
/// sequential streams. Defaults below follow published DDR4 vs Intel Optane
/// DC PMem (App Direct) measurements.
struct TierSpec {
  std::string name;
  Nanos read_latency_ns = 0;
  Nanos write_latency_ns = 0;
  double read_bw_bytes_per_ns = 0;   ///< sequential read bandwidth (B/ns == GB/s)
  double write_bw_bytes_per_ns = 0;  ///< sequential write bandwidth
  double mlp = 1.0;                  ///< sustained outstanding misses
  double cost_per_mib = 0;           ///< relative $/MiB (only ratios matter)
  /// Device-internal access granularity for random accesses: every random
  /// cache-line miss moves this many bytes of device bandwidth. DRAM moves
  /// one 64 B line; Optane PMem amplifies to its 256 B internal block,
  /// which is why it degrades so sharply under concurrent random load.
  double random_granularity_bytes = kCacheLine;
  /// Installed capacity of the tier on the simulated host. The fast tier's
  /// capacity is the fleet-wide DRAM budget the overload arbiter
  /// (platform/arbiter.hpp) defends; per-invocation cost modelling ignores
  /// it (only ratios of cost_per_mib matter there).
  u64 capacity_bytes = 0;

  static TierSpec ddr4_dram();
  static TierSpec optane_pmem();
  /// The alternative pairing Section III sketches: DDR5 as the fast tier
  /// with CXL-attached DDR4 as the slow tier (one CXL hop adds ~130 ns but
  /// keeps DRAM-class concurrency and no write asymmetry).
  static TierSpec ddr5_dram();
  static TierSpec cxl_ddr4();
  /// NVMe flash exposed as the deepest memory rung (DAX-style demand
  /// paging): page-granular random access, deep device queues, cheapest
  /// $/MiB by far.
  static TierSpec nvme_flash();
};

/// Simulated storage device holding snapshot files (Optane DC SSD in the
/// paper: ~2.5 GB/s sequential read, ~550k random read IOPS).
struct DiskSpec {
  double seq_read_bw_bytes_per_ns = 2.5;   // 2.5 GB/s
  double seq_write_bw_bytes_per_ns = 2.2;  // 2.2 GB/s
  /// Sustained 4 KiB random reads through the host page-fault path. The
  /// device is rated at 550k IOPS, but demand faults are issued at low
  /// queue depth with kernel overhead in the loop, so the effective
  /// host-wide fault throughput is considerably lower.
  double random_read_iops = 250000.0;
  Nanos random_read_latency_ns = us(9);  ///< per-4KiB random read latency
};

/// Kernel/VMM overhead constants for the microVM model.
struct VmmSpec {
  Nanos minor_fault_ns = us(1.5);   ///< map an already-resident page
  Nanos major_fault_sw_ns = us(3);  ///< kernel part of a fault that hits disk
  Nanos mmap_region_ns = us(40);    ///< establish one memory mapping at restore
  Nanos pte_populate_ns = 450;      ///< populate one PTE during eager prefetch
  Nanos vm_state_load_ns = ms(4);   ///< load vCPU/device state from snapshot
  Nanos boot_ns = ms(125);          ///< full cold boot (no snapshot)
};

/// Complete simulated-host description.
struct SystemConfig {
  /// The memory ladder, fastest first. Every algorithm that was once a
  /// fast/slow branch walks this vector instead; rank 0 is always the
  /// DRAM-class tier whose capacity the overload arbiter defends.
  std::vector<TierSpec> tiers = {TierSpec::ddr4_dram(),
                                 TierSpec::optane_pmem()};
  DiskSpec disk;
  VmmSpec vmm;
  int cores = 20;  ///< paper host: 20 usable cores (HT disabled)

  const std::vector<TierSpec>& ladder() const { return tiers; }
  std::vector<TierSpec>& ladder() { return tiers; }
  size_t tier_count() const { return tiers.size(); }

  const TierSpec& fastest() const { return tiers.front(); }
  const TierSpec& deepest() const { return tiers.back(); }
  Tier deepest_tier() const { return tier_index(tiers.size() - 1); }

  /// The paper's fast:slow cost ratio (2.5 for the default ladder), giving
  /// an optimal normalized memory cost of 1/2.5 = 0.4 when everything lives
  /// one rung down. Equivalent to rank_cost_ratio(1).
  double cost_ratio() const {
    return tiers.front().cost_per_mib / tiers[1].cost_per_mib;
  }

  /// rank-0 : rank-r $/MiB ratio — the Eq-1 denominator for bytes resting
  /// at rank r.
  double rank_cost_ratio(size_t rank) const {
    TOSS_REQUIRE(rank < tiers.size(), "tier rank outside the ladder");
    return tiers.front().cost_per_mib / tiers[rank].cost_per_mib;
  }

  /// Cost ratios for every rank below the fastest, ascending rank order
  /// (index 0 holds rank 1's ratio) — the shape ladder_normalized_cost
  /// consumes.
  std::vector<double> rank_cost_ratios() const;

  const TierSpec& tier(Tier t) const {
    TOSS_REQUIRE(tier_rank(t) < tiers.size(), "tier index outside the ladder");
    return tiers[tier_rank(t)];
  }

  /// Default configuration used by every experiment: the paper's two-rung
  /// DDR4 / Optane-PMem ladder.
  static SystemConfig paper_default();

  /// Three-rung DRAM / CXL-DDR4 / Optane-PMem ladder (Section III's "any
  /// memory technology" claim, extended one hop: reused DIMMs behind a CXL
  /// switch sit between new DDR5 and PMem on both latency and $/MiB).
  static SystemConfig cxl_host();

  /// Four-rung ladder adding NVMe flash below PMem — the deepest shape the
  /// --ladder bench axis sweeps.
  static SystemConfig nvme_host();
};

}  // namespace toss
