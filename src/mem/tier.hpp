// Memory tier definitions and the global SystemConfig that parameterizes the
// whole simulation (tier latencies/bandwidths, fault costs, disk model,
// pricing ratio). All experiment binaries build their platform from one
// SystemConfig so results are reproducible and the hardware substitution
// documented in DESIGN.md is explicit and tunable.
#pragma once

#include <string>

#include "util/units.hpp"

namespace toss {

/// Which memory tier a page lives in.
enum class Tier : u8 {
  kFast = 0,  ///< DRAM-like: low latency, high bandwidth, expensive.
  kSlow = 1,  ///< PMEM/CXL-like: higher latency, lower bandwidth, cheap.
};

inline const char* tier_name(Tier t) {
  return t == Tier::kFast ? "fast" : "slow";
}

/// Performance/cost parameters of one memory tier.
///
/// Latencies are per cache-line access that misses the LLC; `mlp` is the
/// memory-level parallelism the tier sustains (outstanding misses), which
/// divides the effective latency for random access streams. Bandwidths cap
/// sequential streams. Defaults below follow published DDR4 vs Intel Optane
/// DC PMem (App Direct) measurements.
struct TierSpec {
  std::string name;
  Nanos read_latency_ns = 0;
  Nanos write_latency_ns = 0;
  double read_bw_bytes_per_ns = 0;   ///< sequential read bandwidth (B/ns == GB/s)
  double write_bw_bytes_per_ns = 0;  ///< sequential write bandwidth
  double mlp = 1.0;                  ///< sustained outstanding misses
  double cost_per_mib = 0;           ///< relative $/MiB (only ratios matter)
  /// Device-internal access granularity for random accesses: every random
  /// cache-line miss moves this many bytes of device bandwidth. DRAM moves
  /// one 64 B line; Optane PMem amplifies to its 256 B internal block,
  /// which is why it degrades so sharply under concurrent random load.
  double random_granularity_bytes = kCacheLine;
  /// Installed capacity of the tier on the simulated host. The fast tier's
  /// capacity is the fleet-wide DRAM budget the overload arbiter
  /// (platform/arbiter.hpp) defends; per-invocation cost modelling ignores
  /// it (only ratios of cost_per_mib matter there).
  u64 capacity_bytes = 0;

  static TierSpec ddr4_dram();
  static TierSpec optane_pmem();
  /// The alternative pairing Section III sketches: DDR5 as the fast tier
  /// with CXL-attached DDR4 as the slow tier (one CXL hop adds ~130 ns but
  /// keeps DRAM-class concurrency and no write asymmetry).
  static TierSpec ddr5_dram();
  static TierSpec cxl_ddr4();
};

/// Simulated storage device holding snapshot files (Optane DC SSD in the
/// paper: ~2.5 GB/s sequential read, ~550k random read IOPS).
struct DiskSpec {
  double seq_read_bw_bytes_per_ns = 2.5;   // 2.5 GB/s
  double seq_write_bw_bytes_per_ns = 2.2;  // 2.2 GB/s
  /// Sustained 4 KiB random reads through the host page-fault path. The
  /// device is rated at 550k IOPS, but demand faults are issued at low
  /// queue depth with kernel overhead in the loop, so the effective
  /// host-wide fault throughput is considerably lower.
  double random_read_iops = 250000.0;
  Nanos random_read_latency_ns = us(9);  ///< per-4KiB random read latency
};

/// Kernel/VMM overhead constants for the microVM model.
struct VmmSpec {
  Nanos minor_fault_ns = us(1.5);   ///< map an already-resident page
  Nanos major_fault_sw_ns = us(3);  ///< kernel part of a fault that hits disk
  Nanos mmap_region_ns = us(40);    ///< establish one memory mapping at restore
  Nanos pte_populate_ns = 450;      ///< populate one PTE during eager prefetch
  Nanos vm_state_load_ns = ms(4);   ///< load vCPU/device state from snapshot
  Nanos boot_ns = ms(125);          ///< full cold boot (no snapshot)
};

/// Complete simulated-host description.
struct SystemConfig {
  TierSpec fast = TierSpec::ddr4_dram();
  TierSpec slow = TierSpec::optane_pmem();
  DiskSpec disk;
  VmmSpec vmm;
  int cores = 20;  ///< paper host: 20 usable cores (HT disabled)

  /// The paper's fast:slow cost ratio (2.5), giving an optimal normalized
  /// memory cost of 1/2.5 = 0.4 when everything lives in the slow tier.
  double cost_ratio() const { return fast.cost_per_mib / slow.cost_per_mib; }

  const TierSpec& tier(Tier t) const {
    return t == Tier::kFast ? fast : slow;
  }

  /// Default configuration used by every experiment.
  static SystemConfig paper_default();

  /// DDR5 + CXL-attached DDR4 host (Section III's "any memory technology"
  /// claim; the cost ratio follows new-vs-reused-DIMM pricing).
  static SystemConfig cxl_host();
};

}  // namespace toss
