// Host page cache model.
//
// Snapshot files live on the simulated disk; the host page cache decides
// whether a guest page fault is satisfied from cached file pages (minor-ish
// cost) or requires a disk read (major fault). The evaluation methodology
// drops the cache between invocations, which `drop()` implements.
#pragma once

#include <unordered_set>

#include "mem/tier.hpp"

namespace toss {

/// Identifies a file-backed page: (file id, page index within file).
struct FilePage {
  u64 file_id = 0;
  u64 page_index = 0;
  bool operator==(const FilePage&) const = default;
};

struct FilePageHash {
  size_t operator()(const FilePage& fp) const {
    // 64-bit mix of the two fields.
    u64 x = fp.file_id * 0x9e3779b97f4a7c15ULL ^ fp.page_index;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

class HostPageCache {
 public:
  /// Readahead window in pages: a disk read of page p also caches
  /// [p, p + readahead). Linux default readahead is 128 KiB = 32 pages;
  /// this is what inflates mincore()-based working sets.
  explicit HostPageCache(u64 readahead_pages = 32);

  bool contains(u64 file_id, u64 page_index) const;

  /// Record that a page was read from disk; readahead neighbors become
  /// cached as well. Returns the number of pages newly cached (used by the
  /// mincore() working-set model).
  u64 fill(u64 file_id, u64 page_index);

  /// Cache exactly one page (random access defeats readahead).
  void fill_one(u64 file_id, u64 page_index);

  /// Cache pages [begin, begin+count) of a file (sequential prefetch).
  void fill_range(u64 file_id, u64 page_begin, u64 page_count);

  /// `echo 3 > /proc/sys/vm/drop_caches` equivalent.
  void drop();

  u64 cached_pages() const { return static_cast<u64>(cached_.size()); }
  u64 readahead_pages() const { return readahead_; }

 private:
  u64 readahead_;
  std::unordered_set<FilePage, FilePageHash> cached_;
};

}  // namespace toss
