#include "mem/tier.hpp"

namespace toss {

TierSpec TierSpec::ddr4_dram() {
  TierSpec t;
  t.name = "DDR4 DRAM";
  t.read_latency_ns = 85;
  t.write_latency_ns = 85;
  t.read_bw_bytes_per_ns = 80.0;   // 80 GB/s aggregate (2 sockets, 6 ch each)
  t.write_bw_bytes_per_ns = 40.0;
  t.mlp = 10.0;
  t.cost_per_mib = 2.5;  // only the 2.5:1 ratio matters (see [23] in paper)
  t.capacity_bytes = 192 * kGiB;  // paper host: 2 sockets x 6 ch x 16 GiB
  return t;
}

TierSpec TierSpec::optane_pmem() {
  TierSpec t;
  t.name = "Optane PMem";
  t.read_latency_ns = 310;  // published idle random read latency
  t.write_latency_ns = 95;  // writes land in the DIMM buffer...
  t.read_bw_bytes_per_ns = 26.0;  // ...but sustained bandwidth is much lower
  t.write_bw_bytes_per_ns = 7.5;
  t.mlp = 4.0;  // Optane sustains far fewer outstanding misses
  t.cost_per_mib = 1.0;
  t.random_granularity_bytes = 256;  // 3D-XPoint internal block size
  t.capacity_bytes = 768 * kGiB;  // 6 x 128 GB PMem DIMMs
  return t;
}

TierSpec TierSpec::ddr5_dram() {
  TierSpec t;
  t.name = "DDR5 DRAM";
  t.read_latency_ns = 75;
  t.write_latency_ns = 75;
  t.read_bw_bytes_per_ns = 120.0;
  t.write_bw_bytes_per_ns = 60.0;
  t.mlp = 12.0;
  t.cost_per_mib = 1.8;
  t.capacity_bytes = 256 * kGiB;
  return t;
}

TierSpec TierSpec::cxl_ddr4() {
  TierSpec t;
  t.name = "CXL DDR4";
  t.read_latency_ns = 210;  // DDR4 + one CXL hop
  t.write_latency_ns = 210;
  t.read_bw_bytes_per_ns = 28.0;  // x8 CXL link
  t.write_bw_bytes_per_ns = 28.0;
  t.mlp = 8.0;  // DRAM-class concurrency, unlike Optane
  t.cost_per_mib = 1.0;
  t.random_granularity_bytes = kCacheLine;  // no internal amplification
  t.capacity_bytes = 512 * kGiB;  // reused DDR4 DIMMs behind the CXL switch
  return t;
}

TierSpec TierSpec::nvme_flash() {
  TierSpec t;
  t.name = "NVMe flash";
  t.read_latency_ns = us(12);  // demand-paged 4 KiB read, low queue depth
  t.write_latency_ns = us(16);
  t.read_bw_bytes_per_ns = 2.8;
  t.write_bw_bytes_per_ns = 1.2;
  t.mlp = 32.0;  // deep device queues hide much of the latency
  t.cost_per_mib = 0.4;
  t.random_granularity_bytes = 4096;  // page-granular device access
  t.capacity_bytes = 2048 * kGiB;
  return t;
}

std::vector<double> SystemConfig::rank_cost_ratios() const {
  std::vector<double> ratios;
  ratios.reserve(tiers.size() - 1);
  for (size_t rank = 1; rank < tiers.size(); ++rank)
    ratios.push_back(rank_cost_ratio(rank));
  return ratios;
}

SystemConfig SystemConfig::paper_default() { return SystemConfig{}; }

SystemConfig SystemConfig::cxl_host() {
  SystemConfig cfg;
  cfg.tiers = {TierSpec::ddr5_dram(), TierSpec::cxl_ddr4(),
               TierSpec::optane_pmem()};
  // Middle rung: reused DIMMs plus a switch port cost more per MiB than
  // PMem, less than new DDR5 — the ladder's $/MiB stays strictly
  // decreasing with depth so every rung is a distinct Eq-1 trade-off.
  cfg.tiers[1].cost_per_mib = 1.25;
  return cfg;
}

SystemConfig SystemConfig::nvme_host() {
  SystemConfig cfg = cxl_host();
  cfg.tiers.push_back(TierSpec::nvme_flash());
  return cfg;
}

}  // namespace toss
