#include "mem/tier.hpp"

namespace toss {

TierSpec TierSpec::ddr4_dram() {
  TierSpec t;
  t.name = "DDR4 DRAM";
  t.read_latency_ns = 85;
  t.write_latency_ns = 85;
  t.read_bw_bytes_per_ns = 80.0;   // 80 GB/s aggregate (2 sockets, 6 ch each)
  t.write_bw_bytes_per_ns = 40.0;
  t.mlp = 10.0;
  t.cost_per_mib = 2.5;  // only the 2.5:1 ratio matters (see [23] in paper)
  t.capacity_bytes = 192 * kGiB;  // paper host: 2 sockets x 6 ch x 16 GiB
  return t;
}

TierSpec TierSpec::optane_pmem() {
  TierSpec t;
  t.name = "Optane PMem";
  t.read_latency_ns = 310;  // published idle random read latency
  t.write_latency_ns = 95;  // writes land in the DIMM buffer...
  t.read_bw_bytes_per_ns = 26.0;  // ...but sustained bandwidth is much lower
  t.write_bw_bytes_per_ns = 7.5;
  t.mlp = 4.0;  // Optane sustains far fewer outstanding misses
  t.cost_per_mib = 1.0;
  t.random_granularity_bytes = 256;  // 3D-XPoint internal block size
  t.capacity_bytes = 768 * kGiB;  // 6 x 128 GB PMem DIMMs
  return t;
}

TierSpec TierSpec::ddr5_dram() {
  TierSpec t;
  t.name = "DDR5 DRAM";
  t.read_latency_ns = 75;
  t.write_latency_ns = 75;
  t.read_bw_bytes_per_ns = 120.0;
  t.write_bw_bytes_per_ns = 60.0;
  t.mlp = 12.0;
  t.cost_per_mib = 1.8;
  t.capacity_bytes = 256 * kGiB;
  return t;
}

TierSpec TierSpec::cxl_ddr4() {
  TierSpec t;
  t.name = "CXL DDR4";
  t.read_latency_ns = 210;  // DDR4 + one CXL hop
  t.write_latency_ns = 210;
  t.read_bw_bytes_per_ns = 28.0;  // x8 CXL link
  t.write_bw_bytes_per_ns = 28.0;
  t.mlp = 8.0;  // DRAM-class concurrency, unlike Optane
  t.cost_per_mib = 1.0;
  t.random_granularity_bytes = kCacheLine;  // no internal amplification
  t.capacity_bytes = 512 * kGiB;  // reused DDR4 DIMMs behind the CXL switch
  return t;
}

SystemConfig SystemConfig::paper_default() { return SystemConfig{}; }

SystemConfig SystemConfig::cxl_host() {
  SystemConfig cfg;
  cfg.fast = TierSpec::ddr5_dram();
  cfg.slow = TierSpec::cxl_ddr4();
  return cfg;
}

}  // namespace toss
