// Burst-level memory access cost model.
//
// The workload models emit *access bursts*: contiguous guest-page ranges with
// a number of LLC-missing accesses, a pattern (sequential/random), a write
// mix, and an intra-region skew. The cost model turns a burst plus a tier
// placement into simulated time. Sequential streams are bandwidth-limited;
// random streams are latency-limited but overlapped by the tier's
// memory-level parallelism.
#pragma once

#include <array>
#include <vector>

#include "mem/placement.hpp"
#include "mem/tier.hpp"
#include "util/contracts.hpp"

namespace toss {

enum class Pattern : u8 {
  kSequential = 0,  ///< streaming: cost = bytes / bandwidth
  kRandom = 1,      ///< pointer-chasing-ish: cost = latency / MLP per access
};

inline const char* pattern_name(Pattern p) {
  return p == Pattern::kSequential ? "seq" : "rand";
}

/// One burst of memory activity over a contiguous guest page range.
struct AccessBurst {
  u64 page_begin = 0;
  u64 page_count = 0;
  u64 accesses = 0;  ///< LLC-missing cache-line accesses in this burst
  Pattern pattern = Pattern::kSequential;
  double write_fraction = 0.0;  ///< 0 = all reads, 1 = all writes
  /// Zipf skew of accesses across the pages of the range; 0 = uniform.
  /// Hotter pages are placed at the start of the range (allocation order),
  /// so hot subsets form contiguous prefixes like real heaps do.
  double zipf_theta = 0.0;

  u64 page_end() const { return page_begin + page_count; }
  u64 bytes() const { return bytes_for_pages(page_count); }
};

/// Deterministically expand a burst into per-page access counts
/// (length == burst.page_count). The counts sum to ~burst.accesses.
std::vector<u64> expand_burst_counts(const AccessBurst& burst);

/// Per-tier time and device-bandwidth demand of a burst, indexed by ladder
/// rank (0 = fastest); the concurrency model (platform/concurrency.hpp)
/// aggregates demands across invocations into one contention pool per
/// rank. Fixed-size per-rank arrays: ranks beyond the ladder stay zero.
struct BurstCost {
  std::array<Nanos, kMaxTiers> tier_ns{};
  /// Device bytes moved (demand, not footprint), split by the burst's
  /// read/write mix.
  std::array<double, kMaxTiers> tier_read_bytes{};
  std::array<double, kMaxTiers> tier_write_bytes{};

  Nanos total_ns() const {
    Nanos total = 0;
    for (Nanos t : tier_ns) total += t;
    return total;
  }
};

class AccessCostModel {
 public:
  explicit AccessCostModel(const SystemConfig& cfg) : cfg_(&cfg) {
    TOSS_REQUIRE(cfg.tier_count() >= 1 && cfg.tier_count() <= kMaxTiers);
  }

  /// Cost of one cache-line access in tier `t` under `pattern`, blending the
  /// read/write mix.
  Nanos access_cost(Tier t, Pattern pattern, double write_fraction) const;

  /// Time for a burst when every page of it lives in tier `t`.
  Nanos burst_time_uniform(const AccessBurst& b, Tier t) const;

  /// Time for a burst under a per-page placement. `counts` must be the
  /// expansion of `b` (expand_burst_counts); passing it explicitly lets
  /// callers cache the expansion.
  Nanos burst_time(const AccessBurst& b, const std::vector<u64>& counts,
                   const PagePlacement& placement) const;

  /// Full per-tier time + device-demand breakdown of a burst.
  BurstCost burst_cost(const AccessBurst& b, const std::vector<u64>& counts,
                       const PagePlacement& placement) const;

  /// Total memory time of a whole trace in a single tier.
  Nanos trace_time_uniform(const std::vector<AccessBurst>& trace,
                           Tier t) const;

  const SystemConfig& config() const { return *cfg_; }

 private:
  const SystemConfig* cfg_;
};

}  // namespace toss
