#include "mem/access_cost.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace toss {

std::vector<u64> expand_burst_counts(const AccessBurst& burst) {
  TOSS_REQUIRE(burst.page_count > 0);
  std::vector<u64> counts(burst.page_count, 0);
  if (burst.accesses == 0) return counts;
  if (burst.zipf_theta <= 1e-9) {
    // Uniform spread with the remainder going to the leading pages.
    const u64 base = burst.accesses / burst.page_count;
    const u64 rem = burst.accesses % burst.page_count;
    for (u64 i = 0; i < burst.page_count; ++i)
      counts[i] = base + (i < rem ? 1 : 0);
    return counts;
  }
  // Zipf weights by page index (page 0 hottest). Normalize to the total
  // access count; rounding drift is folded into page 0.
  double z = 0.0;
  std::vector<double> w(burst.page_count);
  for (u64 i = 0; i < burst.page_count; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), burst.zipf_theta);
    z += w[i];
  }
  u64 assigned = 0;
  for (u64 i = 0; i < burst.page_count; ++i) {
    counts[i] = static_cast<u64>(
        static_cast<double>(burst.accesses) * w[i] / z);
    assigned += counts[i];
  }
  counts[0] += burst.accesses - assigned;
  return counts;
}

Nanos AccessCostModel::access_cost(Tier t, Pattern pattern,
                                   double write_fraction) const {
  const TierSpec& spec = cfg_->tier(t);
  const double wf = write_fraction;
  if (pattern == Pattern::kSequential) {
    const Nanos read = static_cast<double>(kCacheLine) / spec.read_bw_bytes_per_ns;
    const Nanos write = static_cast<double>(kCacheLine) / spec.write_bw_bytes_per_ns;
    return (1.0 - wf) * read + wf * write;
  }
  const Nanos read = spec.read_latency_ns / spec.mlp;
  const Nanos write = spec.write_latency_ns / spec.mlp;
  return (1.0 - wf) * read + wf * write;
}

Nanos AccessCostModel::burst_time_uniform(const AccessBurst& b, Tier t) const {
  return static_cast<double>(b.accesses) *
         access_cost(t, b.pattern, b.write_fraction);
}

Nanos AccessCostModel::burst_time(const AccessBurst& b,
                                  const std::vector<u64>& counts,
                                  const PagePlacement& placement) const {
  return burst_cost(b, counts, placement).total_ns();
}

BurstCost AccessCostModel::burst_cost(const AccessBurst& b,
                                      const std::vector<u64>& counts,
                                      const PagePlacement& placement) const {
  TOSS_REQUIRE(counts.size() == b.page_count);
  TOSS_REQUIRE(b.page_end() <= placement.num_pages());
  const size_t ranks = cfg_->tier_count();
  std::array<u64, kMaxTiers> accesses{};
  for (u64 i = 0; i < b.page_count; ++i) {
    const size_t rank = placement.rank_of(b.page_begin + i);
    TOSS_ASSERT(rank < ranks, "placement rank outside the ladder");
    accesses[rank] += counts[i];
  }

  BurstCost cost;
  for (size_t rank = 0; rank < ranks; ++rank) {
    cost.tier_ns[rank] =
        static_cast<double>(accesses[rank]) *
        access_cost(tier_index(rank), b.pattern, b.write_fraction);
    // Device bandwidth demand: sequential streams move cache lines; random
    // streams move the tier's internal access granularity per miss.
    const TierSpec& spec = cfg_->tiers[rank];
    const double unit = b.pattern == Pattern::kSequential
                            ? static_cast<double>(kCacheLine)
                            : spec.random_granularity_bytes;
    const double bytes = static_cast<double>(accesses[rank]) * unit;
    cost.tier_read_bytes[rank] = bytes * (1.0 - b.write_fraction);
    cost.tier_write_bytes[rank] = bytes * b.write_fraction;
  }
  return cost;
}

Nanos AccessCostModel::trace_time_uniform(const std::vector<AccessBurst>& trace,
                                          Tier t) const {
  Nanos total = 0;
  for (const auto& b : trace) total += burst_time_uniform(b, t);
  return total;
}

}  // namespace toss
