#include "mem/placement.hpp"

#include "util/contracts.hpp"

namespace toss {

PagePlacement::PagePlacement(u64 num_pages, Tier initial)
    : tiers_(num_pages, static_cast<u8>(initial)) {}

void PagePlacement::set_range(u64 page_begin, u64 page_count, Tier t) {
  TOSS_REQUIRE(page_begin + page_count <= num_pages());
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    tiers_[p] = static_cast<u8>(t);
}

void PagePlacement::set_all(Tier t) {
  for (auto& v : tiers_) v = static_cast<u8>(t);
}

u64 PagePlacement::pages_in(Tier t) const {
  u64 n = 0;
  for (u8 v : tiers_)
    if (v == static_cast<u8>(t)) ++n;
  return n;
}

double PagePlacement::slow_fraction() const {
  if (tiers_.empty()) return 0.0;
  return static_cast<double>(pages_in(Tier::kSlow)) /
         static_cast<double>(num_pages());
}

u64 PagePlacement::count_in_range(u64 page_begin, u64 page_count,
                                  Tier t) const {
  TOSS_REQUIRE(page_begin + page_count <= num_pages());
  u64 n = 0;
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    if (tiers_[p] == static_cast<u8>(t)) ++n;
  return n;
}

double PagePlacement::slow_fraction_in_range(u64 page_begin,
                                             u64 page_count) const {
  if (page_count == 0) return 0.0;
  return static_cast<double>(
             count_in_range(page_begin, page_count, Tier::kSlow)) /
         static_cast<double>(page_count);
}

}  // namespace toss
