#include "mem/placement.hpp"

#include "util/contracts.hpp"

namespace toss {

PagePlacement::PagePlacement(u64 num_pages, Tier initial)
    : tiers_(num_pages, static_cast<u8>(initial)) {}

void PagePlacement::set_range(u64 page_begin, u64 page_count, Tier t) {
  TOSS_REQUIRE(page_begin + page_count <= num_pages());
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    tiers_[p] = static_cast<u8>(t);
}

void PagePlacement::set_all(Tier t) {
  for (auto& v : tiers_) v = static_cast<u8>(t);
}

void PagePlacement::apply_floor(size_t rank) {
  for (auto& v : tiers_)
    if (v < rank) v = static_cast<u8>(rank);
}

u64 PagePlacement::pages_in(Tier t) const {
  u64 n = 0;
  for (u8 v : tiers_)
    if (v == static_cast<u8>(t)) ++n;
  return n;
}

std::vector<u64> PagePlacement::pages_per_rank(size_t tier_count) const {
  std::vector<u64> counts(tier_count, 0);
  for (u8 v : tiers_) {
    TOSS_ASSERT(v < tier_count, "placement rank outside the ladder");
    ++counts[v];
  }
  return counts;
}

double PagePlacement::slow_fraction() const {
  if (tiers_.empty()) return 0.0;
  u64 deep = 0;
  for (u8 v : tiers_)
    if (v != 0) ++deep;
  return static_cast<double>(deep) / static_cast<double>(num_pages());
}

std::vector<double> PagePlacement::deep_fractions(size_t tier_count) const {
  std::vector<double> fracs(tier_count > 0 ? tier_count - 1 : 0, 0.0);
  if (tiers_.empty()) return fracs;
  const std::vector<u64> counts = pages_per_rank(tier_count);
  for (size_t rank = 1; rank < tier_count; ++rank)
    fracs[rank - 1] = static_cast<double>(counts[rank]) /
                      static_cast<double>(num_pages());
  return fracs;
}

u64 PagePlacement::count_in_range(u64 page_begin, u64 page_count,
                                  Tier t) const {
  TOSS_REQUIRE(page_begin + page_count <= num_pages());
  u64 n = 0;
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    if (tiers_[p] == static_cast<u8>(t)) ++n;
  return n;
}

double PagePlacement::slow_fraction_in_range(u64 page_begin,
                                             u64 page_count) const {
  TOSS_REQUIRE(page_begin + page_count <= num_pages());
  if (page_count == 0) return 0.0;
  u64 deep = 0;
  for (u64 p = page_begin; p < page_begin + page_count; ++p)
    if (tiers_[p] != 0) ++deep;
  return static_cast<double>(deep) / static_cast<double>(page_count);
}

}  // namespace toss
