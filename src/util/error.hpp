// Typed errors for the public API and the snapshot failure domains.
//
// Lived in platform/errors.hpp until the fault-injection work: the snapshot
// store and the VM restore path (vmm/) are failure domains too, and they
// must surface typed toss::Error values — never raw std:: exceptions — so
// the recovery ladder in core/platform can tell a transient I/O fault
// (retry) from a corrupted artifact (quarantine + degrade) from a missing
// one (regenerate). platform/errors.hpp now forwards here; the public
// surface is unchanged.
//
// Rules (see DESIGN.md "Public API"):
//   - fallible operations return Result<T> (an std::expected-style
//     value-or-error);
//   - reference-returning accessors throw toss::Error with a
//     machine-readable code; Result<T>::value() throws the same Error, so
//     callers can choose between explicit checking and exception style
//     without losing the code.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/units.hpp"

namespace toss {

enum class ErrorCode : u8 {
  kUnknownFunction,    ///< name not registered
  kDuplicateFunction,  ///< name already registered
  kInvalidOptions,     ///< registration failed validation
  kInvalidRequest,     ///< malformed invocation parameters
  kEngineBusy,         ///< engine already ran / stream already consumed
  kSnapshotMissing,    ///< snapshot file id unknown or quarantined
  kSnapshotCorrupted,  ///< checksum mismatch / truncated tier or layout file
  kTransientIo,        ///< torn write, mmap failure: retryable
  kExecutionCrashed,   ///< guest crashed mid-invocation: retryable
  kOverloaded,         ///< admission control shed the request (retry later)
  kHostLost,           ///< owning host crashed; request shed at failover
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknownFunction: return "unknown_function";
    case ErrorCode::kDuplicateFunction: return "duplicate_function";
    case ErrorCode::kInvalidOptions: return "invalid_options";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kEngineBusy: return "engine_busy";
    case ErrorCode::kSnapshotMissing: return "snapshot_missing";
    case ErrorCode::kSnapshotCorrupted: return "snapshot_corrupted";
    case ErrorCode::kTransientIo: return "transient_io";
    case ErrorCode::kExecutionCrashed: return "execution_crashed";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kHostLost: return "host_lost";
  }
  return "?";
}

/// Transient failures are safe to retry verbatim; everything else needs a
/// different artifact (degrade/regenerate) or a different request.
inline bool is_transient(ErrorCode code) {
  return code == ErrorCode::kTransientIo ||
         code == ErrorCode::kExecutionCrashed;
}

/// The one exception type the public API throws.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Value-or-Error. Engagement is mandatory: value() on an error throws the
/// carried Error; ok()/operator bool gate the explicit-checking style.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw Error(code_, message_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw Error(code_, message_);
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// Only meaningful when !ok().
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  std::optional<T> value_;
  ErrorCode code_ = ErrorCode::kInvalidRequest;
  std::string message_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ErrorCode code, std::string message)
      : failed_(true), code_(code), message_(std::move(message)) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  /// Throw the carried Error when failed; no-op on success.
  void value() const {
    if (failed_) throw Error(code_, message_);
  }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  bool failed_ = false;
  ErrorCode code_ = ErrorCode::kInvalidRequest;
  std::string message_;
};

}  // namespace toss
