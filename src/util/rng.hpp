// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (guest allocation jitter, DAMON
// sampling noise, request input selection) draws from an explicitly seeded
// Rng so that experiments are exactly reproducible. Seeds are derived
// hierarchically with mix() so that (function, input, invocation) tuples get
// independent streams.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/units.hpp"

namespace toss {

/// splitmix64 step; also used to derive child seeds from a parent seed.
u64 splitmix64(u64& state);

/// Mix two values into a well-distributed seed.
u64 mix_seed(u64 a, u64 b);

/// Mix a string (e.g. a function name) into a seed.
u64 mix_seed(u64 a, std::string_view s);

/// xoshiro256** generator. Small, fast, and good enough for simulation.
class Rng {
 public:
  explicit Rng(u64 seed);

  /// Uniform u64 over the full range.
  u64 next();

  /// Uniform in [0, bound). bound == 0 returns 0.
  u64 next_below(u64 bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Normal(0, 1) via Box-Muller (no cached spare; deterministic per call).
  double normal();

  /// Normal(mean, stddev).
  double normal(double mean, double stddev);

  /// Multiplicative log-normal-ish jitter centred on 1.0 with relative
  /// spread `rel` (clamped to stay positive). Used to model run-to-run
  /// variability in guest memory allocation and execution time.
  double jitter(double rel);

  /// Derive an independent child generator.
  Rng fork(u64 salt);

 private:
  u64 s_[4];
};

/// Zipf(theta) sampler over [0, n). theta = 0 degenerates to uniform.
/// Uses the rejection method of Jim Gray et al. (no O(n) setup).
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double theta);

  u64 sample(Rng& rng) const;

  u64 n() const { return n_; }
  double theta() const { return theta_; }

 private:
  u64 n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace toss
