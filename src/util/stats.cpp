#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace toss {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const u64 n = n_ + o.n_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / static_cast<double>(n);
  mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  n_ = n;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(std::max(x, 1e-300));
  return std::exp(s / static_cast<double>(xs.size()));
}

double max_of(std::span<const double> xs) {
  double m = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) m = std::max(m, x);
  return m;
}

double min_of(std::span<const double> xs) {
  double m = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

double percentile_of(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(v.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double cv_of(std::span<const double> xs) {
  OnlineStats st;
  for (double x : xs) st.add(x);
  return st.mean() != 0.0 ? st.stddev() / st.mean() : 0.0;
}

}  // namespace toss
