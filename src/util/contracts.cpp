#include "util/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace toss::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const char* msg) {
  std::fprintf(stderr, "%s:%d: %s failed: %s%s%s%s\n", file, line, kind, expr,
               msg && msg[0] ? " (" : "", msg ? msg : "",
               msg && msg[0] ? ")" : "");
  std::fflush(stderr);
  std::abort();
}

bool contracts_enabled() {
#ifdef TOSS_CHECKED
  return true;
#else
  return false;
#endif
}

}  // namespace toss::detail
