#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace toss {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto sep = [&] {
    out << '+';
    for (size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    out << '\n';
  };
  sep();
  line(headers_);
  sep();
  for (const auto& row : rows_) line(row);
  sep();
  return out.str();
}

void AsciiTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_x(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, v);
  return buf;
}

}  // namespace toss
