#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace toss {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  has_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    // Notify only when a worker is actually parked: a busy worker re-checks
    // the queue under mu_ before it can sleep (wait-with-predicate), so a
    // skipped notify is never lost — it just skips the futex syscall. The
    // engine submits one task per worker per epoch, so this turns an
    // O(workers) wakeup convoy into zero syscalls in steady state.
    wake = waiting_ > 0;
  }
  if (wake) has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  ++idle_waiting_;
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  --idle_waiting_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_;
      has_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --waiting_;
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0 && idle_waiting_ > 0)
        idle_.notify_all();
    }
  }
}

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(ThreadPool* pool, size_t n,
                  const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1 || pool->thread_count() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Iterations are claimed from a shared counter so uneven iteration costs
  // balance across workers; results land wherever the caller indexes them,
  // so claiming order never affects output.
  //
  // The counters live on the heap, owned jointly by this frame and every
  // submitted task: when one worker drains the whole range, the caller's
  // wait is satisfied and this frame returns while the remaining tasks are
  // still queued — they wake up later, find no iteration to claim, and must
  // still be able to read `next` safely.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr first_error;
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();

  const size_t tasks =
      std::min(n, static_cast<size_t>(pool->thread_count()));
  for (size_t t = 0; t < tasks; ++t) {
    pool->submit([state, n, &fn] {
      for (;;) {
        const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;  // late tasks exit here without touching `fn`
        try {
          fn(i);
          // Not swallowed: the exception is captured whole and rethrown to
          // the caller from parallel_for's join.
        } catch (...) {  // toss-lint: allow(swallowed-error)
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->first_error)
            state->first_error = std::current_exception();
        }
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->all_done.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= n;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace toss
