// Optimistic version-stamped latch — the vmcache `PageState` idiom
// (Leis et al., "Virtual-Memory Assisted Buffer Management", SIGMOD'23)
// adapted for the shared hot structures of the parallel data plane
// (DESIGN.md §15): KeepAliveCache lookups, SnapshotStore resident-byte
// accounting and the metrics registry's series map.
//
// One 64-bit atomic word carries both the lock state and a version:
//
//   bits 63..56  state   0 = unlocked, 1..252 = shared-reader count,
//                        253 = exclusively locked
//   bits 55..0   version bumped by every exclusive unlock
//
// Three access protocols, cheapest first:
//
//   Optimistic read   optimistic_begin() spins past writers and returns
//                     the word; the reader then loads *atomic* fields and
//                     calls validate(word) — a version or state change
//                     means a writer interleaved, so retry. Zero stores on
//                     the read path, so readers never invalidate each
//                     other's cache lines. ONLY std::atomic fields may be
//                     read under this protocol: reading plain memory that
//                     a writer may concurrently mutate is a data race
//                     (TSan is right to flag the classic seqlock), which
//                     is why the container walks below use shared mode.
//   Shared            lock_shared() CAS-increments the reader count —
//                     lock-free, no mutex, no syscall — and excludes
//                     writers while plain-memory structures (the entry
//                     map, the blob maps) are walked.
//   Exclusive         lock_exclusive() CASes 0 -> 253; unlock_exclusive()
//                     publishes state 0 with version+1 in one release
//                     store, which is what makes the optimistic protocol
//                     sound.
//
// Mutation stays confined to the epoch barrier or to the lane that owns
// the entry (the engine's determinism argument); this latch makes the
// *reads* free once lanes steal across workers.
#pragma once

#include <atomic>
#include <thread>

#include "util/units.hpp"

namespace toss {

class OptimisticLatch {
 public:
  static constexpr u64 kUnlocked = 0;
  static constexpr u64 kMaxShared = 252;
  static constexpr u64 kExclusive = 253;

  OptimisticLatch() = default;
  OptimisticLatch(const OptimisticLatch&) = delete;
  OptimisticLatch& operator=(const OptimisticLatch&) = delete;

  static constexpr u64 state_of(u64 word) { return word >> 56; }
  static constexpr u64 version_of(u64 word) { return word & kVersionMask; }
  /// Same version, new state — the CAS target for lock transitions.
  static constexpr u64 same_version(u64 old, u64 state) {
    return ((old << 8) >> 8) | state << 56;
  }
  /// Version + 1, new state — the release store of an exclusive unlock.
  static constexpr u64 next_version(u64 old, u64 state) {
    return (((old << 8) >> 8) + 1) | state << 56;
  }

  // ---- Optimistic protocol (atomic fields only) ----

  /// Word snapshot to validate a read against; spins while a writer holds
  /// the latch (shared holders do not block optimistic readers).
  u64 optimistic_begin() const {
    for (int spin = 0;; ++spin) {
      const u64 word = word_.load(std::memory_order_acquire);
      if (state_of(word) != kExclusive) return word;
      if (spin >= kSpinLimit) std::this_thread::yield();
    }
  }

  /// True when no exclusive writer interleaved since `snapshot` was taken:
  /// the version is unchanged and no writer is mid-flight now.
  bool validate(u64 snapshot) const {
    return word_.load(std::memory_order_acquire) == snapshot;
  }

  // ---- Shared (CAS-counted readers; excludes writers) ----

  bool try_lock_shared() {
    u64 word = word_.load(std::memory_order_acquire);
    if (state_of(word) >= kMaxShared) return false;  // writer or full
    return word_.compare_exchange_weak(word, word + (u64{1} << 56),
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed);
  }

  void lock_shared() {
    for (int spin = 0; !try_lock_shared(); ++spin)
      if (spin >= kSpinLimit) std::this_thread::yield();
  }

  void unlock_shared() {
    word_.fetch_sub(u64{1} << 56, std::memory_order_release);
  }

  // ---- Exclusive (CAS lock-for-update, version bump on unlock) ----

  bool try_lock_exclusive() {
    u64 word = word_.load(std::memory_order_acquire);
    if (state_of(word) != kUnlocked) return false;
    return word_.compare_exchange_strong(word, same_version(word, kExclusive),
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void lock_exclusive() {
    for (int spin = 0; !try_lock_exclusive(); ++spin)
      if (spin >= kSpinLimit) std::this_thread::yield();
  }

  void unlock_exclusive() {
    const u64 word = word_.load(std::memory_order_relaxed);
    word_.store(next_version(word, kUnlocked), std::memory_order_release);
  }

  /// Current version (debug / test observability).
  u64 version() const {
    return version_of(word_.load(std::memory_order_acquire));
  }

 private:
  static constexpr u64 kVersionMask = (u64{1} << 56) - 1;
  /// Spins before yielding; critical sections here are map operations, so
  /// waiters almost never reach the yield.
  static constexpr int kSpinLimit = 128;

  std::atomic<u64> word_{0};
};

/// RAII shared hold.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(OptimisticLatch& latch) : latch_(latch) {
    latch_.lock_shared();
  }
  ~SharedLatchGuard() { latch_.unlock_shared(); }
  SharedLatchGuard(const SharedLatchGuard&) = delete;
  SharedLatchGuard& operator=(const SharedLatchGuard&) = delete;

 private:
  OptimisticLatch& latch_;
};

/// RAII exclusive hold; the destructor's unlock bumps the version, so
/// every mutation — including one that throws — invalidates optimistic
/// readers exactly once.
class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(OptimisticLatch& latch) : latch_(latch) {
    latch_.lock_exclusive();
  }
  ~ExclusiveLatchGuard() { latch_.unlock_exclusive(); }
  ExclusiveLatchGuard(const ExclusiveLatchGuard&) = delete;
  ExclusiveLatchGuard& operator=(const ExclusiveLatchGuard&) = delete;

 private:
  OptimisticLatch& latch_;
};

}  // namespace toss
