// ASCII table renderer used by the bench harnesses to print the paper's
// tables and figure series in a stable, diffable format.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace toss {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and +---+ separators.
  std::string to_string() const;

  /// Render and write to stdout.
  void print() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_f(double v, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);  ///< 0.123 -> "12.3%"
std::string fmt_x(double v, int precision = 2);           ///< 1.78 -> "1.78x"

}  // namespace toss
