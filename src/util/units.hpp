// Basic size/time units used throughout the simulator.
//
// All simulated durations are carried as double nanoseconds (Nanos). The
// simulator is analytic, so sub-nanosecond fractions are meaningful when
// amortizing bandwidth costs over bursts.
#pragma once

#include <cstdint>
#include <string>

namespace toss {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Simulated duration in nanoseconds.
using Nanos = double;

inline constexpr u64 kKiB = 1024;
inline constexpr u64 kMiB = 1024 * kKiB;
inline constexpr u64 kGiB = 1024 * kMiB;

/// Guest physical pages are 4 KiB, matching Firecracker/x86.
inline constexpr u64 kPageSize = 4 * kKiB;

/// Cache line granularity used by the access-cost model.
inline constexpr u64 kCacheLine = 64;

inline constexpr u64 pages_for_bytes(u64 bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

inline constexpr u64 bytes_for_pages(u64 pages) { return pages * kPageSize; }

inline constexpr Nanos us(double v) { return v * 1e3; }
inline constexpr Nanos ms(double v) { return v * 1e6; }
inline constexpr Nanos sec(double v) { return v * 1e9; }

inline constexpr double to_us(Nanos v) { return v / 1e3; }
inline constexpr double to_ms(Nanos v) { return v / 1e6; }
inline constexpr double to_sec(Nanos v) { return v / 1e9; }

/// Render a byte count as a compact human-readable string ("1.5 MiB").
std::string format_bytes(u64 bytes);

/// Render a duration as a compact human-readable string ("3.2 ms").
std::string format_nanos(Nanos t);

}  // namespace toss
