// Small statistics helpers shared by the profiler, benches and tests.
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace toss {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& o);

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean_of(std::span<const double> xs);
double geomean_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double min_of(std::span<const double> xs);

/// Linear-interpolated percentile; p in [0, 100]. Copies + sorts.
double percentile_of(std::span<const double> xs, double p);

/// Coefficient of variation (stddev / mean); 0 for empty/zero-mean input.
double cv_of(std::span<const double> xs);

}  // namespace toss
