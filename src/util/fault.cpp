#include "util/fault.hpp"

#include <algorithm>

namespace toss {

const char* fallback_level_name(FallbackLevel level) {
  switch (level) {
    case FallbackLevel::kNone: return "none";
    case FallbackLevel::kSingleTier: return "single_tier";
    case FallbackLevel::kColdBoot: return "cold_boot";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan, u64 salt) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    sites_[i].config = std::move(plan.sites[i]);
    // Independent stream per site: a draw at one site never shifts the
    // schedule of another, so adding probes is behaviour-preserving.
    sites_[i].rng = Rng(mix_seed(mix_seed(plan.seed, salt), i + 1));
  }
}

bool FaultInjector::should_fire(FaultSite site) {
  if constexpr (!kFaultInjectionEnabled) return false;
  SiteState& s = sites_[static_cast<size_t>(site)];
  const u64 arm = s.arms++;
  if (!s.config.armed() || s.fires >= s.config.max_fires) return false;
  bool fire = std::find(s.config.schedule.begin(), s.config.schedule.end(),
                        arm) != s.config.schedule.end();
  // Probability draws only happen on probability-armed sites, so a pure
  // schedule is stable under config edits elsewhere.
  if (!fire && s.config.probability > 0.0)
    fire = s.rng.next_double() < s.config.probability;
  if (fire) ++s.fires;
  return fire;
}

u64 FaultInjector::draw(FaultSite site, u64 bound) {
  return sites_[static_cast<size_t>(site)].rng.next_below(bound);
}

Nanos FaultInjector::stall_ns(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].config.delay_ns;
}

u64 FaultInjector::arms(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].arms;
}

u64 FaultInjector::fires(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].fires;
}

u64 FaultInjector::total_fires() const {
  u64 n = 0;
  for (const SiteState& s : sites_) n += s.fires;
  return n;
}

Nanos RetryPolicy::backoff_ns(int retry_index, Rng& rng) const {
  Nanos backoff = base_backoff_ns;
  for (int i = 0; i < retry_index; ++i) backoff *= multiplier;
  if (jitter > 0.0) backoff *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  return std::max(0.0, backoff);
}

}  // namespace toss
