// Contract macros for checked builds (the runtime half of the verification
// layer; tools/toss_lint is the static half).
//
// The simulator's correctness rests on structural invariants the type
// system cannot see: layouts must tile guest memory, bins must conserve
// access mass, a lane must never be re-entered concurrently. These macros
// turn those implicit invariants into enforced ones:
//
//   TOSS_REQUIRE(cond [, "msg"])   precondition  (caller handed us garbage)
//   TOSS_ASSERT(cond [, "msg"])    invariant     (our own state is broken)
//   TOSS_ENSURE(cond [, "msg"])    postcondition (we produced garbage)
//   TOSS_VALIDATE(expr)            `expr` is a validator returning
//                                  std::optional<std::string>; an engaged
//                                  result is a violation and its string is
//                                  the diagnostic
//
// All four are active when TOSS_CHECKED is defined (the -DTOSS_CHECKED=ON
// CMake option; on by default in Debug builds) and compile to nothing in
// unchecked builds — the condition is parsed but never evaluated, so
// checked-only expressions stay warning-free. A violation prints
// `file:line: kind failed: expr (msg)` to stderr and aborts; there is no
// throwing mode, because a broken invariant means later results would be
// silently wrong, which is exactly the failure mode checked builds exist
// to make loud.
//
// Raw assert() is banned in src/ (toss_lint rule `raw-assert`): it
// vanishes under NDEBUG, which RelWithDebInfo sets, so the seed's asserts
// never ran in the default build.
#pragma once

#include <optional>
#include <string>

namespace toss::detail {

/// Print `file:line: kind failed: expr (msg)` to stderr and abort.
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const char* msg);

/// True in builds compiled with -DTOSS_CHECKED=ON.
bool contracts_enabled();

}  // namespace toss::detail

#ifdef TOSS_CHECKED

#define TOSS_CONTRACT_(kind, cond, ...)                                      \
  do {                                                                       \
    if (!(cond))                                                             \
      ::toss::detail::contract_failure(kind, #cond, __FILE__, __LINE__,      \
                                       "" __VA_ARGS__);                      \
  } while (0)

#define TOSS_VALIDATE(expr)                                                  \
  do {                                                                       \
    if (const std::optional<std::string> toss_contract_err_ = (expr))        \
      ::toss::detail::contract_failure("validate", #expr, __FILE__,          \
                                       __LINE__, toss_contract_err_->c_str()); \
  } while (0)

#else  // !TOSS_CHECKED: parse but never evaluate.

#define TOSS_CONTRACT_(kind, cond, ...) \
  do {                                  \
    if (false) {                        \
      (void)(cond);                     \
    }                                   \
  } while (0)

#define TOSS_VALIDATE(expr) \
  do {                      \
    if (false) {            \
      (void)(expr);         \
    }                       \
  } while (0)

#endif  // TOSS_CHECKED

#define TOSS_REQUIRE(cond, ...) TOSS_CONTRACT_("precondition", cond, __VA_ARGS__)
#define TOSS_ASSERT(cond, ...) TOSS_CONTRACT_("invariant", cond, __VA_ARGS__)
#define TOSS_ENSURE(cond, ...) TOSS_CONTRACT_("postcondition", cond, __VA_ARGS__)
