// Deterministic fault injection for the snapshot and cluster failure
// domains, plus the retry/recovery vocabulary the self-healing ladder
// shares across layers.
//
// Every invocation depends on on-disk artifacts (tier files, the memory
// layout file) and on restores succeeding; production snapshot stores treat
// torn writes, bitrot and device stalls as normal events. The FaultInjector
// makes those events *reproducible*: each injection site owns a seeded Rng
// stream (util/rng, so the toss_lint nondeterminism rule holds) and an arm
// counter, and a fault fires either by per-arm probability or by an
// explicit schedule of arm indices. Sites draw from independent streams and
// all state is lane-local, so the same seed produces the same fault
// sequence for any thread count.
//
// The whole subsystem compiles to no-ops unless the build sets
// -DTOSS_FAULTS=ON: should_fire() returns false before touching any state,
// so production binaries carry zero probes and bit-identical behaviour.
//
// Recovery vocabulary (used even when injection is compiled out):
//   RetryPolicy    bounded attempts + exponential backoff with
//                  deterministic jitter, in *simulated* time
//   FallbackLevel  how far down the degradation ladder an invocation fell
//   RecoveryInfo   per-invocation ledger of faults seen, retries spent,
//                  fallback taken and quarantine/regeneration events
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace toss {

#ifdef TOSS_FAULTS
inline constexpr bool kFaultInjectionEnabled = true;
#else
inline constexpr bool kFaultInjectionEnabled = false;
#endif

/// True in builds compiled with -DTOSS_FAULTS=ON.
constexpr bool fault_injection_enabled() { return kFaultInjectionEnabled; }

/// Injection sites: one per failure domain of the snapshot path, plus the
/// cluster-level domains (whole-host death, host slowdown, cross-host
/// transfer). Cluster sites arm from per-host derived seeds inside
/// ClusterEngine, so host failures are as reproducible as page bitrot.
enum class FaultSite : u8 {
  kPutSingleTier = 0,  ///< torn write persisting the single-tier snapshot
  kPutTiered,          ///< torn write persisting the tiered artifact
  kTierBitrot,         ///< at-rest corruption of a fast tier-file page
  kTierTruncate,       ///< at-rest truncation of the fast tier file
  kRestoreMapping,     ///< transient mmap failure at restore
  kSlowTierStall,      ///< latency spike on slow-tier mappings at restore
  kExecCrash,          ///< guest crash mid-invocation, before any snapshot
  kHostCrash,          ///< whole-host death at a cluster epoch boundary
  kHostBrownout,       ///< host straggle: epoch wall-clock inflated delay_ns
  kMigrationAbort,     ///< cross-host snapshot transfer aborts mid-copy
};
/// Derived from the last enumerator, so adding a site cannot leave the
/// count (and every array sized by it) stale.
inline constexpr size_t kFaultSiteCount =
    static_cast<size_t>(FaultSite::kMigrationAbort) + 1;

/// Wire names, indexed by FaultSite. constexpr so tests can static_assert
/// the table, the enum and kFaultSiteCount stay in sync.
inline constexpr std::array<const char*, kFaultSiteCount> kFaultSiteNames = {
    "put_single_tier", "put_tiered",      "tier_bitrot",  "tier_truncate",
    "restore_mapping", "slow_tier_stall", "exec_crash",   "host_crash",
    "host_brownout",   "migration_abort",
};

constexpr const char* fault_site_name(FaultSite site) {
  return kFaultSiteNames[static_cast<size_t>(site)];
}

/// Inverse of fault_site_name; empty when the name is unknown. constexpr,
/// so the round-trip (site -> name -> site) is checkable at compile time.
constexpr std::optional<FaultSite> fault_site_from_name(
    std::string_view name) {
  for (size_t i = 0; i < kFaultSiteCount; ++i)
    if (name == std::string_view(kFaultSiteNames[i]))
      return static_cast<FaultSite>(i);
  return std::nullopt;
}

/// When a site fires. `schedule` lists explicit 0-based arm indices (the
/// n-th time the site is reached); `probability` adds an independent
/// per-arm chance on top. Both empty/zero = the site never fires.
struct FaultConfig {
  double probability = 0.0;
  std::vector<u64> schedule;
  u64 max_fires = ~u64{0};
  /// Magnitude for kSlowTierStall (added to restore setup time).
  Nanos delay_ns = 0;

  bool armed() const { return probability > 0.0 || !schedule.empty(); }
};

/// A seedable description of which sites fault and how — the value handed
/// to ServerlessPlatform / EngineOptions. Plans are cheap to copy; the
/// engine derives an independent per-lane injector from (seed, lane name).
struct FaultPlan {
  u64 seed = 0;
  std::array<FaultConfig, kFaultSiteCount> sites;

  FaultPlan& set(FaultSite site, FaultConfig config) {
    sites[static_cast<size_t>(site)] = std::move(config);
    return *this;
  }
  const FaultConfig& at(FaultSite site) const {
    return sites[static_cast<size_t>(site)];
  }
  bool armed() const {
    for (const FaultConfig& c : sites)
      if (c.armed()) return true;
    return false;
  }
};

/// Per-lane fault state: arm counters, fire counters and one forked Rng
/// stream per site. Deterministic for a fixed (plan.seed, salt) regardless
/// of what other lanes or sites do.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, u64 salt);

  /// Called once per arm point. Advances the site's arm counter and
  /// decides — by schedule, then by probability — whether this arm faults.
  /// Compiled builds without TOSS_FAULTS return false unconditionally.
  bool should_fire(FaultSite site);

  /// Deterministic draw from the site's stream in [0, bound); used to pick
  /// e.g. which file page bitrot flips.
  u64 draw(FaultSite site, u64 bound);

  Nanos stall_ns(FaultSite site) const;

  u64 arms(FaultSite site) const;
  u64 fires(FaultSite site) const;
  u64 total_fires() const;

 private:
  struct SiteState {
    FaultConfig config;
    Rng rng{0};
    u64 arms = 0;
    u64 fires = 0;
  };
  std::array<SiteState, kFaultSiteCount> sites_;
};

/// Bounded retry with exponential backoff and deterministic jitter. Backoff
/// is *simulated* time: the ladder adds it to the invocation's setup cost,
/// so degradation under faults is measurable in the latency metrics rather
/// than burned as real wall-clock sleeps.
struct RetryPolicy {
  int max_attempts = 3;  ///< total attempts per fallible operation (>= 1)
  Nanos base_backoff_ns = ms(1);
  double multiplier = 2.0;
  double jitter = 0.25;  ///< +/- fraction of the backoff, drawn from `rng`

  /// Backoff charged before retry number `retry_index` (0-based, i.e. after
  /// the (retry_index+1)-th failed attempt).
  Nanos backoff_ns(int retry_index, Rng& rng) const;
};

/// How far down the degradation ladder an invocation fell.
enum class FallbackLevel : u8 {
  kNone = 0,        ///< intended restore path succeeded
  kSingleTier = 1,  ///< tiered artifact unusable; retained Step-I snapshot
  kColdBoot = 2,    ///< no usable snapshot at all; booted from scratch
};

const char* fallback_level_name(FallbackLevel level);

/// Per-invocation recovery ledger, carried on TossInvocationRecord /
/// InvocationOutcome and aggregated into the metrics counters.
struct RecoveryInfo {
  u32 faults_seen = 0;  ///< injected faults this invocation tripped over
  u32 retries = 0;      ///< extra attempts spent (any ladder rung)
  FallbackLevel fallback = FallbackLevel::kNone;
  bool quarantined = false;         ///< tiered artifact quarantined now
  bool regenerated = false;         ///< rebuilt a previously quarantined one
  bool breaker_suspended = false;   ///< circuit breaker forced degraded mode
  /// False only when every ladder rung was exhausted (e.g. the guest
  /// crashed on all retry attempts) and no execution finished.
  bool completed = true;
  Nanos overhead_ns = 0;            ///< simulated backoff + wasted attempts
  u64 memory_hash = 0;              ///< page-version oracle: observed
  u64 expected_hash = 0;            ///< page-version oracle: authoritative

  bool memory_ok() const { return memory_hash == expected_hash; }
  bool engaged() const {
    return retries > 0 || fallback != FallbackLevel::kNone || quarantined;
  }
};

}  // namespace toss
