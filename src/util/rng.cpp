#include "util/rng.hpp"

#include <cmath>

namespace toss {

u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 mix_seed(u64 a, u64 b) {
  u64 state = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

u64 mix_seed(u64 a, std::string_view s) {
  // FNV-1a over the string, then mixed with `a`.
  u64 h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<u64>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return mix_seed(a, h);
}

namespace {
inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(u64 seed) {
  u64 state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift; the tiny modulo bias is irrelevant here.
  return static_cast<u64>((static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::jitter(double rel) {
  if (rel <= 0.0) return 1.0;
  const double v = normal(1.0, rel);
  // Clamp at 3 sigma and keep strictly positive.
  const double lo = std::max(0.05, 1.0 - 3.0 * rel);
  const double hi = 1.0 + 3.0 * rel;
  return std::min(hi, std::max(lo, v));
}

Rng Rng::fork(u64 salt) { return Rng(mix_seed(next(), salt)); }

namespace {
double zeta(u64 n, double theta) {
  double sum = 0.0;
  for (u64 i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(u64 n, double theta) : n_(n == 0 ? 1 : n), theta_(theta) {
  if (theta_ <= 1e-9) {
    // Uniform special case; fields unused.
    alpha_ = zetan_ = eta_ = zeta2_ = 0.0;
    return;
  }
  // For large n computing zeta exactly is O(n); cap the exact sum and
  // approximate the tail with the integral, which is accurate for n > 1e4.
  constexpr u64 kExactCap = 10000;
  if (n_ <= kExactCap) {
    zetan_ = zeta(n_, theta_);
  } else {
    const double head = zeta(kExactCap, theta_);
    const double a = static_cast<double>(kExactCap);
    const double b = static_cast<double>(n_);
    double tail;
    if (std::abs(theta_ - 1.0) < 1e-9) {
      tail = std::log(b / a);
    } else {
      tail = (std::pow(b, 1.0 - theta_) - std::pow(a, 1.0 - theta_)) / (1.0 - theta_);
    }
    zetan_ = head + tail;
  }
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_ == 0.0 ? 1e-9 : 1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

u64 ZipfSampler::sample(Rng& rng) const {
  if (theta_ <= 1e-9) return rng.next_below(n_);
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const u64 v = static_cast<u64>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace toss
