#include "util/units.hpp"

#include <cstdio>

namespace toss {

std::string format_bytes(u64 bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_nanos(Nanos t) {
  char buf[64];
  if (t >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", t / 1e9);
  } else if (t >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", t / 1e6);
  } else if (t >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", t / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", t);
  }
  return buf;
}

}  // namespace toss
