// Fixed-size worker pool shared by the platform engine and the parallel
// analysis paths (Step III bin profiling, fleet benches).
//
// Design constraints, in order:
//   1. Determinism of *results* — the pool schedules, it never reorders
//      data. Callers index results by task id, so the interleaving of
//      workers cannot change what is computed.
//   2. No dependencies beyond <thread>: the simulator must build anywhere
//      the C++20 toolchain does.
//   3. Long-running tasks are first-class: the engine submits one scheduler
//      loop per worker, so the queue must not assume short tasks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace toss {

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains the queue, waits for running tasks, joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions escaping a task
  /// terminate (use parallel_for for exception propagation).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable has_work_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  /// Workers currently blocked in has_work_.wait (under mu_). submit()
  /// skips the notify syscall when nobody is parked — a worker that is
  /// busy re-checks the queue itself when it finishes, so the wakeup
  /// would be wasted. This is what removes the O(workers) notify convoy
  /// per epoch from the legacy engine path.
  int waiting_ = 0;
  /// Threads blocked in wait_idle (under mu_); gates idle_ notifies.
  int idle_waiting_ = 0;
  bool stopping_ = false;
};

/// Run fn(0..n-1), spreading iterations over `pool`'s workers; the calling
/// thread blocks until all complete. A null pool or n <= 1 runs inline.
/// The first exception thrown by any iteration is rethrown to the caller.
void parallel_for(ThreadPool* pool, size_t n,
                  const std::function<void(size_t)>& fn);

}  // namespace toss
