// FunctionRegistry: lookup of the Table-I function models by name.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/function_model.hpp"

namespace toss {

class FunctionRegistry {
 public:
  /// Registry preloaded with the ten Table-I functions.
  static FunctionRegistry table1();

  FunctionRegistry() = default;

  void add(FunctionSpec spec);

  const FunctionModel* find(std::string_view name) const;
  const std::vector<FunctionModel>& models() const { return models_; }
  size_t size() const { return models_.size(); }

 private:
  std::vector<FunctionModel> models_;
};

}  // namespace toss
