#include "workloads/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace toss {

void append_phase_bursts(const FunctionSpec& spec, const PhaseSpec& phase,
                         int input, Rng& rng, BurstTrace& trace) {
  TOSS_REQUIRE(input >= 0 && input < kNumInputs);
  const double size_mib = phase.size_mib[static_cast<size_t>(input)];
  const double intensity = phase.accesses_per_page[static_cast<size_t>(input)];
  if (size_mib <= 0.0 || intensity <= 0.0) return;

  const u64 guest_pages = spec.guest_pages();

  // Region size: jittered, at least one page.
  const double jittered_mib = size_mib * rng.jitter(spec.alloc_jitter);
  u64 pages = std::max<u64>(
      1, pages_for_bytes(static_cast<u64>(jittered_mib * kMiB)));
  pages = std::min(pages, guest_pages);

  // Region base: nominal offset shifted by allocation jitter (the guest
  // allocator does not hand back identical addresses run to run).
  const u64 nominal = pages_for_bytes(
      static_cast<u64>(phase.offset_mib * static_cast<double>(kMiB)));
  const double shift_span =
      spec.alloc_jitter * static_cast<double>(pages);
  const i64 shift = static_cast<i64>(
      std::llround(rng.uniform(-shift_span, shift_span)));
  i64 begin = static_cast<i64>(nominal) + shift;
  begin = std::clamp<i64>(begin, 0,
                          static_cast<i64>(guest_pages - pages));

  // Total accesses for the phase, split across `repeats` bursts.
  const double total = intensity * static_cast<double>(pages) *
                       rng.jitter(0.05);
  const int repeats = std::max(1, phase.repeats);
  const u64 per_burst = std::max<u64>(
      1, static_cast<u64>(total / static_cast<double>(repeats)));

  for (int r = 0; r < repeats; ++r) {
    AccessBurst b;
    b.page_begin = static_cast<u64>(begin);
    b.page_count = pages;
    b.accesses = per_burst;
    b.pattern = phase.pattern;
    b.write_fraction = phase.write_fraction;
    b.zipf_theta = phase.zipf_theta;
    trace.push_back(b);
  }
}

}  // namespace toss
