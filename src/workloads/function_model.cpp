#include "workloads/function_model.hpp"

#include "workloads/trace_gen.hpp"
#include "util/contracts.hpp"

namespace toss {

FunctionModel::FunctionModel(FunctionSpec spec) : spec_(std::move(spec)) {}

Invocation FunctionModel::invoke(int input, u64 invocation_seed) const {
  TOSS_REQUIRE(input >= 0 && input < kNumInputs);
  Invocation inv;
  inv.input = input;
  inv.seed = invocation_seed;

  Rng rng(mix_seed(mix_seed(invocation_seed, spec_.name),
                   static_cast<u64>(input)));
  for (const PhaseSpec& phase : spec_.phases)
    append_phase_bursts(spec_, phase, input, rng, inv.trace);

  inv.cpu_ns = ms(spec_.cpu_ms[static_cast<size_t>(input)]) *
               rng.jitter(spec_.time_jitter);
  return inv;
}

}  // namespace toss
