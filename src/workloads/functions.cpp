#include "workloads/functions.hpp"

namespace toss {
namespace workloads {

namespace {

/// Guest kernel + page cache pages: present in every VM, lightly accessed.
PhaseSpec kernel_phase() {
  PhaseSpec p;
  p.name = "kernel";
  p.offset_mib = 0;
  p.size_mib = {24, 24, 24, 24};
  p.pattern = Pattern::kRandom;
  p.write_fraction = 0.05;
  p.zipf_theta = 0.6;
  p.accesses_per_page = {0.5, 1, 1.5, 2};
  return p;
}

/// Language runtime (Python interpreter + imported libraries): a hot prefix
/// (dispatch loop, core objects) with a long warm tail.
PhaseSpec runtime_phase(double size_mib, std::array<double, 4> app,
                        double theta = 1.1) {
  PhaseSpec p;
  p.name = "runtime";
  p.offset_mib = 28;
  p.size_mib = {size_mib, size_mib, size_mib, size_mib};
  p.pattern = Pattern::kRandom;
  p.write_fraction = 0.08;
  p.zipf_theta = theta;
  p.accesses_per_page = app;
  return p;
}

}  // namespace

FunctionSpec float_operation() {
  FunctionSpec f;
  f.name = "float_operation";
  f.description = "Floating point ops for N numbers";
  f.memory_mb = 128;
  f.input_labels = {"N=10", "N=100", "N=1000", "N=10000"};
  f.cpu_ms = {1.2, 3.0, 12.0, 70.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.3, 0.7, 2.2, 9}, 1.3));
  PhaseSpec data;
  data.name = "numbers";
  data.offset_mib = 68;
  data.size_mib = {0.25, 0.5, 1, 4};
  data.pattern = Pattern::kSequential;
  data.write_fraction = 0.4;
  data.accesses_per_page = {30, 30, 30, 30};
  f.phases.push_back(data);
  return f;
}

FunctionSpec pyaes() {
  FunctionSpec f;
  f.name = "pyaes";
  f.description = "AES text encryption";
  f.memory_mb = 128;
  f.input_labels = {"64 chars", "256 chars", "1024 chars", "4096 chars"};
  f.cpu_ms = {2.5, 9.0, 35.0, 140.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(40, {0.35, 1.1, 4, 13}, 1.2));
  PhaseSpec text;
  text.name = "text";
  text.offset_mib = 72;
  text.size_mib = {0.5, 0.5, 1, 2};
  text.pattern = Pattern::kSequential;
  text.write_fraction = 0.5;
  text.accesses_per_page = {40, 40, 40, 40};
  f.phases.push_back(text);
  return f;
}

FunctionSpec json_load_dump() {
  FunctionSpec f;
  f.name = "json_load_dump";
  f.description = "Read-modify-write JSON files";
  f.memory_mb = 128;
  f.input_labels = {"1 file", "10 files", "20 files", "40 files"};
  f.cpu_ms = {6.0, 20.0, 45.0, 95.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.6, 1.7, 3.5, 7}));
  PhaseSpec files;
  files.name = "json_files";
  files.offset_mib = 66;
  files.size_mib = {1.5, 15, 30, 55};
  files.pattern = Pattern::kSequential;
  files.write_fraction = 0.35;
  files.accesses_per_page = {70, 70, 70, 70};
  files.repeats = 2;  // load pass + dump pass
  f.phases.push_back(files);
  return f;
}

FunctionSpec compress() {
  FunctionSpec f;
  f.name = "compress";
  f.description = "File compression";
  f.memory_mb = 256;
  f.input_labels = {"10 MB", "20 MB", "41 MB", "82 MB"};
  f.cpu_ms = {45.0, 90.0, 190.0, 380.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.5, 1, 2, 4}));
  PhaseSpec in;
  in.name = "input_buf";
  in.offset_mib = 70;
  in.size_mib = {10, 20, 41, 82};
  in.pattern = Pattern::kSequential;
  in.write_fraction = 0.0;
  in.accesses_per_page = {130, 130, 130, 130};
  in.repeats = 2;
  f.phases.push_back(in);
  PhaseSpec out;
  out.name = "output_buf";
  out.offset_mib = 160;
  out.size_mib = {10, 20, 41, 82};
  out.pattern = Pattern::kSequential;
  out.write_fraction = 0.9;
  out.accesses_per_page = {40, 40, 40, 40};
  f.phases.push_back(out);
  return f;
}

FunctionSpec linpack() {
  FunctionSpec f;
  f.name = "linpack";
  f.description = "Solves Ax=b for matrix A";
  f.memory_mb = 256;
  f.input_labels = {"n=100", "n=500", "n=1000", "n=2000"};
  f.cpu_ms = {4.0, 40.0, 150.0, 600.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.15, 0.6, 1.8, 6}));
  PhaseSpec matrix;
  matrix.name = "matrix_stream";
  matrix.offset_mib = 70;
  matrix.size_mib = {0.08, 2, 8, 32};
  matrix.pattern = Pattern::kSequential;
  matrix.write_fraction = 0.3;
  matrix.accesses_per_page = {300, 300, 300, 300};
  matrix.repeats = 4;
  f.phases.push_back(matrix);
  PhaseSpec panel;
  panel.name = "lu_panel";
  panel.offset_mib = 70;  // the panel is the hot prefix of the matrix
  panel.size_mib = {0.02, 0.5, 2, 8};
  panel.pattern = Pattern::kRandom;
  panel.write_fraction = 0.3;
  panel.zipf_theta = 0.5;
  panel.accesses_per_page = {800, 800, 800, 800};
  f.phases.push_back(panel);
  return f;
}

FunctionSpec matmul() {
  FunctionSpec f;
  f.name = "matmul";
  f.description = "Product of two 2D matrices";
  f.memory_mb = 256;
  f.input_labels = {"n=100", "n=500", "n=1000", "n=2000"};
  f.cpu_ms = {3.0, 35.0, 140.0, 560.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.12, 0.5, 1.6, 6}));
  PhaseSpec mats;
  mats.name = "input_matrices";
  mats.offset_mib = 70;
  mats.size_mib = {0.2, 6, 24, 96};
  mats.pattern = Pattern::kSequential;
  mats.write_fraction = 0.05;
  mats.accesses_per_page = {250, 250, 250, 250};
  mats.repeats = 4;
  f.phases.push_back(mats);
  PhaseSpec accum;
  accum.name = "accumulator";
  accum.offset_mib = 170;
  accum.size_mib = {0.1, 1.5, 6, 24};
  accum.pattern = Pattern::kRandom;
  accum.write_fraction = 0.4;
  accum.zipf_theta = 0.4;
  accum.accesses_per_page = {500, 750, 900, 1000};
  f.phases.push_back(accum);
  return f;
}

FunctionSpec image_processing() {
  FunctionSpec f;
  f.name = "image_processing";
  f.description = "Flips the input image";
  f.memory_mb = 256;
  f.input_labels = {"43 kB", "315 kB", "1.8 MB", "4.1 MB"};
  f.cpu_ms = {3.5, 12.0, 45.0, 130.0};
  f.time_jitter = 0.18;  // the paper calls out its high latency variability
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(40, {0.25, 0.8, 2.5, 6}, 0.9));
  PhaseSpec bufs;
  bufs.name = "pixel_buffers";
  bufs.offset_mib = 72;
  bufs.size_mib = {2, 12, 45, 110};
  bufs.pattern = Pattern::kRandom;
  bufs.write_fraction = 0.5;
  bufs.zipf_theta = 0.0;  // flip touches every pixel equally: uniform bins
  bufs.accesses_per_page = {14, 16, 18, 19};
  f.phases.push_back(bufs);
  return f;
}

FunctionSpec pagerank() {
  FunctionSpec f;
  f.name = "pagerank";
  f.description = "Pagerank on a graph";
  f.memory_mb = 1024;
  f.input_labels = {"90k vertices", "180k vertices", "360k vertices",
                    "720k vertices"};
  f.cpu_ms = {60.0, 150.0, 400.0, 1100.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(36, {0.4, 1, 2.4, 6}));
  // The graph is bimodal: the hot vertex/index half is touched on every
  // power iteration; the colder edge-payload half streams with the graph
  // structure. This is what caps how much of pagerank TOSS can offload
  // (Table II: 49.1%) — moving the hot half would explode the slowdown.
  PhaseSpec hot;
  hot.name = "graph_hot";
  hot.offset_mib = 70;
  hot.size_mib = {52, 105, 215, 450};
  hot.pattern = Pattern::kRandom;
  hot.write_fraction = 0.1;
  hot.zipf_theta = 0.1;
  hot.accesses_per_page = {35, 70, 130, 220};
  hot.repeats = 3;  // power iterations
  f.phases.push_back(hot);
  PhaseSpec warm;
  warm.name = "graph_warm";
  warm.offset_mib = 530;
  warm.size_mib = {55, 110, 225, 460};
  warm.pattern = Pattern::kRandom;
  warm.write_fraction = 0.1;
  warm.zipf_theta = 0.1;
  warm.accesses_per_page = {7, 14, 25, 36};
  warm.repeats = 3;
  f.phases.push_back(warm);
  PhaseSpec ranks;
  ranks.name = "rank_vectors";
  ranks.offset_mib = 995;
  ranks.size_mib = {3, 6, 12, 24};
  ranks.pattern = Pattern::kSequential;
  ranks.write_fraction = 0.5;
  ranks.accesses_per_page = {200, 200, 200, 200};
  ranks.repeats = 3;
  f.phases.push_back(ranks);
  return f;
}

FunctionSpec lr_serving() {
  FunctionSpec f;
  f.name = "lr_serving";
  f.description = "Logistic regression inferencing";
  f.memory_mb = 1024;
  f.input_labels = {"51kB/10MB", "83kB/20MB", "128kB/41MB", "192kB/82MB"};
  f.cpu_ms = {12.0, 40.0, 110.0, 280.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(40, {0.35, 1.2, 3.2, 8}));
  PhaseSpec model;
  model.name = "model";
  model.offset_mib = 72;
  model.size_mib = {8, 16, 24, 36};
  model.pattern = Pattern::kRandom;
  model.write_fraction = 0.05;
  model.zipf_theta = 0.8;
  model.accesses_per_page = {15, 35, 60, 90};
  f.phases.push_back(model);
  PhaseSpec dataset;
  dataset.name = "dataset";
  dataset.offset_mib = 120;
  dataset.size_mib = {60, 150, 300, 560};
  dataset.pattern = Pattern::kSequential;
  dataset.write_fraction = 0.0;
  dataset.accesses_per_page = {25, 25, 25, 25};
  f.phases.push_back(dataset);
  PhaseSpec features;
  features.name = "feature_workspace";
  features.offset_mib = 700;
  features.size_mib = {10, 20, 35, 60};
  features.pattern = Pattern::kRandom;
  features.write_fraction = 0.4;
  features.zipf_theta = 0.3;
  features.accesses_per_page = {4, 6, 8, 10};
  f.phases.push_back(features);
  return f;
}

FunctionSpec lr_training() {
  FunctionSpec f;
  f.name = "lr_training";
  f.description = "Logistic regression training";
  f.memory_mb = 1024;
  f.input_labels = {"51kB/10MB", "83kB/20MB", "128kB/41MB", "192kB/82MB"};
  f.cpu_ms = {90.0, 260.0, 700.0, 1900.0};
  f.phases.push_back(kernel_phase());
  f.phases.push_back(runtime_phase(40, {0.3, 0.9, 2.3, 6}));
  PhaseSpec dataset;
  dataset.name = "dataset_epochs";
  dataset.offset_mib = 60;
  dataset.size_mib = {60, 150, 300, 560};
  dataset.pattern = Pattern::kSequential;
  dataset.write_fraction = 0.0;
  dataset.accesses_per_page = {160, 160, 160, 160};
  dataset.repeats = 8;  // SGD epochs
  f.phases.push_back(dataset);
  PhaseSpec weights;
  weights.name = "weights";
  weights.offset_mib = 700;
  weights.size_mib = {2, 2.5, 3, 4};
  weights.pattern = Pattern::kRandom;
  weights.write_fraction = 0.5;
  weights.zipf_theta = 0.5;
  weights.accesses_per_page = {150, 150, 150, 150};
  f.phases.push_back(weights);
  PhaseSpec grads;
  grads.name = "gradient_workspace";
  grads.offset_mib = 720;
  grads.size_mib = {20, 50, 100, 180};
  grads.pattern = Pattern::kSequential;
  grads.write_fraction = 0.6;
  grads.accesses_per_page = {60, 60, 60, 60};
  f.phases.push_back(grads);
  return f;
}

std::vector<FunctionSpec> all_functions() {
  return {float_operation(), pyaes(),       json_load_dump(),
          compress(),        linpack(),     matmul(),
          image_processing(), pagerank(),   lr_serving(),
          lr_training()};
}

}  // namespace workloads
}  // namespace toss
