// Serverless function models (Table I).
//
// Each function is described declaratively: guest memory size, four inputs,
// per-input compute time, and a list of memory *phases*. A phase is a guest
// memory region (interpreter/runtime, input buffers, working arrays, ...)
// with per-input size and access intensity, an access pattern, a write mix
// and an intra-region hotness skew. Invocations add deterministic, seeded
// jitter to sizes, offsets, intensities and compute time — reproducing the
// paper's observation that even same-input invocations differ because of
// non-deterministic guest memory allocation (Observation #3).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "trace/burst.hpp"
#include "util/rng.hpp"

namespace toss {

/// Input indices are 0-based internally; the paper's "Input I..IV" are 0..3.
inline constexpr int kNumInputs = 4;

struct PhaseSpec {
  std::string name;
  double offset_mib = 0;  ///< region base offset within guest memory
  std::array<double, kNumInputs> size_mib{};  ///< region size per input
  Pattern pattern = Pattern::kRandom;
  double write_fraction = 0.0;
  double zipf_theta = 0.0;  ///< hot-prefix skew within the region
  std::array<double, kNumInputs> accesses_per_page{};  ///< mean intensity
  int repeats = 1;  ///< split into this many bursts (loop iterations)
};

struct FunctionSpec {
  std::string name;
  std::string description;
  u64 memory_mb = 128;  ///< guest VM memory (multiple of 128 MB, Table I)
  std::array<std::string, kNumInputs> input_labels{};
  std::array<double, kNumInputs> cpu_ms{};  ///< pure compute time per input
  double alloc_jitter = 0.04;  ///< relative size/offset variability
  double time_jitter = 0.03;   ///< relative compute-time variability
  std::vector<PhaseSpec> phases;

  u64 guest_bytes() const { return memory_mb * kMiB; }
  u64 guest_pages() const { return pages_for_bytes(guest_bytes()); }
};

/// An instantiated invocation: the function's memory trace and compute time
/// for one (input, seed) pair.
struct Invocation {
  int input = 0;
  u64 seed = 0;
  BurstTrace trace;
  Nanos cpu_ns = 0;
};

class FunctionModel {
 public:
  explicit FunctionModel(FunctionSpec spec);

  const FunctionSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  u64 guest_pages() const { return spec_.guest_pages(); }
  u64 guest_bytes() const { return spec_.guest_bytes(); }

  /// Deterministically build the memory trace + compute time of one
  /// invocation. `input` in [0, kNumInputs); `invocation_seed`
  /// distinguishes repeated invocations of the same input.
  Invocation invoke(int input, u64 invocation_seed) const;

 private:
  FunctionSpec spec_;
};

}  // namespace toss
