// Phase-to-burst trace generation shared by all function models.
#pragma once

#include "workloads/function_model.hpp"

namespace toss {

/// Expand one phase of `spec` for `input` into bursts appended to `trace`.
/// `rng` supplies the allocation jitter.
void append_phase_bursts(const FunctionSpec& spec, const PhaseSpec& phase,
                         int input, Rng& rng, BurstTrace& trace);

}  // namespace toss
