#include "workloads/registry.hpp"

#include "workloads/functions.hpp"

namespace toss {

FunctionRegistry FunctionRegistry::table1() {
  FunctionRegistry reg;
  for (auto& spec : workloads::all_functions()) reg.add(std::move(spec));
  return reg;
}

void FunctionRegistry::add(FunctionSpec spec) {
  models_.emplace_back(std::move(spec));
}

const FunctionModel* FunctionRegistry::find(std::string_view name) const {
  for (const auto& m : models_)
    if (m.name() == name) return &m;
  return nullptr;
}

}  // namespace toss
