// The ten FunctionBench/SeBS-style functions of Table I, calibrated so the
// simulated memory behaviour (footprint vs input, hot-set skew, memory
// intensity) reproduces the paper's evaluation shapes (Figs 2, 5, 6;
// Table II). See DESIGN.md "Calibration targets".
#pragma once

#include <vector>

#include "workloads/function_model.hpp"

namespace toss {
namespace workloads {

FunctionSpec float_operation();
FunctionSpec pyaes();
FunctionSpec json_load_dump();
FunctionSpec compress();
FunctionSpec linpack();
FunctionSpec matmul();
FunctionSpec image_processing();
FunctionSpec pagerank();
FunctionSpec lr_serving();
FunctionSpec lr_training();

/// All ten, in Table I order.
std::vector<FunctionSpec> all_functions();

}  // namespace workloads
}  // namespace toss
