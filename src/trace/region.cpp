#include "trace/region.hpp"

#include <cassert>

namespace toss {

RegionList regions_from_counts(const PageAccessCounts& counts) {
  RegionList regions;
  const u64 n = counts.num_pages();
  u64 begin = 0;
  while (begin < n) {
    const u64 c = counts.at(begin);
    u64 end = begin + 1;
    while (end < n && counts.at(end) == c) ++end;
    regions.push_back(Region{begin, end - begin, c});
    begin = end;
  }
  return regions;
}

RegionList merge_similar_regions(const RegionList& regions, u64 threshold) {
  RegionList merged;
  for (const Region& r : regions) {
    if (!merged.empty()) {
      Region& last = merged.back();
      const bool adjacent = last.page_end() == r.page_begin;
      const u64 diff =
          last.accesses > r.accesses ? last.accesses - r.accesses
                                     : r.accesses - last.accesses;
      // Never merge a zero-access region with an accessed one: the zero set
      // is placed wholesale in the slow tier before bin packing and must
      // stay separable.
      const bool zero_mix = (last.accesses == 0) != (r.accesses == 0);
      if (adjacent && !zero_mix && diff < threshold) {
        const u64 pages = last.page_count + r.page_count;
        const u64 mass = last.total_accesses() + r.total_accesses();
        last.accesses = mass / pages;
        last.page_count = pages;
        continue;
      }
    }
    merged.push_back(r);
  }
  return merged;
}

bool regions_cover_space(const RegionList& regions, u64 num_pages) {
  u64 next = 0;
  for (const Region& r : regions) {
    if (r.page_begin != next || r.page_count == 0) return false;
    next = r.page_end();
  }
  return next == num_pages;
}

u64 regions_total_pages(const RegionList& regions) {
  u64 total = 0;
  for (const Region& r : regions) total += r.page_count;
  return total;
}

RegionList zero_access_regions(const RegionList& regions) {
  RegionList out;
  for (const Region& r : regions)
    if (r.accesses == 0) out.push_back(r);
  return out;
}

RegionList nonzero_access_regions(const RegionList& regions) {
  RegionList out;
  for (const Region& r : regions)
    if (r.accesses > 0) out.push_back(r);
  return out;
}

}  // namespace toss
