#include "trace/pattern.hpp"

#include <algorithm>
#include <cstdlib>

#include "trace/burst.hpp"
#include "util/contracts.hpp"

namespace toss {

u64 PageAccessCounts::touched_pages() const {
  u64 n = 0;
  for (u64 c : counts_)
    if (c > 0) ++n;
  return n;
}

u64 PageAccessCounts::total_accesses() const {
  u64 total = 0;
  for (u64 c : counts_) total += c;
  return total;
}

void PageAccessCounts::merge_max(const PageAccessCounts& other) {
  TOSS_REQUIRE(num_pages() == other.num_pages());
  for (u64 p = 0; p < num_pages(); ++p)
    counts_[p] = std::max(counts_[p], other.counts_[p]);
}

void PageAccessCounts::merge_sum(const PageAccessCounts& other) {
  TOSS_REQUIRE(num_pages() == other.num_pages());
  for (u64 p = 0; p < num_pages(); ++p) counts_[p] += other.counts_[p];
}

double PageAccessCounts::normalized_distance(
    const PageAccessCounts& other) const {
  TOSS_REQUIRE(num_pages() == other.num_pages());
  u64 l1 = 0;
  for (u64 p = 0; p < num_pages(); ++p) {
    const u64 a = counts_[p];
    const u64 b = other.counts_[p];
    l1 += a > b ? a - b : b - a;
  }
  const u64 denom = std::max<u64>(total_accesses(), 1);
  return static_cast<double>(l1) / static_cast<double>(denom);
}

PageAccessCounts PageAccessCounts::from_trace(const BurstTrace& trace,
                                              u64 num_pages) {
  PageAccessCounts counts(num_pages);
  trace.accumulate_counts(counts);
  return counts;
}

}  // namespace toss
