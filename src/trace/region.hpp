// Contiguous memory regions with an access count attribute.
//
// Regions are the unit TOSS reasons about: DAMON emits them, the access-count
// merger coalesces them, the bin packer distributes them, and the tiered
// snapshot serializes them as mappings.
#pragma once

#include <vector>

#include "mem/tier.hpp"
#include "trace/pattern.hpp"
#include "util/units.hpp"

namespace toss {

struct Region {
  u64 page_begin = 0;
  u64 page_count = 0;
  /// Access count attribute (per-page average for this region).
  u64 accesses = 0;

  u64 page_end() const { return page_begin + page_count; }
  u64 bytes() const { return bytes_for_pages(page_count); }
  /// Total access mass of the region (per-page average x pages).
  u64 total_accesses() const { return accesses * page_count; }

  bool operator==(const Region&) const = default;
};

using RegionList = std::vector<Region>;

/// Build maximal contiguous regions of pages with *identical* access counts,
/// covering the full address space (zero-count regions included).
RegionList regions_from_counts(const PageAccessCounts& counts);

/// Merge adjacent regions whose per-page access counts differ by less than
/// `threshold` (the paper's "Access count Merging" with threshold 100). The
/// merged region's count is the page-weighted mean of its parts.
RegionList merge_similar_regions(const RegionList& regions, u64 threshold);

/// Validate that `regions` exactly tiles [0, num_pages) without overlap.
bool regions_cover_space(const RegionList& regions, u64 num_pages);

/// Total pages across all regions.
u64 regions_total_pages(const RegionList& regions);

/// Regions with accesses == 0 / > 0, preserving order.
RegionList zero_access_regions(const RegionList& regions);
RegionList nonzero_access_regions(const RegionList& regions);

}  // namespace toss
