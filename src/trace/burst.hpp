// BurstTrace: an invocation's memory activity as an ordered list of access
// bursts, with lazily cached per-page expansions for timing and profiling.
#pragma once

#include <vector>

#include "mem/access_cost.hpp"

namespace toss {

class PageAccessCounts;

class BurstTrace {
 public:
  BurstTrace() = default;
  explicit BurstTrace(std::vector<AccessBurst> bursts);

  const std::vector<AccessBurst>& bursts() const { return bursts_; }
  bool empty() const { return bursts_.empty(); }
  size_t size() const { return bursts_.size(); }

  void push_back(AccessBurst b);

  /// Total LLC-missing accesses in the trace.
  u64 total_accesses() const;

  /// Number of distinct guest pages touched (union of burst ranges).
  u64 footprint_pages(u64 num_guest_pages) const;

  /// Highest page index touched, +1 (0 for an empty trace).
  u64 max_page_end() const;

  /// Per-page expansion of burst `i` (cached on first use).
  const std::vector<u64>& counts_of(size_t i) const;

  /// Accumulate this trace's per-page counts into `out` (out must cover the
  /// guest; see PageAccessCounts::accumulate).
  void accumulate_counts(PageAccessCounts& out) const;

  /// Memory time of the whole trace under a placement.
  Nanos time_under(const AccessCostModel& model,
                   const PagePlacement& placement) const;

  /// Memory time with all pages in one tier.
  Nanos time_uniform(const AccessCostModel& model, Tier t) const;

 private:
  std::vector<AccessBurst> bursts_;
  mutable std::vector<std::vector<u64>> expansions_;  // parallel to bursts_
};

}  // namespace toss
