#include "trace/working_set.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace toss {

u64 WorkingSet::size_pages() const {
  u64 n = 0;
  for (bool t : touched_)
    if (t) ++n;
  return n;
}

double WorkingSet::fraction() const {
  if (touched_.empty()) return 0.0;
  return static_cast<double>(size_pages()) /
         static_cast<double>(num_pages());
}

u64 WorkingSet::missing_from(const WorkingSet& other) const {
  TOSS_REQUIRE(num_pages() == other.num_pages());
  u64 n = 0;
  for (u64 p = 0; p < num_pages(); ++p)
    if (other.touched_[p] && !touched_[p]) ++n;
  return n;
}

std::vector<std::pair<u64, u64>> WorkingSet::touched_ranges() const {
  std::vector<std::pair<u64, u64>> ranges;
  u64 p = 0;
  const u64 n = num_pages();
  while (p < n) {
    if (!touched_[p]) {
      ++p;
      continue;
    }
    u64 end = p + 1;
    while (end < n && touched_[end]) ++end;
    ranges.emplace_back(p, end - p);
    p = end;
  }
  return ranges;
}

WorkingSet uffd_working_set(const BurstTrace& trace, u64 num_pages) {
  WorkingSet ws(num_pages);
  for (const auto& b : trace.bursts()) {
    TOSS_REQUIRE(b.page_end() <= num_pages);
    for (u64 p = b.page_begin; p < b.page_end(); ++p) ws.insert(p);
  }
  return ws;
}

WorkingSet mincore_working_set(const BurstTrace& trace, u64 num_pages,
                               u64 readahead_pages) {
  WorkingSet ws(num_pages);
  HostPageCache cache(readahead_pages);
  constexpr u64 kMemFileId = 1;
  for (const auto& b : trace.bursts()) {
    for (u64 p = b.page_begin; p < b.page_end(); ++p) {
      if (!cache.contains(kMemFileId, p)) cache.fill(kMemFileId, p);
    }
  }
  // mincore() reports every file page the cache now holds, clipped to the
  // guest memory size.
  for (u64 p = 0; p < num_pages; ++p)
    if (cache.contains(kMemFileId, p)) ws.insert(p);
  return ws;
}

}  // namespace toss
