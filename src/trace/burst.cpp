#include "trace/burst.hpp"

#include <algorithm>

#include "trace/pattern.hpp"
#include "util/contracts.hpp"

namespace toss {

BurstTrace::BurstTrace(std::vector<AccessBurst> bursts)
    : bursts_(std::move(bursts)), expansions_(bursts_.size()) {}

void BurstTrace::push_back(AccessBurst b) {
  bursts_.push_back(b);
  expansions_.emplace_back();
}

u64 BurstTrace::total_accesses() const {
  u64 total = 0;
  for (const auto& b : bursts_) total += b.accesses;
  return total;
}

u64 BurstTrace::max_page_end() const {
  u64 end = 0;
  for (const auto& b : bursts_) end = std::max(end, b.page_end());
  return end;
}

u64 BurstTrace::footprint_pages(u64 num_guest_pages) const {
  std::vector<bool> touched(num_guest_pages, false);
  u64 n = 0;
  for (const auto& b : bursts_) {
    TOSS_REQUIRE(b.page_end() <= num_guest_pages);
    for (u64 p = b.page_begin; p < b.page_end(); ++p) {
      if (!touched[p]) {
        touched[p] = true;
        ++n;
      }
    }
  }
  return n;
}

const std::vector<u64>& BurstTrace::counts_of(size_t i) const {
  TOSS_REQUIRE(i < bursts_.size());
  if (expansions_[i].empty() && bursts_[i].page_count > 0)
    expansions_[i] = expand_burst_counts(bursts_[i]);
  return expansions_[i];
}

void BurstTrace::accumulate_counts(PageAccessCounts& out) const {
  for (size_t i = 0; i < bursts_.size(); ++i) {
    const auto& b = bursts_[i];
    const auto& counts = counts_of(i);
    for (u64 j = 0; j < b.page_count; ++j)
      if (counts[j] > 0) out.add(b.page_begin + j, counts[j]);
  }
}

Nanos BurstTrace::time_under(const AccessCostModel& model,
                             const PagePlacement& placement) const {
  Nanos total = 0;
  for (size_t i = 0; i < bursts_.size(); ++i)
    total += model.burst_time(bursts_[i], counts_of(i), placement);
  return total;
}

Nanos BurstTrace::time_uniform(const AccessCostModel& model, Tier t) const {
  return model.trace_time_uniform(bursts_, t);
}

}  // namespace toss
