// Working-set characterization models: the userfaultfd() tracker REAP uses
// and the mincore() tracker FaaSnap uses.
//
// Both produce a *dual-accessed* view (touched / not touched), which is
// exactly the nuance gap the paper's Observation #4 criticizes. The mincore
// flavor additionally inflates the set with host-page-cache readahead, per
// Section III-C.
#pragma once

#include <vector>

#include "mem/page_cache.hpp"
#include "trace/burst.hpp"

namespace toss {

/// A working set is just the set of touched guest pages.
class WorkingSet {
 public:
  WorkingSet() = default;
  explicit WorkingSet(u64 num_pages) : touched_(num_pages, false) {}

  u64 num_pages() const { return static_cast<u64>(touched_.size()); }
  bool contains(u64 page) const { return touched_[page]; }
  void insert(u64 page) { touched_[page] = true; }

  u64 size_pages() const;
  u64 size_bytes() const { return bytes_for_pages(size_pages()); }
  double fraction() const;

  /// Pages in `other` but not in this set (the faults REAP takes when the
  /// execution input diverges from the snapshot input).
  u64 missing_from(const WorkingSet& other) const;

  /// Contiguous touched ranges, for per-region prefetch planning.
  std::vector<std::pair<u64, u64>> touched_ranges() const;  // (begin, count)

  bool operator==(const WorkingSet&) const = default;

 private:
  std::vector<bool> touched_;
};

/// userfaultfd() model: exact first-touch working set of a trace.
WorkingSet uffd_working_set(const BurstTrace& trace, u64 num_pages);

/// mincore() model: pages resident in the host page cache after the
/// invocation — i.e. the true working set inflated by readahead. The guest
/// memory file is `file_id` in the (freshly dropped) page cache, and pages
/// are faulted in trace order.
WorkingSet mincore_working_set(const BurstTrace& trace, u64 num_pages,
                               u64 readahead_pages = 32);

}  // namespace toss
