// Per-page access counts over a guest address space.
//
// This is the common currency between the profilers (DAMON, userfaultfd,
// mincore), the unified access pattern of TOSS, and the region/bin pipeline.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace toss {

class BurstTrace;

class PageAccessCounts {
 public:
  PageAccessCounts() = default;
  explicit PageAccessCounts(u64 num_pages) : counts_(num_pages, 0) {}

  u64 num_pages() const { return static_cast<u64>(counts_.size()); }

  u64 at(u64 page) const { return counts_[page]; }
  void set(u64 page, u64 count) { counts_[page] = count; }
  void add(u64 page, u64 count) { counts_[page] += count; }

  const std::vector<u64>& raw() const { return counts_; }

  /// Number of pages with a nonzero count.
  u64 touched_pages() const;

  /// Sum of all counts.
  u64 total_accesses() const;

  /// Merge by per-page max. This is how TOSS unifies access patterns across
  /// invocations: max keeps the pattern representative of the most intense
  /// behaviour seen while remaining idempotent (so convergence is
  /// well-defined), unlike a sum which grows forever.
  void merge_max(const PageAccessCounts& other);

  /// Merge by per-page sum (used for aggregate statistics).
  void merge_sum(const PageAccessCounts& other);

  /// L1 distance between two patterns, normalized by this pattern's total
  /// accesses (0 = identical). Used for convergence/drift detection.
  double normalized_distance(const PageAccessCounts& other) const;

  bool operator==(const PageAccessCounts&) const = default;

  /// Build counts from a trace (guest size = num_pages).
  static PageAccessCounts from_trace(const BurstTrace& trace, u64 num_pages);

 private:
  std::vector<u64> counts_;
};

}  // namespace toss
