// Library-level tests for the toss_lint internals (tools/lint/): the
// shared tokenizer's literal/comment handling — the part every rule used
// to re-implement badly — and the include-graph resolution, transitive
// closure, and cycle detection the multi-pass analyzer runs on. Links
// toss_lint_core directly; no fixture files or subprocesses.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace {

using toss_lint::Finding;
using toss_lint::IncludeEdge;
using toss_lint::lex;
using toss_lint::LexOutput;
using toss_lint::Project;
using toss_lint::SourceFile;
using toss_lint::Token;

bool has_ident(const LexOutput& out, const std::string& text) {
  for (const Token& t : out.tokens)
    if (t.kind == Token::Kind::kIdent && t.text == text) return true;
  return false;
}

// --- tokenizer -------------------------------------------------------------

TEST(LintLexer, StripsCommentsButKeepsLayout) {
  const LexOutput out = lex({
      "int a = 1;  // trailing rand()",
      "/* block assert(x) */ int b = 2;",
  });
  ASSERT_EQ(out.code.size(), 2u);
  // Positions of surviving code are untouched; comment bodies are blanks.
  EXPECT_EQ(out.code[0].substr(0, 10), "int a = 1;");
  EXPECT_EQ(out.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(out.code[1].find("assert"), std::string::npos);
  EXPECT_NE(out.code[1].find("int b = 2;"), std::string::npos);
  EXPECT_FALSE(has_ident(out, "rand"));
  EXPECT_TRUE(has_ident(out, "b"));
}

TEST(LintLexer, BlockCommentSpansLines) {
  const LexOutput out = lex({
      "start(); /* comment",
      "still comment \" unterminated quote",
      "done */ finish();",
  });
  EXPECT_TRUE(has_ident(out, "start"));
  EXPECT_TRUE(has_ident(out, "finish"));
  EXPECT_FALSE(has_ident(out, "still"));
  // The stray quote inside the comment must not open a string.
  EXPECT_EQ(out.code[1].find('"'), std::string::npos);
}

TEST(LintLexer, LineCommentContinuedByBackslash) {
  const LexOutput out = lex({
      "int a = 1;  // comment continued \\",
      "still comment rand()",
      "int b = 2;",
  });
  EXPECT_FALSE(has_ident(out, "rand"));
  EXPECT_TRUE(has_ident(out, "b"));
  EXPECT_EQ(out.code[1].find_first_not_of(' '), std::string::npos);
}

TEST(LintLexer, RawStringSpansLinesAndIgnoresCommentMarkers) {
  const LexOutput out = lex({
      "auto s = R\"(first // not a comment",
      "assert(true) \" lone quote",
      ")\" + tail;",
  });
  EXPECT_FALSE(has_ident(out, "assert"));
  EXPECT_TRUE(has_ident(out, "tail"));
  // Contents blanked, line 2 fully inside the literal.
  EXPECT_EQ(out.code[1].find_first_not_of(' '), std::string::npos);
  // One string token, at the literal's start.
  size_t strings = 0;
  for (const Token& t : out.tokens)
    if (t.kind == Token::Kind::kString) ++strings;
  EXPECT_EQ(strings, 1u);
}

TEST(LintLexer, DelimitedRawStringDoesNotCloseEarly) {
  // The undelimited terminator )" appears inside; only )ab" closes it.
  const LexOutput out = lex({
      "auto s = R\"ab(x )\" y)ab\"; int z = 0;",
  });
  EXPECT_TRUE(has_ident(out, "z"));
  EXPECT_FALSE(has_ident(out, "y"));
  EXPECT_NE(out.code[0].find("int z = 0;"), std::string::npos);
}

TEST(LintLexer, StringContinuedByBackslashNewline) {
  const LexOutput out = lex({
      "const char* s = \"abc \\",
      "def rand()\"; int after = 1;",
  });
  EXPECT_FALSE(has_ident(out, "rand"));
  EXPECT_TRUE(has_ident(out, "after"));
}

TEST(LintLexer, EncodingPrefixesAndEscapes) {
  const LexOutput out = lex({
      "auto a = u8\"text rand()\";",
      "auto b = L'\\'';  auto c = U\"more\";",
  });
  EXPECT_FALSE(has_ident(out, "rand"));
  EXPECT_FALSE(has_ident(out, "text"));
  EXPECT_TRUE(has_ident(out, "c"));
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  const LexOutput out = lex({
      "long n = 1'000'000; int tail = 2;",
  });
  bool found_number = false;
  for (const Token& t : out.tokens) {
    EXPECT_NE(t.kind, Token::Kind::kChar) << "separator misread as char";
    if (t.kind == Token::Kind::kNumber && t.text == "1'000'000")
      found_number = true;
  }
  EXPECT_TRUE(found_number);
  EXPECT_TRUE(has_ident(out, "tail"));
}

TEST(LintLexer, NoDigraphInterpretation) {
  // `<:` and `%>` are plain punctuator pairs to this lexer (the build does
  // not enable digraphs); nothing should be folded into brackets.
  const LexOutput out = lex({"a<:0:> = 1;"});
  bool open_bracket = false;
  for (const Token& t : out.tokens)
    if (t.kind == Token::Kind::kPunct && (t.text == "[" || t.text == "]"))
      open_bracket = true;
  EXPECT_FALSE(open_bracket);
  EXPECT_TRUE(has_ident(out, "a"));
}

TEST(LintLexer, TokenPositionsAreOneBasedLineZeroBasedCol) {
  const LexOutput out = lex({"", "  foo();"});
  ASSERT_FALSE(out.tokens.empty());
  EXPECT_EQ(out.tokens[0].text, "foo");
  EXPECT_EQ(out.tokens[0].line, 2u);
  EXPECT_EQ(out.tokens[0].col, 2u);
}

TEST(LintLexer, MultiCharPunctuatorsStayWhole) {
  const LexOutput out = lex({"a += b; c->d; e::f; g >>= 2;"});
  std::vector<std::string> puncts;
  for (const Token& t : out.tokens)
    if (t.kind == Token::Kind::kPunct) puncts.push_back(t.text);
  const auto has = [&](const char* p) {
    for (const std::string& s : puncts)
      if (s == p) return true;
    return false;
  };
  EXPECT_TRUE(has("+="));
  EXPECT_TRUE(has("->"));
  EXPECT_TRUE(has("::"));
  EXPECT_TRUE(has(">>="));
}

// --- include graph ---------------------------------------------------------

SourceFile make_file(std::string rel,
                     std::vector<std::pair<size_t, std::string>> includes) {
  SourceFile f;
  f.rel = std::move(rel);
  for (auto& [line, target] : includes)
    f.includes.push_back(IncludeEdge{line, std::move(target), ""});
  return f;
}

Project make_project(std::vector<SourceFile> files) {
  Project p;
  p.files = std::move(files);
  std::sort(p.files.begin(), p.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  for (size_t i = 0; i < p.files.size(); ++i) p.index[p.files[i].rel] = i;
  toss_lint::build_include_graph(p);
  return p;
}

const IncludeEdge& only_edge(const Project& p, const std::string& rel) {
  const SourceFile* f = p.find(rel);
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(f->includes.size(), 1u);
  return f->includes.front();
}

TEST(LintIncludeGraph, ResolvesAgainstSrcRoot) {
  const Project p = make_project({
      make_file("src/platform/host.cpp", {{1, "platform/host.hpp"}}),
      make_file("src/platform/host.hpp", {}),
  });
  EXPECT_EQ(only_edge(p, "src/platform/host.cpp").resolved,
            "src/platform/host.hpp");
}

TEST(LintIncludeGraph, ResolvesAgainstIncludingDirectoryFirst) {
  const Project p = make_project({
      make_file("bench/harness.cpp", {{1, "common.hpp"}}),
      make_file("bench/common.hpp", {}),
  });
  EXPECT_EQ(only_edge(p, "bench/harness.cpp").resolved, "bench/common.hpp");
}

TEST(LintIncludeGraph, UnresolvableTargetsStayEmpty) {
  const Project p = make_project({
      make_file("src/core/a.cpp", {{1, "platform/not_in_project.hpp"}}),
  });
  EXPECT_EQ(only_edge(p, "src/core/a.cpp").resolved, "");
}

TEST(LintIncludeGraph, ClosureIsTransitive) {
  const Project p = make_project({
      make_file("src/core/a.cpp", {{1, "core/b.hpp"}}),
      make_file("src/core/b.hpp", {{1, "util/c.hpp"}}),
      make_file("src/util/c.hpp", {}),
  });
  const auto closure = p.closure("src/core/a.cpp");
  EXPECT_EQ(closure.size(), 2u);
  EXPECT_TRUE(closure.count("src/core/b.hpp"));
  EXPECT_TRUE(closure.count("src/util/c.hpp"));
  EXPECT_TRUE(p.closure("src/util/c.hpp").empty());
}

TEST(LintIncludeGraph, CycleReportedOnceAtBackEdge) {
  const Project p = make_project({
      make_file("src/core/a.hpp", {{3, "core/b.hpp"}}),
      make_file("src/core/b.hpp", {{5, "core/a.hpp"}}),
  });
  std::vector<Finding> findings;
  toss_lint::find_include_cycles(p, findings);
  ASSERT_EQ(findings.size(), 1u);
  // Sorted DFS starts at a.hpp, so b.hpp's include of a.hpp is the back
  // edge that closes the cycle.
  EXPECT_EQ(findings[0].file, "src/core/b.hpp");
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("src/core/a.hpp -> src/core/b.hpp -> "
                                     "src/core/a.hpp"),
            std::string::npos)
      << findings[0].message;
}

TEST(LintIncludeGraph, DiamondIsNotACycle) {
  const Project p = make_project({
      make_file("src/core/top.cpp", {{1, "core/l.hpp"}, {2, "core/r.hpp"}}),
      make_file("src/core/l.hpp", {{1, "core/base.hpp"}}),
      make_file("src/core/r.hpp", {{1, "core/base.hpp"}}),
      make_file("src/core/base.hpp", {}),
  });
  std::vector<Finding> findings;
  toss_lint::find_include_cycles(p, findings);
  EXPECT_TRUE(findings.empty());
}

TEST(LintIncludeGraph, SelfIncludeIsACycle) {
  const Project p = make_project({
      make_file("src/core/selfie.hpp", {{2, "core/selfie.hpp"}}),
  });
  std::vector<Finding> findings;
  toss_lint::find_include_cycles(p, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/selfie.hpp");
}

}  // namespace
