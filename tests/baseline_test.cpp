// Tests for the baseline restore policies: vanilla lazy restore, REAP
// working-set prefetch, FaaSnap mincore-based loading.
#include <gtest/gtest.h>

#include "baseline/faasnap.hpp"
#include "baseline/reap.hpp"
#include "baseline/vanilla.hpp"
#include "platform/invoker.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store{cfg};
  Invoker invoker{cfg, store};
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& model = *reg.find("json_load_dump");

  u64 snapshot_for(const Invocation& inv) {
    return invoker.initial_execution(model, inv);
  }
};

TEST_F(BaselineTest, VanillaSingleMapping) {
  const Invocation inv = model.invoke(1, 7);
  const u64 snap_id = snapshot_for(inv);
  VanillaPolicy policy(store, snap_id);
  const RestorePlan plan = policy.plan_restore();
  EXPECT_EQ(plan.mapping_count(), 1u);
  EXPECT_TRUE(plan.eager.empty());
  EXPECT_EQ(plan.guest_pages, model.guest_pages());
  EXPECT_EQ(plan.mappings[0].page_count, model.guest_pages());
  EXPECT_FALSE(plan.mappings[0].dax);
}

TEST_F(BaselineTest, ReapEagerLoadsRecordedWorkingSet) {
  const Invocation first = model.invoke(2, 7);
  const u64 snap_id = snapshot_for(first);
  const WorkingSet ws =
      ReapPolicy::record_working_set(first.trace, model.guest_pages());
  ReapPolicy policy(store, snap_id, ws);
  const RestorePlan plan = policy.plan_restore();
  EXPECT_EQ(plan.eager_pages(), ws.size_pages());
  EXPECT_EQ(plan.mapping_count(), 1u);
}

TEST_F(BaselineTest, ReapSameInputFewFaults) {
  const Invocation first = model.invoke(2, 7);
  const u64 snap_id = snapshot_for(first);
  const WorkingSet ws =
      ReapPolicy::record_working_set(first.trace, model.guest_pages());
  ReapPolicy policy(store, snap_id, ws);

  // Same input, different seed: slight jitter, most of the WS overlaps.
  const Invocation again = model.invoke(2, 8);
  const InvocationResult r = invoker.invoke(policy, again);
  const u64 touched = again.trace.footprint_pages(model.guest_pages());
  EXPECT_LT(r.exec.major_faults, touched / 6);
}

TEST_F(BaselineTest, ReapInputMismatchManyFaults) {
  // Snapshot with the smallest input, execute the largest: the recorded WS
  // misses most of the large input's footprint (Observation #3 / Fig 3).
  const Invocation small = model.invoke(0, 7);
  const u64 snap_id = snapshot_for(small);
  const WorkingSet ws =
      ReapPolicy::record_working_set(small.trace, model.guest_pages());
  ReapPolicy policy(store, snap_id, ws);

  const Invocation big = model.invoke(3, 9);
  const InvocationResult mismatch = invoker.invoke(policy, big);

  const WorkingSet big_ws =
      ReapPolicy::record_working_set(big.trace, model.guest_pages());
  ReapPolicy matched(store, snap_id, big_ws);
  const InvocationResult match = invoker.invoke(matched, model.invoke(3, 9));

  EXPECT_GT(mismatch.exec.major_faults, match.exec.major_faults * 3);
  EXPECT_GT(mismatch.exec.exec_ns, match.exec.exec_ns);
}

TEST_F(BaselineTest, ReapSetupScalesWithWorkingSet) {
  const Invocation small = model.invoke(0, 7);
  const Invocation big = model.invoke(3, 7);
  const u64 snap_id = snapshot_for(big);
  ReapPolicy small_ws(store, snap_id, ReapPolicy::record_working_set(
                                          small.trace, model.guest_pages()));
  ReapPolicy big_ws(store, snap_id, ReapPolicy::record_working_set(
                                        big.trace, model.guest_pages()));
  store.drop_caches();
  MicroVm vm1(cfg, store);
  const auto s_small = vm1.restore(small_ws.plan_restore());
  store.drop_caches();
  MicroVm vm2(cfg, store);
  const auto s_big = vm2.restore(big_ws.plan_restore());
  EXPECT_GT(s_big.setup_ns, s_small.setup_ns);
  EXPECT_GT(s_big.eager_load_ns, s_small.eager_load_ns);
}

TEST_F(BaselineTest, FaasnapUsesInflatedWorkingSet) {
  const Invocation first = model.invoke(1, 7);
  const WorkingSet uffd =
      ReapPolicy::record_working_set(first.trace, model.guest_pages());
  const WorkingSet mincore =
      FaasnapPolicy::record_working_set(first.trace, model.guest_pages());
  EXPECT_GE(mincore.size_pages(), uffd.size_pages());
}

TEST_F(BaselineTest, FaasnapMappingsCoverGuest) {
  const Invocation first = model.invoke(1, 7);
  const u64 snap_id = snapshot_for(first);
  FaasnapPolicy policy(store, snap_id,
                       FaasnapPolicy::record_working_set(
                           first.trace, model.guest_pages()));
  const RestorePlan plan = policy.plan_restore();
  u64 covered = 0;
  for (const auto& m : plan.mappings) covered += m.page_count;
  EXPECT_EQ(covered, model.guest_pages());
  EXPECT_GT(plan.mapping_count(), 1u);
}

TEST_F(BaselineTest, RestoredMemoryMatchesSnapshot) {
  const Invocation inv = model.invoke(1, 7);
  const u64 snap_id = snapshot_for(inv);
  VanillaPolicy policy(store, snap_id);
  MicroVm vm(cfg, store);
  vm.restore(policy.plan_restore());
  EXPECT_EQ(vm.memory(), store.get_single_tier(snap_id)->materialize());
}

}  // namespace
}  // namespace toss
