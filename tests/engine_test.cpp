// Tests for the concurrent platform engine: determinism of the parallel
// drain vs the serial reference path, per-function serialization under
// contention (run this suite under TOSS_SANITIZE=thread to let TSan audit
// it), metrics consistency, and engine-level error handling.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "platform/engine.hpp"
#include "util/thread_pool.hpp"
#include "workloads/functions.hpp"

namespace toss {
namespace {

TossOptions fast_toss() {
  TossOptions opt;
  opt.stable_invocations = 4;
  opt.max_profiling_invocations = 30;
  return opt;
}

/// A fleet of `n` isolated lanes cycling the Table-I specs, each with its
/// own request stream. Policies alternate so baselines are covered too.
std::unique_ptr<PlatformEngine> make_fleet(size_t n, size_t requests,
                                           EngineOptions opts = {}) {
  auto engine = std::make_unique<PlatformEngine>(
      SystemConfig::paper_default(), PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  const PolicyKind kinds[] = {PolicyKind::kToss, PolicyKind::kToss,
                              PolicyKind::kReap, PolicyKind::kVanilla};
  for (size_t i = 0; i < n; ++i) {
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    auto stream = RequestGenerator::round_robin(
        requests, mix_seed(123, spec.name));
    EXPECT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(kinds[i % 4])
                              .toss(fast_toss())
                              .seed(10 + i),
                          std::move(stream))
                    .ok());
  }
  return engine;
}

void expect_identical(const OnlineStats& a, const OnlineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  // Bit-for-bit: exact double equality, not EXPECT_NEAR.
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
}

TEST(Engine, ParallelMatchesSerialBitForBit) {
  constexpr size_t kFunctions = 10;  // >= 8 per the acceptance criteria
  constexpr size_t kRequests = 40;

  auto serial = make_fleet(kFunctions, kRequests);
  const EngineReport s = serial->run(1).value();

  auto parallel = make_fleet(kFunctions, kRequests);
  const EngineReport p = parallel->run(8).value();

  ASSERT_EQ(s.functions.size(), kFunctions);
  ASSERT_EQ(p.functions.size(), kFunctions);
  EXPECT_EQ(p.serialization_violations, 0u);
  for (size_t i = 0; i < kFunctions; ++i) {
    const FunctionReport& a = s.functions[i];
    const FunctionReport& b = p.functions[i];
    ASSERT_EQ(a.name, b.name);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.final_phase, b.final_phase) << a.name;
    EXPECT_EQ(a.stats.invocations, kRequests) << a.name;
    EXPECT_EQ(a.stats.invocations, b.stats.invocations) << a.name;
    EXPECT_EQ(a.stats.total_charge, b.stats.total_charge) << a.name;
    expect_identical(a.stats.total_ns, b.stats.total_ns, a.name + "/total");
    expect_identical(a.stats.setup_ns, b.stats.setup_ns, a.name + "/setup");
    expect_identical(a.stats.exec_ns, b.stats.exec_ns, a.name + "/exec");
    // Outcome streams must match too, in request order.
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t r = 0; r < a.outcomes.size(); ++r) {
      EXPECT_EQ(a.outcomes[r].result.total_ns(),
                b.outcomes[r].result.total_ns());
      EXPECT_EQ(a.outcomes[r].charge, b.outcomes[r].charge);
      EXPECT_EQ(a.outcomes[r].toss_phase, b.outcomes[r].toss_phase);
    }
  }
}

/// Full bit-identity check between two function reports, including the
/// outcome streams and the overload/shed ledgers.
void expect_same_report(const FunctionReport& a, const FunctionReport& b) {
  ASSERT_EQ(a.name, b.name);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.final_phase, b.final_phase) << a.name;
  EXPECT_EQ(a.stats.invocations, b.stats.invocations) << a.name;
  EXPECT_EQ(a.stats.total_charge, b.stats.total_charge) << a.name;
  expect_identical(a.stats.total_ns, b.stats.total_ns, a.name + "/total");
  expect_identical(a.stats.setup_ns, b.stats.setup_ns, a.name + "/setup");
  expect_identical(a.stats.exec_ns, b.stats.exec_ns, a.name + "/exec");
  EXPECT_EQ(a.overload, b.overload) << a.name;
  EXPECT_EQ(a.shed_events, b.shed_events) << a.name;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << a.name;
  for (size_t r = 0; r < a.outcomes.size(); ++r) {
    EXPECT_EQ(a.outcomes[r].result.total_ns(),
              b.outcomes[r].result.total_ns());
    EXPECT_EQ(a.outcomes[r].charge, b.outcomes[r].charge);
    EXPECT_EQ(a.outcomes[r].toss_phase, b.outcomes[r].toss_phase);
  }
}

TEST(Engine, SuccessiveDrainsEqualOneConcatenatedRun) {
  // Reusable-engine contract: add() half of every stream, drain(), feed the
  // other half through drain(batch) — the cumulative report must be
  // bit-identical to one run() over the concatenated streams.
  constexpr size_t kFunctions = 6;
  constexpr size_t kRequests = 32;

  auto whole = make_fleet(kFunctions, kRequests);
  const EngineReport one = whole->run(4).value();

  // Same fleet recipe as make_fleet, but each stream split at the midpoint.
  EngineOptions opts;
  auto split = std::make_unique<PlatformEngine>(SystemConfig::paper_default(),
                                                PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  const PolicyKind kinds[] = {PolicyKind::kToss, PolicyKind::kToss,
                              PolicyKind::kReap, PolicyKind::kVanilla};
  RequestBatch second_half;
  for (size_t i = 0; i < kFunctions; ++i) {
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    auto stream =
        RequestGenerator::round_robin(kRequests, mix_seed(123, spec.name));
    const std::string name = spec.name;
    second_half.push_back(LaneBatch{
        name, {stream.begin() + kRequests / 2, stream.end()}});
    stream.resize(kRequests / 2);
    ASSERT_TRUE(split
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(kinds[i % 4])
                              .toss(fast_toss())
                              .seed(10 + i),
                          std::move(stream))
                    .ok());
  }

  const EngineReport first = split->drain({}, 4).value();
  for (const FunctionReport& f : first.functions)
    EXPECT_EQ(f.stats.invocations, kRequests / 2) << f.name;
  const EngineReport rest = split->drain(second_half, 4).value();

  ASSERT_EQ(rest.functions.size(), one.functions.size());
  for (size_t i = 0; i < one.functions.size(); ++i)
    expect_same_report(one.functions[i], rest.functions[i]);

  // The two models are mutually exclusive on one engine instance.
  EXPECT_EQ(split->run(1).code(), ErrorCode::kEngineBusy);
  EXPECT_EQ(whole->drain({}).code(), ErrorCode::kEngineBusy);
  // Unknown lane and time-travel batches are rejected, not absorbed.
  EXPECT_EQ(split->drain({LaneBatch{"ghost", {}}}).code(),
            ErrorCode::kUnknownFunction);
}

TEST(Engine, DrainSplitIsExactOnOverloadPathForLaneLocalKnobs) {
  // Same contract on the admission-controlled path, restricted to the
  // lane-local knobs (bounded lane queue + deadlines) for which the split
  // is exact. The stream is two bursts separated by an idle gap much
  // longer than a burst's drain time, so the batch boundary is naturally
  // time-separated; within each burst a us-scale arrival gap against
  // ms-scale service sheds heavily.
  constexpr size_t kFunctions = 3;
  constexpr size_t kBurst = 40;
  EngineOptions opts;
  opts.max_lane_queue = 4;
  opts.enforce_deadlines = true;
  opts.chunk = 3;

  const auto burst = [](const std::string& name, u64 salt, Nanos t0) {
    auto reqs = RequestGenerator::open_loop(
        RequestGenerator::round_robin(kBurst, mix_seed(salt, name)), us(1),
        ms(2), mix_seed(salt, name));
    for (Request& r : reqs) {
      r.arrival_ns += t0;
      r.deadline_ns += t0;
    }
    return reqs;
  };

  const auto build = [&](bool with_second_burst) {
    auto engine = std::make_unique<PlatformEngine>(
        SystemConfig::paper_default(), PricingPlan{}, opts);
    const std::vector<FunctionSpec> base = workloads::all_functions();
    for (size_t i = 0; i < kFunctions; ++i) {
      FunctionSpec spec = base[i % base.size()];
      spec.name += "#" + std::to_string(i);
      auto stream = burst(spec.name, 1, 0);
      if (with_second_burst) {
        const auto tail = burst(spec.name, 2, sec(30));
        stream.insert(stream.end(), tail.begin(), tail.end());
      }
      EXPECT_TRUE(engine
                      ->add(FunctionRegistration(std::move(spec))
                                .policy(PolicyKind::kToss)
                                .toss(fast_toss())
                                .seed(10 + i),
                            std::move(stream))
                      .ok());
    }
    return engine;
  };

  auto whole = build(true);
  const EngineReport one = whole->run(2).value();

  auto split = build(false);
  const EngineReport first = split->drain({}, 2).value();
  RequestBatch batch;
  for (const FunctionReport& f : first.functions)
    batch.push_back(LaneBatch{f.name, burst(f.name, 2, sec(30))});
  const EngineReport rest = split->drain(batch, 1).value();

  ASSERT_EQ(rest.functions.size(), one.functions.size());
  u64 shed = 0;
  for (size_t i = 0; i < one.functions.size(); ++i) {
    expect_same_report(one.functions[i], rest.functions[i]);
    shed += one.functions[i].overload.total_shed();
  }
  EXPECT_GT(shed, 0u);  // the bursts really did overload the queues
}

TEST(Engine, SerializationHoldsUnderContention) {
  // chunk=1 maximizes lane handoffs between workers: every request is a
  // separate ownership window, so any queue bug would show up as a
  // violation (and as a TSan report under TOSS_SANITIZE=thread).
  EngineOptions opts;
  opts.chunk = 1;
  opts.keep_outcomes = false;
  auto engine = make_fleet(12, 30, opts);
  const EngineReport report = engine->run(8).value();
  EXPECT_EQ(report.serialization_violations, 0u);
  for (const FunctionReport& f : report.functions)
    EXPECT_EQ(f.stats.invocations, 30u) << f.name;
}

TEST(Engine, MetricsCountersSumToInvocationCounts) {
  constexpr size_t kFunctions = 8;
  constexpr size_t kRequests = 25;
  auto engine = make_fleet(kFunctions, kRequests);
  const EngineReport report = engine->run(4).value();

  EXPECT_EQ(report.total_invocations(), kFunctions * kRequests);
  EXPECT_EQ(report.metrics.total_invocations(), kFunctions * kRequests);
  for (const FunctionReport& f : report.functions) {
    const FunctionMetrics* m = report.metrics.find(f.name);
    ASSERT_NE(m, nullptr) << f.name;
    EXPECT_EQ(m->invocations, f.stats.invocations) << f.name;
    // Per-phase counters partition the invocations.
    u64 phase_sum = 0;
    for (u64 c : m->phase_invocations) phase_sum += c;
    EXPECT_EQ(phase_sum, m->invocations) << f.name;
    // Histogram totals match the counters, and their means match the
    // OnlineStats means.
    EXPECT_EQ(m->total_ns.count, m->invocations) << f.name;
    EXPECT_EQ(m->setup_ns.count, m->invocations) << f.name;
    EXPECT_EQ(m->exec_ns.count, m->invocations) << f.name;
    EXPECT_DOUBLE_EQ(m->total_ns.mean(), f.stats.total_ns.mean()) << f.name;
    EXPECT_EQ(m->total_ns.max, f.stats.total_ns.max()) << f.name;
    EXPECT_EQ(m->total_ns.min, f.stats.total_ns.min()) << f.name;
    EXPECT_DOUBLE_EQ(m->total_charge, f.stats.total_charge) << f.name;
  }
  // The JSON snapshot serializes without blowing up and carries the totals.
  const std::string json = report.metrics.to_json();
  EXPECT_NE(json.find("\"total_invocations\":" +
                      std::to_string(kFunctions * kRequests)),
            std::string::npos);
}

TEST(Engine, RejectsDuplicatesBadStreamsAndReruns) {
  PlatformEngine engine;
  ASSERT_TRUE(engine
                  .add(FunctionRegistration(workloads::pyaes())
                           .policy(PolicyKind::kToss)
                           .toss(fast_toss()),
                       RequestGenerator::fixed(3, 1, 1))
                  .ok());

  const auto dup = engine.add(FunctionRegistration(workloads::pyaes()),
                              RequestGenerator::fixed(3, 1, 1));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), ErrorCode::kDuplicateFunction);

  const auto bad_stream =
      engine.add(FunctionRegistration(workloads::compress()),
                 {{kNumInputs, 1}});
  EXPECT_FALSE(bad_stream.ok());
  EXPECT_EQ(bad_stream.code(), ErrorCode::kInvalidRequest);

  EXPECT_TRUE(engine.run(2).ok());
  const auto again = engine.run(2);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), ErrorCode::kEngineBusy);
  const auto late_add = engine.add(
      FunctionRegistration(workloads::linpack()), {});
  EXPECT_FALSE(late_add.ok());
  EXPECT_EQ(late_add.code(), ErrorCode::kEngineBusy);
}

TEST(Engine, TossLanesReachTieredPhase) {
  auto engine = make_fleet(4, 40);
  const EngineReport report = engine->run(2).value();
  // Lanes 0 and 1 are kToss with a 4-stable window over 40 requests.
  EXPECT_EQ(report.functions[0].final_phase, TossPhase::kTiered);
  EXPECT_EQ(report.functions[1].final_phase, TossPhase::kTiered);
  EXPECT_NE(engine->toss_state(report.functions[0].name), nullptr);
  EXPECT_EQ(engine->toss_state("no-such-lane"), nullptr);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesAndPropagatesErrors) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(&pool, hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);

  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [&](size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(TossOptionsTest, ParallelAnalysisMatchesSerial) {
  // Same function, same stream; the only difference is the Step III bin
  // sweep running on a pool. The tiering decision must be bit-identical.
  auto run_with_threads = [](int analysis_threads) {
    ServerlessPlatform platform;
    TossOptions opt = fast_toss();
    opt.analysis_threads = analysis_threads;
    platform
        .register_function(FunctionRegistration(workloads::image_processing())
                               .policy(PolicyKind::kToss)
                               .toss(opt))
        .value();
    platform
        .run("image_processing", RequestGenerator::round_robin(40, 99))
        .value();
    const TossFunction* state = platform.toss_state("image_processing");
    EXPECT_EQ(state->phase(), TossPhase::kTiered);
    return *state->decision();
  };
  const TieringDecision serial = run_with_threads(1);
  const TieringDecision parallel = run_with_threads(4);
  EXPECT_EQ(serial.slow_fraction, parallel.slow_fraction);
  EXPECT_EQ(serial.expected_slowdown, parallel.expected_slowdown);
  EXPECT_EQ(serial.normalized_cost, parallel.normalized_cost);
  ASSERT_EQ(serial.profile.steps.size(), parallel.profile.steps.size());
  for (size_t i = 0; i < serial.profile.steps.size(); ++i) {
    EXPECT_EQ(serial.profile.steps[i].marginal_slowdown,
              parallel.profile.steps[i].marginal_slowdown);
    EXPECT_EQ(serial.profile.steps[i].cumulative_cost,
              parallel.profile.steps[i].cumulative_cost);
  }
}

}  // namespace
}  // namespace toss
