// Tests for the unified access pattern and its convergence rule, plus the
// region-merging helpers used by the analysis.
#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "core/unified_pattern.hpp"

namespace toss {
namespace {

DamonRecord record_of(u64 pages, std::vector<DamonRegion> regions) {
  DamonRecord rec(pages, std::move(regions));
  EXPECT_TRUE(rec.valid());
  return rec;
}

TEST(UnifiedPattern, IdenticalRecordsConverge) {
  UnifiedPattern up(100, 0.01);
  const DamonRecord rec = record_of(100, {{0, 50, 10}, {50, 50, 0}});
  EXPECT_TRUE(up.add_record(rec));  // first merge changes the empty pattern
  for (u64 i = 0; i < 10; ++i) EXPECT_FALSE(up.add_record(rec));
  EXPECT_EQ(up.stable_streak(), 10u);
  EXPECT_EQ(up.records_merged(), 11u);
}

TEST(UnifiedPattern, NewPatternResetsStreak) {
  UnifiedPattern up(100, 0.01);
  const DamonRecord a = record_of(100, {{0, 50, 10}, {50, 50, 0}});
  const DamonRecord b = record_of(100, {{0, 50, 10}, {50, 50, 40}});
  up.add_record(a);
  up.add_record(a);
  EXPECT_EQ(up.stable_streak(), 1u);
  EXPECT_TRUE(up.add_record(b));  // new hot region: change
  EXPECT_EQ(up.stable_streak(), 0u);
  EXPECT_FALSE(up.add_record(b));
  EXPECT_EQ(up.stable_streak(), 1u);
}

TEST(UnifiedPattern, MaxMergeKeepsPeak) {
  UnifiedPattern up(10, 0.01);
  up.add_record(record_of(10, {{0, 10, 100}}));
  up.add_record(record_of(10, {{0, 10, 40}}));  // weaker run
  EXPECT_EQ(up.counts().at(0), 100u);
}

TEST(UnifiedPattern, EpsilonAbsorbsNoise) {
  UnifiedPattern up(100, 0.10);
  up.add_record(record_of(100, {{0, 100, 1000}}));
  // 5% bump: below the 10% epsilon, counts update but streak continues.
  EXPECT_FALSE(up.add_record(record_of(100, {{0, 100, 1050}})));
  EXPECT_EQ(up.stable_streak(), 1u);
  // 50% bump: change.
  EXPECT_TRUE(up.add_record(record_of(100, {{0, 100, 1500}})));
}

TEST(UnifiedPattern, SmallerPatternsNeverChangeIt) {
  UnifiedPattern up(100, 0.01);
  up.add_record(record_of(100, {{0, 100, 500}}));
  for (u64 c : {400u, 100u, 0u})
    EXPECT_FALSE(up.add_record(record_of(100, {{0, 100, c}})));
  EXPECT_EQ(up.stable_streak(), 3u);
}

TEST(RegionizeAndMerge, CollapsesSimilarNeighbors) {
  PageAccessCounts counts(100);
  for (u64 p = 0; p < 50; ++p) counts.set(p, 1000 + p);  // drifts by 1
  for (u64 p = 50; p < 100; ++p) counts.set(p, 5000);
  const RegionList merged = regionize_and_merge(counts, 100);
  EXPECT_TRUE(regions_cover_space(merged, 100));
  EXPECT_LE(merged.size(), 3u);
}

TEST(RegionizeAndMerge, KeepsDistinctPhases) {
  PageAccessCounts counts(100);
  for (u64 p = 0; p < 50; ++p) counts.set(p, 100);
  for (u64 p = 50; p < 100; ++p) counts.set(p, 100000);
  const RegionList merged = regionize_and_merge(counts, 100);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].accesses, 100u);
}

TEST(MappingCount, CountsTierRuns) {
  PagePlacement p(10, tier_index(0));
  EXPECT_EQ(mapping_count(p), 1u);
  p.set_range(2, 3, tier_index(1));
  EXPECT_EQ(mapping_count(p), 3u);  // fast, slow, fast
  p.set_range(0, 2, tier_index(1));
  EXPECT_EQ(mapping_count(p), 2u);  // slow, fast
  EXPECT_EQ(mapping_count(PagePlacement{}), 0u);
}

}  // namespace
}  // namespace toss
