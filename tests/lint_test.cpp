// End-to-end tests for the tools/lint/ analyzer binary: each rule — the
// ported line rules and the layering / determinism / lock-rank passes —
// must fire on the bad fixture mini-project with a `file:line rule`
// diagnostic and a nonzero exit, the clean fixture project (sanctioned
// patterns + allow() trailers) must pass, --format=json must report the
// waiver usage CI budgets, and the real tree must currently be lint-clean
// (the same invariant the `toss_lint` ctest enforces, checked here so a
// fixture regression and a tree regression are distinguishable).
// tests/lint_internals_test.cpp covers the tokenizer and include graph at
// the library level.
//
// The binary path and source root arrive via compile definitions from
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

LintRun run_lint(const std::string& root, const std::string& flags = "") {
  const std::string cmd = std::string(TOSS_LINT_BIN) +
                          (flags.empty() ? "" : " " + flags) + " " + root +
                          " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    run.output.append(buf.data(), n);
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(TOSS_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

TEST(TossLint, BadProjectFailsWithFileLineRuleDiagnostics) {
  const LintRun run = run_lint(fixture("proj_bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;

  // One representative `file:line rule` line per rule.
  EXPECT_NE(run.output.find("src/platform/bad_throw.cpp:4 platform-throw"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/platform/bad_throw.cpp:10 platform-throw"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/platform/bad_throw.cpp:14 raw-assert"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_rand.cpp:6 nondeterminism"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_rand.cpp:7 nondeterminism"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/mem/bad_thread.cpp:5 thread-spawn"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/util/missing_pragma.hpp:1 pragma-once"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("bench/bad_include.cpp:2 deep-include"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_trailer.cpp:2 lint-usage"),
            std::string::npos)
      << run.output;
  // swallowed-error: catch-all, empty body on one line, and a body that
  // contains only a comment (stripped before matching, so still "empty").
  EXPECT_NE(run.output.find("src/core/bad_catch.cpp:7 swallowed-error"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_catch.cpp:14 swallowed-error"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_catch.cpp:20 swallowed-error"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/platform/bad_wait.cpp:10 unbounded-wait"),
            std::string::npos)
      << run.output;
  // host-internal: core reaching around the engine/cluster facades. The
  // clean project includes the same header from src/platform/, where it is
  // allowed (asserted via CleanProjectPasses). The same include now also
  // breaks the layer map (core sits below platform).
  EXPECT_NE(
      run.output.find("src/core/bad_host_include.cpp:3 host-internal"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_host_include.cpp:3 layering"),
            std::string::npos)
      << run.output;
  // tier-alias: Tier::kFast/kSlow are gone project-wide — the clean
  // project's src/mem/ use survives only behind an allow() trailer.
  EXPECT_NE(run.output.find("src/core/bad_tier_alias.cpp:4 tier-alias"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_tier_alias.cpp:7 tier-alias"),
            std::string::npos)
      << run.output;
  // layering: an upward include (mem -> platform) and a peer-layer include
  // (vmm -> damon), both checked on the include target as written.
  EXPECT_NE(run.output.find("src/mem/bad_layering.cpp:4 layering"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/vmm/bad_peer_include.cpp:3 layering"),
            std::string::npos)
      << run.output;
  // include-cycle: reported once, on the back edge that closes it.
  EXPECT_NE(run.output.find("src/core/cycle_b.hpp:3 include-cycle"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/cycle_a.hpp -> src/core/cycle_b.hpp "
                            "-> src/core/cycle_a.hpp"),
            std::string::npos)
      << run.output;
  // det-unordered-iter: both iteration shapes in a ledger-feeding TU.
  EXPECT_NE(run.output.find(
                "src/platform/bad_unordered_iter.cpp:17 det-unordered-iter"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "src/platform/bad_unordered_iter.cpp:20 det-unordered-iter"),
            std::string::npos)
      << run.output;
  // det-wallclock: clocks the legacy nondeterminism rule never covered.
  EXPECT_NE(run.output.find("src/core/bad_wallclock.cpp:7 det-wallclock"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_wallclock.cpp:8 det-wallclock"),
            std::string::npos)
      << run.output;
  // det-ptr-key: pointer-ordered map and set.
  EXPECT_NE(run.output.find("src/core/bad_ptr_key.cpp:8 det-ptr-key"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_ptr_key.cpp:9 det-ptr-key"),
            std::string::npos)
      << run.output;
  // det-fp-accum: shared += and atomic<double>::fetch_add inside the
  // parallel_for call, and a shared += inside a work-stealing executor's
  // run_epoch call.
  EXPECT_NE(run.output.find("src/core/bad_fp_accum.cpp:18 det-fp-accum"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_fp_accum.cpp:19 det-fp-accum"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/bad_fp_accum.cpp:31 det-fp-accum"),
            std::string::npos)
      << run.output;
  // det-unordered-iter is also rooted at the executor header: this file
  // reaches platform/concurrency.hpp but never metrics.hpp.
  EXPECT_NE(run.output.find(
                "src/platform/bad_executor_iter.cpp:16 det-unordered-iter"),
            std::string::npos)
      << run.output;
  // lock-rank: nested guards acquired against declared rank order.
  EXPECT_NE(run.output.find("src/platform/bad_lockrank.cpp:23 lock-rank"),
            std::string::npos)
      << run.output;
  // lock-rank, executor ranks: a deque lock under a platform lock, and two
  // same-rank deque locks held together (potential ABBA).
  EXPECT_NE(
      run.output.find("src/platform/bad_executor_lockrank.cpp:26 lock-rank"),
      std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("src/platform/bad_executor_lockrank.cpp:31 lock-rank"),
      std::string::npos)
      << run.output;
}

TEST(TossLint, CleanProjectPasses) {
  const LintRun run = run_lint(fixture("proj_clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("files clean"), std::string::npos) << run.output;
}

TEST(TossLint, SuppressionIsPerRule) {
  // The clean project's trailers waive specific rules; the bad project has
  // the same patterns unwaived. A trailer must not blanket-suppress: the
  // bad project's unknown-rule trailer still exits nonzero on its own.
  const LintRun bad = run_lint(fixture("proj_bad"));
  EXPECT_NE(bad.output.find("raw-assert"), std::string::npos);
  const LintRun clean = run_lint(fixture("proj_clean"));
  EXPECT_EQ(clean.output.find("raw-assert"), std::string::npos)
      << clean.output;
  EXPECT_EQ(clean.output.find("pragma-once"), std::string::npos)
      << clean.output;
  EXPECT_EQ(clean.output.find("swallowed-error"), std::string::npos)
      << clean.output;
  // good_wait.cpp: predicate waits and one allow(unbounded-wait) trailer.
  EXPECT_EQ(clean.output.find("unbounded-wait"), std::string::npos)
      << clean.output;
}

TEST(TossLint, RealTreeIsClean) {
  const LintRun run = run_lint(TOSS_SOURCE_DIR);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(TossLint, JsonFormatListsFindingsAndWaivers) {
  // Clean project: no findings, but the waived list carries every allow()
  // trailer that actually suppressed something (CI diffs the count against
  // tools/lint/waiver_budget.txt).
  const LintRun clean = run_lint(fixture("proj_clean"), "--format=json");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_NE(clean.output.find("\"findings\": []"), std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"waivers_used\""), std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"rule\": \"tier-alias\""), std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"rule\": \"lock-rank\""), std::string::npos)
      << clean.output;

  // Bad project: findings appear with file/line/rule/message and the exit
  // code still signals failure.
  const LintRun bad = run_lint(fixture("proj_bad"), "--format=json");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(
      bad.output.find("{\"file\": \"src/platform/bad_lockrank.cpp\", "
                      "\"line\": 23, \"rule\": \"lock-rank\""),
      std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("\"rule\": \"include-cycle\""), std::string::npos)
      << bad.output;
}

TEST(TossLint, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("/nonexistent-toss-root").exit_code, 2);
}

}  // namespace
