// Tests for SLO-driven QoS classes (DESIGN.md §14): the SLO -> Eq-1
// threshold derivation, the demotion curve Step III publishes for the
// arbiter's continuous demotion, the arbiter's QoS mode (bronze walks its
// curve to exhaustion before gold moves, per-class admission gates with
// gold-protecting hysteresis), EDF pop order inside a lane, bronze-before-
// gold shedding at the global queue bound, the per-class attainment
// ledgers in metrics JSON schema 6 — and the determinism contract: with
// QoS engaged every ledger stays bit-identical across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/merge.hpp"
#include "core/optimizer.hpp"
#include "platform/engine.hpp"
#include "workloads/functions.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

TossOptions fast_toss() {
  TossOptions opt;
  opt.stable_invocations = 4;
  opt.max_profiling_invocations = 30;
  return opt;
}

// ---------------------------------------------------------------------------
// Vocabulary: the qos.hpp names other layers key on.
// ---------------------------------------------------------------------------

TEST(QosVocab, ParseNamesRanksAndDefaults) {
  EXPECT_EQ(parse_qos_class("gold"), QosClass::kGold);
  EXPECT_EQ(parse_qos_class("bronze"), QosClass::kBronze);
  EXPECT_EQ(parse_qos_class("none"), QosClass::kNone);
  EXPECT_EQ(parse_qos_class(""), QosClass::kNone);
  EXPECT_FALSE(parse_qos_class("silver").has_value());

  // Degradation order: bronze absorbs first, unclassed next, gold last.
  EXPECT_LT(qos_shed_rank(QosClass::kBronze), qos_shed_rank(QosClass::kNone));
  EXPECT_LT(qos_shed_rank(QosClass::kNone), qos_shed_rank(QosClass::kGold));

  EXPECT_GT(qos_default_slo_slowdown(QosClass::kGold), 0.0);
  EXPECT_GT(qos_default_slo_slowdown(QosClass::kBronze),
            qos_default_slo_slowdown(QosClass::kGold));
  EXPECT_EQ(qos_default_slo_slowdown(QosClass::kNone), 0.0);

  // The JSON counter keys predate the enum and are frozen for artifact
  // consumers; a rename here is a schema break.
  EXPECT_STREQ(shed_cause_json_key(ShedCause::kQueueFull), "shed_queue_full");
  EXPECT_STREQ(shed_cause_json_key(ShedCause::kGlobalOverload),
               "shed_queue_global");
  EXPECT_STREQ(shed_cause_json_key(ShedCause::kAdmissionClosed),
               "shed_admission");
  EXPECT_STREQ(shed_cause_json_key(ShedCause::kDeadlineExpired),
               "shed_deadline");
  EXPECT_STREQ(shed_cause_json_key(ShedCause::kHostLost), "shed_host_lost");
}

TEST(QosVocab, AttainmentLedgerArithmetic) {
  QosAttainment a;
  EXPECT_EQ(a.attainment(), 1.0);  // nothing offered, nothing violated
  a.offered = 10;
  a.completed = 8;
  a.slo_met = 6;
  EXPECT_DOUBLE_EQ(a.attainment(), 0.6);
}

// ---------------------------------------------------------------------------
// SLO -> Eq-1 threshold derivation and the demotion curve (Step III).
// ---------------------------------------------------------------------------

TEST(QosSlo, DerivedThresholdIsTheCheapestAdmissibleStop) {
  // Synthetic sweep: slowdown 2% / 5% / 20%, cost falling 0.9 / 0.7 / 0.5.
  BinProfile profile;
  const double slowdowns[] = {0.02, 0.05, 0.20};
  const double costs[] = {0.9, 0.7, 0.5};
  for (size_t k = 0; k < 3; ++k) {
    BinStep s;
    s.cumulative_slowdown = slowdowns[k];
    s.cumulative_cost = costs[k];
    profile.steps.push_back(s);
  }
  // A 10% SLO admits the first two steps; the cheaper one (5%, 0.7) wins
  // and its slowdown becomes the effective threshold.
  EXPECT_DOUBLE_EQ(derive_slowdown_threshold(profile, 1.0, 0.10), 0.05);
  // A 1% SLO admits nothing: the placement stays all-fast.
  EXPECT_DOUBLE_EQ(derive_slowdown_threshold(profile, 1.0, 0.01), 0.0);
  // An unbounded SLO walks to the global minimum.
  EXPECT_DOUBLE_EQ(derive_slowdown_threshold(profile, 1.0, 1.0), 0.20);
  // A step that fits the SLO but raises cost above the base is skipped.
  EXPECT_DOUBLE_EQ(derive_slowdown_threshold(profile, 0.65, 0.10), 0.0);
}

class QosAnalysisTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();

  PageAccessCounts unified_for(const FunctionModel& m) {
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input) {
      for (u64 rep = 0; rep < 2; ++rep) {
        const Invocation inv = m.invoke(input, 800 + rep);
        unified.merge_max(
            PageAccessCounts::from_trace(inv.trace, m.guest_pages()));
      }
    }
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    return unified;
  }

  static u64 fast_bytes_of(const TieringDecision& d) {
    return bytes_for_pages(d.placement.pages_in(tier_index(0)));
  }
};

TEST_F(QosAnalysisTest, SloDrivesTheThresholdAndStaysWithinIt) {
  const FunctionModel& m = *reg.find("pagerank");
  const PageAccessCounts unified = unified_for(m);
  const Invocation rep = m.invoke(3, 802);

  TieringOptions slo;
  slo.slo_slowdown = 0.10;
  const TieringDecision d = analyze_pattern(cfg, unified, rep, slo);
  ASSERT_TRUE(d.derived_threshold.has_value());
  EXPECT_LE(*d.derived_threshold, 0.10);
  EXPECT_LE(d.expected_slowdown, 0.10 + 0.02);

  // The derivation is the closed loop over Eq 1: handing the derived
  // threshold back as an explicit bound reproduces the same configuration.
  TieringOptions explicit_opt;
  explicit_opt.slowdown_threshold = *d.derived_threshold;
  const TieringDecision e = analyze_pattern(cfg, unified, rep, explicit_opt);
  EXPECT_EQ(d.chosen_prefix, e.chosen_prefix);
  EXPECT_FALSE(e.derived_threshold.has_value());

  // An explicit threshold always wins over the SLO.
  TieringOptions both;
  both.slo_slowdown = 0.10;
  both.slowdown_threshold = 0.0;
  const TieringDecision tight = analyze_pattern(cfg, unified, rep, both);
  EXPECT_FALSE(tight.derived_threshold.has_value());
  EXPECT_NEAR(tight.expected_slowdown, 0.0, 1e-6);
}

TEST_F(QosAnalysisTest, DemotionCurveDescendsInFootprintAndPrefix) {
  const FunctionModel& m = *reg.find("pagerank");
  TieringOptions slo;
  slo.slo_slowdown = 0.10;
  const TieringDecision d =
      analyze_pattern(cfg, unified_for(m), m.invoke(3, 802), slo);
  // pagerank keeps a large fast residue under a 10% SLO, so descents
  // remain below the chosen configuration.
  ASSERT_FALSE(d.demotion_curve.empty());

  u64 prev_fast = fast_bytes_of(d);
  size_t prev_prefix = d.chosen_prefix;
  double prev_slowdown = d.expected_slowdown;
  for (const CostCurvePoint& p : d.demotion_curve) {
    EXPECT_GT(p.prefix, prev_prefix);        // strictly deeper in the sweep
    EXPECT_LT(p.fast_bytes, prev_fast);      // strictly smaller footprint
    EXPECT_GE(p.slowdown, prev_slowdown - 1e-9);  // cumulative, so monotone
    prev_prefix = p.prefix;
    prev_fast = p.fast_bytes;
    prev_slowdown = p.slowdown;
  }
  // The curve bottoms out at an empty fast tier: the deepest point has
  // every pass-1 descent applied.
  EXPECT_EQ(d.demotion_curve.back().fast_bytes, 0u);
}

TEST_F(QosAnalysisTest, MinDescentPrefixLandsOnTheCurvePoint) {
  const FunctionModel& m = *reg.find("pagerank");
  const PageAccessCounts unified = unified_for(m);
  const Invocation rep = m.invoke(3, 802);
  TieringOptions slo;
  slo.slo_slowdown = 0.10;
  const TieringDecision d = analyze_pattern(cfg, unified, rep, slo);
  ASSERT_FALSE(d.demotion_curve.empty());
  const CostCurvePoint& next = d.demotion_curve.front();

  // Re-entering Step III at the next curve point (what the QoS arbiter's
  // ApplyRung does) must land exactly on that point's footprint — past the
  // SLO preference, which fitting the budget outranks under duress.
  TieringOptions demoted = slo;
  demoted.min_descent_prefix = next.prefix;
  const TieringDecision e = analyze_pattern(cfg, unified, rep, demoted);
  EXPECT_GE(e.chosen_prefix, next.prefix);
  EXPECT_EQ(fast_bytes_of(e), next.fast_bytes);
  EXPECT_LT(fast_bytes_of(e), fast_bytes_of(d));
}

// ---------------------------------------------------------------------------
// FastTierArbiter QoS mode, with synthetic demands and a scripted re-tier.
// ---------------------------------------------------------------------------

FastTierArbiter::LaneDemand demand(size_t lane, const std::string& name,
                                   u64 fast_bytes, QosClass qos,
                                   std::vector<CurveStep> curve = {},
                                   bool demotable = true) {
  FastTierArbiter::LaneDemand d;
  d.lane = lane;
  d.name = &name;
  d.active = true;
  d.demotable = demotable;
  d.fast_bytes = fast_bytes;
  d.qos = qos;
  d.curve = std::move(curve);
  return d;
}

ArbiterOptions qos_arbiter_options() {
  ArbiterOptions opt;
  opt.enabled = true;
  opt.keepalive = false;
  return opt;
}

/// Scripted ApplyRung: answer each re-tier with the bound's curve
/// footprint, recording (lane, prefix) pairs.
struct CurveScript {
  std::vector<std::pair<size_t, size_t>> calls;  ///< (lane, min prefix)
  std::vector<std::pair<size_t, u64>> bytes;     ///< prefix -> fast bytes

  FastTierArbiter::ApplyRung hook() {
    return [this](size_t lane, int,
                  const RetierBound& bound) -> std::optional<u64> {
      const size_t prefix = bound.min_descent_prefix.value_or(0);
      calls.push_back({lane, prefix});
      for (const auto& [p, b] : bytes)
        if (p == prefix) return b;
      return std::nullopt;
    };
  }
};

TEST(QosArbiter, BronzeWalksItsCurveToExhaustionBeforeGoldMoves) {
  FastTierArbiter arb(qos_arbiter_options(), /*fast_budget_bytes=*/50);
  const std::string gold = "gold_fn", bronze = "bronze_fn";
  CurveScript script;
  script.bytes = {{2, 30}, {4, 10}, {1, 5}};

  // gold 40 + bronze 60 = 100 > 50. Bronze must absorb both demotions —
  // its whole curve — even though gold starts smaller.
  arb.tick(0,
           {demand(0, gold, 40, QosClass::kGold, {{1, 5}}),
            demand(1, bronze, 60, QosClass::kBronze, {{2, 30}, {4, 10}})},
           script.hook());
  ASSERT_EQ(script.calls.size(), 2u);
  EXPECT_EQ(script.calls[0], (std::pair<size_t, size_t>{1, 2}));
  EXPECT_EQ(script.calls[1], (std::pair<size_t, size_t>{1, 4}));
  EXPECT_EQ(arb.rung(1), 2);  // rung doubles as curve depth in QoS mode
  EXPECT_EQ(arb.rung(0), 0);
  EXPECT_EQ(arb.resident_fast_bytes(), 50u);
  EXPECT_FALSE(arb.admission_closed());

  // Bronze is at its curve floor (empty remaining curve): with more
  // pressure only gold can move, and it walks its own curve point.
  script.calls.clear();
  arb.tick(1,
           {demand(0, gold, 40, QosClass::kGold, {{1, 5}}),
            demand(1, bronze, 10, QosClass::kBronze, {}),
            demand(2, bronze, 20, QosClass::kBronze, {}, /*demotable=*/false)},
           script.hook());
  ASSERT_EQ(script.calls.size(), 1u);
  EXPECT_EQ(script.calls[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(arb.rung(0), 1);
  EXPECT_EQ(arb.resident_fast_bytes(), 35u);
}

TEST(QosArbiter, AdmissionClosesBronzeFirstAndReopensGoldFirst) {
  FastTierArbiter arb(qos_arbiter_options(), 50);
  const std::string pinned = "pinned";
  size_t retiers = 0;
  const auto apply = [&](size_t, int, const RetierBound&) {
    ++retiers;
    return std::optional<u64>{};
  };
  const auto pressure = [&](u64 epoch, u64 fast) {
    arb.tick(epoch, {demand(0, pinned, fast, QosClass::kGold, {},
                            /*demotable=*/false)},
             apply);
  };

  // Tick 0: ladder exhausted -> only the bronze gate closes; gold (and
  // unclassed) traffic rides through the first pressure spike.
  pressure(0, 200);
  EXPECT_TRUE(arb.admission_closed(QosClass::kBronze));
  EXPECT_FALSE(arb.admission_closed(QosClass::kGold));
  EXPECT_FALSE(arb.admission_closed(QosClass::kNone));
  EXPECT_TRUE(arb.admission_closed());

  // Tick 1: pressure persists -> gold closes too.
  pressure(1, 200);
  EXPECT_TRUE(arb.admission_closed(QosClass::kGold));
  EXPECT_EQ(arb.report().admission_closures, 2u);

  // Tick 2: pressure subsides -> gold reopens first (hysteresis protects
  // gold readmission from bronze pressure); bronze stays closed.
  pressure(2, 10);
  EXPECT_FALSE(arb.admission_closed(QosClass::kGold));
  EXPECT_TRUE(arb.admission_closed(QosClass::kBronze));
  EXPECT_TRUE(arb.admission_closed());

  // Tick 3: bronze reopens last; the legacy gate clears with it.
  pressure(3, 10);
  EXPECT_FALSE(arb.admission_closed(QosClass::kBronze));
  EXPECT_FALSE(arb.admission_closed());
  EXPECT_EQ(retiers, 0u);

  // The event ledger names the gates in degradation order.
  std::vector<std::pair<ArbiterAction, std::string>> gates;
  for (const ArbiterEvent& e : arb.report().events)
    gates.push_back({e.action, e.function});
  const std::vector<std::pair<ArbiterAction, std::string>> expected = {
      {ArbiterAction::kCloseAdmission, "bronze"},
      {ArbiterAction::kCloseAdmission, "gold"},
      {ArbiterAction::kOpenAdmission, "gold"},
      {ArbiterAction::kOpenAdmission, "bronze"},
  };
  EXPECT_EQ(gates, expected);
}

TEST(QosArbiter, WithdrawnBudgetSlamsBothGatesAtOnce) {
  FastTierArbiter arb(qos_arbiter_options(), 50);
  const std::string lane = "fn";
  const auto apply = [](size_t, int, const RetierBound&) {
    return std::optional<u64>{};
  };

  arb.set_budget_withdrawn(true);
  arb.tick(0, {demand(0, lane, 10, QosClass::kBronze, {},
                      /*demotable=*/false)},
           apply);
  // Quarantine is not a pressure spike: no one-per-tick grace for gold.
  EXPECT_TRUE(arb.admission_closed(QosClass::kBronze));
  EXPECT_TRUE(arb.admission_closed(QosClass::kGold));
  EXPECT_EQ(arb.report().admission_closures, 2u);

  arb.set_budget_withdrawn(false);
  arb.tick(1, {demand(0, lane, 10, QosClass::kBronze, {},
                      /*demotable=*/false)},
           apply);
  EXPECT_FALSE(arb.admission_closed(QosClass::kGold));
  EXPECT_TRUE(arb.admission_closed(QosClass::kBronze));
  arb.tick(2, {demand(0, lane, 10, QosClass::kBronze, {},
                      /*demotable=*/false)},
           apply);
  EXPECT_FALSE(arb.admission_closed());
}

TEST(QosArbiter, PromotionReplaysTheDescentLifo) {
  FastTierArbiter arb(qos_arbiter_options(), 50);
  const std::string bronze = "bronze_fn", pinned = "pinned";
  CurveScript script;
  script.bytes = {{2, 30}, {4, 10}};

  // bronze 60 + pinned 30 = 90 > 50: bronze walks two curve points down
  // (60 -> 30, still 60 > 50 -> 10; 10 + 30 = 40 fits).
  arb.tick(0,
           {demand(0, bronze, 60, QosClass::kBronze, {{2, 30}, {4, 10}}),
            demand(1, pinned, 30, QosClass::kNone, {}, /*demotable=*/false)},
           script.hook());
  ASSERT_EQ(script.calls.size(), 2u);
  EXPECT_EQ(arb.rung(0), 2);

  // The pinned lane leaves: recovery promotes exactly one step per tick,
  // replaying the recorded descent LIFO — back to the depth-1 point (the
  // prefix it was demoted through), not the classic fixed rung.
  script.calls.clear();
  arb.tick(1, {demand(0, bronze, 10, QosClass::kBronze, {})}, script.hook());
  ASSERT_EQ(script.calls.size(), 1u);
  EXPECT_EQ(script.calls[0], (std::pair<size_t, size_t>{0, 2}));
  EXPECT_EQ(arb.rung(0), 1);
  EXPECT_EQ(arb.resident_fast_bytes(), 30u);

  // Promoting to depth 0 would restore the unconstrained 60 bytes > 50:
  // hysteresis holds the lane at depth 1.
  script.calls.clear();
  arb.tick(2, {demand(0, bronze, 30, QosClass::kBronze, {})}, script.hook());
  EXPECT_TRUE(script.calls.empty());
  EXPECT_EQ(arb.rung(0), 1);

  const ArbiterReport r = arb.report();
  EXPECT_EQ(r.demotions, 2u);
  EXPECT_EQ(r.promotions, 1u);
}

// ---------------------------------------------------------------------------
// Engine integration: EDF pop order, bronze-before-gold shedding at the
// global bound, per-class ledgers, and cross-thread determinism.
// ---------------------------------------------------------------------------

std::unique_ptr<PlatformEngine> single_lane(const EngineOptions& opts,
                                            std::vector<Request> stream,
                                            QosClass qos) {
  auto engine = std::make_unique<PlatformEngine>(
      SystemConfig::paper_default(), PricingPlan{}, opts);
  FunctionSpec spec = workloads::all_functions()[0];
  FunctionRegistration reg(std::move(spec));
  reg.policy(PolicyKind::kToss).toss(fast_toss()).seed(42);
  if (qos != QosClass::kNone) reg.qos(qos);
  EXPECT_TRUE(engine->add(std::move(reg), std::move(stream)).ok());
  return engine;
}

TEST(QosEngine, EdfServesTheTightDeadlineQueuedBehindSlackWork) {
  // Three requests, all available at t=0: two with no deadline and one
  // whose deadline passes the instant any other request is served first.
  EngineOptions opts;
  opts.enforce_deadlines = true;
  opts.max_lane_queue = 8;
  const auto stream = [] {
    std::vector<Request> s = RequestGenerator::round_robin(3, 5);
    s[2].deadline_ns = 1;  // 1 ns after its t=0 arrival
    return s;
  };

  // A classed lane pops earliest-deadline-first: the tight request is
  // served first (late — an SLO miss, not a shed), then the zero-deadline
  // pair in queue order. Nothing is dropped.
  const EngineReport gold =
      single_lane(opts, stream(), QosClass::kGold)->run(1).value();
  const FunctionReport& g = gold.functions[0];
  EXPECT_EQ(g.overload.completed, 3u);
  EXPECT_EQ(g.overload.total_shed(), 0u);
  EXPECT_GE(g.overload.deadline_misses, 1u);

  // The same stream on an unclassed lane keeps strict FIFO: by the time
  // the tight request reaches the head its deadline is long gone.
  const EngineReport plain =
      single_lane(opts, stream(), QosClass::kNone)->run(1).value();
  const FunctionReport& p = plain.functions[0];
  EXPECT_EQ(p.overload.completed, 2u);
  EXPECT_EQ(p.overload.shed_by(ShedCause::kDeadlineExpired), 1u);
}

TEST(QosEngine, DeadlineEqualToArrivalIsServedNotShed) {
  // The serve-time twin of the trace loader's boundary rule: shedding
  // requires sim_now strictly past the deadline, so a request due the
  // moment it arrives is still served (and counted as an SLO miss).
  EngineOptions opts;
  opts.enforce_deadlines = true;
  std::vector<Request> s = RequestGenerator::round_robin(1, 5);
  s[0].arrival_ns = us(5);
  s[0].deadline_ns = us(5);
  const EngineReport report =
      single_lane(opts, std::move(s), QosClass::kGold)->run(1).value();
  const FunctionReport& f = report.functions[0];
  EXPECT_EQ(f.overload.completed, 1u);
  EXPECT_EQ(f.overload.total_shed(), 0u);
  EXPECT_EQ(f.overload.deadline_misses, 1u);
}

/// A saturated mixed fleet: gold/bronze alternating, tight lane queues and
/// a global bound at half the fleet's aggregate depth, deadlines enforced.
std::unique_ptr<PlatformEngine> qos_fleet(u64 seed) {
  EngineOptions opts;
  // chunk = 1 so the barrier sees each lane's queue at its full depth
  // (a larger chunk serves the queue down between arrivals and the
  // global bound would never bind against this bursty load).
  opts.chunk = 1;
  opts.max_lane_queue = 3;
  // Below what the deadline-free lanes alone hold at the barrier (4 lanes
  // x depth-1 queued after each serves one), so the trim always binds.
  opts.max_global_queue = 6;
  opts.enforce_deadlines = true;
  auto engine = std::make_unique<PlatformEngine>(SystemConfig::paper_default(),
                                                 PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  for (size_t i = 0; i < 6; ++i) {
    const QosClass cls = i % 2 == 0 ? QosClass::kGold : QosClass::kBronze;
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    // Deadlines on one lane of each class only: a fleet-wide deadline
    // would drain whole queues as free deadline sheds at pop (service
    // times dwarf any tight deadline) and the global bound would never
    // bind. The deadline-free majority keeps the barrier's lane queues
    // full, so the trim engages and its victim order is observable.
    const Nanos deadline = i < 2 ? ms(5) : 0;
    auto stream = RequestGenerator::open_loop(
        RequestGenerator::round_robin(40, mix_seed(seed, spec.name)), us(10),
        deadline, mix_seed(seed, spec.name));
    FunctionRegistration reg(std::move(spec));
    reg.policy(PolicyKind::kToss).toss(fast_toss()).seed(seed + i).qos(cls);
    EXPECT_TRUE(engine->add(std::move(reg), std::move(stream)).ok());
  }
  return engine;
}

TEST(QosEngine, GlobalBoundShedsBronzeBeforeGold) {
  const EngineReport report = qos_fleet(17)->run(2).value();
  u64 gold_shed = 0, bronze_shed = 0, gold_trim = 0, bronze_trim = 0;
  for (size_t i = 0; i < report.functions.size(); ++i) {
    const OverloadStats& o = report.functions[i].overload;
    EXPECT_EQ(o.offered, o.completed + o.total_shed())
        << report.functions[i].name;
    if (i % 2 == 0) {
      gold_shed += o.total_shed();
      gold_trim += o.shed_by(ShedCause::kGlobalOverload);
    } else {
      bronze_shed += o.total_shed();
      bronze_trim += o.shed_by(ShedCause::kGlobalOverload);
    }
  }
  // The load genuinely saturates the global bound, and the trim victims
  // are bronze lanes — gold is only trimmed when no bronze queue remains.
  EXPECT_GT(bronze_trim, 0u);
  EXPECT_GE(bronze_trim, gold_trim);
  EXPECT_GT(bronze_shed, gold_shed);

  // Per-class rollups (metrics JSON schema 6) mirror the lane ledgers.
  ASSERT_EQ(report.metrics.qos.size(), 2u);
  EXPECT_EQ(report.metrics.qos[0].cls, QosClass::kGold);
  EXPECT_EQ(report.metrics.qos[1].cls, QosClass::kBronze);
  u64 gold_offered = 0, bronze_offered = 0;
  for (size_t i = 0; i < report.functions.size(); ++i)
    (i % 2 == 0 ? gold_offered : bronze_offered) +=
        report.functions[i].overload.offered;
  EXPECT_EQ(report.metrics.qos[0].ledger.offered, gold_offered);
  EXPECT_EQ(report.metrics.qos[1].ledger.offered, bronze_offered);
  EXPECT_GE(report.metrics.qos[0].ledger.attainment(),
            report.metrics.qos[1].ledger.attainment());

  const std::string json = report.metrics.to_json();
  EXPECT_NE(json.find("\"schema\":6"), std::string::npos);
  EXPECT_NE(json.find("\"qos\":["), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"gold\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"bronze\""), std::string::npos);
}

TEST(QosEngine, LedgersBitIdenticalAcrossThreadCountsWithQosEngaged) {
  // The determinism contract survives every QoS feature at once: EDF pops,
  // class-ordered global trims, per-class rollups. Equal-deadline ties are
  // common here (fixed relative deadline), so this is also the EDF
  // tie-break determinism check.
  for (u64 seed : {31u, 32u, 33u}) {
    const EngineReport serial = qos_fleet(seed)->run(1).value();
    const EngineReport parallel = qos_fleet(seed)->run(4).value();

    ASSERT_EQ(serial.functions.size(), parallel.functions.size());
    for (size_t i = 0; i < serial.functions.size(); ++i) {
      const FunctionReport& a = serial.functions[i];
      const FunctionReport& b = parallel.functions[i];
      ASSERT_EQ(a.name, b.name);
      EXPECT_EQ(a.overload, b.overload) << a.name << " seed " << seed;
      EXPECT_EQ(a.shed_events, b.shed_events) << a.name << " seed " << seed;
      EXPECT_EQ(a.stats.invocations, b.stats.invocations) << a.name;
    }
    ASSERT_EQ(serial.metrics.qos.size(), parallel.metrics.qos.size());
    for (size_t i = 0; i < serial.metrics.qos.size(); ++i) {
      EXPECT_EQ(serial.metrics.qos[i].cls, parallel.metrics.qos[i].cls);
      EXPECT_EQ(serial.metrics.qos[i].ledger, parallel.metrics.qos[i].ledger)
          << "seed " << seed;
    }
    EXPECT_GT(serial.total_shed(), 0u) << "seed " << seed;
    EXPECT_EQ(serial.total_shed(), parallel.total_shed()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace toss
