// Cross-module integration tests: end-to-end flows that combine the
// platform, TOSS lifecycle, baselines, keep-alive and the concurrency
// model — the same compositions the bench harness measures, asserted as
// invariants.
#include <gtest/gtest.h>

#include "baseline/reap.hpp"
#include "core/tierer.hpp"
#include "platform/concurrency.hpp"
#include "platform/keepalive.hpp"
#include "platform/platform.hpp"
#include "platform/prewarm.hpp"
#include "workloads/functions.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

TossOptions fast_toss(u64 stable = 8) {
  TossOptions opt;
  opt.stable_invocations = stable;
  return opt;
}

TEST(Integration, MixedPolicyPlatform) {
  // All four policies coexist on one host and share the snapshot store.
  ServerlessPlatform platform;
  platform
      .register_function(FunctionRegistration(workloads::pyaes())
                             .policy(PolicyKind::kToss)
                             .toss(fast_toss()))
      .value();
  platform
      .register_function(
          FunctionRegistration(workloads::compress()).policy(PolicyKind::kReap))
      .value();
  platform
      .register_function(FunctionRegistration(workloads::linpack())
                             .policy(PolicyKind::kFaasnap))
      .value();
  platform
      .register_function(FunctionRegistration(workloads::json_load_dump())
                             .policy(PolicyKind::kVanilla))
      .value();
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    for (const char* name :
         {"pyaes", "compress", "linpack", "json_load_dump"}) {
      const auto out =
          platform.invoke(name, round % kNumInputs, rng.next()).value();
      EXPECT_GT(out.result.total_ns(), 0) << name;
      EXPECT_GT(out.charge, 0.0) << name;
    }
  }
  for (const char* name :
       {"pyaes", "compress", "linpack", "json_load_dump"})
    EXPECT_EQ(platform.stats(name).invocations, 30u) << name;
}

TEST(Integration, TossSetupBeatsReapForLargeFunctions) {
  // The Fig 7 headline as an invariant: once tiered, TOSS's setup is far
  // below REAP's eager prefetch for a large-footprint function.
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& m = *reg.find("lr_training");

  TossFunction toss(cfg, store, m, fast_toss());
  Rng rng(7);
  toss.handle(3, rng.next());
  for (int i = 0; i < 200 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(i % kNumInputs, rng.next());
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  store.drop_caches();
  const Nanos toss_setup = toss.handle(3, 999).result.setup.setup_ns;

  const Invocation first = m.invoke(3, 1234);
  Invoker invoker(cfg, store);
  const u64 snap_id = invoker.initial_execution(m, first);
  ReapPolicy reap(store, snap_id,
                  ReapPolicy::record_working_set(first.trace,
                                                 m.guest_pages()));
  store.drop_caches();
  MicroVm vm(cfg, store);
  const Nanos reap_setup = vm.restore(reap.plan_restore()).setup_ns;

  EXPECT_GT(reap_setup, toss_setup * 10);
}

TEST(Integration, TieredExecutionNeverTouchesDisk) {
  // TOSS's tiered snapshot is resident in both tiers: executions take
  // minor faults only, never a disk read — even with a cold page cache.
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& m = *reg.find("matmul");
  TossFunction toss(cfg, store, m, fast_toss());
  Rng rng(9);
  for (int i = 0; i < 200 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(i % kNumInputs, rng.next());
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  for (int input = 0; input < kNumInputs; ++input) {
    const auto rec = toss.handle(input, rng.next());
    EXPECT_EQ(rec.result.exec.major_faults, 0u);
    EXPECT_EQ(rec.result.exec.disk_pages, 0u);
  }
}

TEST(Integration, ConcurrencyOrderingMatchesFig9) {
  // At 20-way concurrency: REAP with a mismatched snapshot must be the
  // slowest, TOSS in between, and DRAM-warm the fastest.
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& m = *reg.find("image_processing");
  Invoker invoker(cfg, store);

  TossFunction toss(cfg, store, m, fast_toss());
  Rng rng(11);
  for (int i = 0; i < 200 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(i % kNumInputs, rng.next());
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);

  const Invocation inv = m.invoke(3, 777);
  // Solo executions per system.
  store.drop_caches();
  const ExecutionResult toss_solo = toss.handle(3, 777).result.exec;

  const Invocation first_small = m.invoke(0, 778);
  const u64 snap_id = invoker.initial_execution(m, first_small);
  ReapPolicy reap_worst(store, snap_id,
                        ReapPolicy::record_working_set(first_small.trace,
                                                       m.guest_pages()));
  const ExecutionResult reap_solo =
      invoker.invoke(reap_worst, inv).exec;

  MicroVm warm_vm(cfg, store);
  warm_vm.boot(m.guest_bytes(), VmState{});
  warm_vm.execute(inv.trace, inv.cpu_ns);
  const ExecutionResult dram_solo = warm_vm.execute(inv.trace, inv.cpu_ns);

  auto at20 = [&](const ExecutionResult& solo) {
    const std::vector<ExecutionResult> group(20, solo);
    return run_concurrent(cfg, group).exec_ns[0];
  };
  const Nanos dram20 = at20(dram_solo);
  const Nanos toss20 = at20(toss_solo);
  const Nanos reap20 = at20(reap_solo);
  EXPECT_GT(toss20, dram20);
  EXPECT_GT(reap20, toss20);
}

TEST(Integration, KeepAlivePlusTossLifecycle) {
  // Keep-alive on top of TOSS: a warm hit skips setup entirely; eviction
  // falls back to the (cheap) tiered cold start.
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& m = *reg.find("pyaes");
  TossFunction toss(cfg, store, m, fast_toss());
  Rng rng(13);
  for (int i = 0; i < 200 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(i % kNumInputs, rng.next());
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);

  KeepAliveConfig kcfg;
  kcfg.dram_capacity_bytes = 64 * kMiB;
  KeepAliveCache cache(kcfg);
  const TieringDecision& d = *toss.decision();
  const u64 fast_bytes = static_cast<u64>(
      (1.0 - d.slow_fraction) * static_cast<double>(m.guest_bytes()));
  // pyaes pins only a few MiB of DRAM when tiered: it fits a tiny pool.
  EXPECT_LT(fast_bytes, kcfg.dram_capacity_bytes);
  EXPECT_TRUE(cache.insert(m.name(), fast_bytes,
                           m.guest_bytes() - fast_bytes, ms(50)));
  EXPECT_TRUE(cache.lookup(m.name()));
}

TEST(Integration, PrewarmHidesTieredSetup) {
  // Periodic traffic + the arrival predictor: the TOSS restore cost is
  // fully hidden once the predictor locks on.
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  FunctionRegistry reg = FunctionRegistry::table1();
  const FunctionModel& m = *reg.find("json_load_dump");
  TossFunction toss(cfg, store, m, fast_toss());
  Rng rng(17);
  for (int i = 0; i < 200 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(i % kNumInputs, rng.next());
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  const Nanos setup = toss.handle(1, 42).result.setup.setup_ns;

  ArrivalPredictor predictor;
  Nanos now = 0;
  for (int i = 0; i < 8; ++i) predictor.observe(now += sec(30));
  ASSERT_TRUE(predictor.prewarm_at().has_value());
  const Nanos arrival = now + sec(30);
  EXPECT_DOUBLE_EQ(visible_setup_ns(arrival, predictor.prewarm_at(), setup),
                   0.0);
}

TEST(Integration, WholeSuiteConvergesUnderUniformTraffic) {
  // Every Table-I function reaches the tiered phase under uniform random
  // inputs within a bounded number of requests.
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();
  for (const FunctionModel& m : reg.models()) {
    SnapshotStore store(cfg);
    TossOptions opt = fast_toss(6);
    opt.max_profiling_invocations = 300;
    TossFunction toss(cfg, store, m, opt);
    Rng rng(mix_seed(21, m.name()));
    int used = 0;
    for (; used < 320 && toss.phase() != TossPhase::kTiered; ++used)
      toss.handle(static_cast<int>(rng.next_below(kNumInputs)), rng.next());
    EXPECT_EQ(toss.phase(), TossPhase::kTiered) << m.name();
    EXPECT_LE(used, 310) << m.name();
  }
}

}  // namespace
}  // namespace toss
