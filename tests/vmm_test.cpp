// Tests for the microVM substrate: snapshots, layout files, tiered
// snapshots, the snapshot store and the MicroVm fault/timing behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "vmm/layout.hpp"
#include "vmm/microvm.hpp"
#include "vmm/snapshot.hpp"
#include "vmm/snapshot_store.hpp"
#include "vmm/tiered_snapshot.hpp"
#include "vmm/vm_state.hpp"

namespace toss {
namespace {

GuestMemory patterned_memory(u64 pages) {
  GuestMemory mem(bytes_for_pages(pages));
  for (u64 p = 0; p < pages; ++p)
    mem.set_version(p, static_cast<u32>(p * 2654435761u));
  return mem;
}

// Little-endian encoders mirroring the on-disk format, used to hand-craft
// legacy (pre-ladder) byte streams for the backward-compatibility tests.
void put_u64_le(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_blob_le(std::vector<u8>& out, const std::vector<u8>& blob) {
  put_u64_le(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

/// The two-tier "TOSSLAY2" layout encoding: no ladder-depth word.
std::vector<u8> encode_layout_v2(const MemoryLayoutFile& layout) {
  std::vector<u8> out;
  put_u64_le(out, 0x544f53534c415932ULL);  // "TOSSLAY2"
  put_u64_le(out, layout.guest_pages());
  put_u64_le(out, layout.entry_count());
  for (const auto& e : layout.entries()) {
    put_u64_le(out, tier_rank(e.tier));
    put_u64_le(out, e.file_page);
    put_u64_le(out, e.guest_page);
    put_u64_le(out, e.page_count);
    put_u64_le(out, e.checksum);
  }
  return out;
}

TEST(VmState, SerializeRoundtrip) {
  VmState s;
  s.vcpu_count = 2;
  s.config_hash = 0xdeadbeef;
  const auto back = VmState::deserialize(s.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(VmState, DeserializeRejectsCorrupt) {
  auto bytes = VmState{}.serialize();
  bytes[3] ^= 0x55;
  EXPECT_FALSE(VmState::deserialize(bytes).has_value());
  EXPECT_FALSE(VmState::deserialize({}).has_value());
}

TEST(SingleTierSnapshot, MaterializeMatchesSource) {
  const GuestMemory mem = patterned_memory(64);
  SingleTierSnapshot snap(1, mem, VmState{});
  EXPECT_EQ(snap.num_pages(), 64u);
  EXPECT_EQ(snap.materialize(), mem);
}

TEST(LayoutFile, ValidityRules) {
  // Valid: fast at 0..3, slow at 4..7, fast continues at 8..9.
  MemoryLayoutFile ok(10, {{tier_index(0), 0, 0, 4},
                           {tier_index(1), 0, 4, 4},
                           {tier_index(0), 4, 8, 2}});
  EXPECT_TRUE(ok.valid());
  EXPECT_EQ(ok.entries_in(tier_index(0)), 2u);
  EXPECT_EQ(ok.pages_in(tier_index(1)), 4u);
  EXPECT_DOUBLE_EQ(ok.slow_fraction(), 0.4);

  // Guest gap.
  EXPECT_FALSE(MemoryLayoutFile(10, {{tier_index(0), 0, 0, 4},
                                     {tier_index(1), 0, 5, 5}})
                   .valid());
  // File offsets must be contiguous per tier.
  EXPECT_FALSE(MemoryLayoutFile(8, {{tier_index(0), 0, 0, 4},
                                    {tier_index(0), 6, 4, 4}})
                   .valid());
  // Incomplete coverage.
  EXPECT_FALSE(MemoryLayoutFile(10, {{tier_index(0), 0, 0, 4}}).valid());
  // A tier tag at or beyond the recorded ladder depth is invalid.
  EXPECT_FALSE(MemoryLayoutFile(4, {{tier_index(2), 0, 0, 4}}).valid());
  EXPECT_TRUE(MemoryLayoutFile(4, {{tier_index(2), 0, 0, 4}}, 3).valid());
}

TEST(LayoutFile, SerializeRoundtrip) {
  MemoryLayoutFile layout(6, {{tier_index(0), 0, 0, 2},
                              {tier_index(1), 0, 2, 3},
                              {tier_index(0), 2, 5, 1}});
  const auto back = MemoryLayoutFile::deserialize(layout.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, layout);
}

TEST(LayoutFile, ThreeTierSerializeRoundtrip) {
  // Format v3 carries the ladder depth, so deep tier tags survive the trip.
  MemoryLayoutFile layout(12,
                          {{tier_index(0), 0, 0, 4},
                           {tier_index(1), 0, 4, 4},
                           {tier_index(2), 0, 8, 4}},
                          3);
  ASSERT_TRUE(layout.valid());
  const auto back = MemoryLayoutFile::deserialize(layout.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tier_count(), 3u);
  EXPECT_EQ(*back, layout);
  EXPECT_EQ(back->pages_in(tier_index(2)), 4u);
  EXPECT_DOUBLE_EQ(back->slow_fraction(), 2.0 / 3.0);
}

TEST(LayoutFile, ReadsLegacyTwoTierFormat) {
  // A pre-ladder "TOSSLAY2" stream (no depth word) must deserialize to the
  // same layout the v3 writer round-trips, with an implied two-rung ladder.
  MemoryLayoutFile want(6, {{tier_index(0), 0, 0, 2},
                            {tier_index(1), 0, 2, 3},
                            {tier_index(0), 2, 5, 1}});
  const auto back = MemoryLayoutFile::deserialize(encode_layout_v2(want));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tier_count(), 2u);
  EXPECT_EQ(*back, want);
  // Old-vs-new round trip: re-serializing the upgraded layout (now v3)
  // reads back identically.
  const auto again = MemoryLayoutFile::deserialize(back->serialize());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, want);
}

TEST(LayoutFile, DeserializeRejectsInvalid) {
  auto bytes = MemoryLayoutFile(4, {{tier_index(0), 0, 0, 4}}).serialize();
  bytes[8] ^= 1;  // corrupt guest_pages -> coverage fails
  EXPECT_FALSE(MemoryLayoutFile::deserialize(bytes).has_value());
}

class TieredSnapshotTest : public ::testing::Test {
 protected:
  static constexpr u64 kPages = 128;
  GuestMemory mem = patterned_memory(kPages);
  SingleTierSnapshot snap{1, mem, VmState{}};
};

TEST_F(TieredSnapshotTest, BuildPreservesContent) {
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(10, 30, tier_index(1));
  placement.set_range(64, 64, tier_index(1));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {2, 3});
  EXPECT_TRUE(tiered.layout().valid());
  EXPECT_EQ(tiered.guest_pages(), kPages);
  EXPECT_EQ(tiered.fast_pages() + tiered.slow_pages(), kPages);
  EXPECT_EQ(tiered.slow_pages(), 94u);
  // The re-assembled image must be bit-identical to the original memory.
  EXPECT_EQ(tiered.materialize(), mem);
}

TEST_F(TieredSnapshotTest, AdjacentSameTierPagesCoalesce) {
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(0, 64, tier_index(1));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {2, 3});
  // Exactly two mappings: one slow run, one fast run ("Bins Merging").
  EXPECT_EQ(tiered.layout().entry_count(), 2u);
}

TEST_F(TieredSnapshotTest, LocateAgreesWithPlacement) {
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(40, 20, tier_index(1));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {2, 3});
  for (u64 p = 0; p < kPages; ++p) {
    const auto loc = tiered.locate(p);
    EXPECT_EQ(loc.tier, placement.tier_of(p)) << p;
    const u32 version =
        tiered.tier_page_version(tier_rank(loc.tier), loc.file_page);
    EXPECT_EQ(version, mem.version(p)) << p;
  }
}

TEST_F(TieredSnapshotTest, ThreeRungBuildMaterializesAndRoundtrips) {
  // One file per rung: pages spread over a three-rung ladder reassemble
  // bit-identically and survive the v2 ("TOSSTIR2") serialization.
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(32, 32, tier_index(1));
  placement.set_range(64, 64, tier_index(2));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {7, 8, 9});
  EXPECT_EQ(tiered.tier_count(), 3u);
  EXPECT_EQ(tiered.layout().tier_count(), 3u);
  EXPECT_EQ(tiered.tier_pages(0), 32u);
  EXPECT_EQ(tiered.tier_pages(1), 32u);
  EXPECT_EQ(tiered.tier_pages(2), 64u);
  EXPECT_EQ(tiered.slow_pages(), 96u);
  EXPECT_EQ(tier_rank(tiered.locate(70).tier), 2u);
  EXPECT_EQ(tiered.materialize(), mem);
  EXPECT_EQ(tiered.verify(), std::nullopt);
  const auto back = TieredSnapshot::deserialize(tiered.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tiered);
  EXPECT_EQ(back->materialize(), mem);
}

TEST_F(TieredSnapshotTest, SerializeRoundtrip) {
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(8, 40, tier_index(1));
  placement.set_range(100, 28, tier_index(1));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {7, 8});
  const auto back = TieredSnapshot::deserialize(tiered.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tiered);
  EXPECT_EQ(back->materialize(), mem);
}

TEST_F(TieredSnapshotTest, ReadsLegacyTwoTierArtifact) {
  // Hand-encode the pre-ladder "TOSSTIR1" stream — magic, two file ids (no
  // rank-count word), vm-state blob, v2 layout blob, fast then slow version
  // arrays — and check the reader reconstructs the same artifact the new
  // builder produces.
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(16, 48, tier_index(1));
  const TieredSnapshot want =
      TieredSnapshot::build(snap, placement, {4, 5});

  std::vector<u8> v1;
  put_u64_le(v1, 0x544f535354495231ULL);  // "TOSSTIR1"
  put_u64_le(v1, want.file_id(0));
  put_u64_le(v1, want.file_id(1));
  put_blob_le(v1, want.vm_state().serialize());
  put_blob_le(v1, encode_layout_v2(want.layout()));
  for (size_t r = 0; r < 2; ++r) {
    put_u64_le(v1, want.tier_pages(r));
    for (u64 p = 0; p < want.tier_pages(r); ++p) {
      const u32 v = want.tier_page_version(r, p);
      for (int b = 0; b < 4; ++b) v1.push_back(static_cast<u8>(v >> (8 * b)));
    }
  }

  const auto back = TieredSnapshot::deserialize(v1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, want);
  EXPECT_EQ(back->materialize(), mem);
  EXPECT_EQ(back->verify(), std::nullopt);
}

TEST_F(TieredSnapshotTest, DeserializeRejectsCorruption) {
  PagePlacement placement(kPages, tier_index(0));
  placement.set_range(0, 64, tier_index(1));
  const TieredSnapshot tiered =
      TieredSnapshot::build(snap, placement, {7, 8});
  auto bytes = tiered.serialize();
  EXPECT_FALSE(TieredSnapshot::deserialize({}).has_value());
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(TieredSnapshot::deserialize(bad_magic).has_value());
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(TieredSnapshot::deserialize(truncated).has_value());
}

TEST(SnapshotStore, IdsAndLookup) {
  const SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  const GuestMemory mem = patterned_memory(32);
  const u64 id = store.put_single_tier(mem, VmState{});
  ASSERT_NE(store.get_single_tier(id), nullptr);
  EXPECT_EQ(store.get_single_tier(id)->materialize(), mem);
  EXPECT_EQ(store.get_single_tier(id + 999), nullptr);
  EXPECT_NE(store.allocate_file_id(), id);
}

TEST(SnapshotStore, TieredLookupByEitherId) {
  const SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  const GuestMemory mem = patterned_memory(32);
  const u64 sid = store.put_single_tier(mem, VmState{});
  PagePlacement placement(32, tier_index(0));
  placement.set_range(16, 16, tier_index(1));
  const u64 fast_id = store.allocate_file_id();
  const u64 slow_id = store.allocate_file_id();
  store.put_tiered(TieredSnapshot::build(*store.get_single_tier(sid),
                                         placement, {fast_id, slow_id}));
  EXPECT_NE(store.get_tiered(fast_id), nullptr);
  EXPECT_EQ(store.get_tiered(fast_id), store.get_tiered(slow_id));
}

class MicroVmTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store{cfg};

  BurstTrace simple_trace(u64 begin, u64 pages, Pattern pattern,
                          double wf = 0.0) {
    BurstTrace t;
    t.push_back(AccessBurst{begin, pages, pages * 10, pattern, wf, 0.0});
    return t;
  }
};

TEST_F(MicroVmTest, BootThenExecuteAnonymousMinorFaults) {
  MicroVm vm(cfg, store);
  const auto setup = vm.boot(kMiB, VmState{});
  EXPECT_EQ(setup.mappings, 1u);
  EXPECT_GT(setup.setup_ns, 0);
  const auto r = vm.execute(simple_trace(0, 64, Pattern::kSequential), ms(1));
  EXPECT_EQ(r.minor_faults, 64u);   // anonymous zero-fill
  EXPECT_EQ(r.major_faults, 0u);
  EXPECT_EQ(r.touched_pages, 64u);
  EXPECT_GT(r.exec_ns, ms(1));
}

TEST_F(MicroVmTest, SecondTouchNoFault) {
  MicroVm vm(cfg, store);
  vm.boot(kMiB, VmState{});
  vm.execute(simple_trace(0, 64, Pattern::kSequential), ms(1));
  const auto r = vm.execute(simple_trace(0, 64, Pattern::kSequential), ms(1));
  EXPECT_EQ(r.minor_faults, 0u);
  EXPECT_EQ(r.touched_pages, 0u);
}

TEST_F(MicroVmTest, RestoreLazyMajorFaultsFromDisk) {
  // Snapshot 256 pages, restore lazily with a dropped cache: random-pattern
  // touches must major-fault, one disk read each.
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(256), VmState{});
  const u64 snap_id = vm.take_snapshot();

  RestorePlan plan;
  plan.vm_state = VmState{};
  plan.guest_pages = 256;
  plan.mappings.push_back(
      RestoreMapping{0, 256, tier_index(0), snap_id, 0, false});
  store.drop_caches();
  MicroVm vm2(cfg, store);
  vm2.restore(plan);
  const auto r = vm2.execute(simple_trace(0, 64, Pattern::kRandom), ms(1));
  EXPECT_EQ(r.major_faults, 64u);
  EXPECT_EQ(r.disk_pages, 64u);
  EXPECT_GT(r.disk_ns, 0);
}

TEST_F(MicroVmTest, SequentialFaultsBenefitFromReadahead) {
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(256), VmState{});
  const u64 snap_id = vm.take_snapshot();
  RestorePlan plan;
  plan.guest_pages = 256;
  plan.mappings.push_back(
      RestoreMapping{0, 256, tier_index(0), snap_id, 0, false});

  store.drop_caches();
  MicroVm vm2(cfg, store);
  vm2.restore(plan);
  const auto r = vm2.execute(simple_trace(0, 64, Pattern::kSequential), ms(1));
  EXPECT_LT(r.major_faults, 64u);  // readahead converts most to minor
  EXPECT_GT(r.minor_faults, 0u);
}

TEST_F(MicroVmTest, EagerLoadedPagesTakeNoFault) {
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(128), VmState{});
  const u64 snap_id = vm.take_snapshot();
  RestorePlan plan;
  plan.guest_pages = 128;
  plan.mappings.push_back(
      RestoreMapping{0, 128, tier_index(0), snap_id, 0, false});
  plan.eager.push_back(EagerLoad{0, 64, snap_id, 0});
  store.drop_caches();
  MicroVm vm2(cfg, store);
  const auto setup = vm2.restore(plan);
  EXPECT_EQ(setup.eager_pages, 64u);
  EXPECT_GT(setup.eager_load_ns, 0);
  const auto r = vm2.execute(simple_trace(0, 64, Pattern::kRandom), ms(1));
  EXPECT_EQ(r.minor_faults, 0u);
  EXPECT_EQ(r.major_faults, 0u);
}

TEST_F(MicroVmTest, DaxMappingsMinorFaultOnly) {
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(128), VmState{});
  const u64 snap_id = vm.take_snapshot();
  RestorePlan plan;
  plan.guest_pages = 128;
  plan.mappings.push_back(
      RestoreMapping{0, 128, tier_index(1), snap_id, 0, true});
  store.drop_caches();
  MicroVm vm2(cfg, store);
  vm2.restore(plan);
  const auto r = vm2.execute(simple_trace(0, 64, Pattern::kRandom), ms(1));
  EXPECT_EQ(r.major_faults, 0u);
  EXPECT_EQ(r.minor_faults, 64u);
  EXPECT_GT(r.slow_accesses, 0u);
}

TEST_F(MicroVmTest, SetupTimeScalesWithMappings) {
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(128), VmState{});
  const u64 snap_id = vm.take_snapshot();
  auto plan_with = [&](u64 mappings) {
    RestorePlan plan;
    plan.guest_pages = 128;
    const u64 per = 128 / mappings;
    for (u64 i = 0; i < mappings; ++i)
      plan.mappings.push_back(RestoreMapping{i * per, per, tier_index(0),
                                             snap_id, i * per, false});
    return plan;
  };
  MicroVm a(cfg, store), b(cfg, store);
  const auto s1 = a.restore(plan_with(1));
  const auto s32 = b.restore(plan_with(32));
  EXPECT_NEAR(s32.setup_ns - s1.setup_ns, 31 * cfg.vmm.mmap_region_ns, 1.0);
}

TEST_F(MicroVmTest, CowFaultOnFirstWrite) {
  MicroVm vm(cfg, store);
  vm.boot(kMiB, VmState{});
  const auto r1 = vm.execute(simple_trace(0, 16, Pattern::kRandom, 0.5), ms(1));
  EXPECT_EQ(r1.cow_faults, 16u);
  const auto r2 = vm.execute(simple_trace(0, 16, Pattern::kRandom, 0.5), ms(1));
  EXPECT_EQ(r2.cow_faults, 0u);  // already copied
}

TEST_F(MicroVmTest, ApplyWritesBumpsVersionsAndSnapshotSees) {
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(32), VmState{});
  const BurstTrace t = simple_trace(4, 8, Pattern::kSequential, 0.7);
  vm.execute(t, ms(1));
  vm.apply_writes(t);
  EXPECT_EQ(vm.memory().version(4), 1u);
  EXPECT_EQ(vm.memory().version(0), 0u);
  const u64 id = vm.take_snapshot();
  EXPECT_EQ(store.get_single_tier(id)->page_version(4), 1u);
}

TEST_F(MicroVmTest, RestoreMaterializesTieredContent) {
  // Boot, write, snapshot, tier it, restore -> memory must match.
  MicroVm vm(cfg, store);
  vm.boot(bytes_for_pages(64), VmState{});
  const BurstTrace t = simple_trace(0, 64, Pattern::kSequential, 1.0);
  vm.execute(t, ms(1));
  vm.apply_writes(t);
  const GuestMemory want = vm.memory();
  const u64 snap_id = vm.take_snapshot();

  PagePlacement placement(64, tier_index(0));
  placement.set_range(32, 32, tier_index(1));
  const u64 fast_id = store.allocate_file_id();
  const u64 slow_id = store.allocate_file_id();
  store.put_tiered(TieredSnapshot::build(*store.get_single_tier(snap_id),
                                         placement, {fast_id, slow_id}));
  const TieredSnapshot* tiered = store.get_tiered(fast_id);

  RestorePlan plan;
  plan.guest_pages = 64;
  for (const auto& e : tiered->layout().entries()) {
    plan.mappings.push_back(RestoreMapping{
        e.guest_page, e.page_count, e.tier,
        tiered->file_id(tier_rank(e.tier)), e.file_page,
        tier_rank(e.tier) != 0});
  }
  MicroVm vm2(cfg, store);
  vm2.restore(plan);
  EXPECT_EQ(vm2.memory(), want);
}

// ---------------------------------------------------------------------------
// Failure domains: typed errors, verification, quarantine, atomic puts.
// Everything except the injected-fault test is valid in every build; the
// corruption hooks (corrupt_tiered_page / truncate_tiered) work without
// TOSS_FAULTS precisely so these paths stay covered in the default config.
// ---------------------------------------------------------------------------

/// Runs `f`, which must throw toss::Error, and returns the carried code.
template <typename F>
ErrorCode code_of(F&& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected toss::Error, nothing thrown";
  return ErrorCode::kUnknownFunction;
}

class SnapshotFailureTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store{cfg};
  u64 single_id = 0, fast_id = 0, slow_id = 0;

  void SetUp() override {
    single_id = store.put_single_tier(patterned_memory(32), VmState{});
    PagePlacement placement(32, tier_index(0));
    placement.set_range(16, 16, tier_index(1));
    fast_id = store.allocate_file_id();
    slow_id = store.allocate_file_id();
    store.put_tiered(TieredSnapshot::build(*store.get_single_tier(single_id),
                                           placement, {fast_id, slow_id}));
  }
};

TEST_F(SnapshotFailureTest, FetchMissingIdsThrowTypedErrors) {
  EXPECT_EQ(code_of([&] { store.fetch_single_tier(999); }),
            ErrorCode::kSnapshotMissing);
  EXPECT_EQ(code_of([&] { store.fetch_tiered(999); }),
            ErrorCode::kSnapshotMissing);
  // The happy paths back the same ids.
  EXPECT_EQ(store.fetch_single_tier(single_id).materialize(),
            patterned_memory(32));
  EXPECT_EQ(&store.fetch_tiered(slow_id), store.get_tiered(fast_id));
}

TEST_F(SnapshotFailureTest, VerifyTieredDetectsBitrot) {
  EXPECT_TRUE(store.verify_tiered(fast_id).ok());
  ASSERT_TRUE(store.corrupt_tiered_page(fast_id, 3));
  const auto broken = store.verify_tiered(fast_id);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.code(), ErrorCode::kSnapshotCorrupted);
  // Resolution through the slow-id alias sees the same damage.
  EXPECT_FALSE(store.verify_tiered(slow_id).ok());
  EXPECT_FALSE(store.corrupt_tiered_page(999, 0));
}

TEST_F(SnapshotFailureTest, VerifyTieredDetectsTruncation) {
  ASSERT_TRUE(store.truncate_tiered(fast_id));
  const auto broken = store.verify_tiered(fast_id);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.code(), ErrorCode::kSnapshotCorrupted);
  EXPECT_FALSE(store.truncate_tiered(999));
}

TEST_F(SnapshotFailureTest, QuarantineHidesArtifactAndIsIdempotent) {
  // Quarantine via the slow-id alias; both ids become unreadable.
  store.quarantine_tiered(slow_id);
  EXPECT_TRUE(store.is_quarantined(fast_id));
  EXPECT_TRUE(store.is_quarantined(slow_id));
  EXPECT_EQ(store.get_tiered(fast_id), nullptr);
  EXPECT_EQ(store.get_tiered(slow_id), nullptr);
  EXPECT_EQ(code_of([&] { store.fetch_tiered(fast_id); }),
            ErrorCode::kSnapshotMissing);
  const auto v = store.verify_tiered(fast_id);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), ErrorCode::kSnapshotMissing);

  store.quarantine_tiered(fast_id);  // idempotent
  EXPECT_EQ(store.quarantine_count(), 1u);

  // The retained single-tier generation is untouched: the degrade rung.
  EXPECT_EQ(store.fetch_single_tier(single_id).materialize(),
            patterned_memory(32));
}

TEST_F(SnapshotFailureTest, ResidentBytesFollowTheAliasMap) {
  // The arbiter's fleet accounting must see the same artifact through
  // either file id of a tiered pair, pin the full image for single-tier
  // generations, and charge nothing for unknown or quarantined ids.
  const TieredSnapshot* tiered = store.get_tiered(fast_id);
  ASSERT_NE(tiered, nullptr);
  const u64 fast = bytes_for_pages(tiered->fast_pages());
  const u64 slow = bytes_for_pages(tiered->slow_pages());
  EXPECT_GT(fast, 0u);
  EXPECT_GT(slow, 0u);
  EXPECT_EQ(store.resident_fast_bytes(fast_id), fast);
  EXPECT_EQ(store.resident_fast_bytes(slow_id), fast);
  EXPECT_EQ(store.resident_slow_bytes(fast_id), slow);
  EXPECT_EQ(store.resident_slow_bytes(slow_id), slow);
  // The per-rank view agrees with the rollups.
  EXPECT_EQ(store.resident_tier_bytes(fast_id, 0), fast);
  EXPECT_EQ(store.resident_tier_bytes(fast_id, 1), slow);
  EXPECT_EQ(store.resident_tier_bytes(fast_id, 2), 0u);

  EXPECT_EQ(store.resident_fast_bytes(single_id),
            store.get_single_tier(single_id)->memory_bytes());
  EXPECT_EQ(store.resident_slow_bytes(single_id), 0u);
  EXPECT_EQ(store.resident_fast_bytes(999), 0u);
  EXPECT_EQ(store.resident_slow_bytes(999), 0u);

  store.quarantine_tiered(slow_id);
  EXPECT_EQ(store.resident_fast_bytes(fast_id), 0u);
  EXPECT_EQ(store.resident_slow_bytes(slow_id), 0u);
}

TEST_F(SnapshotFailureTest, RepeatedChecksumFailuresQuarantineOnce) {
  // Every fetch of a bitrotted artifact fails its checksum; the recovery
  // path reacts by quarantining each time — through the slow-id alias —
  // and the quarantine must stay idempotent.
  ASSERT_TRUE(store.corrupt_tiered_page(fast_id, 3));
  for (int round = 0; round < 3; ++round) {
    EXPECT_FALSE(store.verify_tiered(slow_id).ok()) << round;
    store.quarantine_tiered(slow_id);
  }
  EXPECT_EQ(store.quarantine_count(), 1u);

  // Both ids report "quarantined", not a silent missing-mapping.
  try {
    store.fetch_tiered(slow_id);
    ADD_FAILURE() << "fetch of quarantined artifact did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSnapshotMissing);
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
  }
}

TEST_F(SnapshotFailureTest, RestoreMissingFileIdThrowsTyped) {
  MicroVm vm(cfg, store);
  RestorePlan plan;
  plan.guest_pages = 32;
  plan.mappings.push_back(
      RestoreMapping{0, 32, tier_index(0), 999, 0, false});
  EXPECT_EQ(code_of([&] { vm.restore(plan); }), ErrorCode::kSnapshotMissing);
}

TEST_F(SnapshotFailureTest, RestoreOverrunMappingThrowsCorrupted) {
  // A mapping that reads past the end of the snapshot file means the
  // artifact and the plan disagree about its length: corrupted, not missing.
  MicroVm vm(cfg, store);
  RestorePlan plan;
  plan.guest_pages = 64;
  plan.mappings.push_back(
      RestoreMapping{0, 64, tier_index(0), single_id, 0, false});
  EXPECT_EQ(code_of([&] { vm.restore(plan); }),
            ErrorCode::kSnapshotCorrupted);
}

TEST(SnapshotStore, ConcurrentReadersRaceOneWriter) {
  // DESIGN.md §15: the store's blob maps are shared hot state once lanes
  // steal across workers. Readers hammer the latch-internal read paths
  // (resident-byte accounting, verification, quarantine checks) while one
  // writer keeps publishing, quarantining and truncating artifacts. Under
  // -DTOSS_SANITIZE=thread this audits the optimistic latch; in any build
  // it checks that concurrent readers only ever observe complete
  // artifacts: a published id must never report zero resident bytes or a
  // spurious kSnapshotMissing.
  const SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);
  std::atomic<u64> newest_fast_id{0};  // latest intact (never-damaged) id
  std::atomic<bool> stop{false};
  std::atomic<u64> missing_published{0};
  std::atomic<u64> probes{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      u64 i = static_cast<u64>(r);
      while (!stop.load(std::memory_order_acquire)) {
        const u64 newest = newest_fast_id.load(std::memory_order_acquire);
        if (newest == 0) continue;
        // Sweep every id up to the newest: tiered rank-0 ids, their deep-
        // rank aliases, single-tier ids and quarantined ids all resolve
        // through the latched read paths.
        const u64 id = 1 + (++i % newest);
        (void)store.resident_fast_bytes(id);
        (void)store.resident_slow_bytes(id);
        (void)store.is_quarantined(id);
        (void)store.get_tiered(id);  // pointer checked, never dereferenced
        (void)store.verify_tiered(id);
        // The newest id was fully published before the release store, was
        // never quarantined or truncated, and puts are atomic: it must
        // verify clean with nonzero accounting.
        if (store.resident_fast_bytes(newest) == 0 ||
            !store.verify_tiered(newest).ok())
          missing_published.fetch_add(1, std::memory_order_relaxed);
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  u64 quarantined = 0;
  std::vector<u64> damaged_ids;
  for (int round = 0; round < 120; ++round) {
    const u64 sid = store.put_single_tier(patterned_memory(32), VmState{});
    PagePlacement placement(32, tier_index(0));
    placement.set_range(16, 16, tier_index(1));
    const u64 fast_id = store.allocate_file_id();
    const u64 slow_id = store.allocate_file_id();
    store.put_tiered(TieredSnapshot::build(*store.get_single_tier(sid),
                                           placement, {fast_id, slow_id}));
    // Damage only ids that will never become `newest_fast_id`, so the
    // readers' clean-verify probe stays sound.
    if (round % 5 == 1) {
      store.quarantine_tiered(fast_id);
      ++quarantined;
      damaged_ids.push_back(fast_id);
    } else if (round % 7 == 2) {
      EXPECT_TRUE(store.truncate_tiered(fast_id));
      damaged_ids.push_back(fast_id);
    } else {
      newest_fast_id.store(fast_id, std::memory_order_release);
    }
  }
  // On a single core the writer may finish before any reader is scheduled;
  // let the readers make progress before stopping them (terminates: the
  // reader loop is wait-free once the writer is quiet).
  while (probes.load(std::memory_order_acquire) == 0)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(missing_published.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(probes.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(store.quarantine_count(), quarantined);
  // Quiescent cross-checks: the newest intact artifact verifies and its
  // per-rank accounting is populated; damaged ids report their failure
  // mode, never a crash.
  const u64 newest = newest_fast_id.load(std::memory_order_acquire);
  ASSERT_NE(newest, 0u);
  EXPECT_TRUE(store.verify_tiered(newest).ok());
  EXPECT_GT(store.resident_fast_bytes(newest), 0u);
  EXPECT_GT(store.resident_slow_bytes(newest), 0u);
  for (const u64 id : damaged_ids)
    EXPECT_FALSE(store.verify_tiered(id).ok());
}

TEST(SnapshotStoreFaults, TornPutLeavesPreviousGenerationReadable) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  const SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store(cfg);

  FaultPlan plan;
  plan.seed = 7;
  plan.set(FaultSite::kPutSingleTier, {.schedule = {1}});  // 2nd put tears
  plan.set(FaultSite::kPutTiered, {.schedule = {0}});      // 1st put tears
  FaultInjector injector(plan, 0);
  store.attach_faults(&injector);

  const u64 gen1 = store.put_single_tier(patterned_memory(16), VmState{});
  EXPECT_EQ(code_of([&] {
              store.put_single_tier(patterned_memory(32), VmState{});
            }),
            ErrorCode::kTransientIo);
  // Atomicity: the torn write changed nothing — the previous generation is
  // still readable and no file id was burned.
  EXPECT_EQ(store.fetch_single_tier(gen1).materialize(),
            patterned_memory(16));
  const u64 gen2 = store.put_single_tier(patterned_memory(32), VmState{});
  EXPECT_EQ(gen2, gen1 + 1);

  PagePlacement placement(32, tier_index(0));
  placement.set_range(0, 16, tier_index(1));
  const u64 fast_id = store.allocate_file_id();
  const u64 slow_id = store.allocate_file_id();
  TieredSnapshot tiered = TieredSnapshot::build(
      *store.get_single_tier(gen2), placement, {fast_id, slow_id});
  EXPECT_EQ(code_of([&] { store.put_tiered(tiered); }),
            ErrorCode::kTransientIo);
  EXPECT_EQ(store.get_tiered(fast_id), nullptr);
  store.put_tiered(tiered);  // retry lands: only the schedule's arm tears
  ASSERT_NE(store.get_tiered(fast_id), nullptr);
  EXPECT_EQ(store.get_tiered(fast_id)->materialize(), patterned_memory(32));
  EXPECT_EQ(injector.total_fires(), 2u);
  store.attach_faults(nullptr);
}

}  // namespace
}  // namespace toss
