// Tests for the re-generation trigger (Equations 2-4).
#include <gtest/gtest.h>

#include "core/reprofile.hpp"

namespace toss {
namespace {

TEST(Reprofile, Eq2ProfilingOverhead) {
  ReprofilePolicy p(1e-4);
  const double bins[] = {0.01, 0.02, 0.03};
  p.arm(100, bins, ms(500), 0.5);
  // 100 DAMON invocations + sum(1 + slowdown_bin) = 100 + 3.06
  EXPECT_NEAR(p.profiling_overhead(), 103.06, 1e-9);
  EXPECT_DOUBLE_EQ(p.accelerating_factor(), 0.0);
}

TEST(Reprofile, DisarmedNeverTriggers) {
  ReprofilePolicy p(1.0);
  EXPECT_FALSE(p.observe(sec(10)));
  EXPECT_FALSE(p.should_reprofile());
}

TEST(Reprofile, Eq3AcceleratesOnLongInvocations) {
  ReprofilePolicy p(1e-4);
  const double bins[] = {0.0};
  p.arm(10, bins, ms(100), 0.5);
  p.observe(ms(50));  // shorter than LRI: no acceleration
  EXPECT_DOUBLE_EQ(p.accelerating_factor(), 0.0);
  p.observe(ms(200));  // 2x the LRI at full-slow slowdown 0.5
  EXPECT_NEAR(p.accelerating_factor(), 2.0 * 1.5, 1e-9);
  p.observe(ms(400));
  EXPECT_NEAR(p.accelerating_factor(), 3.0 + 4.0 * 1.5, 1e-9);
}

TEST(Reprofile, Eq4TriggersWhenDriftOutweighsOverhead) {
  ReprofilePolicy p(1e-4);
  const double bins[] = {0.0};
  p.arm(5, bins, ms(100), 1.0);
  // overhead = 5 + 1 = 6. Each 2x-LRI invocation contributes 4.0.
  EXPECT_FALSE(p.observe(ms(200)));  // accel 4 < 6
  EXPECT_TRUE(p.observe(ms(200)));   // accel 8 >= 6 - trigger
}

TEST(Reprofile, BudgetAlonePaysOffOverTime) {
  // Even without drift, enough iterations amortize the profiling overhead
  // (iterations * budget >= overhead).
  ReprofilePolicy p(0.1);
  const double bins[] = {0.0};
  p.arm(1, bins, ms(100), 0.0);  // overhead = 2
  bool triggered = false;
  for (int i = 0; i < 20 && !triggered; ++i) triggered = p.observe(ms(10));
  EXPECT_TRUE(triggered);
  EXPECT_LE(p.iterations(), 20u);
}

TEST(Reprofile, TinyBudgetRarelyTriggers) {
  ReprofilePolicy p(1e-6);
  const double bins[] = {0.05, 0.05};
  p.arm(100, bins, sec(1), 0.3);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(p.observe(ms(500)));
}

TEST(Reprofile, ReArmResetsState) {
  ReprofilePolicy p(0.5);
  const double bins[] = {0.0};
  p.arm(1, bins, ms(100), 0.0);
  p.observe(ms(500));
  EXPECT_GT(p.accelerating_factor(), 0.0);
  p.arm(1, bins, ms(100), 0.0);
  EXPECT_DOUBLE_EQ(p.accelerating_factor(), 0.0);
  EXPECT_EQ(p.iterations(), 0u);
}

}  // namespace
}  // namespace toss
