// Tests for the platform layer: pricing, request generation, the invoker,
// the concurrency contention model and the end-to-end ServerlessPlatform.
#include <gtest/gtest.h>

#include "platform/concurrency.hpp"
#include "platform/platform.hpp"
#include "workloads/functions.hpp"

namespace toss {
namespace {

TEST(Pricing, BundleRounding) {
  PricingPlan plan;
  EXPECT_EQ(plan.bundle_mb(0), 128u);
  EXPECT_EQ(plan.bundle_mb(1), 128u);
  EXPECT_EQ(plan.bundle_mb(128), 128u);
  EXPECT_EQ(plan.bundle_mb(129), 256u);
  EXPECT_EQ(plan.bundle_mb(1000), 1024u);
}

TEST(Pricing, TieredNeverExceedsDramForSameDuration) {
  PricingPlan plan;
  const double dram = plan.dram_invocation_cost(1024, 100);
  for (u64 slow : {0ull, 256ull, 512ull, 1024ull}) {
    EXPECT_LE(plan.tiered_invocation_cost(1024 - slow, slow, 100),
              dram + 1e-12);
  }
}

TEST(Pricing, FullySlowCostsRatioLess) {
  PricingPlan plan;
  const double dram = plan.dram_invocation_cost(1024, 100);
  const double slow = plan.tiered_invocation_cost(0, 1024, 100);
  EXPECT_NEAR(slow / dram, 1.0 / plan.cost_ratio, 1e-9);
}

TEST(Pricing, SavingFractionAccountsForSlowdown) {
  PricingPlan plan;
  // 100% offloaded with no slowdown: saving = 1 - 1/2.5 = 0.6.
  EXPECT_NEAR(plan.saving_fraction(0, 1024, 100, 100), 0.6, 1e-9);
  // Slowdown eats into the saving.
  EXPECT_LT(plan.saving_fraction(0, 1024, 150, 100), 0.6);
  // Break-even at slowdown == cost ratio.
  EXPECT_NEAR(plan.saving_fraction(0, 1024, 250, 100), 0.0, 1e-9);
}

TEST(RequestGen, DeterministicAndBounded) {
  const auto a = RequestGenerator::uniform(100, 42);
  const auto b = RequestGenerator::uniform(100, 42);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].input, b[i].input);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_GE(a[i].input, 0);
    EXPECT_LT(a[i].input, kNumInputs);
  }
}

TEST(RequestGen, FixedAndRoundRobin) {
  for (const auto& r : RequestGenerator::fixed(20, 2, 1))
    EXPECT_EQ(r.input, 2);
  const auto rr = RequestGenerator::round_robin(8, 1);
  for (size_t i = 0; i < rr.size(); ++i)
    EXPECT_EQ(rr[i].input, static_cast<int>(i % kNumInputs));
}

TEST(RequestGen, WeightedHitsHeavyInput) {
  const auto reqs = RequestGenerator::weighted(1000, {0, 0, 0, 1}, 3);
  for (const auto& r : reqs) EXPECT_EQ(r.input, 3);
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();

  ExecutionResult memory_bound_solo(double slow_gb, Nanos exec) {
    ExecutionResult r;
    r.exec_ns = exec;
    r.cpu_ns = exec * 0.2;
    r.mem_tier_ns[1] = exec * 0.8;
    r.mem_ns = r.mem_tier_ns[1];
    r.tier_read_bytes[1] = slow_gb * 1e9;
    return r;
  }
};

TEST_F(ConcurrencyTest, SingleInvocationUncontended) {
  const auto out = run_concurrent(cfg, {memory_bound_solo(2.0, ms(100))});
  EXPECT_NEAR(out.exec_ns[0], ms(100), ms(1));
  EXPECT_DOUBLE_EQ(out.factors.disk, 1.0);
}

TEST_F(ConcurrencyTest, ContentionGrowsWithConcurrency) {
  Nanos prev = 0;
  for (size_t k : {1, 5, 10, 20}) {
    std::vector<ExecutionResult> solo(k, memory_bound_solo(40.0, ms(100)));
    const auto out = run_concurrent(cfg, solo);
    EXPECT_GE(out.exec_ns[0], prev);
    prev = out.exec_ns[0];
  }
  EXPECT_GT(prev, ms(100) * 1.5);  // 20x 400 GB/s demand on a 26 GB/s tier
}

TEST_F(ConcurrencyTest, CpuBoundScalesFreely) {
  ExecutionResult r;
  r.exec_ns = ms(100);
  r.cpu_ns = ms(100);
  std::vector<ExecutionResult> solo(20, r);
  const auto out = run_concurrent(cfg, solo);
  for (Nanos t : out.exec_ns) EXPECT_NEAR(t, ms(100), 1.0);
}

TEST_F(ConcurrencyTest, DiskContentionScalesMajorFaults) {
  ExecutionResult r;
  r.exec_ns = ms(100);
  r.cpu_ns = ms(10);
  r.disk_ns = ms(90);
  r.fault_ns = ms(90);
  r.disk_pages = 50000;  // 500k IOPS demand over 100 ms
  std::vector<ExecutionResult> solo(20, r);
  const auto out = run_concurrent(cfg, solo);
  EXPECT_GT(out.factors.disk, 2.0);
  EXPECT_GT(out.exec_ns[0], ms(150));
}

class PlatformTest : public ::testing::Test {
 protected:
  static TossOptions fast_toss() {
    TossOptions opt;
    opt.stable_invocations = 5;
    return opt;
  }
};

TEST_F(PlatformTest, EndToEndTossLifecycle) {
  ServerlessPlatform platform;
  ASSERT_TRUE(platform
                  .register_function(FunctionRegistration(workloads::pyaes())
                                         .policy(PolicyKind::kToss)
                                         .toss(fast_toss()))
                  .ok());
  const auto reqs = RequestGenerator::round_robin(150, 11);
  const auto outcomes = platform.run("pyaes", reqs).value();
  ASSERT_EQ(outcomes.size(), 150u);
  EXPECT_TRUE(outcomes.front().cold_boot);
  EXPECT_EQ(outcomes.back().toss_phase, TossPhase::kTiered);
  EXPECT_EQ(platform.stats("pyaes").invocations, 150u);
  EXPECT_GT(platform.stats("pyaes").total_charge, 0.0);
  ASSERT_NE(platform.toss_state("pyaes"), nullptr);
  EXPECT_EQ(platform.toss_state("pyaes")->phase(), TossPhase::kTiered);
}

TEST_F(PlatformTest, TieredChargeBelowDramCharge) {
  ServerlessPlatform platform;
  platform
      .register_function(FunctionRegistration(workloads::compress())
                             .policy(PolicyKind::kToss)
                             .toss(fast_toss()))
      .value();
  platform.run("compress", RequestGenerator::fixed(40, 3, 5)).value();
  ASSERT_EQ(platform.toss_state("compress")->phase(), TossPhase::kTiered);

  const auto tiered = platform.invoke("compress", 3, 777).value();
  const double dram_equiv = platform.pricing().dram_invocation_cost(
      256, to_ms(tiered.result.total_ns()));
  EXPECT_LT(tiered.charge, dram_equiv);
}

TEST_F(PlatformTest, BaselinePoliciesWork) {
  ServerlessPlatform platform;
  for (auto [spec, kind] :
       {std::pair{workloads::json_load_dump(), PolicyKind::kVanilla},
        std::pair{workloads::pyaes(), PolicyKind::kReap},
        std::pair{workloads::linpack(), PolicyKind::kFaasnap}}) {
    ASSERT_TRUE(
        platform.register_function(FunctionRegistration(spec).policy(kind))
            .ok());
  }

  for (const char* name : {"json_load_dump", "pyaes", "linpack"}) {
    const auto first = platform.invoke(name, 1, 1).value();
    EXPECT_TRUE(first.cold_boot) << name;
    const auto second = platform.invoke(name, 1, 2).value();
    EXPECT_FALSE(second.cold_boot) << name;
    EXPECT_GT(second.result.total_ns(), 0) << name;
  }
}

TEST_F(PlatformTest, ReapEagerLoadsOnSecondInvocation) {
  ServerlessPlatform platform;
  platform.register_function(
      FunctionRegistration(workloads::pyaes()).policy(PolicyKind::kReap))
      .value();
  platform.invoke("pyaes", 1, 1).value();
  const auto second = platform.invoke("pyaes", 1, 2).value();
  EXPECT_GT(second.result.setup.eager_pages, 0u);
}

TEST_F(PlatformTest, UnknownFunctionIsTypedError) {
  ServerlessPlatform platform;
  const auto out = platform.invoke("ghost", 0, 0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.code(), ErrorCode::kUnknownFunction);
  // value() on an error rethrows it as the typed exception, never as a raw
  // std::out_of_range from some internal container.
  try {
    platform.invoke("ghost", 0, 0).value();
    FAIL() << "expected toss::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownFunction);
  }
  EXPECT_THROW(platform.stats("ghost"), Error);
  EXPECT_EQ(platform.toss_state("ghost"), nullptr);
}

TEST_F(PlatformTest, InvalidInputIsTypedError) {
  ServerlessPlatform platform;
  platform.register_function(
      FunctionRegistration(workloads::pyaes()).policy(PolicyKind::kVanilla))
      .value();
  const auto out = platform.invoke("pyaes", kNumInputs, 0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.code(), ErrorCode::kInvalidRequest);
}

TEST_F(PlatformTest, RegistrationValidatesOptions) {
  ServerlessPlatform platform;

  TossOptions bad_bins = fast_toss();
  bad_bins.bin_count = 0;
  auto r = platform.register_function(FunctionRegistration(workloads::pyaes())
                                          .policy(PolicyKind::kToss)
                                          .toss(bad_bins));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidOptions);

  TossOptions bad_window = fast_toss();
  bad_window.stable_invocations = 100;
  bad_window.max_profiling_invocations = 10;
  r = platform.register_function(FunctionRegistration(workloads::pyaes())
                                     .policy(PolicyKind::kToss)
                                     .toss(bad_window));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidOptions);

  r = platform.register_function(
      FunctionRegistration(workloads::pyaes()).concurrency(0));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidOptions);

  FunctionSpec nameless = workloads::pyaes();
  nameless.name.clear();
  EXPECT_FALSE(platform.register_function(FunctionRegistration(nameless)).ok());

  // A failed registration leaves no trace; the valid one still works.
  EXPECT_TRUE(platform
                  .register_function(FunctionRegistration(workloads::pyaes())
                                         .policy(PolicyKind::kToss)
                                         .toss(fast_toss()))
                  .ok());
  const auto dup = platform.register_function(
      FunctionRegistration(workloads::pyaes()).policy(PolicyKind::kToss));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), ErrorCode::kDuplicateFunction);
}

}  // namespace
}  // namespace toss
