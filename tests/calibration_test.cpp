// Calibration guards: pin the evaluation's headline shapes so a workload
// or cost-model change that silently breaks the reproduction fails CI.
// Ranges are deliberately generous around the paper's reported values
// (Table II, Figs 2/5) — they assert the shape, not the exact number.
#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "util/stats.hpp"
#include "core/optimizer.hpp"
#include "damon/monitor.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

struct Expectation {
  const char* name;
  double slow_min, slow_max;     ///< Table II slow-tier share bounds
  double slowdown_max;           ///< Fig 5 slowdown upper bound
  double full_slow_min, full_slow_max;  ///< Fig 2 @ input IV bounds
};

// Paper anchors: Table II percentages, Fig 5 slowdowns (<= 25.6%), Fig 2
// shapes (compress negligible ... pagerank worst).
const Expectation kExpectations[] = {
    {"float_operation", 0.90, 1.00, 0.15, 1.02, 1.25},
    {"pyaes", 0.90, 1.00, 0.15, 1.02, 1.20},
    {"json_load_dump", 0.90, 1.00, 0.15, 1.02, 1.20},
    {"compress", 0.95, 1.00, 0.08, 1.00, 1.10},
    {"linpack", 0.88, 1.00, 0.15, 1.05, 1.30},
    {"matmul", 0.80, 0.97, 0.15, 1.25, 1.70},
    {"image_processing", 0.90, 1.00, 0.30, 1.10, 1.40},
    {"pagerank", 0.30, 0.65, 0.35, 1.90, 2.80},
    {"lr_serving", 0.85, 1.00, 0.20, 1.12, 1.45},
    {"lr_training", 0.95, 1.00, 0.10, 1.00, 1.12},
};

class CalibrationTest : public ::testing::TestWithParam<Expectation> {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();

  TieringDecision decide(const FunctionModel& m) {
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input)
      for (u64 rep = 0; rep < 3; ++rep)
        unified.merge_max(PageAccessCounts::from_trace(
            m.invoke(input, 4000 + rep).trace, m.guest_pages()));
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    return analyze_pattern(cfg, unified, m.invoke(3, 4003), {});
  }
};

TEST_P(CalibrationTest, TableTwoSlowShareInRange) {
  const Expectation& e = GetParam();
  const TieringDecision d = decide(*reg.find(e.name));
  EXPECT_GE(d.slow_fraction, e.slow_min) << e.name;
  EXPECT_LE(d.slow_fraction, e.slow_max) << e.name;
}

TEST_P(CalibrationTest, FigFiveSlowdownBounded) {
  const Expectation& e = GetParam();
  const TieringDecision d = decide(*reg.find(e.name));
  EXPECT_LE(d.expected_slowdown, e.slowdown_max) << e.name;
  // Cost never exceeds DRAM-only, never beats the optimum.
  EXPECT_LE(d.normalized_cost, 1.0) << e.name;
  EXPECT_GE(d.normalized_cost, 0.4 - 1e-9) << e.name;
}

TEST_P(CalibrationTest, FigTwoFullSlowInRange) {
  const Expectation& e = GetParam();
  const FunctionModel& m = *reg.find(e.name);
  AccessCostModel model(cfg);
  OnlineStats sd;
  for (int it = 0; it < 10; ++it) {
    const Invocation inv = m.invoke(3, 4100 + static_cast<u64>(it));
    const Nanos fast = inv.cpu_ns + inv.trace.time_uniform(model, tier_index(0));
    const Nanos slow = inv.cpu_ns + inv.trace.time_uniform(model, tier_index(1));
    sd.add(slow / fast);
  }
  EXPECT_GE(sd.mean(), e.full_slow_min) << e.name;
  EXPECT_LE(sd.mean(), e.full_slow_max) << e.name;
}

INSTANTIATE_TEST_SUITE_P(AllTen, CalibrationTest,
                         ::testing::ValuesIn(kExpectations),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(CalibrationAggregate, AverageOffloadNearPaper) {
  // Paper: 92% average offload.
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();
  OnlineStats offload;
  for (const Expectation& e : kExpectations) {
    const FunctionModel& m = *reg.find(e.name);
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input)
      unified.merge_max(PageAccessCounts::from_trace(
          m.invoke(input, 4200).trace, m.guest_pages()));
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    offload.add(
        analyze_pattern(cfg, unified, m.invoke(3, 4201), {}).slow_fraction);
  }
  EXPECT_GT(offload.mean(), 0.85);
  EXPECT_LT(offload.mean(), 0.99);
}

TEST(CalibrationAggregate, AverageCostNearPaper) {
  // Paper: average normalized cost ~0.48 (range 0.40-0.87).
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();
  OnlineStats cost;
  for (const Expectation& e : kExpectations) {
    const FunctionModel& m = *reg.find(e.name);
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input)
      unified.merge_max(PageAccessCounts::from_trace(
          m.invoke(input, 4300).trace, m.guest_pages()));
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    cost.add(
        analyze_pattern(cfg, unified, m.invoke(3, 4301), {}).normalized_cost);
  }
  EXPECT_GT(cost.mean(), 0.42);
  EXPECT_LT(cost.mean(), 0.56);
  EXPECT_LT(cost.max(), 0.95);  // pagerank stays below DRAM-only
}

}  // namespace
}  // namespace toss
