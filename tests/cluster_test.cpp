// Tests for the multi-host cluster layer (DESIGN.md §10): worst-fit
// placement by predicted fast-tier demand, K-epoch migration hysteresis,
// the migration ledger's thread-count determinism, and the Azure-style
// trace loader that feeds cluster workloads.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "platform/engine.hpp"
#include "util/error.hpp"
#include "workloads/functions.hpp"

namespace toss {
namespace {

TossOptions fast_toss() {
  TossOptions opt;
  opt.stable_invocations = 4;
  opt.max_profiling_invocations = 30;
  return opt;
}

// ---------------------------------------------------------------------------
// place_on_host: the bin-packing step in isolation.
// ---------------------------------------------------------------------------

TEST(Placement, WorstFitPrefersMostHeadroom) {
  // Budget 100 per host. Loads {40, 10, 70}: all fit a demand of 20, so
  // worst-fit picks the emptiest host.
  EXPECT_EQ(place_on_host(20, {40, 10, 70}, 100), 1u);
}

TEST(Placement, TiesBreakTowardLowestIndex) {
  EXPECT_EQ(place_on_host(10, {50, 50}, 100), 0u);
  EXPECT_EQ(place_on_host(10, {0, 0, 0}, 100), 0u);
}

TEST(Placement, SkipsHostsWhereDemandDoesNotFit) {
  // Only host 0 has room for 30 (headroom 35 vs 5): worst-fit must not
  // pick host 1 even though rules like "least loaded after placement"
  // would.
  EXPECT_EQ(place_on_host(30, {65, 95}, 100), 0u);
}

TEST(Placement, FallsBackToLeastLoadedWhenNothingFits) {
  EXPECT_EQ(place_on_host(50, {90, 80}, 100), 1u);
  // Demand larger than any budget: still deterministic, least loaded.
  EXPECT_EQ(place_on_host(200, {10, 0}, 100), 1u);
}

TEST(Placement, PredictedDemandTracksPolicy) {
  const SystemConfig cfg = SystemConfig::paper_default();
  FunctionSpec spec = workloads::all_functions()[0];
  const u64 guest = spec.guest_bytes();

  const u64 vanilla = predicted_fast_demand(
      cfg, FunctionRegistration(spec).policy(PolicyKind::kVanilla).seed(7));
  EXPECT_EQ(vanilla, guest);  // baselines pin the whole image in DRAM

  const u64 toss = predicted_fast_demand(
      cfg, FunctionRegistration(spec)
               .policy(PolicyKind::kToss)
               .toss(fast_toss())
               .seed(7));
  EXPECT_GT(toss, 0u);
  EXPECT_LT(toss, guest);  // the Step-IV placement keeps a DRAM sliver
}

TEST(Placement, PerRankDemandCoversTheLadder) {
  FunctionSpec spec = workloads::all_functions()[0];
  const u64 guest = spec.guest_bytes();

  for (const SystemConfig& cfg :
       {SystemConfig::paper_default(), SystemConfig::cxl_host()}) {
    // Baselines: the whole image at rank 0, nothing deeper.
    const auto vanilla = predicted_tier_demand(
        cfg, FunctionRegistration(spec).policy(PolicyKind::kVanilla).seed(7));
    ASSERT_EQ(vanilla.size(), cfg.tier_count());
    EXPECT_EQ(vanilla[0], guest);
    for (size_t r = 1; r < vanilla.size(); ++r) EXPECT_EQ(vanilla[r], 0u);

    // TOSS: the per-rank shares partition the guest image, rank 0 matches
    // the fast-demand rollup, and something actually left the fast tier.
    const FunctionRegistration reg = FunctionRegistration(spec)
                                         .policy(PolicyKind::kToss)
                                         .toss(fast_toss())
                                         .seed(7);
    const auto tiered = predicted_tier_demand(cfg, reg);
    ASSERT_EQ(tiered.size(), cfg.tier_count());
    u64 total = 0;
    for (u64 b : tiered) total += b;
    EXPECT_EQ(total, guest);
    EXPECT_EQ(tiered[0], predicted_fast_demand(cfg, reg));
    EXPECT_GT(guest - tiered[0], 0u);
  }
}

// ---------------------------------------------------------------------------
// ClusterEngine: placement integration, migration, determinism.
// ---------------------------------------------------------------------------

TEST(Cluster, SpreadsEqualFunctionsAcrossHosts) {
  ClusterOptions opts;
  opts.hosts = 4;
  ClusterEngine cluster(opts);
  // kVanilla demand is exactly guest_bytes — identical for every clone, so
  // the worst-fit outcome is fully predictable.
  for (size_t i = 0; i < 8; ++i) {
    FunctionSpec spec = workloads::all_functions()[0];
    spec.name += "#" + std::to_string(i);
    ASSERT_TRUE(cluster
                    .add(FunctionRegistration(std::move(spec))
                             .policy(PolicyKind::kVanilla)
                             .seed(10 + i),
                         RequestGenerator::round_robin(4, 9))
                    .ok());
  }
  // Equal demands and worst-fit: exactly two functions per host, and the
  // predicted load never exceeds the (installed-DRAM) budget.
  EXPECT_EQ(cluster.function_count(), 8u);
  for (size_t h = 0; h < opts.hosts; ++h) {
    EXPECT_EQ(cluster.host_at(h).function_count(), 2u) << "host " << h;
    EXPECT_LE(cluster.predicted_load()[h], cluster.host_fast_budget_bytes(h));
  }
  EXPECT_EQ(cluster.host_of("float_operation#0"), 0u);
  EXPECT_EQ(cluster.host_of("float_operation#1"), 1u);
  EXPECT_EQ(cluster.host_of("nope"), ClusterEngine::npos);

  // Cluster-wide duplicate and unknown-function errors are typed.
  FunctionSpec dup = workloads::all_functions()[0];
  dup.name += "#0";
  EXPECT_EQ(cluster
                .add(FunctionRegistration(std::move(dup))
                         .policy(PolicyKind::kToss)
                         .seed(1),
                     {})
                .code(),
            ErrorCode::kDuplicateFunction);
  EXPECT_EQ(cluster.enqueue("nope", {}).code(), ErrorCode::kUnknownFunction);

  const ClusterReport report = cluster.run(2).value();
  EXPECT_EQ(report.total_invocations(), 8u * 4u);
  EXPECT_EQ(report.total_shed(), 0u);
  EXPECT_TRUE(report.migrations.empty());  // nothing was under pressure
  ASSERT_NE(report.find("float_operation#3"), nullptr);
  EXPECT_EQ(report.find("float_operation#3")->stats.invocations, 4u);
}

/// Probe the unconstrained tiered fast-tier footprint of the shared spec,
/// so budgets scale with the workload instead of hard-coding bytes.
u64 probe_tiered_fast_bytes() {
  auto probe = std::make_unique<PlatformEngine>(SystemConfig::paper_default(),
                                                PricingPlan{}, EngineOptions{});
  FunctionSpec spec = workloads::all_functions()[0];
  const std::string name = spec.name;
  EXPECT_TRUE(probe
                  ->add(FunctionRegistration(std::move(spec))
                            .policy(PolicyKind::kToss)
                            .toss(fast_toss())
                            .seed(42),
                        RequestGenerator::round_robin(40, 9))
                  .ok());
  EXPECT_TRUE(probe->run(1).ok());
  EXPECT_EQ(probe->toss_state(name)->phase(), TossPhase::kTiered);
  return probe->toss_state(name)->fast_resident_bytes();
}

/// The pressure fleet on two hosts with a budget that fits the steady
/// state but not one profiling guest image. Two quick-tiering candidates
/// land first (one per host, worst-fit); the hog — which profiles for its
/// whole long stream, pinning its guest image far past the budget — lands
/// last, co-located with whichever candidate predicted smaller. The hog's
/// host pins at close-admission, and its tiered roommate is the migration
/// candidate.
struct PressureFleet {
  std::unique_ptr<ClusterEngine> cluster;
  size_t hog_host = 0;        ///< host the hog (and the candidate) landed on
  std::string candidate;      ///< the tiered function expected to migrate
};

PressureFleet pressure_cluster(u64 budget, int pinned_epochs,
                               bool enable_migration, u64 seed) {
  ClusterOptions opts;
  opts.hosts = 2;
  opts.migrate_after_pinned_epochs = pinned_epochs;
  opts.enable_migration = enable_migration;
  opts.host_options.chunk = 2;
  opts.host_options.arbiter.enabled = true;
  opts.host_options.arbiter.fast_budget_bytes = budget;
  opts.host_options.arbiter.keepalive = false;
  PressureFleet fleet;
  fleet.cluster = std::make_unique<ClusterEngine>(opts);

  // The hog must stay in profiling (pinning its whole guest image) for its
  // entire stream: out-wait both the stability detector and the profiling
  // cap.
  TossOptions never_tiers = fast_toss();
  never_tiers.stable_invocations = 1000;
  never_tiers.max_profiling_invocations = 1000;
  const TossOptions toss_opts[] = {fast_toss(), fast_toss(), never_tiers};
  const size_t lengths[] = {60, 60, 80};
  for (size_t i = 0; i < 3; ++i) {
    FunctionSpec spec = workloads::all_functions()[0];
    spec.name += "#" + std::to_string(i);
    EXPECT_TRUE(fleet.cluster
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(toss_opts[i])
                              .seed(42 + i),
                          RequestGenerator::round_robin(lengths[i], seed))
                    .ok());
  }
  // The first two adds always split across the empty hosts; the third
  // co-locates with the smaller-demand candidate.
  EXPECT_EQ(fleet.cluster->host_of("float_operation#0"), 0u);
  EXPECT_EQ(fleet.cluster->host_of("float_operation#1"), 1u);
  fleet.hog_host = fleet.cluster->host_of("float_operation#2");
  fleet.candidate = "float_operation#" + std::to_string(fleet.hog_host);
  return fleet;
}

TEST(Cluster, MigratesLargestTieredFunctionAfterKPinnedEpochs) {
  const u64 tiered = probe_tiered_fast_bytes();
  ASSERT_GT(tiered, 0u);
  const u64 budget = 3 * tiered;  // fits 2 steady lanes, not a profiling one
  constexpr int kPinned = 3;

  PressureFleet fleet = pressure_cluster(budget, kPinned, true, 9);
  const ClusterReport report = fleet.cluster->run(2).value();
  const size_t dest = 1 - fleet.hog_host;

  ASSERT_GE(report.migrations.size(), 1u);
  const MigrationEvent& ev = report.migrations.front();
  EXPECT_EQ(ev.function, fleet.candidate);  // the only tiered candidate
  EXPECT_EQ(ev.from_host, "host" + std::to_string(fleet.hog_host));
  EXPECT_EQ(ev.to_host, "host" + std::to_string(dest));
  EXPECT_GE(ev.epoch, static_cast<u64>(kPinned));
  EXPECT_GT(ev.moved_bytes, 0u);
  EXPECT_GT(ev.transfer_ns, 0);
  EXPECT_EQ(fleet.cluster->host_of(fleet.candidate), dest);

  // The move lost no work: the migrated lane finished its stream on the
  // destination, and its ledger traveled with it.
  EXPECT_EQ(report.total_invocations(), 60u + 60u + 80u);
  EXPECT_EQ(report.total_shed(), 0u);
  const FunctionReport* moved = report.find(fleet.candidate);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->stats.invocations, 60u);
  EXPECT_NE(fleet.cluster->host_at(dest).lane_host(fleet.candidate), nullptr);
  EXPECT_EQ(fleet.cluster->host_at(fleet.hog_host).lane_host(fleet.candidate),
            nullptr);

  // The JSON rollup carries the cluster block and the migration ledger.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":" +
                      std::to_string(MetricsSnapshot::kJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(json.find("\"migration_events\":["), std::string::npos);
  EXPECT_NE(json.find("\"host\":\"host1\""), std::string::npos);
}

TEST(Cluster, HysteresisHoldsMigrationBelowKPinnedEpochs) {
  const u64 budget = 3 * probe_tiered_fast_bytes();
  // Same pressure, but K larger than the run: the cluster must ride out
  // the closure without moving anyone.
  PressureFleet patient = pressure_cluster(budget, 100000, true, 9);
  EXPECT_TRUE(patient.cluster->run(2).value().migrations.empty());
  // And with migration disabled outright, pressure never moves a lane.
  PressureFleet frozen = pressure_cluster(budget, 1, false, 9);
  const ClusterReport report = frozen.cluster->run(2).value();
  EXPECT_TRUE(report.migrations.empty());
  EXPECT_EQ(report.total_invocations(), 60u + 60u + 80u);
}

TEST(Cluster, MigratingTheLastTieredLaneLeavesNoCandidateBehind) {
  const u64 tiered = probe_tiered_fast_bytes();
  ASSERT_GT(tiered, 0u);
  // The candidate is the hog host's *only* tiered lane. After it migrates
  // the host stays pinned (the hog keeps profiling past the budget) but
  // has no candidate left: the cluster must ride the pressure out without
  // inventing moves, losing the hog's work, or wedging the epoch loop.
  PressureFleet fleet = pressure_cluster(3 * tiered, 2, true, 9);
  const ClusterReport report = fleet.cluster->run(2).value();
  const size_t dest = 1 - fleet.hog_host;

  ASSERT_GE(report.migrations.size(), 1u);
  EXPECT_EQ(report.migrations[0].function, fleet.candidate);
  for (const MigrationEvent& ev : report.migrations)
    EXPECT_EQ(ev.from_host, "host" + std::to_string(fleet.hog_host))
        << "only the hog host ever has a candidate to give up";
  EXPECT_EQ(fleet.cluster->host_of(fleet.candidate), dest);
  EXPECT_EQ(fleet.cluster->host_at(fleet.hog_host).lane_host(fleet.candidate),
            nullptr);
  EXPECT_EQ(report.total_invocations(), 60u + 60u + 80u);
  EXPECT_EQ(report.total_shed(), 0u);
}

TEST(Cluster, MigrationLandsOnHostThatClosesAdmissionSameEpoch) {
  const u64 tiered = probe_tiered_fast_bytes();
  ASSERT_GT(tiered, 0u);
  // Both hosts carry a profiling hog, so any migration destination is
  // itself at (or heading into) the close-admission rung when the lane
  // lands. The adopted lane's already-admitted queue must still drain
  // there — admission closure only gates new arrivals — and no request
  // may be lost to the double pressure.
  ClusterOptions opts;
  opts.hosts = 2;
  opts.migrate_after_pinned_epochs = 2;
  opts.host_options.chunk = 2;
  opts.host_options.arbiter.enabled = true;
  opts.host_options.arbiter.fast_budget_bytes = 3 * tiered;
  opts.host_options.arbiter.keepalive = false;
  ClusterEngine cluster(opts);

  TossOptions never_tiers = fast_toss();
  never_tiers.stable_invocations = 1000;
  never_tiers.max_profiling_invocations = 1000;
  const size_t lengths[] = {60, 60, 80, 80};
  for (size_t i = 0; i < 4; ++i) {
    FunctionSpec spec = workloads::all_functions()[0];
    spec.name += "#" + std::to_string(i);
    ASSERT_TRUE(cluster
                    .add(FunctionRegistration(std::move(spec))
                             .policy(PolicyKind::kToss)
                             .toss(i < 2 ? fast_toss() : never_tiers)
                             .seed(42 + i),
                         RequestGenerator::round_robin(lengths[i], 9))
                    .ok());
  }
  // Worst-fit splits the candidates and then the hogs: one of each per
  // host, so both arbiters pin.
  ASSERT_NE(cluster.host_of("float_operation#2"),
            cluster.host_of("float_operation#3"));

  const ClusterReport report = cluster.run(2).value();
  ASSERT_GE(report.migrations.size(), 1u);
  // Both hosts were pinned, so the destination of the first move had its
  // own close-admission streak — visible in its arbiter ledger.
  const size_t dest_host =
      report.migrations[0].to_host == "host0" ? 0u : 1u;
  EXPECT_FALSE(report.hosts[dest_host].report.arbiter.events.empty());
  // Exactly-once despite landing behind a closed admission gate.
  EXPECT_EQ(report.total_invocations(), 60u + 60u + 80u + 80u);
  EXPECT_EQ(report.total_shed(), 0u);
}

TEST(Cluster, LedgersAreBitIdenticalAcrossThreadCounts) {
  const u64 budget = 3 * probe_tiered_fast_bytes();
  for (u64 seed = 9; seed <= 11; ++seed) {
    PressureFleet serial = pressure_cluster(budget, 3, true, seed);
    const ClusterReport s = serial.cluster->run(1).value();
    PressureFleet parallel = pressure_cluster(budget, 3, true, seed);
    const ClusterReport p = parallel.cluster->run(4).value();

    EXPECT_EQ(s.migrations, p.migrations) << "seed " << seed;
    EXPECT_EQ(s.epochs, p.epochs) << "seed " << seed;
    ASSERT_EQ(s.hosts.size(), p.hosts.size());
    for (size_t h = 0; h < s.hosts.size(); ++h) {
      const EngineReport& a = s.hosts[h].report;
      const EngineReport& b = p.hosts[h].report;
      EXPECT_EQ(a.serialization_violations, 0u);
      EXPECT_EQ(b.serialization_violations, 0u);
      EXPECT_EQ(a.arbiter.events, b.arbiter.events)
          << "seed " << seed << " host " << h;
      ASSERT_EQ(a.functions.size(), b.functions.size());
      for (size_t i = 0; i < a.functions.size(); ++i) {
        EXPECT_EQ(a.functions[i].name, b.functions[i].name);
        EXPECT_EQ(a.functions[i].stats.invocations,
                  b.functions[i].stats.invocations);
        EXPECT_EQ(a.functions[i].stats.total_charge,
                  b.functions[i].stats.total_charge);
        EXPECT_EQ(a.functions[i].overload, b.functions[i].overload);
        EXPECT_EQ(a.functions[i].shed_events, b.functions[i].shed_events);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RequestGenerator::from_trace: the Azure-style CSV loader.
// ---------------------------------------------------------------------------

std::string write_trace(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(Trace, LoadsStreamsInFirstAppearanceOrder) {
  const std::string path = write_trace(
      "toss_trace_ok.csv",
      "function_id,arrival_ns,deadline_ns,input,seed\r\n"
      "beta,100,0,2,7\n"
      "alpha,50,1000\n"
      "\n"
      "beta,200,0\n"
      "alpha,50,1000\n");
  const auto streams = RequestGenerator::from_trace(path).value();
  ASSERT_EQ(streams.size(), 2u);

  EXPECT_EQ(streams[0].function, "beta");
  ASSERT_EQ(streams[0].requests.size(), 2u);
  EXPECT_EQ(streams[0].requests[0].input, 2);
  EXPECT_EQ(streams[0].requests[0].seed, 7u);
  EXPECT_EQ(streams[0].requests[0].arrival_ns, 100);
  // Defaults: inputs round-robin per stream and seeds come from a
  // deterministic per-function generator, so explicit values interleave
  // with generated ones reproducibly.
  EXPECT_EQ(streams[0].requests[1].input, 0);
  EXPECT_EQ(streams[0].requests[1].seed, Rng(mix_seed(42, "beta")).next());

  EXPECT_EQ(streams[1].function, "alpha");
  ASSERT_EQ(streams[1].requests.size(), 2u);
  EXPECT_EQ(streams[1].requests[0].deadline_ns, 1000);
  EXPECT_EQ(streams[1].requests[0].input, 0);
  EXPECT_EQ(streams[1].requests[1].input, 1);
  // Equal arrivals are fine; only regressions are rejected.
  EXPECT_EQ(streams[1].requests[1].arrival_ns, 50);
}

TEST(Trace, ErrorsAreTypedAndNameTheLine) {
  EXPECT_EQ(RequestGenerator::from_trace("/nonexistent/t.csv").code(),
            ErrorCode::kTransientIo);

  struct Case {
    const char* name;
    const char* body;
    const char* needle;
  };
  const Case cases[] = {
      {"fields.csv", "f,1\n", "got 2 fields"},
      {"arrival.csv", "f,-5,0\n", "not a non-negative number"},
      {"deadline.csv", "f,5,x\n", "not a non-negative number"},
      {"input.csv", "f,5,0,9\n", "outside [0, 4)"},
      {"input_frac.csv", "f,5,0,1.5\n", "outside [0, 4)"},
      {"seed.csv", "f,5,0,1,-2\n", "not a non-negative number"},
      {"order.csv", "f,100,0\nf,50,0\n", "arrivals out of order"},
      {"empty_id.csv", ",5,0\n", "empty function_id"},
      // A nonzero deadline earlier than the row's own arrival is dead on
      // admission — rejected at load, not silently shed at serve time.
      {"dead_on_arrival.csv", "f,100,99\n", "precedes arrival_ns"},
      {"qos_bad.csv", "f,5,0,1,2,silver\n", "not one of none/gold/bronze"},
      {"qos_conflict.csv", "f,5,0,1,2,gold\nf,6,0,1,2,bronze\n",
       "conflicting qos class"},
  };
  for (const Case& c : cases) {
    const auto result =
        RequestGenerator::from_trace(write_trace(c.name, c.body));
    EXPECT_EQ(result.code(), ErrorCode::kInvalidRequest) << c.name;
    EXPECT_NE(result.message().find(c.needle), std::string::npos)
        << c.name << ": " << result.message();
  }
  // The line number in the diagnostic is 1-based and counts the header.
  const auto bad = RequestGenerator::from_trace(
      write_trace("line.csv", "function_id,arrival_ns,deadline_ns\nf,1,0\nf,0,0\n"));
  EXPECT_NE(bad.message().find("line.csv:3:"), std::string::npos)
      << bad.message();
}

TEST(Trace, DeadlineEqualToArrivalIsAdmissible) {
  // The boundary case of the dead-on-admission check: a request due the
  // instant it arrives is tight but serviceable, so the row loads.
  const std::string path =
      write_trace("toss_trace_edge.csv", "f,100,100\nf,200,0\n");
  const auto streams = RequestGenerator::from_trace(path).value();
  ASSERT_EQ(streams.size(), 1u);
  ASSERT_EQ(streams[0].requests.size(), 2u);
  EXPECT_EQ(streams[0].requests[0].deadline_ns, 100);
  EXPECT_EQ(streams[0].requests[1].deadline_ns, 0);
}

TEST(Trace, QosColumnNamesTheServiceClass) {
  // The optional 6th column carries the function's service class. One
  // class per function: later rows may repeat it or leave it blank, and a
  // function that never names one stays kNone.
  const std::string path = write_trace(
      "toss_trace_qos.csv",
      "function_id,arrival_ns,deadline_ns,input,seed,qos\n"
      "gold_fn,0,0,1,2,gold\n"
      "bronze_fn,0,0,1,2,bronze\n"
      "plain_fn,0,0,1,2,\n"
      "gold_fn,10,0,1,2,gold\n"
      "bronze_fn,10,0\n"
      "none_fn,0,0,1,2,none\n");
  const auto streams = RequestGenerator::from_trace(path).value();
  ASSERT_EQ(streams.size(), 4u);
  EXPECT_EQ(streams[0].function, "gold_fn");
  EXPECT_EQ(streams[0].qos, QosClass::kGold);
  EXPECT_EQ(streams[1].function, "bronze_fn");
  EXPECT_EQ(streams[1].qos, QosClass::kBronze);
  EXPECT_EQ(streams[2].function, "plain_fn");
  EXPECT_EQ(streams[2].qos, QosClass::kNone);
  EXPECT_EQ(streams[3].function, "none_fn");
  EXPECT_EQ(streams[3].qos, QosClass::kNone);
}

TEST(Trace, FeedsAClusterEndToEnd) {
  // A trace drives the cluster: streams arrive pre-stamped, the overload
  // scheduler (deadlines on) serves them, and every request is accounted.
  const std::string path = write_trace(
      "toss_trace_cluster.csv",
      "alpha,0,0\nbeta,0,0\nalpha,1000,0\nbeta,1000,0\n"
      "alpha,2000,0\nbeta,2000,0\nalpha,3000,0\nbeta,3000,0\n");
  const auto streams = RequestGenerator::from_trace(path).value();
  ASSERT_EQ(streams.size(), 2u);

  ClusterOptions opts;
  opts.hosts = 2;
  opts.host_options.max_lane_queue = 16;
  ClusterEngine cluster(opts);
  for (const TraceStream& s : streams) {
    FunctionSpec spec = workloads::all_functions()[0];
    spec.name = s.function;
    ASSERT_TRUE(cluster
                    .add(FunctionRegistration(std::move(spec))
                             .policy(PolicyKind::kToss)
                             .toss(fast_toss())
                             .seed(3),
                         s.requests)
                    .ok());
  }
  const ClusterReport report = cluster.run(2).value();
  EXPECT_EQ(report.total_invocations() + report.total_shed(), 8u);
  ASSERT_NE(report.find("alpha"), nullptr);
  ASSERT_NE(report.find("beta"), nullptr);
}

}  // namespace
}  // namespace toss
