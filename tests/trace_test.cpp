// Tests for src/trace: burst traces, page access counts, regions and the
// working-set trackers.
#include <gtest/gtest.h>

#include "trace/burst.hpp"
#include "trace/pattern.hpp"
#include "trace/region.hpp"
#include "trace/working_set.hpp"

namespace toss {
namespace {

BurstTrace two_burst_trace() {
  BurstTrace t;
  t.push_back(AccessBurst{0, 8, 800, Pattern::kSequential, 0.0, 0.0});
  t.push_back(AccessBurst{16, 4, 400, Pattern::kRandom, 0.5, 0.0});
  return t;
}

TEST(BurstTrace, TotalsAndFootprint) {
  const BurstTrace t = two_burst_trace();
  EXPECT_EQ(t.total_accesses(), 1200u);
  EXPECT_EQ(t.footprint_pages(32), 12u);
  EXPECT_EQ(t.max_page_end(), 20u);
}

TEST(BurstTrace, OverlappingBurstsCountedOnceInFootprint) {
  BurstTrace t;
  t.push_back(AccessBurst{0, 10, 100, Pattern::kSequential, 0.0, 0.0});
  t.push_back(AccessBurst{5, 10, 100, Pattern::kSequential, 0.0, 0.0});
  EXPECT_EQ(t.footprint_pages(32), 15u);
}

TEST(BurstTrace, AccumulateCounts) {
  const BurstTrace t = two_burst_trace();
  PageAccessCounts counts(32);
  t.accumulate_counts(counts);
  EXPECT_EQ(counts.total_accesses(), 1200u);
  EXPECT_EQ(counts.at(0), 100u);   // 800 uniform over 8 pages
  EXPECT_EQ(counts.at(16), 100u);  // 400 uniform over 4 pages
  EXPECT_EQ(counts.at(10), 0u);
}

TEST(BurstTrace, TimeUnderPlacementConsistent) {
  const SystemConfig cfg = SystemConfig::paper_default();
  AccessCostModel model(cfg);
  const BurstTrace t = two_burst_trace();
  PagePlacement fast(32, tier_index(0)), slow(32, tier_index(1));
  EXPECT_NEAR(t.time_under(model, fast), t.time_uniform(model, tier_index(0)),
              1e-6);
  EXPECT_NEAR(t.time_under(model, slow), t.time_uniform(model, tier_index(1)),
              1e-6);
  EXPECT_GT(t.time_under(model, slow), t.time_under(model, fast));
}

TEST(PageAccessCounts, MergeMaxIdempotent) {
  PageAccessCounts a(8), b(8);
  a.set(0, 5);
  b.set(0, 3);
  b.set(1, 7);
  a.merge_max(b);
  EXPECT_EQ(a.at(0), 5u);
  EXPECT_EQ(a.at(1), 7u);
  const PageAccessCounts before = a;
  a.merge_max(b);  // merging the same record again changes nothing
  EXPECT_EQ(a, before);
}

TEST(PageAccessCounts, MergeSumAdds) {
  PageAccessCounts a(4), b(4);
  a.set(2, 5);
  b.set(2, 3);
  a.merge_sum(b);
  EXPECT_EQ(a.at(2), 8u);
}

TEST(PageAccessCounts, NormalizedDistance) {
  PageAccessCounts a(4), b(4);
  a.set(0, 100);
  b.set(0, 100);
  EXPECT_DOUBLE_EQ(a.normalized_distance(b), 0.0);
  b.set(1, 50);
  EXPECT_DOUBLE_EQ(a.normalized_distance(b), 0.5);
}

TEST(PageAccessCounts, TouchedPages) {
  PageAccessCounts c(10);
  c.set(3, 1);
  c.set(7, 9);
  EXPECT_EQ(c.touched_pages(), 2u);
  EXPECT_EQ(c.total_accesses(), 10u);
}

TEST(Regions, FromCountsCoversSpace) {
  PageAccessCounts c(10);
  c.set(2, 5);
  c.set(3, 5);
  c.set(7, 9);
  const RegionList regions = regions_from_counts(c);
  EXPECT_TRUE(regions_cover_space(regions, 10));
  // 0-1 (0), 2-3 (5), 4-6 (0), 7 (9), 8-9 (0)
  ASSERT_EQ(regions.size(), 5u);
  EXPECT_EQ(regions[1].page_begin, 2u);
  EXPECT_EQ(regions[1].page_count, 2u);
  EXPECT_EQ(regions[1].accesses, 5u);
}

TEST(Regions, MergeSimilarRespectsThreshold) {
  RegionList regions{{0, 2, 100}, {2, 2, 150}, {4, 2, 400}};
  const RegionList merged = merge_similar_regions(regions, 100);
  ASSERT_EQ(merged.size(), 2u);  // 100/150 merge (diff 50 < 100); 400 apart
  EXPECT_EQ(merged[0].page_count, 4u);
  EXPECT_EQ(merged[0].accesses, 125u);  // page-weighted mean
  EXPECT_TRUE(regions_cover_space(merged, 6));
}

TEST(Regions, MergeNeverMixesZeroWithNonzero) {
  RegionList regions{{0, 2, 0}, {2, 2, 50}};
  const RegionList merged = merge_similar_regions(regions, 100);
  ASSERT_EQ(merged.size(), 2u);  // 0 vs 50 differ by <100 but must not merge
}

TEST(Regions, MergeNonAdjacentNotMerged) {
  RegionList regions{{0, 2, 100}, {4, 2, 100}};  // gap at 2-3
  const RegionList merged = merge_similar_regions(regions, 100);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(Regions, ZeroNonzeroSplit) {
  RegionList regions{{0, 2, 0}, {2, 2, 5}, {4, 2, 0}};
  EXPECT_EQ(zero_access_regions(regions).size(), 2u);
  EXPECT_EQ(nonzero_access_regions(regions).size(), 1u);
  EXPECT_EQ(regions_total_pages(regions), 6u);
}

TEST(Regions, CoverSpaceRejectsGapsAndOverlap) {
  EXPECT_FALSE(regions_cover_space({{0, 2, 0}, {3, 2, 0}}, 5));   // gap
  EXPECT_FALSE(regions_cover_space({{0, 3, 0}, {2, 3, 0}}, 5));   // overlap
  EXPECT_FALSE(regions_cover_space({{0, 3, 0}}, 5));              // short
  EXPECT_TRUE(regions_cover_space({{0, 3, 0}, {3, 2, 0}}, 5));
}

TEST(WorkingSet, UffdExactFirstTouch) {
  const BurstTrace t = two_burst_trace();
  const WorkingSet ws = uffd_working_set(t, 32);
  EXPECT_EQ(ws.size_pages(), 12u);
  EXPECT_TRUE(ws.contains(0));
  EXPECT_TRUE(ws.contains(19));
  EXPECT_FALSE(ws.contains(10));
  EXPECT_DOUBLE_EQ(ws.fraction(), 12.0 / 32.0);
}

TEST(WorkingSet, MincoreInflatedByReadahead) {
  const BurstTrace t = two_burst_trace();
  const WorkingSet uffd = uffd_working_set(t, 256);
  const WorkingSet mincore = mincore_working_set(t, 256, 32);
  EXPECT_GE(mincore.size_pages(), uffd.size_pages());
  // Every uffd page is also in the mincore set.
  EXPECT_EQ(mincore.missing_from(uffd), 0u);
  // Readahead pulled in pages beyond the true working set.
  EXPECT_GT(uffd.missing_from(mincore), 0u);
}

TEST(WorkingSet, TouchedRanges) {
  WorkingSet ws(16);
  ws.insert(1);
  ws.insert(2);
  ws.insert(7);
  const auto ranges = ws.touched_ranges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<u64, u64>{1, 2}));
  EXPECT_EQ(ranges[1], (std::pair<u64, u64>{7, 1}));
}

TEST(WorkingSet, MissingFrom) {
  WorkingSet a(8), b(8);
  a.insert(0);
  b.insert(0);
  b.insert(1);
  b.insert(2);
  EXPECT_EQ(a.missing_from(b), 2u);
  EXPECT_EQ(b.missing_from(a), 0u);
}

}  // namespace
}  // namespace toss
