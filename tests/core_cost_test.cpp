// Tests for the Equation 1 memory cost model and its N-rung ladder
// generalization, including a brute-force check of the optimizer's per-bin
// rung choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/cost.hpp"
#include "core/merge.hpp"
#include "core/optimizer.hpp"
#include "damon/monitor.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

TEST(Eq1, RawFormula) {
  // SDown * (MB_fast * Cost_fast + MB_slow * Cost_slow)
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.0, 100, 0, 2.5, 1.0), 250.0);
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.0, 0, 100, 2.5, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.2, 50, 50, 2.5, 1.0), 1.2 * 175.0);
}

TEST(Eq1, NormalizedEndpoints) {
  // All fast, no slowdown -> 1. All slow, no slowdown -> 1/ratio = 0.4.
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 0.0, 2.5), 1.0);
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 1.0, 2.5), 0.4);
  EXPECT_DOUBLE_EQ(optimal_normalized_cost(2.5), 0.4);
}

TEST(Eq1, MigrationReducesCostAtSameSlowdown) {
  // The paper's first property: moving MB from fast to slow at the same
  // slowdown lowers total cost.
  for (double f = 0.0; f < 1.0; f += 0.1) {
    EXPECT_GT(normalized_memory_cost(1.1, f, 2.5),
              normalized_memory_cost(1.1, f + 0.1, 2.5));
  }
}

TEST(Eq1, SlowdownRaisesCostAtSamePartitioning) {
  // Second property: same partitioning, more slowdown -> more cost.
  EXPECT_LT(normalized_memory_cost(1.0, 0.5, 2.5),
            normalized_memory_cost(1.3, 0.5, 2.5));
}

TEST(Eq1, WorstCaseNeverExceedsDramPlan) {
  // A function kept fully in DRAM costs exactly the single-tier plan.
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 0.0, 2.5), 1.0);
}

TEST(Eq1, BreakEvenSlowdown) {
  // Fully offloaded, cost reaches 1 again at slowdown = ratio.
  EXPECT_NEAR(normalized_memory_cost(2.5, 1.0, 2.5), 1.0, 1e-12);
  EXPECT_LT(normalized_memory_cost(2.49, 1.0, 2.5), 1.0);
  EXPECT_GT(normalized_memory_cost(2.51, 1.0, 2.5), 1.0);
}

TEST(Eq1, BinRule) {
  // A bin with no slowdown always lowers cost; a huge slowdown never does.
  EXPECT_LT(bin_normalized_cost(0.0, 0.1, 2.5), 1.0);
  EXPECT_GT(bin_normalized_cost(0.5, 0.05, 2.5), 1.0);
  // Boundary: sd such that (1+sd)(1-0.6*fb) == 1.
  const double fb = 0.2;
  const double sd = 1.0 / (1.0 - 0.6 * fb) - 1.0;
  EXPECT_NEAR(bin_normalized_cost(sd, fb, 2.5), 1.0, 1e-12);
}

TEST(Eq1, DifferentCostRatios) {
  // TOSS supports any tier pair; check a CXL-ish 1.5 ratio too.
  EXPECT_NEAR(optimal_normalized_cost(1.5), 2.0 / 3.0, 1e-12);
  EXPECT_GT(normalized_memory_cost(1.0, 1.0, 1.5),
            normalized_memory_cost(1.0, 1.0, 2.5));
}

TEST(Ladder, TwoRungReducesBitIdentically) {
  // The degenerate two-tier ladder must evaluate the exact same
  // floating-point expression as the paper's normalized form — this is the
  // invariant the bit-identical default ledgers rest on.
  for (double sd : {1.0, 1.07, 1.3, 2.5}) {
    for (double frac : {0.0, 0.123456789, 0.5, 0.97, 1.0}) {
      for (double ratio : {1.5, 2.5, 4.0}) {
        EXPECT_EQ(ladder_normalized_cost(sd, {frac}, {ratio}),
                  normalized_memory_cost(sd, frac, ratio));
      }
    }
  }
}

TEST(Ladder, ThreeRungEndpointsAndMonotonicity) {
  // Nothing offloaded: cost = slowdown.
  EXPECT_DOUBLE_EQ(ladder_normalized_cost(1.0, {0.0, 0.0}, {1.8, 3.6}), 1.0);
  // Everything at the deepest rung: cost = slowdown / deepest ratio.
  EXPECT_DOUBLE_EQ(ladder_normalized_cost(1.0, {0.0, 1.0}, {1.8, 3.6}),
                   1.0 / 3.6);
  // Moving bytes one rung deeper at the same slowdown lowers cost.
  EXPECT_GT(ladder_normalized_cost(1.1, {0.5, 0.0}, {1.8, 3.6}),
            ladder_normalized_cost(1.1, {0.0, 0.5}, {1.8, 3.6}));
  // Slowdown scales the whole expression.
  EXPECT_GT(ladder_normalized_cost(1.3, {0.3, 0.3}, {1.8, 3.6}),
            ladder_normalized_cost(1.0, {0.3, 0.3}, {1.8, 3.6}));
}

// ---------------------------------------------------------------------------
// Brute-force enumeration: on a small input the optimizer's chosen per-bin
// rung assignment must be the minimum-cost configuration among everything
// the coldest-first descent sweep can reach.
// ---------------------------------------------------------------------------

class LadderSweepTest : public ::testing::Test {
 protected:
  PageAccessCounts unified_for(const FunctionModel& m) {
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input) {
      const Invocation inv = m.invoke(input, 900);
      unified.merge_max(
          PageAccessCounts::from_trace(inv.trace, m.guest_pages()));
    }
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    return unified;
  }

  // Re-runs the descent sweep by hand and returns the placement of the
  // minimum-cost prefix (strict improvement, like the optimizer).
  PagePlacement brute_force_best(const SystemConfig& cfg,
                                 const std::vector<Bin>& bins,
                                 const RegionList& zeros, u64 guest_pages,
                                 const Invocation& rep) {
    const size_t ranks = cfg.tier_count();
    const std::vector<double> ratios = cfg.rank_cost_ratios();
    BinProfiler profiler(cfg);

    PagePlacement base(guest_pages, tier_index(0));
    for (const Region& r : zeros)
      base.set_range(r.page_begin, r.page_count, cfg.deepest_tier());
    const Nanos base_exec = profiler.warm_exec_ns(rep, base);

    std::vector<size_t> order(bins.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return bins[a].density() < bins[b].density();
    });

    PagePlacement best = base;
    double best_cost = ladder_normalized_cost(
        1.0, base.deep_fractions(ranks), ratios);
    PagePlacement current = base;
    for (size_t pass = 1; pass < ranks; ++pass) {
      for (size_t idx : order) {
        for (const Region& r : bins[idx].regions)
          current.set_range(r.page_begin, r.page_count, tier_index(pass));
        const Nanos exec = profiler.warm_exec_ns(rep, current);
        const double sd =
            base_exec > 0 ? std::max(0.0, exec / base_exec - 1.0) : 0.0;
        const double cost = ladder_normalized_cost(
            1.0 + sd, current.deep_fractions(ranks), ratios);
        if (cost < best_cost) {
          best_cost = cost;
          best = current;
        }
      }
    }
    return best;
  }

  void check_against_brute_force(const SystemConfig& cfg, const char* fn,
                                 int bin_count) {
    const FunctionRegistry reg = FunctionRegistry::table1();
    const FunctionModel& m = *reg.find(fn);
    const PageAccessCounts unified = unified_for(m);
    const RegionList merged = regionize_and_merge(unified);
    const RegionList zeros = zero_access_regions(merged);
    const auto bins =
        pack_equal_access(nonzero_access_regions(merged), bin_count);
    const Invocation rep = m.invoke(3, 900);

    TieringOptions opt;
    opt.bin_count = bin_count;
    const TieringDecision d = choose_placement(
        cfg, bins, zeros, m.guest_pages(), rep, opt);
    const PagePlacement want =
        brute_force_best(cfg, bins, zeros, m.guest_pages(), rep);
    EXPECT_EQ(d.placement, want) << fn << " on " << cfg.tier_count()
                                 << "-tier ladder";

    // Per-bin rung choice is monotone in access density: a colder bin never
    // sits on a faster rung than a hotter one.
    ASSERT_EQ(d.bin_rank.size(), bins.size());
    for (size_t a = 0; a < bins.size(); ++a) {
      for (size_t b = 0; b < bins.size(); ++b) {
        if (bins[a].density() < bins[b].density()) {
          EXPECT_GE(d.bin_rank[a], d.bin_rank[b])
              << "bin " << a << " colder than bin " << b;
        }
      }
    }
  }
};

TEST_F(LadderSweepTest, TwoTierChoiceMatchesBruteForce) {
  check_against_brute_force(SystemConfig::paper_default(), "matmul", 4);
}

TEST_F(LadderSweepTest, ThreeTierChoiceMatchesBruteForce) {
  check_against_brute_force(SystemConfig::cxl_host(), "matmul", 4);
  check_against_brute_force(SystemConfig::cxl_host(), "pagerank", 5);
}

TEST_F(LadderSweepTest, FourTierChoiceMatchesBruteForce) {
  check_against_brute_force(SystemConfig::nvme_host(), "compress", 3);
}

}  // namespace
}  // namespace toss
