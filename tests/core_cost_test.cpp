// Tests for the Equation 1 memory cost model.
#include <gtest/gtest.h>

#include "core/cost.hpp"

namespace toss {
namespace {

TEST(Eq1, RawFormula) {
  // SDown * (MB_fast * Cost_fast + MB_slow * Cost_slow)
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.0, 100, 0, 2.5, 1.0), 250.0);
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.0, 0, 100, 2.5, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(eq1_memory_cost(1.2, 50, 50, 2.5, 1.0), 1.2 * 175.0);
}

TEST(Eq1, NormalizedEndpoints) {
  // All fast, no slowdown -> 1. All slow, no slowdown -> 1/ratio = 0.4.
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 0.0, 2.5), 1.0);
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 1.0, 2.5), 0.4);
  EXPECT_DOUBLE_EQ(optimal_normalized_cost(2.5), 0.4);
}

TEST(Eq1, MigrationReducesCostAtSameSlowdown) {
  // The paper's first property: moving MB from fast to slow at the same
  // slowdown lowers total cost.
  for (double f = 0.0; f < 1.0; f += 0.1) {
    EXPECT_GT(normalized_memory_cost(1.1, f, 2.5),
              normalized_memory_cost(1.1, f + 0.1, 2.5));
  }
}

TEST(Eq1, SlowdownRaisesCostAtSamePartitioning) {
  // Second property: same partitioning, more slowdown -> more cost.
  EXPECT_LT(normalized_memory_cost(1.0, 0.5, 2.5),
            normalized_memory_cost(1.3, 0.5, 2.5));
}

TEST(Eq1, WorstCaseNeverExceedsDramPlan) {
  // A function kept fully in DRAM costs exactly the single-tier plan.
  EXPECT_DOUBLE_EQ(normalized_memory_cost(1.0, 0.0, 2.5), 1.0);
}

TEST(Eq1, BreakEvenSlowdown) {
  // Fully offloaded, cost reaches 1 again at slowdown = ratio.
  EXPECT_NEAR(normalized_memory_cost(2.5, 1.0, 2.5), 1.0, 1e-12);
  EXPECT_LT(normalized_memory_cost(2.49, 1.0, 2.5), 1.0);
  EXPECT_GT(normalized_memory_cost(2.51, 1.0, 2.5), 1.0);
}

TEST(Eq1, BinRule) {
  // A bin with no slowdown always lowers cost; a huge slowdown never does.
  EXPECT_LT(bin_normalized_cost(0.0, 0.1, 2.5), 1.0);
  EXPECT_GT(bin_normalized_cost(0.5, 0.05, 2.5), 1.0);
  // Boundary: sd such that (1+sd)(1-0.6*fb) == 1.
  const double fb = 0.2;
  const double sd = 1.0 / (1.0 - 0.6 * fb) - 1.0;
  EXPECT_NEAR(bin_normalized_cost(sd, fb, 2.5), 1.0, 1e-12);
}

TEST(Eq1, DifferentCostRatios) {
  // TOSS supports any tier pair; check a CXL-ish 1.5 ratio too.
  EXPECT_NEAR(optimal_normalized_cost(1.5), 2.0 / 3.0, 1e-12);
  EXPECT_GT(normalized_memory_cost(1.0, 1.0, 1.5),
            normalized_memory_cost(1.0, 1.0, 2.5));
}

}  // namespace
}  // namespace toss
