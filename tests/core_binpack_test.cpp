// Tests for equal-access bin packing, including parameterized sweeps over
// bin counts and the greedy/equal-size alternatives.
#include <gtest/gtest.h>

#include <numeric>

#include "core/binpack.hpp"
#include "util/rng.hpp"

namespace toss {
namespace {

RegionList random_regions(u64 seed, size_t n, u64 max_pages, u64 max_count) {
  Rng rng(seed);
  RegionList regions;
  u64 begin = 0;
  for (size_t i = 0; i < n; ++i) {
    const u64 pages = 1 + rng.next_below(max_pages);
    const u64 count = 1 + rng.next_below(max_count);
    regions.push_back(Region{begin, pages, count});
    begin += pages;
  }
  return regions;
}

u64 total_mass(const RegionList& regions) {
  return std::accumulate(regions.begin(), regions.end(), u64{0},
                         [](u64 a, const Region& r) {
                           return a + r.total_accesses();
                         });
}

TEST(SplitLargeRegions, ChunksBoundedAndMassPreserved) {
  const RegionList regions{{0, 1000, 50}, {1000, 10, 3}};
  const RegionList split = split_large_regions(regions, 5000);
  for (const Region& r : split) {
    EXPECT_LE(r.total_accesses(), 5000u);
  }
  EXPECT_EQ(total_mass(split), total_mass(regions));
  EXPECT_EQ(regions_total_pages(split), regions_total_pages(regions));
  // Chunks of the big region stay contiguous and ordered.
  u64 next = 0;
  for (const Region& r : split) {
    EXPECT_EQ(r.page_begin, next);
    next = r.page_end();
  }
}

TEST(SplitLargeRegions, ZeroRegionsPassThrough) {
  const RegionList regions{{0, 1000000, 0}};
  const RegionList split = split_large_regions(regions, 10);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0], regions[0]);
}

class BinPackSweep : public ::testing::TestWithParam<int> {};

TEST_P(BinPackSweep, EqualAccessMassBalanced) {
  const int k = GetParam();
  const RegionList regions = random_regions(101, 200, 64, 500);
  const auto bins = pack_equal_access(regions, k);
  ASSERT_EQ(bins.size(), static_cast<size_t>(k));
  EXPECT_TRUE(bins_cover_regions(bins, regions));
  const double target =
      static_cast<double>(total_mass(regions)) / static_cast<double>(k);
  for (const Bin& b : bins) {
    EXPECT_GT(static_cast<double>(b.access_mass), 0.2 * target);
    EXPECT_LT(static_cast<double>(b.access_mass), 2.5 * target);
  }
}

TEST_P(BinPackSweep, DensityOrderedAcrossBins) {
  const int k = GetParam();
  const RegionList regions = random_regions(202, 300, 32, 1000);
  const auto bins = pack_equal_access(regions, k);
  // Bin i's max region density <= bin i+1's min (allowing equal counts to
  // straddle the boundary).
  for (size_t i = 0; i + 1 < bins.size(); ++i) {
    if (bins[i].regions.empty() || bins[i + 1].regions.empty()) continue;
    u64 max_i = 0, min_next = ~u64{0};
    for (const Region& r : bins[i].regions)
      max_i = std::max(max_i, r.accesses);
    for (const Region& r : bins[i + 1].regions)
      min_next = std::min(min_next, r.accesses);
    EXPECT_LE(max_i, min_next) << "bins " << i << "," << i + 1;
  }
}

TEST_P(BinPackSweep, GreedyVariantBalancesToo) {
  const int k = GetParam();
  const RegionList regions = random_regions(303, 200, 64, 500);
  const auto bins = pack_equal_access_greedy(regions, k);
  EXPECT_TRUE(bins_cover_regions(bins, regions));
  const double target =
      static_cast<double>(total_mass(regions)) / static_cast<double>(k);
  for (const Bin& b : bins)
    EXPECT_LT(static_cast<double>(b.access_mass), 2.0 * target);
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BinPackSweep,
                         ::testing::Values(2, 4, 10, 16));

TEST(BinPack, EmptyInputGivesEmptyBins) {
  const auto bins = pack_equal_access({}, 10);
  ASSERT_EQ(bins.size(), 10u);
  for (const Bin& b : bins) EXPECT_EQ(b.pages, 0u);
}

TEST(BinPack, SingleHugeUniformRegionSplitsAcrossBins) {
  // One giant uniform region (e.g. pagerank's graph) must still fill all
  // bins with ~equal mass instead of landing in one.
  const RegionList regions{{0, 100000, 40}};
  const auto bins = pack_equal_access(regions, 10);
  EXPECT_TRUE(bins_cover_regions(bins, regions));
  for (const Bin& b : bins) EXPECT_GT(b.pages, 5000u);
}

TEST(BinPack, EqualSizeStrawmanDisproportionalAccess) {
  // The paper's argument for equal-access bins: equal-size bins get wildly
  // disproportional access mass when the pattern is skewed.
  RegionList skewed;
  // 10% of pages carry 90% of accesses.
  skewed.push_back(Region{0, 100, 900});
  skewed.push_back(Region{100, 900, 11});
  const auto by_size = pack_equal_size(skewed, 10);
  const auto by_access = pack_equal_access(skewed, 10);
  auto imbalance = [](const std::vector<Bin>& bins) {
    u64 lo = ~u64{0}, hi = 0;
    for (const Bin& b : bins) {
      lo = std::min(lo, b.access_mass);
      hi = std::max(hi, b.access_mass);
    }
    return static_cast<double>(hi) / std::max<double>(1.0, static_cast<double>(lo));
  };
  EXPECT_GT(imbalance(by_size), imbalance(by_access));
}

TEST(BinPack, BinDensityHelper) {
  Bin b;
  b.pages = 10;
  b.access_mass = 100;
  EXPECT_DOUBLE_EQ(b.density(), 10.0);
  EXPECT_EQ(b.bytes(), 10 * kPageSize);
  EXPECT_DOUBLE_EQ(Bin{}.density(), 0.0);
}

}  // namespace
}  // namespace toss
