// Contracts + validators: validate_layout()/validate_bins() must reject
// deliberately corrupted inputs with a diagnostic, the contract macros
// must abort in checked builds and be inert otherwise, and the lock-rank
// detector must flag out-of-order acquisition. Death tests arm only when
// TOSS_CHECKED is on (the same binary compiles in both modes; the ifdef'd
// halves prove unchecked behavior is unchanged).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/binpack.hpp"
#include "platform/concurrency.hpp"
#include "util/contracts.hpp"
#include "vmm/tiered_snapshot.hpp"

namespace toss {
namespace {

// ---------------------------------------------------------------------------
// validate_layout
// ---------------------------------------------------------------------------

MemoryLayoutFile good_layout() {
  // 100 guest pages: [0,40) fast, [40,90) slow, [90,100) fast.
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 40},
      {tier_index(1), 0, 40, 50},
      {tier_index(0), 40, 90, 10},
  };
  return MemoryLayoutFile(100, std::move(entries));
}

TEST(ValidateLayout, AcceptsWellFormedLayout) {
  EXPECT_EQ(validate_layout(good_layout()), std::nullopt);
  EXPECT_TRUE(good_layout().valid());
}

TEST(ValidateLayout, RejectsOverlappingRegions) {
  // Second entry starts inside the first.
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 40},
      {tier_index(1), 0, 30, 70},
  };
  const MemoryLayoutFile bad(100, std::move(entries));
  const auto err = validate_layout(bad);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overlaps"), std::string::npos) << *err;
  EXPECT_FALSE(bad.valid());
}

TEST(ValidateLayout, RejectsGaps) {
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 40},
      {tier_index(1), 0, 50, 50},
  };
  const auto err = validate_layout(MemoryLayoutFile(100, std::move(entries)));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("gap"), std::string::npos) << *err;
}

TEST(ValidateLayout, RejectsEmptyRegions) {
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 100},
      {tier_index(1), 0, 100, 0},
  };
  const auto err = validate_layout(MemoryLayoutFile(100, std::move(entries)));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("empty"), std::string::npos) << *err;
}

TEST(ValidateLayout, RejectsNonContiguousTierFileOffsets) {
  // Fast tier file offsets must be 0 then 40, not 0 then 50.
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 40},
      {tier_index(1), 0, 40, 50},
      {tier_index(0), 50, 90, 10},
  };
  const auto err = validate_layout(MemoryLayoutFile(100, std::move(entries)));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("not contiguous"), std::string::npos) << *err;
}

TEST(ValidateLayout, RejectsWrongTotalSize) {
  std::vector<LayoutEntry> entries{{tier_index(0), 0, 0, 90}};
  const auto err = validate_layout(MemoryLayoutFile(100, std::move(entries)));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("sum to"), std::string::npos) << *err;
}

TEST(ValidateLayout, DeserializeRejectsCorruptedLayout) {
  // Serialize a good layout, then corrupt an entry's page count so regions
  // overlap; deserialize must refuse it.
  std::vector<u8> bytes = good_layout().serialize();
  // Layout wire format: magic, guest_pages, count, then 4 u64 per entry
  // (tier, file_page, guest_page, page_count). Bump entry 0's page_count.
  const size_t entry0_page_count = (3 + 3) * 8;
  bytes[entry0_page_count] = 200;
  EXPECT_EQ(MemoryLayoutFile::deserialize(bytes), std::nullopt);
}

// ---------------------------------------------------------------------------
// validate_bins
// ---------------------------------------------------------------------------

RegionList sample_regions() {
  return RegionList{
      {0, 64, 3},    // 64 pages x 3 accesses/page
      {100, 16, 40}, // hot
      {200, 512, 1}, // cold bulk
      {800, 8, 90},  // hottest
  };
}

TEST(ValidateBins, AcceptsAllPackers) {
  const RegionList regions = sample_regions();
  for (int bins : {1, 4, 10}) {
    EXPECT_EQ(validate_bins(pack_equal_access(regions, bins), regions),
              std::nullopt);
    EXPECT_EQ(validate_bins(pack_equal_access_greedy(regions, bins), regions),
              std::nullopt);
    EXPECT_EQ(validate_bins(pack_equal_size(regions, bins), regions),
              std::nullopt);
  }
}

TEST(ValidateBins, RejectsCorruptedBinCache) {
  const RegionList regions = sample_regions();
  std::vector<Bin> bins = pack_equal_access(regions, 4);
  bins[1].access_mass += 1;  // cached mass no longer matches its regions
  const auto err = validate_bins(bins, regions);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("bin 1"), std::string::npos) << *err;
}

TEST(ValidateBins, RejectsDroppedRegion) {
  const RegionList regions = sample_regions();
  std::vector<Bin> bins = pack_equal_access(regions, 4);
  for (Bin& b : bins) {
    if (b.regions.empty()) continue;
    b.pages -= b.regions.back().page_count;
    b.access_mass -= b.regions.back().total_accesses();
    b.regions.pop_back();
    break;
  }
  const auto err = validate_bins(bins, regions);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("not conserved"), std::string::npos) << *err;
}

TEST(ValidateBins, RejectsDuplicatedMass) {
  const RegionList regions = sample_regions();
  std::vector<Bin> bins = pack_equal_access(regions, 4);
  Bin& b = bins[0];
  b.regions.push_back(b.regions.empty() ? Region{900, 4, 2} : b.regions[0]);
  b.pages += b.regions.back().page_count;
  b.access_mass += b.regions.back().total_accesses();
  EXPECT_TRUE(validate_bins(bins, regions).has_value());
}

// ---------------------------------------------------------------------------
// Lock-rank detector
// ---------------------------------------------------------------------------

TEST(LockRank, InOrderAcquisitionIsClean) {
  RankedMutex low(LockRank::kEngineScheduler, "low");
  RankedMutex high(LockRank::kMetricsRegistry, "high");
  std::lock_guard<RankedMutex> l1(low);
  EXPECT_EQ(detail::lock_rank_violation(high), std::nullopt);
}

TEST(LockRank, ViolationDiagnosticNamesBothLocks) {
#ifdef TOSS_CHECKED
  RankedMutex low(LockRank::kEngineScheduler, "engine-lock");
  RankedMutex high(LockRank::kMetricsRegistry, "metrics-lock");
  std::lock_guard<RankedMutex> l1(high);
  const auto err = detail::lock_rank_violation(low);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("engine-lock"), std::string::npos) << *err;
  EXPECT_NE(err->find("metrics-lock"), std::string::npos) << *err;
  // Same-rank acquisition (potential ABBA) is also a violation.
  RankedMutex peer(LockRank::kMetricsRegistry, "peer");
  EXPECT_TRUE(detail::lock_rank_violation(peer).has_value());
#else
  // Unchecked builds do no tracking: violations are never observed.
  RankedMutex low(LockRank::kEngineScheduler, "engine-lock");
  RankedMutex high(LockRank::kMetricsRegistry, "metrics-lock");
  std::lock_guard<RankedMutex> l1(high);
  EXPECT_EQ(detail::lock_rank_violation(low), std::nullopt);
#endif
}

// ---------------------------------------------------------------------------
// Contract macros: checked builds abort, unchecked builds are inert.
// ---------------------------------------------------------------------------

MemoryLayoutFile overlapping_layout() {
  std::vector<LayoutEntry> entries{
      {tier_index(0), 0, 0, 60},
      {tier_index(1), 0, 30, 70},
  };
  return MemoryLayoutFile(100, std::move(entries));
}

#ifdef TOSS_CHECKED

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, AssertAbortsWithDiagnostic) {
  EXPECT_DEATH(TOSS_ASSERT(1 == 2, "math broke"),
               "invariant failed: 1 == 2 \\(math broke\\)");
}

TEST(ContractsDeathTest, ValidateAbortsOnOverlappingLayout) {
  const MemoryLayoutFile bad = overlapping_layout();
  EXPECT_DEATH(TOSS_VALIDATE(validate_layout(bad)), "overlaps");
}

TEST(ContractsDeathTest, ValidateAbortsOnUnconservedBins) {
  const RegionList regions = sample_regions();
  std::vector<Bin> bins = pack_equal_access(regions, 4);
  bins[2].access_mass += 5;
  EXPECT_DEATH(TOSS_VALIDATE(validate_bins(bins, regions)), "bin 2");
}

TEST(ContractsDeathTest, LockRankViolationAborts) {
  EXPECT_DEATH(
      {
        RankedMutex low(LockRank::kEngineScheduler, "engine-lock");
        RankedMutex high(LockRank::kMetricsRegistry, "metrics-lock");
        std::lock_guard<RankedMutex> l1(high);
        // Deliberate inversion: the static lock-rank pass flags exactly
        // what this death test expects the runtime detector to catch.
        std::lock_guard<RankedMutex> l2(low);  // toss-lint: allow(lock-rank)
      },
      "lock-rank violation");
}

TEST(Contracts, EnabledReportsChecked) {
  EXPECT_TRUE(detail::contracts_enabled());
}

#else  // !TOSS_CHECKED

TEST(Contracts, MacrosAreInertWhenUnchecked) {
  // Same expressions as the checked-build death tests: nothing may abort,
  // and the condition must not even be evaluated.
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return false;
  };
  TOSS_ASSERT(count(), "never evaluated");
  TOSS_REQUIRE(count());
  TOSS_ENSURE(count());
  TOSS_VALIDATE(validate_layout(overlapping_layout()));
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(detail::contracts_enabled());
}

TEST(Contracts, UncheckedBehaviorUnchanged) {
  // Release-unchecked semantics: a malformed layout is still *reported* by
  // the validator (it just doesn't abort), and valid() still returns false.
  const MemoryLayoutFile bad = overlapping_layout();
  EXPECT_TRUE(validate_layout(bad).has_value());
  EXPECT_FALSE(bad.valid());
}

#endif  // TOSS_CHECKED

// ---------------------------------------------------------------------------
// Step IV seam: TieredSnapshot::build still produces a valid layout (the
// checked-build TOSS_VALIDATE at that seam passes), in both modes.
// ---------------------------------------------------------------------------

TEST(StepIvSeam, BuildProducesValidatedLayout) {
  constexpr u64 kPages = 64;
  const SingleTierSnapshot snap(7, GuestMemory(bytes_for_pages(kPages)),
                                VmState{});
  PagePlacement placement(kPages);
  placement.set_range(16, 32, tier_index(1));
  const TieredSnapshot tiered = TieredSnapshot::build(snap, placement, {1, 2});
  EXPECT_EQ(validate_layout(tiered.layout()), std::nullopt);
  EXPECT_EQ(tiered.layout().pages_in(tier_index(1)), 32u);
}

}  // namespace
}  // namespace toss
