// Property-based sweeps over the whole Table-I suite: system invariants
// that must hold for every function, input and seed.
#include <gtest/gtest.h>

#include "baseline/reap.hpp"
#include "baseline/vanilla.hpp"
#include "core/optimizer.hpp"
#include "core/tierer.hpp"
#include "damon/monitor.hpp"
#include "platform/invoker.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

struct Case {
  int function;
  int input;
};

class SuiteProperty : public ::testing::TestWithParam<Case> {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store{cfg};
  Invoker invoker{cfg, store};
  FunctionRegistry reg = FunctionRegistry::table1();

  const FunctionModel& model() {
    return reg.models()[static_cast<size_t>(GetParam().function)];
  }
  int input() { return GetParam().input; }
};

TEST_P(SuiteProperty, TieredSnapshotRoundTripsForAnyPlacement) {
  const FunctionModel& m = model();
  const Invocation inv = m.invoke(input(), 31);
  const u64 snap_id = invoker.initial_execution(m, inv);
  const SingleTierSnapshot* snap = store.get_single_tier(snap_id);

  // Derive a placement from the invocation's own pattern (hot half fast).
  const PageAccessCounts counts =
      PageAccessCounts::from_trace(inv.trace, m.guest_pages());
  PagePlacement placement(m.guest_pages(), tier_index(1));
  for (u64 p = 0; p < m.guest_pages(); ++p)
    if (counts.at(p) > 20) placement.set(p, tier_index(0));

  const u64 tiered_id = tier_snapshot(store, *snap, placement);
  const TieredSnapshot* tiered = store.get_tiered(tiered_id);
  ASSERT_NE(tiered, nullptr);
  EXPECT_TRUE(tiered->layout().valid());
  EXPECT_EQ(tiered->materialize(), snap->materialize());
  EXPECT_NEAR(tiered->layout().slow_fraction(), placement.slow_fraction(),
              1e-9);
}

TEST_P(SuiteProperty, WorkingSetContainsEveryTouchedPage) {
  const FunctionModel& m = model();
  const Invocation inv = m.invoke(input(), 33);
  const WorkingSet ws = uffd_working_set(inv.trace, m.guest_pages());
  EXPECT_EQ(ws.size_pages(), inv.trace.footprint_pages(m.guest_pages()));
}

TEST_P(SuiteProperty, DamonRecordCoversGuestAndPreservesZeroes) {
  const FunctionModel& m = model();
  const Invocation inv = m.invoke(input(), 35);
  const PageAccessCounts counts =
      PageAccessCounts::from_trace(inv.trace, m.guest_pages());
  Rng rng(99);
  const DamonOutput out =
      DamonMonitor().monitor(counts, ms(50), rng);
  ASSERT_TRUE(out.record.valid());
  EXPECT_EQ(out.record.num_pages(), m.guest_pages());
  const PageAccessCounts est = out.record.to_counts();
  u64 disagree = 0;
  for (u64 p = 0; p < m.guest_pages(); ++p)
    if ((est.at(p) == 0) != (counts.at(p) == 0)) ++disagree;
  // The touched/untouched boundary may blur only at region granularity.
  EXPECT_LT(disagree,
            m.guest_pages() / 50 + 16 * DamonConfig().min_region_pages);
}

TEST_P(SuiteProperty, VanillaInvocationTimingSane) {
  const FunctionModel& m = model();
  const Invocation inv = m.invoke(input(), 37);
  const u64 snap_id = invoker.initial_execution(m, inv);
  VanillaPolicy policy(store, snap_id);
  const Invocation run = m.invoke(input(), 38);
  const InvocationResult r = invoker.invoke(policy, run);
  // Cold lazy restore must fault in exactly the touched pages.
  EXPECT_EQ(r.exec.minor_faults + r.exec.major_faults, r.exec.touched_pages);
  EXPECT_GT(r.exec.exec_ns, run.cpu_ns);
  EXPECT_GE(r.exec.exec_ns, r.exec.mem_ns + r.exec.cpu_ns);
  EXPECT_GT(r.setup.setup_ns, 0);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (int f = 0; f < 10; ++f)
    for (int i = 0; i < 4; ++i) cases.push_back(Case{f, i});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctionInputPairs, SuiteProperty, ::testing::ValuesIn(all_cases()),
    [](const auto& info) {
      return FunctionRegistry::table1()
                 .models()[static_cast<size_t>(info.param.function)]
                 .name() +
             "_input" + std::to_string(info.param.input + 1);
    });

class TossDecisionProperty : public ::testing::TestWithParam<int> {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();
};

TEST_P(TossDecisionProperty, DecisionInvariants) {
  const FunctionModel& m =
      reg.models()[static_cast<size_t>(GetParam())];
  const double scale = DamonConfig{}.count_scale;
  PageAccessCounts unified(m.guest_pages());
  for (int input = 0; input < kNumInputs; ++input)
    unified.merge_max(PageAccessCounts::from_trace(
        m.invoke(input, 900 + static_cast<u64>(input)).trace,
        m.guest_pages()));
  for (u64 p = 0; p < unified.num_pages(); ++p)
    unified.set(p,
                static_cast<u64>(static_cast<double>(unified.at(p)) * scale));

  const TieringDecision d =
      analyze_pattern(cfg, unified, m.invoke(3, 903), {});

  // Normalized cost within [optimal, DRAM-only].
  EXPECT_GE(d.normalized_cost, optimal_normalized_cost(cfg.cost_ratio()) - 1e-9);
  EXPECT_LE(d.normalized_cost, 1.0 + 1e-9);
  // Fractions are fractions.
  EXPECT_GE(d.slow_fraction, 0.0);
  EXPECT_LE(d.slow_fraction, 1.0);
  EXPECT_GE(d.expected_slowdown, 0.0);
  // Zero-access pages are always offloaded: slow fraction at least the
  // untouched share.
  const double untouched =
      1.0 - static_cast<double>(unified.touched_pages()) /
                static_cast<double>(unified.num_pages());
  EXPECT_GE(d.slow_fraction, untouched - 0.02);
  // Cost consistency with the formula.
  EXPECT_NEAR(d.normalized_cost,
              normalized_memory_cost(1.0 + d.expected_slowdown,
                                     d.slow_fraction, cfg.cost_ratio()),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllTen, TossDecisionProperty, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return FunctionRegistry::table1()
                               .models()[static_cast<size_t>(info.param)]
                               .name();
                         });

}  // namespace
}  // namespace toss
