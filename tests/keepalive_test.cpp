// Tests for the Greedy-Dual keep-alive cache (Section VI-A integration).
#include <gtest/gtest.h>

#include "platform/keepalive.hpp"

namespace toss {
namespace {

KeepAliveConfig small_pool(u64 dram_mb, u64 slow_mb = 64 * 1024) {
  KeepAliveConfig cfg;
  cfg.dram_capacity_bytes = dram_mb * kMiB;
  cfg.slow_capacity_bytes = slow_mb * kMiB;
  return cfg;
}

TEST(KeepAlive, HitAfterInsert) {
  KeepAliveCache cache(small_pool(1024));
  EXPECT_FALSE(cache.lookup("f"));
  EXPECT_TRUE(cache.insert("f", 128 * kMiB, 0, ms(100)));
  EXPECT_TRUE(cache.lookup("f"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(KeepAlive, CapacityEnforced) {
  KeepAliveCache cache(small_pool(256));
  EXPECT_TRUE(cache.insert("a", 128 * kMiB, 0, ms(100)));
  EXPECT_TRUE(cache.insert("b", 128 * kMiB, 0, ms(100)));
  EXPECT_EQ(cache.warm_count(), 2u);
  EXPECT_TRUE(cache.insert("c", 128 * kMiB, 0, ms(100)));
  EXPECT_EQ(cache.warm_count(), 2u);  // someone was evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.dram_in_use(), 256 * kMiB);
}

TEST(KeepAlive, EvictsLowestPriority) {
  KeepAliveCache cache(small_pool(256));
  // "hot" has a high cold cost and gets hit repeatedly; "cold" does not.
  cache.insert("hot", 128 * kMiB, 0, ms(500));
  cache.insert("cold", 128 * kMiB, 0, ms(10));
  cache.lookup("hot");
  cache.lookup("hot");
  cache.insert("new", 128 * kMiB, 0, ms(100));
  EXPECT_TRUE(cache.contains("hot"));
  EXPECT_FALSE(cache.contains("cold"));
}

TEST(KeepAlive, TieredVmsPinLessDram) {
  // The Section VI-A observation: with 92% of each VM in the slow tier, a
  // DRAM budget that holds 2 DRAM-only VMs holds ~25 tiered VMs.
  KeepAliveCache dram_only(small_pool(2048));
  KeepAliveCache tiered(small_pool(2048));
  int dram_kept = 0, tiered_kept = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string name = "f" + std::to_string(i);
    if (dram_only.insert(name, 1024 * kMiB, 0, ms(300)))
      dram_kept = static_cast<int>(dram_only.warm_count());
    if (tiered.insert(name, 82 * kMiB, 942 * kMiB, ms(300)))
      tiered_kept = static_cast<int>(tiered.warm_count());
  }
  EXPECT_EQ(dram_kept, 2);
  EXPECT_GT(tiered_kept, 20);
}

TEST(KeepAlive, SlowPoolAlsoEnforced) {
  KeepAliveCache cache(small_pool(64 * 1024, 1024));
  EXPECT_TRUE(cache.insert("a", kMiB, 900 * kMiB, ms(100)));
  EXPECT_TRUE(cache.insert("b", kMiB, 900 * kMiB, ms(100)));
  EXPECT_EQ(cache.warm_count(), 1u);  // slow pool forced an eviction
  EXPECT_LE(cache.slow_in_use(), 1024 * kMiB);
}

TEST(KeepAlive, OversizedVmRejected) {
  KeepAliveCache cache(small_pool(256));
  EXPECT_FALSE(cache.insert("huge", kGiB, 0, ms(100)));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.warm_count(), 0u);
}

TEST(KeepAlive, ReinsertReplaces) {
  KeepAliveCache cache(small_pool(1024));
  cache.insert("f", 512 * kMiB, 0, ms(100));
  cache.insert("f", 128 * kMiB, 0, ms(100));
  EXPECT_EQ(cache.warm_count(), 1u);
  EXPECT_EQ(cache.dram_in_use(), 128 * kMiB);
}

TEST(KeepAlive, ExplicitEvict) {
  KeepAliveCache cache(small_pool(1024));
  cache.insert("f", 128 * kMiB, 0, ms(100));
  cache.evict("f");
  EXPECT_FALSE(cache.contains("f"));
  EXPECT_EQ(cache.dram_in_use(), 0u);
  cache.evict("ghost");  // harmless
}

TEST(KeepAlive, EvictionTieBreaksOnFunctionId) {
  // Two entries engineered to identical priority (same size, cold cost,
  // frequency, insertion clock). The victim must be the lexicographically
  // smaller function_id, so eviction order never depends on hash-map
  // iteration order (the determinism contract of DESIGN.md §9).
  KeepAliveCache cache(small_pool(256));
  cache.insert("beta", 128 * kMiB, 0, ms(100));
  cache.insert("alpha", 128 * kMiB, 0, ms(100));
  cache.insert("gamma", 128 * kMiB, 0, ms(100));  // forces one eviction
  EXPECT_FALSE(cache.contains("alpha"));
  EXPECT_TRUE(cache.contains("beta"));
  EXPECT_TRUE(cache.contains("gamma"));
}

TEST(KeepAlive, PredictedReuseBoostsPriority) {
  // Prewarm handshake: a warm VM whose next arrival is predicted soon gets
  // an urgency boost and outlives an otherwise-identical peer with no
  // prediction.
  KeepAliveConfig cfg = small_pool(256);
  cfg.urgency_halflife_ns = sec(1);
  KeepAliveCache cache(cfg);
  cache.insert("soon", 128 * kMiB, 0, ms(100), /*predicted_reuse_gap_ns=*/0);
  cache.insert("never", 128 * kMiB, 0, ms(100));  // no prediction
  cache.insert("new", 128 * kMiB, 0, ms(100));
  EXPECT_TRUE(cache.contains("soon"));
  EXPECT_FALSE(cache.contains("never"));
}

TEST(KeepAlive, AgingLetsNewEntriesWin) {
  // Greedy-Dual aging: after enough evictions raise the clock, a fresh
  // entry can outrank a stale high-cost one.
  KeepAliveCache cache(small_pool(256));
  cache.insert("stale", 128 * kMiB, 0, ms(50));
  for (int i = 0; i < 10; ++i)
    cache.insert("churn" + std::to_string(i), 128 * kMiB, 0, ms(400));
  EXPECT_FALSE(cache.contains("stale"));
}

}  // namespace
}  // namespace toss
