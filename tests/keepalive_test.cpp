// Tests for the Greedy-Dual keep-alive cache (Section VI-A integration).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "platform/keepalive.hpp"

namespace toss {
namespace {

KeepAliveConfig small_pool(u64 dram_mb, u64 slow_mb = 64 * 1024) {
  KeepAliveConfig cfg;
  cfg.dram_capacity_bytes = dram_mb * kMiB;
  cfg.slow_capacity_bytes = slow_mb * kMiB;
  return cfg;
}

TEST(KeepAlive, HitAfterInsert) {
  KeepAliveCache cache(small_pool(1024));
  EXPECT_FALSE(cache.lookup("f"));
  EXPECT_TRUE(cache.insert("f", 128 * kMiB, 0, ms(100)));
  EXPECT_TRUE(cache.lookup("f"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(KeepAlive, CapacityEnforced) {
  KeepAliveCache cache(small_pool(256));
  EXPECT_TRUE(cache.insert("a", 128 * kMiB, 0, ms(100)));
  EXPECT_TRUE(cache.insert("b", 128 * kMiB, 0, ms(100)));
  EXPECT_EQ(cache.warm_count(), 2u);
  EXPECT_TRUE(cache.insert("c", 128 * kMiB, 0, ms(100)));
  EXPECT_EQ(cache.warm_count(), 2u);  // someone was evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.dram_in_use(), 256 * kMiB);
}

TEST(KeepAlive, EvictsLowestPriority) {
  KeepAliveCache cache(small_pool(256));
  // "hot" has a high cold cost and gets hit repeatedly; "cold" does not.
  cache.insert("hot", 128 * kMiB, 0, ms(500));
  cache.insert("cold", 128 * kMiB, 0, ms(10));
  cache.lookup("hot");
  cache.lookup("hot");
  cache.insert("new", 128 * kMiB, 0, ms(100));
  EXPECT_TRUE(cache.contains("hot"));
  EXPECT_FALSE(cache.contains("cold"));
}

TEST(KeepAlive, TieredVmsPinLessDram) {
  // The Section VI-A observation: with 92% of each VM in the slow tier, a
  // DRAM budget that holds 2 DRAM-only VMs holds ~25 tiered VMs.
  KeepAliveCache dram_only(small_pool(2048));
  KeepAliveCache tiered(small_pool(2048));
  int dram_kept = 0, tiered_kept = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string name = "f" + std::to_string(i);
    if (dram_only.insert(name, 1024 * kMiB, 0, ms(300)))
      dram_kept = static_cast<int>(dram_only.warm_count());
    if (tiered.insert(name, 82 * kMiB, 942 * kMiB, ms(300)))
      tiered_kept = static_cast<int>(tiered.warm_count());
  }
  EXPECT_EQ(dram_kept, 2);
  EXPECT_GT(tiered_kept, 20);
}

TEST(KeepAlive, SlowPoolAlsoEnforced) {
  KeepAliveCache cache(small_pool(64 * 1024, 1024));
  EXPECT_TRUE(cache.insert("a", kMiB, 900 * kMiB, ms(100)));
  EXPECT_TRUE(cache.insert("b", kMiB, 900 * kMiB, ms(100)));
  EXPECT_EQ(cache.warm_count(), 1u);  // slow pool forced an eviction
  EXPECT_LE(cache.slow_in_use(), 1024 * kMiB);
}

TEST(KeepAlive, OversizedVmRejected) {
  KeepAliveCache cache(small_pool(256));
  EXPECT_FALSE(cache.insert("huge", kGiB, 0, ms(100)));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.warm_count(), 0u);
}

TEST(KeepAlive, ReinsertReplaces) {
  KeepAliveCache cache(small_pool(1024));
  cache.insert("f", 512 * kMiB, 0, ms(100));
  cache.insert("f", 128 * kMiB, 0, ms(100));
  EXPECT_EQ(cache.warm_count(), 1u);
  EXPECT_EQ(cache.dram_in_use(), 128 * kMiB);
}

TEST(KeepAlive, ExplicitEvict) {
  KeepAliveCache cache(small_pool(1024));
  cache.insert("f", 128 * kMiB, 0, ms(100));
  cache.evict("f");
  EXPECT_FALSE(cache.contains("f"));
  EXPECT_EQ(cache.dram_in_use(), 0u);
  cache.evict("ghost");  // harmless
}

TEST(KeepAlive, EvictionTieBreaksOnFunctionId) {
  // Two entries engineered to identical priority (same size, cold cost,
  // frequency, insertion clock). The victim must be the lexicographically
  // smaller function_id, so eviction order never depends on hash-map
  // iteration order (the determinism contract of DESIGN.md §9).
  KeepAliveCache cache(small_pool(256));
  cache.insert("beta", 128 * kMiB, 0, ms(100));
  cache.insert("alpha", 128 * kMiB, 0, ms(100));
  cache.insert("gamma", 128 * kMiB, 0, ms(100));  // forces one eviction
  EXPECT_FALSE(cache.contains("alpha"));
  EXPECT_TRUE(cache.contains("beta"));
  EXPECT_TRUE(cache.contains("gamma"));
}

TEST(KeepAlive, PredictedReuseBoostsPriority) {
  // Prewarm handshake: a warm VM whose next arrival is predicted soon gets
  // an urgency boost and outlives an otherwise-identical peer with no
  // prediction.
  KeepAliveConfig cfg = small_pool(256);
  cfg.urgency_halflife_ns = sec(1);
  KeepAliveCache cache(cfg);
  cache.insert("soon", 128 * kMiB, 0, ms(100), /*predicted_reuse_gap_ns=*/0);
  cache.insert("never", 128 * kMiB, 0, ms(100));  // no prediction
  cache.insert("new", 128 * kMiB, 0, ms(100));
  EXPECT_TRUE(cache.contains("soon"));
  EXPECT_FALSE(cache.contains("never"));
}

TEST(KeepAlive, ConcurrentReadersRaceOneEvictor) {
  // DESIGN.md §15: once the work-stealing executor lets any worker run any
  // lane, the cache is shared hot state. Several readers hammer the gauges
  // (optimistic protocol, zero stores) and the map walks (shared latch)
  // while one writer drives insert-pressure evictions. Under
  // -DTOSS_SANITIZE=thread this is the data-race audit of the latch; in
  // any build it checks the capacity invariant is never observably broken
  // — a validated optimistic read saw no writer mid-flight, so the gauges
  // it returns must respect the pool bound.
  constexpr u64 kDramCapBytes = 256 * kMiB;
  constexpr int kFunctions = 16;
  KeepAliveCache cache(small_pool(256));
  std::atomic<bool> stop{false};
  std::atomic<u64> over_capacity{0};
  std::atomic<u64> polls{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      u64 i = static_cast<u64>(r);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string name = "f" + std::to_string(i++ % kFunctions);
        cache.lookup(name);  // exclusive: refreshes priority, bumps stats
        cache.contains(name);
        if (cache.dram_in_use() > kDramCapBytes)
          over_capacity.fetch_add(1, std::memory_order_relaxed);
        (void)cache.warm_count();
        (void)cache.slow_in_use();
        (void)cache.stats().hit_rate();
        polls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    // 96 MiB entries against a 256 MiB pool: every third insert evicts.
    cache.insert("f" + std::to_string(i % kFunctions), 96 * kMiB, 8 * kMiB,
                 ms(50 + i % 97));
    if (i % 64 == 0) cache.evict_lowest();
  }
  // On a single core the writer may finish before any reader is scheduled;
  // let the readers make progress before stopping them (terminates: the
  // reader loop is wait-free once the writer is quiet).
  while (polls.load(std::memory_order_acquire) == 0)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(over_capacity.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(polls.load(std::memory_order_relaxed), 0u);
  EXPECT_LE(cache.dram_in_use(), kDramCapBytes);
  EXPECT_GT(cache.stats().evictions, 0u);
  // Quiescent cross-check: the atomic mirror agrees with the map.
  size_t live = 0;
  for (int f = 0; f < kFunctions; ++f)
    live += cache.contains("f" + std::to_string(f)) ? 1 : 0;
  EXPECT_EQ(cache.warm_count(), live);
}

TEST(KeepAlive, AgingLetsNewEntriesWin) {
  // Greedy-Dual aging: after enough evictions raise the clock, a fresh
  // entry can outrank a stale high-cost one.
  KeepAliveCache cache(small_pool(256));
  cache.insert("stale", 128 * kMiB, 0, ms(50));
  for (int i = 0; i < 10; ++i)
    cache.insert("churn" + std::to_string(i), 128 * kMiB, 0, ms(400));
  EXPECT_FALSE(cache.contains("stale"));
}

}  // namespace
}  // namespace toss
