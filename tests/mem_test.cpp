// Tests for src/mem: the tier ladder, placement, the burst cost model and
// the host page cache, plus the per-rank contention pools the ladder feeds.
#include <gtest/gtest.h>

#include "mem/access_cost.hpp"
#include "mem/page_cache.hpp"
#include "mem/placement.hpp"
#include "mem/tier.hpp"
#include "platform/concurrency.hpp"

namespace toss {
namespace {

TEST(TierSpec, PaperDefaults) {
  const SystemConfig cfg = SystemConfig::paper_default();
  EXPECT_EQ(cfg.tier_count(), 2u);
  EXPECT_NEAR(cfg.cost_ratio(), 2.5, 1e-9);
  EXPECT_GT(cfg.tiers[1].read_latency_ns, cfg.tiers[0].read_latency_ns);
  EXPECT_LT(cfg.tiers[1].read_bw_bytes_per_ns, cfg.tiers[0].read_bw_bytes_per_ns);
  EXPECT_LT(cfg.tiers[1].write_bw_bytes_per_ns, cfg.tiers[1].read_bw_bytes_per_ns);
  EXPECT_GT(cfg.tiers[1].random_granularity_bytes,
            cfg.tiers[0].random_granularity_bytes);
  EXPECT_EQ(cfg.cores, 20);
}

TEST(TierSpec, LadderPresetsAreOrdered) {
  // Every preset must be a proper ladder: each rung slower (latency) and
  // cheaper ($/MiB) than the one above, so Eq-1's per-rank ratios are
  // monotone and the cost/slowdown frontier is well-defined.
  for (const SystemConfig& cfg :
       {SystemConfig::paper_default(), SystemConfig::cxl_host(),
        SystemConfig::nvme_host()}) {
    ASSERT_GE(cfg.tier_count(), 2u);
    ASSERT_LE(cfg.tier_count(), kMaxTiers);
    for (size_t r = 1; r < cfg.tier_count(); ++r) {
      EXPECT_GT(cfg.tiers[r].read_latency_ns, cfg.tiers[r - 1].read_latency_ns)
          << cfg.tiers[r].name;
      EXPECT_LT(cfg.tiers[r].cost_per_mib, cfg.tiers[r - 1].cost_per_mib)
          << cfg.tiers[r].name;
    }
    // rank_cost_ratios: ascending rank order, every ratio > 1, strictly
    // increasing (deeper is cheaper).
    const auto ratios = cfg.rank_cost_ratios();
    ASSERT_EQ(ratios.size(), cfg.tier_count() - 1);
    double prev = 1.0;
    for (double ratio : ratios) {
      EXPECT_GT(ratio, prev);
      prev = ratio;
    }
    EXPECT_DOUBLE_EQ(cfg.rank_cost_ratio(0), 1.0);
    EXPECT_EQ(tier_rank(cfg.deepest_tier()), cfg.tier_count() - 1);
    EXPECT_EQ(&cfg.fastest(), &cfg.tiers.front());
    EXPECT_EQ(&cfg.deepest(), &cfg.tiers.back());
  }
  EXPECT_EQ(SystemConfig::cxl_host().tier_count(), 3u);
  EXPECT_EQ(SystemConfig::nvme_host().tier_count(), 4u);
}

TEST(TierSpec, TierNamesFollowRank) {
  EXPECT_STREQ(tier_name(tier_index(0)), "fast");
  EXPECT_STREQ(tier_name(tier_index(1)), "slow");
  EXPECT_STREQ(tier_name(tier_index(2)), "tier2");
  EXPECT_STREQ(tier_name(tier_index(3)), "tier3");
  EXPECT_EQ(tier_rank(tier_index(4)), 4u);
}

#ifdef TOSS_CHECKED
TEST(TierSpecDeathTest, LookupOutsideLadderAborts) {
  const SystemConfig cfg = SystemConfig::paper_default();
  EXPECT_DEATH(cfg.tier(tier_index(2)), "outside the ladder");
  EXPECT_DEATH(cfg.rank_cost_ratio(5), "outside the ladder");
}
#endif  // TOSS_CHECKED

TEST(TierSpec, CxlHostIsGentlerSlowTier) {
  // Section III: TOSS works for any tier pair. The CXL-DDR4 rung has lower
  // latency, symmetric bandwidth and no random-access amplification
  // compared to Optane, so fully-offloaded slowdowns shrink.
  const SystemConfig pmem = SystemConfig::paper_default();
  const SystemConfig cxl = SystemConfig::cxl_host();
  EXPECT_LT(cxl.tiers[1].read_latency_ns, pmem.tiers[1].read_latency_ns);
  EXPECT_DOUBLE_EQ(cxl.tiers[1].read_bw_bytes_per_ns,
                   cxl.tiers[1].write_bw_bytes_per_ns);
  EXPECT_DOUBLE_EQ(cxl.tiers[1].random_granularity_bytes, kCacheLine);
  EXPECT_GT(cxl.cost_ratio(), 1.0);

  AccessCostModel pmem_model(pmem), cxl_model(cxl);
  const double pmem_penalty =
      pmem_model.access_cost(tier_index(1), Pattern::kRandom, 0.0) /
      pmem_model.access_cost(tier_index(0), Pattern::kRandom, 0.0);
  const double cxl_penalty =
      cxl_model.access_cost(tier_index(1), Pattern::kRandom, 0.0) /
      cxl_model.access_cost(tier_index(0), Pattern::kRandom, 0.0);
  EXPECT_LT(cxl_penalty, pmem_penalty);
}

TEST(Placement, DefaultsToFast) {
  PagePlacement p(100);
  EXPECT_EQ(p.pages_in(tier_index(0)), 100u);
  EXPECT_EQ(p.pages_in(tier_index(1)), 0u);
  EXPECT_DOUBLE_EQ(p.slow_fraction(), 0.0);
}

TEST(Placement, SetRangeAndCount) {
  PagePlacement p(100);
  p.set_range(10, 30, tier_index(1));
  EXPECT_EQ(p.pages_in(tier_index(1)), 30u);
  EXPECT_EQ(p.count_in_range(0, 100, tier_index(1)), 30u);
  EXPECT_EQ(p.count_in_range(0, 10, tier_index(1)), 0u);
  EXPECT_EQ(p.count_in_range(20, 10, tier_index(1)), 10u);
  EXPECT_DOUBLE_EQ(p.slow_fraction_in_range(10, 30), 1.0);
  EXPECT_DOUBLE_EQ(p.slow_fraction(), 0.3);
}

TEST(Placement, SetAllAndEquality) {
  PagePlacement a(16), b(16);
  a.set_all(tier_index(1));
  EXPECT_NE(a, b);
  b.set_all(tier_index(1));
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a.slow_fraction(), 1.0);
}

TEST(Placement, PerRankCountsAndDeepFractions) {
  // A three-rung placement: 50 pages fast, 30 at rank 1, 20 at rank 2.
  PagePlacement p(100);
  p.set_range(50, 30, tier_index(1));
  p.set_range(80, 20, tier_index(2));
  const auto per_rank = p.pages_per_rank(3);
  ASSERT_EQ(per_rank.size(), 3u);
  EXPECT_EQ(per_rank[0], 50u);
  EXPECT_EQ(per_rank[1], 30u);
  EXPECT_EQ(per_rank[2], 20u);
  // slow_fraction still means "anything below the fastest rung".
  EXPECT_DOUBLE_EQ(p.slow_fraction(), 0.5);
  const auto fracs = p.deep_fractions(3);
  ASSERT_EQ(fracs.size(), 2u);
  EXPECT_DOUBLE_EQ(fracs[0], 0.3);
  EXPECT_DOUBLE_EQ(fracs[1], 0.2);
}

TEST(Placement, ApplyFloorDemotesShallowRanks) {
  PagePlacement p(10);
  p.set_range(0, 5, tier_index(1));
  p.apply_floor(1);  // no page may rest above rank 1
  EXPECT_EQ(p.pages_in(tier_index(0)), 0u);
  EXPECT_EQ(p.pages_in(tier_index(1)), 10u);
  // Pages already deeper than the floor stay put.
  p.set_range(0, 2, tier_index(2));
  p.apply_floor(1);
  EXPECT_EQ(p.pages_in(tier_index(2)), 2u);
  EXPECT_EQ(p.pages_in(tier_index(1)), 8u);
}

TEST(ExpandBurst, UniformSumsExactly) {
  AccessBurst b{0, 10, 1234, Pattern::kSequential, 0.0, 0.0};
  const auto counts = expand_burst_counts(b);
  ASSERT_EQ(counts.size(), 10u);
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  EXPECT_EQ(sum, 1234u);
}

TEST(ExpandBurst, ZipfHotPrefix) {
  AccessBurst b{0, 100, 100000, Pattern::kRandom, 0.0, 1.0};
  const auto counts = expand_burst_counts(b);
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  EXPECT_EQ(sum, 100000u);
  // Non-increasing by construction, first page hottest.
  for (size_t i = 1; i < counts.size(); ++i)
    EXPECT_GE(counts[i - 1], counts[i]);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ExpandBurst, ZeroAccesses) {
  AccessBurst b{0, 4, 0, Pattern::kRandom, 0.0, 0.5};
  const auto counts = expand_burst_counts(b);
  for (u64 c : counts) EXPECT_EQ(c, 0u);
}

class AccessCostTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  AccessCostModel model{cfg};
};

TEST_F(AccessCostTest, SlowTierCostsMore) {
  for (auto pattern : {Pattern::kSequential, Pattern::kRandom}) {
    for (double wf : {0.0, 0.5, 1.0}) {
      EXPECT_GT(model.access_cost(tier_index(1), pattern, wf),
                model.access_cost(tier_index(0), pattern, wf))
          << pattern_name(pattern) << " wf=" << wf;
    }
  }
}

TEST_F(AccessCostTest, RandomCostsMoreThanSequential) {
  for (auto tier : {tier_index(0), tier_index(1)}) {
    EXPECT_GT(model.access_cost(tier, Pattern::kRandom, 0.0),
              model.access_cost(tier, Pattern::kSequential, 0.0));
  }
}

TEST(AccessCostLadder, DeeperRungsCostMoreEveryPreset) {
  // Each rung down must be strictly slower per access, for both patterns —
  // otherwise the Eq-1 sweep's monotone frontier assumption breaks.
  for (const SystemConfig& cfg :
       {SystemConfig::cxl_host(), SystemConfig::nvme_host()}) {
    AccessCostModel model(cfg);
    for (auto pattern : {Pattern::kSequential, Pattern::kRandom}) {
      for (size_t r = 1; r < cfg.tier_count(); ++r) {
        EXPECT_GT(model.access_cost(tier_index(r), pattern, 0.0),
                  model.access_cost(tier_index(r - 1), pattern, 0.0))
            << cfg.tiers[r].name << " " << pattern_name(pattern);
      }
    }
  }
}

TEST_F(AccessCostTest, BurstTimeUniformMatchesPlacement) {
  AccessBurst b{0, 64, 10000, Pattern::kRandom, 0.2, 0.7};
  const auto counts = expand_burst_counts(b);
  PagePlacement all_fast(64, tier_index(0));
  PagePlacement all_slow(64, tier_index(1));
  EXPECT_NEAR(model.burst_time(b, counts, all_fast),
              model.burst_time_uniform(b, tier_index(0)), 1e-6);
  EXPECT_NEAR(model.burst_time(b, counts, all_slow),
              model.burst_time_uniform(b, tier_index(1)), 1e-6);
}

TEST_F(AccessCostTest, MixedPlacementBetweenExtremes) {
  AccessBurst b{0, 64, 10000, Pattern::kRandom, 0.0, 0.5};
  const auto counts = expand_burst_counts(b);
  PagePlacement mixed(64, tier_index(0));
  mixed.set_range(32, 32, tier_index(1));
  const Nanos fast = model.burst_time_uniform(b, tier_index(0));
  const Nanos slow = model.burst_time_uniform(b, tier_index(1));
  const Nanos mid = model.burst_time(b, counts, mixed);
  EXPECT_GT(mid, fast);
  EXPECT_LT(mid, slow);
}

TEST_F(AccessCostTest, OffloadingColdHalfCheaperThanHotHalf) {
  // Hot prefix: offloading the *tail* must cost less than the head.
  AccessBurst b{0, 64, 100000, Pattern::kRandom, 0.0, 1.2};
  const auto counts = expand_burst_counts(b);
  PagePlacement cold_off(64, tier_index(0)), hot_off(64, tier_index(0));
  cold_off.set_range(32, 32, tier_index(1));
  hot_off.set_range(0, 32, tier_index(1));
  EXPECT_LT(model.burst_time(b, counts, cold_off),
            model.burst_time(b, counts, hot_off));
}

TEST_F(AccessCostTest, DemandBytesSplitByWriteFraction) {
  AccessBurst b{0, 16, 1000, Pattern::kSequential, 0.25, 0.0};
  const auto counts = expand_burst_counts(b);
  PagePlacement all_slow(16, tier_index(1));
  const BurstCost c = model.burst_cost(b, counts, all_slow);
  EXPECT_DOUBLE_EQ(c.tier_read_bytes[0], 0.0);
  EXPECT_NEAR(c.tier_write_bytes[1] /
                  (c.tier_read_bytes[1] + c.tier_write_bytes[1]),
              0.25, 1e-9);
  // Sequential: demand = accesses * cache line.
  EXPECT_NEAR(c.tier_read_bytes[1] + c.tier_write_bytes[1],
              1000.0 * kCacheLine, 1e-6);
}

TEST_F(AccessCostTest, RandomDemandAmplifiedOnSlowTier) {
  AccessBurst b{0, 16, 1000, Pattern::kRandom, 0.0, 0.0};
  const auto counts = expand_burst_counts(b);
  PagePlacement slow(16, tier_index(1)), fast(16, tier_index(0));
  const BurstCost cs = model.burst_cost(b, counts, slow);
  const BurstCost cf = model.burst_cost(b, counts, fast);
  EXPECT_NEAR(cs.tier_read_bytes[1],
              1000.0 * cfg.tiers[1].random_granularity_bytes, 1e-6);
  EXPECT_NEAR(cf.tier_read_bytes[0],
              1000.0 * cfg.tiers[0].random_granularity_bytes, 1e-6);
}

TEST(AccessCostLadder, BurstCostChargesTheResidentRank) {
  // On a three-rung host a burst whose pages all sit at rank 2 must charge
  // time and device demand to rank 2 only — the pools are per rung, not a
  // fast/slow pair.
  const SystemConfig cfg = SystemConfig::cxl_host();
  AccessCostModel model(cfg);
  AccessBurst b{0, 32, 5000, Pattern::kRandom, 0.0, 0.0};
  const auto counts = expand_burst_counts(b);
  PagePlacement deep(32, tier_index(2));
  const BurstCost c = model.burst_cost(b, counts, deep);
  EXPECT_GT(c.tier_ns[2], 0);
  EXPECT_GT(c.tier_read_bytes[2], 0.0);
  EXPECT_EQ(c.tier_ns[0], 0);
  EXPECT_EQ(c.tier_ns[1], 0);
  EXPECT_DOUBLE_EQ(c.tier_read_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(c.tier_read_bytes[1], 0.0);
  EXPECT_EQ(c.total_ns(), c.tier_ns[2]);
}

// ---------------------------------------------------------------------------
// Per-tier contention pools: run_concurrent keeps one bandwidth pool per
// ladder rank, so pressure on one rung must not slow traffic on another.
// ---------------------------------------------------------------------------

class ContentionLadderTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::cxl_host();  // 3 rungs

  // A memory-bound solo run whose demand lands entirely on `rank`.
  ExecutionResult bound_to_rank(size_t rank, double gb, Nanos exec) {
    ExecutionResult r;
    r.exec_ns = exec;
    r.cpu_ns = exec * 0.2;
    r.mem_tier_ns[rank] = exec * 0.8;
    r.mem_ns = r.mem_tier_ns[rank];
    r.tier_read_bytes[rank] = gb * 1e9;
    return r;
  }
};

TEST_F(ContentionLadderTest, PoolsAreIndependentPerRung) {
  // 20 invocations hammering rank 2 saturate only rank 2's pool.
  std::vector<ExecutionResult> solo(20, bound_to_rank(2, 40.0, ms(100)));
  const auto out = run_concurrent(cfg, solo);
  EXPECT_GT(out.factors.tier[2], 1.5);
  EXPECT_DOUBLE_EQ(out.factors.tier[0], 1.0);
  EXPECT_DOUBLE_EQ(out.factors.tier[1], 1.0);
  EXPECT_GT(out.exec_ns[0], ms(100));
}

TEST_F(ContentionLadderTest, MixedRungLoadContendsSeparately) {
  // Half the fleet on rank 1, half on rank 2: each pool sees only its own
  // demand, so both factors exceed 1 and the rank-1 factor stays close to
  // what the same rank-1 load produces alone.
  std::vector<ExecutionResult> solo;
  for (int i = 0; i < 10; ++i) solo.push_back(bound_to_rank(1, 40.0, ms(100)));
  for (int i = 0; i < 10; ++i) solo.push_back(bound_to_rank(2, 40.0, ms(100)));
  const auto mixed = run_concurrent(cfg, solo);
  EXPECT_GT(mixed.factors.tier[1], 1.0);
  EXPECT_GT(mixed.factors.tier[2], 1.0);

  std::vector<ExecutionResult> rank1_only(10, bound_to_rank(1, 40.0, ms(100)));
  const auto solo1 = run_concurrent(cfg, rank1_only);
  EXPECT_NEAR(solo1.factors.tier[1], mixed.factors.tier[1],
              mixed.factors.tier[1] * 0.25);
  EXPECT_DOUBLE_EQ(solo1.factors.tier[2], 1.0);
}

TEST_F(ContentionLadderTest, LegacyAccessorsAliasFirstTwoRanks) {
  std::vector<ExecutionResult> solo(8, bound_to_rank(1, 40.0, ms(100)));
  const auto out = run_concurrent(cfg, solo);
  EXPECT_DOUBLE_EQ(out.factors.fast(), out.factors.tier[0]);
  EXPECT_DOUBLE_EQ(out.factors.slow(), out.factors.tier[1]);
}

TEST(PageCache, FillWithReadahead) {
  HostPageCache cache(8);
  EXPECT_FALSE(cache.contains(1, 100));
  cache.fill(1, 100);
  for (u64 p = 100; p < 108; ++p) EXPECT_TRUE(cache.contains(1, p));
  EXPECT_FALSE(cache.contains(1, 108));
  EXPECT_FALSE(cache.contains(2, 100));  // other file unaffected
}

TEST(PageCache, FillOneNoReadahead) {
  HostPageCache cache(32);
  cache.fill_one(1, 50);
  EXPECT_TRUE(cache.contains(1, 50));
  EXPECT_FALSE(cache.contains(1, 51));
}

TEST(PageCache, FillReturnsNewlyCached) {
  HostPageCache cache(4);
  EXPECT_EQ(cache.fill(1, 0), 4u);
  EXPECT_EQ(cache.fill(1, 2), 2u);  // 2,3 already cached
}

TEST(PageCache, DropClearsEverything) {
  HostPageCache cache(4);
  cache.fill_range(1, 0, 100);
  EXPECT_EQ(cache.cached_pages(), 100u);
  cache.drop();
  EXPECT_EQ(cache.cached_pages(), 0u);
  EXPECT_FALSE(cache.contains(1, 0));
}

}  // namespace
}  // namespace toss
