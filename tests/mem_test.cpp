// Tests for src/mem: tier specs, placement, the burst cost model and the
// host page cache.
#include <gtest/gtest.h>

#include "mem/access_cost.hpp"
#include "mem/page_cache.hpp"
#include "mem/placement.hpp"
#include "mem/tier.hpp"

namespace toss {
namespace {

TEST(TierSpec, PaperDefaults) {
  const SystemConfig cfg = SystemConfig::paper_default();
  EXPECT_NEAR(cfg.cost_ratio(), 2.5, 1e-9);
  EXPECT_GT(cfg.slow.read_latency_ns, cfg.fast.read_latency_ns);
  EXPECT_LT(cfg.slow.read_bw_bytes_per_ns, cfg.fast.read_bw_bytes_per_ns);
  EXPECT_LT(cfg.slow.write_bw_bytes_per_ns, cfg.slow.read_bw_bytes_per_ns);
  EXPECT_GT(cfg.slow.random_granularity_bytes,
            cfg.fast.random_granularity_bytes);
  EXPECT_EQ(cfg.cores, 20);
}

TEST(TierSpec, CxlHostIsGentlerSlowTier) {
  // Section III: TOSS works for any tier pair. The CXL-DDR4 slow tier has
  // lower latency, symmetric bandwidth and no random-access amplification
  // compared to Optane, so fully-offloaded slowdowns shrink.
  const SystemConfig pmem = SystemConfig::paper_default();
  const SystemConfig cxl = SystemConfig::cxl_host();
  EXPECT_LT(cxl.slow.read_latency_ns, pmem.slow.read_latency_ns);
  EXPECT_DOUBLE_EQ(cxl.slow.read_bw_bytes_per_ns,
                   cxl.slow.write_bw_bytes_per_ns);
  EXPECT_DOUBLE_EQ(cxl.slow.random_granularity_bytes, kCacheLine);
  EXPECT_GT(cxl.cost_ratio(), 1.0);

  AccessCostModel pmem_model(pmem), cxl_model(cxl);
  const double pmem_penalty =
      pmem_model.access_cost(Tier::kSlow, Pattern::kRandom, 0.0) /
      pmem_model.access_cost(Tier::kFast, Pattern::kRandom, 0.0);
  const double cxl_penalty =
      cxl_model.access_cost(Tier::kSlow, Pattern::kRandom, 0.0) /
      cxl_model.access_cost(Tier::kFast, Pattern::kRandom, 0.0);
  EXPECT_LT(cxl_penalty, pmem_penalty);
}

TEST(Placement, DefaultsToFast) {
  PagePlacement p(100);
  EXPECT_EQ(p.pages_in(Tier::kFast), 100u);
  EXPECT_EQ(p.pages_in(Tier::kSlow), 0u);
  EXPECT_DOUBLE_EQ(p.slow_fraction(), 0.0);
}

TEST(Placement, SetRangeAndCount) {
  PagePlacement p(100);
  p.set_range(10, 30, Tier::kSlow);
  EXPECT_EQ(p.pages_in(Tier::kSlow), 30u);
  EXPECT_EQ(p.count_in_range(0, 100, Tier::kSlow), 30u);
  EXPECT_EQ(p.count_in_range(0, 10, Tier::kSlow), 0u);
  EXPECT_EQ(p.count_in_range(20, 10, Tier::kSlow), 10u);
  EXPECT_DOUBLE_EQ(p.slow_fraction_in_range(10, 30), 1.0);
  EXPECT_DOUBLE_EQ(p.slow_fraction(), 0.3);
}

TEST(Placement, SetAllAndEquality) {
  PagePlacement a(16), b(16);
  a.set_all(Tier::kSlow);
  EXPECT_NE(a, b);
  b.set_all(Tier::kSlow);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a.slow_fraction(), 1.0);
}

TEST(ExpandBurst, UniformSumsExactly) {
  AccessBurst b{0, 10, 1234, Pattern::kSequential, 0.0, 0.0};
  const auto counts = expand_burst_counts(b);
  ASSERT_EQ(counts.size(), 10u);
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  EXPECT_EQ(sum, 1234u);
}

TEST(ExpandBurst, ZipfHotPrefix) {
  AccessBurst b{0, 100, 100000, Pattern::kRandom, 0.0, 1.0};
  const auto counts = expand_burst_counts(b);
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  EXPECT_EQ(sum, 100000u);
  // Non-increasing by construction, first page hottest.
  for (size_t i = 1; i < counts.size(); ++i)
    EXPECT_GE(counts[i - 1], counts[i]);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ExpandBurst, ZeroAccesses) {
  AccessBurst b{0, 4, 0, Pattern::kRandom, 0.0, 0.5};
  const auto counts = expand_burst_counts(b);
  for (u64 c : counts) EXPECT_EQ(c, 0u);
}

class AccessCostTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  AccessCostModel model{cfg};
};

TEST_F(AccessCostTest, SlowTierCostsMore) {
  for (auto pattern : {Pattern::kSequential, Pattern::kRandom}) {
    for (double wf : {0.0, 0.5, 1.0}) {
      EXPECT_GT(model.access_cost(Tier::kSlow, pattern, wf),
                model.access_cost(Tier::kFast, pattern, wf))
          << pattern_name(pattern) << " wf=" << wf;
    }
  }
}

TEST_F(AccessCostTest, RandomCostsMoreThanSequential) {
  for (auto tier : {Tier::kFast, Tier::kSlow}) {
    EXPECT_GT(model.access_cost(tier, Pattern::kRandom, 0.0),
              model.access_cost(tier, Pattern::kSequential, 0.0));
  }
}

TEST_F(AccessCostTest, BurstTimeUniformMatchesPlacement) {
  AccessBurst b{0, 64, 10000, Pattern::kRandom, 0.2, 0.7};
  const auto counts = expand_burst_counts(b);
  PagePlacement all_fast(64, Tier::kFast);
  PagePlacement all_slow(64, Tier::kSlow);
  EXPECT_NEAR(model.burst_time(b, counts, all_fast),
              model.burst_time_uniform(b, Tier::kFast), 1e-6);
  EXPECT_NEAR(model.burst_time(b, counts, all_slow),
              model.burst_time_uniform(b, Tier::kSlow), 1e-6);
}

TEST_F(AccessCostTest, MixedPlacementBetweenExtremes) {
  AccessBurst b{0, 64, 10000, Pattern::kRandom, 0.0, 0.5};
  const auto counts = expand_burst_counts(b);
  PagePlacement mixed(64, Tier::kFast);
  mixed.set_range(32, 32, Tier::kSlow);
  const Nanos fast = model.burst_time_uniform(b, Tier::kFast);
  const Nanos slow = model.burst_time_uniform(b, Tier::kSlow);
  const Nanos mid = model.burst_time(b, counts, mixed);
  EXPECT_GT(mid, fast);
  EXPECT_LT(mid, slow);
}

TEST_F(AccessCostTest, OffloadingColdHalfCheaperThanHotHalf) {
  // Hot prefix: offloading the *tail* must cost less than the head.
  AccessBurst b{0, 64, 100000, Pattern::kRandom, 0.0, 1.2};
  const auto counts = expand_burst_counts(b);
  PagePlacement cold_off(64, Tier::kFast), hot_off(64, Tier::kFast);
  cold_off.set_range(32, 32, Tier::kSlow);
  hot_off.set_range(0, 32, Tier::kSlow);
  EXPECT_LT(model.burst_time(b, counts, cold_off),
            model.burst_time(b, counts, hot_off));
}

TEST_F(AccessCostTest, DemandBytesSplitByWriteFraction) {
  AccessBurst b{0, 16, 1000, Pattern::kSequential, 0.25, 0.0};
  const auto counts = expand_burst_counts(b);
  PagePlacement all_slow(16, Tier::kSlow);
  const BurstCost c = model.burst_cost(b, counts, all_slow);
  EXPECT_DOUBLE_EQ(c.fast_read_bytes, 0.0);
  EXPECT_NEAR(c.slow_write_bytes / (c.slow_read_bytes + c.slow_write_bytes),
              0.25, 1e-9);
  // Sequential: demand = accesses * cache line.
  EXPECT_NEAR(c.slow_read_bytes + c.slow_write_bytes, 1000.0 * kCacheLine,
              1e-6);
}

TEST_F(AccessCostTest, RandomDemandAmplifiedOnSlowTier) {
  AccessBurst b{0, 16, 1000, Pattern::kRandom, 0.0, 0.0};
  const auto counts = expand_burst_counts(b);
  PagePlacement slow(16, Tier::kSlow), fast(16, Tier::kFast);
  const BurstCost cs = model.burst_cost(b, counts, slow);
  const BurstCost cf = model.burst_cost(b, counts, fast);
  EXPECT_NEAR(cs.slow_read_bytes, 1000.0 * cfg.slow.random_granularity_bytes,
              1e-6);
  EXPECT_NEAR(cf.fast_read_bytes, 1000.0 * cfg.fast.random_granularity_bytes,
              1e-6);
}

TEST(PageCache, FillWithReadahead) {
  HostPageCache cache(8);
  EXPECT_FALSE(cache.contains(1, 100));
  cache.fill(1, 100);
  for (u64 p = 100; p < 108; ++p) EXPECT_TRUE(cache.contains(1, p));
  EXPECT_FALSE(cache.contains(1, 108));
  EXPECT_FALSE(cache.contains(2, 100));  // other file unaffected
}

TEST(PageCache, FillOneNoReadahead) {
  HostPageCache cache(32);
  cache.fill_one(1, 50);
  EXPECT_TRUE(cache.contains(1, 50));
  EXPECT_FALSE(cache.contains(1, 51));
}

TEST(PageCache, FillReturnsNewlyCached) {
  HostPageCache cache(4);
  EXPECT_EQ(cache.fill(1, 0), 4u);
  EXPECT_EQ(cache.fill(1, 2), 2u);  // 2,3 already cached
}

TEST(PageCache, DropClearsEverything) {
  HostPageCache cache(4);
  cache.fill_range(1, 0, 100);
  EXPECT_EQ(cache.cached_pages(), 100u);
  cache.drop();
  EXPECT_EQ(cache.cached_pages(), 0u);
  EXPECT_FALSE(cache.contains(1, 0));
}

}  // namespace
}  // namespace toss
