// Tests for src/util: rng determinism and distributions, streaming stats,
// table rendering, unit formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace toss {
namespace {

TEST(FaultSites, NameTableRoundTripsAtCompileTime) {
  // The name table, the derived count and the enum must stay in sync: a
  // new FaultSite without a name (or a stale count) fails right here at
  // compile time, not at a distant runtime lookup.
  static_assert(kFaultSiteNames.size() == kFaultSiteCount);
  static_assert(kFaultSiteCount ==
                static_cast<size_t>(FaultSite::kMigrationAbort) + 1);
  static_assert([] {
    for (size_t i = 0; i < kFaultSiteCount; ++i) {
      const auto site = static_cast<FaultSite>(i);
      const auto back = fault_site_from_name(fault_site_name(site));
      if (!back.has_value() || *back != site) return false;
    }
    return true;
  }());
  // Runtime pass too, so a regression names the offending site.
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    EXPECT_EQ(fault_site_from_name(fault_site_name(site)), site)
        << fault_site_name(site);
  }
  EXPECT_FALSE(fault_site_from_name("no_such_site").has_value());
  EXPECT_FALSE(fault_site_from_name("").has_value());
}

TEST(Units, PageMath) {
  EXPECT_EQ(pages_for_bytes(0), 0u);
  EXPECT_EQ(pages_for_bytes(1), 1u);
  EXPECT_EQ(pages_for_bytes(kPageSize), 1u);
  EXPECT_EQ(pages_for_bytes(kPageSize + 1), 2u);
  EXPECT_EQ(bytes_for_pages(3), 3 * kPageSize);
  EXPECT_EQ(pages_for_bytes(128 * kMiB), 32768u);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(us(1), 1e3);
  EXPECT_DOUBLE_EQ(ms(1), 1e6);
  EXPECT_DOUBLE_EQ(sec(1), 1e9);
  EXPECT_DOUBLE_EQ(to_ms(ms(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(sec(0.25)), 0.25);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
  EXPECT_EQ(format_nanos(500), "500.0 ns");
  EXPECT_EQ(format_nanos(us(3)), "3.000 us");
  EXPECT_EQ(format_nanos(ms(4)), "4.000 ms");
  EXPECT_EQ(format_nanos(sec(1.5)), "1.500 s");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(Rng, JitterCentredAndPositive) {
  Rng rng(13);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) {
    const double j = rng.jitter(0.1);
    EXPECT_GT(j, 0.0);
    st.add(j);
  }
  EXPECT_NEAR(st.mean(), 1.0, 0.02);
  EXPECT_DOUBLE_EQ(Rng(5).jitter(0.0), 1.0);
}

TEST(Rng, MixSeedSensitiveToBoth) {
  EXPECT_NE(mix_seed(1, u64{2}), mix_seed(2, u64{1}));
  EXPECT_NE(mix_seed(1, "abc"), mix_seed(1, "abd"));
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(17);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 10000; ++i) ++hist[z.sample(rng)];
  for (int c : hist) EXPECT_NEAR(c, 1000, 200);
}

TEST(Zipf, SkewPrefersLowRanks) {
  ZipfSampler z(1000, 0.99);
  Rng rng(19);
  u64 low = 0, total = 10000;
  for (u64 i = 0; i < total; ++i)
    if (z.sample(rng) < 10) ++low;
  // With theta ~1 the top-10 of 1000 items should attract a large share.
  EXPECT_GT(low, total / 5);
}

TEST(Zipf, SamplesInRange) {
  ZipfSampler z(37, 0.7);
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 37u);
}

TEST(OnlineStats, MatchesNaive) {
  Rng rng(23);
  std::vector<double> xs;
  OnlineStats st;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    st.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(st.mean(), mean, 1e-9);
  EXPECT_NEAR(st.variance(), var, 1e-9);
  EXPECT_EQ(st.count(), xs.size());
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(29);
  OnlineStats whole, a, b;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(3, 2);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 10);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
}

TEST(Stats, GeomeanAndExtremes) {
  std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geomean_of(xs), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(max_of(xs), 16);
  EXPECT_DOUBLE_EQ(min_of(xs), 1);
  EXPECT_NEAR(mean_of(xs), 7.0, 1e-9);
}

TEST(Table, RendersAllRowsAndHeaders) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta"});  // short row padded
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_f(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.123, 1), "12.3%");
  EXPECT_EQ(fmt_x(1.78), "1.78x");
}

}  // namespace
}  // namespace toss
