// Chaos suite for the fault-injection harness and the self-healing snapshot
// path (verify -> retry -> degrade -> regenerate).
//
// The central invariant is the page-version oracle: no matter which faults
// fire, every invocation that *completes* must observe exactly the guest
// memory the authoritative snapshot would materialize — recovery may cost
// time (retry backoff, a slower rung), never correctness. On top of that,
// the whole cascade must be deterministic: the same fault-plan seed yields
// bit-identical outcomes, ledgers and counters for any thread count.
//
// Fault-dependent tests skip themselves unless the build sets
// -DTOSS_FAULTS=ON (the CI `chaos` job); the fault-free ledger test runs —
// and must pass — in every build.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "platform/engine.hpp"
#include "platform/request_gen.hpp"
#include "workloads/functions.hpp"

namespace toss {
namespace {

TossOptions fast_toss() {
  TossOptions opt;
  opt.stable_invocations = 4;
  opt.max_profiling_invocations = 30;
  return opt;
}

/// Every snapshot-path failure domain armed at once, at rates low enough
/// that most invocations still reach the tiered path.
FaultPlan chaos_plan(u64 seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.set(FaultSite::kPutSingleTier, {.probability = 0.05});
  plan.set(FaultSite::kPutTiered, {.probability = 0.10});
  plan.set(FaultSite::kTierBitrot, {.probability = 0.04});
  plan.set(FaultSite::kTierTruncate, {.probability = 0.02});
  plan.set(FaultSite::kRestoreMapping, {.probability = 0.06});
  plan.set(FaultSite::kSlowTierStall,
           {.probability = 0.05, .delay_ns = ms(2)});
  plan.set(FaultSite::kExecCrash, {.probability = 0.03});
  return plan;
}

/// A fleet of TOSS lanes cycling the Table-I specs under `plan`.
std::unique_ptr<PlatformEngine> make_chaos_fleet(size_t n, size_t requests,
                                                 const FaultPlan& plan,
                                                 EngineOptions opts = {}) {
  opts.fault_plan = plan;
  auto engine = std::make_unique<PlatformEngine>(
      SystemConfig::paper_default(), PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  for (size_t i = 0; i < n; ++i) {
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    auto stream =
        RequestGenerator::round_robin(requests, mix_seed(321, spec.name));
    EXPECT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .toss(fast_toss())
                              .seed(10 + i),
                          std::move(stream))
                    .ok());
  }
  return engine;
}

u64 ledger_weight(const RecoveryInfo& r) {
  return r.faults_seen + r.retries + static_cast<u64>(r.fallback) +
         (r.quarantined ? 1 : 0) + (r.regenerated ? 1 : 0) +
         (r.completed ? 0 : 1);
}

void expect_same_ledger(const RecoveryInfo& a, const RecoveryInfo& b,
                        const std::string& what) {
  EXPECT_EQ(a.faults_seen, b.faults_seen) << what;
  EXPECT_EQ(a.retries, b.retries) << what;
  EXPECT_EQ(a.fallback, b.fallback) << what;
  EXPECT_EQ(a.quarantined, b.quarantined) << what;
  EXPECT_EQ(a.regenerated, b.regenerated) << what;
  EXPECT_EQ(a.breaker_suspended, b.breaker_suspended) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.overhead_ns, b.overhead_ns) << what;
  EXPECT_EQ(a.memory_hash, b.memory_hash) << what;
  EXPECT_EQ(a.expected_hash, b.expected_hash) << what;
}

// An unarmed plan must leave no recovery trace in any build — and in a
// TOSS_FAULTS build specifically, arming the subsystem without a plan must
// not perturb results (the acceptance criterion's "bit-identical" half is
// engine_test; this is the ledger half).
TEST(Chaos, FaultFreeRunHasCleanLedger) {
  auto engine = make_chaos_fleet(4, 24, FaultPlan{});
  const EngineReport report = engine->run(4).value();
  for (const FunctionReport& f : report.functions) {
    EXPECT_EQ(f.stats.recovered_faults, 0u) << f.name;
    EXPECT_EQ(f.stats.recovery_retries, 0u) << f.name;
    EXPECT_EQ(f.stats.fallbacks, 0u) << f.name;
    EXPECT_EQ(f.stats.quarantines, 0u) << f.name;
    EXPECT_EQ(f.stats.regenerations, 0u) << f.name;
    EXPECT_EQ(f.stats.incomplete, 0u) << f.name;
    for (const InvocationOutcome& o : f.outcomes) {
      EXPECT_TRUE(o.recovery.completed) << f.name;
      EXPECT_TRUE(o.recovery.memory_ok()) << f.name;
      EXPECT_FALSE(o.recovery.engaged()) << f.name;
      EXPECT_EQ(o.recovery.overhead_ns, 0) << f.name;
    }
    const FunctionMetrics* m = report.metrics.find(f.name);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->recovered_faults + m->recovery_retries +
                  m->fallbacks_single_tier + m->fallbacks_cold_boot +
                  m->quarantines + m->regenerations + m->incomplete,
              0u)
        << f.name;
  }
}

// The oracle: across several seeds, with every site armed, no completed
// invocation ever observes wrong memory. Faults must actually bite (the
// plan is not vacuous) and the lanes stay serialized.
TEST(Chaos, OracleHoldsUnderFaultsAcrossSeeds) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  for (const u64 seed : {u64{11}, u64{23}, u64{47}}) {
    auto engine = make_chaos_fleet(6, 40, chaos_plan(seed));
    const EngineReport report = engine->run(4).value();
    EXPECT_EQ(report.serialization_violations, 0u);

    u64 faults = 0, retries = 0, fallbacks = 0, wrong_memory = 0;
    for (const FunctionReport& f : report.functions) {
      EXPECT_EQ(f.stats.invocations, 40u) << f.name;
      faults += f.stats.recovered_faults;
      retries += f.stats.recovery_retries;
      fallbacks += f.stats.fallbacks;
      for (const InvocationOutcome& o : f.outcomes)
        if (o.recovery.completed && !o.recovery.memory_ok()) ++wrong_memory;
    }
    // Zero tolerance: a completed invocation with wrong memory is the one
    // outcome the ladder exists to prevent.
    EXPECT_EQ(wrong_memory, 0u) << "seed " << seed;
    EXPECT_GT(faults, 0u) << "seed " << seed << ": plan never fired";
    EXPECT_GT(retries + fallbacks, 0u) << "seed " << seed;
  }
}

// Determinism of the whole cascade: same seed => identical per-invocation
// ledgers, latencies and aggregate counters, for 1 worker vs 4 and across
// repeated runs.
TEST(Chaos, RecoveryIsDeterministicPerSeedAndThreadCount) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  const FaultPlan plan = chaos_plan(99);
  auto serial = make_chaos_fleet(5, 32, plan);
  const EngineReport s = serial->run(1).value();
  auto parallel = make_chaos_fleet(5, 32, plan);
  const EngineReport p = parallel->run(4).value();
  auto again = make_chaos_fleet(5, 32, plan);
  const EngineReport r = again->run(4).value();

  u64 total_weight = 0;
  ASSERT_EQ(s.functions.size(), p.functions.size());
  for (size_t i = 0; i < s.functions.size(); ++i) {
    const FunctionReport& a = s.functions[i];
    for (const FunctionReport* b : {&p.functions[i], &r.functions[i]}) {
      ASSERT_EQ(a.name, b->name);
      EXPECT_EQ(a.stats.recovered_faults, b->stats.recovered_faults)
          << a.name;
      EXPECT_EQ(a.stats.recovery_retries, b->stats.recovery_retries)
          << a.name;
      EXPECT_EQ(a.stats.fallbacks, b->stats.fallbacks) << a.name;
      EXPECT_EQ(a.stats.quarantines, b->stats.quarantines) << a.name;
      EXPECT_EQ(a.stats.regenerations, b->stats.regenerations) << a.name;
      EXPECT_EQ(a.stats.incomplete, b->stats.incomplete) << a.name;
      EXPECT_EQ(a.final_phase, b->final_phase) << a.name;
      ASSERT_EQ(a.outcomes.size(), b->outcomes.size());
      for (size_t k = 0; k < a.outcomes.size(); ++k) {
        expect_same_ledger(a.outcomes[k].recovery, b->outcomes[k].recovery,
                           a.name + "#" + std::to_string(k));
        EXPECT_EQ(a.outcomes[k].result.total_ns(),
                  b->outcomes[k].result.total_ns())
            << a.name << "#" << k;
        EXPECT_EQ(a.outcomes[k].charge, b->outcomes[k].charge)
            << a.name << "#" << k;
      }
    }
    for (const InvocationOutcome& o : a.outcomes)
      total_weight += ledger_weight(o.recovery);
  }
  // The reproducible counters are non-zero — the determinism above is a
  // statement about real recovery activity, not about three idle runs.
  EXPECT_GT(total_weight, 0u);
}

/// Single-host harness for scheduled (non-probabilistic) scenarios.
struct ScheduledScenario {
  std::unique_ptr<ServerlessPlatform> host;
  std::string name;

  explicit ScheduledScenario(const FaultPlan& plan,
                             RetryPolicy retry = RetryPolicy{}) {
    host = std::make_unique<ServerlessPlatform>(
        SystemConfig::paper_default(), PricingPlan{}, plan);
    FunctionSpec spec = workloads::all_functions()[0];
    name = spec.name;
    EXPECT_TRUE(host->register_function(FunctionRegistration(std::move(spec))
                                            .toss(fast_toss())
                                            .retry(retry)
                                            .seed(5))
                    .ok());
  }

  std::vector<InvocationOutcome> drive(size_t n) {
    return host
        ->run(name, RequestGenerator::round_robin(n, 777))
        .value();
  }
};

// Bitrot on the first tiered read: verification must catch it before the
// mapping, quarantine the artifact, serve the invocation from the retained
// single-tier snapshot, and let Step V regenerate a fresh tiered artifact
// that subsequent invocations restore from cleanly.
TEST(Chaos, ChecksumFailureQuarantinesThenRegenerates) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  FaultPlan plan;
  plan.seed = 3;
  plan.set(FaultSite::kTierBitrot, {.schedule = {0}});  // first tiered read
  ScheduledScenario sc(plan);
  const auto outcomes = sc.drive(60);

  size_t quarantine_at = outcomes.size(), regen_at = outcomes.size();
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RecoveryInfo& rec = outcomes[i].recovery;
    EXPECT_TRUE(rec.completed) << i;
    EXPECT_TRUE(rec.memory_ok()) << i;
    if (rec.quarantined && quarantine_at == outcomes.size())
      quarantine_at = i;
    if (rec.regenerated && regen_at == outcomes.size()) regen_at = i;
  }
  ASSERT_LT(quarantine_at, outcomes.size()) << "bitrot never quarantined";
  ASSERT_LT(regen_at, outcomes.size()) << "Step V never regenerated";
  EXPECT_LT(quarantine_at, regen_at);
  // The quarantined invocation degraded exactly one rung.
  EXPECT_EQ(outcomes[quarantine_at].recovery.fallback,
            FallbackLevel::kSingleTier);
  EXPECT_EQ(sc.host->store().quarantine_count(), 1u);
  // After regeneration the lane is back in steady tiered state.
  ASSERT_NE(sc.host->toss_state(sc.name), nullptr);
  EXPECT_EQ(sc.host->toss_state(sc.name)->phase(), TossPhase::kTiered);
  EXPECT_FALSE(sc.host->toss_state(sc.name)->regeneration_pending());
}

// Transient guest crashes burn retries, not correctness: the scheduled
// double crash completes on the third attempt with the backoff charged to
// simulated setup time.
TEST(Chaos, ExecCrashRetriesThenCompletes) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  FaultPlan plan;
  plan.seed = 4;
  plan.set(FaultSite::kExecCrash, {.schedule = {0, 1}});
  ScheduledScenario sc(plan);
  const auto outcomes = sc.drive(3);
  const RecoveryInfo& first = outcomes[0].recovery;
  EXPECT_EQ(first.faults_seen, 2u);
  EXPECT_EQ(first.retries, 2u);
  EXPECT_TRUE(first.completed);
  EXPECT_TRUE(first.memory_ok());
  EXPECT_GT(first.overhead_ns, 0);
  // Later invocations are untouched.
  EXPECT_FALSE(outcomes[1].recovery.engaged());
  EXPECT_EQ(outcomes[1].recovery.overhead_ns, 0);
}

// Persistent restore failure: the breaker opens after the threshold and
// suspends the tiered path instead of hammering it; every invocation still
// completes (cold boot is the terminal rung) with correct memory.
TEST(Chaos, BreakerOpensUnderPersistentRestoreFailure) {
  if (!fault_injection_enabled())
    GTEST_SKIP() << "requires -DTOSS_FAULTS=ON";
  FaultPlan plan;
  plan.seed = 5;
  plan.set(FaultSite::kRestoreMapping, {.probability = 1.0});
  ScheduledScenario sc(plan);
  const auto outcomes = sc.drive(40);

  u64 suspended = 0;
  for (const InvocationOutcome& o : outcomes) {
    EXPECT_TRUE(o.recovery.completed);
    EXPECT_TRUE(o.recovery.memory_ok());
    if (o.recovery.breaker_suspended) ++suspended;
  }
  EXPECT_GT(suspended, 0u);
  ASSERT_NE(sc.host->breaker(sc.name), nullptr);
  EXPECT_GT(sc.host->breaker(sc.name)->opened_count(), 0u);
}

// The recovery counters flow through to the metrics JSON the benches emit.
TEST(Chaos, MetricsJsonCarriesRecoveryCounters) {
  auto engine = make_chaos_fleet(2, 16, chaos_plan(7));
  const EngineReport report = engine->run(2).value();
  const std::string json = report.metrics.to_json();
  for (const char* key :
       {"\"recovery\":", "\"faults\":", "\"retries\":", "\"quarantines\":",
        "\"regenerations\":", "\"breaker_suspended\":", "\"incomplete\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace toss
