// Tests for the profiling-analysis stage: bin profiling and the
// minimum-cost placement optimizer.
#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "core/optimizer.hpp"
#include "damon/monitor.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  FunctionRegistry reg = FunctionRegistry::table1();

  PageAccessCounts unified_for(const FunctionModel& m) {
    const double scale = DamonConfig{}.count_scale;
    PageAccessCounts unified(m.guest_pages());
    for (int input = 0; input < kNumInputs; ++input) {
      for (u64 rep = 0; rep < 2; ++rep) {
        const Invocation inv = m.invoke(input, 800 + rep);
        unified.merge_max(
            PageAccessCounts::from_trace(inv.trace, m.guest_pages()));
      }
    }
    for (u64 p = 0; p < unified.num_pages(); ++p)
      unified.set(p, static_cast<u64>(
                         static_cast<double>(unified.at(p)) * scale));
    return unified;
  }
};

TEST_F(AnalysisTest, BinProfileStepsConsistent) {
  const FunctionModel& m = *reg.find("matmul");
  const PageAccessCounts unified = unified_for(m);
  const RegionList merged = regionize_and_merge(unified);
  const auto bins = pack_equal_access(nonzero_access_regions(merged), 10);
  BinProfiler profiler(cfg);
  const Invocation rep = m.invoke(3, 802);
  const BinProfile profile = profiler.profile(
      bins, zero_access_regions(merged), m.guest_pages(), rep);

  ASSERT_EQ(profile.steps.size(), 10u);
  EXPECT_GT(profile.base_exec_ns, 0);
  EXPECT_GE(profile.full_slow_exec_ns, profile.base_exec_ns);

  double cum = 0;
  double prev_slow_frac = profile.base_placement.slow_fraction();
  for (const BinStep& s : profile.steps) {
    cum += s.marginal_slowdown;
    EXPECT_NEAR(s.cumulative_slowdown, cum, 1e-6);
    EXPECT_GE(s.slow_fraction, prev_slow_frac);
    prev_slow_frac = s.slow_fraction;
    EXPECT_GE(s.marginal_slowdown, 0.0);
    EXPECT_GT(s.bin_cost, 0.0);
  }
  // After all bins, everything is in the slow tier.
  EXPECT_NEAR(profile.steps.back().slow_fraction, 1.0, 1e-9);
}

TEST_F(AnalysisTest, BasePlacementPutsZeroRegionsSlow) {
  const FunctionModel& m = *reg.find("pyaes");
  const PageAccessCounts unified = unified_for(m);
  const RegionList merged = regionize_and_merge(unified);
  BinProfiler profiler(cfg);
  const BinProfile profile =
      profiler.profile(pack_equal_access(nonzero_access_regions(merged), 10),
                       zero_access_regions(merged), m.guest_pages(),
                       m.invoke(3, 802));
  for (const Region& r : zero_access_regions(merged)) {
    EXPECT_EQ(profile.base_placement.count_in_range(r.page_begin,
                                                    r.page_count, tier_index(1)),
              r.page_count);
  }
}

TEST_F(AnalysisTest, ChosenPrefixIsCostMinimal) {
  const FunctionModel& m = *reg.find("pagerank");
  const TieringDecision d =
      analyze_pattern(cfg, unified_for(m), m.invoke(3, 802), {});
  // The decision's cost must not exceed any sweep configuration's cost
  // (small tolerance: the final config is re-measured).
  for (const BinStep& s : d.profile.steps)
    EXPECT_LE(d.normalized_cost, s.cumulative_cost + 0.02);
  EXPECT_LE(d.normalized_cost, 1.0);
  EXPECT_GE(d.normalized_cost, optimal_normalized_cost(cfg.cost_ratio()));
}

TEST_F(AnalysisTest, PlacementMatchesOffloadFlags) {
  const FunctionModel& m = *reg.find("linpack");
  const PageAccessCounts unified = unified_for(m);
  const RegionList merged = regionize_and_merge(unified);
  const auto bins = pack_equal_access(nonzero_access_regions(merged), 10);
  const TieringDecision d = choose_placement(
      cfg, bins, zero_access_regions(merged), m.guest_pages(),
      m.invoke(3, 802), {});
  ASSERT_EQ(d.offloaded.size(), bins.size());
  for (size_t i = 0; i < bins.size(); ++i) {
    for (const Region& r : bins[i].regions) {
      const u64 slow =
          d.placement.count_in_range(r.page_begin, r.page_count, tier_index(1));
      if (d.offloaded[i])
        EXPECT_EQ(slow, r.page_count);
      else
        EXPECT_EQ(slow, 0u);
    }
  }
}

TEST_F(AnalysisTest, SlowdownThresholdRespected) {
  const FunctionModel& m = *reg.find("pagerank");
  const PageAccessCounts unified = unified_for(m);
  const Invocation rep = m.invoke(3, 802);
  TieringOptions bounded;
  bounded.slowdown_threshold = 0.05;
  const TieringDecision d = analyze_pattern(cfg, unified, rep, bounded);
  EXPECT_LE(d.expected_slowdown, 0.05 + 0.02);

  const TieringDecision free = analyze_pattern(cfg, unified, rep, {});
  EXPECT_LE(d.slow_fraction, free.slow_fraction + 1e-9);
  // Bounded slowdown costs memory: cost can only be >= the free optimum.
  EXPECT_GE(d.normalized_cost, free.normalized_cost - 0.02);
}

TEST_F(AnalysisTest, ThresholdZeroKeepsBinsInDram) {
  const FunctionModel& m = *reg.find("pagerank");
  TieringOptions bounded;
  bounded.slowdown_threshold = 0.0;
  const TieringDecision d =
      analyze_pattern(cfg, unified_for(m), m.invoke(3, 802), bounded);
  // Only zero-access regions may be offloaded.
  EXPECT_NEAR(d.expected_slowdown, 0.0, 1e-6);
  for (bool off : d.offloaded) EXPECT_FALSE(off);
}

TEST_F(AnalysisTest, MemoryIntensivePagerankKeepsHotHalf) {
  const FunctionModel& m = *reg.find("pagerank");
  const TieringDecision d =
      analyze_pattern(cfg, unified_for(m), m.invoke(3, 802), {});
  // Table II: pagerank is capped around half offloaded.
  EXPECT_GT(d.slow_fraction, 0.30);
  EXPECT_LT(d.slow_fraction, 0.70);
}

TEST_F(AnalysisTest, NonIntensiveFunctionsMostlyOffloaded) {
  for (const char* name : {"compress", "json_load_dump", "lr_training"}) {
    const FunctionModel& m = *reg.find(name);
    const TieringDecision d =
        analyze_pattern(cfg, unified_for(m), m.invoke(3, 802), {});
    EXPECT_GT(d.slow_fraction, 0.9) << name;
    EXPECT_LT(d.normalized_cost, 0.55) << name;
  }
}

TEST_F(AnalysisTest, GentlerSlowTierOffloadsMore) {
  // The same function on a DDR5 + CXL-DDR4 host: the milder slow-tier
  // penalty lets the optimizer offload at least as much of pagerank as on
  // the Optane host, at a lower slowdown.
  const FunctionModel& m = *reg.find("pagerank");
  const PageAccessCounts unified = unified_for(m);
  const Invocation rep = m.invoke(3, 802);
  const SystemConfig cxl_cfg = SystemConfig::cxl_host();
  const TieringDecision pmem = analyze_pattern(cfg, unified, rep, {});
  const TieringDecision cxl = analyze_pattern(cxl_cfg, unified, rep, {});
  // More (or equal) memory moves to the gentler slow tier. The *chosen*
  // slowdown may be higher — the optimizer deliberately trades slowdown
  // for savings when the penalty per byte is milder.
  EXPECT_GE(cxl.slow_fraction, pmem.slow_fraction - 1e-9);
  // Like-for-like: the same placement runs faster on the CXL host.
  AccessCostModel pmem_model(cfg), cxl_model(cxl_cfg);
  const Nanos on_pmem = rep.cpu_ns + rep.trace.time_under(pmem_model,
                                                          pmem.placement);
  const Nanos on_cxl = rep.cpu_ns + rep.trace.time_under(cxl_model,
                                                         pmem.placement);
  EXPECT_LT(on_cxl, on_pmem);
}

TEST_F(AnalysisTest, BinCountSweepStillValid) {
  const FunctionModel& m = *reg.find("matmul");
  const PageAccessCounts unified = unified_for(m);
  const Invocation rep = m.invoke(3, 802);
  for (int k : {4, 10, 20}) {
    TieringOptions opt;
    opt.bin_count = k;
    const TieringDecision d = analyze_pattern(cfg, unified, rep, opt);
    EXPECT_EQ(d.offloaded.size(), static_cast<size_t>(k));
    EXPECT_LE(d.normalized_cost, 1.0);
  }
}

}  // namespace
}  // namespace toss
