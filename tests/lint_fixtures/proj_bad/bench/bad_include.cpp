// Fixture: a bench reaching past the umbrella header.
#include "core/binpack.hpp"

int main() { return 0; }
