#ifndef TOSS_FIXTURE_MISSING_PRAGMA_HPP
#define TOSS_FIXTURE_MISSING_PRAGMA_HPP
inline int fixture_value() { return 42; }
#endif
