// Fixture: a typo'd suppression must be a finding, not a silent no-op.
int f() { return 1; }  // toss-lint: allow(not-a-rule)
