// Fixture: swallowed-error violations.
void risky();

void swallow_all() {
  try {
    risky();
  } catch (...) {
  }
}

void swallow_silently() {
  try {
    risky();
  } catch (const int& e) { }
}

void swallow_with_comment_only() {
  try {
    risky();
  } catch (const int&) {
    // a comment is not handling
  }
}
