// Fixture: closes the include cycle; the finding lands on this back edge.
#pragma once
#include "core/cycle_a.hpp"
