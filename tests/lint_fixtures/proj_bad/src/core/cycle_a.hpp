// Fixture: one half of an include cycle.
#pragma once
#include "core/cycle_b.hpp"
