// Fixture: racy floating-point accumulation inside a parallel region —
// a shared += and a fetch_add on an atomic<double>, both inside the
// parallel_for call's argument list.
#include <atomic>
#include <cstddef>

namespace fx {

struct Pool {
  template <typename F>
  void parallel_for(std::size_t n, F f);
};

double reduce(Pool& pool, const double* xs, std::size_t n) {
  double total = 0.0;
  std::atomic<double> atomic_total{0.0};
  pool.parallel_for(n, [&](std::size_t i) {
    total += xs[i];
    atomic_total.fetch_add(xs[i]);
  });
  return total;
}

struct LaneExecutor {
  template <typename F>
  void run_epoch(std::size_t n, F f);
};

double reduce_epoch(LaneExecutor& exec, const double* xs, std::size_t n) {
  double sum = 0.0;
  exec.run_epoch(n, [&](std::size_t i) { sum += xs[i]; });
  return sum;
}

}  // namespace fx
