// Fixture: deprecated two-tier aliases used outside src/mem/.
enum class Tier { kFast, kSlow };
bool is_fast(Tier t) {
  return t == Tier::kFast;
}
bool is_slow(Tier t) {
  return t == Tier::kSlow;
}
