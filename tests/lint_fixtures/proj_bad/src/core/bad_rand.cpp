// Fixture: every nondeterminism source the rule knows about.
#include <ctime>
#include <random>

unsigned noisy_seed() {
  std::random_device rd;
  return rd() + static_cast<unsigned>(time(nullptr)) +
         static_cast<unsigned>(rand());
}
