// Fixture: pointer-valued ordering keys; allocation order is ASLR-
// dependent, so both containers are flagged.
#include <map>
#include <set>

namespace fx {
struct Region {};
std::map<Region*, int> residency;
std::set<const Region*> active;
}  // namespace fx
