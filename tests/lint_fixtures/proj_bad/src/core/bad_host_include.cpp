// Fixture: host.hpp is platform-internal; core must not reach around the
// engine/cluster facades.
#include "platform/host.hpp"

int core_uses_host() { return 0; }
