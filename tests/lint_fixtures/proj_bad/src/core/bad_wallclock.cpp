// Fixture: wall-clock reads outside bench/. Neither clock is in the
// legacy nondeterminism list, so only det-wallclock fires.
#include <chrono>

namespace fx {
long now_ns() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::high_resolution_clock::now();
  return (t1 - t0.time_since_epoch().zero()).time_since_epoch().count();
}
}  // namespace fx
