// Fixture: upward include — mem (layer 1) reaching into platform
// (layer 6). The target header does not need to exist; layering maps the
// include target by path prefix.
#include "platform/arbiter.hpp"

namespace fx {
int use_arbiter() { return 0; }
}  // namespace fx
