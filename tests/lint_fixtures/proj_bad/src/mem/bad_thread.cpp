// Fixture: ad-hoc thread spawning outside the sanctioned modules.
#include <thread>

void spawn() {
  std::thread t([] {});
  t.join();
}
