// Fixture: peer-layer include — vmm and damon share a layer and must not
// include each other.
#include "damon/regions.hpp"

namespace fx {
int use_regions() { return 0; }
}  // namespace fx
