// Fixture: bare condition-variable wait with no predicate — hangs forever
// on a missed notify (unbounded-wait).
#include <condition_variable>
#include <mutex>

namespace bad {

void stall_forever(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock);
}

}  // namespace bad
