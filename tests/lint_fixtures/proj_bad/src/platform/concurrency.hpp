// Fixture: stand-in for the work-stealing executor header. Files whose
// include closure reaches this path are "ledger-feeding" for
// det-unordered-iter even when they never touch metrics.hpp.
#pragma once

namespace fx {
struct LaneExecutor {
  int workers = 0;
};
}  // namespace fx
