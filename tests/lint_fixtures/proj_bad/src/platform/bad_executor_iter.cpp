// Fixture: the executor header alone roots the ledger-feeding set — this
// file never includes metrics.hpp, yet its unordered walk must be flagged
// because anything the executor fans out feeds a ledger from a
// steal-ordered worker.
#include <unordered_map>

#include "platform/concurrency.hpp"

namespace fx {

struct StealStats {
  std::unordered_map<int, long> steals_;

  long total() const {
    long sum = 0;
    for (const auto& kv : steals_) sum += kv.second;
    return sum;
  }
};

}  // namespace fx
