// Fixture: stand-in for the metrics ledger header. Files whose include
// closure reaches this path are "ledger-feeding" for det-unordered-iter.
#pragma once

namespace fx {
struct MetricsRegistry {
  int series = 0;
};
}  // namespace fx
