// Fixture: walking unordered containers in a ledger-feeding TU (the
// include below puts metrics.hpp in this file's closure). Hash order is
// unspecified, so both the range-for and the begin() call are flagged.
#include <unordered_map>
#include <unordered_set>

#include "platform/metrics.hpp"

namespace fx {

struct Rollup {
  std::unordered_map<int, long> counts_;
  std::unordered_set<int> ids_;

  long total() const {
    long sum = 0;
    for (const auto& kv : counts_) sum += kv.second;
    return sum;
  }
  int first() const { return *ids_.begin(); }
};

}  // namespace fx
