// Fixture: both platform-throw shapes, plus a raw assert.
#include <stdexcept>

void fail() { throw std::out_of_range("boom"); }

void rethrow() {
  try {
    fail();
  } catch (...) {
    throw;
  }
}

void check(int x) { assert(x > 0); }
