// Fixture: lexically nested guards acquired against rank order. The pass
// reads the enum values and the member declarations from this same file.
#include <mutex>

namespace fx {

enum class LockRank : int {
  kScheduler = 10,
  kRegistry = 20,
};

class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name);
};

struct Engine {
  RankedMutex sched_{LockRank::kScheduler, "sched"};
  RankedMutex registry_{LockRank::kRegistry, "registry"};

  void flush() {
    std::lock_guard<RankedMutex> outer(registry_);
    std::lock_guard<RankedMutex> inner(sched_);
  }
};

}  // namespace fx
