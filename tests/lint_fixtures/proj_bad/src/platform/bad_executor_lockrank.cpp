// Fixture: the work-stealing executor's low ranks — a deque lock may never
// be taken while a platform lock is held; two deque locks share a rank, so
// holding both is a potential ABBA and is flagged too.
#include <mutex>

namespace fx {

enum class LockRank : int {
  kExecQueue = 4,
  kExecPark = 6,
  kEpochScheduler = 10,
};

class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name);
};

struct Executor {
  RankedMutex queue_{LockRank::kExecQueue, "queue"};
  RankedMutex peer_queue_{LockRank::kExecQueue, "peer_queue"};
  RankedMutex sched_{LockRank::kEpochScheduler, "sched"};

  void steal_under_barrier() {
    std::lock_guard<RankedMutex> outer(sched_);
    std::lock_guard<RankedMutex> inner(queue_);
  }

  void steal_both() {
    std::lock_guard<RankedMutex> mine(queue_);
    std::lock_guard<RankedMutex> victim(peer_queue_);
  }
};

}  // namespace fx
