// Fixture: examples see only the public surface.
#include "toss.hpp"

int main() { return 0; }
