// Fixture: a well-formed header.
#pragma once

inline int good_value() { return 1; }
