// Fixture: legacy include guard, file-level waiver. toss-lint: allow(pragma-once)
#ifndef TOSS_FIXTURE_GUARDED_HPP
#define TOSS_FIXTURE_GUARDED_HPP
inline int guarded_value() { return 7; }
#endif
