// Fixture: every rule is waivable with an allow() trailer.
#include <cstdlib>
#include <thread>

void legacy_check(int x) { assert(x > 0); }  // toss-lint: allow(raw-assert)

int legacy_seed() { return rand(); }  // toss-lint: allow(nondeterminism)

void legacy_spawn() {
  std::thread t([] {});  // toss-lint: allow(thread-spawn)
  t.join();
}
