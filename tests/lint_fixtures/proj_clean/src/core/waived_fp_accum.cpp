// Fixture: the deterministic reduction shape (per-task slots, reduced in
// index order after the join) plus one waived in-place accumulation.
#include <cstddef>
#include <vector>

namespace fx {

struct Pool {
  template <typename F>
  void parallel_for(std::size_t n, F f);
};

double reduce(Pool& pool, const double* xs, std::size_t n) {
  std::vector<double> partial(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) { partial[i] = xs[i] * 2.0; });
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += partial[i];
  return total;
}

double reduce_serial(Pool& pool, const double* xs, std::size_t n) {
  double total = 0.0;
  pool.parallel_for(1, [&](std::size_t) {
    for (std::size_t i = 0; i < n; ++i)
      total += xs[i];  // toss-lint: allow(det-fp-accum)
  });
  return total;
}

}  // namespace fx
