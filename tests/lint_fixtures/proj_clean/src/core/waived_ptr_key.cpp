// Fixture: the preferred stable-id key next to a waived pointer key (an
// arena that hands out pointers in deterministic order).
#include <map>

namespace fx {
struct Node {};
std::map<long, int> by_id;
std::map<const Node*, int> interned;  // toss-lint: allow(det-ptr-key)
}  // namespace fx
