// Fixture: a known include cycle, waived on both edges (the finding
// lands on whichever edge the DFS closes, so both lines carry trailers).
#pragma once
#include "core/waived_cycle_b.hpp"  // toss-lint: allow(include-cycle)
