// Fixture: second half of the waived include cycle.
#pragma once
#include "core/waived_cycle_a.hpp"  // toss-lint: allow(include-cycle)
