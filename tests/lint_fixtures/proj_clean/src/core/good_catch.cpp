// Fixture: sanctioned catch handlers — typed, non-empty bodies, and one
// deliberate swallow waived with an allow() trailer.
void risky();
void note(const char*);

void handled() {
  try {
    risky();
  } catch (const int& e) {
    note("retrying");
    (void)e;
  }
}

void waived() {
  try {
    risky();
  } catch (...) {  // toss-lint: allow(swallowed-error)
  }
}
