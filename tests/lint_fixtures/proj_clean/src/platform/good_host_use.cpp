// Fixture: files under src/platform/ may include the internal host header.
#include "platform/host.hpp"

int platform_uses_host() { return 0; }
