// Fixture: the sanctioned error paths — toss::Error in all spellings —
// plus banned words that appear only in comments and string literals
// (the stripper must ignore them: throw; assert(x); rand(); std::thread).
namespace toss {
struct Error {
  Error(int, const char*) {}
};
}  // namespace toss

using toss::Error;

void fail_plain() { throw Error(1, "assert(rand()) inside a string"); }
void fail_qualified() { throw toss::Error(2, "std::thread in a string"); }
void fail_rooted() { throw ::toss::Error(3, "time() in a string"); }

/* block comment mentioning a naked throw;
   and a raw assert(x) across lines */
