// Fixture: stand-in for the metrics ledger header (marks the files that
// include it as ledger-feeding for det-unordered-iter).
#pragma once

namespace fx {
struct MetricsRegistry {
  int series = 0;
};
}  // namespace fx
