// Fixture: a hash-order walk kept deliberately — the result (a max) is
// order-independent — so the line carries a waiver. Membership tests on
// the same containers need none: only iteration is flagged.
#include <unordered_map>

#include "platform/metrics.hpp"

namespace fx {

struct Gauge {
  std::unordered_map<int, long> counts_;

  long peak() const {
    long best = 0;
    for (const auto& kv : counts_) {  // toss-lint: allow(det-unordered-iter)
      if (kv.second > best) best = kv.second;
    }
    return best;
  }
  bool tracked(int id) const { return counts_.count(id) != 0; }
};

}  // namespace fx
