// Fixture: predicate waits and a deliberately suppressed bare wait — all
// clean for the unbounded-wait rule.
#include <condition_variable>
#include <mutex>

namespace good {

bool done = false;

void wait_with_predicate(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [] { return done; });
}

void wait_split_over_lines(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock,
          [] { return done; });
}

void wait_externally_bounded(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock);  // toss-lint: allow(unbounded-wait)
}

}  // namespace good
