// Fixture: a real-time measurement channel the ledger diff strips; the
// waiver records that this value never feeds simulated state.
#include <chrono>

namespace fx {
long wall_ns() {
  const auto t = std::chrono::steady_clock::now();  // toss-lint: allow(det-wallclock)
  return t.time_since_epoch().count();
}
}  // namespace fx
