// Fixture: rank-ordered nesting passes with no waiver; the one deliberate
// inversion (mirroring the runtime detector's death test) carries one.
#include <mutex>

namespace fx {

enum class LockRank : int {
  kScheduler = 10,
  kRegistry = 20,
};

class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name);
};

struct Engine {
  RankedMutex sched_{LockRank::kScheduler, "sched"};
  RankedMutex registry_{LockRank::kRegistry, "registry"};

  void ordered() {
    std::lock_guard<RankedMutex> outer(sched_);
    std::lock_guard<RankedMutex> inner(registry_);
  }
  void inverted_on_purpose() {
    std::lock_guard<RankedMutex> outer(registry_);
    std::lock_guard<RankedMutex> inner(sched_);  // toss-lint: allow(lock-rank)
  }
};

}  // namespace fx
