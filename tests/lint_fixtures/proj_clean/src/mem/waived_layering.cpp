// Fixture: a transitional upward include tracked by waiver until the
// shared type moves down the ladder.
#include "platform/arbiter.hpp"  // toss-lint: allow(layering)

namespace fx {
int use_arbiter() { return 0; }
}  // namespace fx
