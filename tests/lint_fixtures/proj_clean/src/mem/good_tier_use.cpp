// Fixture: src/mem/ owns the ladder, so the deprecated aliases may appear
// here (the real tree keeps them in mem/tier.hpp only).
enum class Tier { kFast, kSlow };
bool legacy_is_fast(Tier t) {
  return t == Tier::kFast;
}
