// Fixture: tier-alias is project-wide since the kFast/kSlow enumerators
// were retired — even the ladder's own directory gets no carve-out. A
// stale spelling survives only behind an explicit waiver.
enum class Tier {};
constexpr Tier tier_index(int rank) { return static_cast<Tier>(rank); }
bool legacy_is_fast(Tier t) {
  return t == Tier::kFast;  // toss-lint: allow(tier-alias)
}
