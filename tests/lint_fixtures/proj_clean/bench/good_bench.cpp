// Fixture: benches may include the umbrella header, the harness header,
// and system headers — nothing else.
#include <vector>

#include "toss.hpp"

#include "common.hpp"

int main() { return 0; }
