// Tests for the DAMON simulator: record files and the adaptive monitor.
#include <gtest/gtest.h>

#include "damon/monitor.hpp"
#include "damon/record.hpp"

namespace toss {
namespace {

TEST(DamonRecord, ValidityRules) {
  EXPECT_TRUE(DamonRecord(4, {{0, 2, 5}, {2, 2, 0}}).valid());
  EXPECT_FALSE(DamonRecord(4, {{0, 2, 5}}).valid());           // short
  EXPECT_FALSE(DamonRecord(4, {{0, 2, 5}, {3, 1, 0}}).valid()); // gap
  EXPECT_FALSE(DamonRecord(4, {{0, 0, 5}, {0, 4, 0}}).valid()); // empty region
}

TEST(DamonRecord, ToCounts) {
  DamonRecord rec(6, {{0, 2, 5}, {2, 4, 9}});
  const PageAccessCounts counts = rec.to_counts();
  EXPECT_EQ(counts.at(0), 5u);
  EXPECT_EQ(counts.at(1), 5u);
  EXPECT_EQ(counts.at(5), 9u);
}

TEST(DamonRecord, SerializeRoundtrip) {
  DamonRecord rec(100, {{0, 40, 7}, {40, 60, 123}});
  const auto bytes = rec.serialize();
  const auto back = DamonRecord::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, rec);
}

TEST(DamonRecord, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DamonRecord::deserialize({1, 2, 3}).has_value());
  auto bytes = DamonRecord(4, {{0, 4, 1}}).serialize();
  bytes[0] ^= 0xff;  // corrupt magic
  EXPECT_FALSE(DamonRecord::deserialize(bytes).has_value());
  bytes = DamonRecord(4, {{0, 4, 1}}).serialize();
  bytes.resize(bytes.size() - 3);  // truncated
  EXPECT_FALSE(DamonRecord::deserialize(bytes).has_value());
}

class DamonMonitorTest : public ::testing::Test {
 protected:
  DamonConfig cfg;
  Rng rng{42};

  PageAccessCounts pattern_with_hot_region(u64 pages) {
    PageAccessCounts counts(pages);
    for (u64 p = 100; p < 300; ++p) counts.set(p, 50);
    for (u64 p = 1000; p < 1020; ++p) counts.set(p, 2000);
    return counts;
  }
};

TEST_F(DamonMonitorTest, RecordCoversSpaceAndQuantized) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(4096);
  const DamonOutput out = monitor.monitor(counts, ms(100), rng);
  EXPECT_TRUE(out.record.valid());
  for (const auto& r : out.record.regions()) {
    // Regions never smaller than the 16 KiB minimum (except trailing).
    if (r.page_end() != 4096)
      EXPECT_GE(r.page_count, cfg.min_region_pages);
  }
}

TEST_F(DamonMonitorTest, ZeroRegionsStayZero) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(4096);
  const DamonOutput out = monitor.monitor(counts, ms(100), rng);
  const PageAccessCounts est = out.record.to_counts();
  // Untouched pages must be reported untouched (the zero/nonzero boundary
  // is TOSS's most important signal).
  for (u64 p = 0; p < 96; ++p) EXPECT_EQ(est.at(p), 0u);
  for (u64 p = 2000; p < 4096; ++p) ASSERT_EQ(est.at(p), 0u) << p;
}

TEST_F(DamonMonitorTest, EstimatesScaledTrueCounts) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(4096);
  const DamonOutput out = monitor.monitor(counts, sec(1), rng);
  const PageAccessCounts est = out.record.to_counts();
  // Hot region estimate within 50% of scaled truth (generous: sampling).
  const double want = 2000 * cfg.count_scale;
  const double got = static_cast<double>(est.at(1010));
  EXPECT_GT(got, want * 0.5);
  EXPECT_LT(got, want * 1.5);
}

TEST_F(DamonMonitorTest, LongerRunsLessNoise) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(4096);
  const double want = 50 * cfg.count_scale;
  auto mean_err = [&](Nanos exec) {
    double err = 0;
    int n = 0;
    Rng local(7);
    for (int i = 0; i < 20; ++i) {
      const auto out = monitor.monitor(counts, exec, local);
      const auto est = out.record.to_counts();
      err += std::abs(static_cast<double>(est.at(150)) - want) / want;
      ++n;
    }
    return err / n;
  };
  EXPECT_LE(mean_err(sec(1)), mean_err(us(50)) + 0.02);
}

TEST_F(DamonMonitorTest, MaxRegionsCapRespected) {
  DamonConfig small = cfg;
  small.max_regions = 8;
  DamonMonitor monitor(small);
  // Highly fragmented pattern: alternating intensities.
  PageAccessCounts counts(1024);
  Rng local(3);
  for (u64 p = 0; p < 1024; ++p) counts.set(p, 1 + local.next_below(1000));
  const auto out = monitor.monitor(counts, ms(10), rng);
  EXPECT_LE(out.record.region_count(), 8u);
  EXPECT_TRUE(out.record.valid());
}

TEST_F(DamonMonitorTest, OverheadNearThreePercent) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(32768);
  const auto out = monitor.monitor(counts, ms(200), rng);
  const double frac = out.overhead_ns / ms(200);
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.08);
}

TEST_F(DamonMonitorTest, SamplesScaleWithExecTime) {
  DamonMonitor monitor(cfg);
  const auto counts = pattern_with_hot_region(1024);
  const auto a = monitor.monitor(counts, us(100), rng);
  const auto b = monitor.monitor(counts, ms(10), rng);
  EXPECT_EQ(a.samples, 10u);     // 100us / 10us
  EXPECT_EQ(b.samples, 1000u);
}

TEST_F(DamonMonitorTest, SimilarNeighborsMerged) {
  DamonMonitor monitor(cfg);
  // One flat plateau: should collapse into very few regions.
  PageAccessCounts counts(4096);
  for (u64 p = 0; p < 4096; ++p) counts.set(p, 100);
  const auto out = monitor.monitor(counts, sec(1), rng);
  EXPECT_LT(out.record.region_count(), 200u);  // far fewer than 1024 chunks
}

}  // namespace
}  // namespace toss
