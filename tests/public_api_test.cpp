// Enforces the public-header policy (DESIGN.md "Public API"): examples and
// benches may include only the umbrella header `toss.hpp` (plus the bench
// harness's own `common.hpp` and system/third-party headers). Deep internal
// headers — core/, vmm/, mem/, platform/, ... — are implementation detail.
//
// The build passes the source root via TOSS_SOURCE_DIR, so this runs as a
// normal ctest case instead of a separate CI lint step.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::string include;
};

std::vector<Violation> scan_directory(const fs::path& dir) {
  std::vector<Violation> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const fs::path& path = entry.path();
    const std::string ext = path.extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const size_t pos = line.find("#include \"");
      if (pos == std::string::npos) continue;
      const size_t begin = pos + 10;
      const size_t end = line.find('"', begin);
      if (end == std::string::npos) continue;
      const std::string target = line.substr(begin, end - begin);
      if (target == "toss.hpp" || target == "common.hpp") continue;
      out.push_back({path.filename().string(), target});
    }
  }
  return out;
}

TEST(PublicApi, ExamplesAndBenchesIncludeOnlyTheUmbrellaHeader) {
  const fs::path root = TOSS_SOURCE_DIR;
  ASSERT_TRUE(fs::exists(root / "src" / "toss.hpp"))
      << "umbrella header missing";
  for (const char* sub : {"examples", "bench"}) {
    const std::vector<Violation> violations = scan_directory(root / sub);
    for (const Violation& v : violations)
      ADD_FAILURE() << sub << "/" << v.file << " includes internal header \""
                    << v.include << "\"; include \"toss.hpp\" instead";
  }
}

}  // namespace
