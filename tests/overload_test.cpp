// Tests for overload robustness (DESIGN.md §9): the fast-tier budget
// arbiter's degradation ladder, bounded admission queues under a 10x
// offered load, deadline-aware shedding, the lane watchdog, and the
// determinism contract — shed/demote/recover ledgers must be bit-identical
// for any worker thread count at a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/engine.hpp"
#include "util/error.hpp"
#include "workloads/functions.hpp"

namespace toss {
namespace {

TossOptions fast_toss() {
  TossOptions opt;
  opt.stable_invocations = 4;
  opt.max_profiling_invocations = 30;
  return opt;
}

// ---------------------------------------------------------------------------
// FastTierArbiter unit tests: the ladder in isolation, with synthetic lane
// demands and a scripted re-tier hook.
// ---------------------------------------------------------------------------

FastTierArbiter::LaneDemand demand(size_t lane, const std::string& name,
                                   u64 fast_bytes, bool active = true,
                                   bool demotable = true) {
  FastTierArbiter::LaneDemand d;
  d.lane = lane;
  d.name = &name;
  d.active = active;
  d.demotable = demotable;
  d.fast_bytes = fast_bytes;
  return d;
}

TEST(Arbiter, DemotesLargestFirstAndPromotesLifoOnePerTick) {
  ArbiterOptions opt;
  opt.enabled = true;
  opt.keepalive = false;
  opt.demote_step = 0.5;
  FastTierArbiter arb(opt, /*fast_budget_bytes=*/50);
  const std::string f0 = "f0", f1 = "f1";

  // Record every re-tier the arbiter asks for: (lane, rung, bound).
  struct Call {
    size_t lane;
    int rung;
    RetierBound bound;
  };
  std::vector<Call> calls;
  const auto apply = [&](size_t lane, int rung,
                         const RetierBound& bound) -> std::optional<u64> {
    calls.push_back({lane, rung, bound});
    // Pretend the placement lands exactly on the cap; a tier floor leaves
    // nothing on the fastest rank.
    if (bound.max_fast_bytes) return *bound.max_fast_bytes;
    return bound.min_tier_rank > 0 ? u64{0} : u64{80};
  };

  // Tick 0: f0=80 + f1=20 = 100 > 50. Ladder: f0 -> rung 1 (cap 40, still
  // 60 > 50), then f0 again (largest at 40 > 20) -> rung 2 (floor at the
  // slow tier: 0 fast bytes) = 20.
  arb.tick(0, {demand(0, f0, 80), demand(1, f1, 20, true, false)}, apply);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].lane, 0u);
  EXPECT_EQ(calls[0].rung, 1);
  EXPECT_EQ(calls[0].bound.max_fast_bytes, std::optional<u64>(40));
  EXPECT_EQ(calls[0].bound.min_tier_rank, 0u);
  EXPECT_EQ(calls[1].rung, 2);
  EXPECT_FALSE(calls[1].bound.max_fast_bytes.has_value());
  EXPECT_EQ(calls[1].bound.min_tier_rank, 1u);
  EXPECT_EQ(arb.rung(0), 2);
  EXPECT_EQ(arb.resident_fast_bytes(), 20u);
  EXPECT_FALSE(arb.admission_closed());

  // Tick 1: f1 gone, f0 still demoted to 0 bytes. Recovery promotes one
  // rung per tick: rung 2 -> 1 under the recorded rung-1 cap (fits: 40).
  calls.clear();
  arb.tick(1, {demand(0, f0, 0)}, apply);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].rung, 1);
  EXPECT_EQ(calls[0].bound.max_fast_bytes, std::optional<u64>(40));
  EXPECT_EQ(arb.rung(0), 1);

  // Tick 2: rung 1 -> 0 would restore 80 bytes > 50: hysteresis holds it.
  calls.clear();
  arb.tick(2, {demand(0, f0, 40)}, apply);
  EXPECT_TRUE(calls.empty());
  EXPECT_EQ(arb.rung(0), 1);

  const ArbiterReport r = arb.report();
  EXPECT_EQ(r.demotions, 2u);
  EXPECT_EQ(r.promotions, 1u);
  EXPECT_EQ(r.peak_resident_fast_bytes, 100u);
  EXPECT_EQ(r.events.size(), 3u);
}

TEST(Arbiter, DeepLadderDemotesOneRankPerRung) {
  // A 3-tier host gets a 3-rung demotion ladder: rung 1 caps the fast
  // bytes, rung 2 floors the image at rank 1, rung 3 at rank 2 — one
  // ladder rank per rung, never skipping.
  ArbiterOptions opt;
  opt.enabled = true;
  opt.keepalive = false;
  opt.demote_step = 0.5;
  FastTierArbiter arb(opt, /*fast_budget_bytes=*/20,
                      SystemConfig::cxl_host().tier_count());
  EXPECT_EQ(arb.max_rung(), 3);
  const std::string f0 = "f0", f1 = "pinned";

  std::vector<std::pair<int, RetierBound>> calls;
  const auto apply = [&](size_t, int rung,
                         const RetierBound& bound) -> std::optional<u64> {
    calls.push_back({rung, bound});
    if (bound.max_fast_bytes) return *bound.max_fast_bytes;
    // A floor at rank 1 still leaves 20 warm bytes on rank 0 in this
    // script; the deepest floor leaves nothing.
    return bound.min_tier_rank >= 2 ? u64{0} : u64{20};
  };

  // Tick 0: f0=80 plus an undemotable 15 against a 20-byte budget. The
  // ladder must walk rung 1 (cap 40), rung 2 (floor rank 1 -> 20), rung 3
  // (floor rank 2 -> 0) in order, one rank at a time.
  arb.tick(0, {demand(0, f0, 80), demand(1, f1, 15, true, false)}, apply);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0].first, 1);
  EXPECT_EQ(calls[0].second.max_fast_bytes, std::optional<u64>(40));
  EXPECT_EQ(calls[0].second.min_tier_rank, 0u);
  EXPECT_EQ(calls[1].first, 2);
  EXPECT_FALSE(calls[1].second.max_fast_bytes.has_value());
  EXPECT_EQ(calls[1].second.min_tier_rank, 1u);
  EXPECT_EQ(calls[2].first, 3);
  EXPECT_EQ(calls[2].second.min_tier_rank, 2u);
  EXPECT_EQ(arb.rung(0), 3);
  EXPECT_EQ(arb.resident_fast_bytes(), 15u);
  EXPECT_FALSE(arb.admission_closed());

  // Tick 1: the pinned lane is gone. Recovery climbs exactly one rung
  // (3 -> 2, restoring the recorded 20 bytes, which fits).
  calls.clear();
  arb.tick(1, {demand(0, f0, 0)}, apply);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 2);
  EXPECT_EQ(calls[0].second.min_tier_rank, 1u);
  EXPECT_EQ(arb.rung(0), 2);

  // Tick 2: rung 2 -> 1 would restore 40 bytes > 20: hysteresis holds it.
  calls.clear();
  arb.tick(2, {demand(0, f0, 20)}, apply);
  EXPECT_TRUE(calls.empty());
  EXPECT_EQ(arb.rung(0), 2);

  // The ledger itself records the one-rung walk: 1, 2, 3 down, 2 up.
  const ArbiterReport r = arb.report();
  EXPECT_EQ(r.demotions, 3u);
  EXPECT_EQ(r.promotions, 1u);
  int prev = 0;
  for (const ArbiterEvent& e : r.events) {
    if (e.action == ArbiterAction::kDemote) {
      EXPECT_EQ(e.rung, prev + 1);
      prev = e.rung;
    } else if (e.action == ArbiterAction::kPromote) {
      EXPECT_EQ(e.rung, prev - 1);
      prev = e.rung;
    }
    EXPECT_LE(e.rung, arb.max_rung());
  }
  EXPECT_EQ(prev, 2);
}

TEST(Arbiter, EvictsWarmthBeforeDemotingAnyone) {
  ArbiterOptions opt;
  opt.enabled = true;
  opt.keepalive = true;
  FastTierArbiter arb(opt, 100);
  const std::string active = "active", finished = "finished";
  size_t retiers = 0;
  const auto apply = [&](size_t, int,
                         const RetierBound&) -> std::optional<u64> {
    ++retiers;
    return std::nullopt;
  };

  // The finished lane parks a 50-byte warm VM; with the active lane's 60
  // bytes the fleet is 10 over budget. Rung A (evict warmth) must resolve
  // it without a single re-tier.
  FastTierArbiter::LaneDemand done = demand(1, finished, 50, false, false);
  done.just_finished = true;
  done.cold_cost_ns = ms(1);
  arb.tick(0, {demand(0, active, 60), done}, apply);

  EXPECT_EQ(retiers, 0u);
  EXPECT_EQ(arb.resident_fast_bytes(), 60u);
  const ArbiterReport r = arb.report();
  EXPECT_EQ(r.keepalive_evictions, 1u);
  EXPECT_EQ(r.demotions, 0u);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].action, ArbiterAction::kEvictWarm);
  EXPECT_EQ(r.events[0].function, finished);
}

TEST(Arbiter, ClosesAdmissionWhenLadderExhaustedAndReopens) {
  ArbiterOptions opt;
  opt.enabled = true;
  FastTierArbiter arb(opt, 100);
  const std::string f0 = "profiling";
  size_t retiers = 0;
  const auto apply = [&](size_t, int,
                         const RetierBound&) -> std::optional<u64> {
    ++retiers;
    return std::nullopt;
  };

  // A profiling lane (not demotable) pins 200 bytes: nothing to evict,
  // nothing to demote -> rung C.
  arb.tick(0, {demand(0, f0, 200, true, false)}, apply);
  EXPECT_TRUE(arb.admission_closed());
  EXPECT_EQ(retiers, 0u);

  // Sustained pressure is one closure, not one per tick.
  arb.tick(1, {demand(0, f0, 200, true, false)}, apply);
  EXPECT_EQ(arb.report().admission_closures, 1u);

  // Pressure subsides (the lane tiered at 50 bytes): admission reopens.
  arb.tick(2, {demand(0, f0, 50, true, false)}, apply);
  EXPECT_FALSE(arb.admission_closed());

  const auto& ev = arb.report().events;
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].action, ArbiterAction::kCloseAdmission);
  EXPECT_EQ(ev[1].action, ArbiterAction::kOpenAdmission);
}

TEST(Arbiter, PrewarmHintsSteerRungAEvictions) {
  // Prewarm handshake: two identical warm VMs park at tick 0; "alpha"
  // carries a predicted-soon reuse hint, "zeta" none. Under pressure the
  // unhinted VM must go first — even though the name tie-break alone would
  // have evicted "alpha".
  const std::string alpha = "alpha", zeta = "zeta", busy = "busy";
  const auto park = [&](FastTierArbiter& arb) {
    FastTierArbiter::LaneDemand soon = demand(0, alpha, 40, false, false);
    soon.just_finished = true;
    soon.cold_cost_ns = ms(1);
    soon.predicted_reuse_gap_ns = ms(1);
    FastTierArbiter::LaneDemand plain = demand(1, zeta, 40, false, false);
    plain.just_finished = true;
    plain.cold_cost_ns = ms(1);
    const auto apply = [](size_t, int, const RetierBound&) {
      return std::optional<u64>{};
    };
    arb.tick(0, {soon, plain}, apply);  // 80 <= 100: both stay warm
    arb.tick(1, {demand(2, busy, 60, true, false)}, apply);  // 140 > 100
  };

  ArbiterOptions opt;
  opt.enabled = true;
  FastTierArbiter hinted(opt, 100);
  park(hinted);
  ArbiterReport r = hinted.report();
  EXPECT_EQ(r.keepalive_evictions, 1u);
  ASSERT_FALSE(r.events.empty());
  EXPECT_EQ(r.events.back().action, ArbiterAction::kEvictWarm);
  EXPECT_EQ(r.events.back().function, zeta);
  EXPECT_EQ(r.warm_count, 1u);

  // Same script with hints off: the gap is dropped at insert, priorities
  // tie, and the (priority, function_id) tie-break evicts "alpha".
  opt.prewarm_hints = false;
  FastTierArbiter blind(opt, 100);
  park(blind);
  r = blind.report();
  ASSERT_FALSE(r.events.empty());
  EXPECT_EQ(r.events.back().function, alpha);
}

// ---------------------------------------------------------------------------
// Engine integration: bounded queues, deadlines, watchdog, arbiter ladder,
// and cross-thread-count determinism of every ledger.
// ---------------------------------------------------------------------------

std::unique_ptr<PlatformEngine> single_lane(const EngineOptions& opts,
                                            std::vector<Request> stream,
                                            const std::string& suffix = "") {
  auto engine = std::make_unique<PlatformEngine>(
      SystemConfig::paper_default(), PricingPlan{}, opts);
  FunctionSpec spec = workloads::all_functions()[0];
  spec.name += suffix;
  EXPECT_TRUE(engine
                  ->add(FunctionRegistration(std::move(spec))
                            .policy(PolicyKind::kToss)
                            .toss(fast_toss())
                            .seed(42),
                        std::move(stream))
                  .ok());
  return engine;
}

TEST(Overload, BoundedQueueNeverExceedsDepthAndShedsDeterministically) {
  // ~10x offered load: microsecond arrival gaps against millisecond-scale
  // service times, into a queue bounded at depth 4.
  constexpr size_t kDepth = 4;
  constexpr size_t kRequests = 60;
  EngineOptions opts;
  opts.max_lane_queue = kDepth;
  opts.chunk = 4;
  const auto stream = [] {
    return RequestGenerator::open_loop(RequestGenerator::round_robin(60, 9),
                                       us(1), 0, 9);
  };

  auto engine = single_lane(opts, stream());
  const EngineReport report = engine->run(1).value();
  ASSERT_EQ(report.functions.size(), 1u);
  const FunctionReport& f = report.functions[0];

  EXPECT_EQ(f.overload.offered, kRequests);
  EXPECT_LE(f.overload.queue_peak, kDepth);
  EXPECT_GT(f.overload.total_shed(), 0u);
  EXPECT_EQ(f.overload.offered,
            f.overload.completed + f.overload.total_shed());
  EXPECT_EQ(f.overload.completed, f.stats.invocations);
  EXPECT_EQ(f.shed_events.size(), f.overload.total_shed());
  for (const ShedEvent& e : f.shed_events)
    EXPECT_EQ(e.cause, ShedCause::kQueueFull);

  // Same configuration, fresh engine: the shed ledger is reproducible.
  auto again = single_lane(opts, stream());
  const EngineReport repeat = again->run(1).value();
  EXPECT_EQ(repeat.functions[0].shed_events, f.shed_events);
  EXPECT_EQ(repeat.functions[0].overload, f.overload);

  // Oldest-drop keeps newcomers: same bound, different victims.
  EngineOptions oldest = opts;
  oldest.drop_policy = DropPolicy::kOldestDrop;
  const EngineReport od = single_lane(oldest, stream())->run(1).value();
  const FunctionReport& g = od.functions[0];
  EXPECT_LE(g.overload.queue_peak, kDepth);
  EXPECT_EQ(g.overload.offered,
            g.overload.completed + g.overload.total_shed());
  EXPECT_GT(g.overload.total_shed(), 0u);
  EXPECT_NE(g.shed_events, f.shed_events);
  // The newest request always wins a slot under oldest-drop.
  for (const ShedEvent& e : g.shed_events)
    EXPECT_NE(e.request_index, kRequests - 1);
}

TEST(Overload, DeadlineExpiredWorkIsShedBeforeRestore) {
  EngineOptions opts;
  opts.enforce_deadlines = true;
  auto engine = single_lane(
      opts, RequestGenerator::open_loop(RequestGenerator::round_robin(30, 5),
                                        us(1), /*relative_deadline_ns=*/us(200),
                                        5));
  const EngineReport report = engine->run(1).value();
  const FunctionReport& f = report.functions[0];

  // The first pop starts before its deadline and is served (late: an SLO
  // miss, not a shed); everything queued behind a millisecond-scale service
  // time is already SLO-dead and must be shed without costing a restore.
  EXPECT_GE(f.overload.completed, 1u);
  EXPECT_GT(f.overload.shed_by(ShedCause::kDeadlineExpired), 0u);
  EXPECT_GE(f.overload.deadline_misses, 1u);
  EXPECT_EQ(f.stats.invocations, f.overload.completed);
  EXPECT_EQ(f.outcomes.size(), f.overload.completed);

  // Shed requests surface as typed, non-transient rejections.
  ASSERT_FALSE(f.shed_events.empty());
  const Error err = shed_error(f.name, f.shed_events[0]);
  EXPECT_EQ(err.code(), ErrorCode::kOverloaded);
  EXPECT_NE(std::string(err.what()).find("shed"), std::string::npos);
  EXPECT_FALSE(is_transient(ErrorCode::kOverloaded));

  // Metrics mirror the ledger under the versioned layout (v3 added the
  // host tag the cluster rollup keys on, v4 the per-tier rollup, v5 the
  // host-lost shed counter and health rollup).
  const std::string json = report.metrics.to_json();
  EXPECT_NE(json.find("\"schema\":" +
                      std::to_string(MetricsSnapshot::kJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"host\":\"host0\""), std::string::npos);
  EXPECT_NE(json.find("\"overload\":{"), std::string::npos);
  EXPECT_NE(json.find("\"shed_deadline\":"), std::string::npos);
}

TEST(Overload, GlobalQueueBoundTrimsTheLongestLane) {
  EngineOptions opts;
  opts.max_global_queue = 6;
  opts.chunk = 2;
  auto engine = std::make_unique<PlatformEngine>(
      SystemConfig::paper_default(), PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  for (size_t i = 0; i < 3; ++i) {
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    ASSERT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(fast_toss())
                              .seed(7 + i),
                          RequestGenerator::open_loop(
                              RequestGenerator::round_robin(40, 11 + i),
                              us(1), 0, 11 + i))
                    .ok());
  }
  const EngineReport report = engine->run(2).value();
  u64 shed_global = 0;
  for (const FunctionReport& f : report.functions) {
    shed_global += f.overload.shed_by(ShedCause::kGlobalOverload);
    EXPECT_EQ(f.overload.offered,
              f.overload.completed + f.overload.total_shed())
        << f.name;
  }
  EXPECT_GT(shed_global, 0u);
  EXPECT_EQ(report.total_shed(), shed_global);
}

TEST(Overload, WatchdogTripsTheLaneBreaker) {
  EngineOptions opts;
  opts.watchdog_chunk_budget_ns = 1;  // any non-empty chunk blows the bound
  auto engine = single_lane(opts, RequestGenerator::round_robin(20, 3));
  const EngineReport report = engine->run(1).value();
  const FunctionReport& f = report.functions[0];

  EXPECT_GT(f.overload.watchdog_trips, 0u);
  EXPECT_EQ(f.overload.completed, 20u);  // degraded, not dropped
  const ServerlessPlatform* host = engine->lane_host(f.name);
  ASSERT_NE(host, nullptr);
  ASSERT_NE(host->breaker(f.name), nullptr);
  EXPECT_GT(host->breaker(f.name)->opened_count(), 0u);

  const FunctionMetrics* m = report.metrics.find(f.name);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->watchdog_trips, f.overload.watchdog_trips);
}

TEST(Overload, ArbiterDemotesUntilFleetFitsAndRecovers) {
  // Probe the unconstrained tiered footprint of the spec all three lanes
  // share (same seed + stream prefix -> identical placements).
  u64 unconstrained = 0;
  {
    auto probe = std::make_unique<PlatformEngine>(SystemConfig::paper_default(),
                                                  PricingPlan{},
                                                  EngineOptions{});
    FunctionSpec spec = workloads::all_functions()[0];
    const std::string name = spec.name;
    ASSERT_TRUE(probe
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(fast_toss())
                              .seed(42),
                          RequestGenerator::round_robin(40, 9))
                    .ok());
    ASSERT_TRUE(probe->run(1).ok());
    ASSERT_NE(probe->toss_state(name), nullptr);
    ASSERT_EQ(probe->toss_state(name)->phase(), TossPhase::kTiered);
    unconstrained = probe->toss_state(name)->fast_resident_bytes();
  }
  ASSERT_GT(unconstrained, 0u);

  // Budget fits 1.5 identical lanes: with three active, the arbiter must
  // demote; once two finish, the survivor gets promoted back.
  const u64 budget = unconstrained + unconstrained / 2;
  EngineOptions opts;
  opts.chunk = 2;
  opts.arbiter.enabled = true;
  opts.arbiter.fast_budget_bytes = budget;
  opts.arbiter.keepalive = false;
  auto engine = std::make_unique<PlatformEngine>(SystemConfig::paper_default(),
                                                 PricingPlan{}, opts);
  const size_t lengths[] = {80, 40, 40};
  std::vector<std::string> names;
  for (size_t i = 0; i < 3; ++i) {
    FunctionSpec spec = workloads::all_functions()[0];
    spec.name += "#" + std::to_string(i);
    names.push_back(spec.name);
    ASSERT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(fast_toss())
                              .seed(42),
                          RequestGenerator::round_robin(lengths[i], 9))
                    .ok());
  }
  const EngineReport report = engine->run(2).value();
  const ArbiterReport& arb = report.arbiter;

  EXPECT_GE(arb.demotions, 1u);
  EXPECT_GE(arb.promotions, 1u);
  EXPECT_GT(arb.peak_resident_fast_bytes, budget);
  EXPECT_LE(arb.final_resident_fast_bytes, budget);
  EXPECT_FALSE(arb.admission_closed);
  // Profiling pins whole guest images far past the budget, and nothing is
  // demotable yet: the ladder bottoms out in a (harmless — everything had
  // already been admitted) admission closure, then reopens.
  EXPECT_GE(arb.admission_closures, 1u);

  // Ledger totals match the counters, and within an epoch warmth eviction
  // (rung A) never follows a demotion (rung B).
  u64 demotes = 0, promotes = 0, evictions = 0;
  for (size_t i = 0; i < arb.events.size(); ++i) {
    const ArbiterEvent& e = arb.events[i];
    if (e.action == ArbiterAction::kDemote) ++demotes;
    if (e.action == ArbiterAction::kPromote) ++promotes;
    if (e.action == ArbiterAction::kEvictWarm) {
      ++evictions;
      for (size_t j = 0; j < i; ++j)
        if (arb.events[j].epoch == e.epoch)
          EXPECT_NE(arb.events[j].action, ArbiterAction::kDemote);
    }
  }
  EXPECT_EQ(demotes, arb.demotions);
  EXPECT_EQ(promotes, arb.promotions);
  EXPECT_EQ(evictions, arb.keepalive_evictions);

  // Nothing was lost to the ladder: every admitted request completed, and
  // the long-running survivor ended back at an unconstrained placement.
  for (const FunctionReport& f : report.functions) {
    EXPECT_EQ(f.overload.completed, f.overload.offered) << f.name;
    EXPECT_EQ(f.overload.total_shed(), 0u) << f.name;
  }
  const TossFunction* survivor = engine->toss_state(names[0]);
  ASSERT_NE(survivor, nullptr);
  EXPECT_FALSE(survivor->fast_budget().has_value());
  u64 lane_demotions = 0, lane_promotions = 0;
  for (const FunctionReport& f : report.functions) {
    lane_demotions += f.overload.demotions;
    lane_promotions += f.overload.promotions;
  }
  EXPECT_EQ(lane_demotions, arb.demotions);
  EXPECT_EQ(lane_promotions, arb.promotions);
}

TEST(Overload, LadderHostDemotesOneRungAtATime) {
  // On a 3-tier CXL host the arbiter's ladder has a rung per tier; every
  // demotion in the engine-level ledger must move its function exactly one
  // rung down from where it stood, and every promotion one rung up.
  // matmul: the Table-I function that keeps a rank-0 sliver even under the
  // CXL host's milder offload penalty, so there is something to demote.
  u64 unconstrained = 0;
  const SystemConfig cfg = SystemConfig::cxl_host();
  {
    auto probe = std::make_unique<PlatformEngine>(cfg, PricingPlan{},
                                                  EngineOptions{});
    FunctionSpec spec = workloads::matmul();
    const std::string name = spec.name;
    ASSERT_TRUE(probe
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(fast_toss())
                              .seed(42),
                          RequestGenerator::round_robin(40, 9))
                    .ok());
    ASSERT_TRUE(probe->run(1).ok());
    ASSERT_NE(probe->toss_state(name), nullptr);
    ASSERT_EQ(probe->toss_state(name)->phase(), TossPhase::kTiered);
    unconstrained = probe->toss_state(name)->fast_resident_bytes();
  }
  ASSERT_GT(unconstrained, 0u);

  // A budget of a quarter of one lane's unconstrained footprint: the cap
  // rung alone cannot fit three lanes, so the ladder must reach the tier
  // floors.
  EngineOptions opts;
  opts.chunk = 2;
  opts.arbiter.enabled = true;
  opts.arbiter.fast_budget_bytes = std::max<u64>(unconstrained / 4, 1);
  opts.arbiter.keepalive = false;
  auto engine = std::make_unique<PlatformEngine>(cfg, PricingPlan{}, opts);
  const size_t lengths[] = {80, 40, 40};
  for (size_t i = 0; i < 3; ++i) {
    FunctionSpec spec = workloads::matmul();
    spec.name += "#" + std::to_string(i);
    ASSERT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(PolicyKind::kToss)
                              .toss(fast_toss())
                              .seed(42),
                          RequestGenerator::round_robin(lengths[i], 9))
                    .ok());
  }
  const EngineReport report = engine->run(2).value();
  const ArbiterReport& arb = report.arbiter;
  ASSERT_GE(arb.demotions, 2u);

  std::map<std::string, int> rung;
  int deepest = 0;
  for (const ArbiterEvent& e : arb.events) {
    if (e.action == ArbiterAction::kDemote) {
      EXPECT_EQ(e.rung, rung[e.function] + 1) << e.function;
      rung[e.function] = e.rung;
      deepest = std::max(deepest, e.rung);
    } else if (e.action == ArbiterAction::kPromote) {
      EXPECT_EQ(e.rung, rung[e.function] - 1) << e.function;
      rung[e.function] = e.rung;
    }
    EXPECT_GE(e.rung, 0);
    EXPECT_LE(e.rung, static_cast<int>(cfg.tier_count()));
  }
  // The squeeze was tight enough to push past the cap rung into the tier
  // floors — the part of the ladder a two-tier host cannot reach.
  EXPECT_GE(deepest, 2);

  // The ladder degrades placements; it never drops admitted work.
  for (const FunctionReport& f : report.functions) {
    EXPECT_EQ(f.overload.completed, f.overload.offered) << f.name;
    EXPECT_EQ(f.overload.total_shed(), 0u) << f.name;
  }
}

std::unique_ptr<PlatformEngine> overload_fleet(
    u64 seed, const SystemConfig& cfg = SystemConfig::paper_default()) {
  EngineOptions opts;
  opts.chunk = 3;
  opts.max_lane_queue = 6;
  opts.max_global_queue = 16;
  opts.enforce_deadlines = true;
  opts.arbiter.enabled = true;
  opts.arbiter.fast_budget_bytes = 0;  // resolve to installed DRAM capacity
  auto engine = std::make_unique<PlatformEngine>(cfg, PricingPlan{}, opts);
  const std::vector<FunctionSpec> base = workloads::all_functions();
  const PolicyKind kinds[] = {PolicyKind::kToss, PolicyKind::kToss,
                              PolicyKind::kReap, PolicyKind::kVanilla};
  for (size_t i = 0; i < 4; ++i) {
    FunctionSpec spec = base[i % base.size()];
    spec.name += "#" + std::to_string(i);
    auto stream = RequestGenerator::open_loop(
        RequestGenerator::round_robin(50, mix_seed(seed, spec.name)), us(10),
        ms(5), mix_seed(seed, spec.name));
    EXPECT_TRUE(engine
                    ->add(FunctionRegistration(std::move(spec))
                              .policy(kinds[i])
                              .toss(fast_toss())
                              .seed(seed + i),
                          std::move(stream))
                    .ok());
  }
  return engine;
}

TEST(Overload, LedgersBitIdenticalAcrossThreadCountsAndSeeds) {
  for (u64 seed : {21u, 22u, 23u}) {
    const EngineReport serial = overload_fleet(seed)->run(1).value();
    const EngineReport parallel = overload_fleet(seed)->run(4).value();

    ASSERT_EQ(serial.functions.size(), parallel.functions.size());
    for (size_t i = 0; i < serial.functions.size(); ++i) {
      const FunctionReport& a = serial.functions[i];
      const FunctionReport& b = parallel.functions[i];
      ASSERT_EQ(a.name, b.name);
      EXPECT_EQ(a.overload, b.overload) << a.name << " seed " << seed;
      EXPECT_EQ(a.shed_events, b.shed_events) << a.name << " seed " << seed;
      EXPECT_EQ(a.stats.invocations, b.stats.invocations) << a.name;
      EXPECT_GT(a.overload.offered, 0u) << a.name;
    }
    EXPECT_EQ(serial.arbiter.events, parallel.arbiter.events)
        << "seed " << seed;
    EXPECT_EQ(serial.arbiter.demotions, parallel.arbiter.demotions);
    EXPECT_EQ(serial.arbiter.promotions, parallel.arbiter.promotions);
    EXPECT_EQ(serial.arbiter.final_resident_fast_bytes,
              parallel.arbiter.final_resident_fast_bytes);
    EXPECT_EQ(serial.total_shed(), parallel.total_shed()) << "seed " << seed;
    // The load is genuinely overloading: something was shed somewhere.
    EXPECT_GT(serial.total_shed(), 0u) << "seed " << seed;
  }
}

TEST(Overload, LadderLedgersBitIdenticalAcrossThreadCounts) {
  // The determinism contract holds beyond the paper's two tiers: the same
  // overload fleet on a 3-tier CXL host sheds, demotes and recovers
  // identically for any worker thread count.
  const SystemConfig cfg = SystemConfig::cxl_host();
  const EngineReport serial = overload_fleet(33, cfg)->run(1).value();
  const EngineReport parallel = overload_fleet(33, cfg)->run(4).value();

  ASSERT_EQ(serial.functions.size(), parallel.functions.size());
  for (size_t i = 0; i < serial.functions.size(); ++i) {
    const FunctionReport& a = serial.functions[i];
    const FunctionReport& b = parallel.functions[i];
    ASSERT_EQ(a.name, b.name);
    EXPECT_EQ(a.overload, b.overload) << a.name;
    EXPECT_EQ(a.shed_events, b.shed_events) << a.name;
    EXPECT_EQ(a.stats.invocations, b.stats.invocations) << a.name;
  }
  EXPECT_EQ(serial.arbiter.events, parallel.arbiter.events);
  EXPECT_EQ(serial.arbiter.demotions, parallel.arbiter.demotions);
  EXPECT_EQ(serial.arbiter.promotions, parallel.arbiter.promotions);
  EXPECT_EQ(serial.arbiter.final_resident_fast_bytes,
            parallel.arbiter.final_resident_fast_bytes);
  EXPECT_EQ(serial.total_shed(), parallel.total_shed());
}

TEST(Overload, AddValidatesArrivalStreams) {
  EngineOptions opts;
  opts.max_lane_queue = 4;
  PlatformEngine engine(SystemConfig::paper_default(), PricingPlan{}, opts);
  FunctionSpec spec = workloads::all_functions()[0];

  std::vector<Request> unsorted = RequestGenerator::round_robin(4, 1);
  unsorted[1].arrival_ns = ms(2);
  unsorted[2].arrival_ns = ms(1);  // out of order
  auto bad = engine.add(FunctionRegistration(spec).policy(PolicyKind::kToss),
                        unsorted);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidRequest);

  std::vector<Request> negative = RequestGenerator::round_robin(2, 1);
  negative[0].deadline_ns = -1;
  auto neg = engine.add(FunctionRegistration(spec).policy(PolicyKind::kToss),
                        negative);
  ASSERT_FALSE(neg.ok());
  EXPECT_EQ(neg.code(), ErrorCode::kInvalidRequest);
}

TEST(Overload, LegacySchedulerPathIsUntouchedByDefault) {
  EngineOptions opts;
  EXPECT_FALSE(opts.overload_protection());
  auto engine = single_lane(opts, RequestGenerator::round_robin(20, 2));
  const EngineReport report = engine->run(2).value();
  const FunctionReport& f = report.functions[0];
  EXPECT_EQ(f.stats.invocations, 20u);
  EXPECT_EQ(f.overload, OverloadStats{});
  EXPECT_TRUE(f.shed_events.empty());
  EXPECT_TRUE(report.arbiter.events.empty());
}

}  // namespace
}  // namespace toss
