// Tests for the prediction-based prewarm support (Section VI-A).
#include <gtest/gtest.h>

#include "platform/prewarm.hpp"

namespace toss {
namespace {

TEST(ArrivalPredictor, NoPredictionBeforeMinSamples) {
  ArrivalPredictor p;
  p.observe(sec(0));
  p.observe(sec(10));
  EXPECT_FALSE(p.predicted_next().has_value());
  EXPECT_FALSE(p.prewarm_at().has_value());
}

TEST(ArrivalPredictor, PeriodicTrafficPredicted) {
  ArrivalPredictor p;
  for (int i = 0; i <= 10; ++i) p.observe(sec(10.0 * i));
  ASSERT_TRUE(p.predicted_next().has_value());
  // Last arrival at 100 s, modal gap ~10 s -> next around 110 s (bucket
  // centre gives half-bucket granularity).
  EXPECT_NEAR(to_sec(*p.predicted_next()), 110.0, 1.0);
  ASSERT_TRUE(p.prewarm_at().has_value());
  EXPECT_LT(*p.prewarm_at(), *p.predicted_next());
}

TEST(ArrivalPredictor, ModalGapWinsOverOutliers) {
  ArrivalPredictor p;
  Nanos t = 0;
  // Mostly 5 s gaps with two 60 s outliers.
  const double gaps[] = {5, 5, 5, 60, 5, 5, 60, 5, 5, 5};
  p.observe(t);
  for (double g : gaps) p.observe(t += sec(g));
  ASSERT_TRUE(p.predicted_next().has_value());
  EXPECT_NEAR(to_sec(*p.predicted_next() - t), 5.5, 1.0);
}

TEST(ArrivalPredictor, LongGapsClampToLastBucket) {
  PrewarmConfig cfg;
  cfg.bucket_count = 10;
  cfg.bucket_ns = sec(1);
  ArrivalPredictor p(cfg);
  Nanos t = 0;
  p.observe(t);
  for (int i = 0; i < 6; ++i) p.observe(t += sec(500));  // way off-scale
  ASSERT_TRUE(p.predicted_next().has_value());
  EXPECT_NEAR(to_sec(*p.predicted_next() - t), 9.5, 0.6);  // last bucket
}

TEST(VisibleSetup, FullWhenNoPrewarm) {
  EXPECT_DOUBLE_EQ(visible_setup_ns(sec(10), std::nullopt, ms(100)), ms(100));
}

TEST(VisibleSetup, HiddenWhenPrewarmEarlyEnough) {
  // Restore started 200 ms before arrival; setup takes 100 ms: fully hidden.
  EXPECT_DOUBLE_EQ(
      visible_setup_ns(sec(10), sec(10) - ms(200), ms(100)), 0.0);
}

TEST(VisibleSetup, PartialWhenPrewarmLate) {
  EXPECT_DOUBLE_EQ(visible_setup_ns(sec(10), sec(10) - ms(40), ms(100)),
                   ms(60));
}

TEST(VisibleSetup, FutureRestoreStartIgnored) {
  // Predicted arrival hasn't happened yet; restore scheduled after the
  // actual arrival: client sees the full setup.
  EXPECT_DOUBLE_EQ(visible_setup_ns(sec(10), sec(11), ms(100)), ms(100));
}

}  // namespace
}  // namespace toss
