// Tests for the DESIGN.md §15 parallel data-plane primitives: the
// work-stealing LaneExecutor (epoch fan-out, steal-half balancing,
// exception propagation, the startup/shutdown generation race) and the
// vmcache-style optimistic version-stamped latch. Configure with
// -DTOSS_SANITIZE=thread to have TSan audit the lock-free paths.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "platform/concurrency.hpp"
#include "util/optimistic.hpp"

namespace toss {
namespace {

// ---------------------------------------------------------------------------
// LaneExecutor

TEST(LaneExecutor, EveryIndexRunsExactlyOnce) {
  const size_t sizes[] = {0, 1, 2, 7, 16, 64, 105};
  for (int threads : {1, 2, 4}) {
    LaneExecutor exec(threads);
    EXPECT_EQ(exec.thread_count(), threads);
    for (int epoch = 0; epoch < 50; ++epoch) {
      for (const size_t n : sizes) {
        std::vector<std::atomic<int>> counts(n);
        exec.run_epoch(n, [&](size_t i) {
          counts[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < n; ++i)
          ASSERT_EQ(counts[i].load(std::memory_order_relaxed), 1)
              << "threads=" << threads << " epoch=" << epoch << " n=" << n
              << " index=" << i;
      }
    }
  }
}

TEST(LaneExecutor, SingleParticipantRunsInline) {
  LaneExecutor exec(1);
  EXPECT_EQ(exec.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  exec.run_epoch(8, [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
  EXPECT_EQ(exec.steals(), 0u);
}

TEST(LaneExecutor, FirstExceptionPropagatesAndExecutorSurvives) {
  LaneExecutor exec(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(exec.run_epoch(32,
                              [&](size_t i) {
                                if (i == 3)
                                  throw std::runtime_error("lane 3 failed");
                                completed.fetch_add(
                                    1, std::memory_order_relaxed);
                              }),
               std::runtime_error);
  // Every non-throwing index still completed — the epoch joins fully
  // before rethrowing, so no straggler leaks into the next epoch.
  EXPECT_EQ(completed.load(std::memory_order_relaxed), 31);
  // The executor is reusable after an epoch that threw.
  std::atomic<int> after{0};
  exec.run_epoch(16, [&](size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(std::memory_order_relaxed), 16);
}

TEST(LaneExecutor, UnevenLanesAreStolen) {
  // Lane costs are wildly uneven mid-drain (a cold restore is ~1000x a
  // warm hit); the executor must rebalance by stealing. Index 0 stalls its
  // owner, so the other participants run dry and must steal the stalled
  // slot's remainder. Bounded retry: one steal anywhere proves the path.
  LaneExecutor exec(4);
  std::atomic<int> total{0};
  for (int epoch = 0; epoch < 500 && exec.steals() == 0; ++epoch) {
    exec.run_epoch(64, [&](size_t i) {
      if (i == 0)
        for (int spin = 0; spin < 50; ++spin) std::this_thread::yield();
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_GT(exec.steals(), 0u);
  EXPECT_EQ(total.load(std::memory_order_relaxed) % 64, 0);
}

TEST(LaneExecutor, RapidCreateDestroyDoesNotHang) {
  // Regression: a worker first scheduled after ~LaneExecutor's final
  // generation bump used to load the post-shutdown generation as its park
  // baseline and wait on a wakeup that never comes (the park predicate did
  // not re-check stop_). On a loaded single-core host this deadlocked the
  // destructor's join. Rapid create/destroy cycles — with and without an
  // epoch in between — maximize the window; the ctest timeout is the
  // failure detector.
  for (int round = 0; round < 200; ++round) {
    LaneExecutor idle(4);  // destroyed before any worker may have run
  }
  for (int round = 0; round < 200; ++round) {
    LaneExecutor exec(4);
    std::atomic<int> ran{0};
    exec.run_epoch(4, [&](size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(std::memory_order_relaxed), 4);
  }
}

// ---------------------------------------------------------------------------
// OptimisticLatch

TEST(OptimisticLatch, ExclusiveUnlockBumpsVersion) {
  OptimisticLatch latch;
  const u64 v0 = latch.version();
  latch.lock_exclusive();
  latch.unlock_exclusive();
  EXPECT_EQ(latch.version(), v0 + 1);
  {
    ExclusiveLatchGuard guard(latch);
  }
  EXPECT_EQ(latch.version(), v0 + 2);
}

TEST(OptimisticLatch, SharedHoldersExcludeWritersNotEachOther) {
  OptimisticLatch latch;
  ASSERT_TRUE(latch.try_lock_shared());
  EXPECT_TRUE(latch.try_lock_shared());  // readers stack
  EXPECT_FALSE(latch.try_lock_exclusive());
  latch.unlock_shared();
  EXPECT_FALSE(latch.try_lock_exclusive());  // one reader still in
  latch.unlock_shared();
  EXPECT_TRUE(latch.try_lock_exclusive());
  EXPECT_FALSE(latch.try_lock_shared());  // writer excludes readers
  latch.unlock_exclusive();
}

TEST(OptimisticLatch, SharedHoldDoesNotBumpVersion) {
  // Reads must not invalidate optimistic snapshots — only writers do.
  OptimisticLatch latch;
  const u64 snap = latch.optimistic_begin();
  {
    SharedLatchGuard guard(latch);
  }
  EXPECT_TRUE(latch.validate(snap));
}

TEST(OptimisticLatch, ValidateFailsAfterWriterInterleaves) {
  OptimisticLatch latch;
  const u64 snap = latch.optimistic_begin();
  latch.lock_exclusive();
  latch.unlock_exclusive();
  EXPECT_FALSE(latch.validate(snap));
  // A fresh snapshot taken after the writer validates again.
  EXPECT_TRUE(latch.validate(latch.optimistic_begin()));
}

TEST(OptimisticLatch, OptimisticReadersSeeConsistentPairs) {
  // The protocol's soundness claim: a validated optimistic read of atomic
  // fields observed no writer, so multi-field invariants hold. A writer
  // keeps two atomics equal (mutating only under the exclusive latch);
  // readers that validate must never see them differ.
  OptimisticLatch latch;
  std::atomic<u64> a{0}, b{0};
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0}, validated{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const u64 snap = latch.optimistic_begin();
        const u64 got_a = a.load(std::memory_order_acquire);
        const u64 got_b = b.load(std::memory_order_acquire);
        if (!latch.validate(snap)) continue;  // writer interleaved: retry
        validated.fetch_add(1, std::memory_order_relaxed);
        if (got_a != got_b) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (u64 i = 1; i <= 20000; ++i) {
    ExclusiveLatchGuard guard(latch);
    a.store(i, std::memory_order_release);
    b.store(i, std::memory_order_release);
  }
  // On a single core the writer may finish before any reader is scheduled;
  // with the writer quiet every read validates, so this always terminates.
  while (validated.load(std::memory_order_acquire) == 0)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(validated.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace toss
