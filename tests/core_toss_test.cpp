// Integration tests for the TOSS orchestrator: the full Step I-IV lifecycle
// of Figure 4 plus the re-generation path.
#include <gtest/gtest.h>

#include "core/toss.hpp"
#include "platform/request_gen.hpp"
#include "workloads/registry.hpp"

namespace toss {
namespace {

TossOptions fast_options(u64 stable = 5) {
  TossOptions opt;
  opt.stable_invocations = stable;
  opt.max_profiling_invocations = 200;
  return opt;
}

class TossLifecycleTest : public ::testing::Test {
 protected:
  SystemConfig cfg = SystemConfig::paper_default();
  SnapshotStore store{cfg};
  FunctionRegistry reg = FunctionRegistry::table1();
};

TEST_F(TossLifecycleTest, PhasesProgressInOrder) {
  const FunctionModel& m = *reg.find("pyaes");
  TossFunction toss(cfg, store, m, fast_options());
  EXPECT_EQ(toss.phase(), TossPhase::kInitial);

  const auto first = toss.handle(1, 1);
  EXPECT_EQ(first.phase, TossPhase::kInitial);
  EXPECT_TRUE(first.snapshot_created);
  EXPECT_EQ(toss.phase(), TossPhase::kProfiling);

  bool tiered = false;
  for (u64 i = 0; i < 100 && !tiered; ++i) {
    const auto rec = toss.handle(static_cast<int>(i % kNumInputs), 100 + i);
    EXPECT_EQ(rec.phase, TossPhase::kProfiling);
    tiered = rec.tiered_created;
  }
  ASSERT_TRUE(tiered);
  EXPECT_EQ(toss.phase(), TossPhase::kTiered);
  ASSERT_NE(toss.decision(), nullptr);
  ASSERT_NE(toss.tiered_snapshot(), nullptr);

  const auto prod = toss.handle(3, 999);
  EXPECT_EQ(prod.phase, TossPhase::kTiered);
}

TEST_F(TossLifecycleTest, TieredSnapshotPreservesMemoryImage) {
  const FunctionModel& m = *reg.find("json_load_dump");
  TossFunction toss(cfg, store, m, fast_options());
  toss.handle(3, 1);
  for (u64 i = 0; i < 100 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(static_cast<int>(i % kNumInputs), 200 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);

  const TieredSnapshot* tiered = toss.tiered_snapshot();
  ASSERT_NE(tiered, nullptr);
  EXPECT_TRUE(tiered->layout().valid());
  // Integrity: the partitioned image reassembles to the single-tier one.
  // (The single-tier snapshot is the first file the store handed out.)
  const SingleTierSnapshot* single = store.get_single_tier(1);
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(tiered->materialize(), single->materialize());
}

TEST_F(TossLifecycleTest, LayoutMatchesDecisionPlacement) {
  const FunctionModel& m = *reg.find("linpack");
  TossFunction toss(cfg, store, m, fast_options());
  toss.handle(3, 1);
  for (u64 i = 0; i < 100 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(3, 300 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  const auto* d = toss.decision();
  const auto* tiered = toss.tiered_snapshot();
  ASSERT_NE(d, nullptr);
  ASSERT_NE(tiered, nullptr);
  EXPECT_NEAR(tiered->layout().slow_fraction(), d->slow_fraction, 1e-9);
}

TEST_F(TossLifecycleTest, TieredSetupConstantAndSmall) {
  const FunctionModel& m = *reg.find("lr_training");  // 1 GiB guest
  TossFunction toss(cfg, store, m, fast_options());
  toss.handle(3, 1);
  for (u64 i = 0; i < 100 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(3, 400 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);

  // TOSS never eager-loads: setup is mmap-bound, far below any eager load
  // of a 1 GiB snapshot (~400 ms at disk bandwidth).
  std::vector<Nanos> setups;
  for (u64 i = 0; i < 5; ++i) {
    const auto rec = toss.handle(3, 500 + i);
    EXPECT_EQ(rec.result.setup.eager_pages, 0u);
    setups.push_back(rec.result.setup.setup_ns);
  }
  for (Nanos s : setups) {
    EXPECT_LT(s, ms(20));
    EXPECT_NEAR(s, setups[0], 1.0);  // constant across invocations
  }
}

TEST_F(TossLifecycleTest, RepresentativeIsLongestProfiledInvocation) {
  const FunctionModel& m = *reg.find("compress");
  TossFunction toss(cfg, store, m, fast_options(3));
  toss.handle(0, 1);
  // Feed one big input among small ones; largest must win.
  toss.handle(3, 2);
  for (u64 i = 0; i < 60 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(0, 10 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  ASSERT_TRUE(toss.representative().has_value());
  EXPECT_EQ(toss.representative()->first, 3);
}

TEST_F(TossLifecycleTest, ProfilingAddsDamonOverhead) {
  const FunctionModel& m = *reg.find("pyaes");
  TossFunction toss(cfg, store, m, fast_options(50));
  toss.handle(1, 1);
  const auto rec = toss.handle(1, 2);
  EXPECT_EQ(rec.phase, TossPhase::kProfiling);
  EXPECT_GT(rec.result.exec.profiling_overhead_ns, 0);
  EXPECT_GT(toss.profiled_invocations(), 0u);
}

TEST_F(TossLifecycleTest, MaxProfilingInvocationsForcesAnalysis) {
  TossOptions opt;
  opt.stable_invocations = 1000000;  // unreachable
  opt.max_profiling_invocations = 10;
  const FunctionModel& m = *reg.find("pyaes");
  TossFunction toss(cfg, store, m, opt);
  toss.handle(0, 1);
  for (u64 i = 0; i < 10; ++i) toss.handle(static_cast<int>(i % 4), 20 + i);
  EXPECT_EQ(toss.phase(), TossPhase::kTiered);
}

TEST_F(TossLifecycleTest, SlowdownThresholdFlowsThrough) {
  const FunctionModel& m = *reg.find("pagerank");
  TossOptions opt = fast_options(3);
  opt.slowdown_threshold = 0.02;
  TossFunction toss(cfg, store, m, opt);
  toss.handle(3, 1);
  for (u64 i = 0; i < 60 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(3, 30 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);
  EXPECT_LE(toss.decision()->expected_slowdown, 0.05);
}

TEST_F(TossLifecycleTest, ReprofileTriggersOnSustainedDrift) {
  // Profile only on the smallest input with a permissive budget, then hit
  // the function with the largest input repeatedly: Eq 3 accelerates until
  // Eq 4 flips and the function re-enters profiling.
  const FunctionModel& m = *reg.find("matmul");
  TossOptions opt = fast_options(3);
  opt.reprofile_budget = 0.01;
  TossFunction toss(cfg, store, m, opt);
  toss.handle(0, 1);
  for (u64 i = 0; i < 60 && toss.phase() != TossPhase::kTiered; ++i)
    toss.handle(0, 50 + i);
  ASSERT_EQ(toss.phase(), TossPhase::kTiered);

  bool reprofiled = false;
  for (u64 i = 0; i < 200 && !reprofiled; ++i)
    reprofiled = toss.handle(3, 1000 + i).reprofile_triggered;
  EXPECT_TRUE(reprofiled);
  EXPECT_EQ(toss.phase(), TossPhase::kProfiling);
}

TEST_F(TossLifecycleTest, DeterministicAcrossRuns) {
  const FunctionModel& m = *reg.find("float_operation");
  auto run = [&] {
    SnapshotStore s(cfg);
    TossFunction toss(cfg, store, m, fast_options());
    std::vector<double> times;
    const auto reqs = RequestGenerator::round_robin(40, 7);
    for (const auto& r : reqs)
      times.push_back(toss.handle(r.input, r.seed).result.total_ns());
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace toss
